// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment; see the DESIGN.md per-experiment index) plus ablations
// of the design choices called out there. Custom metrics report the
// experiment observables: bytes/run for overhead experiments,
// quality/pair for path-quality experiments.
package scionmpr_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/bgp"
	"scionmpr/internal/bgpsec"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/experiments"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/traffic"
	"scionmpr/internal/trust"
	"scionmpr/scion"
)

// benchTopo caches the shared benchmark topologies.
var benchTopo struct {
	once sync.Once
	full *topology.Graph // 120-AS synthetic Internet
	core *topology.Graph // 16-AS extracted core
}

func topos(b *testing.B) (*topology.Graph, *topology.Graph) {
	b.Helper()
	benchTopo.once.Do(func() {
		p := topology.DefaultGenParams()
		p.NumASes = 120
		p.Tier1 = 6
		full := topology.MustGenerate(p)
		coreT, err := topology.ExtractCore(full, 16)
		if err != nil {
			panic(err)
		}
		benchTopo.full = full
		benchTopo.core = coreT
	})
	return benchTopo.full, benchTopo.core
}

func runBeacon(b *testing.B, topo *topology.Graph, mode beacon.Mode, f core.Factory, store int, dur time.Duration) *beacon.RunResult {
	b.Helper()
	cfg := beacon.DefaultRunConfig(topo, mode, f, store)
	cfg.Duration = dur
	res, err := beacon.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Components regenerates Table 1 (scope & frequency of
// every control-plane component, measured on the demo network).
func BenchmarkTable1Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 7 {
			b.Fatal("table rows missing")
		}
	}
}

// BenchmarkFig5CoreBaseline measures the baseline core-beaconing
// overhead of Figure 5 (bytes/run reported).
func BenchmarkFig5CoreBaseline(b *testing.B) {
	_, coreT := topos(b)
	var bytes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBeacon(b, coreT, beacon.CoreMode, core.NewBaseline(5), 60, time.Hour)
		bytes = res.TotalOverheadBytes()
	}
	b.ReportMetric(float64(bytes), "overhead-bytes/run")
}

// BenchmarkFig5CoreDiversity measures the diversity-algorithm core
// beaconing overhead of Figure 5.
func BenchmarkFig5CoreDiversity(b *testing.B) {
	_, coreT := topos(b)
	var bytes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBeacon(b, coreT, beacon.CoreMode, core.NewDiversity(core.DefaultParams(5)), 60, time.Hour)
		bytes = res.TotalOverheadBytes()
	}
	b.ReportMetric(float64(bytes), "overhead-bytes/run")
}

// BenchmarkFig5IntraISD measures intra-ISD beaconing overhead (Figure 5,
// lowest curve).
func BenchmarkFig5IntraISD(b *testing.B) {
	full, _ := topos(b)
	isd, err := topology.BuildISD(full, 3)
	if err != nil {
		b.Fatal(err)
	}
	var bytes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBeacon(b, isd, beacon.IntraMode, core.NewBaseline(5), 60, time.Hour)
		bytes = res.TotalOverheadBytes()
	}
	b.ReportMetric(float64(bytes), "overhead-bytes/run")
}

// BenchmarkBeaconWorkers measures the parallel scheduler's speedup on
// the 120-AS intra-ISD beaconing run (every AS is an actor). The results
// are byte-identical across worker counts — the determinism tests in
// internal/beacon assert that — so only the wall clock should move.
// The telemetry=on variants attach a metric registry (per-shard counter
// cells on the hot path); the contract is ~0% overhead when disabled
// (nil-receiver no-ops) and <=3% when enabled.
func BenchmarkBeaconWorkers(b *testing.B) {
	full, _ := topos(b)
	isd, err := topology.BuildISD(full, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, telem := range []bool{false, true} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("telemetry=%v/workers=%d", telem, w), func(b *testing.B) {
				var bytes uint64
				for i := 0; i < b.N; i++ {
					cfg := beacon.DefaultRunConfig(isd, beacon.IntraMode, core.NewDiversity(core.DefaultParams(5)), 15)
					cfg.Duration = time.Hour
					cfg.Workers = w
					if telem {
						cfg.Telemetry = telemetry.NewRegistry()
					}
					res, err := beacon.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					bytes = res.TotalOverheadBytes()
				}
				b.ReportMetric(float64(bytes), "overhead-bytes/run")
			})
		}
	}
}

// BenchmarkFig5BGPConvergence measures the BGP baseline simulation that
// anchors Figure 5's denominator.
func BenchmarkFig5BGPConvergence(b *testing.B) {
	full, _ := topos(b)
	var bytes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bgp.Run(bgp.DefaultConfig(full))
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Net.GrandTotalTx()
	}
	b.ReportMetric(float64(bytes), "overhead-bytes/run")
}

// BenchmarkFig5BGPsecAccounting measures the RFC 8205 sizing pass that
// derives BGPsec's Figure 5 curve from the BGP simulation.
func BenchmarkFig5BGPsecAccounting(b *testing.B) {
	full, _ := topos(b)
	res, err := bgp.Run(bgp.DefaultConfig(full))
	if err != nil {
		b.Fatal(err)
	}
	prefixes := bgp.SyntheticPrefixCounts(full)
	acct := bgpsec.DefaultAccounting(prefixes)
	monitors := full.IAs()[:16]
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, m := range monitors {
			total += acct.MonthlyBytes(res.Speakers[m])
		}
	}
	b.ReportMetric(total/float64(len(monitors)), "monthly-bytes/monitor")
}

// fig6 fixture: one diversity run plus sampled pairs, shared across the
// Figure 6 benchmarks.
var fig6 struct {
	once  sync.Once
	run   *beacon.RunResult
	pairs [][2]addr.IA
}

func fig6Fixture(b *testing.B) {
	_, coreT := topos(b)
	fig6.once.Do(func() {
		cfg := beacon.DefaultRunConfig(coreT, beacon.CoreMode, core.NewDiversity(core.DefaultParams(5)), 60)
		cfg.Duration = time.Hour
		res, err := beacon.Run(cfg)
		if err != nil {
			panic(err)
		}
		fig6.run = res
		fig6.pairs = graphalg.SamplePairs(coreT, 20)
	})
}

// BenchmarkFig6aResilience computes the Figure 6a metric (min failing
// links per pair) over the diversity path sets.
func BenchmarkFig6aResilience(b *testing.B) {
	fig6Fixture(b)
	var total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, p := range fig6.pairs {
			total += graphalg.Resilience(fig6.run.PathSet(p[0], p[1]), p[0], p[1])
		}
	}
	b.ReportMetric(float64(total)/float64(len(fig6.pairs)), "resilience/pair")
}

// BenchmarkFig6bCapacity computes the Figure 6b metric including the
// optimum reference (max-flow on the full core topology).
func BenchmarkFig6bCapacity(b *testing.B) {
	fig6Fixture(b)
	_, coreT := topos(b)
	var achieved, optimum int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		achieved, optimum = 0, 0
		for _, p := range fig6.pairs {
			achieved += graphalg.Capacity(fig6.run.PathSet(p[0], p[1]), p[0], p[1])
			optimum += graphalg.OptimalFlow(coreT, p[0], p[1])
		}
	}
	b.ReportMetric(float64(achieved)/float64(optimum), "capacity-fraction-of-optimum")
}

// BenchmarkFig7SCIONLabQuality regenerates the Appendix B path quality
// comparison (Figures 7/8).
func BenchmarkFig7SCIONLabQuality(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSCIONLab()
		if err != nil {
			b.Fatal(err)
		}
		var a, o float64
		for j, v := range res.Series[len(res.Series)-1].Values {
			a += v
			o += res.Optimum[j]
		}
		ratio = a / o
	}
	b.ReportMetric(ratio, "diversity60-fraction-of-optimum")
}

// BenchmarkFig9Bandwidth regenerates the per-interface beaconing
// bandwidth distribution of Figure 9.
func BenchmarkFig9Bandwidth(b *testing.B) {
	lab := topology.SCIONLab()
	keep := map[addr.IA]bool{}
	for _, ia := range lab.CoreIAs() {
		keep[ia] = true
	}
	coreT := lab.Subgraph(keep)
	var under4k float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBeacon(b, coreT, beacon.CoreMode, core.NewBaseline(5), 5, 6*time.Hour)
		bw := res.PerInterfaceBandwidth()
		n := 0
		for _, v := range bw {
			if v < 4096 {
				n++
			}
		}
		under4k = float64(n) / float64(len(bw))
	}
	b.ReportMetric(under4k, "fraction-under-4KBps")
}

// BenchmarkAblationScoreMean compares the smoothed counter+1 geometric
// mean (default) with the paper-literal raw geometric mean.
func BenchmarkAblationScoreMean(b *testing.B) {
	_, coreT := topos(b)
	for _, variant := range []struct {
		name string
		raw  bool
	}{{"smoothed", false}, {"raw", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := core.DefaultParams(5)
			p.RawGeoMean = variant.raw
			var bytes uint64
			for i := 0; i < b.N; i++ {
				res := runBeacon(b, coreT, beacon.CoreMode, core.NewDiversity(p), 60, time.Hour)
				bytes = res.TotalOverheadBytes()
			}
			b.ReportMetric(float64(bytes), "overhead-bytes/run")
		})
	}
}

// BenchmarkAblationASDisjoint compares link- vs AS-level disjointness
// (the paper chooses links because AS failures are unlikely, §4.2).
func BenchmarkAblationASDisjoint(b *testing.B) {
	_, coreT := topos(b)
	pairs := graphalg.SamplePairs(coreT, 12)
	for _, variant := range []struct {
		name string
		as   bool
	}{{"link-disjoint", false}, {"as-disjoint", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := core.DefaultParams(5)
			p.ASDisjoint = variant.as
			var quality int
			for i := 0; i < b.N; i++ {
				res := runBeacon(b, coreT, beacon.CoreMode, core.NewDiversity(p), 60, time.Hour)
				quality = 0
				for _, pr := range pairs {
					quality += res.Quality(pr[0], pr[1])
				}
			}
			b.ReportMetric(float64(quality)/float64(len(pairs)), "quality/pair")
		})
	}
}

// BenchmarkAblationParams sweeps the Equation 2 age exponent alpha.
func BenchmarkAblationParams(b *testing.B) {
	_, coreT := topos(b)
	for _, tc := range []struct {
		name  string
		alpha float64
	}{{"alpha1", 1}, {"alpha6", 6}, {"alpha20", 20}} {
		b.Run(tc.name, func(b *testing.B) {
			p := core.DefaultParams(5)
			p.Alpha = tc.alpha
			var bytes uint64
			for i := 0; i < b.N; i++ {
				res := runBeacon(b, coreT, beacon.CoreMode, core.NewDiversity(p), 60, time.Hour)
				bytes = res.TotalOverheadBytes()
			}
			b.ReportMetric(float64(bytes), "overhead-bytes/run")
		})
	}
}

// BenchmarkSigners compares the real ECDSA P-384 signer with the
// deterministic sized signer used in large simulations.
func BenchmarkSigners(b *testing.B) {
	g := topology.New()
	ia := addr.MustIA(1, 1)
	g.AddAS(ia, true)
	msg := make([]byte, 300)
	b.Run("ecdsa-p384", func(b *testing.B) {
		inf, err := trust.NewInfra(g, trust.ECDSA)
		if err != nil {
			b.Fatal(err)
		}
		s := inf.SignerFor(ia)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Sign(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sized", func(b *testing.B) {
		inf, err := trust.NewInfra(g, trust.Sized)
		if err != nil {
			b.Fatal(err)
		}
		s := inf.SignerFor(ia)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Sign(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaxFlow measures the Edmonds-Karp kernel behind Figures 6-8.
func BenchmarkMaxFlow(b *testing.B) {
	_, coreT := topos(b)
	pairs := graphalg.SamplePairs(coreT, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			graphalg.OptimalFlow(coreT, p[0], p[1])
		}
	}
}

// BenchmarkPCBEncode measures path-segment wire encoding (every overhead
// number rests on it).
func BenchmarkPCBEncode(b *testing.B) {
	g := topology.Demo()
	inf, err := trust.NewInfra(g, trust.Sized)
	if err != nil {
		b.Fatal(err)
	}
	ia1 := addr.MustIA(1, 0xff00_0000_0101)
	ia3 := addr.MustIA(1, 0xff00_0000_0103)
	ia5 := addr.MustIA(1, 0xff00_0000_0105)
	p := seg.NewPCB(ia1, 1, 0, 6*3600*1e9)
	p, _ = p.Extend(inf.SignerFor(ia1), ia3, 0, 1, nil, 1472)
	p, _ = p.Extend(inf.SignerFor(ia3), ia5, 1, 2, nil, 1472)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := p.Encode()
		if _, err := seg.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkBootstrap measures the public API's full control-plane
// bootstrap (trust + beaconing + registration + path servers) on the demo
// network.
func BenchmarkNetworkBootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := scion.NewNetwork(scion.DemoTopology(), scion.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.Paths(addr.MustIA(2, 0xff00_0000_0203), addr.MustIA(1, 0xff00_0000_0106)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathLookup measures endpoint path lookup + combination +
// authorization on a bootstrapped network (cache defeated by alternating
// destinations).
func BenchmarkPathLookup(b *testing.B) {
	n, err := scion.NewNetwork(scion.DemoTopology(), scion.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	src := addr.MustIA(2, 0xff00_0000_0203)
	dsts := []addr.IA{
		addr.MustIA(1, 0xff00_0000_0106),
		addr.MustIA(1, 0xff00_0000_0104),
		addr.MustIA(3, 0xff00_0000_0304),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Paths(src, dsts[i%len(dsts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerDecision measures one multipath scheduling decision
// per implementation over an 8-path set — the hot call of the traffic
// engine (one per admitted chunk).
func BenchmarkSchedulerDecision(b *testing.B) {
	infos := make([]traffic.PathInfo, 8)
	for i := range infos {
		infos[i] = traffic.PathInfo{
			Hops:       3 + i%3,
			Delay:      time.Duration(10+i) * time.Millisecond,
			Bottleneck: 1.25e8 * float64(1+i%4),
			Busy:       i%2 == 0,
		}
	}
	for _, name := range []string{"single-best", "round-robin", "weighted", "latency"} {
		b.Run(name, func(b *testing.B) {
			factory, err := traffic.NewScheduler(name)
			if err != nil {
				b.Fatal(err)
			}
			s := factory()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Pick(infos)
			}
		})
	}
}

// BenchmarkTokenBucketRefill measures chunk admission along a 3-link path:
// per-direction refill, bottleneck grant and charge across all buckets.
func BenchmarkTokenBucketRefill(b *testing.B) {
	g := topology.New()
	ias := make([]addr.IA, 4)
	for i := range ias {
		ias[i] = addr.MustIA(1, addr.AS(i+1))
		g.AddAS(ias[i], true)
	}
	var refs []dataplane.LinkRef
	for i := 0; i+1 < len(ias); i++ {
		l, err := g.Connect(ias[i], ias[i+1], topology.Core)
		if err != nil {
			b.Fatal(err)
		}
		refs = append(refs, dataplane.LinkRef{Link: l, From: ias[i]})
	}
	m := traffic.NewLinkModel(traffic.UniformCapacity(1.25e9))
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance virtual time so the refill path (not just the
		// bucket-empty path) is exercised every call.
		now += sim.Time(50 * time.Microsecond)
		m.Admit(now, refs, 64<<10)
	}
}

// BenchmarkFlowArrivalChurn measures the engine end to end: a fresh demo
// network absorbing a 1000-flow Poisson workload to completion, including
// path lookups, admission, head packets and completion bookkeeping.
func BenchmarkFlowArrivalChurn(b *testing.B) {
	src1 := addr.MustIA(1, 0xff00_0000_0106)
	dst1 := addr.MustIA(1, 0xff00_0000_0104)
	src2 := addr.MustIA(2, 0xff00_0000_0203)
	var flows float64
	for i := 0; i < b.N; i++ {
		n, err := scion.NewNetwork(scion.DemoTopology(), scion.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		eng, err := traffic.NewEngine(traffic.Config{
			Clock:    n.Clock(),
			Net:      n.Fabric().Net,
			Fabric:   n.Fabric(),
			Provider: n.Paths,
			Links:    traffic.NewLinkModel(traffic.DefaultCapacity()),
		})
		if err != nil {
			b.Fatal(err)
		}
		specs := traffic.Generate(traffic.WorkloadParams{
			Flows:       1000,
			Pairs:       [][2]addr.IA{{src1, dst1}, {src2, src1}, {dst1, src2}},
			ArrivalRate: 5000,
			MeanSize:    64 << 10,
			Seed:        7,
		})
		for _, spec := range specs {
			eng.Add(spec)
		}
		s := eng.Run()
		if s.Completed != 1000 {
			b.Fatalf("completed = %d", s.Completed)
		}
		flows = float64(s.Completed)
	}
	b.ReportMetric(flows, "flows/op")
}

// BenchmarkChaosFlapTick measures one fail/restore pair applied to both
// planes — the work a single flap injection performs on its targets
// (the engine itself only adds depth bookkeeping on top).
func BenchmarkChaosFlapTick(b *testing.B) {
	_, coreTopo := topos(b)
	s := &sim.Simulator{}
	net := sim.NewNetwork(s, coreTopo, time.Millisecond)
	infra, err := trust.NewInfra(coreTopo, trust.Sized)
	if err != nil {
		b.Fatal(err)
	}
	fabric := dataplane.NewFabric(net, infra.ForwardingKey)
	id := coreTopo.Links[0].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.FailLink(id)
		fabric.FailLink(id)
		fabric.RestoreLink(id)
		net.RestoreLink(id)
	}
}

// BenchmarkChaosGrayDropDecision measures the per-message cost the gray
// failure check adds to the network hot path when a lossy link is active.
func BenchmarkChaosGrayDropDecision(b *testing.B) {
	s := &sim.Simulator{}
	g := topology.New()
	a1 := addr.MustIA(1, 1)
	a2 := addr.MustIA(1, 2)
	g.AddAS(a1, true)
	g.AddAS(a2, true)
	l, err := g.Connect(a1, a2, topology.Core)
	if err != nil {
		b.Fatal(err)
	}
	net := sim.NewNetwork(s, g, time.Millisecond)
	net.SetLinkLoss(l.ID, 1) // every send takes the drop branch
	msg := benchWire{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(a1, l, msg)
	}
	if net.DroppedByLoss != uint64(b.N) {
		b.Fatalf("dropped %d of %d", net.DroppedByLoss, b.N)
	}
}

type benchWire struct{}

func (benchWire) WireLen() int { return 64 }
