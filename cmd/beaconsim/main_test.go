package main

import "testing"

func TestBuildTopoVariants(t *testing.T) {
	cases := []struct {
		kind, mode string
		wantASes   int
	}{
		{"demo", "core", 7},       // core subgraph of the demo network
		{"demo", "intra", 16},     // full demo for intra-ISD
		{"scionlab", "core", 21},  // SCIONLab core ring
		{"scionlab", "intra", 63}, // full SCIONLab
	}
	for _, c := range cases {
		topo, err := buildTopo(c.kind, c.mode, 100, 5, 1, 20, 3)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.kind, c.mode, err)
		}
		if topo.NumASes() != c.wantASes {
			t.Errorf("%s/%s: ASes = %d, want %d", c.kind, c.mode, topo.NumASes(), c.wantASes)
		}
	}
	// Generated topologies honor the core/ISD parameters.
	coreTopo, err := buildTopo("gen", "core", 100, 5, 1, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if coreTopo.NumASes() != 20 {
		t.Errorf("gen core ASes = %d, want 20", coreTopo.NumASes())
	}
	isdTopo, err := buildTopo("gen", "intra", 100, 5, 1, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(isdTopo.CoreIAs()) != 3 {
		t.Errorf("gen ISD cores = %d, want 3", len(isdTopo.CoreIAs()))
	}
	if _, err := buildTopo("bogus", "core", 1, 1, 1, 1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}
