// Command beaconsim runs one SCION beaconing simulation — core or
// intra-ISD, baseline or path-diversity algorithm — and reports the
// control-plane overhead and the quality of the disseminated paths.
//
// Usage:
//
//	beaconsim -topo demo -mode core -algo diversity
//	beaconsim -topo scionlab -algo baseline -store 5 -duration 6h
//	beaconsim -topo gen -n 600 -core 100 -algo diversity -store 60
//	beaconsim -topo gen -n 600 -isdcores 5 -mode intra -algo baseline
//
// Long runs can be checkpointed and resumed (the resumed run finishes
// with byte-identical results; see DESIGN.md "Checkpoint/restore"):
//
//	beaconsim -topo gen -n 2000 -checkpoint 3h -snapshot run.ckpt
//	beaconsim -topo gen -n 2000 -resume run.ckpt
//
// Every other flag must match between the checkpointing and the
// resuming invocation — the snapshot holds the simulation state, not
// the configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/metrics"
	"scionmpr/internal/topology"
)

func main() {
	var (
		topoKind = flag.String("topo", "demo", "topology: demo | scionlab | gen")
		n        = flag.Int("n", 600, "ASes for -topo gen")
		tier1    = flag.Int("tier1", 10, "tier-1 clique size for -topo gen")
		seed     = flag.Int64("seed", 1, "generator seed")
		coreN    = flag.Int("core", 100, "core network size for -topo gen -mode core")
		isdCores = flag.Int("isdcores", 5, "ISD core count for -mode intra")
		mode     = flag.String("mode", "core", "beaconing mode: core | intra")
		algo     = flag.String("algo", "diversity", "selection algorithm: baseline | diversity")
		store    = flag.Int("store", 60, "PCB storage limit per origin (0 = unlimited)")
		dissem   = flag.Int("dissem", 5, "PCB dissemination limit")
		duration = flag.Duration("duration", 6*time.Hour, "simulated beaconing duration")
		interval = flag.Duration("interval", 10*time.Minute, "beaconing interval")
		lifetime = flag.Duration("lifetime", 6*time.Hour, "PCB lifetime")
		verify   = flag.Bool("verify", false, "cryptographically verify every received PCB")
		pairs    = flag.Int("pairs", 40, "AS pairs sampled for path quality")
		ckptAt   = flag.Duration("checkpoint", 0, "write a resumable snapshot at this simulated time (rounded up to an interval boundary)")
		snapFile = flag.String("snapshot", "beaconsim.ckpt", "snapshot file written by -checkpoint")
		resume   = flag.String("resume", "", "resume from a snapshot file instead of starting fresh (all other flags must match the checkpointing run)")
	)
	flag.Parse()

	topo, err := buildTopo(*topoKind, *mode, *n, *tier1, *seed, *coreN, *isdCores)
	if err != nil {
		fail(err)
	}
	fmt.Println("topology:", topo.ComputeStats())

	var factory core.Factory
	switch *algo {
	case "baseline":
		factory = core.NewBaseline(*dissem)
	case "diversity":
		factory = core.NewDiversity(core.DefaultParams(*dissem))
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	bMode := beacon.CoreMode
	if *mode == "intra" {
		bMode = beacon.IntraMode
	}

	cfg := beacon.DefaultRunConfig(topo, bMode, factory, *store)
	cfg.Duration = *duration
	cfg.Interval = *interval
	cfg.Lifetime = *lifetime
	cfg.Verify = *verify

	start := time.Now()
	var res *beacon.RunResult
	switch {
	case *resume != "":
		snap, rerr := os.ReadFile(*resume)
		if rerr != nil {
			fail(rerr)
		}
		res, err = beacon.Resume(cfg, snap)
		if err == nil {
			fmt.Printf("resumed from %s (%d-byte snapshot)\n", *resume, len(snap))
		}
	case *ckptAt > 0:
		var snap []byte
		res, snap, err = beacon.RunWithCheckpoint(cfg, *ckptAt)
		if err == nil {
			if werr := os.WriteFile(*snapFile, snap, 0o644); werr != nil {
				fail(werr)
			}
			fmt.Printf("snapshot written to %s (%d bytes)\n", *snapFile, len(snap))
		}
	default:
		res, err = beacon.Run(cfg)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("simulated %v of %s beaconing (%s) in %v wall time\n",
		*duration, bMode, *algo, time.Since(start).Round(time.Millisecond))

	var orig, prop, recv uint64
	for _, srv := range res.Servers {
		orig += srv.Originated
		prop += srv.Propagated
		recv += srv.Received
	}
	fmt.Printf("PCBs: originated=%d propagated=%d received=%d\n", orig, prop, recv)
	fmt.Printf("total control-plane bytes: %d\n", res.TotalOverheadBytes())

	bw := res.PerInterfaceBandwidth()
	metrics.FprintCDFs(os.Stdout, "per-interface beaconing bandwidth (bytes/s)",
		[]metrics.Series{{Name: *algo, CDF: metrics.NewCDF(bw)}})
	metrics.FprintHistogram(os.Stdout, "bandwidth histogram (bytes/s)", bw, 8)

	if bMode == beacon.CoreMode {
		var quality, optimum []float64
		for _, pr := range graphalg.SamplePairs(topo, *pairs) {
			quality = append(quality, float64(res.Quality(pr[0], pr[1])))
			optimum = append(optimum, float64(graphalg.OptimalFlow(topo, pr[0], pr[1])))
		}
		metrics.FprintCDFs(os.Stdout, "path quality (min failing links = capacity, per sampled pair)",
			[]metrics.Series{
				{Name: *algo, CDF: metrics.NewCDF(quality)},
				{Name: "optimum", CDF: metrics.NewCDF(optimum)},
			})
	} else {
		// Intra-ISD: report reachability from each core AS.
		cores := topo.CoreIAs()
		total, reached := 0, 0
		for _, ia := range topo.IAs() {
			if topo.AS(ia).Core {
				continue
			}
			total++
			for _, c := range cores {
				if len(res.PathSet(c, ia)) > 0 {
					reached++
					break
				}
			}
		}
		fmt.Printf("non-core ASes with at least one up-segment: %d/%d\n", reached, total)
	}
}

func buildTopo(kind, mode string, n, tier1 int, seed int64, coreN, isdCores int) (*topology.Graph, error) {
	var full *topology.Graph
	switch kind {
	case "demo":
		full = topology.Demo()
	case "scionlab":
		full = topology.SCIONLab()
	case "gen":
		p := topology.DefaultGenParams()
		p.NumASes = n
		p.Tier1 = tier1
		p.Seed = seed
		g, err := topology.Generate(p)
		if err != nil {
			return nil, err
		}
		full = g
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
	if mode == "intra" {
		if kind == "gen" {
			return topology.BuildISD(full, isdCores)
		}
		return full, nil
	}
	// Core mode: restrict to the core ASes.
	if kind == "gen" {
		return topology.ExtractCore(full, coreN)
	}
	keep := map[addr.IA]bool{}
	for _, ia := range full.CoreIAs() {
		keep[ia] = true
	}
	return full.Subgraph(keep), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "beaconsim:", err)
	os.Exit(1)
}
