// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the per-experiment index):
//
//	table1      Table 1   control-plane component scope & frequency
//	fig5        Figure 5  overhead relative to BGP (BGPsec, SCION core
//	                      baseline/diversity, SCION intra-ISD)
//	fig6        Figure 6a/6b  failure resilience & capacity vs optimum
//	capacity    Figure 6b under load: achieved goodput of diversity vs
//	            baseline vs BGP best-path with real traffic (token-bucket
//	            links, multipath striping)
//	churn       extra: continuous flap churn — time-to-reconnect and
//	            goodput recovery of diversity vs baseline vs BGP under a
//	            deterministic fault-injection schedule
//	serve       extra: path-lookup serving layer under closed-loop load
//	            (Zipf destinations, epoch snapshots, chaos revocations);
//	            see also cmd/pathserve for the million-endpoint run
//	failover    extra: crash-recoverable replicated path-server fleet —
//	            availability and lookup cost under a rolling crash storm
//	            plus a full blackout (WAL recovery, anti-entropy, client
//	            failover with serve-stale), diversity vs baseline
//	forward     extra: wire-format data plane — differential replay of
//	            seeded traffic through the in-memory fabric and the
//	            batched forwarding engine (fingerprints must match),
//	            plus per-core forwarding throughput, batched vs
//	            per-packet, MAC on/off
//	tournament  extra: path-selection strategy tournament — every
//	            registered policy (single-best, round-robin, weighted,
//	            latency, disjoint, hybrid) scored on identical
//	            topology x workload x chaos grid cells; deterministic
//	            fingerprint, winner promoted to the traffic default
//	convergence extra: BGP (re-)convergence vs SCION SCMP failover (§5)
//	ablation    extra: selector variants (raw geomean, AS-disjoint, latency)
//	scionlab    Figures 7/8/9 SCIONLab path quality & bandwidth
//	gridsearch  §4.2 parameter search methodology
//	all         everything above
//
// Usage:
//
//	experiments -exp all -scale default
//	experiments -exp fig5 -scale paper     # hours of compute
//	experiments -exp fig6 -scale smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"scionmpr/internal/core"
	"scionmpr/internal/experiments"
	"scionmpr/internal/telemetry"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1 | fig5 (alias: overhead) | fig6 | capacity | churn | serve | failover | forward | tournament | scionlab | convergence | ablation | gridsearch | all")
		scaleStr  = flag.String("scale", "default", "scale preset: smoke | default | paper")
		duration  = flag.Duration("duration", 0, "override beaconing duration")
		pairs     = flag.Int("pairs", 0, "override sampled AS pairs")
		ases      = flag.Int("ases", 0, "override topology size; the core/ISD structure scales proportionally")
		workers   = flag.Int("workers", 0, "simulator workers: 1 sequential, 0 default (SCIONMPR_WORKERS or GOMAXPROCS); output is identical for every setting")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
		telemAddr = flag.String("telemetry", "", "serve /metrics, /snapshot, /trace and /debug/pprof on this address during the run (e.g. localhost:6060)")
		traceOut  = flag.String("trace", "", "write the structured trace event log (JSONL) to this file at exit")
	)
	flag.Parse()

	// flushProfiles finalizes any requested profiles exactly once; it runs
	// both on the normal exit path and from the SIGINT handler so that a
	// long scaling run interrupted mid-way still yields usable profiles.
	var profOnce sync.Once
	flushProfiles := func() {
		profOnce.Do(func() {
			if *cpuprof != "" {
				pprof.StopCPUProfile()
			}
			if *memprof != "" {
				f, err := os.Create(*memprof)
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					return
				}
				defer f.Close()
				// Up-to-date live-heap numbers rather than the stats of
				// the last completed GC cycle.
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
			}
		})
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
	}
	defer flushProfiles()
	if *cpuprof != "" || *memprof != "" {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sigc
			fmt.Fprintf(os.Stderr, "experiments: %v — flushing profiles\n", s)
			flushProfiles()
			os.Exit(130)
		}()
	}

	var (
		reg    *telemetry.Registry
		tracer *telemetry.Tracer
	)
	if *telemAddr != "" || *traceOut != "" {
		reg = telemetry.NewRegistry()
		tracer = telemetry.NewTracer(1 << 16)
	}
	if *telemAddr != "" {
		addr, err := telemetry.Serve(*telemAddr, reg, tracer)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}
	if *traceOut != "" {
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			if err := tracer.WriteJSONL(f); err != nil {
				fail(err)
			}
		}()
	}

	var scale experiments.Scale
	switch *scaleStr {
	case "smoke":
		scale = experiments.SmokeScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fail(fmt.Errorf("unknown scale %q", *scaleStr))
	}
	if *ases > 0 {
		// Preserve the paper's structural ratios at the requested size
		// (core share ~1/6 of ASes, ISDs of ~10 core ASes each).
		scale.NumASes = *ases
		scale.CoreSize = *ases / 6
		if scale.CoreSize < 4 {
			scale.CoreSize = 4
		}
		scale.NumISDs = scale.CoreSize / 10
		if scale.NumISDs < 2 {
			scale.NumISDs = 2
		}
	}
	if *duration > 0 {
		scale.Duration = *duration
	}
	if *pairs > 0 {
		scale.Pairs = *pairs
	}
	scale.Workers = *workers
	scale.Telemetry = reg
	scale.Tracer = tracer

	runOne := func(name string, f func() error) {
		fmt.Printf("\n########## %s ##########\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fail(err)
		}
		fmt.Printf("[%s finished in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		runOne("table1", func() error {
			res, err := experiments.RunTable1()
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("fig5") || want("overhead") {
		runOne("fig5", func() error {
			res, err := experiments.RunFig5(scale)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("fig6") || want("fig6a") || want("fig6b") {
		runOne("fig6", func() error {
			res, err := experiments.RunFig6(scale)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("capacity") {
		runOne("capacity", func() error {
			res, err := experiments.RunCapacity(scale)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("churn") {
		runOne("churn", func() error {
			res, err := experiments.RunChurn(scale)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("serve") {
		runOne("serve", func() error {
			res, err := experiments.RunServe(scale, experiments.DefaultServeConfig())
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("failover") {
		runOne("failover", func() error {
			res, err := experiments.RunFailover(scale, experiments.DefaultFailoverConfig())
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("forward") {
		runOne("forward", func() error {
			res, err := experiments.RunForward(experiments.DefaultForwardConfig())
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("tournament") {
		runOne("tournament", func() error {
			res, err := experiments.RunTournament(scale, experiments.DefaultTournamentConfig())
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("scionlab") || want("fig7") || want("fig8") || want("fig9") {
		runOne("scionlab", func() error {
			res, err := experiments.RunSCIONLab()
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("convergence") {
		runOne("convergence", func() error {
			res, err := experiments.RunConvergence(scale)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("ablation") {
		runOne("ablation", func() error {
			res, err := experiments.RunAblation(scale)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
	if want("gridsearch") {
		runOne("gridsearch", func() error {
			// A trimmed grid at the given scale; the full exponential
			// grid is practical at smoke scale only.
			gs := experiments.SmokeScale()
			gs.Duration = 2 * time.Hour
			gs.CoreSize = 12
			space := core.SearchSpace{
				Alphas:     []float64{2, 6, 16},
				Betas:      []float64{2, 4},
				Gammas:     []float64{2, 4},
				Thresholds: []float64{0.02, 0.05, 0.2},
			}
			res, err := experiments.RunGridSearch(gs, space, 0.3)
			if err != nil {
				return err
			}
			res.Print(os.Stdout)
			return nil
		})
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
