// Command chaossim replays a deterministic fault-injection schedule
// against a live core-beaconing simulation: links flap, drop silently or
// spike in latency, and beacon servers crash and restart, while the
// surviving servers keep disseminating and revoke state behind every
// failure. The summary reports what was injected, what the network lost,
// and how much disseminated path state survived to the end. The same
// schedule and seed print a byte-identical summary.
//
// Schedules come from a file (-schedule, see internal/chaos.ParseSchedule
// for the format) or from a built-in default that exercises every fault
// kind. Example schedule file:
//
//	seed 42
//	end 30s
//	flap  1 at 5s down 2s period 6s until 25s
//	gray  2 at 8s down 4s rate 0.3
//	spike 3 at 10s down 4s delay 200ms
//	crash 1-ff00:0:101 at 12s down 3s
//
// Usage:
//
//	chaossim                               # built-in schedule, demo topology
//	chaossim -schedule faults.txt
//	chaossim -topo gen -n 200 -core 24 -algo baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

type config struct {
	topoKind  string
	n, tier1  int
	coreN     int
	seed      int64
	algo      string
	store     int
	interval  time.Duration
	lifetime  time.Duration
	duration  time.Duration
	schedule  string
	pairs     int
	telemAddr string
	traceOut  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.topoKind, "topo", "demo", "topology: demo | gen")
	flag.IntVar(&cfg.n, "n", 200, "ASes for -topo gen")
	flag.IntVar(&cfg.tier1, "tier1", 8, "tier-1 clique size for -topo gen")
	flag.IntVar(&cfg.coreN, "core", 24, "core network size for -topo gen")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for topology and the built-in schedule")
	flag.StringVar(&cfg.algo, "algo", "diversity", "selection algorithm: baseline | diversity")
	flag.IntVar(&cfg.store, "store", 60, "PCB storage limit per origin (0 = unlimited)")
	flag.DurationVar(&cfg.interval, "interval", time.Second, "beaconing interval (compressed timescale)")
	flag.DurationVar(&cfg.lifetime, "lifetime", time.Hour, "PCB lifetime")
	flag.DurationVar(&cfg.duration, "duration", 30*time.Second, "simulated duration")
	flag.StringVar(&cfg.schedule, "schedule", "", "fault schedule file (empty: built-in default)")
	flag.IntVar(&cfg.pairs, "pairs", 20, "AS pairs sampled for surviving path state")
	flag.StringVar(&cfg.telemAddr, "telemetry", "", "serve /metrics, /snapshot, /trace and /debug/pprof on this address during the run")
	flag.StringVar(&cfg.traceOut, "trace", "", "write the structured trace event log (JSONL) to this file at exit")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "chaossim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) error {
	topo, err := buildTopo(cfg)
	if err != nil {
		return err
	}
	sched, err := loadSchedule(cfg, topo)
	if err != nil {
		return err
	}
	if end := time.Duration(sched.End); end > cfg.duration {
		cfg.duration = end
	}
	var factory core.Factory
	switch cfg.algo {
	case "baseline":
		factory = core.NewBaseline(5)
	case "diversity":
		factory = core.NewDiversity(core.DefaultParams(5))
	default:
		return fmt.Errorf("unknown algorithm %q", cfg.algo)
	}

	var (
		reg    *telemetry.Registry
		tracer *telemetry.Tracer
	)
	if cfg.telemAddr != "" || cfg.traceOut != "" {
		reg = telemetry.NewRegistry()
		tracer = telemetry.NewTracer(1 << 16)
	}
	if cfg.telemAddr != "" {
		addr, err := telemetry.Serve(cfg.telemAddr, reg, tracer)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}

	runCfg := beacon.DefaultRunConfig(topo, beacon.CoreMode, factory, cfg.store)
	runCfg.Interval = cfg.interval
	runCfg.Lifetime = cfg.lifetime
	runCfg.Duration = cfg.duration
	runCfg.Chaos = sched
	runCfg.Telemetry = reg
	runCfg.Tracer = tracer

	res, err := beacon.Run(runCfg)
	if err != nil {
		return err
	}
	if cfg.traceOut != "" {
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "topology: %s\n", topo.ComputeStats())
	fmt.Fprintf(w, "%s beaconing, interval %v, %v simulated\n", cfg.algo, cfg.interval, cfg.duration)
	fmt.Fprintf(w, "\n%s\n", sched)
	fmt.Fprintf(w, "\n%s\n", res.Chaos.Summary())

	var orig, prop, recv, rej, deaf uint64
	for _, ia := range topo.IAs() {
		srv := res.Servers[ia]
		orig += srv.Originated
		prop += srv.Propagated
		recv += srv.Received
		rej += srv.Rejected
		deaf += srv.DroppedWhileDown
	}
	fmt.Fprintf(w, "PCBs: originated=%d propagated=%d received=%d rejected=%d dropped-while-crashed=%d\n",
		orig, prop, recv, rej, deaf)
	fmt.Fprintf(w, "network: dropped-on-failed-links=%d dropped-by-gray-loss=%d control-plane-bytes=%d\n",
		res.Net.DroppedOnFailedLinks, res.Net.DroppedByLoss, res.Net.GrandTotalTx())

	// Surviving path state: every fault in the default schedule heals, so
	// dissemination must have repopulated the stores by the end. Core
	// beaconing disseminates among core ASes, so sample core pairs.
	pairs := corePairs(topo, cfg.pairs)
	connected, segs := 0, 0
	for _, pr := range pairs {
		n := len(res.Servers[pr[1]].Segments(res.End, pr[0]))
		segs += n
		if n > 0 {
			connected++
		}
	}
	fmt.Fprintf(w, "path state after recovery: %d/%d sampled pairs connected, %d segments total\n",
		connected, len(pairs), segs)
	return nil
}

// corePairs deterministically enumerates up to n ordered core AS pairs.
func corePairs(topo *topology.Graph, n int) [][2]addr.IA {
	cores := topo.CoreIAs()
	var out [][2]addr.IA
	for _, a := range cores {
		for _, b := range cores {
			if a == b || len(out) >= n {
				continue
			}
			out = append(out, [2]addr.IA{a, b})
		}
	}
	return out
}

func buildTopo(cfg config) (*topology.Graph, error) {
	switch cfg.topoKind {
	case "demo":
		return topology.Demo(), nil
	case "gen":
		p := topology.DefaultGenParams()
		p.NumASes = cfg.n
		p.Tier1 = cfg.tier1
		p.Seed = cfg.seed
		full, err := topology.Generate(p)
		if err != nil {
			return nil, err
		}
		return topology.ExtractCore(full, cfg.coreN)
	default:
		return nil, fmt.Errorf("unknown topology %q", cfg.topoKind)
	}
}

// loadSchedule reads the schedule file, or builds the default plan: flap
// churn across a third of the core links plus one gray failure, one
// latency spike and one beacon-server crash, all healing before the end.
func loadSchedule(cfg config, topo *topology.Graph) (*chaos.Schedule, error) {
	if cfg.schedule != "" {
		f, err := os.Open(cfg.schedule)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return chaos.ParseSchedule(f, topo)
	}
	var coreLinks []topology.LinkID
	for _, l := range topo.Links {
		if l.Rel == topology.Core {
			coreLinks = append(coreLinks, l.ID)
		}
	}
	if len(coreLinks) == 0 {
		return nil, fmt.Errorf("topology has no core links to fault")
	}
	end := sim.Time(cfg.duration)
	n := len(coreLinks) / 3
	if n < 2 {
		n = 2
	}
	sched := chaos.FlapChurn(cfg.seed, coreLinks, n, end/6, end-end/6, 2*time.Second, 6*time.Second)
	sched.Events = append(sched.Events,
		chaos.Event{Kind: chaos.Gray, Link: coreLinks[0], At: end / 4, Down: 4 * time.Second, Rate: 0.3},
		chaos.Event{Kind: chaos.Spike, Link: coreLinks[len(coreLinks)/2], At: end / 3, Down: 4 * time.Second, Delay: 200 * time.Millisecond},
		chaos.Event{Kind: chaos.CrashAS, IA: topo.CoreIAs()[0], At: end / 2, Down: 3 * time.Second},
	)
	return sched, nil
}
