package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func demoConfig() config {
	return config{
		topoKind: "demo", seed: 1, algo: "diversity", store: 60,
		interval: time.Second, lifetime: time.Hour, duration: 30 * time.Second,
		pairs: 20,
	}
}

// TestRunDeterministic is the CLI contract: the same seed and schedule
// must print a byte-identical summary — the whole fault timeline,
// including jitter, is drawn from the schedule seed.
func TestRunDeterministic(t *testing.T) {
	runOnce := func(cfg config) []byte {
		var buf bytes.Buffer
		if err := run(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cfg := demoConfig()
	first := runOnce(cfg)
	if !strings.Contains(string(first), "chaos: flaps=") {
		t.Fatalf("summary missing chaos counters:\n%s", first)
	}
	if second := runOnce(cfg); !bytes.Equal(first, second) {
		t.Errorf("same config produced different output:\n--- first ---\n%s--- second ---\n%s",
			first, second)
	}
	cfg.seed = 2
	if other := runOnce(cfg); bytes.Equal(first, other) {
		t.Error("different seed produced identical output")
	}
}

// TestRunScheduleFile replays a schedule file with every fault kind,
// including endpoint-pair link syntax and a jittered periodic flap.
func TestRunScheduleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.txt")
	sched := `# demo topology faults
seed 7
end 20s
flap 1-ff00:0:101>1-ff00:0:102 at 4s down 1s period 5s jitter 200ms
gray 2 at 6s down 3s rate 0.5
spike 3 at 8s down 2s delay 150ms
crash 1-ff00:0:101 at 10s down 2s
`
	if err := os.WriteFile(path, []byte(sched), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := demoConfig()
	cfg.schedule = path
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gray=1", "spikes=1", "crashes=1", "schedule seed=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var again bytes.Buffer
	if err := run(&again, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("schedule-file replay not deterministic")
	}
}

func TestRunRejectsBadSchedule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("flap 1 at 2s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := demoConfig()
	cfg.schedule = path
	if err := run(&bytes.Buffer{}, cfg); err == nil {
		t.Fatal("schedule without 'end' and 'down' accepted")
	}
}
