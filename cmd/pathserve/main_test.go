package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func smokeCfg() config {
	return config{
		scale:     "smoke",
		endpoints: 2000,
		actors:    8,
		shards:    8,
		duration:  4 * time.Second,
		think:     150 * time.Millisecond,
		tick:      25 * time.Millisecond,
		zipf:      1.2,
		cacheTTL:  time.Second,
		seed:      1,
	}
}

// TestRunDeterministic is the binary-level acceptance gate: the full
// stdout of a run — tables, counters and the closing fingerprint — must
// be byte-identical across invocations and across worker counts.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker comparison is not short")
	}
	outs := make(map[int]string)
	for _, w := range []int{1, 4} {
		cfg := smokeCfg()
		cfg.workers = w
		var buf bytes.Buffer
		if err := run(&buf, cfg); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		outs[w] = buf.String()
	}
	if outs[1] != outs[4] {
		t.Errorf("output differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", outs[1], outs[4])
	}
	if !strings.Contains(outs[1], "fingerprint: ") {
		t.Errorf("output missing fingerprint line:\n%s", outs[1])
	}

	// Same config again: the run itself must be reproducible.
	var again bytes.Buffer
	cfg := smokeCfg()
	cfg.workers = 1
	if err := run(&again, cfg); err != nil {
		t.Fatal(err)
	}
	if again.String() != outs[1] {
		t.Error("repeated identical run produced different output")
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs are not short")
	}
	var a, b bytes.Buffer
	ca := smokeCfg()
	if err := run(&a, ca); err != nil {
		t.Fatal(err)
	}
	cb := smokeCfg()
	cb.seed = 2
	if err := run(&b, cb); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced identical output")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	cfg := smokeCfg()
	cfg.traceOut = filepath.Join(dir, "trace.jsonl")
	cfg.snapOut = filepath.Join(dir, "snapshot.txt")
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	tr, err := os.ReadFile(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tr, []byte("snapshot_published")) {
		t.Error("trace file has no snapshot_published events")
	}
	snap, err := os.ReadFile(cfg.snapOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snap, []byte("pathsrv_lookups_total")) {
		t.Error("snapshot file has no pathsrv counters")
	}
}

func TestRunBench(t *testing.T) {
	cfg := smokeCfg()
	cfg.duration = 3 * time.Second
	cfg.endpoints = 500
	cfg.bench = true
	cfg.benchReaders = 2
	cfg.benchOps = 500
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunFleetMode drives the -replicas path end to end: both selector
// variants under the crash storm, the convergence check, artifacts and
// the recovery benchmark.
func TestRunFleetMode(t *testing.T) {
	dir := t.TempDir()
	cfg := smokeCfg()
	cfg.replicas = 3
	cfg.ckptEvery = 96
	cfg.syncEvery = 400 * time.Millisecond
	cfg.crashDown = 500 * time.Millisecond
	cfg.crashPeriod = 1300 * time.Millisecond
	cfg.bench = true
	cfg.traceOut = filepath.Join(dir, "trace.jsonl")
	cfg.snapOut = filepath.Join(dir, "snapshot.txt")
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fingerprint: ", "crashes / recoveries", "replicas converged", "true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q", want)
		}
	}
	tr, err := os.ReadFile(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replica_crashed", "replica_recovered", "antientropy_pull"} {
		if !bytes.Contains(tr, []byte(want)) {
			t.Errorf("trace file has no %s events", want)
		}
	}
	snap, err := os.ReadFile(cfg.snapOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pathsrv_replica_crashes_total", "pathsrv_client_stale_serves_total"} {
		if !bytes.Contains(snap, []byte(want)) {
			t.Errorf("snapshot file missing %s", want)
		}
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	cfg := smokeCfg()
	cfg.scale = "galactic"
	if err := run(&bytes.Buffer{}, cfg); err == nil {
		t.Error("unknown scale accepted")
	}
}
