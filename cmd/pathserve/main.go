// Command pathserve runs the path-lookup serving layer under a
// closed-loop client population at interactive-Internet scale: by
// default one million simulated endpoints issue Zipf-skewed path
// lookups against a sharded epoch-snapshot service while live beaconing
// feeds registrations underneath and a chaos storm flaps core links
// mid-run. The deterministic summary — lookups, virtual QPS, modeled
// tail latency, cache hit rate, shard imbalance and the run fingerprint
// — is byte-identical for every -workers setting.
//
// Usage:
//
//	pathserve                                # 1M endpoints, default scale
//	pathserve -endpoints 200000 -duration 6s
//	pathserve -scale smoke -workers 4        # CI-sized, parallel
//	pathserve -bench -benchreaders 8         # plus a wall-clock read bench
//	pathserve -trace events.jsonl -snapshot metrics.txt
//
// With -replicas N (N > 0) the single service becomes a crash-
// recoverable fleet of N write-ahead-logged replicas under a rolling
// crash storm plus a full blackout: clients fail over between replicas
// with backoff and serve stale cache entries when the whole fleet is
// dark, crashed replicas recover via checkpoint + WAL replay, and an
// anti-entropy sweep reconverges them (see RESILIENCE.md). -bench then
// reports wall-clock WAL recovery cost instead of the read benchmark.
//
//	pathserve -replicas 3 -endpoints 200000 -duration 8s
//	pathserve -replicas 3 -bench             # plus a recovery bench
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scionmpr/internal/experiments"
	"scionmpr/internal/pathsrv"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
)

type config struct {
	scale     string
	endpoints int
	actors    int
	shards    int
	duration  time.Duration
	think     time.Duration
	tick      time.Duration
	zipf      float64
	cacheTTL  time.Duration
	seed      int64
	workers   int

	replicas    int
	ckptEvery   uint64
	syncEvery   time.Duration
	crashDown   time.Duration
	crashPeriod time.Duration

	bench        bool
	benchReaders int
	benchOps     int

	telemAddr string
	traceOut  string
	snapOut   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.scale, "scale", "default", "topology scale preset: smoke | default | paper")
	flag.IntVar(&cfg.endpoints, "endpoints", 1_000_000, "closed-loop endpoint population")
	flag.IntVar(&cfg.actors, "actors", 64, "client actor shards the endpoints multiplex onto")
	flag.IntVar(&cfg.shards, "shards", 16, "service destination shards (1..64)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "virtual run length")
	flag.DurationVar(&cfg.think, "think", 250*time.Millisecond, "mean endpoint think time")
	flag.DurationVar(&cfg.tick, "tick", 10*time.Millisecond, "client scheduling quantum")
	flag.Float64Var(&cfg.zipf, "zipf", 1.2, "destination popularity Zipf exponent")
	flag.DurationVar(&cfg.cacheTTL, "cachettl", 2*time.Second, "client reply-cache TTL (0 disables caching)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for topology, chaos schedule and client randomness")
	flag.IntVar(&cfg.workers, "workers", 0, "simulator workers: 1 sequential, 0 default; output is identical for every setting")
	flag.IntVar(&cfg.replicas, "replicas", 0, "replicated fleet size; > 0 runs the crash-recovery failover experiment instead of the single-service run")
	flag.Uint64Var(&cfg.ckptEvery, "ckptevery", 192, "WAL records between checkpoints (with -replicas)")
	flag.DurationVar(&cfg.syncEvery, "syncevery", 500*time.Millisecond, "anti-entropy sweep period (with -replicas)")
	flag.DurationVar(&cfg.crashDown, "crashdown", time.Second, "per-replica outage length in the crash storm (with -replicas)")
	flag.DurationVar(&cfg.crashPeriod, "crashperiod", 2700*time.Millisecond, "per-replica crash period in the storm (with -replicas)")
	flag.BoolVar(&cfg.bench, "bench", false, "after the run, wall-clock benchmark concurrent reads on the populated service (volatile numbers, printed to stderr)")
	flag.IntVar(&cfg.benchReaders, "benchreaders", 4, "reader goroutines for -bench")
	flag.IntVar(&cfg.benchOps, "benchops", 200_000, "lookups per reader for -bench")
	flag.StringVar(&cfg.telemAddr, "telemetry", "", "serve /metrics, /snapshot, /trace and /debug/pprof on this address during the run")
	flag.StringVar(&cfg.traceOut, "trace", "", "write the structured trace event log (JSONL) to this file")
	flag.StringVar(&cfg.snapOut, "snapshot", "", "write the deterministic telemetry snapshot to this file")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pathserve:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) error {
	var scale experiments.Scale
	switch cfg.scale {
	case "smoke":
		scale = experiments.SmokeScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", cfg.scale)
	}
	scale.Seed = cfg.seed
	scale.Workers = cfg.workers
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(1 << 16)
	scale.Telemetry = reg
	scale.Tracer = tracer
	if cfg.telemAddr != "" {
		addr, err := telemetry.Serve(cfg.telemAddr, reg, tracer)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}

	sc := experiments.DefaultServeConfig()
	sc.Endpoints = cfg.endpoints
	sc.Actors = cfg.actors
	sc.Shards = cfg.shards
	sc.Duration = cfg.duration
	sc.MeanThink = cfg.think
	sc.Tick = cfg.tick
	sc.ZipfS = cfg.zipf
	sc.CacheTTL = cfg.cacheTTL

	if cfg.replicas > 0 {
		return runFleet(w, cfg, scale, sc)
	}

	res, err := experiments.RunServe(scale, sc)
	if err != nil {
		return err
	}

	// The fingerprint is sealed before any volatile post-run work.
	fp := res.Fingerprint()
	if cfg.traceOut != "" {
		if err := os.WriteFile(cfg.traceOut, []byte(res.TraceJSONL), 0o644); err != nil {
			return err
		}
	}
	if cfg.snapOut != "" {
		if err := os.WriteFile(cfg.snapOut, []byte(res.Snapshot), 0o644); err != nil {
			return err
		}
	}

	res.Print(w)
	fmt.Fprintf(w, "\nfingerprint: %s\n", hex.EncodeToString(fp[:]))
	fmt.Fprintf(os.Stderr, "wall: %v for %d events (%d endpoints, workers=%d)\n",
		res.Elapsed.Round(time.Millisecond), res.Executed, cfg.endpoints, cfg.workers)

	if cfg.bench {
		res.Service.DetachClock()
		bres := pathsrv.ReadBench(res.Service, pathsrv.BenchConfig{
			Readers:  cfg.benchReaders,
			Ops:      cfg.benchOps,
			Sources:  res.IAs,
			Dests:    res.IAs,
			ZipfS:    cfg.zipf,
			Seed:     cfg.seed,
			CacheTTL: sim.Time(cfg.cacheTTL),
			CacheCap: 4096,
			Now:      sim.Time(cfg.duration),
		})
		fmt.Fprintf(os.Stderr, "read bench (wall-clock, volatile): ")
		bres.Print(os.Stderr)
	}
	return nil
}

// runFleet runs the crash-recoverable replicated fleet variant behind
// -replicas N. The fingerprint covers both selector runs.
func runFleet(w io.Writer, cfg config, scale experiments.Scale, sc experiments.ServeConfig) error {
	fc := experiments.DefaultFailoverConfig()
	fc.ServeConfig = sc
	fc.Replicas = cfg.replicas
	fc.CheckpointEvery = cfg.ckptEvery
	fc.SyncInterval = cfg.syncEvery
	fc.CrashDown = cfg.crashDown
	fc.CrashPeriod = cfg.crashPeriod

	res, err := experiments.RunFailover(scale, fc)
	if err != nil {
		return err
	}
	fp := res.Fingerprint()
	if cfg.traceOut != "" {
		if err := os.WriteFile(cfg.traceOut, []byte(res.Runs[0].TraceJSONL), 0o644); err != nil {
			return err
		}
	}
	if cfg.snapOut != "" {
		if err := os.WriteFile(cfg.snapOut, []byte(res.Runs[0].Snapshot), 0o644); err != nil {
			return err
		}
	}
	res.Print(w)
	fmt.Fprintf(w, "\nfingerprint: %s\n", hex.EncodeToString(fp[:]))
	for _, run := range res.Runs {
		fmt.Fprintf(os.Stderr, "wall: %v for %d events (%s)\n",
			run.Elapsed.Round(time.Millisecond), run.Executed, run.Name)
	}
	if cfg.bench {
		// Recovery bench: rebuild replica 0 of the diversity run from its
		// final WAL image (checkpoint + tail replay), wall-clocked.
		rep := res.Runs[0].Fleet.Replica(0)
		bres := pathsrv.RecoveryBench(rep.WAL(), pathsrv.Config{
			Shards:        sc.Shards,
			RevocationTTL: sim.Time(sc.RevTTL),
		}, 5)
		fmt.Fprintf(os.Stderr, "recovery bench (wall-clock, volatile): ")
		bres.Print(os.Stderr)
	}
	return nil
}
