// Command pathprobe bootstraps a SCION network through the public API,
// looks up the multi-path set between two ASes, and probes each path with
// a round-trip packet, printing per-path hop sequences and virtual RTTs —
// the application-level path visibility that motivates path-aware
// networking (paper §1).
//
// Usage:
//
//	pathprobe -topo demo -src 2-ff00:0:203 -dst 1-ff00:0:106
//	pathprobe -topo scionlab -src 1-ff00:0:1000 -dst 11-ff00:0:1050
//	pathprobe -topo gen -n 300 -algo baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scionmpr/scion"
)

func main() {
	var (
		topoKind = flag.String("topo", "demo", "topology: demo | scionlab | gen")
		n        = flag.Int("n", 300, "ASes for -topo gen")
		seed     = flag.Int64("seed", 1, "generator seed")
		srcStr   = flag.String("src", "", "source IA (defaults per topology)")
		dstStr   = flag.String("dst", "", "destination IA (defaults per topology)")
		algoStr  = flag.String("algo", "diversity", "beaconing algorithm: baseline | diversity")
	)
	flag.Parse()
	if err := run(*topoKind, *n, *seed, *srcStr, *dstStr, *algoStr); err != nil {
		fmt.Fprintln(os.Stderr, "pathprobe:", err)
		os.Exit(1)
	}
}

func run(topoKind string, n int, seed int64, srcStr, dstStr, algoStr string) error {
	var topo *scion.Topology
	var src, dst scion.IA
	switch topoKind {
	case "demo":
		topo = scion.DemoTopology()
		src = scion.MustIA(2, 0xff00_0000_0203)
		dst = scion.MustIA(1, 0xff00_0000_0106)
	case "scionlab":
		topo = scion.SCIONLabTopology()
		src = scion.MustIA(1, 0xff00_0000_1000)
		dst = scion.MustIA(11, 0xff00_0000_1050)
	case "gen":
		var err error
		topo, err = scion.GenerateTopology(n, 8, seed)
		if err != nil {
			return err
		}
		// Generated topologies are flat (single ISD, no cores); probe the
		// extracted demo-style pair is not applicable — require explicit IAs.
		if srcStr == "" || dstStr == "" {
			return fmt.Errorf("-topo gen requires -src and -dst")
		}
	default:
		return fmt.Errorf("unknown topology %q", topoKind)
	}
	var err error
	if srcStr != "" {
		if src, err = scion.ParseIA(srcStr); err != nil {
			return err
		}
	}
	if dstStr != "" {
		if dst, err = scion.ParseIA(dstStr); err != nil {
			return err
		}
	}

	opts := scion.DefaultOptions()
	if algoStr == "baseline" {
		opts.Algorithm = scion.Baseline
	}
	start := time.Now()
	net, err := scion.NewNetwork(topo, opts)
	if err != nil {
		return err
	}
	fmt.Printf("bootstrapped %d ASes in %v (control plane: %d bytes)\n",
		net.Topo.NumASes(), time.Since(start).Round(time.Millisecond), net.ControlPlaneBytes())

	paths, err := net.Paths(src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("%d paths %s -> %s:\n", len(paths), src, dst)

	srcHost, err := net.Host(src, 10, 0, 0, 1)
	if err != nil {
		return err
	}
	dstHost, err := net.Host(dst, 10, 0, 0, 2)
	if err != nil {
		return err
	}
	// Echo responder: bounce every probe straight back.
	dstHost.OnReceive(func(from scion.HostAddr, payload []byte) {
		_ = dstHost.Send(from, payload)
	})

	for i, p := range paths {
		var hops []scion.IA
		for _, h := range p.Hops {
			hops = append(hops, h.Hop.IA)
		}
		// Probe: send and time the round trip on this specific path.
		sentAt := net.Clock().Now()
		var rtt time.Duration
		srcHost.OnReceive(func(scion.HostAddr, []byte) {
			rtt = time.Duration(net.Clock().Now() - sentAt)
		})
		// Temporarily pin the endpoint to this path by seeding only it.
		if err := probeOn(net, srcHost, dstHost, p); err != nil {
			fmt.Printf("  [%d] %v  (probe failed: %v)\n", i, hops, err)
			continue
		}
		net.Run()
		fmt.Printf("  [%d] hops=%d rtt=%-8v mtu=%-5d %v\n", i, len(p.Hops), rtt, p.MTU, hops)
	}
	return nil
}

// probeOn injects one probe over a specific forwarding path.
func probeOn(net *scion.Network, src, dst *scion.Host, p *scion.FwdPath) error {
	return net.SendOn(p, src.Addr, dst.Addr, []byte("probe"))
}
