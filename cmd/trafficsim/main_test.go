package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func defaultConfig() config {
	return config{
		n: 60, tier1: 4, cores: 5, seed: 1,
		flows: 10000, pairs: 40,
		rate: 5000, meanSize: 128 << 10, zipf: 1.2,
		sched: "weighted", chunk: 64 << 10,
	}
}

// TestRunDeterministic is the CLI contract: the same seed must produce a
// byte-identical summary across independent runs — 10,000 concurrent flows
// through topology generation, beaconing, path lookup, token buckets and
// scheduling, with not a single source of nondeterminism.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 10k-flow runs in -short mode")
	}
	runOnce := func(cfg config) []byte {
		var buf bytes.Buffer
		if err := run(&buf, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cfg := defaultConfig()
	first := runOnce(cfg)
	if !strings.Contains(string(first), "flows: 10000 total") {
		t.Fatalf("expected 10000 flows in summary:\n%s", first)
	}
	if second := runOnce(cfg); !bytes.Equal(first, second) {
		t.Errorf("same seed produced different output:\n--- first ---\n%s--- second ---\n%s",
			first, second)
	}
	cfg.seed = 2
	if other := runOnce(cfg); bytes.Equal(first, other) {
		t.Error("different seed produced identical output")
	}
}

// TestRunSmall exercises the deadline cutoff and the alternate schedulers
// on a workload sized for the test cache.
func TestRunSmall(t *testing.T) {
	for _, sched := range []string{"single-best", "round-robin", "latency"} {
		cfg := defaultConfig()
		cfg.n, cfg.tier1, cfg.cores = 20, 3, 3
		cfg.flows, cfg.pairs = 200, 10
		cfg.sched = sched
		cfg.duration = 500 * time.Millisecond
		var buf bytes.Buffer
		if err := run(&buf, cfg); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !strings.Contains(buf.String(), "flows: 200 total") {
			t.Errorf("%s: unexpected output:\n%s", sched, buf.String())
		}
	}
}

func TestRunRejectsBadScheduler(t *testing.T) {
	cfg := defaultConfig()
	cfg.sched = "no-such-scheduler"
	if err := run(&bytes.Buffer{}, cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}
