// Command trafficsim drives the flow-level multipath traffic engine over
// a freshly bootstrapped SCION network: it generates an intra-ISD
// deployment, boots beaconing and path servers, generates a deterministic
// workload (Poisson arrivals, heavy-tailed sizes, Zipf pair popularity),
// runs every flow through token-bucket link capacities with a multipath
// scheduler, and prints the flow/link observables. Equal seeds produce
// byte-identical summaries.
//
// Usage:
//
//	trafficsim                                  # 10k flows, weighted striping
//	trafficsim -flows 20000 -sched round-robin
//	trafficsim -n 80 -cores 6 -seed 7 -zipf 1.3
//	trafficsim -duration 5s                     # cut the run at 5s virtual time
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/traffic"
	"scionmpr/scion"
)

type config struct {
	n, tier1, cores int
	seed            int64
	flows, pairs    int
	rate            float64
	meanSize        float64
	zipf            float64
	sched           string
	chunk           int64
	duration        time.Duration
	telemAddr       string
	traceOut        string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 60, "ASes in the generated Internet topology")
	flag.IntVar(&cfg.tier1, "tier1", 4, "tier-1 clique size")
	flag.IntVar(&cfg.cores, "cores", 5, "ISD core ASes (highest customer cone)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for topology and workload")
	flag.IntVar(&cfg.flows, "flows", 10000, "number of flows")
	flag.IntVar(&cfg.pairs, "pairs", 40, "endpoint AS pairs to spread flows over")
	flag.Float64Var(&cfg.rate, "rate", 5000, "Poisson arrival rate (flows/s)")
	flag.Float64Var(&cfg.meanSize, "mean", 128<<10, "mean flow size (bytes, bounded Pareto)")
	flag.Float64Var(&cfg.zipf, "zipf", 1.2, "Zipf exponent for pair popularity (<=0: uniform)")
	flag.StringVar(&cfg.sched, "sched", "weighted",
		"path-selection policy spec: single-best | round-robin | weighted | latency [stretch=<f>] | disjoint | hybrid [cap=<w> lat=<w> loss=<w> disj=<w> hops=<w> rev=<w> revwin=<d>]")
	flag.Int64Var(&cfg.chunk, "chunk", 64<<10, "admission chunk size (bytes)")
	flag.DurationVar(&cfg.duration, "duration", 0, "virtual-time cutoff (0: run all flows to completion)")
	flag.StringVar(&cfg.telemAddr, "telemetry", "", "serve /metrics, /snapshot, /trace and /debug/pprof on this address during the run")
	flag.StringVar(&cfg.traceOut, "trace", "", "write the structured trace event log (JSONL) to this file at exit")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "trafficsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) error {
	topo, err := scion.GenerateISDTopology(cfg.n, cfg.tier1, cfg.cores, cfg.seed)
	if err != nil {
		return err
	}
	var (
		reg    *telemetry.Registry
		tracer *telemetry.Tracer
	)
	if cfg.telemAddr != "" || cfg.traceOut != "" {
		reg = telemetry.NewRegistry()
		tracer = telemetry.NewTracer(1 << 16)
	}
	if cfg.telemAddr != "" {
		addr, err := telemetry.Serve(cfg.telemAddr, reg, tracer)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}
	if cfg.traceOut != "" {
		defer func() {
			f, err := os.Create(cfg.traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "trafficsim: trace:", err)
				return
			}
			defer f.Close()
			if err := tracer.WriteJSONL(f); err != nil {
				fmt.Fprintln(os.Stderr, "trafficsim: trace:", err)
			}
		}()
	}
	opts := scion.DefaultOptions()
	opts.Telemetry = reg
	opts.Tracer = tracer
	net, err := scion.NewNetwork(topo, opts)
	if err != nil {
		return err
	}
	factory, err := traffic.NewScheduler(cfg.sched)
	if err != nil {
		return err
	}
	eng, err := traffic.NewEngine(traffic.Config{
		Clock:     net.Clock(),
		Net:       net.Fabric().Net,
		Fabric:    net.Fabric(),
		Provider:  net.Paths,
		Links:     traffic.NewLinkModel(traffic.DefaultCapacity()),
		Scheduler: func() traffic.Scheduler { return factory() },
		ChunkSize: cfg.chunk,
		Telemetry: reg,
	})
	if err != nil {
		return err
	}

	pairs := graphalg.SamplePairs(topo, cfg.pairs)
	if len(pairs) == 0 {
		return fmt.Errorf("no endpoint pairs on a %d-AS topology", topo.NumASes())
	}
	pairs = reachable(net, pairs)
	if len(pairs) == 0 {
		return fmt.Errorf("no reachable endpoint pairs")
	}
	specs := traffic.Generate(traffic.WorkloadParams{
		Flows:       cfg.flows,
		Pairs:       pairs,
		ArrivalRate: cfg.rate,
		MeanSize:    cfg.meanSize,
		ZipfS:       cfg.zipf,
		Seed:        cfg.seed,
	})
	for _, spec := range specs {
		eng.Add(spec)
	}

	fmt.Fprintf(w, "topology: %d ASes (%d cores), seed %d\n",
		topo.NumASes(), len(topo.CoreIAs()), cfg.seed)
	fmt.Fprintf(w, "workload: %d flows over %d pairs, %s scheduler, %g flows/s, mean %g B\n",
		len(specs), len(pairs), cfg.sched, cfg.rate, cfg.meanSize)

	var s *traffic.Summary
	if cfg.duration > 0 {
		s = eng.RunUntil(cfg.duration)
	} else {
		s = eng.Run()
	}
	s.Print(w)
	return nil
}

// reachable keeps the pairs the bootstrapped network has paths for, so
// workload flows never burn their retries on unreachable pairs.
func reachable(net *scion.Network, pairs [][2]addr.IA) [][2]addr.IA {
	out := pairs[:0]
	for _, p := range pairs {
		if _, err := net.Paths(p[0], p[1]); err == nil {
			out = append(out, p)
		}
	}
	return out
}
