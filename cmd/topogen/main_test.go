package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildTopoKinds(t *testing.T) {
	g, err := buildTopo("gen", "", 80, 5, 1)
	if err != nil || g.NumASes() != 80 {
		t.Fatalf("gen: %v (ASes %d)", err, g.NumASes())
	}
	if g, err = buildTopo("scionlab", "", 0, 0, 0); err != nil || g.NumASes() != 63 {
		t.Fatalf("scionlab: %v", err)
	}
	if g, err = buildTopo("demo", "", 0, 0, 0); err != nil || g.NumASes() != 16 {
		t.Fatalf("demo: %v", err)
	}
	if _, err = buildTopo("nope", "", 0, 0, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBuildTopoParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel.txt")
	if err := os.WriteFile(path, []byte("1|2|-1\n2|3|-1\n1|3|0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := buildTopo("gen", path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumASes() != 3 || len(g.Links) != 3 {
		t.Errorf("parsed ASes=%d links=%d", g.NumASes(), len(g.Links))
	}
	if _, err := buildTopo("gen", filepath.Join(dir, "missing.txt"), 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}
