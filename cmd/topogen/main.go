// Command topogen generates and inspects the AS-level topologies used by
// the simulations: synthetic Internet graphs matching the CAIDA
// AS-rel-geo statistics, extracted core networks, large intra-ISD
// hierarchies, the SCIONLab testbed core, and the Figure 1 demo network.
//
// Usage:
//
//	topogen -kind gen -n 12000 -tier1 15 -seed 1 -o topo.txt
//	topogen -kind gen -n 12000 -core 2000 -isds 200 -stats
//	topogen -kind scionlab -stats
//	topogen -kind demo -o demo.txt
//	topogen -parse as-rel.txt -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"scionmpr/internal/topology"
)

func main() {
	var (
		kind  = flag.String("kind", "gen", "topology kind: gen | scionlab | demo")
		n     = flag.Int("n", 12000, "number of ASes (gen)")
		tier1 = flag.Int("tier1", 15, "tier-1 clique size (gen)")
		seed  = flag.Int64("seed", 1, "generator seed")
		core  = flag.Int("core", 0, "extract the N highest-degree ASes as a core network")
		isds  = flag.Int("isds", 0, "assign the extracted core to this many ISDs")
		isd   = flag.Int("isd", 0, "build an intra-ISD topology with this many core ASes")
		parse = flag.String("parse", "", "parse a CAIDA serial-2 file instead of generating")
		out   = flag.String("o", "", "write the topology in CAIDA serial-2 format to this file")
		stats = flag.Bool("stats", true, "print topology statistics")
	)
	flag.Parse()

	topo, err := buildTopo(*kind, *parse, *n, *tier1, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Println("full topology:", topo.ComputeStats())
	}
	if *core > 0 {
		coreTopo, err := topology.ExtractCore(topo, *core)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		if *isds > 0 {
			relabeled, _, err := topology.AssignISDs(coreTopo, *isds)
			if err != nil {
				fmt.Fprintln(os.Stderr, "topogen:", err)
				os.Exit(1)
			}
			coreTopo = relabeled
		}
		topo = coreTopo
		if *stats {
			fmt.Println("core network:  ", topo.ComputeStats())
		}
	}
	if *isd > 0 {
		isdTopo, err := topology.BuildISD(topo, *isd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		topo = isdTopo
		if *stats {
			fmt.Println("intra-ISD:     ", topo.ComputeStats())
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := topology.WriteCAIDA(f, topo); err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}

func buildTopo(kind, parse string, n, tier1 int, seed int64) (*topology.Graph, error) {
	if parse != "" {
		f, err := os.Open(parse)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.ParseCAIDA(f, 1)
	}
	switch kind {
	case "gen":
		p := topology.DefaultGenParams()
		p.NumASes = n
		p.Tier1 = tier1
		p.Seed = seed
		return topology.Generate(p)
	case "scionlab":
		return topology.SCIONLab(), nil
	case "demo":
		return topology.Demo(), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}
