package scion

import (
	"encoding/binary"
	"fmt"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/pathdb"
	"scionmpr/internal/seg"
)

// Remote path-segment lookup: the paper describes down- and core-segment
// lookups as unicast operations to the origin AS's path server, riding
// regular forwarding paths (§2.2, §4.1). This file implements that wire
// protocol on top of the data plane: requests and replies travel as SCION
// packets addressed to the control service, and the caller observes the
// exact byte cost the paper's Table 1 accounts for.

// Control-service message kinds (first payload byte).
const (
	msgSegRequest = 0x01
	msgSegReply   = 0x02
)

// encodeRequest frames a pathdb.Request for the wire.
func encodeRequest(req pathdb.Request) []byte {
	out := make([]byte, 2+8)
	out[0] = msgSegRequest
	out[1] = byte(req.Type)
	binary.BigEndian.PutUint64(out[2:], req.Dst.Uint64())
	return out
}

func decodeRequest(b []byte) (pathdb.Request, error) {
	if len(b) < 10 || b[0] != msgSegRequest {
		return pathdb.Request{}, fmt.Errorf("scion: malformed segment request")
	}
	return pathdb.Request{
		Type: pathdb.SegType(b[1]),
		Dst:  addr.IAFromUint64(binary.BigEndian.Uint64(b[2:10])),
	}, nil
}

// encodeReplyFrame frames one page of a (possibly paginated) reply:
// tag, frame index, frame count, segment count, then length-prefixed
// segments.
func encodeReplyFrame(idx, total byte, segs []*seg.PCB) []byte {
	out := []byte{msgSegReply, idx, total}
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(segs)))
	out = append(out, n[:]...)
	for _, s := range segs {
		b := s.Encode()
		binary.BigEndian.PutUint16(n[:], uint16(len(b)))
		out = append(out, n[:]...)
		out = append(out, b...)
	}
	return out
}

// encodeReply is the single-frame convenience used by tests.
func encodeReply(segs []*seg.PCB) []byte { return encodeReplyFrame(0, 1, segs) }

// decodeReplyFrame parses one page, returning its segments plus the
// frame index and total frame count.
func decodeReplyFrame(b []byte) ([]*seg.PCB, byte, byte, error) {
	segs, idx, total, err := decodeReplyInner(b)
	return segs, idx, total, err
}

func decodeReply(b []byte) ([]*seg.PCB, error) {
	segs, _, total, err := decodeReplyInner(b)
	if err == nil && total != 1 {
		return nil, fmt.Errorf("scion: multi-frame reply in single-frame decode")
	}
	return segs, err
}

func decodeReplyInner(b []byte) ([]*seg.PCB, byte, byte, error) {
	if len(b) < 5 || b[0] != msgSegReply {
		return nil, 0, 0, fmt.Errorf("scion: malformed segment reply")
	}
	idx, total := b[1], b[2]
	count := int(binary.BigEndian.Uint16(b[3:5]))
	b = b[5:]
	var out []*seg.PCB
	for i := 0; i < count; i++ {
		if len(b) < 2 {
			return nil, 0, 0, fmt.Errorf("scion: truncated reply segment %d", i)
		}
		n := int(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
		if len(b) < n {
			return nil, 0, 0, fmt.Errorf("scion: short reply segment %d", i)
		}
		s, err := seg.Decode(b[:n])
		if err != nil {
			return nil, 0, 0, err
		}
		out = append(out, s)
		b = b[n:]
	}
	return out, idx, total, nil
}

// controlService answers segment requests arriving at an AS's control
// service address by querying the local path server and replying over the
// reversed forwarding path.
func (n *Network) controlService(ia addr.IA, pkt *dataplane.Packet) {
	req, err := decodeRequest(pkt.Payload)
	if err != nil {
		return
	}
	ps := n.pathServers[ia]
	if ps == nil {
		return
	}
	now := n.intraRun.End
	var segs []*seg.PCB
	switch req.Type {
	case pathdb.Down:
		segs = ps.LookupDown(now, req.Dst)
	case pathdb.Core:
		segs = ps.LookupCore(now, req.Dst)
	case pathdb.Up:
		segs = ps.LookupUp(now)
	}
	rev, err := pkt.Path.Reverse(n.Infra.ForwardingKey)
	if err != nil {
		return
	}
	// Replies larger than the path MTU are paginated: each frame carries
	// as many whole segments as fit (real path servers paginate segment
	// replies the same way).
	budget := 1200 // conservative payload budget under the default MTU
	var frames [][]*seg.PCB
	var cur []*seg.PCB
	curBytes := 0
	for _, sg := range segs {
		w := sg.WireLen() + 2
		if curBytes > 0 && curBytes+w > budget {
			frames = append(frames, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, sg)
		curBytes += w
	}
	frames = append(frames, cur) // cur may be empty: an empty reply is one frame
	total := byte(len(frames))
	for i, frame := range frames {
		reply := &dataplane.Packet{
			Src:     addr.HostSvc(ia, addr.SvcCS),
			Dst:     pkt.Src,
			Path:    rev,
			Payload: encodeReplyFrame(byte(i), total, frame),
		}
		_ = n.fabric.Inject(reply)
	}
}

// LookupResult is the outcome of a remote segment lookup.
type LookupResult struct {
	Segments []*seg.PCB
	// RequestBytes and ReplyBytes are the on-wire packet sizes, the
	// Table 1 observables for the lookup components.
	RequestBytes, ReplyBytes int
	// RTT is the virtual round-trip time of the query.
	RTT int64 // nanoseconds of virtual time
}

// RemoteLookup sends a segment request from an AS to another AS's path
// server over a real forwarding path and waits (in virtual time) for the
// reply. It demonstrates and measures the paper's pull-based path-server
// infrastructure: lookups are unicast, amortized by data traffic, and
// independent of global broadcast.
func (n *Network) RemoteLookup(from, server addr.IA, req pathdb.Request) (*LookupResult, error) {
	if from == server {
		// Local lookup (endpoint path lookup): intra-AS, no SCION hop.
		ps := n.pathServers[server]
		if ps == nil {
			return nil, fmt.Errorf("scion: no path server at %s", server)
		}
		now := n.intraRun.End
		var segs []*seg.PCB
		switch req.Type {
		case pathdb.Up:
			segs = ps.LookupUp(now)
		case pathdb.Down:
			segs = ps.LookupDown(now, req.Dst)
		case pathdb.Core:
			segs = ps.LookupCore(now, req.Dst)
		}
		return &LookupResult{Segments: segs}, nil
	}
	paths, err := n.Paths(from, server)
	if err != nil {
		return nil, err
	}
	reqPkt := &dataplane.Packet{
		Src:     addr.HostSvc(from, addr.SvcCS),
		Dst:     addr.HostSvc(server, addr.SvcCS),
		Path:    paths[0],
		Payload: encodeRequest(req),
	}
	var result *LookupResult
	var decodeErr error
	sentAt := n.clock.Now()
	frames := map[byte][]*seg.PCB{}
	replyBytes := 0
	prev := n.svcHandlers[from]
	n.svcHandlers[from] = func(pkt *dataplane.Packet) {
		segs, idx, total, err := decodeReplyFrame(pkt.Payload)
		if err != nil {
			decodeErr = err
			return
		}
		frames[idx] = segs
		replyBytes += pkt.WireLen()
		if len(frames) < int(total) {
			return
		}
		var all []*seg.PCB
		for i := byte(0); i < total; i++ {
			all = append(all, frames[i]...)
		}
		result = &LookupResult{
			Segments:     all,
			RequestBytes: reqPkt.WireLen(),
			ReplyBytes:   replyBytes,
			RTT:          int64(n.clock.Now() - sentAt),
		}
	}
	defer func() { n.svcHandlers[from] = prev }()
	if err := n.fabric.Inject(reqPkt); err != nil {
		return nil, err
	}
	n.clock.Run()
	if decodeErr != nil {
		return nil, decodeErr
	}
	if result == nil {
		return nil, fmt.Errorf("scion: lookup %s -> %s got no reply", from, server)
	}
	return result, nil
}
