package scion

import (
	"io"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/topology"
)

// Re-exported types: the public API is self-contained — downstream users
// build topologies and address hosts through these aliases without
// importing internal packages.

// IA is the <ISD, AS> tuple identifying an AS (alias of the internal
// addressing type).
type IA = addr.IA

// ISD is an isolation domain identifier.
type ISD = addr.ISD

// AS is a 48-bit SCION AS number.
type AS = addr.AS

// HostAddr is the <ISD, AS, local address> host 3-tuple.
type HostAddr = addr.Host

// Topology is the AS-level graph networks are built on.
type Topology = topology.Graph

// Link is one inter-domain link of a topology.
type Link = topology.Link

// Relationship constants for topology construction.
const (
	Core       = topology.Core
	ProviderOf = topology.ProviderOf
	PeerOf     = topology.PeerOf
)

// MustIA builds an IA, panicking on an invalid AS number.
func MustIA(isd ISD, as AS) IA { return addr.MustIA(isd, as) }

// ParseIA parses "isd-as" notation.
func ParseIA(s string) (IA, error) { return addr.ParseIA(s) }

// HostIP4 builds an IPv4-addressed host in ia.
func HostIP4(ia IA, a, b, c, d byte) HostAddr { return addr.HostIP4(ia, a, b, c, d) }

// NewTopology returns an empty topology to build on.
func NewTopology() *Topology { return topology.New() }

// DemoTopology returns the paper's Figure 1 network (3 ISDs, 7 cores).
func DemoTopology() *Topology { return topology.Demo() }

// SCIONLabTopology returns the Appendix B testbed model.
func SCIONLabTopology() *Topology { return topology.SCIONLab() }

// GenerateTopology synthesizes an Internet-like topology with n ASes and
// the given tier-1 clique size, deterministically from seed.
func GenerateTopology(n, tier1 int, seed int64) (*Topology, error) {
	p := topology.DefaultGenParams()
	p.NumASes = n
	p.Tier1 = tier1
	p.Seed = seed
	return topology.Generate(p)
}

// GenerateISDTopology synthesizes an Internet-like topology and carves the
// ISD hierarchy traffic simulations bootstrap on: the cores ASes with the
// largest customer cones become the ISD core, and the graph is restricted
// to the core plus its customer hierarchy (paper §5.1's intra-ISD
// construction). The result is ready for NewNetwork.
func GenerateISDTopology(n, tier1, cores int, seed int64) (*Topology, error) {
	g, err := GenerateTopology(n, tier1, seed)
	if err != nil {
		return nil, err
	}
	return topology.BuildISD(g, cores)
}

// LoadTopology parses the CAIDA serial-2 AS-relationship format.
func LoadTopology(r io.Reader) (*Topology, error) { return topology.ParseCAIDA(r, 1) }

// FwdPath is an authorized forwarding path (alias of the data-plane type);
// applications select among them for application-based path control.
type FwdPath = dataplane.FwdPath
