// Package scion is the public entry point of the library: it bootstraps a
// complete simulated SCION internetwork — trust infrastructure, core and
// intra-ISD beaconing, path servers with registered segments, and a
// data-plane fabric — on any topology, and exposes endpoint-level path
// lookup and packet forwarding.
//
// A minimal session:
//
//	net, err := scion.NewNetwork(topology.Demo(), scion.DefaultOptions())
//	host := net.Host(srcIA, 10, 0, 0, 1)
//	host.OnReceive(func(from addr.Host, payload []byte) { ... })
//	err = host.Send(dstHost, []byte("hello"))
//	net.Run() // drive the virtual clock
//
// The heavy lifting lives in the internal packages (see README.md); this
// package wires them the way a SCION deployment does: beacon servers feed
// path servers, endpoints query path servers and combine segments, the
// data plane forwards on MACed hop fields and reports failures via SCMP.
package scion

import (
	"fmt"
	"sort"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/pathdb"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// Algorithm selects the beaconing path construction algorithm.
type Algorithm int

const (
	// Diversity is the paper's path-diversity-based algorithm (default).
	Diversity Algorithm = iota
	// Baseline is the production/SCIONLab k-shortest algorithm.
	Baseline
)

// Options configures network bootstrap.
type Options struct {
	// Algorithm used by all beacon servers.
	Algorithm Algorithm
	// DisseminationLimit is the PCB dissemination limit (default 5).
	DisseminationLimit int
	// StoreLimit is the per-origin PCB storage limit (default 60).
	StoreLimit int
	// BeaconingTime is how much virtual beaconing time to simulate
	// before the network is considered bootstrapped (default 2h).
	BeaconingTime time.Duration
	// Interval and Lifetime follow the paper's defaults (10m, 6h).
	Interval, Lifetime time.Duration
	// LinkDelay is the data-plane one-way link latency (default 5ms).
	LinkDelay time.Duration
	// Verify enables cryptographic verification of received PCBs.
	Verify bool
	// RevocationTTL bounds how long a link revocation hides path
	// segments at the path servers. Revocations are soft state (paper
	// §4.1): when the TTL lapses, previously revoked paths are
	// reinstated in lookups — if the link is still down, the next use
	// triggers a fresh SCMP revocation. Zero selects the default (10s
	// of data-plane time); negative makes revocations permanent (the
	// pre-chaos behavior).
	RevocationTTL time.Duration
	// Workers parallelizes the bootstrap beaconing runs (0 = serial).
	// Results are byte-identical for any worker count.
	Workers int
	// Telemetry, if set, receives counters from the bootstrap beaconing
	// runs, the path servers, and the data-plane fabric.
	Telemetry *telemetry.Registry
	// Tracer, if set, records structured trace events across the
	// bootstrap and data-plane phases.
	Tracer *telemetry.Tracer
}

// DefaultOptions returns the paper-aligned defaults.
func DefaultOptions() Options {
	return Options{
		Algorithm:          Diversity,
		DisseminationLimit: 5,
		StoreLimit:         60,
		BeaconingTime:      2 * time.Hour,
		Interval:           10 * time.Minute,
		Lifetime:           6 * time.Hour,
		LinkDelay:          5 * time.Millisecond,
		RevocationTTL:      10 * time.Second,
	}
}

// Network is a bootstrapped SCION internetwork.
type Network struct {
	Topo  *topology.Graph
	Infra *trust.Infra
	Opts  Options

	coreRun  *beacon.RunResult
	intraRun *beacon.RunResult

	// pathServers: every AS has one; core ASes also hold registered
	// down- and core-segments of their ISD.
	pathServers map[addr.IA]*pathdb.Server

	clock  *sim.Simulator
	netSim *sim.Network
	fabric *dataplane.Fabric
	hosts  map[string]*Host
	// svcHandlers intercept control-service replies per AS (RemoteLookup).
	svcHandlers map[addr.IA]func(*dataplane.Packet)

	pathCache map[[2]uint64][]*dataplane.FwdPath
	// revExpiries holds pending revocation-expiry times (ascending); the
	// path cache is flushed lazily when the clock passes one, so
	// reinstated segments become visible to cached lookups.
	revExpiries []sim.Time
}

// NewNetwork bootstraps the control plane on topo and prepares the data
// plane. The call simulates Opts.BeaconingTime of beaconing, terminates
// and registers the resulting segments at the path servers, and returns a
// network ready for path lookups and traffic.
func NewNetwork(topo *topology.Graph, opts Options) (*Network, error) {
	if topo == nil || topo.NumASes() == 0 {
		return nil, fmt.Errorf("scion: empty topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.DisseminationLimit <= 0 {
		opts.DisseminationLimit = 5
	}
	if opts.StoreLimit == 0 {
		opts.StoreLimit = 60
	}
	if opts.BeaconingTime <= 0 {
		opts.BeaconingTime = 2 * time.Hour
	}
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Minute
	}
	if opts.Lifetime <= 0 {
		opts.Lifetime = 6 * time.Hour
	}
	if opts.LinkDelay <= 0 {
		opts.LinkDelay = 5 * time.Millisecond
	}
	if opts.RevocationTTL == 0 {
		opts.RevocationTTL = 10 * time.Second
	}

	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return nil, err
	}
	n := &Network{
		Topo:        topo,
		Infra:       infra,
		Opts:        opts,
		pathServers: map[addr.IA]*pathdb.Server{},
		hosts:       map[string]*Host{},
		svcHandlers: map[addr.IA]func(*dataplane.Packet){},
		pathCache:   map[[2]uint64][]*dataplane.FwdPath{},
	}

	factory := func() core.Factory {
		if opts.Algorithm == Baseline {
			return core.NewBaseline(opts.DisseminationLimit)
		}
		return core.NewDiversity(core.DefaultParams(opts.DisseminationLimit))
	}
	runMode := func(mode beacon.Mode) (*beacon.RunResult, error) {
		cfg := beacon.DefaultRunConfig(topo, mode, factory(), opts.StoreLimit)
		cfg.Duration = opts.BeaconingTime
		cfg.Interval = opts.Interval
		cfg.Lifetime = opts.Lifetime
		cfg.Infra = infra
		cfg.Verify = opts.Verify
		cfg.Workers = opts.Workers
		cfg.Telemetry = opts.Telemetry
		cfg.Tracer = opts.Tracer
		return beacon.Run(cfg)
	}
	if n.coreRun, err = runMode(beacon.CoreMode); err != nil {
		return nil, err
	}
	if n.intraRun, err = runMode(beacon.IntraMode); err != nil {
		return nil, err
	}
	n.clock = &sim.Simulator{}
	n.clock.SetTracer(opts.Tracer)
	n.clock.SetTelemetry(opts.Telemetry)
	if err := n.registerSegments(); err != nil {
		return nil, err
	}

	n.netSim = sim.NewNetwork(n.clock, topo, opts.LinkDelay)
	n.netSim.SetTelemetry(opts.Telemetry)
	n.fabric = dataplane.NewFabric(n.netSim, infra.ForwardingKey)
	n.fabric.SetTelemetry(opts.Telemetry)
	// One delivery demux per AS: service-addressed packets go to the
	// control service (segment requests and replies); everything else
	// fans out to the AS's hosts.
	for _, ia := range topo.IAs() {
		ia := ia
		n.fabric.OnDeliver(ia, func(pkt *dataplane.Packet) { n.dispatch(ia, pkt) })
	}
	return n, nil
}

// dispatch routes a delivered packet inside an AS.
func (n *Network) dispatch(ia addr.IA, pkt *dataplane.Packet) {
	if pkt.Dst.Type == addr.HostService {
		if len(pkt.Payload) > 0 && pkt.Payload[0] == msgSegReply {
			if h := n.svcHandlers[ia]; h != nil {
				h(pkt)
			}
			return
		}
		n.controlService(ia, pkt)
		return
	}
	for _, hh := range n.hosts {
		if hh.Addr.IA == ia && hh.Addr.Equal(pkt.Dst) && hh.recv != nil {
			hh.recv(pkt.Src, pkt.Payload)
		}
	}
}

// terminate converts the beacons stored at an AS into registrable path
// segments, attaching the AS's peer entries so peering shortcuts work.
func (n *Network) terminate(run *beacon.RunResult, origin, at addr.IA) ([]*seg.PCB, error) {
	srv := run.Servers[at]
	if srv == nil {
		return nil, nil
	}
	var peers []seg.PeerEntry
	for _, l := range n.Topo.AS(at).Links {
		if l.Rel == topology.PeerOf {
			peers = append(peers, seg.PeerEntry{
				Peer:    l.Other(at),
				PeerIf:  l.RemoteIf(at),
				LocalIf: l.LocalIf(at),
			})
		}
	}
	var out []*seg.PCB
	for _, e := range srv.Store().Entries(run.End, origin) {
		t, err := e.PCB.Extend(n.Infra.SignerFor(at), addr.IA{}, e.Ingress, 0, peers, 1472)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// registerSegments plays the registration phase: every AS terminates its
// stored beacons; leaf ASes register up-segments locally and down-
// segments at their ISD's core path servers; core ASes register
// core-segments.
func (n *Network) registerSegments() error {
	now := n.intraRun.End
	coresByISD := map[addr.ISD][]addr.IA{}
	for _, c := range n.Topo.CoreIAs() {
		coresByISD[c.ISD] = append(coresByISD[c.ISD], c)
	}
	for _, ia := range n.Topo.IAs() {
		ps := pathdb.NewServer(ia, n.Topo.AS(ia).Core, sim.Time(time.Hour))
		ps.SetTelemetry(n.Opts.Telemetry, n.clock)
		n.pathServers[ia] = ps
	}
	for _, ia := range n.Topo.IAs() {
		if n.Topo.AS(ia).Core {
			// Core segments arrive via core beaconing; register them at
			// the local (core) path server.
			for _, origin := range n.Topo.CoreIAs() {
				if origin == ia {
					continue
				}
				segs, err := n.terminate(n.coreRun, origin, ia)
				if err != nil {
					return err
				}
				for _, s := range segs {
					if err := n.pathServers[ia].RegisterCore(now, s); err != nil {
						return err
					}
				}
			}
			continue
		}
		// Leaf AS: up-segments locally, down-segments at the ISD cores.
		for _, origin := range coresByISD[ia.ISD] {
			segs, err := n.terminate(n.intraRun, origin, ia)
			if err != nil {
				return err
			}
			for _, s := range segs {
				if err := n.pathServers[ia].RegisterUp(now, s); err != nil {
					return err
				}
				for _, c := range coresByISD[ia.ISD] {
					if err := n.pathServers[c].RegisterDown(now, s); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// PathServer exposes an AS's path server (nil for unknown ASes).
func (n *Network) PathServer(ia addr.IA) *pathdb.Server { return n.pathServers[ia] }

// Paths returns authorized forwarding paths from src to dst, performing
// the endpoint's lookups: up-segments from the local path server, core-
// and down-segments from the involved core path servers, combination
// (including shortcuts and peering shortcuts), and hop-field
// authorization. Results are cached per (src, dst).
func (n *Network) Paths(src, dst addr.IA) ([]*dataplane.FwdPath, error) {
	if n.Topo.AS(src) == nil || n.Topo.AS(dst) == nil {
		return nil, fmt.Errorf("scion: unknown AS in %s -> %s", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("scion: intra-AS communication needs no SCION path")
	}
	n.expirePathCache()
	key := [2]uint64{src.Uint64(), dst.Uint64()}
	if cached, ok := n.pathCache[key]; ok {
		return cached, nil
	}
	now := n.now()

	ups, cores, downs := n.lookupSegments(now, src, dst)
	cands := n.combineAll(src, dst, ups, cores, downs)
	// Deterministic preference: fewer hops first.
	sort.SliceStable(cands, func(i, j int) bool { return len(cands[i].Hops) < len(cands[j].Hops) })
	var out []*dataplane.FwdPath
	seen := map[string]bool{} // dedup identical interface-level paths
	for _, c := range cands {
		key := c.String()
		if seen[key] {
			continue
		}
		if err := c.Check(n.Topo); err != nil {
			continue
		}
		fp, err := dataplane.Authorize(c, n.Infra.ForwardingKey)
		if err != nil {
			continue
		}
		seen[key] = true
		out = append(out, fp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scion: no path from %s to %s", src, dst)
	}
	n.pathCache[key] = out
	return out, nil
}

// now is the control-plane timestamp for path lookups: the bootstrap
// beaconing horizon plus the elapsed data-plane time, so timed
// revocation state ages with the live clock while segment lifetimes
// (hours) remain comfortably valid.
func (n *Network) now() sim.Time { return n.intraRun.End + n.clock.Now() }

// expirePathCache flushes the (src,dst) path cache once any pending
// revocation expiry has passed, making reinstated segments visible.
func (n *Network) expirePathCache() {
	now := n.now()
	i := 0
	for i < len(n.revExpiries) && n.revExpiries[i] <= now {
		i++
	}
	if i > 0 {
		n.revExpiries = append([]sim.Time(nil), n.revExpiries[i:]...)
		n.pathCache = map[[2]uint64][]*dataplane.FwdPath{}
	}
}

// lookupSegments gathers the up/core/down segment sets for a pair,
// handling the cases where either endpoint is itself a core AS.
func (n *Network) lookupSegments(now sim.Time, src, dst addr.IA) (ups, cores, downs []*seg.PCB) {
	srcCore := n.Topo.AS(src).Core
	dstCore := n.Topo.AS(dst).Core

	if !srcCore {
		ups = n.pathServers[src].LookupUp(now)
	}
	if !dstCore {
		for _, c := range n.coresOf(dst.ISD) {
			downs = append(downs, n.pathServers[c].LookupDown(now, dst)...)
		}
	}
	// Core segments between every (src-side core, dst-side core) pair,
	// looked up at the src-side core path servers. A core endpoint is its
	// own side.
	fromCores := n.coresOf(src.ISD)
	if srcCore {
		fromCores = []addr.IA{src}
	}
	toCores := n.coresOf(dst.ISD)
	if dstCore {
		toCores = []addr.IA{dst}
	}
	for _, fc := range fromCores {
		ps := n.pathServers[fc]
		for _, tc := range toCores {
			if fc == tc {
				continue
			}
			cores = append(cores, ps.LookupCore(now, tc)...)
		}
	}
	return ups, cores, downs
}

// combineAll builds candidate end-to-end paths for every endpoint class:
// leaf-to-leaf uses the full three-segment combination with shortcuts;
// when an endpoint is a core AS, the corresponding up/down part is
// omitted (the path starts or ends at the core).
func (n *Network) combineAll(src, dst addr.IA, ups, cores, downs []*seg.PCB) []*combinator.Path {
	srcCore := n.Topo.AS(src).Core
	dstCore := n.Topo.AS(dst).Core
	var cands []*combinator.Path
	add := func(p *combinator.Path, err error) {
		if err == nil && !p.ContainsLoop() && p.Src() == src && p.Dst() == dst {
			cands = append(cands, p)
		}
	}
	switch {
	case srcCore && dstCore:
		for _, c := range cores {
			add(combinator.Combine(nil, c, nil))
		}
	case srcCore:
		for _, d := range downs {
			add(combinator.Combine(nil, nil, d)) // dst homed at src itself
			for _, c := range cores {
				add(combinator.Combine(nil, c, d))
			}
		}
	case dstCore:
		for _, u := range ups {
			add(combinator.Combine(u, nil, nil)) // src homed at dst itself
			for _, c := range cores {
				add(combinator.Combine(u, c, nil))
			}
		}
	default:
		return combinator.AllPaths(ups, cores, downs)
	}
	return cands
}

func (n *Network) coresOf(isd addr.ISD) []addr.IA {
	var out []addr.IA
	for _, c := range n.Topo.CoreIAs() {
		if c.ISD == isd {
			out = append(out, c)
		}
	}
	return out
}

// Run drives the virtual clock until all in-flight data-plane events are
// processed and returns the virtual time.
func (n *Network) Run() time.Duration { return time.Duration(n.clock.Run()) }

// Clock exposes the virtual clock for scheduling traffic.
func (n *Network) Clock() *sim.Simulator { return n.clock }

// Fabric exposes the data-plane fabric (failure injection, stats).
func (n *Network) Fabric() *dataplane.Fabric { return n.fabric }

// FailLink fails the i-th link between a and b (0 = first), returning
// the failed link or an error if none exists. Beacon stores and path
// servers are revoked so fresh lookups avoid the link; endpoints with
// in-flight traffic fail over on SCMP.
func (n *Network) FailLink(a, b addr.IA, i int) (*topology.Link, error) {
	links := n.Topo.LinksBetween(a, b)
	if i < 0 || i >= len(links) {
		return nil, fmt.Errorf("scion: no link %d between %s and %s", i, a, b)
	}
	l := links[i]
	n.fabric.FailLink(l.ID)
	n.NoteLinkDown(l)
	return l, nil
}

// NoteLinkDown propagates a data-plane link failure through the control
// plane without touching the fabric: both directions of the link are
// revoked at every path server (timed when RevocationTTL > 0, permanent
// otherwise) and the endpoint path cache is flushed. FailLink uses it
// after failing the fabric link; chaos hooks use it directly when the
// fault injector already owns the fabric side.
func (n *Network) NoteLinkDown(l *topology.Link) {
	now := n.now()
	ttl := sim.Time(n.Opts.RevocationTTL)
	// Topology order, not map order: revocations emit trace events, and
	// the event stream must be deterministic.
	for _, key := range []seg.LinkKey{{IA: l.A, If: l.AIf}, {IA: l.B, If: l.BIf}} {
		for _, ia := range n.Topo.IAs() {
			// RevokeFor records the revocation instant (the policies'
			// recency feed) and falls back to a permanent Revoke when the
			// TTL is non-positive.
			n.pathServers[ia].RevokeFor(now, key, ttl)
		}
	}
	if ttl > 0 {
		n.noteRevocationExpiry(now + ttl)
	} else {
		// Permanent revocations also empty the beacon stores, the
		// pre-reinstatement behavior.
		n.coreRun.RevokeLink(l)
		n.intraRun.RevokeLink(l)
	}
	n.pathCache = map[[2]uint64][]*dataplane.FwdPath{}
}

// PathRevocationAge reports how long ago the control plane last recorded
// a revocation on any of the given links, as seen from ia's path server
// (negative = never) — the pathdb-backed revocation-recency feed for the
// traffic engine's path-selection policies (traffic.Config.RevocationAge).
func (n *Network) PathRevocationAge(ia addr.IA, links []dataplane.LinkRef) time.Duration {
	ps := n.pathServers[ia]
	if ps == nil {
		return -1
	}
	now := n.now()
	age := time.Duration(-1)
	for _, ref := range links {
		l := ref.Link
		for _, key := range []seg.LinkKey{{IA: l.A, If: l.AIf}, {IA: l.B, If: l.BIf}} {
			if t, ok := ps.LastRevocation(key); ok {
				if a := time.Duration(now - t); age < 0 || a < age {
					age = a
				}
			}
		}
	}
	return age
}

// RestoreLink repairs the i-th link between a and b on the data plane.
// Path servers keep their revocation state until it times out
// (RevocationTTL), after which lookups return the healed paths again —
// the end-to-end reinstatement sequence.
func (n *Network) RestoreLink(a, b addr.IA, i int) (*topology.Link, error) {
	links := n.Topo.LinksBetween(a, b)
	if i < 0 || i >= len(links) {
		return nil, fmt.Errorf("scion: no link %d between %s and %s", i, a, b)
	}
	l := links[i]
	n.fabric.RestoreLink(l.ID)
	return l, nil
}

// noteRevocationExpiry records a pending expiry, keeping the slice
// sorted ascending.
func (n *Network) noteRevocationExpiry(at sim.Time) {
	i := sort.Search(len(n.revExpiries), func(i int) bool { return n.revExpiries[i] >= at })
	if i < len(n.revExpiries) && n.revExpiries[i] == at {
		return
	}
	n.revExpiries = append(n.revExpiries, 0)
	copy(n.revExpiries[i+1:], n.revExpiries[i:])
	n.revExpiries[i] = at
}

// ControlPlaneBytes reports the total beaconing overhead spent during
// bootstrap (core + intra-ISD).
func (n *Network) ControlPlaneBytes() uint64 {
	return n.coreRun.TotalOverheadBytes() + n.intraRun.TotalOverheadBytes()
}
