package scion

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

var (
	a1 = addr.MustIA(1, 0xff00_0000_0101)
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	a4 = addr.MustIA(1, 0xff00_0000_0104)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
	b2 = addr.MustIA(2, 0xff00_0000_0202)
	b3 = addr.MustIA(2, 0xff00_0000_0203)
)

func demoNet(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(topology.Demo(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, DefaultOptions()); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewNetwork(topology.New(), DefaultOptions()); err == nil {
		t.Error("empty topology accepted")
	}
	// Zero options get defaulted.
	n, err := NewNetwork(topology.Demo(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Opts.DisseminationLimit != 5 || n.Opts.StoreLimit != 60 {
		t.Errorf("defaults not applied: %+v", n.Opts)
	}
}

func TestPathsLeafToLeafAcrossISDs(t *testing.T) {
	n := demoNet(t)
	paths, err := n.Paths(b3, a6)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// Paths are sorted shortest-first and all start/end correctly.
	for i, p := range paths {
		if p.Hops[0].Hop.IA != b3 || p.Hops[len(p.Hops)-1].Hop.IA != a6 {
			t.Errorf("path %d endpoints wrong", i)
		}
		if i > 0 && len(p.Hops) < len(paths[i-1].Hops) {
			t.Error("paths not sorted by length")
		}
	}
	// Cache: same slice on second call.
	again, err := n.Paths(b3, a6)
	if err != nil || len(again) != len(paths) {
		t.Error("cache miss changed results")
	}
}

func TestPathsCoreCases(t *testing.T) {
	n := demoNet(t)
	// core -> core across ISDs.
	cc, err := n.Paths(b2, a2)
	if err != nil || len(cc) == 0 {
		t.Fatalf("core-core: %v (%d)", err, len(cc))
	}
	// core -> leaf.
	cl, err := n.Paths(a2, a6)
	if err != nil || len(cl) == 0 {
		t.Fatalf("core-leaf: %v (%d)", err, len(cl))
	}
	// leaf -> core.
	lc, err := n.Paths(a6, a1)
	if err != nil || len(lc) == 0 {
		t.Fatalf("leaf-core: %v (%d)", err, len(lc))
	}
	// Degenerate queries.
	if _, err := n.Paths(a6, a6); err == nil {
		t.Error("same-AS path query must fail")
	}
	if _, err := n.Paths(a6, addr.MustIA(9, 9)); err == nil {
		t.Error("unknown AS accepted")
	}
}

func TestEndToEndTraffic(t *testing.T) {
	n := demoNet(t)
	src, err := n.Host(b3, 10, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.Host(a6, 10, 1, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var from addr.Host
	dst.OnReceive(func(f addr.Host, payload []byte) { from, got = f, payload })

	if err := src.Send(dst.Addr, []byte("over three segments")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if string(got) != "over three segments" {
		t.Fatalf("payload = %q", got)
	}
	if !from.Equal(src.Addr) {
		t.Errorf("from = %v", from)
	}
	if hops := src.ActivePathHops(); len(hops) == 0 || hops[0] != b3 {
		t.Errorf("active path hops = %v", hops)
	}
	if sent, _ := src.Stats(); sent != 1 {
		t.Errorf("sent = %d", sent)
	}
}

func TestIntraASDelivery(t *testing.T) {
	n := demoNet(t)
	h1, _ := n.Host(a6, 10, 0, 0, 1)
	h2, _ := n.Host(a6, 10, 0, 0, 2)
	got := false
	h2.OnReceive(func(addr.Host, []byte) { got = true })
	if err := h1.Send(h2.Addr, []byte("local")); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("intra-AS packet not delivered")
	}
	if err := h1.Send(addr.HostIP4(a6, 9, 9, 9, 9), nil); err == nil {
		t.Error("unknown local host accepted")
	}
}

func TestFailLinkTriggersFailover(t *testing.T) {
	n := demoNet(t)
	src, _ := n.Host(a6, 10, 0, 0, 1)
	dst, _ := n.Host(a4, 10, 0, 0, 2)
	delivered := 0
	dst.OnReceive(func(addr.Host, []byte) { delivered++ })

	if err := src.Send(dst.Addr, []byte("1")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if delivered != 1 {
		t.Fatal("baseline delivery failed")
	}

	// Fail the first link of the active path.
	hops := src.ActivePathHops()
	link, err := n.FailLink(hops[0], hops[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Fabric().Failed(link.ID) {
		t.Fatal("link not failed")
	}
	// Sending again hits the failed link, triggers SCMP failover, and a
	// retransmission succeeds on the alternative path.
	if err := src.Send(dst.Addr, []byte("2")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if err := src.Send(dst.Addr, []byte("3")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2 (one lost, one rerouted)", delivered)
	}
	if src.Failovers() == 0 {
		t.Error("no failover recorded")
	}
	// Fresh path lookups avoid the failed link too (cache flushed and
	// path servers revoked).
	paths, err := n.Paths(a6, a4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		for _, h := range p.Hops {
			l := n.Topo.LinkByIf(h.Hop.IA, h.Hop.Out)
			if l != nil && l.ID == link.ID {
				t.Error("fresh lookup still returns the failed link")
			}
		}
	}
	if _, err := n.FailLink(a6, b3, 0); err == nil {
		t.Error("failing a non-existent link must error")
	}
}

func TestBaselineAlgorithmOption(t *testing.T) {
	opts := DefaultOptions()
	opts.Algorithm = Baseline
	opts.BeaconingTime = time.Hour
	n, err := NewNetwork(topology.Demo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Paths(b3, a6); err != nil {
		t.Errorf("baseline network has no paths: %v", err)
	}
	if n.ControlPlaneBytes() == 0 {
		t.Error("no control plane bytes recorded")
	}
	if n.PathServer(a1) == nil || n.PathServer(addr.MustIA(9, 9)) != nil {
		t.Error("path server accessors broken")
	}
}

func TestNetworkOnSCIONLab(t *testing.T) {
	opts := DefaultOptions()
	opts.BeaconingTime = 2 * time.Hour
	n, err := NewNetwork(SCIONLabTopology(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pick two leaf ASes in distant ISDs (ring distance ~10).
	src := MustIA(1, 0xff00_0000_1000)
	dst := MustIA(11, 0xff00_0000_1050)
	if n.Topo.AS(src) == nil || n.Topo.AS(dst) == nil {
		t.Fatal("expected SCIONLab leaf ASes missing")
	}
	paths, err := n.Paths(src, dst)
	if err != nil {
		t.Fatalf("no paths across the SCIONLab ring: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("empty path set")
	}
	// Traffic flows end to end.
	h1, err := n.Host(src, 10, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := n.Host(dst, 10, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	h2.OnReceive(func(HostAddr, []byte) { ok = true })
	if err := h1.Send(h2.Addr, []byte("ring")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if !ok {
		t.Error("packet not delivered across the ring")
	}
}

func TestExportedHelpers(t *testing.T) {
	if _, err := ParseIA("1-64512"); err != nil {
		t.Error(err)
	}
	g, err := GenerateTopology(60, 4, 7)
	if err != nil || g.NumASes() != 60 {
		t.Fatalf("GenerateTopology: %v", err)
	}
	if NewTopology().NumASes() != 0 {
		t.Error("NewTopology not empty")
	}
	if DemoTopology().NumASes() != 16 || SCIONLabTopology().NumASes() != 63 {
		t.Error("builtin topologies wrong size")
	}
	h := HostIP4(MustIA(1, 5), 1, 2, 3, 4)
	if h.IA != MustIA(1, 5) {
		t.Error("HostIP4 broken")
	}
}

// TestPathRevocationAge pins the pathdb-backed revocation-recency feed
// consumed by the traffic engine's path-selection policies.
func TestPathRevocationAge(t *testing.T) {
	n := demoNet(t)
	paths, err := n.Paths(b3, a6)
	if err != nil || len(paths) == 0 {
		t.Fatalf("paths: %v (%d)", err, len(paths))
	}
	refs, err := paths[0].LinkRefs(n.Topo)
	if err != nil || len(refs) == 0 {
		t.Fatalf("link refs: %v (%d)", err, len(refs))
	}
	// No revocation has ever been recorded.
	if age := n.PathRevocationAge(b3, refs); age >= 0 {
		t.Errorf("age before any failure = %v, want negative", age)
	}
	// Fail the path's first link: both the local and every remote path
	// server record the revocation instant.
	l := refs[0].Link
	if _, err := n.FailLink(l.A, l.B, 0); err != nil {
		t.Fatal(err)
	}
	if age := n.PathRevocationAge(b3, refs); age != 0 {
		t.Errorf("age right after failure = %v, want 0", age)
	}
	// Unknown IA and empty link set are both "never".
	if age := n.PathRevocationAge(addr.MustIA(9, 9), refs); age >= 0 {
		t.Errorf("age for unknown IA = %v, want negative", age)
	}
	if age := n.PathRevocationAge(b3, nil); age >= 0 {
		t.Errorf("age for no links = %v, want negative", age)
	}
}

// TestNoteLinkDownPermanent covers the RevocationTTL < 0 branch:
// revocations are permanent and empty the beacon stores.
func TestNoteLinkDownPermanent(t *testing.T) {
	opts := DefaultOptions()
	opts.RevocationTTL = -1
	n, err := NewNetwork(topology.Demo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.Paths(b3, a6)
	if err != nil || len(paths) == 0 {
		t.Fatalf("paths: %v (%d)", err, len(paths))
	}
	refs, err := paths[0].LinkRefs(n.Topo)
	if err != nil || len(refs) == 0 {
		t.Fatalf("link refs: %v (%d)", err, len(refs))
	}
	n.NoteLinkDown(refs[0].Link)
	after, err := n.Paths(b3, a6)
	if err == nil {
		for _, p := range after {
			rs, err := p.LinkRefs(n.Topo)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				if r.Link == refs[0].Link {
					t.Fatal("permanently revoked link still served")
				}
			}
		}
	}
	if age := n.PathRevocationAge(b3, refs[:1]); age != 0 {
		t.Errorf("age after permanent revocation = %v, want 0", age)
	}
}

// TestRestoreLink covers the data-plane repair path: a failed link heals
// and, once the revocation TTL lapses, lookups serve it again.
func TestRestoreLink(t *testing.T) {
	opts := DefaultOptions()
	opts.RevocationTTL = 1 * time.Second
	n, err := NewNetwork(topology.Demo(), opts)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.Paths(b3, a6)
	if err != nil || len(paths) == 0 {
		t.Fatalf("paths: %v (%d)", err, len(paths))
	}
	refs, err := paths[0].LinkRefs(n.Topo)
	if err != nil || len(refs) == 0 {
		t.Fatalf("link refs: %v (%d)", err, len(refs))
	}
	l := refs[0].Link
	if _, err := n.FailLink(l.A, l.B, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RestoreLink(l.A, l.B, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RestoreLink(l.A, l.B, 99); err == nil {
		t.Error("restoring a nonexistent link must fail")
	}
	// Let the revocation lapse; the healed link serves again.
	n.Clock().RunUntil(n.Clock().Now() + 2e9)
	healed, err := n.Paths(b3, a6)
	if err != nil || len(healed) == 0 {
		t.Fatalf("paths after heal: %v (%d)", err, len(healed))
	}
}
