package scion

import (
	"fmt"

	"scionmpr/internal/addr"
	"scionmpr/internal/dataplane"
)

// Host is an endpoint attached to the network: it looks up paths on
// demand, keeps a multi-path set per destination AS, sends packets on the
// active path, and fails over instantly on SCMP revocations.
type Host struct {
	Addr addr.Host
	net  *Network
	ep   *dataplane.Endpoint

	// current destination the endpoint's path set is loaded for.
	curDst addr.IA
	recv   func(from addr.Host, payload []byte)
}

// Host attaches (or returns the existing) endpoint with the given IPv4
// local address in ia.
func (n *Network) Host(ia addr.IA, a, b, c, d byte) (*Host, error) {
	if n.Topo.AS(ia) == nil {
		return nil, fmt.Errorf("scion: unknown AS %s", ia)
	}
	hostAddr := addr.HostIP4(ia, a, b, c, d)
	key := hostAddr.String()
	if h, ok := n.hosts[key]; ok {
		return h, nil
	}
	h := &Host{Addr: hostAddr, net: n}
	h.ep = dataplane.NewEndpoint(n.fabric, hostAddr)
	// Delivery fan-out happens in Network.dispatch (installed at
	// bootstrap); hosts only need registering.
	n.hosts[key] = h
	return h, nil
}

// OnReceive installs the host's delivery callback.
func (h *Host) OnReceive(fn func(from addr.Host, payload []byte)) { h.recv = fn }

// ensurePaths loads the endpoint's path set for dst if needed.
func (h *Host) ensurePaths(dst addr.IA) error {
	if h.curDst == dst && h.ep.ActivePath() != nil {
		return nil
	}
	paths, err := h.net.Paths(h.Addr.IA, dst)
	if err != nil {
		return err
	}
	h.ep.SetPaths(paths)
	h.curDst = dst
	return nil
}

// Send transmits payload to the destination host over the active path,
// performing path lookup on first use of the destination AS.
func (h *Host) Send(dst addr.Host, payload []byte) error {
	if dst.IA == h.Addr.IA {
		// Intra-AS delivery without SCION forwarding.
		for _, hh := range h.net.hosts {
			if hh.Addr.Equal(dst) && hh.recv != nil {
				hh.recv(h.Addr, payload)
				return nil
			}
		}
		return fmt.Errorf("scion: no such local host %s", dst)
	}
	if err := h.ensurePaths(dst.IA); err != nil {
		return err
	}
	return h.ep.Send(dst, payload)
}

// ActivePathHops reports the AS-level hops of the current active path
// toward the host's current destination (nil when none loaded).
func (h *Host) ActivePathHops() []addr.IA {
	p := h.ep.ActivePath()
	if p == nil {
		return nil
	}
	out := make([]addr.IA, len(p.Hops))
	for i, hf := range p.Hops {
		out[i] = hf.Hop.IA
	}
	return out
}

// Failovers reports how many times the endpoint switched paths.
func (h *Host) Failovers() uint64 { return h.ep.Failovers }

// Stats returns send/failover counters.
func (h *Host) Stats() (sent, failovers uint64) { return h.ep.Sent, h.ep.Failovers }

// SendOn transmits a payload over one specific forwarding path —
// application-based path selection (paper §1): the application, not the
// network, decides which of the available paths carries its traffic.
func (n *Network) SendOn(p *FwdPath, src, dst addr.Host, payload []byte) error {
	pkt := &dataplane.Packet{Src: src, Dst: dst, Path: p, Payload: payload}
	return n.fabric.Inject(pkt)
}
