package scion

import (
	"testing"

	"scionmpr/internal/pathdb"
)

func TestRemoteLookupDownSegments(t *testing.T) {
	n := demoNet(t)
	// A-6's path server asks ISD-1 core A-2 for down-segments to A-4 —
	// the core-path-server query of paper §2.2 over a real data path.
	res, err := n.RemoteLookup(a6, a2, pathdb.Request{Type: pathdb.Down, Dst: a4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("no down-segments returned")
	}
	for _, s := range res.Segments {
		if s.Leaf() != a4 {
			t.Errorf("segment leaf = %v, want %v", s.Leaf(), a4)
		}
		// Replied segments carry valid signatures end to end.
		if err := s.Verify(n.Infra); err != nil {
			t.Errorf("replied segment failed verification: %v", err)
		}
	}
	if res.RequestBytes <= 0 || res.ReplyBytes <= res.RequestBytes {
		t.Errorf("wire sizes: req=%d rep=%d", res.RequestBytes, res.ReplyBytes)
	}
	if res.RTT <= 0 {
		t.Errorf("rtt = %d", res.RTT)
	}
}

func TestRemoteLookupCoreSegments(t *testing.T) {
	n := demoNet(t)
	// B-3 asks its core B-2 for core-segments to A-2 (intra-ISD scope).
	res, err := n.RemoteLookup(b3, b2, pathdb.Request{Type: pathdb.Core, Dst: a2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("no core segments")
	}
	for _, s := range res.Segments {
		if s.Origin() != a2 {
			t.Errorf("core segment origin = %v", s.Origin())
		}
	}
}

func TestRemoteLookupLocal(t *testing.T) {
	n := demoNet(t)
	res, err := n.RemoteLookup(a6, a6, pathdb.Request{Type: pathdb.Up})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("no local up segments")
	}
	if res.RequestBytes != 0 || res.RTT != 0 {
		t.Error("local lookup must not cost wire bytes")
	}
}

func TestRemoteLookupUnknownDestination(t *testing.T) {
	n := demoNet(t)
	// Asking the right server for a destination with no registrations
	// yields an empty (but successful) reply.
	res, err := n.RemoteLookup(a6, a2, pathdb.Request{Type: pathdb.Down, Dst: b3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 0 {
		t.Errorf("unexpected segments for foreign destination: %d", len(res.Segments))
	}
}

func TestLookupWireCodecs(t *testing.T) {
	req := pathdb.Request{Type: pathdb.Core, Dst: a4}
	back, err := decodeRequest(encodeRequest(req))
	if err != nil || back != req {
		t.Fatalf("request round trip: %+v %v", back, err)
	}
	if _, err := decodeRequest([]byte{9, 9}); err == nil {
		t.Error("malformed request accepted")
	}
	if _, err := decodeReply([]byte{msgSegReply, 0}); err == nil {
		t.Error("truncated reply accepted")
	}
	if _, err := decodeReply([]byte{0x7f, 0, 0}); err == nil {
		t.Error("wrong reply tag accepted")
	}
	// Empty reply round trip.
	segs, err := decodeReply(encodeReply(nil))
	if err != nil || len(segs) != 0 {
		t.Fatalf("empty reply round trip: %v %v", segs, err)
	}
}
