module scionmpr

go 1.22
