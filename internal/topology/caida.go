package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scionmpr/internal/addr"
)

// ParseCAIDA reads the public CAIDA AS-relationship "serial-2" format:
//
//	# comment lines
//	<provider-as>|<customer-as>|-1[|source]   provider-to-customer
//	<peer-as>|<peer-as>|0[|source]            peer-to-peer
//
// All ASes are placed in the given ISD. An optional fourth field (the
// inference source in serial-2) is ignored. Lines whose relationship code
// is neither -1 nor 0 are rejected.
//
// The plain AS-rel dataset carries one entry per AS pair; the AS-rel-geo
// variant used in the paper lists one entry per interconnection location.
// ParseCAIDA accepts repeated pairs and creates one parallel link per
// occurrence, so feeding it a geo-expanded file reproduces the paper's
// multi-link topology.
func ParseCAIDA(r io.Reader, isd addr.ISD) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("topology: caida line %d: want at least 3 fields, got %q", lineNo, line)
		}
		a, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: bad AS %q", lineNo, fields[0])
		}
		b, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: bad AS %q", lineNo, fields[1])
		}
		rel, err := strconv.Atoi(fields[2])
		if err != nil || (rel != -1 && rel != 0) {
			return nil, fmt.Errorf("topology: caida line %d: bad relationship %q", lineNo, fields[2])
		}
		iaA := addr.IA{ISD: isd, AS: addr.AS(a)}
		iaB := addr.IA{ISD: isd, AS: addr.AS(b)}
		g.AddAS(iaA, false)
		g.AddAS(iaB, false)
		r := PeerOf
		if rel == -1 {
			r = ProviderOf
		}
		if _, err := g.Connect(iaA, iaB, r); err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: caida: %w", err)
	}
	return g, nil
}

// WriteCAIDA emits the graph in serial-2 format, one line per link, so
// synthesized topologies can be inspected or fed to external tools. Core
// links are written as peer links (code 0), matching how tier-1
// interconnection appears in the CAIDA data.
func WriteCAIDA(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# scionmpr topology: %s\n", g.ComputeStats())
	for _, l := range g.Links {
		code := 0
		if l.Rel == ProviderOf {
			code = -1
		}
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", uint64(l.A.AS), uint64(l.B.AS), code); err != nil {
			return err
		}
	}
	return bw.Flush()
}
