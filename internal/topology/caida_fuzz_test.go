package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseCAIDA hardens the serial-2 parser against arbitrary input: it
// must never panic, and whenever it accepts an input, the resulting graph
// must be internally consistent and survive a write/re-parse round trip.
func FuzzParseCAIDA(f *testing.F) {
	seeds := []string{
		// Plain AS-rel entries, both relationship codes, with comments.
		"# serial-2\n1|2|-1\n2|3|0\n",
		// Geo-expanded duplicates become parallel links.
		"10|20|0\n10|20|0\n10|20|-1\n",
		// Optional fourth field (inference source) is ignored.
		"174|3356|0|bgp\n174|1299|-1|mlp\n",
		// Whitespace and blank lines.
		"\n   \n# x\n  5|6|-1  \n",
		// Malformed: too few fields, bad AS numbers, bad codes, self-link.
		"1|2\n",
		"x|2|0\n",
		"1|y|-1\n",
		"1|2|7\n",
		"1|2|zero\n",
		"3|3|0\n",
		"18446744073709551615|1|0\n",
		"-1|2|0\n",
		strings.Repeat("1|2|0\n", 100),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseCAIDA(bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		// Accepted input: the graph must be consistent...
		if len(g.IAs()) != g.NumASes() {
			t.Fatalf("IAs()=%d vs NumASes()=%d", len(g.IAs()), g.NumASes())
		}
		for _, l := range g.Links {
			if l.A == l.B {
				t.Fatalf("self-link accepted: %v", l)
			}
			if g.AS(l.A) == nil || g.AS(l.B) == nil {
				t.Fatalf("link %d references unknown AS", l.ID)
			}
			if g.LinkByID(l.ID) != l {
				t.Fatalf("LinkByID(%d) does not round-trip", l.ID)
			}
		}
		// ...and round-trip through the writer without changing shape.
		var buf bytes.Buffer
		if err := WriteCAIDA(&buf, g); err != nil {
			t.Fatalf("WriteCAIDA: %v", err)
		}
		g2, err := ParseCAIDA(&buf, 1)
		if err != nil {
			t.Fatalf("re-parse of written graph: %v\n%s", err, buf.Bytes())
		}
		if g.NumASes() != g2.NumASes() || len(g.Links) != len(g2.Links) {
			t.Fatalf("round trip changed shape: %d/%d ASes, %d/%d links",
				g.NumASes(), g2.NumASes(), len(g.Links), len(g2.Links))
		}
	})
}
