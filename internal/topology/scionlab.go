package topology

import (
	"scionmpr/internal/addr"
)

// SCIONLab returns a topology modeled on the SCIONLab research testbed
// core as evaluated in the paper's Appendix B: 21 core ASes with an
// average core degree of about 2 (a sparse, ring-like global backbone),
// a few parallel links, and a handful of user ASes attached below each
// core AS. Each core AS anchors its own ISD, as in SCIONLab.
func SCIONLab() *Graph {
	g := New()
	const cores = 21
	coreIAs := make([]addr.IA, cores)
	for i := 0; i < cores; i++ {
		coreIAs[i] = addr.IA{ISD: addr.ISD(i + 1), AS: addr.AS(0xff00_0000_0100 + uint64(i))}
		g.AddAS(coreIAs[i], true)
	}
	// Sparse ring backbone: every core AS connects to its successor.
	for i := 0; i < cores; i++ {
		g.MustConnect(coreIAs[i], coreIAs[(i+1)%cores], Core)
	}
	// A few chords and parallel links reflecting the better-connected
	// SCIONLab attachment points (ETHZ, KISTI, Magdeburg, ...).
	chords := [][2]int{{0, 7}, {0, 14}, {3, 11}, {5, 17}}
	for _, c := range chords {
		g.MustConnect(coreIAs[c[0]], coreIAs[c[1]], Core)
	}
	// Parallel links on two of the ring edges (redundant attachment).
	g.MustConnect(coreIAs[0], coreIAs[1], Core)
	g.MustConnect(coreIAs[10], coreIAs[11], Core)

	// Two user (leaf) ASes per core AS, as SCIONLab attachment points host
	// multiple user ASes.
	for i, core := range coreIAs {
		for j := 0; j < 2; j++ {
			leaf := addr.IA{ISD: core.ISD, AS: addr.AS(0xff00_0000_1000 + uint64(i*8+j))}
			g.AddAS(leaf, false)
			g.MustConnect(core, leaf, ProviderOf)
		}
	}
	return g
}

// Demo returns the small 3-ISD network of the paper's Figure 1: ISD A
// (cores A-1, A-2; leaves A-3..A-6), ISD B (cores B-1, B-2; leaves
// B-3..B-5), and ISD C (cores C-1..C-3; leaves C-4, C-5), with core links
// between the ISDs, intra-ISD provider links, and one peering link. It is
// used by the quickstart example and the Table 1 experiment.
func Demo() *Graph {
	g := New()
	ia := func(isd addr.ISD, as uint64) addr.IA { return addr.IA{ISD: isd, AS: addr.AS(as)} }

	// ISD 1 = "A", ISD 2 = "B", ISD 3 = "C".
	a := make([]addr.IA, 7)
	b := make([]addr.IA, 6)
	c := make([]addr.IA, 6)
	for i := 1; i <= 6; i++ {
		a[i] = ia(1, uint64(0xff00_0000_0100+i))
		g.AddAS(a[i], i <= 2)
	}
	for i := 1; i <= 5; i++ {
		b[i] = ia(2, uint64(0xff00_0000_0200+i))
		g.AddAS(b[i], i <= 2)
	}
	for i := 1; i <= 5; i++ {
		c[i] = ia(3, uint64(0xff00_0000_0300+i))
		g.AddAS(c[i], i <= 3)
	}

	// Core mesh (red double-headed arrows in Figure 1).
	g.MustConnect(a[1], a[2], Core)
	g.MustConnect(b[1], b[2], Core)
	g.MustConnect(c[1], c[2], Core)
	g.MustConnect(c[1], c[3], Core)
	g.MustConnect(c[2], c[3], Core)
	g.MustConnect(a[1], b[1], Core)
	g.MustConnect(a[2], b[2], Core)
	g.MustConnect(a[2], c[1], Core)
	g.MustConnect(b[2], c[2], Core)

	// ISD A hierarchy: A-1 -> A-3; A-2 -> A-4; A-3,A-4 -> A-5; A-4 -> A-6; A-5 -> A-6.
	g.MustConnect(a[1], a[3], ProviderOf)
	g.MustConnect(a[2], a[4], ProviderOf)
	g.MustConnect(a[3], a[5], ProviderOf)
	g.MustConnect(a[4], a[5], ProviderOf)
	g.MustConnect(a[4], a[6], ProviderOf)
	g.MustConnect(a[5], a[6], ProviderOf)

	// ISD B hierarchy: B-1 -> B-3; B-2 -> B-3, B-4; B-3 -> B-5; B-4 -> B-5.
	g.MustConnect(b[1], b[3], ProviderOf)
	g.MustConnect(b[2], b[3], ProviderOf)
	g.MustConnect(b[2], b[4], ProviderOf)
	g.MustConnect(b[3], b[5], ProviderOf)
	g.MustConnect(b[4], b[5], ProviderOf)

	// ISD C hierarchy: C-1 -> C-4; C-3 -> C-4, C-5.
	g.MustConnect(c[1], c[4], ProviderOf)
	g.MustConnect(c[3], c[4], ProviderOf)
	g.MustConnect(c[3], c[5], ProviderOf)

	// One inter-ISD peering link between non-core ASes (A-5 and B-4),
	// enabling peering shortcuts.
	g.MustConnect(a[5], b[4], PeerOf)

	return g
}
