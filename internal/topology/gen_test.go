package topology

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"scionmpr/internal/addr"
)

func smallGenParams() GenParams {
	p := DefaultGenParams()
	p.NumASes = 400
	p.Tier1 = 8
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallGenParams())
	b := MustGenerate(smallGenParams())
	if a.NumASes() != b.NumASes() || len(a.Links) != len(b.Links) {
		t.Fatalf("non-deterministic generation: %v vs %v", a.ComputeStats(), b.ComputeStats())
	}
	for i := range a.Links {
		la, lb := a.Links[i], b.Links[i]
		if la.A != lb.A || la.B != lb.B || la.Rel != lb.Rel {
			t.Fatalf("link %d differs: %s vs %s", i, la, lb)
		}
	}
}

func TestGenerateSeedChangesTopology(t *testing.T) {
	p := smallGenParams()
	a := MustGenerate(p)
	p.Seed = 99
	b := MustGenerate(p)
	if len(a.Links) == len(b.Links) {
		same := true
		for i := range a.Links {
			if a.Links[i].A != b.Links[i].A || a.Links[i].B != b.Links[i].B {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	p := smallGenParams()
	g := MustGenerate(p)
	if g.NumASes() != p.NumASes {
		t.Fatalf("ASes = %d, want %d", g.NumASes(), p.NumASes)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tier-1 ASes form a peering clique.
	for i := 1; i <= p.Tier1; i++ {
		for j := i + 1; j <= p.Tier1; j++ {
			if len(g.LinksBetween(ia(1, uint64(i)), ia(1, uint64(j)))) == 0 {
				t.Fatalf("tier-1 %d and %d not connected", i, j)
			}
		}
	}
	// Every non-tier-1 AS has at least one provider.
	for _, x := range g.IAs() {
		if uint64(x.AS) <= uint64(p.Tier1) {
			continue
		}
		if len(g.Providers(x)) == 0 {
			t.Fatalf("AS %s has no provider", x)
		}
	}
	// Parallel links exist with the configured multiplicity distribution.
	if st := g.ComputeStats(); st.ParallelPairs == 0 {
		t.Error("expected some parallel link pairs")
	}
}

func TestGeneratePowerLawCones(t *testing.T) {
	g := MustGenerate(smallGenParams())
	// Tier-1 cones must dwarf median stub cones.
	t1 := g.CustomerCone(ia(1, 1))
	stub := g.CustomerCone(ia(1, 399))
	if t1 < 20*stub {
		t.Errorf("tier-1 cone %d not much larger than stub cone %d", t1, stub)
	}
}

func TestGenerateErrors(t *testing.T) {
	p := smallGenParams()
	p.Tier1 = p.NumASes + 1
	if _, err := Generate(p); err == nil {
		t.Error("Tier1 > NumASes: want error")
	}
	p = smallGenParams()
	p.MaxProviders = 0
	if _, err := Generate(p); err == nil {
		t.Error("MaxProviders = 0: want error")
	}
}

func TestExtractCore(t *testing.T) {
	g := MustGenerate(smallGenParams())
	core, err := ExtractCore(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if core.NumASes() != 50 {
		t.Fatalf("core ASes = %d, want 50", core.NumASes())
	}
	for _, x := range core.IAs() {
		if !core.AS(x).Core {
			t.Fatalf("%s not marked core", x)
		}
	}
	for _, l := range core.Links {
		if l.Rel != Core {
			t.Fatalf("link %s not relabeled core", l)
		}
	}
	// The survivors must be high-degree ASes: tier-1 clique members survive.
	if core.AS(ia(1, 1)) == nil {
		t.Error("highest-degree tier-1 AS pruned")
	}
	if _, err := ExtractCore(g, g.NumASes()+1); err == nil {
		t.Error("extracting more ASes than exist: want error")
	}
}

func TestAssignISDs(t *testing.T) {
	g := MustGenerate(smallGenParams())
	core, err := ExtractCore(g, 60)
	if err != nil {
		t.Fatal(err)
	}
	relabeled, mapping, err := AssignISDs(core, 6)
	if err != nil {
		t.Fatal(err)
	}
	if relabeled.NumASes() != 60 || len(mapping) != 60 {
		t.Fatalf("relabeled ASes = %d, mapping = %d", relabeled.NumASes(), len(mapping))
	}
	perISD := map[addr.ISD]int{}
	for _, newIA := range mapping {
		perISD[newIA.ISD]++
	}
	if len(perISD) != 6 {
		t.Fatalf("got %d ISDs, want 6", len(perISD))
	}
	for isd, n := range perISD {
		if n != 10 {
			t.Errorf("ISD %d has %d cores, want 10", isd, n)
		}
	}
	if len(relabeled.Links) != len(core.Links) {
		t.Error("links lost during relabeling")
	}
	if _, _, err := AssignISDs(core, 0); err == nil {
		t.Error("0 ISDs: want error")
	}
}

func TestBuildISD(t *testing.T) {
	g := MustGenerate(smallGenParams())
	isd, err := BuildISD(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	cores := isd.CoreIAs()
	if len(cores) != 5 {
		t.Fatalf("ISD cores = %d, want 5", len(cores))
	}
	// All members must be reachable from some core by descending customers.
	if isd.NumASes() <= 5 {
		t.Fatalf("ISD only contains the core (%d ASes)", isd.NumASes())
	}
	// Core-core links are relabeled.
	for _, l := range isd.Links {
		if isd.AS(l.A).Core && isd.AS(l.B).Core && l.Rel != Core {
			t.Errorf("core-core link %s not relabeled", l)
		}
	}
	if _, err := BuildISD(g, 0); err == nil {
		t.Error("0 cores: want error")
	}
}

func TestSCIONLabShape(t *testing.T) {
	g := SCIONLab()
	cores := g.CoreIAs()
	if len(cores) != 21 {
		t.Fatalf("SCIONLab cores = %d, want 21", len(cores))
	}
	// Average core degree ~2 (ring + few chords), per Appendix B.
	total := 0
	coreOnly := g.Subgraph(coreSet(g))
	for _, c := range coreOnly.IAs() {
		total += coreOnly.AS(c).Degree()
	}
	avg := float64(total) / float64(len(cores))
	if avg < 1.8 || avg > 3.0 {
		t.Errorf("average core degree = %.2f, want ~2", avg)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if st := g.ComputeStats(); st.ParallelPairs < 2 {
		t.Errorf("SCIONLab parallel pairs = %d, want >= 2", st.ParallelPairs)
	}
}

func coreSet(g *Graph) map[addr.IA]bool {
	m := map[addr.IA]bool{}
	for _, ia := range g.CoreIAs() {
		m[ia] = true
	}
	return m
}

func TestDemoShape(t *testing.T) {
	g := Demo()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(g.CoreIAs()); n != 7 {
		t.Fatalf("demo cores = %d, want 7", n)
	}
	if g.NumASes() != 16 {
		t.Fatalf("demo ASes = %d, want 16", g.NumASes())
	}
	// The inter-ISD peering link exists.
	a5 := ia(1, 0xff00_0000_0105)
	b4 := ia(2, 0xff00_0000_0204)
	if len(g.LinksBetween(a5, b4)) != 1 {
		t.Error("missing A-5 -- B-4 peering link")
	}
}

func TestCAIDARoundTrip(t *testing.T) {
	g := Demo()
	var buf bytes.Buffer
	if err := WriteCAIDA(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Demo uses SCION-range AS numbers that don't fit serial-2's 32-bit
	// space; parse a hand-written file instead and check structure.
	input := "# comment\n1|2|0\n1|3|-1\n2|3|-1\n1|3|-1|mlp\n"
	parsed, err := ParseCAIDA(strings.NewReader(input), 1)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumASes() != 3 {
		t.Fatalf("parsed ASes = %d, want 3", parsed.NumASes())
	}
	if n := len(parsed.LinksBetween(ia(1, 1), ia(1, 3))); n != 2 {
		t.Errorf("repeated pair must create parallel links, got %d", n)
	}
	if len(parsed.Providers(ia(1, 3))) != 2 {
		t.Error("provider relationships not parsed")
	}
	if len(parsed.Peers(ia(1, 1))) != 1 {
		t.Error("peer relationship not parsed")
	}
}

func TestCAIDAWriteParseConsistency(t *testing.T) {
	p := smallGenParams()
	p.NumASes = 50
	p.Tier1 = 4
	g := MustGenerate(p)
	var buf bytes.Buffer
	if err := WriteCAIDA(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCAIDA(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumASes() != g.NumASes() || len(back.Links) != len(g.Links) {
		t.Errorf("round trip: %v vs %v", back.ComputeStats(), g.ComputeStats())
	}
}

func TestCAIDAParseErrors(t *testing.T) {
	bad := []string{
		"1|2\n",    // too few fields
		"x|2|0\n",  // bad AS a
		"1|y|0\n",  // bad AS b
		"1|2|5\n",  // bad relationship
		"1|2|zz\n", // non-numeric relationship
		"1|1|0\n",  // self link
	}
	for _, in := range bad {
		if _, err := ParseCAIDA(strings.NewReader(in), 1); err == nil {
			t.Errorf("ParseCAIDA(%q): want error", in)
		}
	}
}

func TestExtractCoreDeterministic(t *testing.T) {
	g1 := MustGenerate(smallGenParams())
	g2 := MustGenerate(smallGenParams())
	c1, err := ExtractCore(g1, 40)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ExtractCore(g2, 40)
	if err != nil {
		t.Fatal(err)
	}
	ias1, ias2 := c1.IAs(), c2.IAs()
	if len(ias1) != len(ias2) {
		t.Fatal("different core sizes")
	}
	for i := range ias1 {
		if ias1[i] != ias2[i] {
			t.Fatalf("core member %d differs: %v vs %v (tie-breaking must be deterministic)", i, ias1[i], ias2[i])
		}
	}
	if len(c1.Links) != len(c2.Links) {
		t.Fatal("different core link counts")
	}
}

// fingerprint hashes every structural detail of a graph — AS set, core
// flags, and each link's endpoints, interface IDs and relationship — so
// that any change to the generator's output is caught, not just changes
// to aggregate counts.
func fingerprint(g *Graph) string {
	h := sha256.New()
	for _, ia := range g.IAs() {
		fmt.Fprintf(h, "as %s core=%v\n", ia, g.AS(ia).Core)
	}
	for _, l := range g.Links {
		fmt.Fprintf(h, "link %d %s\n", l.ID, l)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateFingerprint pins the default-seed generator output. If this
// fails after an intentional generator change, update the constants — and
// say so in the commit, because every seeded experiment shifts with them.
func TestGenerateFingerprint(t *testing.T) {
	const (
		wantDefault = "984d315913e7b1a96d6198923159aa3a6ab4cf8f77de54ba455c8501fe63a0e5"
		wantSmall   = "41d566d42606d26d6e96d0c9c1a6018a6572cdca26e6fc0ffffede1d948bacb3"
	)
	if got := fingerprint(MustGenerate(DefaultGenParams())); got != wantDefault {
		t.Errorf("DefaultGenParams fingerprint = %s, want %s", got, wantDefault)
	}
	if got := fingerprint(MustGenerate(smallGenParams())); got != wantSmall {
		t.Errorf("smallGenParams fingerprint = %s, want %s", got, wantSmall)
	}
	// The fingerprint itself must be stable across repeated generation.
	if a, b := fingerprint(MustGenerate(smallGenParams())), fingerprint(MustGenerate(smallGenParams())); a != b {
		t.Errorf("same params produced different fingerprints: %s vs %s", a, b)
	}
}
