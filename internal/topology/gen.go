package topology

import (
	"fmt"
	"math/rand"

	"scionmpr/internal/addr"
)

// GenParams configures the synthetic Internet generator. The defaults
// (DefaultGenParams) are tuned so that the generated graph matches the
// structural statistics of the CAIDA AS-rel-geo dataset the paper
// simulates on: a small clique of tier-1 providers, a transit layer with
// power-law customer-cone sizes, a large stub population, settlement-free
// peering concentrated in the transit layer, and frequent parallel links
// between high-degree neighbors (multiple interconnection locations).
type GenParams struct {
	// NumASes is the total AS count (paper: 12000).
	NumASes int
	// Tier1 is the size of the fully-meshed top clique.
	Tier1 int
	// TransitFrac is the fraction of ASes (beyond tier-1) acting as
	// transit providers.
	TransitFrac float64
	// MaxProviders bounds the providers each non-tier-1 AS buys from.
	MaxProviders int
	// PeerProb is the probability that two same-layer transit ASes
	// probed for peering actually peer.
	PeerProb float64
	// PeerTrials is the number of peering candidates probed per transit AS.
	PeerTrials int
	// ParallelDist[i] is the probability of i+1 parallel links between a
	// connected AS pair; it must sum to 1.
	ParallelDist []float64
	// ISD assigned to all generated ASes (re-assigned later by ISD
	// extraction helpers).
	ISD addr.ISD
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenParams returns parameters matching the paper's 12000-AS
// CAIDA-derived topology in hierarchy shape and parallel-link frequency.
func DefaultGenParams() GenParams {
	return GenParams{
		NumASes:      12000,
		Tier1:        15,
		TransitFrac:  0.15,
		MaxProviders: 3,
		PeerProb:     0.35,
		PeerTrials:   4,
		ParallelDist: []float64{0.55, 0.25, 0.12, 0.08},
		ISD:          1,
		Seed:         1,
	}
}

// Generate builds a deterministic synthetic Internet topology.
func Generate(p GenParams) (*Graph, error) {
	if p.NumASes < p.Tier1 || p.Tier1 < 2 {
		return nil, fmt.Errorf("topology: generate: need NumASes >= Tier1 >= 2, got %d/%d", p.NumASes, p.Tier1)
	}
	if p.MaxProviders < 1 {
		return nil, fmt.Errorf("topology: generate: MaxProviders must be >= 1")
	}
	if len(p.ParallelDist) == 0 {
		p.ParallelDist = []float64{1}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := New()

	ias := make([]addr.IA, p.NumASes)
	for i := 0; i < p.NumASes; i++ {
		ias[i] = addr.IA{ISD: p.ISD, AS: addr.AS(i + 1)}
		g.AddAS(ias[i], false)
	}

	tier1 := ias[:p.Tier1]
	numTransit := int(float64(p.NumASes-p.Tier1) * p.TransitFrac)
	transit := ias[p.Tier1 : p.Tier1+numTransit]
	stubs := ias[p.Tier1+numTransit:]

	multi := func() int {
		x := rng.Float64()
		acc := 0.0
		for i, pr := range p.ParallelDist {
			acc += pr
			if x < acc {
				return i + 1
			}
		}
		return len(p.ParallelDist)
	}
	connect := func(a, b addr.IA, rel Rel) {
		n := multi()
		for i := 0; i < n; i++ {
			g.MustConnect(a, b, rel)
		}
	}

	// Tier-1 clique: settlement-free peering (relabeled Core by core
	// extraction for the SCION experiments).
	for i := range tier1 {
		for j := i + 1; j < len(tier1); j++ {
			connect(tier1[i], tier1[j], PeerOf)
		}
	}

	// Preferential attachment over providers: weight candidates by their
	// accumulated customer count + 1 so customer-cone sizes follow a
	// power law, as observed by CAIDA AS-Rank.
	custCount := map[addr.IA]int{}
	pickProvider := func(candidates []addr.IA) addr.IA {
		total := 0
		for _, c := range candidates {
			total += custCount[c] + 1
		}
		x := rng.Intn(total)
		for _, c := range candidates {
			x -= custCount[c] + 1
			if x < 0 {
				return c
			}
		}
		return candidates[len(candidates)-1]
	}
	buyTransit := func(as addr.IA, pool []addr.IA) {
		n := 1 + rng.Intn(p.MaxProviders)
		chosen := map[addr.IA]struct{}{}
		for i := 0; i < n; i++ {
			prov := pickProvider(pool)
			if _, dup := chosen[prov]; dup {
				continue
			}
			chosen[prov] = struct{}{}
			custCount[prov]++
			connect(prov, as, ProviderOf)
		}
	}

	for _, t := range transit {
		buyTransit(t, tier1)
	}
	for i, s := range stubs {
		pool := transit
		// A small share of stubs buy directly from tier-1 (content and
		// enterprise networks do in practice).
		if numTransit == 0 || i%17 == 0 {
			pool = tier1
		}
		buyTransit(s, pool)
	}

	// Transit-layer peering: each transit AS probes a few random others.
	for _, t := range transit {
		for k := 0; k < p.PeerTrials; k++ {
			o := transit[rng.Intn(len(transit))]
			if o == t || rng.Float64() >= p.PeerProb {
				continue
			}
			if len(g.LinksBetween(t, o)) > 0 {
				continue
			}
			connect(t, o, PeerOf)
		}
	}

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustGenerate is Generate for tests and examples; it panics on error.
func MustGenerate(p GenParams) *Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}
