// Package topology models the AS-level Internet graph that SCION beaconing
// and the BGP/BGPsec baselines operate on: ASes with business relationships
// (core, provider-customer, peer), parallel inter-AS links identified by
// per-AS interface numbers, ISD assignments, and helpers to derive the
// paper's evaluation topologies (a 2000-AS core network, a large intra-ISD
// hierarchy, and the SCIONLab core).
//
// The package can ingest the public CAIDA serial-2 AS-relationship format
// and can synthesize a deterministic Internet-like topology with the same
// structural statistics as the CAIDA AS-rel-geo dataset used in the paper
// (hierarchy, power-law customer cones, parallel link multiplicity).
package topology

import (
	"fmt"
	"sort"

	"scionmpr/internal/addr"
)

// Rel is the business relationship of the A side of a link toward the B
// side, following the Gao-Rexford model extended with SCION core links.
type Rel int

const (
	// Core connects two core ASes (used for core beaconing). In CAIDA
	// terms this subsumes tier-1 peering.
	Core Rel = iota
	// ProviderOf means A is a provider of B (A sells transit to B).
	ProviderOf
	// PeerOf means A and B are settlement-free peers (non-core).
	PeerOf
)

func (r Rel) String() string {
	switch r {
	case Core:
		return "core"
	case ProviderOf:
		return "provider"
	case PeerOf:
		return "peer"
	}
	return fmt.Sprintf("rel(%d)", int(r))
}

// Reverse returns the relationship as seen from the B side.
func (r Rel) Reverse() Rel {
	// Core and PeerOf are symmetric; ProviderOf has no distinct reverse
	// constant because links are always stored provider-side-first.
	return r
}

// LinkID uniquely identifies one inter-domain link (one parallel link
// between two neighboring ASes). It is the identifier counted in the
// diversity algorithm's Link History Table (paper §4.2).
type LinkID uint32

// Link is a single physical inter-domain link. Neighboring ASes may be
// connected by several parallel links (frequent in the CAIDA geo dataset);
// each gets its own Link with distinct interface IDs on both ends.
//
// For ProviderOf links, A is always the provider side.
type Link struct {
	ID  LinkID
	A   addr.IA
	B   addr.IA
	AIf addr.IfID
	BIf addr.IfID
	Rel Rel
}

func (l *Link) String() string {
	return fmt.Sprintf("%s#%s--%s#%s(%s)", l.A, l.AIf, l.B, l.BIf, l.Rel)
}

// Other returns the IA on the far side of the link from ia.
func (l *Link) Other(ia addr.IA) addr.IA {
	if l.A == ia {
		return l.B
	}
	return l.A
}

// LocalIf returns ia's interface on this link.
func (l *Link) LocalIf(ia addr.IA) addr.IfID {
	if l.A == ia {
		return l.AIf
	}
	return l.BIf
}

// RemoteIf returns the far side's interface.
func (l *Link) RemoteIf(ia addr.IA) addr.IfID {
	if l.A == ia {
		return l.BIf
	}
	return l.AIf
}

// RelFrom returns the relationship from ia's perspective: for a ProviderOf
// link it reports ProviderOf when ia is the provider side and CustomerOf
// semantics are expressed by the second return value being false.
func (l *Link) isProviderSide(ia addr.IA) bool {
	return l.Rel == ProviderOf && l.A == ia
}

// AS is one autonomous system in the topology.
type AS struct {
	IA   addr.IA
	Core bool
	// Links holds all links incident to this AS, in interface-ID order.
	Links []*Link

	nextIf addr.IfID
	// neighbors caches the sorted distinct-neighbor list (nil =
	// recompute); invalidated by Connect. Beacon servers and shard-weight
	// assignment ask for it per AS, so rebuilding it on every call showed
	// up in large-topology profiles.
	neighbors []addr.IA
}

// Degree is the number of neighboring ASes (not links; parallel links to
// the same neighbor count once). The paper's core extraction prunes by
// this AS-level degree.
func (a *AS) Degree() int {
	return len(a.neighborList())
}

// neighborList returns (building if needed) the cached sorted neighbor
// list.
func (a *AS) neighborList() []addr.IA {
	if a.neighbors == nil {
		out := make([]addr.IA, 0, len(a.Links))
		for _, l := range a.Links {
			out = append(out, l.Other(a.IA))
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		// Compact duplicates (parallel links) in place.
		j := 0
		for i, ia := range out {
			if i == 0 || ia != out[j-1] {
				out[j] = ia
				j++
			}
		}
		a.neighbors = out[:j]
	}
	return a.neighbors
}

// Graph is the mutable AS-level topology.
type Graph struct {
	ASes   map[addr.IA]*AS
	Links  []*Link
	nextID LinkID
}

// New returns an empty topology graph.
func New() *Graph {
	return &Graph{ASes: map[addr.IA]*AS{}}
}

// AddAS inserts an AS; it is a no-op if the AS already exists.
func (g *Graph) AddAS(ia addr.IA, core bool) *AS {
	if as, ok := g.ASes[ia]; ok {
		if core {
			as.Core = true
		}
		return as
	}
	as := &AS{IA: ia, Core: core, nextIf: 1}
	g.ASes[ia] = as
	return as
}

// AS returns the AS record for ia, or nil.
func (g *Graph) AS(ia addr.IA) *AS { return g.ASes[ia] }

// Connect adds one link between a and b with relationship rel (from a's
// perspective: rel==ProviderOf means a is the provider of b). Interface
// identifiers are allocated from each AS's local space. Both ASes must
// already exist.
func (g *Graph) Connect(a, b addr.IA, rel Rel) (*Link, error) {
	asA, okA := g.ASes[a]
	asB, okB := g.ASes[b]
	if !okA || !okB {
		return nil, fmt.Errorf("topology: connect %s--%s: unknown AS", a, b)
	}
	if a == b {
		return nil, fmt.Errorf("topology: self-link on %s", a)
	}
	g.nextID++
	l := &Link{
		ID: g.nextID, A: a, B: b,
		AIf: asA.nextIf, BIf: asB.nextIf,
		Rel: rel,
	}
	asA.nextIf++
	asB.nextIf++
	asA.Links = append(asA.Links, l)
	asB.Links = append(asB.Links, l)
	asA.neighbors, asB.neighbors = nil, nil
	g.Links = append(g.Links, l)
	return l, nil
}

// MustConnect is Connect for static topology construction; it panics on error.
func (g *Graph) MustConnect(a, b addr.IA, rel Rel) *Link {
	l, err := g.Connect(a, b, rel)
	if err != nil {
		panic(err)
	}
	return l
}

// NumASes returns the AS count.
func (g *Graph) NumASes() int { return len(g.ASes) }

// IAs returns all IAs in deterministic (sorted) order.
func (g *Graph) IAs() []addr.IA {
	out := make([]addr.IA, 0, len(g.ASes))
	for ia := range g.ASes {
		out = append(out, ia)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// CoreIAs returns the core ASes in deterministic order.
func (g *Graph) CoreIAs() []addr.IA {
	var out []addr.IA
	for _, ia := range g.IAs() {
		if g.ASes[ia].Core {
			out = append(out, ia)
		}
	}
	return out
}

// Neighbors returns the distinct neighboring IAs of ia in deterministic
// order. The returned slice is the shared cache (valid until the next
// Connect touching ia); callers must not modify it.
func (g *Graph) Neighbors(ia addr.IA) []addr.IA {
	as := g.ASes[ia]
	if as == nil {
		return nil
	}
	return as.neighborList()
}

// LinksBetween returns all parallel links between a and b.
func (g *Graph) LinksBetween(a, b addr.IA) []*Link {
	as := g.ASes[a]
	if as == nil {
		return nil
	}
	var out []*Link
	for _, l := range as.Links {
		if l.Other(a) == b {
			out = append(out, l)
		}
	}
	return out
}

// Providers returns the IAs that are providers of ia.
func (g *Graph) Providers(ia addr.IA) []addr.IA {
	return g.relNeighbors(ia, func(l *Link) bool {
		return l.Rel == ProviderOf && l.B == ia
	})
}

// Customers returns the IAs that are customers of ia.
func (g *Graph) Customers(ia addr.IA) []addr.IA {
	return g.relNeighbors(ia, func(l *Link) bool {
		return l.Rel == ProviderOf && l.A == ia
	})
}

// Peers returns non-core peers of ia.
func (g *Graph) Peers(ia addr.IA) []addr.IA {
	return g.relNeighbors(ia, func(l *Link) bool { return l.Rel == PeerOf })
}

// CoreNeighbors returns core-linked neighbors of ia.
func (g *Graph) CoreNeighbors(ia addr.IA) []addr.IA {
	return g.relNeighbors(ia, func(l *Link) bool { return l.Rel == Core })
}

func (g *Graph) relNeighbors(ia addr.IA, keep func(*Link) bool) []addr.IA {
	as := g.ASes[ia]
	if as == nil {
		return nil
	}
	seen := map[addr.IA]struct{}{}
	var out []addr.IA
	for _, l := range as.Links {
		if !keep(l) {
			continue
		}
		o := l.Other(ia)
		if _, ok := seen[o]; !ok {
			seen[o] = struct{}{}
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// LinkByIf resolves (ia, ifID) to the link attached at that interface.
func (g *Graph) LinkByIf(ia addr.IA, ifID addr.IfID) *Link {
	as := g.ASes[ia]
	if as == nil {
		return nil
	}
	for _, l := range as.Links {
		if l.LocalIf(ia) == ifID {
			return l
		}
	}
	return nil
}

// LinkByID resolves a link ID to the link, or nil if no such link
// exists. IDs are allocated sequentially starting at 1, so this is a
// direct index into the link slice.
func (g *Graph) LinkByID(id LinkID) *Link {
	i := int(id) - 1
	if i < 0 || i >= len(g.Links) {
		return nil
	}
	if l := g.Links[i]; l.ID == id {
		return l
	}
	// Defensive fallback for graphs with non-sequential IDs (e.g. built
	// by hand in tests).
	for _, l := range g.Links {
		if l.ID == id {
			return l
		}
	}
	return nil
}

// CustomerCone returns the size of ia's customer cone (ia itself plus all
// direct and indirect customers), the metric CAIDA AS-Rank uses and the
// paper uses to pick intra-ISD core ASes (§5.1).
func (g *Graph) CustomerCone(ia addr.IA) int {
	seen := map[addr.IA]struct{}{ia: {}}
	stack := []addr.IA{ia}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Customers(cur) {
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				stack = append(stack, c)
			}
		}
	}
	return len(seen)
}

// Validate checks structural invariants: link endpoints exist, interface
// IDs are unique per AS, and core links only connect core ASes.
func (g *Graph) Validate() error {
	for _, l := range g.Links {
		a, okA := g.ASes[l.A]
		b, okB := g.ASes[l.B]
		if !okA || !okB {
			return fmt.Errorf("topology: link %s references unknown AS", l)
		}
		if l.Rel == Core && (!a.Core || !b.Core) {
			return fmt.Errorf("topology: core link %s touches non-core AS", l)
		}
	}
	for ia, as := range g.ASes {
		seen := map[addr.IfID]struct{}{}
		for _, l := range as.Links {
			ifID := l.LocalIf(ia)
			if _, dup := seen[ifID]; dup {
				return fmt.Errorf("topology: %s: duplicate interface %s", ia, ifID)
			}
			seen[ifID] = struct{}{}
		}
	}
	return nil
}

// Subgraph returns a new graph induced on keep, preserving core flags and
// relationships. Interface IDs and link IDs are reassigned.
func (g *Graph) Subgraph(keep map[addr.IA]bool) *Graph {
	sub := New()
	for _, ia := range g.IAs() {
		if keep[ia] {
			sub.AddAS(ia, g.ASes[ia].Core)
		}
	}
	for _, l := range g.Links {
		if keep[l.A] && keep[l.B] {
			sub.MustConnect(l.A, l.B, l.Rel)
		}
	}
	return sub
}

// Stats summarizes a topology for logging and experiment output.
type Stats struct {
	ASes, CoreASes, Links, CoreLinks int
	ParallelPairs                    int // neighbor pairs with >1 link
	MaxDegree                        int
}

// ComputeStats derives summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{ASes: len(g.ASes), Links: len(g.Links)}
	pair := map[[2]uint64]int{}
	for _, l := range g.Links {
		if l.Rel == Core {
			s.CoreLinks++
		}
		k := [2]uint64{l.A.Uint64(), l.B.Uint64()}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		pair[k]++
	}
	for _, n := range pair {
		if n > 1 {
			s.ParallelPairs++
		}
	}
	for _, as := range g.ASes {
		if as.Core {
			s.CoreASes++
		}
		if d := as.Degree(); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("ASes=%d core=%d links=%d coreLinks=%d parallelPairs=%d maxDeg=%d",
		s.ASes, s.CoreASes, s.Links, s.CoreLinks, s.ParallelPairs, s.MaxDegree)
}
