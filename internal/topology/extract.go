package topology

import (
	"container/heap"
	"fmt"
	"sort"

	"scionmpr/internal/addr"
)

// ExtractCore reproduces the paper's core-network construction (§5.1):
// starting from the full topology it incrementally prunes the
// lowest-degree AS (recomputing degrees as it goes) until n ASes remain,
// then keeps the induced subgraph, marks every surviving AS as core, and
// relabels all surviving links as Core links.
func ExtractCore(g *Graph, n int) (*Graph, error) {
	if n > g.NumASes() {
		return nil, fmt.Errorf("topology: extract core: want %d of %d ASes", n, g.NumASes())
	}
	alive := map[addr.IA]bool{}
	deg := map[addr.IA]int{}
	for _, ia := range g.IAs() {
		alive[ia] = true
		deg[ia] = g.ASes[ia].Degree()
	}

	// Populate the heap in sorted IA order so degree ties break
	// deterministically (map iteration order would randomize which AS is
	// pruned and thus the whole extracted topology).
	h := &entryHeap{}
	for _, ia := range g.IAs() {
		heap.Push(h, entry{ia, deg[ia]})
	}
	remaining := g.NumASes()
	for remaining > n {
		e := heap.Pop(h).(entry)
		if !alive[e.ia] || e.deg != deg[e.ia] {
			continue // stale heap entry
		}
		alive[e.ia] = false
		remaining--
		for _, nb := range g.Neighbors(e.ia) {
			if alive[nb] {
				deg[nb]--
				heap.Push(h, entry{nb, deg[nb]})
			}
		}
	}

	keep := map[addr.IA]bool{}
	for ia, ok := range alive {
		if ok {
			keep[ia] = true
		}
	}
	core := New()
	for _, ia := range g.IAs() {
		if keep[ia] {
			core.AddAS(ia, true)
		}
	}
	for _, l := range g.Links {
		if keep[l.A] && keep[l.B] {
			core.MustConnect(l.A, l.B, Core)
		}
	}
	return core, nil
}

type entry struct {
	ia  addr.IA
	deg int
}

type entryHeap []entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].deg < h[j].deg }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// AssignISDs distributes the ASes of a core network over numISDs isolation
// domains and returns a relabeled copy (same AS numbers, new ISD part) plus
// the old-to-new IA mapping. Assignment follows a BFS order from the
// highest-degree AS so that each ISD's cores are topologically close,
// mirroring how real ISDs form around regional tier-1 clusters.
func AssignISDs(core *Graph, numISDs int) (*Graph, map[addr.IA]addr.IA, error) {
	if numISDs < 1 {
		return nil, nil, fmt.Errorf("topology: assign ISDs: numISDs must be >= 1")
	}
	n := core.NumASes()
	perISD := (n + numISDs - 1) / numISDs

	// BFS order from the highest-degree AS, restarting at the next
	// highest-degree unvisited AS for disconnected components.
	ias := core.IAs()
	sort.Slice(ias, func(i, j int) bool {
		di, dj := core.ASes[ias[i]].Degree(), core.ASes[ias[j]].Degree()
		if di != dj {
			return di > dj
		}
		return ias[i].Less(ias[j])
	})
	visited := map[addr.IA]bool{}
	var order []addr.IA
	for _, start := range ias {
		if visited[start] {
			continue
		}
		queue := []addr.IA{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			for _, nb := range core.Neighbors(cur) {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}

	mapping := map[addr.IA]addr.IA{}
	for i, ia := range order {
		isd := addr.ISD(i/perISD + 1)
		mapping[ia] = addr.IA{ISD: isd, AS: ia.AS}
	}

	out := New()
	for _, ia := range order {
		out.AddAS(mapping[ia], true)
	}
	for _, l := range core.Links {
		out.MustConnect(mapping[l.A], mapping[l.B], Core)
	}
	return out, mapping, nil
}

// BuildISD reproduces the paper's large intra-ISD topology construction
// (§5.1): pick the coreCount ASes with the largest customer cones as the
// ISD core, then iterate down the customer hierarchy adding all direct and
// indirect customers. The result keeps provider-customer and peer links
// inside the set, relabels links among core ASes as Core, and marks the
// chosen ASes core.
func BuildISD(g *Graph, coreCount int) (*Graph, error) {
	if coreCount < 1 || coreCount > g.NumASes() {
		return nil, fmt.Errorf("topology: build ISD: bad core count %d", coreCount)
	}
	type ranked struct {
		ia   addr.IA
		cone int
	}
	all := make([]ranked, 0, g.NumASes())
	for _, ia := range g.IAs() {
		all = append(all, ranked{ia, g.CustomerCone(ia)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cone != all[j].cone {
			return all[i].cone > all[j].cone
		}
		return all[i].ia.Less(all[j].ia)
	})

	coreSet := map[addr.IA]bool{}
	for i := 0; i < coreCount; i++ {
		coreSet[all[i].ia] = true
	}

	// Descend the hierarchy from the core.
	member := map[addr.IA]bool{}
	var stack []addr.IA
	for ia := range coreSet {
		member[ia] = true
		stack = append(stack, ia)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.Customers(cur) {
			if !member[c] {
				member[c] = true
				stack = append(stack, c)
			}
		}
	}

	isd := New()
	for _, ia := range g.IAs() {
		if member[ia] {
			isd.AddAS(ia, coreSet[ia])
		}
	}
	for _, l := range g.Links {
		if !member[l.A] || !member[l.B] {
			continue
		}
		rel := l.Rel
		if coreSet[l.A] && coreSet[l.B] {
			rel = Core
		}
		isd.MustConnect(l.A, l.B, rel)
	}
	if err := isd.Validate(); err != nil {
		return nil, err
	}
	return isd, nil
}
