package topology

import (
	"strings"
	"testing"

	"scionmpr/internal/addr"
)

func ia(isd addr.ISD, as uint64) addr.IA { return addr.IA{ISD: isd, AS: addr.AS(as)} }

func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddAS(ia(1, 1), true)
	g.AddAS(ia(1, 2), true)
	g.AddAS(ia(1, 3), false)
	g.MustConnect(ia(1, 1), ia(1, 2), Core)
	g.MustConnect(ia(1, 1), ia(1, 3), ProviderOf)
	g.MustConnect(ia(1, 2), ia(1, 3), ProviderOf)
	return g
}

func TestConnectAssignsUniqueInterfaces(t *testing.T) {
	g := triangle(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	as1 := g.AS(ia(1, 1))
	if len(as1.Links) != 2 {
		t.Fatalf("AS1 links = %d, want 2", len(as1.Links))
	}
	if as1.Links[0].LocalIf(ia(1, 1)) == as1.Links[1].LocalIf(ia(1, 1)) {
		t.Error("duplicate interface IDs on AS1")
	}
}

func TestConnectErrors(t *testing.T) {
	g := New()
	g.AddAS(ia(1, 1), false)
	if _, err := g.Connect(ia(1, 1), ia(1, 9), PeerOf); err == nil {
		t.Error("connect to unknown AS: want error")
	}
	if _, err := g.Connect(ia(1, 1), ia(1, 1), PeerOf); err == nil {
		t.Error("self link: want error")
	}
}

func TestLinkAccessors(t *testing.T) {
	g := triangle(t)
	l := g.LinksBetween(ia(1, 1), ia(1, 3))[0]
	if l.Other(ia(1, 1)) != ia(1, 3) || l.Other(ia(1, 3)) != ia(1, 1) {
		t.Error("Other broken")
	}
	if l.LocalIf(ia(1, 1)) != l.RemoteIf(ia(1, 3)) {
		t.Error("LocalIf/RemoteIf inconsistent")
	}
	if !strings.Contains(l.String(), "provider") {
		t.Errorf("link string %q missing relationship", l)
	}
	if got := g.LinkByIf(ia(1, 1), l.LocalIf(ia(1, 1))); got != l {
		t.Error("LinkByIf did not resolve")
	}
	if g.LinkByIf(ia(1, 1), 999) != nil {
		t.Error("LinkByIf with bogus interface must be nil")
	}
	if g.LinkByIf(ia(9, 9), 1) != nil {
		t.Error("LinkByIf with bogus AS must be nil")
	}
}

func TestRelationshipQueries(t *testing.T) {
	g := triangle(t)
	if got := g.Customers(ia(1, 1)); len(got) != 1 || got[0] != ia(1, 3) {
		t.Errorf("Customers = %v", got)
	}
	if got := g.Providers(ia(1, 3)); len(got) != 2 {
		t.Errorf("Providers = %v", got)
	}
	if got := g.CoreNeighbors(ia(1, 1)); len(got) != 1 || got[0] != ia(1, 2) {
		t.Errorf("CoreNeighbors = %v", got)
	}
	if got := g.Peers(ia(1, 1)); len(got) != 0 {
		t.Errorf("Peers = %v", got)
	}
	if got := g.Neighbors(ia(1, 3)); len(got) != 2 {
		t.Errorf("Neighbors = %v", got)
	}
	if g.Neighbors(ia(9, 9)) != nil {
		t.Error("Neighbors of unknown AS must be nil")
	}
}

func TestParallelLinksCountOnceInDegree(t *testing.T) {
	g := New()
	g.AddAS(ia(1, 1), false)
	g.AddAS(ia(1, 2), false)
	g.MustConnect(ia(1, 1), ia(1, 2), PeerOf)
	g.MustConnect(ia(1, 1), ia(1, 2), PeerOf)
	if d := g.AS(ia(1, 1)).Degree(); d != 1 {
		t.Errorf("degree with parallel links = %d, want 1", d)
	}
	if n := len(g.LinksBetween(ia(1, 1), ia(1, 2))); n != 2 {
		t.Errorf("parallel links = %d, want 2", n)
	}
	st := g.ComputeStats()
	if st.ParallelPairs != 1 || st.Links != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCustomerCone(t *testing.T) {
	g := triangle(t)
	if c := g.CustomerCone(ia(1, 1)); c != 2 {
		t.Errorf("cone(1) = %d, want 2 (self + AS3)", c)
	}
	if c := g.CustomerCone(ia(1, 3)); c != 1 {
		t.Errorf("cone(3) = %d, want 1", c)
	}
}

func TestValidateRejectsCoreLinkToNonCore(t *testing.T) {
	g := New()
	g.AddAS(ia(1, 1), true)
	g.AddAS(ia(1, 2), false)
	g.MustConnect(ia(1, 1), ia(1, 2), Core)
	if err := g.Validate(); err == nil {
		t.Error("core link to non-core AS must fail validation")
	}
}

func TestSubgraph(t *testing.T) {
	g := triangle(t)
	sub := g.Subgraph(map[addr.IA]bool{ia(1, 1): true, ia(1, 2): true})
	if sub.NumASes() != 2 || len(sub.Links) != 1 {
		t.Errorf("subgraph ASes=%d links=%d", sub.NumASes(), len(sub.Links))
	}
	if !sub.AS(ia(1, 1)).Core {
		t.Error("core flag lost in subgraph")
	}
}

func TestRelString(t *testing.T) {
	for _, r := range []Rel{Core, ProviderOf, PeerOf} {
		if r.String() == "" || r.Reverse() != r {
			t.Errorf("rel %d string/reverse broken", r)
		}
	}
	if Rel(42).String() == "" {
		t.Error("unknown rel must still print")
	}
}
