package topology_test

import (
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/topology"
)

// Structural properties of generated topologies that the experiments
// rely on, checked across seeds.
func TestGeneratedTopologyConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := topology.DefaultGenParams()
		p.NumASes = 300
		p.Tier1 = 8
		p.Seed = seed
		g := topology.MustGenerate(p)

		// The whole Internet is one connected component (everyone buys
		// transit that chains up to the tier-1 clique).
		reach := graphalg.Reachable(g, addr.IA{ISD: 1, AS: 1})
		if len(reach) != g.NumASes() {
			t.Errorf("seed %d: only %d of %d ASes reachable", seed, len(reach), g.NumASes())
		}

		// Extracted cores stay connected enough for beaconing: every
		// core AS reaches every other.
		coreT, err := topology.ExtractCore(g, 30)
		if err != nil {
			t.Fatal(err)
		}
		cores := coreT.CoreIAs()
		coreReach := graphalg.Reachable(coreT, cores[0])
		if len(coreReach) != len(cores) {
			t.Errorf("seed %d: core network disconnected (%d of %d)", seed, len(coreReach), len(cores))
		}

		// Valley-free reachability exists: every stub has a provider
		// chain to some tier-1 (checked transitively via customer cones).
		total := 0
		for i := 1; i <= p.Tier1; i++ {
			total += g.CustomerCone(addr.IA{ISD: 1, AS: addr.AS(i)})
		}
		if total < g.NumASes() {
			t.Errorf("seed %d: tier-1 cones cover only %d of %d ASes", seed, total, g.NumASes())
		}
	}
}

func TestISDConstructionSubsetInvariants(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 300
	p.Tier1 = 8
	g := topology.MustGenerate(p)
	isd, err := topology.BuildISD(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-core member must be reachable from a core AS by walking
	// customer links only (the intra-ISD beaconing invariant).
	reached := map[addr.IA]bool{}
	var stack []addr.IA
	for _, c := range isd.CoreIAs() {
		reached[c] = true
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, cust := range isd.Customers(cur) {
			if !reached[cust] {
				reached[cust] = true
				stack = append(stack, cust)
			}
		}
	}
	for _, ia := range isd.IAs() {
		if !reached[ia] {
			t.Errorf("%s unreachable via provider-customer links from the ISD core", ia)
		}
	}
}
