package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Checkpointer is implemented by stateful selectors that support run
// checkpoint/resume: AppendState serializes the selector's full state in
// canonical (content-determined) byte order, and RestoreState rebuilds it
// on a freshly constructed instance of the same configuration. Stateless
// selectors (the baseline) need not implement it — a resumed run simply
// constructs them anew.
type Checkpointer interface {
	AppendState(dst []byte) []byte
	RestoreState(b []byte) error
}

// stateReader is a cursor over a selector state blob with sticky errors,
// mirroring the seg wire-decoder discipline.
type stateReader struct {
	b   []byte
	off int
	err error
}

func (r *stateReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *stateReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("core: selector state truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *stateReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *stateReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *stateReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *stateReader) str() string {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("core: selector state has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// appendSentMap serializes a Sent PCBs List in canonical order: egress
// interfaces ascending, then path keys in byte order. Expired records are
// written verbatim — Revoke walks them for counter rollback, so pruning
// here would change post-resume behavior.
func appendSentMap(dst []byte, sent map[addr.IfID]map[string]sentRecord) []byte {
	egs := make([]addr.IfID, 0, len(sent))
	total := 0
	for eg, byKey := range sent {
		if len(byKey) == 0 {
			continue
		}
		egs = append(egs, eg)
		total += len(byKey)
	}
	sort.Slice(egs, func(i, j int) bool { return egs[i] < egs[j] })
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	var keys []string
	for _, eg := range egs {
		byKey := sent[eg]
		keys = keys[:0]
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec := byKey[k]
			dst = binary.BigEndian.AppendUint16(dst, uint16(eg))
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
			dst = append(dst, k...)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rec.diversity))
			dst = binary.BigEndian.AppendUint64(dst, uint64(rec.timestamp))
			dst = binary.BigEndian.AppendUint64(dst, uint64(rec.expiry))
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.links)))
			for _, id := range rec.links {
				dst = binary.BigEndian.AppendUint32(dst, id)
			}
			dst = binary.BigEndian.AppendUint64(dst, rec.origin.Uint64())
			dst = binary.BigEndian.AppendUint64(dst, rec.neighbor.Uint64())
		}
	}
	return dst
}

func readSentMap(r *stateReader) map[addr.IfID]map[string]sentRecord {
	sent := map[addr.IfID]map[string]sentRecord{}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		eg := addr.IfID(r.u16())
		key := r.str()
		var rec sentRecord
		rec.diversity = math.Float64frombits(r.u64())
		rec.timestamp = sim.Time(r.u64())
		rec.expiry = sim.Time(r.u64())
		nl := int(r.u32())
		if nl > 0 && r.err == nil {
			rec.links = make([]uint32, nl)
			for j := range rec.links {
				rec.links[j] = r.u32()
			}
		}
		rec.origin = addr.IAFromUint64(r.u64())
		rec.neighbor = addr.IAFromUint64(r.u64())
		byKey := sent[eg]
		if byKey == nil {
			byKey = map[string]sentRecord{}
			sent[eg] = byKey
		}
		byKey[key] = rec
	}
	return sent
}

// AppendState implements Checkpointer for the diversity algorithm. The
// serialized state is the interned-id table, the Link History Tables, and
// the Sent PCBs Lists — everything future Select/Revoke decisions read.
// The per-PCB id cache and Select scratch are derived state and rebuilt
// on demand after a restore.
func (d *Diversity) AppendState(dst []byte) []byte {
	// Interned ids are dense 1..n; writing the keys in id order lets
	// RestoreState reassign identical ids, which the Link History Tables
	// and sent-record link lists below reference.
	keys := make([]seg.LinkKey, len(d.ids))
	for lk, id := range d.ids {
		keys[id-1] = lk
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(keys)))
	for _, lk := range keys {
		dst = binary.BigEndian.AppendUint64(dst, lk.IA.Uint64())
		dst = binary.BigEndian.AppendUint16(dst, uint16(lk.If))
	}

	// Link History Tables as (origin, neighbor, id, count) tuples in
	// canonical order. Zero counters are equivalent to absent ones for
	// every reader (lookups default to zero), so they are skipped.
	type histEntry struct {
		origin, neighbor addr.IA
		id               uint32
		count            int32
	}
	var hist []histEntry
	for origin, byN := range d.hist {
		for neighbor, t := range byN {
			for id, c := range t {
				if c != 0 {
					hist = append(hist, histEntry{origin, neighbor, id, c})
				}
			}
		}
	}
	sort.Slice(hist, func(i, j int) bool {
		a, b := hist[i], hist[j]
		if a.origin != b.origin {
			return a.origin.Less(b.origin)
		}
		if a.neighbor != b.neighbor {
			return a.neighbor.Less(b.neighbor)
		}
		return a.id < b.id
	})
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(hist)))
	for _, e := range hist {
		dst = binary.BigEndian.AppendUint64(dst, e.origin.Uint64())
		dst = binary.BigEndian.AppendUint64(dst, e.neighbor.Uint64())
		dst = binary.BigEndian.AppendUint32(dst, e.id)
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.count))
	}

	return appendSentMap(dst, d.sent)
}

// RestoreState implements Checkpointer for the diversity algorithm.
func (d *Diversity) RestoreState(b []byte) error {
	r := &stateReader{b: b}
	nIDs := int(r.u32())
	ids := make(map[seg.LinkKey]uint32, nIDs)
	for i := 0; i < nIDs && r.err == nil; i++ {
		lk := seg.LinkKey{IA: addr.IAFromUint64(r.u64()), If: addr.IfID(r.u16())}
		ids[lk] = uint32(i) + 1
	}
	nHist := int(r.u32())
	hist := map[addr.IA]map[addr.IA]map[uint32]int32{}
	for i := 0; i < nHist && r.err == nil; i++ {
		origin := addr.IAFromUint64(r.u64())
		neighbor := addr.IAFromUint64(r.u64())
		id := r.u32()
		count := int32(r.u32())
		byN := hist[origin]
		if byN == nil {
			byN = map[addr.IA]map[uint32]int32{}
			hist[origin] = byN
		}
		t := byN[neighbor]
		if t == nil {
			t = map[uint32]int32{}
			byN[neighbor] = t
		}
		t[id] = count
	}
	sent := readSentMap(r)
	if err := r.done(); err != nil {
		return err
	}
	d.ids = ids
	d.hist = hist
	d.sent = sent
	d.baseIDs = map[*seg.PCB][]uint32{}
	return nil
}

// AppendState implements Checkpointer for the latency-aware selector,
// whose only mutable state is its Sent PCBs List.
func (l *LatencyAware) AppendState(dst []byte) []byte {
	return appendSentMap(dst, l.sent)
}

// RestoreState implements Checkpointer for the latency-aware selector.
func (l *LatencyAware) RestoreState(b []byte) error {
	r := &stateReader{b: b}
	sent := readSentMap(r)
	if err := r.done(); err != nil {
		return err
	}
	l.sent = sent
	return nil
}
