package core

import (
	"sort"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// LatencyFunc reports the propagation latency of an inter-domain link.
// Unknown links should return a conservative default.
type LatencyFunc func(seg.LinkKey) time.Duration

// LatencyAware is the paper's "Optimizing for other Criteria" extension
// sketch (§4.2): with additional per-link information disseminated
// through PCBs or side channels — here, link latencies — the path
// construction can optimize for low-latency paths instead of (or in
// addition to) path length and disjointness.
//
// The selector keeps the diversity algorithm's retransmission
// suppression (a Sent-PCB list per egress interface with near-expiry
// refresh) but ranks candidates by total path latency, lowest first.
// The paper leaves the dissemination and verification of such metrics to
// future work; this implementation models the metric as locally
// available ground truth, which preserves the control-plane behaviour
// under study (what gets selected and how often it is re-sent).
type LatencyAware struct {
	Limit   int
	Latency LatencyFunc
	// RefreshFraction of remaining lifetime below which a previously
	// sent path is re-sent to preserve connectivity.
	RefreshFraction float64

	local addr.IA
	sent  map[addr.IfID]map[string]sentRecord
}

// NewLatencyAware builds a latency-optimizing selector factory.
func NewLatencyAware(limit int, latency LatencyFunc) Factory {
	return func(local addr.IA) Selector {
		return &LatencyAware{
			Limit:           limit,
			Latency:         latency,
			RefreshFraction: 0.15,
			local:           local,
			sent:            map[addr.IfID]map[string]sentRecord{},
		}
	}
}

// Name implements Selector.
func (l *LatencyAware) Name() string { return "latency" }

// pathLatency sums the link latencies of the beacon extended via egress.
func (l *LatencyAware) pathLatency(p *seg.PCB, egress addr.IfID) time.Duration {
	var total time.Duration
	for _, lk := range p.LinksVia(l.local, egress) {
		total += l.Latency(lk)
	}
	return total
}

// Select implements Selector: the Limit lowest-latency unsent (or
// refresh-due) candidates per [origin, neighbor] pair.
func (l *LatencyAware) Select(now sim.Time, origin, neighbor addr.IA, ifaces []addr.IfID, stored []*seg.PCB) []Selection {
	if l.Limit <= 0 || len(ifaces) == 0 {
		return nil
	}
	type cand struct {
		sel Selection
		lat time.Duration
		key string
	}
	var cands []cand
	for _, p := range stored {
		if p.Expired(now) {
			continue
		}
		for _, ifID := range ifaces {
			key := p.HopsKeyVia(ifID)
			if !l.due(now, ifID, key, p) {
				continue
			}
			cands = append(cands, cand{
				sel: Selection{PCB: p, Egress: ifID},
				lat: l.pathLatency(p, ifID),
				key: key,
			})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lat != cands[j].lat {
			return cands[i].lat < cands[j].lat
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > l.Limit {
		cands = cands[:l.Limit]
	}
	out := make([]Selection, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.sel)
		byKey := l.sent[c.sel.Egress]
		if byKey == nil {
			byKey = map[string]sentRecord{}
			l.sent[c.sel.Egress] = byKey
		}
		byKey[c.key] = sentRecord{
			timestamp: c.sel.PCB.Info.Timestamp,
			expiry:    c.sel.PCB.Info.Expiry,
		}
	}
	return out
}

// due reports whether a candidate should be (re-)sent: never sent, sent
// instance expired, or the sent instance is within RefreshFraction of
// its lifetime end while a fresher instance is available.
func (l *LatencyAware) due(now sim.Time, egress addr.IfID, key string, p *seg.PCB) bool {
	byKey := l.sent[egress]
	if byKey == nil {
		return true
	}
	rec, ok := byKey[key]
	if !ok || now >= rec.expiry {
		delete(byKey, key)
		return true
	}
	remaining := float64(rec.expiry - now)
	lifetime := float64(rec.expiry - rec.timestamp)
	if lifetime <= 0 {
		return true
	}
	return remaining/lifetime < l.RefreshFraction && p.Info.Expiry > rec.expiry
}

// Revoke implements Revoker: without per-record link state, conservatively
// clear the Sent-PCB lists of the local egress interface attached to the
// failed link (if any), so replacements flow after a local link failure.
func (l *LatencyAware) Revoke(link seg.LinkKey) {
	if link.IA == l.local {
		delete(l.sent, link.If)
	}
}

// UniformLatency returns a LatencyFunc assigning every link the same
// latency (reduces the selector to shortest-path with suppression).
func UniformLatency(d time.Duration) LatencyFunc {
	return func(seg.LinkKey) time.Duration { return d }
}
