package core

import (
	"math"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
)

func TestGridSearchFindsOptimum(t *testing.T) {
	base := DefaultParams(5)
	// Objective with a known optimum inside the exponential grid.
	obj := func(p Params) float64 {
		return -(math.Abs(p.Alpha-4) + math.Abs(p.Beta-2) + math.Abs(p.Gamma-2) + math.Abs(p.ScoreThreshold-0.05))
	}
	best, score := GridSearch(base, ExponentialSpace(), obj)
	if best.Alpha != 4 || best.Beta != 2 || best.Gamma != 2 || best.ScoreThreshold != 0.05 {
		t.Errorf("best = %+v (score %v)", best, score)
	}
	// Non-swept fields stay from base.
	if best.Limit != 5 || best.MaxGeoMean != base.MaxGeoMean {
		t.Error("base fields lost")
	}
}

func TestGridSearchSkipsNaN(t *testing.T) {
	base := DefaultParams(5)
	calls := 0
	obj := func(p Params) float64 {
		calls++
		if p.Alpha != 1 {
			return math.NaN()
		}
		return 1
	}
	best, score := GridSearch(base, ExponentialSpace(), obj)
	if best.Alpha != 1 || score != 1 {
		t.Errorf("best alpha = %v score = %v", best.Alpha, score)
	}
	if calls != ExponentialSpace().Size() {
		t.Errorf("calls = %d, want full grid %d", calls, ExponentialSpace().Size())
	}
}

func TestLinearSpaceAround(t *testing.T) {
	p := DefaultParams(5)
	p.Alpha = 10
	s := LinearSpaceAround(p, 2)
	if len(s.Alphas) != 5 {
		t.Fatalf("alphas = %v", s.Alphas)
	}
	for _, a := range s.Alphas {
		if a < 5-1e-9 || a > 15+1e-9 {
			t.Errorf("alpha %v outside +/-50%% of 10", a)
		}
	}
	// Degenerate step count collapses to the center.
	s0 := LinearSpaceAround(p, 0)
	if len(s0.Alphas) != 1 || s0.Alphas[0] != 10 {
		t.Errorf("zero-step space = %v", s0.Alphas)
	}
}

func TestTwoStageSearchImproves(t *testing.T) {
	base := DefaultParams(5)
	obj := func(p Params) float64 { return -math.Abs(p.Alpha - 3) }
	best, _ := TwoStageSearch(base, obj, 3)
	// Coarse stage hits 2 or 4; refinement must get closer to 3.
	if math.Abs(best.Alpha-3) > 1 {
		t.Errorf("refined alpha = %v", best.Alpha)
	}
}

func TestASDisjointAblation(t *testing.T) {
	p := DefaultParams(5)
	p.ASDisjoint = true
	d := NewDiversity(p)(addr.MustIA(1, 1)).(*Diversity)
	tbl := d.table(origin, neighbor)
	// Two parallel links of the same AS collapse to one counter.
	a := seg.LinkKey{IA: addr.MustIA(1, 7), If: 1}
	b := seg.LinkKey{IA: addr.MustIA(1, 7), If: 2}
	tbl[d.intern(a)]++
	// Under AS-disjointness the parallel link b counts as covered...
	dsAS := d.diversityScore([]seg.LinkKey{b}, tbl)
	// ...whereas link-disjointness treats it as new.
	p2 := DefaultParams(5)
	d2 := NewDiversity(p2)(addr.MustIA(1, 1)).(*Diversity)
	tbl2 := d2.table(origin, neighbor)
	tbl2[d2.intern(a)]++
	dsLink := d2.diversityScore([]seg.LinkKey{b}, tbl2)
	if !(dsAS < dsLink) {
		t.Errorf("AS-disjoint ds %v must be below link-disjoint ds %v for a parallel link", dsAS, dsLink)
	}
}
