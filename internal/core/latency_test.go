package core

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
)

func latFuncFavoring(fast seg.LinkKey) LatencyFunc {
	return func(lk seg.LinkKey) time.Duration {
		if lk == fast {
			return time.Millisecond
		}
		return 50 * time.Millisecond
	}
}

func TestLatencyAwarePrefersLowLatency(t *testing.T) {
	// Two 1-hop paths; the one over link 100#1 is fast.
	fast := seg.LinkKey{IA: addr.MustIA(1, 100), If: 1}
	l := NewLatencyAware(1, latFuncFavoring(fast))(addr.MustIA(1, 1)).(*LatencyAware)

	pFast := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	pSlow := mkPCB(t, origin, 0, [3]uint64{100, 0, 2})
	sel := l.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{pSlow, pFast})
	if len(sel) != 1 || sel[0].PCB != pFast {
		t.Fatalf("selected %v, want the fast path", sel)
	}
}

func TestLatencyAwareSuppressesResend(t *testing.T) {
	l := NewLatencyAware(5, UniformLatency(time.Millisecond))(addr.MustIA(1, 1)).(*LatencyAware)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	if n := len(l.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 1 {
		t.Fatalf("first selection = %d", n)
	}
	// Same path next interval: suppressed.
	if n := len(l.Select(10*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 0 {
		t.Errorf("resent immediately: %d", n)
	}
	// Near expiry with a fresher instance: refreshed.
	fresh := mkPCB(t, origin, 5*hour+30*minute, [3]uint64{100, 0, 1})
	if n := len(l.Select(5*hour+30*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{fresh})); n != 1 {
		t.Error("near-expiry path not refreshed")
	}
	// Without a fresher instance there is nothing useful to resend.
	l2 := NewLatencyAware(5, UniformLatency(time.Millisecond))(addr.MustIA(1, 1)).(*LatencyAware)
	l2.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})
	if n := len(l2.Select(5*hour+30*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 0 {
		t.Error("stale instance re-sent without a fresher replacement")
	}
}

func TestLatencyAwareLimitAndExpiry(t *testing.T) {
	l := NewLatencyAware(2, UniformLatency(time.Millisecond))(addr.MustIA(1, 1)).(*LatencyAware)
	var stored []*seg.PCB
	for i := 1; i <= 4; i++ {
		stored = append(stored, mkPCB(t, origin, 0, [3]uint64{100, 0, uint64(i)}))
	}
	if n := len(l.Select(0, origin, neighbor, []addr.IfID{9}, stored)); n != 2 {
		t.Errorf("limit not applied: %d", n)
	}
	if n := len(l.Select(7*hour, origin, neighbor, []addr.IfID{9}, stored)); n != 0 {
		t.Errorf("expired PCBs selected: %d", n)
	}
	z := NewLatencyAware(0, UniformLatency(0))(addr.MustIA(1, 1)).(*LatencyAware)
	if z.Select(0, origin, neighbor, []addr.IfID{9}, stored) != nil {
		t.Error("zero limit must select nothing")
	}
	if l.Name() != "latency" {
		t.Error("name")
	}
}
