package core
