package core

import (
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Baseline is the path construction algorithm of the current SCION
// production network and SCIONLab (paper §4.2): it optimizes for the same
// metric as BGP — AS-path length — by propagating the Limit shortest
// stored PCBs per origin AS on each egress interface, every beaconing
// interval, irrespective of what was sent before. Its two shortcomings
// motivate the diversity algorithm: no optimality criterion other than
// path length, and redundant retransmissions wasting bandwidth.
type Baseline struct {
	// Limit is the PCB dissemination limit applied per [origin,
	// interface] pair (paper §5.1: "for the baseline path construction
	// algorithm, the limit is applied to each interface").
	Limit int
}

// NewBaseline returns a baseline selector factory with the given
// per-interface dissemination limit.
func NewBaseline(limit int) Factory {
	return func(addr.IA) Selector { return &Baseline{Limit: limit} }
}

// Name implements Selector.
func (b *Baseline) Name() string { return "baseline" }

// Select implements Selector: the Limit shortest valid PCBs (ties broken
// by the canonical hop key for determinism) on every interface toward the
// neighbor.
func (b *Baseline) Select(now sim.Time, origin, neighbor addr.IA, ifaces []addr.IfID, stored []*seg.PCB) []Selection {
	if b.Limit <= 0 || len(ifaces) == 0 {
		return nil
	}
	valid := make([]*seg.PCB, 0, len(stored))
	for _, p := range stored {
		if !p.Expired(now) {
			valid = append(valid, p)
		}
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].NumHops() != valid[j].NumHops() {
			return valid[i].NumHops() < valid[j].NumHops()
		}
		return valid[i].HopsKey() < valid[j].HopsKey()
	})
	if len(valid) > b.Limit {
		valid = valid[:b.Limit]
	}
	out := make([]Selection, 0, len(valid)*len(ifaces))
	for _, ifID := range ifaces {
		for _, p := range valid {
			out = append(out, Selection{PCB: p, Egress: ifID})
		}
	}
	return out
}
