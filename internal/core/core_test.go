package core

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/trust"
)

const (
	hour   = sim.Time(time.Hour)
	minute = sim.Time(time.Minute)
)

type fakeSigner struct{ ia addr.IA }

func (f fakeSigner) IA() addr.IA                 { return f.ia }
func (f fakeSigner) Sign([]byte) ([]byte, error) { return make([]byte, trust.SignatureLen), nil }

// mkPCB builds a PCB from origin traversing the given (ia, ingress,
// egress) hops, initiated at ts with a 6 hour lifetime.
func mkPCB(t *testing.T, origin addr.IA, ts sim.Time, hops ...[3]uint64) *seg.PCB {
	t.Helper()
	p := seg.NewPCB(origin, 1, ts, 6*hour)
	for _, h := range hops {
		var err error
		local := addr.MustIA(1, addr.AS(h[0]))
		p, err = p.Extend(fakeSigner{ia: local}, addr.IA{}, addr.IfID(h[1]), addr.IfID(h[2]), nil, 1472)
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

var (
	origin   = addr.MustIA(1, 100)
	neighbor = addr.MustIA(1, 200)
)

func TestBaselineSelectsShortest(t *testing.T) {
	b := NewBaseline(2)(addr.MustIA(1, 1)).(*Baseline)
	long := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2}, [3]uint64{3, 1, 2})
	short1 := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{4, 1, 2})
	short2 := mkPCB(t, origin, 0, [3]uint64{100, 0, 2}, [3]uint64{5, 1, 2})
	sel := b.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{long, short1, short2})
	if len(sel) != 2 {
		t.Fatalf("selections = %d, want 2", len(sel))
	}
	for _, s := range sel {
		if s.PCB == long {
			t.Error("baseline must prefer shorter PCBs")
		}
		if s.Egress != 9 {
			t.Error("wrong egress")
		}
	}
}

func TestBaselinePerInterfaceLimit(t *testing.T) {
	b := NewBaseline(1)(addr.MustIA(1, 1)).(*Baseline)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	sel := b.Select(0, origin, neighbor, []addr.IfID{1, 2, 3}, []*seg.PCB{p})
	// Limit 1 per interface, 3 interfaces => 3 selections.
	if len(sel) != 3 {
		t.Fatalf("selections = %d, want 3 (one per interface)", len(sel))
	}
}

func TestBaselineSkipsExpired(t *testing.T) {
	b := NewBaseline(5)(addr.MustIA(1, 1)).(*Baseline)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	if sel := b.Select(7*hour, origin, neighbor, []addr.IfID{1}, []*seg.PCB{p}); len(sel) != 0 {
		t.Errorf("expired PCB selected: %v", sel)
	}
	if sel := b.Select(0, origin, neighbor, nil, []*seg.PCB{p}); sel != nil {
		t.Error("no interfaces must select nothing")
	}
	z := NewBaseline(0)(addr.MustIA(1, 1)).(*Baseline)
	if sel := z.Select(0, origin, neighbor, []addr.IfID{1}, []*seg.PCB{p}); sel != nil {
		t.Error("zero limit must select nothing")
	}
}

func TestBaselineResendsEveryInterval(t *testing.T) {
	b := NewBaseline(5)(addr.MustIA(1, 1)).(*Baseline)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	first := b.Select(0, origin, neighbor, []addr.IfID{1}, []*seg.PCB{p})
	second := b.Select(10*minute, origin, neighbor, []addr.IfID{1}, []*seg.PCB{p})
	if len(first) != 1 || len(second) != 1 {
		t.Error("baseline must resend irrespective of previous sends")
	}
}

func newDiv(limit int) *Diversity {
	return NewDiversity(DefaultParams(limit))(addr.MustIA(1, 1)).(*Diversity)
}

func TestDiversityFirstRoundSelectsUpToLimit(t *testing.T) {
	d := newDiv(2)
	p1 := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	p2 := mkPCB(t, origin, 0, [3]uint64{100, 0, 2}, [3]uint64{3, 1, 2})
	p3 := mkPCB(t, origin, 0, [3]uint64{100, 0, 3}, [3]uint64{4, 1, 2})
	sel := d.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p1, p2, p3})
	if len(sel) != 2 {
		t.Fatalf("selections = %d, want limit 2", len(sel))
	}
	if sel[0].PCB == sel[1].PCB {
		t.Error("must not select the same PCB twice in one round")
	}
	if d.SentCount() != 2 {
		t.Errorf("sent list size = %d, want 2", d.SentCount())
	}
}

func TestDiversitySuppressesImmediateResend(t *testing.T) {
	d := newDiv(5)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	first := d.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})
	if len(first) != 1 {
		t.Fatalf("first round = %d selections", len(first))
	}
	// Same beacon, next interval: previously sent, long remaining
	// lifetime => Equation 3 exponent is large, score ~ 0.
	second := d.Select(10*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})
	if len(second) != 0 {
		t.Errorf("resent immediately: %v", second)
	}
}

func TestDiversityResendsNearExpiry(t *testing.T) {
	d := newDiv(5)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	if n := len(d.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})); n != 1 {
		t.Fatalf("first round = %d", n)
	}
	// A re-initiated instance of the same path arrives (fresh timestamps).
	fresh := mkPCB(t, origin, 5*hour+30*minute, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	// At 5.5h the sent instance has 30 min left of 6h; the ratio
	// sentRemaining/currentRemaining is tiny => g ~ 0 => score ~ 1.
	sel := d.Select(5*hour+30*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{fresh})
	if len(sel) != 1 {
		t.Fatal("near-expiry path must be refreshed to preserve connectivity")
	}
	// After the refresh the record's expiry is renewed: no more resends.
	again := d.Select(5*hour+40*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{fresh})
	if len(again) != 0 {
		t.Error("refreshed path resent immediately")
	}
}

func TestDiversityPrefersDisjoint(t *testing.T) {
	d := newDiv(1)
	// Two paths sharing their first link, one fully disjoint.
	shared1 := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	shared2 := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 3}, [3]uint64{5, 1, 2})
	disjoint := mkPCB(t, origin, 0, [3]uint64{100, 0, 7}, [3]uint64{8, 1, 2})

	// Round 1 (limit 1): picks one of them; all score equally fresh, so
	// seed the history by selecting shared1 deterministically: offer only it.
	if n := len(d.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{shared1})); n != 1 {
		t.Fatal("seeding round failed")
	}
	// Round 2: between shared2 (overlapping link 100#1) and disjoint, the
	// disjoint one must win.
	sel := d.Select(10*minute, origin, neighbor, []addr.IfID{9}, []*seg.PCB{shared2, disjoint})
	if len(sel) != 1 || sel[0].PCB != disjoint {
		t.Fatalf("want disjoint PCB selected, got %v", sel)
	}
}

func TestDiversityUsesParallelInterfaces(t *testing.T) {
	d := newDiv(2)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	// Two parallel egress interfaces to the neighbor: the same PCB can be
	// sent on both, each outgoing link being new.
	sel := d.Select(0, origin, neighbor, []addr.IfID{8, 9}, []*seg.PCB{p})
	if len(sel) != 2 {
		t.Fatalf("selections = %d, want 2 (both parallel links)", len(sel))
	}
	if sel[0].Egress == sel[1].Egress {
		t.Error("parallel interfaces not both used")
	}
}

func TestDiversityHistoryCounters(t *testing.T) {
	d := newDiv(5)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1}, [3]uint64{2, 1, 2})
	d.Select(0, origin, neighbor, []addr.IfID{9}, []*seg.PCB{p})
	// Links on the scored path: 100#1 (origin egress), 2#2 (the arrival
	// link at the local AS, set by the last sender), and 1-1#9 (the local
	// AS's prospective outgoing link).
	first := seg.LinkKey{IA: addr.MustIA(1, 100), If: 1}
	arrival := seg.LinkKey{IA: addr.MustIA(1, 2), If: 2}
	out := seg.LinkKey{IA: addr.MustIA(1, 1), If: 9}
	if c := d.HistoryCounter(origin, neighbor, arrival); c != 1 {
		t.Errorf("counter(arrival link) = %d, want 1", c)
	}
	if c := d.HistoryCounter(origin, neighbor, first); c != 1 {
		t.Errorf("counter(first link) = %d, want 1", c)
	}
	if c := d.HistoryCounter(origin, neighbor, out); c != 1 {
		t.Errorf("counter(outgoing link) = %d, want 1", c)
	}
	if c := d.HistoryCounter(origin, addr.MustIA(3, 3), first); c != 0 {
		t.Error("foreign neighbor table must be empty")
	}
}

func TestDiversityScoreOrdering(t *testing.T) {
	d := newDiv(5)
	tbl := d.table(origin, neighbor)
	lk := func(as uint64, ifID uint16) seg.LinkKey {
		return seg.LinkKey{IA: addr.MustIA(1, addr.AS(as)), If: addr.IfID(ifID)}
	}
	tbl[d.intern(lk(1, 1))] = 1
	tbl[d.intern(lk(2, 1))] = 1

	allNew := d.diversityScore([]seg.LinkKey{lk(9, 1), lk(9, 2)}, tbl)
	half := d.diversityScore([]seg.LinkKey{lk(1, 1), lk(9, 2)}, tbl)
	allOld := d.diversityScore([]seg.LinkKey{lk(1, 1), lk(2, 1)}, tbl)
	if !(allNew > half && half > allOld) {
		t.Errorf("diversity ordering broken: new=%v half=%v old=%v", allNew, half, allOld)
	}
	// A fully covered path (every link reused) must score exactly zero so
	// the threshold always blocks it — the overhead-reduction invariant.
	if allOld != 0 {
		t.Errorf("fully covered path ds = %v, want 0", allOld)
	}
	// Saturated counters drive the score to zero.
	tbl[d.intern(lk(3, 1))] = 100
	if ds := d.diversityScore([]seg.LinkKey{lk(3, 1)}, tbl); ds != 0 {
		t.Errorf("saturated jointness must give ds=0, got %v", ds)
	}
	// Empty link list (degenerate) is maximally diverse.
	if ds := d.diversityScore(nil, tbl); ds != d.Params.MaxDiversity {
		t.Errorf("empty path ds = %v", ds)
	}
}

func TestDiversityRawGeoMeanAblation(t *testing.T) {
	p := DefaultParams(5)
	p.RawGeoMean = true
	d := NewDiversity(p)(addr.MustIA(1, 1)).(*Diversity)
	tbl := d.table(origin, neighbor)
	lk := func(as uint64) seg.LinkKey { return seg.LinkKey{IA: addr.MustIA(1, addr.AS(as)), If: 1} }
	tbl[d.intern(lk(1))] = 50
	// The paper-literal variant scores any path with one new link as
	// maximally diverse even if other links are heavily reused.
	ds := d.diversityScore([]seg.LinkKey{lk(1), lk(9)}, tbl)
	if ds != p.MaxDiversity {
		t.Errorf("raw geomean with a new link must be max, got %v", ds)
	}
	// And with all links reused the raw counters apply.
	old := d.diversityScore([]seg.LinkKey{lk(1)}, tbl)
	if old != 0 {
		t.Errorf("raw geomean 50/16 capped at jointness 1 => ds 0, got %v", old)
	}
}

func TestDiversityZeroLimit(t *testing.T) {
	d := newDiv(0)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	if sel := d.Select(0, origin, neighbor, []addr.IfID{1}, []*seg.PCB{p}); sel != nil {
		t.Error("limit 0 must select nothing")
	}
}

func TestDiversitySkipsExpired(t *testing.T) {
	d := newDiv(5)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	if sel := d.Select(7*hour, origin, neighbor, []addr.IfID{1}, []*seg.PCB{p}); len(sel) != 0 {
		t.Error("expired PCB selected")
	}
}

func TestDiversityScoreEquations(t *testing.T) {
	d := newDiv(5)
	p := mkPCB(t, origin, 0, [3]uint64{100, 0, 1})
	// Equation 2: fresh PCB, age 0 => exponent 0 => score 1 regardless of ds.
	if s := d.score(0, p, 9, 0.5); s != 1 {
		t.Errorf("fresh unsent score = %v, want 1", s)
	}
	// Aged PCB: exponent grows, score falls toward ds.
	sMid := d.score(3*hour, p, 9, 0.5)
	sLate := d.score(5*hour, p, 9, 0.5)
	if !(sLate < sMid && sMid < 1) {
		t.Errorf("aging must decrease score: mid=%v late=%v", sMid, sLate)
	}
	// Equation 3: after sending, identical instance is suppressed.
	tbl := d.table(origin, neighbor)
	d.commit(0, origin, neighbor, p, 9, tbl)
	sup := d.score(10*minute, p, 9, 0.9)
	if sup > 0.05 {
		t.Errorf("just-sent score = %v, want ~0", sup)
	}
	// Near expiry of the sent record the score recovers toward 1.
	fresh := mkPCB(t, origin, 5*hour+45*minute, [3]uint64{100, 0, 1})
	rec := d.score(5*hour+45*minute, fresh, 9, 0.9)
	if rec < 0.5 {
		t.Errorf("near-expiry score = %v, want high", rec)
	}
}

func TestSelectorNames(t *testing.T) {
	if n := newDiv(1).Name(); n != "diversity" {
		t.Error(n)
	}
	b := NewBaseline(1)(addr.MustIA(1, 1))
	if b.Name() != "baseline" {
		t.Error(b.Name())
	}
}
