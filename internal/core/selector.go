// Package core implements the paper's primary contribution: PCB selection
// for SCION beaconing. It provides the baseline path construction
// algorithm currently used in the SCION production network (propagate the
// k shortest stored PCBs per origin on every interface, every interval)
// and the Path-Diversity-Based Path Construction Algorithm of §4.2 /
// Appendix A, which scores candidate (PCB, egress interface) combinations
// by link disjointness, age, and lifetime (Equations 1–3) while tracking
// Link History Tables and Sent-PCB lists to suppress redundant
// retransmissions.
package core

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Selection is one dissemination decision: propagate PCB out of Egress.
type Selection struct {
	PCB    *seg.PCB
	Egress addr.IfID
}

// Selector decides, at each beaconing interval, which stored PCBs of one
// origin AS to propagate toward one neighbor AS. ifaces are the local
// egress interfaces connecting to that neighbor (several when parallel
// links exist). stored are the valid PCBs of the origin currently in the
// beacon store, already filtered for loops through the neighbor.
//
// Select both decides and commits: stateful selectors (the diversity
// algorithm) update their history tables under the assumption that the
// returned selections are disseminated.
type Selector interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	Select(now sim.Time, origin, neighbor addr.IA, ifaces []addr.IfID, stored []*seg.PCB) []Selection
}

// Factory builds one selector instance per AS (selectors hold AS-local
// state, mirroring the paper's AS-local beaconing decisions).
type Factory func(local addr.IA) Selector

// Revoker is implemented by selectors that keep per-link state (Sent-PCB
// lists, Link History Tables); Revoke clears the state tied to a failed
// link so alternatives are re-disseminated promptly instead of being
// suppressed as "already sent".
type Revoker interface {
	Revoke(link seg.LinkKey)
}
