package core

import (
	"math"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Params are the tuning knobs of the path-diversity-based path
// construction algorithm (paper §4.2, Equations 1–3). The exponent
// parameters trade off the three stated objectives: preserve connectivity
// (resend paths whose previously-sent instance nears expiry), discover new
// paths (prefer unseen diverse paths), and save bandwidth (suppress
// recently-sent paths).
type Params struct {
	// Alpha scales a not-previously-sent PCB's age/lifetime ratio in
	// Equation 2: score = ds^(Alpha * age/lifetime).
	Alpha float64
	// Beta and Gamma shape the previously-sent exponent of Equation 3:
	// score = ds^((Beta * sentRemaining/currentRemaining)^Gamma).
	Beta, Gamma float64
	// ScoreThreshold is the minimum score for dissemination.
	ScoreThreshold float64
	// MaxGeoMean is the "maximum acceptable geometric mean" of link
	// counters used to scale jointness into [0,1].
	MaxGeoMean float64
	// MaxDiversity caps the diversity score strictly below 1 so that the
	// exponentials in Equations 1–3 always bite (ds = 1 would make every
	// score exactly 1 regardless of exponent, defeating retransmission
	// suppression).
	MaxDiversity float64
	// RawGeoMean uses the paper's literal geometric mean of raw counters
	// (any new link zeroes the mean) instead of the smoothed counter+1
	// variant; see diversityScore. Exposed for ablation.
	RawGeoMean bool
	// ASDisjoint counts disjointness at AS granularity instead of link
	// granularity. The paper deliberately chooses links "since AS
	// failures are unlikely events" (§4.2); this knob exists for the
	// ablation benches quantifying that choice.
	ASDisjoint bool
	// Limit is the PCB dissemination limit applied per [origin AS,
	// neighbor AS] pair (paper §5.1).
	Limit int
}

// DefaultParams returns parameters found by the grid-search methodology
// of §4.2 on the synthetic core topologies (exponential sweep narrowed by
// a linear sweep, optimizing resilience at minimal overhead).
//
// MaxGeoMean = 2 is the load-bearing choice: with counter+1 smoothing, a
// path whose links are ALL already covered by previously disseminated
// paths has a geometric mean >= 2, saturating jointness, so its diversity
// score is exactly 0 and the threshold blocks it. Dissemination toward a
// neighbor therefore stops once every useful link has been covered, and
// only near-expiry refreshes (Equation 3) keep flowing — this is where
// the >2-orders-of-magnitude overhead reduction of §5.2 comes from.
// Alpha = 6 ages unsent PCBs gently enough that diverse paths still
// propagate across deep (10+ hop) topologies like the SCIONLab ring.
func DefaultParams(limit int) Params {
	return Params{
		Alpha:          6.0,
		Beta:           4.0,
		Gamma:          4.0,
		ScoreThreshold: 0.05,
		MaxGeoMean:     2.0,
		MaxDiversity:   0.95,
		Limit:          limit,
	}
}

// sentRecord is one entry of the Sent PCBs List: the diversity score at
// send time plus the sent instance's validity window, per paper §4.2
// ("the algorithm stores the link diversity score as well as the age and
// the lifetime of every PCB it disseminates to each egress interface").
type sentRecord struct {
	diversity float64
	timestamp sim.Time
	expiry    sim.Time
	// links on the sent path (including the egress link) and the pair it
	// was disseminated for, kept so revocations can clear the record and
	// roll back its Link History Table counters.
	links            []seg.LinkKey
	origin, neighbor addr.IA
}

// Diversity is the Path-Diversity-Based Path Construction Algorithm
// (Algorithm 1). One instance holds the AS-local state of one beacon
// server: Link History Tables per [origin AS, neighbor AS] pair and Sent
// PCBs Lists per egress interface.
type Diversity struct {
	Params Params
	local  addr.IA

	// hist[origin][neighbor][link] counts how many disseminated valid
	// paths from origin toward neighbor include link.
	hist map[addr.IA]map[addr.IA]map[seg.LinkKey]int
	// sent[egress][hopsKeyVia] records disseminated PCBs per interface.
	sent map[addr.IfID]map[string]sentRecord
}

// NewDiversity returns a diversity selector factory with the given
// parameters.
func NewDiversity(p Params) Factory {
	return func(local addr.IA) Selector {
		return &Diversity{
			Params: p,
			local:  local,
			hist:   map[addr.IA]map[addr.IA]map[seg.LinkKey]int{},
			sent:   map[addr.IfID]map[string]sentRecord{},
		}
	}
}

// Name implements Selector.
func (d *Diversity) Name() string { return "diversity" }

// tableKey maps a path link to its Link History Table key: the link
// itself, or its AS collapsed under the ASDisjoint ablation.
func (d *Diversity) tableKey(lk seg.LinkKey) seg.LinkKey {
	if d.Params.ASDisjoint {
		return seg.LinkKey{IA: lk.IA}
	}
	return lk
}

func (d *Diversity) table(origin, neighbor addr.IA) map[seg.LinkKey]int {
	byN := d.hist[origin]
	if byN == nil {
		byN = map[addr.IA]map[seg.LinkKey]int{}
		d.hist[origin] = byN
	}
	t := byN[neighbor]
	if t == nil {
		t = map[seg.LinkKey]int{}
		byN[neighbor] = t
	}
	return t
}

// diversityScore computes the link diversity score of a prospective path
// (the PCB's links plus the outgoing link): the geometric mean of the
// Link History Table counters of all links on the path, scaled by
// MaxGeoMean and inverted so that disjoint paths (low counters) score
// high.
//
// Deviation from the paper's literal description: the geometric mean is
// taken over counter+1. A raw geometric mean is zeroed by any single
// never-used link, which makes a path with one new link and many heavily
// reused ones indistinguishable from a fully disjoint path. The +1
// smoothing preserves the paper's stated preference ordering ("prefer
// PCBs with few overlapping links, PCBs containing new links") while
// keeping partially overlapping paths distinguishable; the raw variant is
// available for the ablation benches via RawGeoMean.
func (d *Diversity) diversityScore(links []seg.LinkKey, table map[seg.LinkKey]int) float64 {
	if len(links) == 0 {
		return d.Params.MaxDiversity
	}
	logSum := 0.0
	for _, lk := range links {
		c := table[d.tableKey(lk)]
		if d.Params.RawGeoMean {
			if c == 0 {
				return d.Params.MaxDiversity
			}
			logSum += math.Log(float64(c))
			continue
		}
		logSum += math.Log(float64(c + 1))
	}
	gm := math.Exp(logSum / float64(len(links)))
	jointness := gm / d.Params.MaxGeoMean
	if jointness > 1 {
		jointness = 1
	}
	ds := 1 - jointness
	if ds > d.Params.MaxDiversity {
		ds = d.Params.MaxDiversity
	}
	return ds
}

// diversityScoreSplit is diversityScore over base links plus one egress
// link, with table keys already applied — the Select hot path, avoiding a
// per-candidate slice allocation.
func (d *Diversity) diversityScoreSplit(base []seg.LinkKey, egLink seg.LinkKey, table map[seg.LinkKey]int) float64 {
	n := len(base) + 1
	logSum := 0.0
	raw := d.Params.RawGeoMean
	accum := func(c int) bool {
		if raw {
			if c == 0 {
				return false // short-circuit: maximally diverse
			}
			logSum += math.Log(float64(c))
			return true
		}
		logSum += math.Log(float64(c + 1))
		return true
	}
	for _, lk := range base {
		if !accum(table[lk]) {
			return d.Params.MaxDiversity
		}
	}
	if !accum(table[egLink]) {
		return d.Params.MaxDiversity
	}
	gm := math.Exp(logSum / float64(n))
	jointness := gm / d.Params.MaxGeoMean
	if jointness > 1 {
		jointness = 1
	}
	ds := 1 - jointness
	if ds > d.Params.MaxDiversity {
		ds = d.Params.MaxDiversity
	}
	return ds
}

// score computes Equation 1 for one candidate: ds^f for not-previously-
// sent candidates (Equation 2), ds^g for previously-sent, still-valid
// candidates (Equation 3, reusing the diversity score recorded at send
// time).
func (d *Diversity) score(now sim.Time, p *seg.PCB, egress addr.IfID, ds float64) float64 {
	return d.scoreKeyed(now, p, p.HopsKeyVia(egress), egress, ds)
}

// scoreKeyed is score with the candidate's sent-list key precomputed.
func (d *Diversity) scoreKeyed(now sim.Time, p *seg.PCB, key string, egress addr.IfID, ds float64) float64 {
	if rec, ok := d.sentLookup(now, key, egress); ok {
		sentRemaining := float64(rec.expiry - now)
		if sentRemaining < 0 {
			sentRemaining = 0
		}
		curRemaining := float64(p.Remaining(now))
		if curRemaining <= 0 {
			return 0
		}
		g := math.Pow(d.Params.Beta*sentRemaining/curRemaining, d.Params.Gamma)
		return math.Pow(rec.diversity, g)
	}
	lifetime := float64(p.Lifetime())
	if lifetime <= 0 {
		return 0
	}
	f := d.Params.Alpha * float64(p.Age(now)) / lifetime
	return math.Pow(ds, f)
}

// sentLookup finds a valid Sent PCBs List record for the same path via
// the same egress interface; expired records are pruned lazily.
func (d *Diversity) sentLookup(now sim.Time, key string, egress addr.IfID) (sentRecord, bool) {
	byKey := d.sent[egress]
	if byKey == nil {
		return sentRecord{}, false
	}
	rec, ok := byKey[key]
	if !ok {
		return sentRecord{}, false
	}
	if now >= rec.expiry {
		delete(byKey, key)
		return sentRecord{}, false
	}
	return rec, true
}

// candidate is one (stored PCB, egress interface) combination under
// evaluation during Select, with its per-round precomputed state. The
// prospective path is base (the beacon's links, shared across egress
// interfaces of the same PCB) plus egLink (the local outgoing link).
type candidate struct {
	pcb    *seg.PCB
	egress addr.IfID
	key    string
	base   []seg.LinkKey // table keys of the beacon's own links
	egLink seg.LinkKey   // table key of the outgoing link
	score  float64
	taken  bool
}

// Select implements Selector with Algorithm 1: iteratively pick the
// highest-scoring (stored PCB, egress interface) combination for this
// [origin, neighbor] pair, stop at the dissemination limit or when the
// best score falls below the threshold, and commit each pick to the Link
// History Table and Sent PCBs List.
//
// Scores are computed once per candidate and re-computed after a commit
// only for candidates sharing a link with the committed path (the only
// ones whose diversity score can change), which keeps the loop fast on
// large stores.
func (d *Diversity) Select(now sim.Time, origin, neighbor addr.IA, ifaces []addr.IfID, stored []*seg.PCB) []Selection {
	if d.Params.Limit <= 0 || len(ifaces) == 0 {
		return nil
	}
	table := d.table(origin, neighbor)

	cands := make([]candidate, 0, len(stored)*len(ifaces))
	byLink := map[seg.LinkKey][]int{}
	for _, p := range stored {
		if p.Expired(now) {
			continue
		}
		// The beacon's own links are immutable and shared across the
		// egress interfaces; only under the AS-disjoint ablation do the
		// table keys differ from the cached slice.
		base := p.Links()
		if d.Params.ASDisjoint {
			mapped := make([]seg.LinkKey, len(base))
			for i, lk := range base {
				mapped[i] = d.tableKey(lk)
			}
			base = mapped
		}
		for _, ifID := range ifaces {
			idx := len(cands)
			cands = append(cands, candidate{
				pcb:    p,
				egress: ifID,
				key:    p.HopsKeyVia(ifID),
				base:   base,
				egLink: d.tableKey(seg.LinkKey{IA: d.local, If: ifID}),
			})
			for _, lk := range base {
				byLink[lk] = append(byLink[lk], idx)
			}
			byLink[cands[idx].egLink] = append(byLink[cands[idx].egLink], idx)
		}
	}
	rescore := func(c *candidate) {
		ds := d.diversityScoreSplit(c.base, c.egLink, table)
		c.score = d.scoreKeyed(now, c.pcb, c.key, c.egress, ds)
	}
	for i := range cands {
		rescore(&cands[i])
	}

	var out []Selection
	for len(out) < d.Params.Limit {
		best := -1
		bestScore := d.Params.ScoreThreshold
		for i := range cands {
			if !cands[i].taken && cands[i].score > bestScore {
				best, bestScore = i, cands[i].score
			}
		}
		if best < 0 {
			break
		}
		c := &cands[best]
		c.taken = true
		out = append(out, Selection{PCB: c.pcb, Egress: c.egress})
		d.commit(now, origin, neighbor, c.pcb, c.egress, table)
		// Only candidates touching the committed links change score.
		touched := map[int]bool{}
		for _, lk := range c.base {
			for _, idx := range byLink[lk] {
				touched[idx] = true
			}
		}
		for _, idx := range byLink[c.egLink] {
			touched[idx] = true
		}
		for idx := range touched {
			if !cands[idx].taken {
				rescore(&cands[idx])
			}
		}
	}
	return out
}

// commit updates the algorithm state for one disseminated PCB. For a path
// not currently in the Sent PCBs List, the Link History Table counter of
// every link on the path including the outgoing link is incremented
// (creating entries for unseen links) and a record with the send-time
// diversity score is stored. For a re-sent path, only the record's timers
// are updated (paper §4.2: the counters count valid paths, not
// transmissions, and "if a path is sent again, its corresponding timers in
// Sent PCBs List get updated").
func (d *Diversity) commit(now sim.Time, origin, neighbor addr.IA, p *seg.PCB, egress addr.IfID, table map[seg.LinkKey]int) {
	byKey := d.sent[egress]
	if byKey == nil {
		byKey = map[string]sentRecord{}
		d.sent[egress] = byKey
	}
	key := p.HopsKeyVia(egress)
	if rec, ok := byKey[key]; ok && now < rec.expiry {
		rec.timestamp = p.Info.Timestamp
		rec.expiry = p.Info.Expiry
		byKey[key] = rec
		return
	}
	links := p.LinksVia(d.local, egress)
	// The recorded diversity score is the path's score at send time,
	// i.e. before this dissemination's own counter increments.
	ds := d.diversityScore(links, table)
	for _, lk := range links {
		table[d.tableKey(lk)]++
	}
	byKey[key] = sentRecord{
		diversity: ds,
		timestamp: p.Info.Timestamp,
		expiry:    p.Info.Expiry,
		links:     links,
		origin:    origin,
		neighbor:  neighbor,
	}
}

// Revoke implements Revoker: drop every Sent-PCB record whose path used
// the failed link and roll back its Link History Table counters, so the
// surviving links regain diversity headroom and replacement paths are
// re-scored and re-sent at the next interval rather than suppressed.
func (d *Diversity) Revoke(link seg.LinkKey) {
	key := d.tableKey(link)
	for _, byKey := range d.sent {
		for k, rec := range byKey {
			hit := false
			for _, lk := range rec.links {
				if lk == key {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			delete(byKey, k)
			table := d.table(rec.origin, rec.neighbor)
			for _, lk := range rec.links {
				if c := table[lk]; c > 0 {
					table[lk] = c - 1
				}
			}
		}
	}
}

// SentCount reports the number of live Sent PCBs List entries (test and
// diagnostics hook).
func (d *Diversity) SentCount() int {
	n := 0
	for _, m := range d.sent {
		n += len(m)
	}
	return n
}

// HistoryCounter exposes a Link History Table counter (test hook).
func (d *Diversity) HistoryCounter(origin, neighbor addr.IA, link seg.LinkKey) int {
	if byN := d.hist[origin]; byN != nil {
		if t := byN[neighbor]; t != nil {
			return t[link]
		}
	}
	return 0
}
