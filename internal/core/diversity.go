package core

import (
	"math"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// Params are the tuning knobs of the path-diversity-based path
// construction algorithm (paper §4.2, Equations 1–3). The exponent
// parameters trade off the three stated objectives: preserve connectivity
// (resend paths whose previously-sent instance nears expiry), discover new
// paths (prefer unseen diverse paths), and save bandwidth (suppress
// recently-sent paths).
type Params struct {
	// Alpha scales a not-previously-sent PCB's age/lifetime ratio in
	// Equation 2: score = ds^(Alpha * age/lifetime).
	Alpha float64
	// Beta and Gamma shape the previously-sent exponent of Equation 3:
	// score = ds^((Beta * sentRemaining/currentRemaining)^Gamma).
	Beta, Gamma float64
	// ScoreThreshold is the minimum score for dissemination.
	ScoreThreshold float64
	// MaxGeoMean is the "maximum acceptable geometric mean" of link
	// counters used to scale jointness into [0,1].
	MaxGeoMean float64
	// MaxDiversity caps the diversity score strictly below 1 so that the
	// exponentials in Equations 1–3 always bite (ds = 1 would make every
	// score exactly 1 regardless of exponent, defeating retransmission
	// suppression).
	MaxDiversity float64
	// RawGeoMean uses the paper's literal geometric mean of raw counters
	// (any new link zeroes the mean) instead of the smoothed counter+1
	// variant; see term. Exposed for ablation.
	RawGeoMean bool
	// ASDisjoint counts disjointness at AS granularity instead of link
	// granularity. The paper deliberately chooses links "since AS
	// failures are unlikely events" (§4.2); this knob exists for the
	// ablation benches quantifying that choice.
	ASDisjoint bool
	// Limit is the PCB dissemination limit applied per [origin AS,
	// neighbor AS] pair (paper §5.1).
	Limit int
}

// DefaultParams returns parameters found by the grid-search methodology
// of §4.2 on the synthetic core topologies (exponential sweep narrowed by
// a linear sweep, optimizing resilience at minimal overhead).
//
// MaxGeoMean = 2 is the load-bearing choice: with counter+1 smoothing, a
// path whose links are ALL already covered by previously disseminated
// paths has a geometric mean >= 2, saturating jointness, so its diversity
// score is exactly 0 and the threshold blocks it. Dissemination toward a
// neighbor therefore stops once every useful link has been covered, and
// only near-expiry refreshes (Equation 3) keep flowing — this is where
// the >2-orders-of-magnitude overhead reduction of §5.2 comes from.
// Alpha = 6 ages unsent PCBs gently enough that diverse paths still
// propagate across deep (10+ hop) topologies like the SCIONLab ring.
func DefaultParams(limit int) Params {
	return Params{
		Alpha:          6.0,
		Beta:           4.0,
		Gamma:          4.0,
		ScoreThreshold: 0.05,
		MaxGeoMean:     2.0,
		MaxDiversity:   0.95,
		Limit:          limit,
	}
}

// sentRecord is one entry of the Sent PCBs List: the diversity score at
// send time plus the sent instance's validity window, per paper §4.2
// ("the algorithm stores the link diversity score as well as the age and
// the lifetime of every PCB it disseminates to each egress interface").
type sentRecord struct {
	diversity float64
	timestamp sim.Time
	expiry    sim.Time
	// links holds the interned table keys of the sent path (including the
	// egress link) and the pair it was disseminated for, kept so
	// revocations can clear the record and roll back its Link History
	// Table counters.
	links            []uint32
	origin, neighbor addr.IA
}

// Diversity is the Path-Diversity-Based Path Construction Algorithm
// (Algorithm 1). One instance holds the AS-local state of one beacon
// server: Link History Tables per [origin AS, neighbor AS] pair and Sent
// PCBs Lists per egress interface.
type Diversity struct {
	Params Params
	local  addr.IA

	// hist[origin][neighbor][linkID] counts how many disseminated valid
	// paths from origin toward neighbor include the link.
	hist map[addr.IA]map[addr.IA]map[uint32]int32
	// sent[egress][hopsKey] records disseminated PCBs per interface (the
	// egress is the outer key, so the path identity alone suffices).
	sent map[addr.IfID]map[string]sentRecord
	// ids interns Link History Table keys into dense uint32 identifiers:
	// hashing a word-sized id beats the 16-byte LinkKey struct in the
	// Select hot loop, and the collapse under ASDisjoint happens once per
	// link instead of once per scoring round.
	ids map[seg.LinkKey]uint32

	// baseIDs caches the interned link ids per stored PCB instance. PCB
	// instances are immutable and long-lived (the simulator hands the same
	// pointer from sender store to receiver store), so the cache turns the
	// per-tick re-interning of every candidate into one map hit. Bounded:
	// cleared wholesale past baseIDsCap and rebuilt on demand.
	baseIDs map[*seg.PCB][]uint32

	// Select scratch, reused across calls. A selector instance belongs to
	// exactly one AS actor, so Select never runs concurrently with itself;
	// reusing these keeps the per-(origin, neighbor) hot loop free of map
	// and slice churn (it used to dominate beaconing profiles via GC).
	selPCBs    []pcbState
	selIfs     []ifState
	selCands   []candState
	byLink     [][]int32 // interned id -> indices into selPCBs
	egBy       [][]int32 // interned id -> indices into selIfs
	usedLink   []uint32  // ids with non-empty byLink lists this call
	usedEg     []uint32  // ids with non-empty egBy lists this call
	touchedPCB []bool
	touchedIf  []bool
}

// baseIDsCap bounds the per-PCB interned-id cache; at ~5 ids per entry
// this is a few MiB per AS before a wholesale clear.
const baseIDsCap = 1 << 15

// NewDiversity returns a diversity selector factory with the given
// parameters.
func NewDiversity(p Params) Factory {
	return func(local addr.IA) Selector {
		return &Diversity{
			Params:  p,
			local:   local,
			hist:    map[addr.IA]map[addr.IA]map[uint32]int32{},
			sent:    map[addr.IfID]map[string]sentRecord{},
			ids:     map[seg.LinkKey]uint32{},
			baseIDs: map[*seg.PCB][]uint32{},
		}
	}
}

// Name implements Selector.
func (d *Diversity) Name() string { return "diversity" }

// tableKey maps a path link to its Link History Table key: the link
// itself, or its AS collapsed under the ASDisjoint ablation.
func (d *Diversity) tableKey(lk seg.LinkKey) seg.LinkKey {
	if d.Params.ASDisjoint {
		return seg.LinkKey{IA: lk.IA}
	}
	return lk
}

// intern returns the stable id of a link's table key, assigning one on
// first use. Id 0 is never assigned, so it is safe as a "never seen"
// sentinel.
func (d *Diversity) intern(lk seg.LinkKey) uint32 {
	lk = d.tableKey(lk)
	id, ok := d.ids[lk]
	if !ok {
		id = uint32(len(d.ids)) + 1
		d.ids[lk] = id
	}
	return id
}

func (d *Diversity) table(origin, neighbor addr.IA) map[uint32]int32 {
	byN := d.hist[origin]
	if byN == nil {
		byN = map[addr.IA]map[uint32]int32{}
		d.hist[origin] = byN
	}
	t := byN[neighbor]
	if t == nil {
		t = map[uint32]int32{}
		byN[neighbor] = t
	}
	return t
}

// term is one link counter's contribution to the log-sum whose
// exponential is the geometric mean of the path.
//
// Deviation from the paper's literal description: the geometric mean is
// taken over counter+1. A raw geometric mean is zeroed by any single
// never-used link, which makes a path with one new link and many heavily
// reused ones indistinguishable from a fully disjoint path. The +1
// smoothing preserves the paper's stated preference ordering ("prefer
// PCBs with few overlapping links, PCBs containing new links") while
// keeping partially overlapping paths distinguishable; the raw variant is
// available for the ablation benches via RawGeoMean (zero counters are
// then handled by the anyZero short circuit in dsOf, not by term).
func (d *Diversity) term(c int32) float64 {
	if d.Params.RawGeoMean {
		if c == 0 {
			return 0
		}
		return math.Log(float64(c))
	}
	return math.Log(float64(c + 1))
}

// dsOf turns a path's accumulated log-sum over n links into the link
// diversity score: the geometric mean scaled by MaxGeoMean into a
// jointness and inverted, so disjoint paths (low counters) score high.
// anyZero marks a raw-mode path containing a never-used link, which is
// maximally diverse by the paper's literal definition.
func (d *Diversity) dsOf(logSum float64, n int, anyZero bool) float64 {
	if n == 0 {
		return d.Params.MaxDiversity
	}
	if d.Params.RawGeoMean && anyZero {
		return d.Params.MaxDiversity
	}
	gm := math.Exp(logSum / float64(n))
	jointness := gm / d.Params.MaxGeoMean
	if jointness > 1 {
		jointness = 1
	}
	ds := 1 - jointness
	if ds > d.Params.MaxDiversity {
		ds = d.Params.MaxDiversity
	}
	return ds
}

// diversityScore computes the link diversity score of an arbitrary path
// against a Link History Table (test and commit helper; Select maintains
// the log-sums incrementally instead).
func (d *Diversity) diversityScore(links []seg.LinkKey, table map[uint32]int32) float64 {
	logSum := 0.0
	anyZero := false
	for _, lk := range links {
		c := table[d.intern(lk)]
		if c == 0 {
			anyZero = true
		}
		logSum += d.term(c)
	}
	return d.dsOf(logSum, len(links), anyZero)
}

// score computes Equation 1 for one candidate: ds^f for not-previously-
// sent candidates (Equation 2), ds^g for previously-sent, still-valid
// candidates (Equation 3, reusing the diversity score recorded at send
// time).
func (d *Diversity) score(now sim.Time, p *seg.PCB, egress addr.IfID, ds float64) float64 {
	return d.scoreKeyed(now, p, p.HopsKey(), egress, ds)
}

// scoreKeyed is score with the candidate's sent-list key precomputed.
func (d *Diversity) scoreKeyed(now sim.Time, p *seg.PCB, key string, egress addr.IfID, ds float64) float64 {
	if rec, ok := d.sentLookup(now, key, egress); ok {
		sentRemaining := float64(rec.expiry - now)
		if sentRemaining < 0 {
			sentRemaining = 0
		}
		curRemaining := float64(p.Remaining(now))
		if curRemaining <= 0 {
			return 0
		}
		g := math.Pow(d.Params.Beta*sentRemaining/curRemaining, d.Params.Gamma)
		return math.Pow(rec.diversity, g)
	}
	lifetime := float64(p.Lifetime())
	if lifetime <= 0 {
		return 0
	}
	f := d.Params.Alpha * float64(p.Age(now)) / lifetime
	return math.Pow(ds, f)
}

// sentLookup finds a valid Sent PCBs List record for the same path via
// the same egress interface; expired records are pruned lazily.
func (d *Diversity) sentLookup(now sim.Time, key string, egress addr.IfID) (sentRecord, bool) {
	byKey := d.sent[egress]
	if byKey == nil {
		return sentRecord{}, false
	}
	rec, ok := byKey[key]
	if !ok {
		return sentRecord{}, false
	}
	if now >= rec.expiry {
		delete(byKey, key)
		return sentRecord{}, false
	}
	return rec, true
}

// pcbIDs returns the interned ids of a stored PCB's links, cached per
// instance (see baseIDs).
func (d *Diversity) pcbIDs(p *seg.PCB) []uint32 {
	if ids, ok := d.baseIDs[p]; ok {
		return ids
	}
	links := p.Links()
	ids := make([]uint32, len(links))
	for i, lk := range links {
		ids[i] = d.intern(lk)
	}
	if len(d.baseIDs) >= baseIDsCap {
		clear(d.baseIDs)
	}
	d.baseIDs[p] = ids
	return ids
}

// addByLink records that selPCBs[pi] contains the link id, growing the
// dense per-id index as new ids are interned.
func (d *Diversity) addByLink(id uint32, pi int32) {
	if int(id) >= len(d.byLink) {
		d.byLink = append(d.byLink, make([][]int32, int(id)+1-len(d.byLink))...)
	}
	if len(d.byLink[id]) == 0 {
		d.usedLink = append(d.usedLink, id)
	}
	d.byLink[id] = append(d.byLink[id], pi)
}

// addEgBy records that selIfs[fi]'s egress link has the given id.
func (d *Diversity) addEgBy(id uint32, fi int32) {
	if int(id) >= len(d.egBy) {
		d.egBy = append(d.egBy, make([][]int32, int(id)+1-len(d.egBy))...)
	}
	if len(d.egBy[id]) == 0 {
		d.usedEg = append(d.usedEg, id)
	}
	d.egBy[id] = append(d.egBy[id], fi)
}

// resetSelect returns the scratch state to empty for the next Select
// call, dropping PCB references so finished rounds don't pin beacons.
func (d *Diversity) resetSelect() {
	for _, id := range d.usedLink {
		d.byLink[id] = d.byLink[id][:0]
	}
	d.usedLink = d.usedLink[:0]
	for _, id := range d.usedEg {
		d.egBy[id] = d.egBy[id][:0]
	}
	d.usedEg = d.usedEg[:0]
	clear(d.selPCBs)
	d.selPCBs = d.selPCBs[:0]
}

// pcbState is the per-stored-PCB scoring state of one Select round: the
// interned ids of the beacon's own links (shared across all egress
// interfaces), their accumulated log-sum against the round's Link History
// Table, and how many of them have a zero counter (raw-mode short
// circuit). A commit only adjusts baseSum/zeros by the delta of the
// touched counters instead of re-walking the link slice.
type pcbState struct {
	pcb     *seg.PCB
	key     string // HopsKey, the sent-list key (cached on the PCB)
	base    []uint32
	baseSum float64
	zeros   int32
}

// ifState is the per-egress-interface scoring state of one Select round.
type ifState struct {
	egress addr.IfID
	id     uint32
	log    float64
	zero   bool
}

// candState is one (stored PCB, egress interface) combination; candidate
// i*len(ifaces)+j pairs PCB i with interface j.
type candState struct {
	ds    float64
	score float64
	taken bool
}

// Select implements Selector with Algorithm 1: iteratively pick the
// highest-scoring (stored PCB, egress interface) combination for this
// [origin, neighbor] pair, stop at the dissemination limit or when the
// best score falls below the threshold, and commit each pick to the Link
// History Table and Sent PCBs List.
//
// Scoring is incremental: each PCB's log-sum of link counters is computed
// once, and a commit propagates per-counter deltas only to the PCBs and
// interfaces sharing a link with the committed path (the only candidates
// whose diversity score can change), then rescores just those. This keeps
// the loop allocation-light and fast on large stores.
func (d *Diversity) Select(now sim.Time, origin, neighbor addr.IA, ifaces []addr.IfID, stored []*seg.PCB) []Selection {
	if d.Params.Limit <= 0 || len(ifaces) == 0 {
		return nil
	}
	table := d.table(origin, neighbor)
	defer d.resetSelect()

	pcbs := d.selPCBs[:0]
	for _, p := range stored {
		if p.Expired(now) {
			continue
		}
		base := d.pcbIDs(p)
		var sum float64
		var zeros int32
		pi := int32(len(pcbs))
		for _, id := range base {
			c := table[id]
			sum += d.term(c)
			if c == 0 {
				zeros++
			}
			d.addByLink(id, pi)
		}
		pcbs = append(pcbs, pcbState{pcb: p, key: p.HopsKey(), base: base, baseSum: sum, zeros: zeros})
	}
	d.selPCBs = pcbs
	if len(pcbs) == 0 {
		return nil
	}
	nIf := len(ifaces)
	if cap(d.selIfs) < nIf {
		d.selIfs = make([]ifState, nIf)
	}
	ifs := d.selIfs[:nIf]
	for i, ifID := range ifaces {
		id := d.intern(seg.LinkKey{IA: d.local, If: ifID})
		c := table[id]
		ifs[i] = ifState{egress: ifID, id: id, log: d.term(c), zero: c == 0}
		d.addEgBy(id, int32(i))
	}

	if cap(d.selCands) < len(pcbs)*nIf {
		d.selCands = make([]candState, len(pcbs)*nIf)
	}
	cands := d.selCands[:len(pcbs)*nIf]
	clear(cands)
	rescore := func(pi, fi int) {
		ps, fs := &pcbs[pi], &ifs[fi]
		c := &cands[pi*nIf+fi]
		ds := d.dsOf(ps.baseSum+fs.log, len(ps.base)+1, ps.zeros > 0 || fs.zero)
		c.ds = ds
		c.score = d.scoreKeyed(now, ps.pcb, ps.key, fs.egress, ds)
	}
	for pi := range pcbs {
		for fi := range ifs {
			rescore(pi, fi)
		}
	}

	if cap(d.touchedPCB) < len(pcbs) {
		d.touchedPCB = make([]bool, len(pcbs))
	}
	if cap(d.touchedIf) < nIf {
		d.touchedIf = make([]bool, nIf)
	}
	touchedPCB := d.touchedPCB[:len(pcbs)]
	touchedIf := d.touchedIf[:nIf]
	var out []Selection
	for len(out) < d.Params.Limit {
		best := -1
		bestScore := d.Params.ScoreThreshold
		for i := range cands {
			if !cands[i].taken && cands[i].score > bestScore {
				best, bestScore = i, cands[i].score
			}
		}
		if best < 0 {
			break
		}
		bp, bf := best/nIf, best%nIf
		c := &cands[best]
		c.taken = true
		ps, fs := &pcbs[bp], &ifs[bf]
		out = append(out, Selection{PCB: ps.pcb, Egress: fs.egress})

		for i := range touchedPCB {
			touchedPCB[i] = false
		}
		for i := range touchedIf {
			touchedIf[i] = false
		}
		mark := func(id uint32) {
			if int(id) < len(d.byLink) {
				for _, pi := range d.byLink[id] {
					touchedPCB[pi] = true
				}
			}
			if int(id) < len(d.egBy) {
				for _, fi := range d.egBy[id] {
					touchedIf[fi] = true
				}
			}
		}
		if d.commitRecord(now, origin, neighbor, ps.pcb, fs.egress, ps.key, c.ds, ps.base, fs.id) {
			// Newly sent: increment every counter on the committed path
			// and propagate the per-counter delta to the PCBs and
			// interfaces whose log-sums include it.
			bump := func(id uint32) {
				old := table[id]
				table[id] = old + 1
				delta := d.term(old+1) - d.term(old)
				if int(id) < len(d.byLink) {
					for _, pi := range d.byLink[id] {
						pcbs[pi].baseSum += delta
						if old == 0 {
							pcbs[pi].zeros--
						}
						touchedPCB[pi] = true
					}
				}
				if int(id) < len(d.egBy) {
					for _, fi := range d.egBy[id] {
						ifs[fi].log = d.term(table[id])
						ifs[fi].zero = false
						touchedIf[fi] = true
					}
				}
			}
			for _, id := range ps.base {
				bump(id)
			}
			bump(fs.id)
		} else {
			// Re-sent path: counters are unchanged (they count valid
			// paths, not transmissions) but the refreshed sent-record
			// timers shift Equation 3 for candidates sharing its links.
			for _, id := range ps.base {
				mark(id)
			}
			mark(fs.id)
		}
		for pi := range pcbs {
			if !touchedPCB[pi] {
				continue
			}
			for fi := range ifs {
				if !cands[pi*nIf+fi].taken {
					rescore(pi, fi)
				}
			}
		}
		for fi := range ifs {
			if !touchedIf[fi] {
				continue
			}
			for pi := range pcbs {
				if touchedPCB[pi] {
					continue // rescored above
				}
				if !cands[pi*nIf+fi].taken {
					rescore(pi, fi)
				}
			}
		}
	}
	return out
}

// commitRecord updates the Sent PCBs List for one dissemination and
// reports whether the path was newly sent — in which case the caller must
// increment the Link History Table counters of base plus egID. For a
// re-sent path only the record's timers are updated (paper §4.2: the
// counters count valid paths, not transmissions, and "if a path is sent
// again, its corresponding timers in Sent PCBs List get updated"). ds is
// the path's diversity score at send time, i.e. before this
// dissemination's own counter increments.
func (d *Diversity) commitRecord(now sim.Time, origin, neighbor addr.IA, p *seg.PCB, egress addr.IfID, key string, ds float64, base []uint32, egID uint32) bool {
	byKey := d.sent[egress]
	if byKey == nil {
		byKey = map[string]sentRecord{}
		d.sent[egress] = byKey
	}
	if rec, ok := byKey[key]; ok && now < rec.expiry {
		rec.timestamp = p.Info.Timestamp
		rec.expiry = p.Info.Expiry
		byKey[key] = rec
		return false
	}
	links := make([]uint32, len(base)+1)
	copy(links, base)
	links[len(base)] = egID
	byKey[key] = sentRecord{
		diversity: ds,
		timestamp: p.Info.Timestamp,
		expiry:    p.Info.Expiry,
		links:     links,
		origin:    origin,
		neighbor:  neighbor,
	}
	return true
}

// commit records one disseminated PCB against the given table, scoring
// the path from scratch (test helper mirroring the incremental Select
// path: same record, same counter increments).
func (d *Diversity) commit(now sim.Time, origin, neighbor addr.IA, p *seg.PCB, egress addr.IfID, table map[uint32]int32) {
	links := p.Links()
	base := make([]uint32, len(links))
	for i, lk := range links {
		base[i] = d.intern(lk)
	}
	egID := d.intern(seg.LinkKey{IA: d.local, If: egress})
	logSum := 0.0
	anyZero := false
	count := func(id uint32) {
		c := table[id]
		if c == 0 {
			anyZero = true
		}
		logSum += d.term(c)
	}
	for _, id := range base {
		count(id)
	}
	count(egID)
	ds := d.dsOf(logSum, len(base)+1, anyZero)
	if d.commitRecord(now, origin, neighbor, p, egress, p.HopsKey(), ds, base, egID) {
		for _, id := range base {
			table[id]++
		}
		table[egID]++
	}
}

// Revoke implements Revoker: drop every Sent-PCB record whose path used
// the failed link and roll back its Link History Table counters, so the
// surviving links regain diversity headroom and replacement paths are
// re-scored and re-sent at the next interval rather than suppressed.
func (d *Diversity) Revoke(link seg.LinkKey) {
	id, ok := d.ids[d.tableKey(link)]
	if !ok {
		return // never disseminated over it
	}
	for _, byKey := range d.sent {
		for k, rec := range byKey {
			hit := false
			for _, lid := range rec.links {
				if lid == id {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			delete(byKey, k)
			table := d.table(rec.origin, rec.neighbor)
			for _, lid := range rec.links {
				if c := table[lid]; c > 0 {
					table[lid] = c - 1
				}
			}
		}
	}
}

// SentCount reports the number of live Sent PCBs List entries (test and
// diagnostics hook).
func (d *Diversity) SentCount() int {
	n := 0
	for _, m := range d.sent {
		n += len(m)
	}
	return n
}

// HistoryCounter exposes a Link History Table counter (test hook).
func (d *Diversity) HistoryCounter(origin, neighbor addr.IA, link seg.LinkKey) int {
	id, ok := d.ids[d.tableKey(link)]
	if !ok {
		return 0
	}
	if byN := d.hist[origin]; byN != nil {
		if t := byN[neighbor]; t != nil {
			return int(t[id])
		}
	}
	return 0
}
