package core

import (
	"math"
)

// SearchSpace is a grid over the diversity algorithm's parameters. The
// paper tunes α, β, γ and the score threshold per topology by "first
// performing a grid search with exponentially spaced values to narrow
// down the set of parameters followed by a grid search with linearly
// spaced values" (§4.2).
type SearchSpace struct {
	Alphas, Betas, Gammas, Thresholds []float64
}

// ExponentialSpace returns the coarse first-stage grid.
func ExponentialSpace() SearchSpace {
	return SearchSpace{
		Alphas:     []float64{0.5, 1, 2, 4, 8, 16, 32},
		Betas:      []float64{1, 2, 4, 8},
		Gammas:     []float64{1, 2, 4, 8},
		Thresholds: []float64{0.01, 0.05, 0.2},
	}
}

// LinearSpaceAround returns the second-stage grid: linearly spaced values
// bracketing a first-stage winner.
func LinearSpaceAround(p Params, steps int) SearchSpace {
	lin := func(center float64, frac float64) []float64 {
		if steps < 1 {
			return []float64{center}
		}
		var out []float64
		for i := -steps; i <= steps; i++ {
			v := center * (1 + frac*float64(i)/float64(steps))
			if v > 0 {
				out = append(out, v)
			}
		}
		return out
	}
	return SearchSpace{
		Alphas:     lin(p.Alpha, 0.5),
		Betas:      lin(p.Beta, 0.5),
		Gammas:     lin(p.Gamma, 0.5),
		Thresholds: lin(p.ScoreThreshold, 0.5),
	}
}

// Size returns the number of parameter combinations in the grid.
func (s SearchSpace) Size() int {
	return len(s.Alphas) * len(s.Betas) * len(s.Gammas) * len(s.Thresholds)
}

// Objective scores a parameter set; higher is better. Implementations
// typically run a small beaconing simulation and combine achieved path
// quality with (negated) communication overhead.
type Objective func(p Params) float64

// GridSearch evaluates every combination in the space (holding the other
// Params fields from base) and returns the best parameters with their
// score. NaN objective values are skipped.
func GridSearch(base Params, space SearchSpace, obj Objective) (Params, float64) {
	best := base
	bestScore := math.Inf(-1)
	for _, a := range space.Alphas {
		for _, b := range space.Betas {
			for _, g := range space.Gammas {
				for _, t := range space.Thresholds {
					p := base
					p.Alpha, p.Beta, p.Gamma, p.ScoreThreshold = a, b, g, t
					s := obj(p)
					if math.IsNaN(s) {
						continue
					}
					if s > bestScore {
						bestScore = s
						best = p
					}
				}
			}
		}
	}
	return best, bestScore
}

// TwoStageSearch runs the paper's methodology: the exponential grid
// followed by a linear refinement around the winner.
func TwoStageSearch(base Params, obj Objective, refineSteps int) (Params, float64) {
	coarse, _ := GridSearch(base, ExponentialSpace(), obj)
	return GridSearch(coarse, LinearSpaceAround(coarse, refineSteps), obj)
}
