// Package bgp is a path-vector BGP simulator used as the comparison
// baseline of the paper's §5: per-AS speakers with Adj-RIB-In and Loc-RIB,
// Gao-Rexford (valley-free) import preferences and export policies, a
// Minimum Route Advertisement Interval of 15 seconds and a 5 ms processing
// delay per update (the paper's SimBGP configuration), and RFC 4271
// message sizing.
//
// Following the paper's methodology, each AS originates a single prefix;
// per-monitor overhead for realistic per-AS prefix counts is derived
// afterwards by the accounting in msg.go (BGP aggregates prefixes sharing
// path attributes into one update; BGPsec cannot aggregate).
package bgp

import (
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// RelClass classifies the neighbor a route was learned from, driving
// LOCAL_PREF (customer > peer > provider) and export policy.
type RelClass int

const (
	FromProvider RelClass = iota
	FromPeer
	FromCustomer
	FromSelf // locally originated
)

func (r RelClass) String() string {
	switch r {
	case FromProvider:
		return "provider"
	case FromPeer:
		return "peer"
	case FromCustomer:
		return "customer"
	case FromSelf:
		return "self"
	}
	return "unknown"
}

// Route is one path-vector route for a prefix (prefixes are identified by
// their origin AS, one prefix per AS in the simulation).
type Route struct {
	Prefix addr.IA
	// Path is the AS path, nearest AS first, origin last. A
	// self-originated route has Path == [self].
	Path []addr.IA
	// From is the neighbor the route was learned from (zero for self).
	From addr.IA
	Rel  RelClass
}

// HasLoop reports whether ia appears on the path.
func (r *Route) HasLoop(ia addr.IA) bool {
	for _, h := range r.Path {
		if h == ia {
			return true
		}
	}
	return false
}

// better implements BGP decision: higher LOCAL_PREF (customer > peer >
// provider), then shorter AS path, then lowest neighbor address as the
// deterministic tiebreak.
func better(a, b *Route) bool {
	if a.Rel != b.Rel {
		return a.Rel > b.Rel
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.From.Less(b.From)
}

// relClass computes the relationship class of routes learned from
// neighbor. Core links (present in extracted core topologies) rank as
// peering, matching how tier-1 interconnection appears to BGP.
func relClass(topo *topology.Graph, local, neighbor addr.IA) RelClass {
	for _, l := range topo.LinksBetween(local, neighbor) {
		switch l.Rel {
		case topology.ProviderOf:
			if l.A == neighbor {
				return FromProvider
			}
			return FromCustomer
		case topology.PeerOf, topology.Core:
			return FromPeer
		}
	}
	return FromPeer
}

// UpdateStats aggregates the updates a speaker received per origin AS,
// the raw material for the Figure 5 accounting.
type UpdateStats struct {
	// Announcements is the number of announcement NLRI received.
	Announcements uint64
	// Withdrawals is the number of withdrawal NLRI received.
	Withdrawals uint64
	// PathLenSum sums the AS-path lengths of the announcements.
	PathLenSum uint64
}

// Speaker is the BGP speaker of one AS (the paper models each AS's border
// routers in a star around one internal speaker holding the LOC_RIB).
type Speaker struct {
	Local addr.IA
	topo  *topology.Graph

	// adjIn[prefix][neighbor] is the Adj-RIB-In.
	adjIn map[addr.IA]map[addr.IA]*Route
	// locRib[prefix] is the selected best route.
	locRib map[addr.IA]*Route
	// announced[neighbor][prefix] tracks what we advertised, so policy
	// changes and withdrawals generate correct withdraw messages.
	announced map[addr.IA]map[addr.IA]bool

	// pending[neighbor][prefix] holds the routes (nil = withdraw) waiting
	// for the neighbor's MRAI timer.
	pending map[addr.IA]map[addr.IA]*Route

	// Received aggregates incoming update statistics per origin.
	Received map[addr.IA]*UpdateStats
	// SentUpdates counts flushed update messages.
	SentUpdates uint64
}

// NewSpeaker creates the speaker for an AS.
func NewSpeaker(topo *topology.Graph, local addr.IA) *Speaker {
	return &Speaker{
		Local:     local,
		topo:      topo,
		adjIn:     map[addr.IA]map[addr.IA]*Route{},
		locRib:    map[addr.IA]*Route{},
		announced: map[addr.IA]map[addr.IA]bool{},
		pending:   map[addr.IA]map[addr.IA]*Route{},
		Received:  map[addr.IA]*UpdateStats{},
	}
}

// Originate installs the speaker's own prefix and queues exports. The
// stored path excludes the local AS (paths are "as seen from here"; the
// local AS number is prepended at export time).
func (s *Speaker) Originate() {
	r := &Route{Prefix: s.Local, Path: nil, Rel: FromSelf}
	s.locRib[s.Local] = r
	s.exportChange(s.Local, r)
}

// stats returns (allocating) the per-origin receive stats.
func (s *Speaker) stats(origin addr.IA) *UpdateStats {
	st := s.Received[origin]
	if st == nil {
		st = &UpdateStats{}
		s.Received[origin] = st
	}
	return st
}

// HandleAnnounce processes one received announcement NLRI.
func (s *Speaker) HandleAnnounce(from addr.IA, prefix addr.IA, path []addr.IA) {
	st := s.stats(prefix)
	st.Announcements++
	st.PathLenSum += uint64(len(path))

	r := &Route{Prefix: prefix, Path: path, From: from, Rel: relClass(s.topo, s.Local, from)}
	if r.HasLoop(s.Local) {
		return
	}
	m := s.adjIn[prefix]
	if m == nil {
		m = map[addr.IA]*Route{}
		s.adjIn[prefix] = m
	}
	m[from] = r
	s.reselect(prefix)
}

// HandleWithdraw processes one received withdrawal NLRI.
func (s *Speaker) HandleWithdraw(from addr.IA, prefix addr.IA) {
	s.stats(prefix).Withdrawals++
	if m := s.adjIn[prefix]; m != nil {
		delete(m, from)
	}
	s.reselect(prefix)
}

// reselect recomputes the best route for prefix and, on change, queues
// exports to all neighbors.
func (s *Speaker) reselect(prefix addr.IA) {
	old := s.locRib[prefix]
	if old != nil && old.Rel == FromSelf {
		return // own prefix never displaced
	}
	var best *Route
	for _, r := range s.adjIn[prefix] {
		if best == nil || better(r, best) {
			best = r
		}
	}
	if routesEqual(old, best) {
		return
	}
	if best == nil {
		delete(s.locRib, prefix)
	} else {
		s.locRib[prefix] = best
	}
	s.exportChange(prefix, best)
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.From != b.From || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// exportable implements Gao-Rexford: routes from customers (and own
// prefixes) go to everyone; routes from peers and providers go only to
// customers.
func (s *Speaker) exportable(r *Route, to addr.IA) bool {
	if r.Rel == FromCustomer || r.Rel == FromSelf {
		return true
	}
	return relClass(s.topo, s.Local, to) == FromCustomer
}

// exportChange queues announcements/withdrawals for all neighbors after a
// best-route change (best == nil means the route is gone).
func (s *Speaker) exportChange(prefix addr.IA, best *Route) {
	for _, nb := range s.topo.Neighbors(s.Local) {
		if best != nil && nb == best.From {
			continue // no re-advertisement to the source
		}
		send := best != nil && s.exportable(best, nb) && !best.HasLoop(nb)
		had := s.announced[nb][prefix]
		switch {
		case send:
			s.queue(nb, prefix, best)
		case had:
			s.queue(nb, prefix, nil) // withdraw
		}
	}
}

func (s *Speaker) queue(nb, prefix addr.IA, r *Route) {
	m := s.pending[nb]
	if m == nil {
		m = map[addr.IA]*Route{}
		s.pending[nb] = m
	}
	m[prefix] = r
}

// HasPending reports whether any neighbor has queued advertisements.
func (s *Speaker) HasPending(nb addr.IA) bool { return len(s.pending[nb]) > 0 }

// Flush drains the pending set for one neighbor into announcement and
// withdrawal lists (one MRAI firing). The caller transmits them.
func (s *Speaker) Flush(nb addr.IA) (announce []*Route, withdraw []addr.IA) {
	m := s.pending[nb]
	if len(m) == 0 {
		return nil, nil
	}
	delete(s.pending, nb)
	prefixes := make([]addr.IA, 0, len(m))
	for p := range m {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Less(prefixes[j]) })
	for _, p := range prefixes {
		r := m[p]
		a := s.announced[nb]
		if a == nil {
			a = map[addr.IA]bool{}
			s.announced[nb] = a
		}
		if r == nil {
			if a[p] {
				withdraw = append(withdraw, p)
				delete(a, p)
			}
			continue
		}
		// Prepend self to the exported path.
		exported := &Route{
			Prefix: p,
			Path:   append([]addr.IA{s.Local}, r.Path...),
		}
		announce = append(announce, exported)
		a[p] = true
	}
	if len(announce) > 0 || len(withdraw) > 0 {
		s.SentUpdates++
	}
	return announce, withdraw
}

// Best returns the Loc-RIB route for a prefix, or nil.
func (s *Speaker) Best(prefix addr.IA) *Route { return s.locRib[prefix] }

// RibSize returns the number of Loc-RIB entries.
func (s *Speaker) RibSize() int { return len(s.locRib) }

// AdjInRoutes returns all Adj-RIB-In routes for a prefix (BGP multi-path
// view, used by the Figure 6 path quality comparison where the paper
// assumes full BGP multi-path support).
func (s *Speaker) AdjInRoutes(prefix addr.IA) []*Route {
	m := s.adjIn[prefix]
	out := make([]*Route, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		return out[i].From.Less(out[j].From)
	})
	return out
}

// DebugAnnouncedCounts reports, per neighbor, how many prefixes this
// speaker believes it has advertised (diagnostic hook).
func (s *Speaker) DebugAnnouncedCounts() map[addr.IA]int {
	out := map[addr.IA]int{}
	for nb, m := range s.announced {
		out[nb] = len(m)
	}
	return out
}
