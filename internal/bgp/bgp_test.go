package bgp

import (
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

func ia(isd addr.ISD, as uint64) addr.IA { return addr.IA{ISD: isd, AS: addr.AS(as)} }

// gaoRexfordTopo: T1 provider of M1 and M2 (transit), which are peers;
// M1 provider of S1, M2 provider of S2.
//
//	  T1
//	 /  \
//	M1 -- M2   (peer)
//	|      |
//	S1    S2
func gaoRexfordTopo() *topology.Graph {
	g := topology.New()
	for _, as := range []uint64{1, 11, 12, 21, 22} {
		g.AddAS(ia(1, as), false)
	}
	g.MustConnect(ia(1, 1), ia(1, 11), topology.ProviderOf)
	g.MustConnect(ia(1, 1), ia(1, 12), topology.ProviderOf)
	g.MustConnect(ia(1, 11), ia(1, 12), topology.PeerOf)
	g.MustConnect(ia(1, 11), ia(1, 21), topology.ProviderOf)
	g.MustConnect(ia(1, 12), ia(1, 22), topology.ProviderOf)
	return g
}

func runGR(t *testing.T) *Result {
	t.Helper()
	res, err := Run(DefaultConfig(gaoRexfordTopo()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	return res
}

func TestConvergenceFullReachability(t *testing.T) {
	res := runGR(t)
	for src, sp := range res.Speakers {
		for dst := range res.Speakers {
			if sp.Best(dst) == nil {
				t.Errorf("%s has no route to %s", src, dst)
			}
		}
	}
}

func TestGaoRexfordPreferences(t *testing.T) {
	res := runGR(t)
	// M1 must reach S1 via its customer (direct), not via anyone else.
	m1 := res.Speakers[ia(1, 11)]
	r := m1.Best(ia(1, 21))
	if r.Rel != FromCustomer || len(r.Path) != 1 {
		t.Errorf("M1 -> S1 route: %+v", r)
	}
	// S1 reaches S2 via M1; the path must be valley-free: M1 prefers the
	// peer route via M2 over the provider route via T1 (equal length
	// would tie, but peer beats provider at same preference? No: peer
	// route is pref 1 vs provider pref 0, so M1 -> M2 -> S2).
	s1 := res.Speakers[ia(1, 21)]
	r2 := s1.Best(ia(1, 22))
	if r2 == nil {
		t.Fatal("S1 has no route to S2")
	}
	want := []addr.IA{ia(1, 11), ia(1, 12), ia(1, 22)}
	if len(r2.Path) != len(want) {
		t.Fatalf("S1 -> S2 path: %v", r2.Path)
	}
	for i := range want {
		if r2.Path[i] != want[i] {
			t.Fatalf("S1 -> S2 path: %v, want %v", r2.Path, want)
		}
	}
}

func TestValleyFreeExport(t *testing.T) {
	res := runGR(t)
	// M1 learns S2's prefix from its peer M2; peer routes must not be
	// exported to the provider T1 or to the peer M2. T1 must therefore
	// reach S2 only via M2.
	t1 := res.Speakers[ia(1, 1)]
	r := t1.Best(ia(1, 22))
	if r == nil {
		t.Fatal("T1 has no route to S2")
	}
	if r.From != ia(1, 12) {
		t.Errorf("T1 -> S2 learned from %s, want M2 (valley-free)", r.From)
	}
	// And M1's Adj-RIB-In for S2 must contain no route via T1 announcing
	// a peer-learned path.
	m1 := res.Speakers[ia(1, 11)]
	for _, route := range m1.AdjInRoutes(ia(1, 22)) {
		if route.From == ia(1, 1) {
			// T1 may export its customer/peer routes to customers: T1's
			// route to S2 is via customer M2, so this is legal.
			continue
		}
	}
}

func TestLoopSuppression(t *testing.T) {
	res := runGR(t)
	for _, sp := range res.Speakers {
		for dst := range res.Speakers {
			r := sp.Best(dst)
			if r == nil {
				continue
			}
			seen := map[addr.IA]bool{sp.Local: true}
			for _, h := range r.Path {
				if seen[h] {
					t.Errorf("loop in %s -> %s: %v", sp.Local, dst, r.Path)
				}
				seen[h] = true
			}
		}
	}
}

func TestWithdrawPropagates(t *testing.T) {
	res := runGR(t)
	res.WithdrawPrefix(ia(1, 22))
	for src, sp := range res.Speakers {
		if src == ia(1, 22) {
			continue
		}
		if sp.Best(ia(1, 22)) != nil {
			t.Errorf("%s still has a route to withdrawn prefix", src)
		}
	}
}

func TestUpdateWireLen(t *testing.T) {
	r := &Route{Prefix: ia(1, 1), Path: []addr.IA{ia(1, 2), ia(1, 1)}}
	u := Update{Announce: []*Route{r}, Withdraw: []addr.IA{ia(1, 9)}}
	want := 19 + 2 + 2 + AnnounceWireLen(2) + 5
	if got := u.WireLen(); got != want {
		t.Errorf("WireLen = %d, want %d", got, want)
	}
	if AnnounceWireLen(4) != 4+5+16+7+5 {
		t.Errorf("AnnounceWireLen(4) = %d", AnnounceWireLen(4))
	}
}

func TestOverheadAccountedAtMonitors(t *testing.T) {
	res := runGR(t)
	for ia_, sp := range res.Speakers {
		if len(sp.Received) == 0 {
			t.Errorf("%s received no updates", ia_)
		}
	}
	if res.Net.GrandTotalTx() == 0 {
		t.Error("no wire bytes counted")
	}
	acct := DefaultAccounting(res.Cfg.Topo)
	for _, sp := range res.Speakers {
		if b := acct.BGPMonthlyBytes(sp); b <= 0 {
			t.Errorf("monthly bytes for %s = %v", sp.Local, b)
		}
	}
}

func TestPathSetMultipath(t *testing.T) {
	res := runGR(t)
	// M1 has two routes to T1's prefix? T1 is its direct provider; also
	// via peer M2? M2 does not export provider routes to peers, so only
	// one. Check S1 -> T1: via M1 only, path set size 1.
	ps := res.PathSet(ia(1, 21), ia(1, 1))
	if len(ps) == 0 {
		t.Fatal("empty path set")
	}
	for _, p := range ps {
		if len(p) == 0 {
			t.Error("empty path in set")
		}
	}
	if res.PathSet(ia(1, 21), ia(1, 21)) != nil {
		t.Error("self path set must be nil")
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil topology must fail")
	}
	cfg := DefaultConfig(gaoRexfordTopo())
	cfg.MRAI = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero MRAI must fail")
	}
}

func TestConvergenceOnGeneratedTopology(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 120
	p.Tier1 = 5
	topo := topology.MustGenerate(p)
	res, err := Run(DefaultConfig(topo))
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check reachability from a stub to all tier-1s.
	sp := res.Speakers[ia(1, 120)]
	for i := 1; i <= 5; i++ {
		if sp.Best(ia(1, uint64(i))) == nil {
			t.Errorf("stub missing route to tier-1 %d", i)
		}
	}
	if res.Converged != true {
		t.Error("generated topology did not converge")
	}
}

func TestSyntheticPrefixCounts(t *testing.T) {
	g := gaoRexfordTopo()
	counts := SyntheticPrefixCounts(g)
	if counts[ia(1, 1)] <= counts[ia(1, 21)] {
		t.Errorf("tier-1 prefixes (%d) must exceed stub prefixes (%d)",
			counts[ia(1, 1)], counts[ia(1, 21)])
	}
	for iaX, n := range counts {
		if n < 1 {
			t.Errorf("%s has %d prefixes", iaX, n)
		}
	}
}

func TestRelClassStrings(t *testing.T) {
	for _, r := range []RelClass{FromProvider, FromPeer, FromCustomer, FromSelf} {
		if r.String() == "" || r.String() == "unknown" {
			t.Errorf("bad string for %d", r)
		}
	}
}

func TestCalibratePrefixCounts(t *testing.T) {
	counts := map[addr.IA]int{ia(1, 1): 10, ia(1, 2): 2, ia(1, 3): 0}
	out := CalibratePrefixCounts(counts, 66)
	sum := 0
	for _, n := range out {
		if n < 1 {
			t.Errorf("count below floor: %d", n)
		}
		sum += n
	}
	mean := float64(sum) / 3
	if mean < 40 || mean > 90 {
		t.Errorf("calibrated mean = %v, want ~66", mean)
	}
	// Skew preserved.
	if out[ia(1, 1)] <= out[ia(1, 2)] {
		t.Error("skew lost")
	}
	// Degenerate inputs pass through.
	if got := CalibratePrefixCounts(nil, 66); got != nil {
		t.Error("nil passthrough")
	}
	if got := CalibratePrefixCounts(counts, 0); got[ia(1, 1)] != 10 {
		t.Error("zero target must passthrough")
	}
}
