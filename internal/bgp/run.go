package bgp

import (
	"fmt"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// Update is one BGP UPDATE message on the wire (possibly batching several
// NLRI, as one MRAI flush produces one message per neighbor).
type Update struct {
	Announce []*Route
	Withdraw []addr.IA
}

// WireLen implements sim.Message with RFC 4271 sizing: 19-byte header,
// withdrawn-routes and path-attribute length fields, and per announcement
// the ORIGIN/AS_PATH(AS4)/NEXT_HOP attributes plus a 5-byte NLRI. NLRI
// sharing attributes would aggregate; distinct origins have distinct
// paths, so each announcement carries its own attribute set.
func (u Update) WireLen() int {
	n := 19 + 2 + 2
	for _, r := range u.Announce {
		n += AnnounceWireLen(len(r.Path))
	}
	n += 5 * len(u.Withdraw)
	return n
}

// AnnounceWireLen is the attribute+NLRI cost of announcing one prefix
// with an AS path of the given length (RFC 4271, 4-byte AS numbers):
// ORIGIN (4) + AS_PATH header (5) + 4 bytes per hop + NEXT_HOP (7) +
// NLRI (5).
func AnnounceWireLen(pathLen int) int { return 4 + 5 + 4*pathLen + 7 + 5 }

// Config parameterizes a BGP simulation; the defaults mirror the paper's
// SimBGP setup (§5.1).
type Config struct {
	Topo *topology.Graph
	// MRAI is the per-neighbor Minimum Route Advertisement Interval.
	MRAI time.Duration
	// ProcDelay is the per-update processing delay at a speaker.
	ProcDelay time.Duration
	// LinkDelay is the one-way propagation delay.
	LinkDelay time.Duration
	// MaxTime aborts a non-converging run (0: none).
	MaxTime time.Duration
}

// DefaultConfig returns the paper's SimBGP parameters.
func DefaultConfig(topo *topology.Graph) Config {
	return Config{
		Topo:      topo,
		MRAI:      15 * time.Second,
		ProcDelay: 5 * time.Millisecond,
		LinkDelay: 10 * time.Millisecond,
	}
}

// Result is a completed BGP simulation.
type Result struct {
	Cfg      Config
	Sim      *sim.Simulator
	Net      *sim.Network
	Speakers map[addr.IA]*Speaker
	// Converged is false if MaxTime aborted the run.
	Converged bool
	End       sim.Time
}

// Run originates one prefix per AS at t=0 and simulates until the event
// queue drains (convergence; BGP has one, unlike SCION which needs none —
// paper §5).
func Run(cfg Config) (*Result, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("bgp: nil topology")
	}
	if cfg.MRAI <= 0 {
		return nil, fmt.Errorf("bgp: MRAI must be positive")
	}
	s := &sim.Simulator{}
	net := sim.NewNetwork(s, cfg.Topo, cfg.LinkDelay)
	speakers := map[addr.IA]*Speaker{}

	r := &Result{Cfg: cfg, Sim: s, Net: net, Speakers: speakers}

	// flush sends one speaker's pending set to one neighbor and re-arms
	// the MRAI timer while more appears.
	var armMRAI func(sp *Speaker, nb addr.IA)
	timerArmed := map[[2]uint64]bool{}
	doFlush := func(sp *Speaker, nb addr.IA) {
		announce, withdraw := sp.Flush(nb)
		if len(announce) == 0 && len(withdraw) == 0 {
			return
		}
		links := cfg.Topo.LinksBetween(sp.Local, nb)
		if len(links) == 0 {
			return
		}
		// BGP sessions run over one link regardless of parallel links.
		net.Send(sp.Local, links[0], Update{Announce: announce, Withdraw: withdraw})
	}
	armMRAI = func(sp *Speaker, nb addr.IA) {
		key := [2]uint64{sp.Local.Uint64(), nb.Uint64()}
		if timerArmed[key] {
			return
		}
		timerArmed[key] = true
		s.Schedule(cfg.MRAI, func() {
			timerArmed[key] = false
			doFlush(sp, nb)
			if sp.HasPending(nb) {
				armMRAI(sp, nb)
			}
		})
	}

	for _, ia := range cfg.Topo.IAs() {
		ia := ia
		sp := NewSpeaker(cfg.Topo, ia)
		speakers[ia] = sp
		net.Register(ia, sim.HandlerFunc(func(from addr.IA, _ *topology.Link, msg sim.Message) {
			u, ok := msg.(Update)
			if !ok {
				return
			}
			// Processing delay per update message before RIB changes and
			// further propagation.
			s.Schedule(cfg.ProcDelay, func() {
				for _, p := range u.Withdraw {
					sp.HandleWithdraw(from, p)
				}
				for _, rt := range u.Announce {
					sp.HandleAnnounce(from, rt.Prefix, rt.Path)
				}
				for _, nb := range cfg.Topo.Neighbors(ia) {
					if sp.HasPending(nb) {
						armMRAI(sp, nb)
					}
				}
			})
		}))
	}

	// Origination at t=0: everyone announces its prefix; the first flush
	// happens after one MRAI.
	for _, ia := range cfg.Topo.IAs() {
		sp := speakers[ia]
		sp.Originate()
		for _, nb := range cfg.Topo.Neighbors(ia) {
			if sp.HasPending(nb) {
				armMRAI(sp, nb)
			}
		}
	}

	if cfg.MaxTime > 0 {
		s.RunUntil(sim.Time(cfg.MaxTime))
		r.Converged = s.Pending() == 0
	} else {
		s.Run()
		r.Converged = true
	}
	r.End = s.Now()
	return r, nil
}

// WithdrawPrefix injects a withdrawal of origin's prefix (e.g. the origin
// going offline) and re-runs to convergence, modelling churn.
func (r *Result) WithdrawPrefix(origin addr.IA) {
	sp := r.Speakers[origin]
	if sp == nil {
		return
	}
	delete(sp.locRib, origin)
	sp.exportChange(origin, nil)
	// Flush immediately (the origin's MRAI timers are idle post-convergence).
	for _, nb := range r.Cfg.Topo.Neighbors(origin) {
		announce, withdraw := sp.Flush(nb)
		if len(announce) == 0 && len(withdraw) == 0 {
			continue
		}
		links := r.Cfg.Topo.LinksBetween(origin, nb)
		r.Net.Send(origin, links[0], Update{Announce: announce, Withdraw: withdraw})
	}
	r.Sim.Run()
	r.End = r.Sim.Now()
}

// PathSet returns BGP's multi-path view between src and dst for the
// Figure 6 comparison: the best path plus all Adj-RIB-In alternatives at
// src for dst's prefix (the paper assumes full BGP multi-path support and
// uses parallel links between consecutive ASes for bandwidth
// aggregation).
func (r *Result) PathSet(src, dst addr.IA) [][]graphalg.PathLink {
	sp := r.Speakers[src]
	if sp == nil || src == dst {
		return nil
	}
	var out [][]graphalg.PathLink
	for _, route := range sp.AdjInRoutes(dst) {
		full := append([]addr.IA{src}, route.Path...)
		// Expand each AS-level hop into all parallel links (BGP
		// multi-path may bond them).
		var pl []graphalg.PathLink
		ok := true
		for i := 0; i+1 < len(full); i++ {
			links := r.Cfg.Topo.LinksBetween(full[i], full[i+1])
			if len(links) == 0 {
				ok = false
				break
			}
			for _, l := range links {
				pl = append(pl, graphalg.PathLink{A: l.A, B: l.B, ID: l.ID})
			}
		}
		if ok && len(pl) > 0 {
			out = append(out, pl)
		}
	}
	return out
}
