package bgp

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// SyntheticPrefixCounts assigns per-AS announced-prefix counts following
// the skew observed in RouteViews: large transit providers originate
// thousands of prefixes, stubs a handful. The count grows with the
// customer cone (the paper obtains real counts from RouteViews; this is
// the synthetic stand-in on generated topologies).
func SyntheticPrefixCounts(topo *topology.Graph) map[addr.IA]int {
	out := make(map[addr.IA]int, topo.NumASes())
	for _, ia := range topo.IAs() {
		cone := topo.CustomerCone(ia)
		deg := topo.AS(ia).Degree()
		n := 1 + cone/4 + deg/8
		if n > 5000 {
			n = 5000
		}
		out[ia] = n
	}
	return out
}

// CalibratePrefixCounts rescales per-AS prefix counts so their mean hits
// targetMean while preserving the relative skew, with a floor of one
// prefix per AS. The 2020 Internet carried roughly 66 announced prefixes
// per AS on average (~900k prefixes over ~13.5k transit+origin ASes in
// the RouteViews tables the paper measures against); scaled-down
// topologies must keep that density or BGP's table — Figure 5's
// denominator — shrinks quadratically with topology size.
func CalibratePrefixCounts(counts map[addr.IA]int, targetMean float64) map[addr.IA]int {
	if len(counts) == 0 || targetMean <= 0 {
		return counts
	}
	sum := 0.0
	for _, n := range counts {
		sum += float64(n)
	}
	mean := sum / float64(len(counts))
	if mean <= 0 {
		return counts
	}
	factor := targetMean / mean
	out := make(map[addr.IA]int, len(counts))
	for ia, n := range counts {
		v := int(float64(n)*factor + 0.5)
		if v < 1 {
			v = 1
		}
		out[ia] = v
	}
	return out
}

// RealInternetMeanPrefixes is the calibration target for
// CalibratePrefixCounts (see its doc comment).
const RealInternetMeanPrefixes = 66.0

// MonthlyAccounting converts one convergence simulation into estimated
// monthly control-plane bytes at a monitor, following the paper's §5.2
// methodology: per-origin update events are scaled by the origin's prefix
// count (aggregated for BGP, per-prefix for BGPsec) and multiplied by the
// number of table propagations per month (the paper assumes daily
// re-beaconing for BGPsec per RFC 8374; we apply the same cadence to the
// BGP substitute since no RouteViews ground truth is available offline).
type MonthlyAccounting struct {
	// Prefixes is the per-origin prefix count (nil: 1 per origin).
	Prefixes map[addr.IA]int
	// ChurnPerMonth is the number of convergence-equivalent update waves
	// per month (default 30 = daily).
	ChurnPerMonth float64
	// MaxAggregation bounds how many same-origin prefixes share one
	// UPDATE message's path attributes. Unbounded aggregation would let
	// BGP amortize its header over hundreds of prefixes, which real
	// tables do not exhibit — RouteViews updates carry a handful of NLRI
	// on average. Default 4.
	MaxAggregation int
}

// DefaultAccounting uses synthetic prefix counts and daily churn.
func DefaultAccounting(topo *topology.Graph) MonthlyAccounting {
	return MonthlyAccounting{Prefixes: SyntheticPrefixCounts(topo), ChurnPerMonth: 30}
}

func (a MonthlyAccounting) prefixCount(origin addr.IA) int {
	if a.Prefixes == nil {
		return 1
	}
	if n, ok := a.Prefixes[origin]; ok && n > 0 {
		return n
	}
	return 1
}

func (a MonthlyAccounting) churn() float64 {
	if a.ChurnPerMonth <= 0 {
		return 30
	}
	return a.ChurnPerMonth
}

// BGPMonthlyBytes estimates the monthly BGP bytes received by the given
// speaker. Prefixes of the same origin share path attributes and
// aggregate into common updates (RFC 4271): one event costs the header
// and attributes once plus 5 bytes NLRI per prefix.
func (a MonthlyAccounting) BGPMonthlyBytes(sp *Speaker) float64 {
	agg := float64(a.MaxAggregation)
	if agg <= 0 {
		agg = 4
	}
	total := 0.0
	for origin, st := range sp.Received {
		if st.Announcements == 0 && st.Withdrawals == 0 {
			continue
		}
		p := float64(a.prefixCount(origin))
		updates := p / agg
		if updates < 1 {
			updates = 1
		}
		if st.Announcements > 0 {
			avgLen := float64(st.PathLenSum) / float64(st.Announcements)
			perEvent := updates*(float64(19+2+2)+16+4*avgLen) + 5*p
			total += float64(st.Announcements) * perEvent
		}
		total += float64(st.Withdrawals) * (updates*float64(19+2+2) + 5*p)
	}
	return total * a.churn()
}
