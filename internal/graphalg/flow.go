// Package graphalg provides the graph algorithms behind the paper's path
// quality evaluation: unit-capacity max-flow / min-cut (failure resilience
// and aggregate capacity, Figures 6a/6b), breadth-first shortest paths, and
// k-shortest-path enumeration.
//
// The paper treats the two quality metrics as duals (§5.3): the minimum
// number of inter-AS link failures that disconnect a pair equals, by
// max-flow-min-cut on a unit-capacity multigraph, the number of link-
// disjoint paths, i.e. the aggregate capacity in multiples of a single
// link's capacity. Both Figure 6a and 6b are therefore computed by MaxFlow,
// on the union of disseminated paths (achieved quality) or on the full
// topology (optimum).
package graphalg

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// FlowNetwork is a directed residual network for Edmonds-Karp max-flow.
// Undirected unit-capacity links (inter-AS links) are added with AddUndirected.
// The zero value is not usable; create networks with NewFlowNetwork.
type FlowNetwork struct {
	n    int
	head []int // head[v] = first edge index of v, -1 if none
	next []int // next[e] = next edge of the same node
	to   []int // to[e] = target node
	cap  []int // cap[e] = residual capacity
}

// NewFlowNetwork creates a network with n nodes and no edges.
func NewFlowNetwork(n int) *FlowNetwork {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &FlowNetwork{n: n, head: h}
}

func (f *FlowNetwork) addArc(u, v, c int) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = len(f.to) - 1
}

// AddEdge adds a directed edge u->v with capacity c (plus its zero-capacity
// residual reverse arc).
func (f *FlowNetwork) AddEdge(u, v, c int) {
	f.addArc(u, v, c)
	f.addArc(v, u, 0)
}

// AddUndirected adds an undirected edge of capacity c: both arcs get
// capacity c and serve as each other's residual.
func (f *FlowNetwork) AddUndirected(u, v, c int) {
	f.addArc(u, v, c)
	f.addArc(v, u, c)
}

// MaxFlow computes the maximum s-t flow with Edmonds-Karp (BFS augmenting
// paths). It mutates residual capacities; call it once per network.
func (f *FlowNetwork) MaxFlow(s, t int) int {
	if s == t {
		return 0
	}
	flow := 0
	parentEdge := make([]int, f.n)
	queue := make([]int, 0, f.n)
	for {
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		parentEdge[s] = -2
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for e := f.head[u]; e != -1; e = f.next[e] {
				v := f.to[e]
				if f.cap[e] > 0 && parentEdge[v] == -1 {
					parentEdge[v] = e
					if v == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			return flow
		}
		// Find bottleneck along the augmenting path.
		aug := int(^uint(0) >> 1)
		for v := t; v != s; {
			e := parentEdge[v]
			if f.cap[e] < aug {
				aug = f.cap[e]
			}
			v = f.to[e^1]
		}
		for v := t; v != s; {
			e := parentEdge[v]
			f.cap[e] -= aug
			f.cap[e^1] += aug
			v = f.to[e^1]
		}
		flow += aug
	}
}

// indexer maps IAs to dense node indices.
type indexer struct {
	idx map[addr.IA]int
}

func newIndexer() *indexer { return &indexer{idx: map[addr.IA]int{}} }

func (x *indexer) of(ia addr.IA) int {
	if i, ok := x.idx[ia]; ok {
		return i
	}
	i := len(x.idx)
	x.idx[ia] = i
	return i
}

// OptimalFlow computes the maximum number of link-disjoint paths between
// src and dst in the full topology, treating every parallel inter-AS link
// as an undirected unit-capacity edge. This is the paper's "optimum" curve
// in Figures 6a/6b.
func OptimalFlow(g *topology.Graph, src, dst addr.IA) int {
	if src == dst {
		return 0
	}
	ix := newIndexer()
	for _, ia := range g.IAs() {
		ix.of(ia)
	}
	net := NewFlowNetwork(len(ix.idx))
	for _, l := range g.Links {
		net.AddUndirected(ix.of(l.A), ix.of(l.B), 1)
	}
	s, okS := ix.idx[src]
	t, okT := ix.idx[dst]
	if !okS || !okT {
		return 0
	}
	return net.MaxFlow(s, t)
}

// PathLink is one inter-AS link hop of a disseminated path: the two
// endpoint ASes and the unique link identifier (so parallel links remain
// distinct edges in the union graph).
type PathLink struct {
	A, B addr.IA
	ID   topology.LinkID
}

// UnionFlow computes the maximum s-t flow over the union of the links of a
// set of disseminated paths, each link with unit capacity and counted once
// no matter how many paths share it. Per the paper this value is both the
// failure resilience (min links to disconnect) and the aggregate capacity
// of the path set.
func UnionFlow(paths [][]PathLink, src, dst addr.IA) int {
	if src == dst || len(paths) == 0 {
		return 0
	}
	ix := newIndexer()
	seen := map[topology.LinkID]struct{}{}
	type edge struct{ u, v int }
	var edges []edge
	for _, p := range paths {
		for _, pl := range p {
			if _, dup := seen[pl.ID]; dup {
				continue
			}
			seen[pl.ID] = struct{}{}
			edges = append(edges, edge{ix.of(pl.A), ix.of(pl.B)})
		}
	}
	s, okS := ix.idx[src]
	t, okT := ix.idx[dst]
	if !okS || !okT {
		return 0
	}
	net := NewFlowNetwork(len(ix.idx))
	for _, e := range edges {
		net.AddUndirected(e.u, e.v, 1)
	}
	return net.MaxFlow(s, t)
}

// Resilience is an alias of UnionFlow named for the Figure 6a metric: the
// minimum number of failing links that disconnect src from dst given the
// disseminated path set.
func Resilience(paths [][]PathLink, src, dst addr.IA) int {
	return UnionFlow(paths, src, dst)
}

// Capacity is an alias of UnionFlow named for the Figure 6b metric: the
// aggregate capacity between src and dst in multiples of a single inter-AS
// link's capacity.
func Capacity(paths [][]PathLink, src, dst addr.IA) int {
	return UnionFlow(paths, src, dst)
}
