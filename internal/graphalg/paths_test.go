package graphalg

import (
	"testing"

	"scionmpr/internal/topology"
)

func line(n int) *topology.Graph {
	g := topology.New()
	for i := 1; i <= n; i++ {
		g.AddAS(ia(1, uint64(i)), true)
	}
	for i := 1; i < n; i++ {
		g.MustConnect(ia(1, uint64(i)), ia(1, uint64(i+1)), topology.Core)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := line(5)
	p := ShortestPath(g, ia(1, 1), ia(1, 5))
	if len(p) != 5 {
		t.Fatalf("path = %v, want 5 hops", p)
	}
	if p[0] != ia(1, 1) || p[4] != ia(1, 5) {
		t.Errorf("endpoints wrong: %v", p)
	}
}

func TestShortestPathEdgeCases(t *testing.T) {
	g := line(3)
	if p := ShortestPath(g, ia(1, 1), ia(1, 1)); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	if ShortestPath(g, ia(1, 1), ia(9, 9)) != nil {
		t.Error("unknown dst must be nil")
	}
	g.AddAS(ia(1, 99), false) // isolated
	if ShortestPath(g, ia(1, 1), ia(1, 99)) != nil {
		t.Error("unreachable dst must be nil")
	}
}

func TestKShortestPathsOrderAndCount(t *testing.T) {
	// Diamond: 1-2-4 and 1-3-4 (len 3), plus 1-2-3-4 style detour via 2-3.
	g := topology.New()
	for i := 1; i <= 4; i++ {
		g.AddAS(ia(1, uint64(i)), true)
	}
	g.MustConnect(ia(1, 1), ia(1, 2), topology.Core)
	g.MustConnect(ia(1, 1), ia(1, 3), topology.Core)
	g.MustConnect(ia(1, 2), ia(1, 4), topology.Core)
	g.MustConnect(ia(1, 3), ia(1, 4), topology.Core)
	g.MustConnect(ia(1, 2), ia(1, 3), topology.Core)

	paths := KShortestPaths(g, ia(1, 1), ia(1, 4), 10, 8)
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4: %v", len(paths), paths)
	}
	for i := 1; i < len(paths); i++ {
		if len(paths[i]) < len(paths[i-1]) {
			t.Errorf("paths not in length order: %v", paths)
		}
	}
	// All paths loop-free.
	for _, p := range paths {
		seen := map[uint64]bool{}
		for _, x := range p {
			if seen[x.Uint64()] {
				t.Errorf("loop in path %v", p)
			}
			seen[x.Uint64()] = true
		}
	}
	// k truncates.
	if got := KShortestPaths(g, ia(1, 1), ia(1, 4), 2, 8); len(got) != 2 {
		t.Errorf("k=2 gave %d paths", len(got))
	}
	// maxHops truncates.
	if got := KShortestPaths(g, ia(1, 1), ia(1, 4), 10, 2); len(got) != 2 {
		t.Errorf("maxHops=2 gave %d paths (want only the two 2-hop paths)", len(got))
	}
	if KShortestPaths(g, ia(1, 1), ia(1, 4), 0, 8) != nil {
		t.Error("k=0 must be nil")
	}
}

func TestReachable(t *testing.T) {
	g := line(4)
	g.AddAS(ia(1, 99), false)
	r := Reachable(g, ia(1, 1))
	if len(r) != 4 || !r[ia(1, 4)] || r[ia(1, 99)] {
		t.Errorf("reachable = %v", r)
	}
	if len(Reachable(g, ia(9, 9))) != 0 {
		t.Error("unknown src must be empty")
	}
}

func TestDiameter(t *testing.T) {
	g := line(6)
	if d := Diameter(g, 0); d != 5 {
		t.Errorf("diameter = %d, want 5", d)
	}
	if d := Diameter(g, 2); d < 3 || d > 5 {
		t.Errorf("sampled diameter = %d, want within [3,5]", d)
	}
}

func TestSamplePairs(t *testing.T) {
	g := line(10)
	pairs := SamplePairs(g, 8)
	if len(pairs) == 0 || len(pairs) > 8 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d is degenerate", i)
		}
		if i > 0 && p == pairs[i-1] {
			t.Errorf("duplicate pair %v", p)
		}
	}
	if SamplePairs(g, 0) != nil {
		t.Error("n=0 must be nil")
	}
	single := topology.New()
	single.AddAS(ia(1, 1), false)
	if SamplePairs(single, 5) != nil {
		t.Error("single-AS graph must give nil")
	}
	// Determinism.
	again := SamplePairs(g, 8)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("SamplePairs not deterministic")
		}
	}
}
