package graphalg

import (
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// ShortestPath returns one shortest AS-level path (by hop count) from src
// to dst as a sequence of IAs including both endpoints, or nil if dst is
// unreachable.
func ShortestPath(g *topology.Graph, src, dst addr.IA) []addr.IA {
	if g.AS(src) == nil || g.AS(dst) == nil {
		return nil
	}
	if src == dst {
		return []addr.IA{src}
	}
	prev := map[addr.IA]addr.IA{src: src}
	queue := []addr.IA{src}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, nb := range g.Neighbors(cur) {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == dst {
				return reconstruct(prev, src, dst)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func reconstruct(prev map[addr.IA]addr.IA, src, dst addr.IA) []addr.IA {
	var rev []addr.IA
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	out := make([]addr.IA, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// KShortestPaths enumerates up to k loop-free AS-level paths from src to
// dst in non-decreasing hop-count order using a breadth-first search over
// partial paths with loop suppression. It is used for optimum-path-set
// baselines on small topologies; complexity grows with path diversity, so
// maxHops bounds the search.
func KShortestPaths(g *topology.Graph, src, dst addr.IA, k, maxHops int) [][]addr.IA {
	if g.AS(src) == nil || g.AS(dst) == nil || k <= 0 {
		return nil
	}
	type partial struct {
		path []addr.IA
		on   map[addr.IA]bool
	}
	var out [][]addr.IA
	queue := []partial{{path: []addr.IA{src}, on: map[addr.IA]bool{src: true}}}
	for qi := 0; qi < len(queue) && len(out) < k; qi++ {
		p := queue[qi]
		last := p.path[len(p.path)-1]
		if last == dst {
			cp := make([]addr.IA, len(p.path))
			copy(cp, p.path)
			out = append(out, cp)
			continue
		}
		if len(p.path) > maxHops {
			continue
		}
		for _, nb := range g.Neighbors(last) {
			if p.on[nb] {
				continue
			}
			np := make([]addr.IA, len(p.path)+1)
			copy(np, p.path)
			np[len(p.path)] = nb
			non := make(map[addr.IA]bool, len(p.on)+1)
			for ia := range p.on {
				non[ia] = true
			}
			non[nb] = true
			queue = append(queue, partial{path: np, on: non})
		}
	}
	return out
}

// Reachable returns the set of IAs reachable from src, including src.
func Reachable(g *topology.Graph, src addr.IA) map[addr.IA]bool {
	seen := map[addr.IA]bool{}
	if g.AS(src) == nil {
		return seen
	}
	seen[src] = true
	queue := []addr.IA{src}
	for qi := 0; qi < len(queue); qi++ {
		for _, nb := range g.Neighbors(queue[qi]) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return seen
}

// Diameter returns the longest shortest-path hop count over sampled
// sources (all sources if sample <= 0 or >= AS count). Sources are chosen
// deterministically in sorted IA order.
func Diameter(g *topology.Graph, sample int) int {
	ias := g.IAs()
	if sample > 0 && sample < len(ias) {
		step := len(ias) / sample
		var picked []addr.IA
		for i := 0; i < len(ias); i += step {
			picked = append(picked, ias[i])
		}
		ias = picked
	}
	max := 0
	for _, src := range ias {
		dist := map[addr.IA]int{src: 0}
		queue := []addr.IA{src}
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, nb := range g.Neighbors(cur) {
				if _, ok := dist[nb]; !ok {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// SamplePairs deterministically selects up to n distinct (src, dst) pairs
// from the graph's ASes, spread across the sorted IA order. It is used to
// bound the cost of all-pairs metrics on large topologies.
func SamplePairs(g *topology.Graph, n int) [][2]addr.IA {
	ias := g.IAs()
	if len(ias) < 2 || n <= 0 {
		return nil
	}
	var out [][2]addr.IA
	// A fixed multiplicative stride walks pairs deterministically without
	// clustering on neighbors in the sorted order.
	stride := len(ias)/2 + 1
	for i := 0; len(out) < n && i < n*4; i++ {
		s := ias[(i*7)%len(ias)]
		d := ias[(i*7+stride+i)%len(ias)]
		if s == d {
			continue
		}
		out = append(out, [2]addr.IA{s, d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0].Less(out[j][0])
		}
		return out[i][1].Less(out[j][1])
	})
	// Deduplicate.
	uniq := out[:0]
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq
}
