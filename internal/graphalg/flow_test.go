package graphalg

import (
	"testing"
	"testing/quick"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

func ia(isd addr.ISD, as uint64) addr.IA { return addr.IA{ISD: isd, AS: addr.AS(as)} }

func TestMaxFlowDirected(t *testing.T) {
	// Classic diamond: s->a->t and s->b->t, plus a->b.
	f := NewFlowNetwork(4)
	s, a, b, tt := 0, 1, 2, 3
	f.AddEdge(s, a, 2)
	f.AddEdge(s, b, 1)
	f.AddEdge(a, b, 1)
	f.AddEdge(a, tt, 1)
	f.AddEdge(b, tt, 2)
	if got := f.MaxFlow(s, tt); got != 3 {
		t.Errorf("max flow = %d, want 3", got)
	}
}

func TestMaxFlowSameNode(t *testing.T) {
	f := NewFlowNetwork(2)
	f.AddEdge(0, 1, 5)
	if f.MaxFlow(0, 0) != 0 {
		t.Error("s==t flow must be 0")
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewFlowNetwork(3)
	f.AddEdge(0, 1, 5)
	if got := f.MaxFlow(0, 2); got != 0 {
		t.Errorf("disconnected flow = %d, want 0", got)
	}
}

func TestMaxFlowUndirected(t *testing.T) {
	// Ring of 4 nodes: two disjoint paths between opposite corners.
	f := NewFlowNetwork(4)
	f.AddUndirected(0, 1, 1)
	f.AddUndirected(1, 2, 1)
	f.AddUndirected(2, 3, 1)
	f.AddUndirected(3, 0, 1)
	if got := f.MaxFlow(0, 2); got != 2 {
		t.Errorf("ring flow = %d, want 2", got)
	}
}

func parallelPair(n int) *topology.Graph {
	g := topology.New()
	g.AddAS(ia(1, 1), true)
	g.AddAS(ia(1, 2), true)
	for i := 0; i < n; i++ {
		g.MustConnect(ia(1, 1), ia(1, 2), topology.Core)
	}
	return g
}

func TestOptimalFlowParallelLinks(t *testing.T) {
	g := parallelPair(3)
	if got := OptimalFlow(g, ia(1, 1), ia(1, 2)); got != 3 {
		t.Errorf("parallel-link flow = %d, want 3", got)
	}
	if OptimalFlow(g, ia(1, 1), ia(1, 1)) != 0 {
		t.Error("same-AS optimal flow must be 0")
	}
	if OptimalFlow(g, ia(1, 1), ia(9, 9)) != 0 {
		t.Error("unknown dst optimal flow must be 0")
	}
}

func TestOptimalFlowRing(t *testing.T) {
	g := topology.New()
	for i := 1; i <= 5; i++ {
		g.AddAS(ia(1, uint64(i)), true)
	}
	for i := 1; i <= 5; i++ {
		j := i%5 + 1
		g.MustConnect(ia(1, uint64(i)), ia(1, uint64(j)), topology.Core)
	}
	if got := OptimalFlow(g, ia(1, 1), ia(1, 3)); got != 2 {
		t.Errorf("ring flow = %d, want 2", got)
	}
}

func TestUnionFlowCountsSharedLinksOnce(t *testing.T) {
	s, m, d := ia(1, 1), ia(1, 2), ia(1, 3)
	shared := PathLink{A: s, B: m, ID: 1}
	p1 := []PathLink{shared, {A: m, B: d, ID: 2}}
	p2 := []PathLink{shared, {A: m, B: d, ID: 3}}
	// Both paths share link 1, so one failure (link 1) disconnects.
	if got := UnionFlow([][]PathLink{p1, p2}, s, d); got != 1 {
		t.Errorf("shared-bottleneck flow = %d, want 1", got)
	}
	// Disjoint second path raises resilience to 2.
	p3 := []PathLink{{A: s, B: m, ID: 4}, {A: m, B: d, ID: 5}}
	if got := UnionFlow([][]PathLink{p1, p3}, s, d); got != 2 {
		t.Errorf("disjoint flow = %d, want 2", got)
	}
}

func TestUnionFlowEdgeCases(t *testing.T) {
	s, d := ia(1, 1), ia(1, 2)
	if UnionFlow(nil, s, d) != 0 {
		t.Error("empty path set must give 0")
	}
	if UnionFlow([][]PathLink{{{A: s, B: d, ID: 1}}}, s, s) != 0 {
		t.Error("s==t must give 0")
	}
	// dst not present in union.
	p := [][]PathLink{{{A: s, B: ia(1, 9), ID: 1}}}
	if UnionFlow(p, s, d) != 0 {
		t.Error("dst absent from union must give 0")
	}
	if Resilience(p, s, d) != Capacity(p, s, d) {
		t.Error("Resilience and Capacity must agree (max-flow-min-cut)")
	}
}

func TestUnionFlowNeverExceedsOptimal(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 120
	p.Tier1 = 5
	g := topology.MustGenerate(p)
	core, err := topology.ExtractCore(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	pairs := SamplePairs(core, 10)
	for _, pr := range pairs {
		// Build a "path set" from up to 4 shortest paths.
		paths := KShortestPaths(core, pr[0], pr[1], 4, 6)
		var pls [][]PathLink
		for _, path := range paths {
			var pl []PathLink
			ok := true
			for i := 0; i+1 < len(path); i++ {
				links := core.LinksBetween(path[i], path[i+1])
				if len(links) == 0 {
					ok = false
					break
				}
				pl = append(pl, PathLink{A: path[i], B: path[i+1], ID: links[0].ID})
			}
			if ok {
				pls = append(pls, pl)
			}
		}
		got := UnionFlow(pls, pr[0], pr[1])
		opt := OptimalFlow(core, pr[0], pr[1])
		if got > opt {
			t.Errorf("pair %v: union flow %d exceeds optimum %d", pr, got, opt)
		}
	}
}

func TestMaxFlowConservationProperty(t *testing.T) {
	// Property: on a random bipartite-ish unit network, flow is bounded by
	// min(outdeg(s), indeg(t)).
	f := func(edges []uint8) bool {
		const n = 8
		net := NewFlowNetwork(n)
		outS, inT := 0, 0
		for i, e := range edges {
			u := int(e) % n
			v := (int(e) / n) % n
			if u == v {
				continue
			}
			net.AddEdge(u, v, 1+i%3)
			if u == 0 {
				outS += 1 + i%3
			}
			if v == n-1 {
				inT += 1 + i%3
			}
		}
		flow := net.MaxFlow(0, n-1)
		bound := outS
		if inT < bound {
			bound = inT
		}
		return flow <= bound && flow >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
