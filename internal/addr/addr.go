// Package addr defines SCION control-plane addressing: Isolation Domain
// (ISD) identifiers, 48-bit AS numbers, the combined ISD-AS (IA) tuple used
// for inter-domain routing, and the <ISD, AS, local address> host 3-tuple.
//
// SCION routing is based on the <ISD, AS> pair and is agnostic of local
// addressing: the local part never appears in inter-domain forwarding state
// and may be an IPv4, IPv6, or MAC address (paper §2.1).
package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// ISD is an Isolation Domain identifier. ISDs group ASes that agree on a
// common Trust Root Configuration; the zero value means "unspecified".
type ISD uint16

// AS is a SCION AS number. SCION inherits today's 32-bit BGP AS numbers and
// extends the namespace to 48 bits for SCION-only allocations (paper §2.1).
type AS uint64

// MaxAS is the largest representable SCION AS number (48 bits).
const MaxAS AS = (1 << 48) - 1

// MaxBGPAS is the largest AS number inherited from the current Internet.
const MaxBGPAS AS = (1 << 32) - 1

// Valid reports whether a fits in the 48-bit SCION AS number space.
func (a AS) Valid() bool { return a <= MaxAS }

// Inherited reports whether a lies in the 32-bit BGP-compatible range.
func (a AS) Inherited() bool { return a <= MaxBGPAS }

// String renders the AS number. BGP-inherited numbers print in decimal;
// SCION-allocated numbers print in the canonical colon-separated 16-bit
// hex-group notation (e.g. "ff00:0:110").
func (a AS) String() string {
	if a.Inherited() {
		return strconv.FormatUint(uint64(a), 10)
	}
	var buf [14]byte
	return string(a.appendFormat(buf[:0]))
}

func (a AS) appendFormat(b []byte) []byte {
	if a.Inherited() {
		return strconv.AppendUint(b, uint64(a), 10)
	}
	b = strconv.AppendUint(b, uint64(uint16(a>>32)), 16)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(uint16(a>>16)), 16)
	b = append(b, ':')
	return strconv.AppendUint(b, uint64(uint16(a)), 16)
}

// ParseAS parses either a decimal BGP AS number or the colon-separated
// SCION notation produced by AS.String.
func ParseAS(s string) (AS, error) {
	if !strings.Contains(s, ":") {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("addr: parsing AS %q: %w", s, err)
		}
		if AS(v) > MaxAS {
			return 0, fmt.Errorf("addr: AS %q exceeds 48-bit space", s)
		}
		return AS(v), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("addr: AS %q: want 3 hex groups", s)
	}
	var v uint64
	for _, p := range parts {
		g, err := strconv.ParseUint(p, 16, 16)
		if err != nil {
			return 0, fmt.Errorf("addr: parsing AS %q: %w", s, err)
		}
		v = v<<16 | g
	}
	return AS(v), nil
}

// IA is the <ISD, AS> tuple that identifies an AS globally. It is the unit
// of inter-domain routing in SCION.
type IA struct {
	ISD ISD
	AS  AS
}

// MustIA builds an IA and panics on an invalid AS number. It is intended
// for tests and static topology definitions.
func MustIA(isd ISD, as AS) IA {
	if !as.Valid() {
		panic(fmt.Sprintf("addr: invalid AS %d", uint64(as)))
	}
	return IA{ISD: isd, AS: as}
}

// IsZero reports whether ia is the zero (unspecified) IA.
func (ia IA) IsZero() bool { return ia.ISD == 0 && ia.AS == 0 }

// String renders the canonical "isd-as" notation. Hand-rolled rather
// than fmt-based: IA.String sits under beaconing's hop-key construction,
// where fmt's boxing tripled the allocation count.
func (ia IA) String() string {
	var buf [20]byte
	return string(ia.AppendFormat(buf[:0]))
}

// AppendFormat appends the canonical "isd-as" text to b.
func (ia IA) AppendFormat(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(ia.ISD), 10)
	b = append(b, '-')
	return ia.AS.appendFormat(b)
}

// ParseIA parses the canonical "isd-as" notation.
func ParseIA(s string) (IA, error) {
	isdStr, asStr, ok := strings.Cut(s, "-")
	if !ok {
		return IA{}, fmt.Errorf("addr: IA %q: want isd-as", s)
	}
	isd, err := strconv.ParseUint(isdStr, 10, 16)
	if err != nil {
		return IA{}, fmt.Errorf("addr: parsing ISD in %q: %w", s, err)
	}
	as, err := ParseAS(asStr)
	if err != nil {
		return IA{}, err
	}
	return IA{ISD: ISD(isd), AS: as}, nil
}

// Uint64 packs the IA into a single comparable 64-bit key:
// 16 bits of ISD followed by 48 bits of AS.
func (ia IA) Uint64() uint64 { return uint64(ia.ISD)<<48 | uint64(ia.AS) }

// IAFromUint64 is the inverse of IA.Uint64.
func IAFromUint64(v uint64) IA {
	return IA{ISD: ISD(v >> 48), AS: AS(v & uint64(MaxAS))}
}

// Less orders IAs by ISD, then AS. Useful for deterministic iteration.
func (ia IA) Less(o IA) bool { return ia.Uint64() < o.Uint64() }

// IfID identifies one end of an inter-domain link within an AS. Interface
// identifiers are AS-local; the pair (IA, IfID) is globally unique. A path
// segment is described at the granularity of these interfaces (paper §2.2).
type IfID uint16

func (i IfID) String() string { return strconv.FormatUint(uint64(i), 10) }

// HostAddrType enumerates the local address families a SCION host address
// can carry. The local address is opaque to inter-domain routing.
type HostAddrType uint8

const (
	HostNone HostAddrType = iota
	HostIPv4
	HostIPv6
	HostMAC
	HostService // anycast control-service address
)

func (t HostAddrType) String() string {
	switch t {
	case HostNone:
		return "none"
	case HostIPv4:
		return "ipv4"
	case HostIPv6:
		return "ipv6"
	case HostMAC:
		return "mac"
	case HostService:
		return "svc"
	}
	return fmt.Sprintf("hostaddrtype(%d)", uint8(t))
}

// Len returns the wire length in bytes of an address of type t.
func (t HostAddrType) Len() int {
	switch t {
	case HostIPv4:
		return 4
	case HostIPv6:
		return 16
	case HostMAC:
		return 6
	case HostService:
		return 2
	}
	return 0
}

// Host is the <ISD, AS, local address> 3-tuple identifying an endpoint.
type Host struct {
	IA    IA
	Type  HostAddrType
	Local []byte
}

// HostIP4 builds an IPv4 host address.
func HostIP4(ia IA, a, b, c, d byte) Host {
	return Host{IA: ia, Type: HostIPv4, Local: []byte{a, b, c, d}}
}

// HostSvc builds a service (anycast) address, used to reach control
// services such as the beacon or path server of an AS.
func HostSvc(ia IA, svc uint16) Host {
	return Host{IA: ia, Type: HostService, Local: []byte{byte(svc >> 8), byte(svc)}}
}

// Well-known service addresses.
const (
	SvcCS uint16 = 1 // control service (beacon + path server)
	SvcBR uint16 = 2 // border-router management endpoint
	SvcSG uint16 = 3 // SCION-IP gateway
)

func (h Host) String() string {
	switch h.Type {
	case HostIPv4:
		if len(h.Local) == 4 {
			return fmt.Sprintf("%s,%d.%d.%d.%d", h.IA, h.Local[0], h.Local[1], h.Local[2], h.Local[3])
		}
	case HostService:
		if len(h.Local) == 2 {
			return fmt.Sprintf("%s,svc:%d", h.IA, uint16(h.Local[0])<<8|uint16(h.Local[1]))
		}
	}
	return fmt.Sprintf("%s,%s:%x", h.IA, h.Type, h.Local)
}

// Equal reports address equality including the local part.
func (h Host) Equal(o Host) bool {
	if h.IA != o.IA || h.Type != o.Type || len(h.Local) != len(o.Local) {
		return false
	}
	for i := range h.Local {
		if h.Local[i] != o.Local[i] {
			return false
		}
	}
	return true
}
