package addr

import (
	"testing"
	"testing/quick"
)

func TestASString(t *testing.T) {
	cases := []struct {
		as   AS
		want string
	}{
		{0, "0"},
		{64512, "64512"},
		{MaxBGPAS, "4294967295"},
		{MaxBGPAS + 1, "1:0:0"},
		{0xff00_0000_0110, "ff00:0:110"},
		{MaxAS, "ffff:ffff:ffff"},
	}
	for _, c := range cases {
		if got := c.as.String(); got != c.want {
			t.Errorf("AS(%d).String() = %q, want %q", uint64(c.as), got, c.want)
		}
	}
}

func TestParseASRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		a := AS(v & uint64(MaxAS))
		got, err := ParseAS(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseASErrors(t *testing.T) {
	for _, s := range []string{"", "x", "1:2", "1:2:3:4", "1:zz:3", "281474976710656", "-5"} {
		if _, err := ParseAS(s); err == nil {
			t.Errorf("ParseAS(%q): want error", s)
		}
	}
}

func TestASRanges(t *testing.T) {
	if !AS(1).Inherited() || !AS(MaxBGPAS).Inherited() {
		t.Error("BGP-range ASes must report Inherited")
	}
	if AS(MaxBGPAS + 1).Inherited() {
		t.Error("48-bit AS must not report Inherited")
	}
	if !MaxAS.Valid() || (MaxAS + 1).Valid() {
		t.Error("Valid boundary wrong")
	}
}

func TestIAStringParse(t *testing.T) {
	ia := MustIA(7, 0xff00_0000_0110)
	if got := ia.String(); got != "7-ff00:0:110" {
		t.Fatalf("IA.String() = %q", got)
	}
	back, err := ParseIA(ia.String())
	if err != nil || back != ia {
		t.Fatalf("ParseIA round trip: %v, %v", back, err)
	}
	if _, err := ParseIA("nodash"); err == nil {
		t.Error("ParseIA without dash: want error")
	}
	if _, err := ParseIA("99999-1"); err == nil {
		t.Error("ParseIA with overflowing ISD: want error")
	}
	if _, err := ParseIA("1-zz:1:1:1"); err == nil {
		t.Error("ParseIA with bad AS: want error")
	}
}

func TestIAUint64RoundTrip(t *testing.T) {
	f := func(isd uint16, as uint64) bool {
		ia := IA{ISD: ISD(isd), AS: AS(as & uint64(MaxAS))}
		return IAFromUint64(ia.Uint64()) == ia
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIALess(t *testing.T) {
	a := MustIA(1, 5)
	b := MustIA(1, 6)
	c := MustIA(2, 0)
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("IA ordering broken")
	}
	if a.IsZero() {
		t.Error("non-zero IA reported zero")
	}
	if !(IA{}).IsZero() {
		t.Error("zero IA not reported zero")
	}
}

func TestMustIAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIA with invalid AS must panic")
		}
	}()
	MustIA(1, MaxAS+1)
}

func TestHostAddr(t *testing.T) {
	ia := MustIA(1, 64512)
	h := HostIP4(ia, 10, 0, 0, 1)
	if h.String() != "1-64512,10.0.0.1" {
		t.Errorf("HostIP4 string = %q", h.String())
	}
	s := HostSvc(ia, SvcCS)
	if s.String() != "1-64512,svc:1" {
		t.Errorf("HostSvc string = %q", s.String())
	}
	if !h.Equal(h) || h.Equal(s) {
		t.Error("Host equality broken")
	}
	h2 := HostIP4(ia, 10, 0, 0, 2)
	if h.Equal(h2) {
		t.Error("different locals must differ")
	}
}

func TestHostAddrTypeLen(t *testing.T) {
	cases := map[HostAddrType]int{
		HostNone: 0, HostIPv4: 4, HostIPv6: 16, HostMAC: 6, HostService: 2,
	}
	for typ, want := range cases {
		if got := typ.Len(); got != want {
			t.Errorf("%v.Len() = %d, want %d", typ, got, want)
		}
		if typ.String() == "" {
			t.Errorf("%d: empty String()", typ)
		}
	}
	if HostAddrType(200).Len() != 0 {
		t.Error("unknown type length must be 0")
	}
}
