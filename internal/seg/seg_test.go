package seg

import (
	"testing"
	"testing/quick"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

const hour = sim.Time(time.Hour)

func infra(t *testing.T) *trust.Infra {
	t.Helper()
	inf, err := trust.NewInfra(topology.Demo(), trust.Sized)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

// buildPCB extends a beacon A1 -> A3 -> A5 using the demo topology IAs.
func buildPCB(t *testing.T, inf *trust.Infra) *PCB {
	t.Helper()
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	a3 := addr.MustIA(1, 0xff00_0000_0103)
	a5 := addr.MustIA(1, 0xff00_0000_0105)

	p := NewPCB(a1, 7, 0, 6*hour)
	p1, err := p.Extend(inf.SignerFor(a1), a3, 0, 2, nil, 1472)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.Extend(inf.SignerFor(a3), a5, 1, 2, nil, 1472)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p2.Extend(inf.SignerFor(a5), addr.IA{}, 1, 0, []PeerEntry{
		{Peer: addr.MustIA(2, 0xff00_0000_0204), PeerIf: 9, LocalIf: 3},
	}, 1472)
	if err != nil {
		t.Fatal(err)
	}
	return p3
}

func TestExtendAndVerify(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	if p.NumHops() != 3 {
		t.Fatalf("hops = %d", p.NumHops())
	}
	if err := p.Verify(inf); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)

	mut := p.Clone()
	mut.ASEntries[1].Hop.ConsEgress = 99
	if err := mut.Verify(inf); err == nil {
		t.Error("interface tampering must fail verification")
	}

	mut2 := p.Clone()
	mut2.ASEntries = mut2.ASEntries[:2] // truncation: last remaining entry still valid prefix
	if err := mut2.Verify(inf); err != nil {
		t.Errorf("prefix must remain valid (beacons are extended, not sealed): %v", err)
	}

	mut3 := p.Clone()
	mut3.Info.Expiry += hour // origin-field tampering breaks every signature
	if err := mut3.Verify(inf); err == nil {
		t.Error("expiry tampering must fail verification")
	}

	mut4 := p.Clone()
	mut4.ASEntries[0].Peers = append(mut4.ASEntries[0].Peers, PeerEntry{Peer: addr.MustIA(3, 1)})
	if err := mut4.Verify(inf); err == nil {
		t.Error("peer-entry injection must fail verification")
	}
}

func TestExtendDoesNotMutateReceiver(t *testing.T) {
	inf := infra(t)
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	p := NewPCB(a1, 1, 0, 6*hour)
	p1, err := p.Extend(inf.SignerFor(a1), addr.MustIA(1, 2), 0, 2, nil, 1472)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHops() != 0 || p1.NumHops() != 1 {
		t.Error("Extend must be copy-on-write")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	b := p.Encode()
	if len(b) != p.WireLen() {
		t.Fatalf("WireLen = %d, encoded = %d", p.WireLen(), len(b))
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != p.String() || back.HopsKey() != p.HopsKey() {
		t.Errorf("round trip mismatch: %v vs %v", back, p)
	}
	if err := back.Verify(inf); err != nil {
		t.Errorf("decoded beacon failed verification: %v", err)
	}
	if back.ASEntries[2].Peers[0].Peer != p.ASEntries[2].Peers[0].Peer {
		t.Error("peer entries lost")
	}
}

func TestDecodeErrors(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	b := p.Encode()
	if _, err := Decode(b[:len(b)-5]); err == nil {
		t.Error("truncated input must fail")
	}
	if _, err := Decode(append(b, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input must fail (decodes zero entries but underflows header)")
	}
}

func TestWireLenMatchesEncodeProperty(t *testing.T) {
	inf := infra(t)
	f := func(nHops uint8, nPeers uint8) bool {
		hops := int(nHops%5) + 1
		peers := int(nPeers % 3)
		a1 := addr.MustIA(1, 0xff00_0000_0101)
		p := NewPCB(a1, 3, 0, 6*hour)
		signer := inf.SignerFor(a1)
		for i := 0; i < hops; i++ {
			var pe []PeerEntry
			for j := 0; j < peers; j++ {
				pe = append(pe, PeerEntry{Peer: addr.MustIA(2, addr.AS(j+1)), PeerIf: 1, LocalIf: 2})
			}
			var err error
			p, err = p.Extend(signer, a1, addr.IfID(i), addr.IfID(i+1), pe, 1400)
			if err != nil {
				return false
			}
		}
		return p.WireLen() == len(p.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTimestamps(t *testing.T) {
	a := addr.MustIA(1, 1)
	p := NewPCB(a, 0, 2*hour, 6*hour)
	if p.Expired(hour) || p.Expired(7*hour) {
		t.Error("expiry boundaries wrong")
	}
	if !p.Expired(8 * hour) {
		t.Error("must be expired at 8h")
	}
	if p.Age(5*hour) != 3*hour {
		t.Errorf("age = %v", p.Age(5*hour))
	}
	if p.Remaining(5*hour) != 3*hour {
		t.Errorf("remaining = %v", p.Remaining(5*hour))
	}
	if p.Remaining(9*hour) != 0 {
		t.Error("remaining after expiry must be 0")
	}
	if p.Lifetime() != 6*hour {
		t.Errorf("lifetime = %v", p.Lifetime())
	}
}

func TestLinksAndKeys(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	links := p.Links()
	if len(links) != 2 {
		t.Fatalf("links = %v", links)
	}
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	if links[0].IA != a1 || links[0].If != 2 {
		t.Errorf("first link = %v", links[0])
	}
	local := addr.MustIA(2, 0xff00_0000_0201)
	via := p.LinksVia(local, 7)
	if len(via) != 3 || via[2].If != 7 || via[2].IA != local {
		t.Errorf("LinksVia = %v", via)
	}
	if p.HopsKeyVia(7) == p.HopsKey() {
		t.Error("via key must differ")
	}
	// Same path, new initiation time: keys equal.
	p2 := buildPCB(t, inf)
	p2.Info.Timestamp += hour
	if p.HopsKey() != p2.HopsKey() {
		t.Error("HopsKey must be timestamp independent")
	}
}

func TestContainsASAndLeaf(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	a5 := addr.MustIA(1, 0xff00_0000_0105)
	if !p.ContainsAS(a1) || !p.ContainsAS(a5) {
		t.Error("ContainsAS missing on-path AS")
	}
	if p.ContainsAS(addr.MustIA(3, 1)) {
		t.Error("ContainsAS false positive")
	}
	if p.Leaf() != a5 {
		t.Errorf("leaf = %v", p.Leaf())
	}
	fresh := NewPCB(a1, 0, 0, hour)
	if fresh.Leaf() != a1 || !fresh.ContainsAS(a1) {
		t.Error("fresh beacon leaf/contains wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	c := p.Clone()
	c.ASEntries[0].Signature[0] ^= 0xff
	c.ASEntries[2].Peers[0].PeerIf = 42
	if p.ASEntries[0].Signature[0] == c.ASEntries[0].Signature[0] {
		t.Error("signature aliased")
	}
	if p.ASEntries[2].Peers[0].PeerIf == 42 {
		t.Error("peers aliased")
	}
}

func TestChainMACPropagation(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	// MACs must all differ (chained over distinct state).
	m0, m1, m2 := p.ASEntries[0].Hop.MAC, p.ASEntries[1].Hop.MAC, p.ASEntries[2].Hop.MAC
	if m0 == m1 || m1 == m2 || m0 == m2 {
		t.Error("hop MACs must be distinct along the chain")
	}
}

func TestDecodeNeverPanicsOnRandomInput(t *testing.T) {
	// Robustness: arbitrary bytes must produce an error or a valid PCB,
	// never a panic or an out-of-bounds read.
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		p, err := Decode(b)
		return err != nil || p != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMutatedEncodings(t *testing.T) {
	inf := infra(t)
	p := buildPCB(t, inf)
	b := p.Encode()
	// Flip every byte position once; Decode must never panic and the
	// result must either fail to parse or fail verification (except for
	// mutations inside signature bytes of the last entry, which parse but
	// then fail Verify; and a same-value flip cannot happen since we xor).
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xff
		dec, err := Decode(mut)
		if err != nil {
			continue
		}
		if err := dec.Verify(inf); err == nil {
			t.Fatalf("byte %d mutation survived decode+verify", i)
		}
	}
}
