package seg

import (
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// benchPCB builds a 3-hop signed PCB for the wire benchmarks.
func benchPCB(b *testing.B) *PCB {
	b.Helper()
	inf, err := trust.NewInfra(topology.Demo(), trust.Sized)
	if err != nil {
		b.Fatal(err)
	}
	a1 := addr.MustIA(1, 0xff00_0000_0101)
	a3 := addr.MustIA(1, 0xff00_0000_0103)
	a5 := addr.MustIA(1, 0xff00_0000_0105)
	p := NewPCB(a1, 7, 0, 6*hour)
	p1, err := p.Extend(inf.SignerFor(a1), a3, 0, 2, nil, 1472)
	if err != nil {
		b.Fatal(err)
	}
	p2, err := p1.Extend(inf.SignerFor(a3), a5, 1, 2, nil, 1472)
	if err != nil {
		b.Fatal(err)
	}
	return p2
}

// BenchmarkWire measures the Encode hot path: the buffer is pre-sized
// from WireLen, so the encode itself is a single allocation.
func BenchmarkWire(b *testing.B) {
	p := benchPCB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.Encode()) != p.WireLen() {
			b.Fatal("encode/WireLen mismatch")
		}
	}
}

// BenchmarkWireAppend measures AppendEncode with a reused buffer: the
// steady state is allocation-free.
func BenchmarkWireAppend(b *testing.B) {
	p := benchPCB(b)
	buf := make([]byte, 0, p.WireLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendEncode(buf[:0])
	}
	if len(buf) != p.WireLen() {
		b.Fatal("encode/WireLen mismatch")
	}
}

// TestEncodeAllocs pins the allocation ceiling of the wire hot path so a
// regression shows up as a test failure, not only as a benchmark drift:
// Encode allocates exactly its output buffer, and AppendEncode into a
// pre-sized buffer allocates nothing.
func TestEncodeAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	inf, err := trust.NewInfra(topology.Demo(), trust.Sized)
	if err != nil {
		t.Fatal(err)
	}
	p := buildPCB(t, inf)
	if n := testing.AllocsPerRun(100, func() { p.Encode() }); n > 1 {
		t.Errorf("Encode allocates %.1f times per call, want <= 1", n)
	}
	buf := make([]byte, 0, p.WireLen())
	if n := testing.AllocsPerRun(100, func() { buf = p.AppendEncode(buf[:0]) }); n > 0 {
		t.Errorf("AppendEncode into sized buffer allocates %.1f times per call, want 0", n)
	}
}
