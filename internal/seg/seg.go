// Package seg defines Path-segment Construction Beacons (PCBs) and the
// path segments they become. A PCB is initiated by a core AS and extended
// hop by hop: each AS appends an AS entry carrying its identity, the
// ingress and egress interface identifiers of the traversed inter-domain
// link, optional peering entries, an expiration, and a signature over the
// accumulated beacon (paper §2.2).
//
// Wire sizes are exact: every type has a WireLen that matches the length
// of its binary encoding, because the paper's scalability results are
// byte-level overhead comparisons (§5.2, ECDSA-384 signatures assumed).
package seg

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/trust"
)

// MACLen is the length of a hop field MAC (SCION uses 6 bytes).
const MACLen = 6

// HopField encodes which interfaces may be used to enter and leave an AS,
// protected by a MAC chained over the previous hop (packet-carried
// forwarding state, paper §2.3).
type HopField struct {
	ConsIngress addr.IfID // 0 at the origin core AS
	ConsEgress  addr.IfID // 0 at a terminating leaf entry
	ExpTime     uint8     // coarse relative expiration units
	MAC         [MACLen]byte
}

const hopFieldLen = 2 + 2 + 1 + MACLen

// PeerEntry advertises a peering link of the local AS so that up- and
// down-segments can be joined over it (valley-free peering shortcuts).
type PeerEntry struct {
	Peer    addr.IA
	PeerIf  addr.IfID // interface on the peer's side
	LocalIf addr.IfID // local interface to the peer
	HopMAC  [MACLen]byte
}

const peerEntryLen = 8 + 2 + 2 + MACLen

// ASEntry is one hop of a PCB.
type ASEntry struct {
	Local addr.IA
	// Next is the AS this entry's egress interface leads to; zero in a
	// terminated segment's last entry.
	Next      addr.IA
	Hop       HopField
	Peers     []PeerEntry
	MTU       uint16
	Signature []byte
}

func (e *ASEntry) wireLen() int {
	return 8 + 8 + hopFieldLen + 2 + 1 + len(e.Peers)*peerEntryLen + len(e.Signature)
}

// InfoField carries the PCB's identity and validity window.
type InfoField struct {
	SegID     uint16
	Origin    addr.IA
	Timestamp sim.Time // initiation time
	Expiry    sim.Time // expiration time set by the origin
}

const infoFieldLen = 2 + 8 + 8 + 8

// PCB is a path-segment construction beacon (and, once registered, a path
// segment — up- and down-segments are the same object read in opposite
// directions, paper §2.2).
//
// A PCB is immutable once built: Extend returns a new beacon. The cached
// hop key and link list exploit that; code that mutates ASEntries in
// place (tests only) must not rely on them afterwards.
type PCB struct {
	Info      InfoField
	ASEntries []ASEntry

	hopsKey string
	links   []LinkKey
}

// NewPCB initiates a beacon at a core AS with the given validity window.
func NewPCB(origin addr.IA, segID uint16, now sim.Time, lifetime sim.Time) *PCB {
	return &PCB{Info: InfoField{
		SegID:     segID,
		Origin:    origin,
		Timestamp: now,
		Expiry:    now + lifetime,
	}}
}

// Clone deep-copies the PCB so each neighbor propagation can extend its
// own copy.
func (p *PCB) Clone() *PCB {
	c := &PCB{Info: p.Info, ASEntries: make([]ASEntry, len(p.ASEntries)),
		hopsKey: p.hopsKey, links: p.links}
	copy(c.ASEntries, p.ASEntries)
	for i := range c.ASEntries {
		if p.ASEntries[i].Peers != nil {
			c.ASEntries[i].Peers = append([]PeerEntry(nil), p.ASEntries[i].Peers...)
		}
		if p.ASEntries[i].Signature != nil {
			c.ASEntries[i].Signature = append([]byte(nil), p.ASEntries[i].Signature...)
		}
	}
	return c
}

// WireLen is the exact encoded size in bytes.
func (p *PCB) WireLen() int {
	n := infoFieldLen + 1
	for i := range p.ASEntries {
		n += p.ASEntries[i].wireLen()
	}
	return n
}

// Encode serializes the PCB. The layout is fixed-width fields in
// big-endian order; Decode inverts it.
func (p *PCB) Encode() []byte {
	buf := make([]byte, 0, p.WireLen())
	var tmp [8]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	put16(p.Info.SegID)
	put64(p.Info.Origin.Uint64())
	put64(uint64(p.Info.Timestamp))
	put64(uint64(p.Info.Expiry))
	buf = append(buf, byte(len(p.ASEntries)))
	for i := range p.ASEntries {
		e := &p.ASEntries[i]
		put64(e.Local.Uint64())
		put64(e.Next.Uint64())
		put16(uint16(e.Hop.ConsIngress))
		put16(uint16(e.Hop.ConsEgress))
		buf = append(buf, e.Hop.ExpTime)
		buf = append(buf, e.Hop.MAC[:]...)
		put16(e.MTU)
		buf = append(buf, byte(len(e.Peers)))
		for _, pe := range e.Peers {
			put64(pe.Peer.Uint64())
			put16(uint16(pe.PeerIf))
			put16(uint16(pe.LocalIf))
			buf = append(buf, pe.HopMAC[:]...)
		}
		buf = append(buf, e.Signature...)
	}
	return buf
}

// Decode parses a PCB encoded by Encode. Signatures are assumed to be
// trust.SignatureLen bytes when present; entries written without a
// signature cannot be distinguished on the wire, so Decode requires every
// entry to be signed (which beaconing guarantees).
func Decode(b []byte) (*PCB, error) {
	r := &reader{b: b}
	p := &PCB{}
	p.Info.SegID = r.u16()
	p.Info.Origin = addr.IAFromUint64(r.u64())
	p.Info.Timestamp = sim.Time(r.u64())
	p.Info.Expiry = sim.Time(r.u64())
	n := int(r.u8())
	for i := 0; i < n; i++ {
		var e ASEntry
		e.Local = addr.IAFromUint64(r.u64())
		e.Next = addr.IAFromUint64(r.u64())
		e.Hop.ConsIngress = addr.IfID(r.u16())
		e.Hop.ConsEgress = addr.IfID(r.u16())
		e.Hop.ExpTime = r.u8()
		r.bytes(e.Hop.MAC[:])
		e.MTU = r.u16()
		np := int(r.u8())
		for j := 0; j < np; j++ {
			var pe PeerEntry
			pe.Peer = addr.IAFromUint64(r.u64())
			pe.PeerIf = addr.IfID(r.u16())
			pe.LocalIf = addr.IfID(r.u16())
			r.bytes(pe.HopMAC[:])
			e.Peers = append(e.Peers, pe)
		}
		e.Signature = make([]byte, trust.SignatureLen)
		r.bytes(e.Signature)
		p.ASEntries = append(p.ASEntries, e)
	}
	if r.err != nil {
		return nil, fmt.Errorf("seg: decoding PCB: %w", r.err)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("seg: decoding PCB: %d trailing bytes", len(b)-r.off)
	}
	return p, nil
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) bytes(dst []byte) {
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// signBody returns the byte string an AS entry's signature covers: the
// info field, all previous signed entries, and the new entry without its
// signature — so every hop authenticates the full upstream beacon.
func (p *PCB) signBody(e *ASEntry) []byte {
	tmp := &PCB{Info: p.Info, ASEntries: append(append([]ASEntry{}, p.ASEntries...), ASEntry{
		Local: e.Local, Next: e.Next, Hop: e.Hop, Peers: e.Peers, MTU: e.MTU,
	})}
	return tmp.Encode()
}

// Extend appends a signed AS entry and returns the extended beacon (the
// receiver is not modified). ingress is 0 when local is the origin.
func (p *PCB) Extend(signer trust.Signer, next addr.IA, ingress, egress addr.IfID, peers []PeerEntry, mtu uint16) (*PCB, error) {
	e := ASEntry{
		Local: signer.IA(),
		Next:  next,
		Hop:   HopField{ConsIngress: ingress, ConsEgress: egress, ExpTime: 63},
		Peers: peers,
		MTU:   mtu,
	}
	// The hop MAC chains over the previous hop's MAC and the interfaces.
	var prev [MACLen]byte
	if n := len(p.ASEntries); n > 0 {
		prev = p.ASEntries[n-1].Hop.MAC
	}
	e.Hop.MAC = chainMAC(prev, e.Local, ingress, egress)

	body := p.signBody(&e)
	sig, err := signer.Sign(body)
	if err != nil {
		return nil, fmt.Errorf("seg: extending PCB at %s: %w", signer.IA(), err)
	}
	e.Signature = sig
	out := p.Clone()
	out.ASEntries = append(out.ASEntries, e)
	out.hopsKey = ""
	out.links = nil
	return out, nil
}

// chainMAC derives a hop MAC deterministically; the dataplane package
// recomputes and checks it during forwarding.
func chainMAC(prev [MACLen]byte, ia addr.IA, in, out addr.IfID) [MACLen]byte {
	var buf [8 + MACLen + 4]byte
	binary.BigEndian.PutUint64(buf[:8], ia.Uint64())
	copy(buf[8:], prev[:])
	binary.BigEndian.PutUint16(buf[8+MACLen:], uint16(in))
	binary.BigEndian.PutUint16(buf[8+MACLen+2:], uint16(out))
	var mac [MACLen]byte
	// FNV-1a folded into 6 bytes: cheap, deterministic, collision-
	// resistant enough for simulation-scale integrity checks.
	var h uint64 = 14695981039346656037
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < MACLen; i++ {
		mac[i] = byte(h >> (8 * i))
	}
	return mac
}

// Verify checks all AS entry signatures against v.
func (p *PCB) Verify(v trust.Verifier) error {
	tmp := &PCB{Info: p.Info}
	for i := range p.ASEntries {
		e := p.ASEntries[i]
		body := tmp.signBody(&e)
		if err := v.Verify(e.Local, body, e.Signature); err != nil {
			return fmt.Errorf("seg: entry %d (%s): %w", i, e.Local, err)
		}
		tmp.ASEntries = append(tmp.ASEntries, e)
	}
	return nil
}

// Origin returns the initiating core AS.
func (p *PCB) Origin() addr.IA { return p.Info.Origin }

// Leaf returns the last AS on the beacon, or the origin for a fresh PCB.
func (p *PCB) Leaf() addr.IA {
	if len(p.ASEntries) == 0 {
		return p.Info.Origin
	}
	return p.ASEntries[len(p.ASEntries)-1].Local
}

// Expired reports whether the beacon is past its expiration at time now.
func (p *PCB) Expired(now sim.Time) bool { return now >= p.Info.Expiry }

// Age returns how long ago the beacon was initiated.
func (p *PCB) Age(now sim.Time) sim.Time { return now - p.Info.Timestamp }

// Remaining returns the remaining lifetime (zero if expired).
func (p *PCB) Remaining(now sim.Time) sim.Time {
	if p.Expired(now) {
		return 0
	}
	return p.Info.Expiry - now
}

// Lifetime returns the total validity window length.
func (p *PCB) Lifetime() sim.Time { return p.Info.Expiry - p.Info.Timestamp }

// LinkKey identifies one inter-domain link by its upstream endpoint
// (every interface belongs to exactly one link, so one side suffices).
// These keys are exactly the identifiers "already available in PCBs" that
// the diversity algorithm counts (paper §4.2).
type LinkKey struct {
	IA addr.IA
	If addr.IfID
}

func (k LinkKey) String() string { return fmt.Sprintf("%s#%s", k.IA, k.If) }

// Links returns the inter-domain links traversed by the beacon, upstream
// first, keyed by the upstream AS and its egress interface. Every entry
// with a non-zero egress contributes one link: in a beacon in flight the
// last entry's egress is the link the beacon was sent on (its far end is
// the receiving AS), while a terminated segment's last entry has egress 0
// and contributes none.
func (p *PCB) Links() []LinkKey {
	if p.links == nil {
		out := make([]LinkKey, 0, len(p.ASEntries))
		for i := range p.ASEntries {
			if eg := p.ASEntries[i].Hop.ConsEgress; eg != 0 {
				out = append(out, LinkKey{IA: p.ASEntries[i].Local, If: eg})
			}
		}
		p.links = out
	}
	return p.links
}

// LinksVia returns Links plus the prospective egress link if the beacon
// were propagated by AS local out of its interface egress — the path the
// diversity algorithm scores before dissemination (local has not yet
// appended its own AS entry).
func (p *PCB) LinksVia(local addr.IA, egress addr.IfID) []LinkKey {
	base := p.Links()
	out := make([]LinkKey, len(base)+1)
	copy(out, base)
	out[len(base)] = LinkKey{IA: local, If: egress}
	return out
}

// HopsKey is a canonical identity of the traversed path (origin plus the
// interface-level hop sequence), used to detect "the same path" across
// PCB re-initiations with newer timestamps.
func (p *PCB) HopsKey() string {
	if p.hopsKey == "" {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s", p.Info.Origin)
		for i := range p.ASEntries {
			e := &p.ASEntries[i]
			fmt.Fprintf(&sb, "|%s:%d:%d", e.Local, e.Hop.ConsIngress, e.Hop.ConsEgress)
		}
		p.hopsKey = sb.String()
	}
	return p.hopsKey
}

// HopsKeyVia is HopsKey extended by a prospective egress interface.
func (p *PCB) HopsKeyVia(egress addr.IfID) string {
	return p.HopsKey() + "|via:" + strconv.FormatUint(uint64(egress), 10)
}

// ContainsAS reports whether ia already appears on the beacon (loop
// prevention during propagation).
func (p *PCB) ContainsAS(ia addr.IA) bool {
	if p.Info.Origin == ia {
		return true
	}
	for i := range p.ASEntries {
		if p.ASEntries[i].Local == ia {
			return true
		}
	}
	return false
}

// IAs lists the ASes on the segment in beaconing order (origin first).
func (p *PCB) IAs() []addr.IA {
	out := make([]addr.IA, 0, len(p.ASEntries))
	for i := range p.ASEntries {
		out = append(out, p.ASEntries[i].Local)
	}
	return out
}

// NumHops returns the number of AS entries.
func (p *PCB) NumHops() int { return len(p.ASEntries) }

func (p *PCB) String() string {
	return fmt.Sprintf("PCB{%s seg=%d hops=%v}", p.Info.Origin, p.Info.SegID, p.IAs())
}
