// Package seg defines Path-segment Construction Beacons (PCBs) and the
// path segments they become. A PCB is initiated by a core AS and extended
// hop by hop: each AS appends an AS entry carrying its identity, the
// ingress and egress interface identifiers of the traversed inter-domain
// link, optional peering entries, an expiration, and a signature over the
// accumulated beacon (paper §2.2).
//
// Wire sizes are exact: every type has a WireLen that matches the length
// of its binary encoding, because the paper's scalability results are
// byte-level overhead comparisons (§5.2, ECDSA-384 signatures assumed).
package seg

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"scionmpr/internal/addr"
	"scionmpr/internal/sim"
	"scionmpr/internal/trust"
)

// MACLen is the length of a hop field MAC (SCION uses 6 bytes).
const MACLen = 6

// HopField encodes which interfaces may be used to enter and leave an AS,
// protected by a MAC chained over the previous hop (packet-carried
// forwarding state, paper §2.3).
type HopField struct {
	ConsIngress addr.IfID // 0 at the origin core AS
	ConsEgress  addr.IfID // 0 at a terminating leaf entry
	ExpTime     uint8     // coarse relative expiration units
	MAC         [MACLen]byte
}

const hopFieldLen = 2 + 2 + 1 + MACLen

// PeerEntry advertises a peering link of the local AS so that up- and
// down-segments can be joined over it (valley-free peering shortcuts).
type PeerEntry struct {
	Peer    addr.IA
	PeerIf  addr.IfID // interface on the peer's side
	LocalIf addr.IfID // local interface to the peer
	HopMAC  [MACLen]byte
}

const peerEntryLen = 8 + 2 + 2 + MACLen

// ASEntry is one hop of a PCB.
type ASEntry struct {
	Local addr.IA
	// Next is the AS this entry's egress interface leads to; zero in a
	// terminated segment's last entry.
	Next      addr.IA
	Hop       HopField
	Peers     []PeerEntry
	MTU       uint16
	Signature []byte
}

func (e *ASEntry) wireLen() int {
	return 8 + 8 + hopFieldLen + 2 + 1 + len(e.Peers)*peerEntryLen + len(e.Signature)
}

// InfoField carries the PCB's identity and validity window.
type InfoField struct {
	SegID     uint16
	Origin    addr.IA
	Timestamp sim.Time // initiation time
	Expiry    sim.Time // expiration time set by the origin
}

const infoFieldLen = 2 + 8 + 8 + 8

// PCB is a path-segment construction beacon (and, once registered, a path
// segment — up- and down-segments are the same object read in opposite
// directions, paper §2.2).
//
// A PCB is immutable once built: Extend returns a new beacon. The cached
// hop key and link list exploit that; code that mutates ASEntries in
// place (tests only) must not rely on them afterwards.
type PCB struct {
	Info      InfoField
	ASEntries []ASEntry

	hopsKey string
	links   []LinkKey
	// sigBuf is a recycled signature buffer carried by pooled carcasses
	// between Recycle and the next Extend (see Recycle).
	sigBuf []byte
}

// NewPCB initiates a beacon at a core AS with the given validity window.
func NewPCB(origin addr.IA, segID uint16, now sim.Time, lifetime sim.Time) *PCB {
	return &PCB{Info: InfoField{
		SegID:     segID,
		Origin:    origin,
		Timestamp: now,
		Expiry:    now + lifetime,
	}}
}

// Reinit re-initializes a zero-entry beacon in place for its next
// origination, preserving the origin and the cached origin hop key.
// Extensions copy the Info field by value, so re-initializing the base
// after extending it never perturbs the children. Origination servers
// reuse one base this way instead of allocating a fresh PCB per interval
// per link.
func (p *PCB) Reinit(segID uint16, now sim.Time, lifetime sim.Time) {
	if len(p.ASEntries) != 0 {
		panic("seg: Reinit of an extended PCB")
	}
	p.Info.SegID = segID
	p.Info.Timestamp = now
	p.Info.Expiry = now + lifetime
}

// Clone deep-copies the PCB so each neighbor propagation can extend its
// own copy.
func (p *PCB) Clone() *PCB {
	c := &PCB{Info: p.Info, ASEntries: make([]ASEntry, len(p.ASEntries)),
		hopsKey: p.hopsKey, links: p.links}
	copy(c.ASEntries, p.ASEntries)
	for i := range c.ASEntries {
		if p.ASEntries[i].Peers != nil {
			c.ASEntries[i].Peers = append([]PeerEntry(nil), p.ASEntries[i].Peers...)
		}
		if p.ASEntries[i].Signature != nil {
			c.ASEntries[i].Signature = append([]byte(nil), p.ASEntries[i].Signature...)
		}
	}
	return c
}

// WireLen is the exact encoded size in bytes.
func (p *PCB) WireLen() int {
	n := infoFieldLen + 1
	for i := range p.ASEntries {
		n += p.ASEntries[i].wireLen()
	}
	return n
}

// Encode serializes the PCB into an exactly WireLen-sized buffer. The
// layout is fixed-width fields in big-endian order; Decode inverts it.
func (p *PCB) Encode() []byte {
	return p.appendBody(make([]byte, 0, p.WireLen()), len(p.ASEntries), nil)
}

// AppendEncode appends the PCB's wire encoding to buf and returns the
// extended buffer, letting callers amortize encode allocations across
// many beacons (grow buf by WireLen up front).
func (p *PCB) AppendEncode(buf []byte) []byte {
	return p.appendBody(buf, len(p.ASEntries), nil)
}

// appendBody is the single encoder behind Encode, signature bodies, and
// Verify: it appends the info field, the first n AS entries with their
// signatures, and optionally one extra unsigned entry — which is exactly
// the byte string entry n's signature covers.
func (p *PCB) appendBody(buf []byte, n int, extra *ASEntry) []byte {
	buf = appendU16(buf, p.Info.SegID)
	buf = appendU64(buf, p.Info.Origin.Uint64())
	buf = appendU64(buf, uint64(p.Info.Timestamp))
	buf = appendU64(buf, uint64(p.Info.Expiry))
	count := n
	if extra != nil {
		count++
	}
	buf = append(buf, byte(count))
	for i := 0; i < n; i++ {
		buf = appendEntry(buf, &p.ASEntries[i], true)
	}
	if extra != nil {
		buf = appendEntry(buf, extra, false)
	}
	return buf
}

func appendEntry(buf []byte, e *ASEntry, withSig bool) []byte {
	buf = appendU64(buf, e.Local.Uint64())
	buf = appendU64(buf, e.Next.Uint64())
	buf = appendU16(buf, uint16(e.Hop.ConsIngress))
	buf = appendU16(buf, uint16(e.Hop.ConsEgress))
	buf = append(buf, e.Hop.ExpTime)
	buf = append(buf, e.Hop.MAC[:]...)
	buf = appendU16(buf, e.MTU)
	buf = append(buf, byte(len(e.Peers)))
	for i := range e.Peers {
		pe := &e.Peers[i]
		buf = appendU64(buf, pe.Peer.Uint64())
		buf = appendU16(buf, uint16(pe.PeerIf))
		buf = appendU16(buf, uint16(pe.LocalIf))
		buf = append(buf, pe.HopMAC[:]...)
	}
	if withSig {
		buf = append(buf, e.Signature...)
	}
	return buf
}

func appendU16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Decode parses a PCB encoded by Encode. Signatures are assumed to be
// trust.SignatureLen bytes when present; entries written without a
// signature cannot be distinguished on the wire, so Decode requires every
// entry to be signed (which beaconing guarantees).
func Decode(b []byte) (*PCB, error) {
	r := &reader{b: b}
	p := &PCB{}
	p.Info.SegID = r.u16()
	p.Info.Origin = addr.IAFromUint64(r.u64())
	p.Info.Timestamp = sim.Time(r.u64())
	p.Info.Expiry = sim.Time(r.u64())
	n := int(r.u8())
	for i := 0; i < n; i++ {
		var e ASEntry
		e.Local = addr.IAFromUint64(r.u64())
		e.Next = addr.IAFromUint64(r.u64())
		e.Hop.ConsIngress = addr.IfID(r.u16())
		e.Hop.ConsEgress = addr.IfID(r.u16())
		e.Hop.ExpTime = r.u8()
		r.bytes(e.Hop.MAC[:])
		e.MTU = r.u16()
		np := int(r.u8())
		for j := 0; j < np; j++ {
			var pe PeerEntry
			pe.Peer = addr.IAFromUint64(r.u64())
			pe.PeerIf = addr.IfID(r.u16())
			pe.LocalIf = addr.IfID(r.u16())
			r.bytes(pe.HopMAC[:])
			e.Peers = append(e.Peers, pe)
		}
		e.Signature = make([]byte, trust.SignatureLen)
		r.bytes(e.Signature)
		p.ASEntries = append(p.ASEntries, e)
	}
	if r.err != nil {
		return nil, fmt.Errorf("seg: decoding PCB: %w", r.err)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("seg: decoding PCB: %d trailing bytes", len(b)-r.off)
	}
	return p, nil
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) bytes(dst []byte) {
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// encBuf pools scratch buffers for signature bodies, which are built,
// hashed, and immediately discarded on the beaconing hot path.
var encBuf = sync.Pool{New: func() interface{} { return new([]byte) }}

// Extend appends a signed AS entry and returns the extended beacon (the
// receiver is not modified). ingress is 0 when local is the origin.
//
// The returned beacon shares the receiver's per-entry Peers and
// Signature slices — safe because a built PCB is immutable (see the type
// comment); use Clone for a fully independent copy.
func (p *PCB) Extend(signer trust.Signer, next addr.IA, ingress, egress addr.IfID, peers []PeerEntry, mtu uint16) (*PCB, error) {
	return p.extendInto(nil, signer, next, ingress, egress, peers, mtu)
}

// ExtendInterned is Extend with identity caches (hop key, link list)
// interned in it, and the result drawn from the extension pool. Steady-
// state beaconing re-extends the same stored paths every interval, so
// repeat extensions reuse one shared hop-key string and link slice
// instead of rebuilding them. Pair with Recycle for beacons that end up
// rejected. it may be nil (plain pooled extension).
func (p *PCB) ExtendInterned(it *Interner, signer trust.Signer, next addr.IA, ingress, egress addr.IfID, peers []PeerEntry, mtu uint16) (*PCB, error) {
	return p.extendInto(it, signer, next, ingress, egress, peers, mtu)
}

func (p *PCB) extendInto(it *Interner, signer trust.Signer, next addr.IA, ingress, egress addr.IfID, peers []PeerEntry, mtu uint16) (*PCB, error) {
	e := ASEntry{
		Local: signer.IA(),
		Next:  next,
		Hop:   HopField{ConsIngress: ingress, ConsEgress: egress, ExpTime: 63},
		Peers: peers,
		MTU:   mtu,
	}
	// The hop MAC chains over the previous hop's MAC and the interfaces.
	var prev [MACLen]byte
	if n := len(p.ASEntries); n > 0 {
		prev = p.ASEntries[n-1].Hop.MAC
	}
	e.Hop.MAC = chainMAC(prev, e.Local, ingress, egress)

	out, _ := pcbPool.Get().(*PCB)
	if out == nil {
		// Pool miss: stored beacons keep their carcasses, so misses are
		// the norm in steady state. Carve the struct from the server's
		// arena instead of allocating individually.
		if it != nil {
			out = it.newPCB()
		} else {
			out = new(PCB)
		}
	}
	sigSpace := out.sigBuf

	// The signature covers the info field, all previous signed entries,
	// and the new entry without its signature — so every hop
	// authenticates the full upstream beacon.
	bp := encBuf.Get().(*[]byte)
	body := p.appendBody((*bp)[:0], len(p.ASEntries), &e)
	var (
		sig []byte
		err error
	)
	if as, ok := signer.(trust.AppendSigner); ok {
		space := sigSpace
		if it != nil && cap(space) < trust.SignatureLen {
			// Stored beacons keep their carcasses, so recycled signature
			// buffers are scarce in steady state; carve fresh ones from
			// the server's slab instead of allocating individually.
			space = it.sigSpace()
		}
		sig, err = as.AppendSign(space[:0], body)
	} else {
		sig, err = signer.Sign(body)
	}
	*bp = body[:0]
	encBuf.Put(bp)
	if err != nil {
		out.sigBuf = sigSpace
		pcbPool.Put(out)
		return nil, fmt.Errorf("seg: extending PCB at %s: %w", signer.IA(), err)
	}
	e.Signature = sig

	n := len(p.ASEntries)
	es := out.ASEntries
	if cap(es) < n+1 {
		if it != nil {
			es = it.entrySpace(n + 1)
		} else {
			es = make([]ASEntry, n+1)
		}
	} else {
		es = es[:n+1]
	}
	copy(es, p.ASEntries)
	es[n] = e
	*out = PCB{Info: p.Info, ASEntries: es}

	// Fill the identity caches incrementally from the parent's: beacon
	// stores key every insertion by HopsKey, and recomputing it from
	// scratch for each extended copy dominated beaconing profiles.
	if it != nil {
		out.hopsKey, out.links = it.extend(p, &e)
		return out, nil
	}
	out.hopsKey = extendHopsKey(p.HopsKey(), &e)
	out.links = extendLinks(p, &e)
	return out, nil
}

// extendLinks derives the child's traversed-link list from the parent's
// cached one plus the new entry's egress.
func extendLinks(p *PCB, e *ASEntry) []LinkKey {
	base := p.Links()
	if e.Hop.ConsEgress != 0 {
		links := make([]LinkKey, len(base)+1)
		copy(links, base)
		links[len(base)] = LinkKey{IA: e.Local, If: e.Hop.ConsEgress}
		return links
	}
	if base != nil {
		return base // immutable once cached; safe to share
	}
	return []LinkKey{} // non-nil: mark the empty list as computed
}

// pcbPool recycles PCB carcasses (struct, AS-entry backing array,
// signature buffer) through originate → extend → propagate. Only beacons
// that provably left no references behind are returned to it (see
// Recycle); everything drawn from it is fully overwritten by extendInto.
// No New func: extendInto handles misses itself (arena when interning).
var pcbPool sync.Pool

// Recycle returns a beacon to the extension pool. The caller must own
// the only reference: the beacon was extended locally (or received) and
// then dropped without ever being stored, cloned, or shared. Stored
// beacons must never be recycled — children created by Extend share
// their Peers and Signature slices, and selector caches key on the PCB
// pointer.
func Recycle(p *PCB) {
	if p == nil {
		return
	}
	var sig []byte
	if n := len(p.ASEntries); n > 0 {
		// The final entry's signature was allocated by this beacon's own
		// extension and dies with it; keep the buffer for the next one.
		sig = p.ASEntries[n-1].Signature[:0]
	}
	es := p.ASEntries[:cap(p.ASEntries)]
	for i := range es {
		es[i] = ASEntry{} // drop Peers/Signature references shared with ancestors
	}
	*p = PCB{ASEntries: es[:0], sigBuf: sig}
	pcbPool.Put(p)
}

// Interner dedups the identity caches Extend computes — the canonical
// hop-key string and traversed-link slice — across repeated extensions
// of the same (parent path, hop) combination. One interner belongs to
// one beacon server (one simulator actor); it must not be shared across
// parallel shards.
type Interner struct {
	m map[internKey]internVal
	// sigSlab is the signature arena: stored beacons hold their signature
	// buffers for as long as they live, so extensions carve 96-byte slots
	// out of chunked slabs (one allocation per 64 signatures) rather than
	// allocating each individually. pcbSlab and entrySlab arena the PCB
	// structs and AS-entry arrays the same way.
	sigSlab   []byte
	pcbSlab   []PCB
	entrySlab []ASEntry
}

// newPCB carves one PCB struct from the arena.
func (it *Interner) newPCB() *PCB {
	if len(it.pcbSlab) == 0 {
		it.pcbSlab = make([]PCB, 64)
	}
	p := &it.pcbSlab[0]
	it.pcbSlab = it.pcbSlab[1:]
	return p
}

// entrySpace carves an n-entry AS-entry array from the arena. The
// three-index slice caps it so later appends can never spill into a
// neighboring beacon's entries.
func (it *Interner) entrySpace(n int) []ASEntry {
	if cap(it.entrySlab)-len(it.entrySlab) < n {
		c := 256
		if n > c {
			c = n
		}
		it.entrySlab = make([]ASEntry, 0, c)
	}
	off := len(it.entrySlab)
	it.entrySlab = it.entrySlab[:off+n]
	return it.entrySlab[off : off+n : off+n]
}

// sigSpace carves one signature-sized slot from the slab. The three-index
// slice caps the slot so appends can never spill into a neighbor.
func (it *Interner) sigSpace() []byte {
	const chunk = 64 * trust.SignatureLen
	if cap(it.sigSlab)-len(it.sigSlab) < trust.SignatureLen {
		it.sigSlab = make([]byte, 0, chunk)
	}
	off := len(it.sigSlab)
	it.sigSlab = it.sigSlab[:off+trust.SignatureLen]
	return it.sigSlab[off:off:off+trust.SignatureLen]
}

// internerCap bounds retained entries; topologies with heavy path churn
// reset the table wholesale instead of growing without bound.
const internerCap = 1 << 16

type internKey struct {
	parent  string // parent beacon's hop key
	local   addr.IA
	ingress addr.IfID
	egress  addr.IfID
}

type internVal struct {
	hopsKey string
	links   []LinkKey
}

// extend returns the interned identity caches for extending p by e,
// computing and retaining them on first use.
func (it *Interner) extend(p *PCB, e *ASEntry) (string, []LinkKey) {
	k := internKey{parent: p.HopsKey(), local: e.Local, ingress: e.Hop.ConsIngress, egress: e.Hop.ConsEgress}
	if v, ok := it.m[k]; ok {
		return v.hopsKey, v.links
	}
	v := internVal{hopsKey: extendHopsKey(k.parent, e), links: extendLinks(p, e)}
	if it.m == nil || len(it.m) >= internerCap {
		it.m = make(map[internKey]internVal, 256)
	}
	it.m[k] = v
	return v.hopsKey, v.links
}

// extendHopsKey appends one hop to a parent's canonical hop key,
// producing exactly what HopsKey would compute from scratch.
func extendHopsKey(parent string, e *ASEntry) string {
	var sb strings.Builder
	sb.Grow(len(parent) + 24)
	sb.WriteString(parent)
	sb.WriteByte('|')
	sb.WriteString(e.Local.String())
	sb.WriteByte(':')
	sb.WriteString(strconv.FormatUint(uint64(e.Hop.ConsIngress), 10))
	sb.WriteByte(':')
	sb.WriteString(strconv.FormatUint(uint64(e.Hop.ConsEgress), 10))
	return sb.String()
}

// chainMAC derives a hop MAC deterministically; the dataplane package
// recomputes and checks it during forwarding.
func chainMAC(prev [MACLen]byte, ia addr.IA, in, out addr.IfID) [MACLen]byte {
	var buf [8 + MACLen + 4]byte
	binary.BigEndian.PutUint64(buf[:8], ia.Uint64())
	copy(buf[8:], prev[:])
	binary.BigEndian.PutUint16(buf[8+MACLen:], uint16(in))
	binary.BigEndian.PutUint16(buf[8+MACLen+2:], uint16(out))
	var mac [MACLen]byte
	// FNV-1a folded into 6 bytes: cheap, deterministic, collision-
	// resistant enough for simulation-scale integrity checks.
	var h uint64 = 14695981039346656037
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < MACLen; i++ {
		mac[i] = byte(h >> (8 * i))
	}
	return mac
}

// Verify checks all AS entry signatures against v.
func (p *PCB) Verify(v trust.Verifier) error {
	bp := encBuf.Get().(*[]byte)
	buf := *bp
	defer func() {
		*bp = buf[:0]
		encBuf.Put(bp)
	}()
	for i := range p.ASEntries {
		e := &p.ASEntries[i]
		buf = p.appendBody(buf[:0], i, e)
		if err := v.Verify(e.Local, buf, e.Signature); err != nil {
			return fmt.Errorf("seg: entry %d (%s): %w", i, e.Local, err)
		}
	}
	return nil
}

// Origin returns the initiating core AS.
func (p *PCB) Origin() addr.IA { return p.Info.Origin }

// Leaf returns the last AS on the beacon, or the origin for a fresh PCB.
func (p *PCB) Leaf() addr.IA {
	if len(p.ASEntries) == 0 {
		return p.Info.Origin
	}
	return p.ASEntries[len(p.ASEntries)-1].Local
}

// Expired reports whether the beacon is past its expiration at time now.
func (p *PCB) Expired(now sim.Time) bool { return now >= p.Info.Expiry }

// Age returns how long ago the beacon was initiated.
func (p *PCB) Age(now sim.Time) sim.Time { return now - p.Info.Timestamp }

// Remaining returns the remaining lifetime (zero if expired).
func (p *PCB) Remaining(now sim.Time) sim.Time {
	if p.Expired(now) {
		return 0
	}
	return p.Info.Expiry - now
}

// Lifetime returns the total validity window length.
func (p *PCB) Lifetime() sim.Time { return p.Info.Expiry - p.Info.Timestamp }

// LinkKey identifies one inter-domain link by its upstream endpoint
// (every interface belongs to exactly one link, so one side suffices).
// These keys are exactly the identifiers "already available in PCBs" that
// the diversity algorithm counts (paper §4.2).
type LinkKey struct {
	IA addr.IA
	If addr.IfID
}

func (k LinkKey) String() string { return fmt.Sprintf("%s#%s", k.IA, k.If) }

// Links returns the inter-domain links traversed by the beacon, upstream
// first, keyed by the upstream AS and its egress interface. Every entry
// with a non-zero egress contributes one link: in a beacon in flight the
// last entry's egress is the link the beacon was sent on (its far end is
// the receiving AS), while a terminated segment's last entry has egress 0
// and contributes none.
func (p *PCB) Links() []LinkKey {
	if p.links == nil {
		out := make([]LinkKey, 0, len(p.ASEntries))
		for i := range p.ASEntries {
			if eg := p.ASEntries[i].Hop.ConsEgress; eg != 0 {
				out = append(out, LinkKey{IA: p.ASEntries[i].Local, If: eg})
			}
		}
		p.links = out
	}
	return p.links
}

// LinksVia returns Links plus the prospective egress link if the beacon
// were propagated by AS local out of its interface egress — the path the
// diversity algorithm scores before dissemination (local has not yet
// appended its own AS entry).
func (p *PCB) LinksVia(local addr.IA, egress addr.IfID) []LinkKey {
	base := p.Links()
	out := make([]LinkKey, len(base)+1)
	copy(out, base)
	out[len(base)] = LinkKey{IA: local, If: egress}
	return out
}

// HopsKey is a canonical identity of the traversed path (origin plus the
// interface-level hop sequence), used to detect "the same path" across
// PCB re-initiations with newer timestamps.
func (p *PCB) HopsKey() string {
	if p.hopsKey == "" {
		var sb strings.Builder
		sb.Grow(16 + len(p.ASEntries)*24)
		sb.WriteString(p.Info.Origin.String())
		for i := range p.ASEntries {
			e := &p.ASEntries[i]
			sb.WriteByte('|')
			sb.WriteString(e.Local.String())
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatUint(uint64(e.Hop.ConsIngress), 10))
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatUint(uint64(e.Hop.ConsEgress), 10))
		}
		p.hopsKey = sb.String()
	}
	return p.hopsKey
}

// HopsKeyVia is HopsKey extended by a prospective egress interface.
func (p *PCB) HopsKeyVia(egress addr.IfID) string {
	return p.HopsKey() + "|via:" + strconv.FormatUint(uint64(egress), 10)
}

// ContainsAS reports whether ia already appears on the beacon (loop
// prevention during propagation).
func (p *PCB) ContainsAS(ia addr.IA) bool {
	if p.Info.Origin == ia {
		return true
	}
	for i := range p.ASEntries {
		if p.ASEntries[i].Local == ia {
			return true
		}
	}
	return false
}

// IAs lists the ASes on the segment in beaconing order (origin first).
func (p *PCB) IAs() []addr.IA {
	out := make([]addr.IA, 0, len(p.ASEntries))
	for i := range p.ASEntries {
		out = append(out, p.ASEntries[i].Local)
	}
	return out
}

// NumHops returns the number of AS entries.
func (p *PCB) NumHops() int { return len(p.ASEntries) }

func (p *PCB) String() string {
	return fmt.Sprintf("PCB{%s seg=%d hops=%v}", p.Info.Origin, p.Info.SegID, p.IAs())
}
