package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEventJSONLGolden(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{Time: 1000, Kind: BeaconOriginated, Actor: 7, Subject: 2, Aux: 9},
			`{"t":1000,"kind":"beacon_originated","actor":7,"subject":2,"aux":9}` + "\n",
		},
		{
			Event{Time: -5, Kind: BeaconFiltered, Actor: 1, Reason: "loop"},
			`{"t":-5,"kind":"beacon_filtered","actor":1,"subject":0,"aux":0,"reason":"loop"}` + "\n",
		},
		{
			Event{Kind: FaultApplied, Reason: "a\"b\\c\nd"},
			`{"t":0,"kind":"fault_applied","actor":0,"subject":0,"aux":0,"reason":"a\"b\\c\nd"}` + "\n",
		},
	}
	for _, c := range cases {
		got := string(c.ev.AppendJSONL(nil))
		if got != c.want {
			t.Errorf("AppendJSONL(%+v) = %q, want %q", c.ev, got, c.want)
		}
		// Each line must be valid JSON by the stdlib's definition.
		var m map[string]any
		if err := json.Unmarshal([]byte(got), &m); err != nil {
			t.Errorf("invalid JSON %q: %v", got, err)
		}
		// And decode back to the original event.
		dec, err := DecodeEvent([]byte(got))
		if err != nil {
			t.Errorf("DecodeEvent(%q): %v", got, err)
		} else if dec != c.ev {
			t.Errorf("round trip %+v != %+v", dec, c.ev)
		}
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"{}",
		`{"t":1}`,
		`{"t":x,"kind":"beacon_originated","actor":0,"subject":0,"aux":0}`,
		`{"t":1,"kind":"nope","actor":0,"subject":0,"aux":0}`,
		`{"t":1,"kind":"beacon_originated","actor":0,"subject":0,"aux":0}trailing`,
		`{"t":1,"kind":"beacon_originated","actor":0,"subject":0,"aux":0,"reason":"unterminated}`,
	}
	for _, line := range bad {
		if _, err := DecodeEvent([]byte(line)); err == nil {
			t.Errorf("DecodeEvent(%q) accepted garbage", line)
		}
	}
}

func TestDecodeEventEscapes(t *testing.T) {
	// The strict decoder accepts any valid JSON escape in strings, even
	// ones our encoder never produces.
	line := `{"t":1,"kind":"beacon_originated","actor":0,"subject":0,"aux":0,"reason":"A\/\b\fé😀"}`
	ev, err := DecodeEvent([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if want := "A/\b\fé😀"; ev.Reason != want {
		t.Fatalf("reason = %q, want %q", ev.Reason, want)
	}
	// Lone surrogates decode to U+FFFD, matching encoding/json.
	line = `{"t":1,"kind":"beacon_originated","actor":0,"subject":0,"aux":0,"reason":"\ud800x"}`
	ev, err = DecodeEvent([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if want := "�x"; ev.Reason != want {
		t.Fatalf("lone surrogate reason = %q, want %q", ev.Reason, want)
	}
}

func TestAppendJSONStringInvalidUTF8(t *testing.T) {
	got := string(appendJSONString(nil, "a\xffb"))
	var s string
	if err := json.Unmarshal([]byte(got), &s); err != nil {
		t.Fatalf("invalid JSON %q: %v", got, err)
	}
	if s != "a�b" {
		t.Fatalf("decoded %q, want replacement char", s)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Time: int64(i), Kind: FlowRetry})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Time != want {
			t.Fatalf("event %d has time %d, want %d (oldest-first order)", i, ev.Time, want)
		}
	}
	if tr.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped)
	}
}

func TestTracerOnly(t *testing.T) {
	tr := NewTracer(8).Only(FaultApplied, FaultHealed)
	tr.Emit(Event{Kind: BeaconOriginated})
	tr.Emit(Event{Kind: FaultApplied})
	tr.Emit(Event{Kind: FlowSwitch})
	tr.Emit(Event{Kind: FaultHealed})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != FaultApplied || evs[1].Kind != FaultHealed {
		t.Fatalf("filtered events = %+v", evs)
	}
	if tr.Dropped != 0 {
		t.Fatalf("masked events must not count as dropped, got %d", tr.Dropped)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: BeaconOriginated})
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer events = %v", evs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer WriteJSONL = %q, %v", buf.String(), err)
	}
	if tr.Only(FaultApplied) != nil {
		t.Fatal("nil tracer Only must stay nil")
	}
}

func TestTracerWriteFormats(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Time: 10, Kind: PathRevoked, Actor: 1, Subject: 2, Aux: 3, Reason: "soft"})
	var jl, txt bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if want := `{"t":10,"kind":"path_revoked","actor":1,"subject":2,"aux":3,"reason":"soft"}` + "\n"; jl.String() != want {
		t.Fatalf("JSONL = %q, want %q", jl.String(), want)
	}
	if want := "10 path_revoked actor=1 subject=2 aux=3 reason=soft\n"; txt.String() != want {
		t.Fatalf("text = %q, want %q", txt.String(), want)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if kindByName[name] != k {
			t.Fatalf("kindByName[%q] = %v, want %v", name, kindByName[name], k)
		}
	}
}

// FuzzTraceDecode checks the decoder never panics and that every line it
// accepts round-trips: decode → encode → decode must reproduce the same
// event and the same bytes.
func FuzzTraceDecode(f *testing.F) {
	seed := [][]byte{
		Event{Time: 1, Kind: BeaconOriginated, Actor: 2, Subject: 3, Aux: 4}.AppendJSONL(nil),
		Event{Time: -9, Kind: BeaconFiltered, Reason: "loop"}.AppendJSONL(nil),
		Event{Kind: FaultApplied, Reason: "a\"\\\n\t\x01é😀"}.AppendJSONL(nil),
		[]byte(`{"t":1,"kind":"flow_retry","actor":0,"subject":0,"aux":0,"reason":"😀"}`),
		[]byte(`{"t":0,"kind":"x","actor":0,"subject":0,"aux":0}`),
		[]byte("{}"),
		[]byte(""),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := DecodeEvent(line)
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		enc := ev.AppendJSONL(nil)
		ev2, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("re-decode of %q (from %q): %v", enc, line, err)
		}
		if ev2 != ev {
			t.Fatalf("round trip mismatch: %+v != %+v (line %q)", ev2, ev, line)
		}
		if enc2 := ev2.AppendJSONL(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical: %q != %q", enc, enc2)
		}
	})
}
