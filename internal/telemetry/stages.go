package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// Stages times named sequential phases of a run, recording wall-clock
// duration, allocation delta, and GC pressure per stage. It replaces
// ad-hoc time.Now() stage prints in the experiment drivers. Measurements
// are wall-clock — inherently nondeterministic — so when a Registry is
// attached they are recorded as volatile gauges, excluded from the
// deterministic snapshot. A nil *Stages is a no-op.
type Stages struct {
	reg   *Registry
	out   io.Writer // optional live log (e.g. os.Stderr); may be nil
	label string    // log line prefix, e.g. "fig5"

	last    time.Time
	lastMem runtime.MemStats
	Stages  []Stage
}

// Stage is one completed measurement.
type Stage struct {
	Name  string
	Wall  time.Duration
	Alloc uint64 // bytes allocated during the stage (monotonic TotalAlloc delta)
	// GC/heap pressure sampled from runtime.MemStats at stage end — the
	// scaling runs watch these to catch stages whose live heap or pause
	// budget grows faster than the topology.
	HeapAlloc  uint64        // live heap bytes at stage end
	NumGC      uint32        // GC cycles completed during the stage
	PauseTotal time.Duration // stop-the-world pause time accrued during the stage
}

// NewStages starts a stage clock. reg and out may each be nil.
func NewStages(reg *Registry, out io.Writer, label string) *Stages {
	s := &Stages{reg: reg, out: out, label: label}
	s.last = time.Now()
	runtime.ReadMemStats(&s.lastMem)
	return s
}

// Done closes the current stage under the given name and starts the
// next one.
func (s *Stages) Done(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := Stage{
		Name:       name,
		Wall:       now.Sub(s.last),
		Alloc:      ms.TotalAlloc - s.lastMem.TotalAlloc,
		HeapAlloc:  ms.HeapAlloc,
		NumGC:      ms.NumGC - s.lastMem.NumGC,
		PauseTotal: time.Duration(ms.PauseTotalNs - s.lastMem.PauseTotalNs),
	}
	s.last, s.lastMem = now, ms
	s.Stages = append(s.Stages, st)
	if s.reg != nil {
		s.reg.VolatileGauge(fmt.Sprintf("stage_wall_seconds{stage=%q}", name)).Set(st.Wall.Seconds())
		s.reg.VolatileGauge(fmt.Sprintf("stage_alloc_bytes{stage=%q}", name)).Set(float64(st.Alloc))
		s.reg.VolatileGauge(fmt.Sprintf("stage_heap_alloc_bytes{stage=%q}", name)).Set(float64(st.HeapAlloc))
		s.reg.VolatileGauge(fmt.Sprintf("stage_gc_cycles{stage=%q}", name)).Set(float64(st.NumGC))
		s.reg.VolatileGauge(fmt.Sprintf("stage_gc_pause_seconds{stage=%q}", name)).Set(st.PauseTotal.Seconds())
	}
	if s.out != nil {
		fmt.Fprintf(s.out, "[%s] %-14s %v (%.1f MB alloc, %.1f MB heap, %d GCs, %v pause)\n",
			s.label, name, st.Wall.Round(time.Millisecond),
			float64(st.Alloc)/(1<<20), float64(st.HeapAlloc)/(1<<20),
			st.NumGC, st.PauseTotal.Round(time.Microsecond))
	}
}
