package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// Stages times named sequential phases of a run, recording wall-clock
// duration and allocation delta per stage. It replaces ad-hoc
// time.Now() stage prints in the experiment drivers. Measurements are
// wall-clock — inherently nondeterministic — so when a Registry is
// attached they are recorded as volatile gauges, excluded from the
// deterministic snapshot. A nil *Stages is a no-op.
type Stages struct {
	reg   *Registry
	out   io.Writer // optional live log (e.g. os.Stderr); may be nil
	label string    // log line prefix, e.g. "fig5"

	last      time.Time
	lastAlloc uint64
	Stages    []Stage
}

// Stage is one completed measurement.
type Stage struct {
	Name  string
	Wall  time.Duration
	Alloc uint64 // bytes allocated during the stage (monotonic TotalAlloc delta)
}

// NewStages starts a stage clock. reg and out may each be nil.
func NewStages(reg *Registry, out io.Writer, label string) *Stages {
	s := &Stages{reg: reg, out: out, label: label}
	s.last = time.Now()
	s.lastAlloc = totalAlloc()
	return s
}

func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Done closes the current stage under the given name and starts the
// next one.
func (s *Stages) Done(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	alloc := totalAlloc()
	st := Stage{Name: name, Wall: now.Sub(s.last), Alloc: alloc - s.lastAlloc}
	s.last, s.lastAlloc = now, alloc
	s.Stages = append(s.Stages, st)
	if s.reg != nil {
		s.reg.VolatileGauge(fmt.Sprintf("stage_wall_seconds{stage=%q}", name)).Set(st.Wall.Seconds())
		s.reg.VolatileGauge(fmt.Sprintf("stage_alloc_bytes{stage=%q}", name)).Set(float64(st.Alloc))
	}
	if s.out != nil {
		fmt.Fprintf(s.out, "[%s] %-14s %v (%.1f MB alloc)\n",
			s.label, name, st.Wall.Round(time.Millisecond), float64(st.Alloc)/(1<<20))
	}
}
