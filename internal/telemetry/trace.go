package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// Beaconing.
	BeaconOriginated EventKind = iota
	BeaconPropagated
	BeaconFiltered // Reason: verify | loop | policy | store | down
	// Path registration lifecycle.
	PathRegistered
	PathRevoked
	PathReinstated
	// Flow-level traffic.
	FlowRetry
	FlowSwitch
	// Chaos faults. Reason carries the fault kind (flap | gray | ...).
	FaultApplied
	FaultHealed
	// Path-serving layer: one immutable shard snapshot published (Actor:
	// shard, Subject: epoch, Aux: pair count; Reason: publish | revoke |
	// reinstate).
	SnapshotPublished
	// Replicated path-server fleet. ReplicaCrashed marks a replica
	// process death (Actor: replica id); ReplicaRecovered marks a
	// WAL-driven restart (Actor: replica id, Subject: replayed records,
	// Aux: recovery lag in virtual ns). WALCheckpoint marks a snapshot
	// checkpoint compaction (Actor: replica id, Subject: WAL bytes after
	// compaction, Aux: records journaled since the last checkpoint).
	// AntiEntropyPull marks one replica pulling divergent shards from
	// the sweep leader (Actor: puller id, Subject: leader id, Aux:
	// shards pulled).
	ReplicaCrashed
	ReplicaRecovered
	WALCheckpoint
	AntiEntropyPull

	numEventKinds
)

var kindNames = [numEventKinds]string{
	"beacon_originated",
	"beacon_propagated",
	"beacon_filtered",
	"path_registered",
	"path_revoked",
	"path_reinstated",
	"flow_retry",
	"flow_switch",
	"fault_applied",
	"fault_healed",
	"snapshot_published",
	"replica_crashed",
	"replica_recovered",
	"wal_checkpoint",
	"antientropy_pull",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// kindByName is the inverse of kindNames, built at init.
var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, len(kindNames))
	for i, n := range kindNames {
		m[n] = EventKind(i)
	}
	return m
}()

// Event is one structured trace record. Time is virtual simulation time
// (sim.Time, nanoseconds); Actor is the acting entity (an AS in
// uint64 IA encoding, or a flow ID); Subject is the object acted on
// (neighbor AS, interface ID, link hash — kind-dependent); Aux is a
// kind-dependent extra (hop count, segment count, retry number); Reason
// is a short static string (rejection reason, fault kind) or "".
type Event struct {
	Time    int64
	Kind    EventKind
	Actor   uint64
	Subject uint64
	Aux     uint64
	Reason  string
}

// appendJSONString appends s as a JSON string literal (including the
// quotes). Unlike strconv.AppendQuote it emits only escapes valid in
// JSON (\uXXXX, never \x).
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"' || b == '\\':
				dst = append(dst, '\\', b)
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			case b < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hex[b>>4], hex[b&0xf])
			default:
				dst = append(dst, b)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 byte: escape as replacement character so the
			// output stays valid JSON (round-trips as U+FFFD).
			dst = append(dst, `�`...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// AppendJSONL appends the event's single-line JSON encoding (with
// trailing newline). The field order and formatting are fixed, so equal
// events encode to equal bytes.
func (e Event) AppendJSONL(dst []byte) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, e.Time, 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, e.Kind.String())
	dst = append(dst, `,"actor":`...)
	dst = strconv.AppendUint(dst, e.Actor, 10)
	dst = append(dst, `,"subject":`...)
	dst = strconv.AppendUint(dst, e.Subject, 10)
	dst = append(dst, `,"aux":`...)
	dst = strconv.AppendUint(dst, e.Aux, 10)
	if e.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, e.Reason)
	}
	return append(dst, '}', '\n')
}

// Text returns a human-oriented one-line rendering.
func (e Event) Text() string {
	s := fmt.Sprintf("%d %s actor=%d subject=%d aux=%d", e.Time, e.Kind, e.Actor, e.Subject, e.Aux)
	if e.Reason != "" {
		s += " reason=" + e.Reason
	}
	return s
}

// DecodeEvent parses one JSONL line produced by AppendJSONL (trailing
// newline optional). It is a strict parser for the fixed encoding — the
// fields must appear in encoding order — but accepts any valid JSON
// string escapes in the kind and reason values.
func DecodeEvent(line []byte) (Event, error) {
	var e Event
	p := &lineParser{buf: line}
	p.lit(`{"t":`)
	e.Time = p.int()
	p.lit(`,"kind":`)
	kind := p.str()
	p.lit(`,"actor":`)
	e.Actor = p.uint()
	p.lit(`,"subject":`)
	e.Subject = p.uint()
	p.lit(`,"aux":`)
	e.Aux = p.uint()
	if p.peek(`,"reason":`) {
		p.lit(`,"reason":`)
		e.Reason = p.str()
	}
	p.lit(`}`)
	p.end()
	if p.err != nil {
		return Event{}, p.err
	}
	k, ok := kindByName[kind]
	if !ok {
		return Event{}, fmt.Errorf("telemetry: unknown event kind %q", kind)
	}
	e.Kind = k
	return e, nil
}

type lineParser struct {
	buf []byte
	pos int
	err error
}

func (p *lineParser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("telemetry: decode at %d: %s", p.pos, fmt.Sprintf(format, args...))
	}
}

func (p *lineParser) peek(lit string) bool {
	return p.err == nil && len(p.buf)-p.pos >= len(lit) && string(p.buf[p.pos:p.pos+len(lit)]) == lit
}

func (p *lineParser) lit(lit string) {
	if p.err != nil {
		return
	}
	if !p.peek(lit) {
		p.fail("expected %q", lit)
		return
	}
	p.pos += len(lit)
}

func (p *lineParser) digits() []byte {
	start := p.pos
	if p.pos < len(p.buf) && p.buf[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
		p.pos++
	}
	return p.buf[start:p.pos]
}

func (p *lineParser) int() int64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(string(p.digits()), 10, 64)
	if err != nil {
		p.fail("bad int: %v", err)
	}
	return v
}

func (p *lineParser) uint() uint64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseUint(string(p.digits()), 10, 64)
	if err != nil {
		p.fail("bad uint: %v", err)
	}
	return v
}

// str parses a JSON string literal.
func (p *lineParser) str() string {
	if p.err != nil {
		return ""
	}
	if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
		p.fail("expected string")
		return ""
	}
	p.pos++
	var out []byte
	for {
		if p.pos >= len(p.buf) {
			p.fail("unterminated string")
			return ""
		}
		b := p.buf[p.pos]
		switch {
		case b == '"':
			p.pos++
			return string(out)
		case b == '\\':
			p.pos++
			if p.pos >= len(p.buf) {
				p.fail("truncated escape")
				return ""
			}
			esc := p.buf[p.pos]
			p.pos++
			switch esc {
			case '"', '\\', '/':
				out = append(out, esc)
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'u':
				if len(p.buf)-p.pos < 4 {
					p.fail("truncated \\u escape")
					return ""
				}
				v, err := strconv.ParseUint(string(p.buf[p.pos:p.pos+4]), 16, 32)
				if err != nil {
					p.fail("bad \\u escape: %v", err)
					return ""
				}
				p.pos += 4
				r := rune(v)
				if r >= 0xD800 && r < 0xDC00 { // high surrogate: need a pair
					if len(p.buf)-p.pos >= 6 && p.buf[p.pos] == '\\' && p.buf[p.pos+1] == 'u' {
						lo, err := strconv.ParseUint(string(p.buf[p.pos+2:p.pos+6]), 16, 32)
						if err == nil && rune(lo) >= 0xDC00 && rune(lo) < 0xE000 {
							r = 0x10000 + (r-0xD800)<<10 + (rune(lo) - 0xDC00)
							p.pos += 6
						} else {
							r = utf8.RuneError
						}
					} else {
						r = utf8.RuneError
					}
				} else if r >= 0xDC00 && r < 0xE000 { // lone low surrogate
					r = utf8.RuneError
				}
				out = utf8.AppendRune(out, r)
			default:
				p.fail("bad escape %q", esc)
				return ""
			}
		case b < 0x20:
			p.fail("raw control byte in string")
			return ""
		case b < utf8.RuneSelf:
			out = append(out, b)
			p.pos++
		default:
			// JSON text must be valid UTF-8 (RFC 8259 §8.1); rejecting
			// invalid bytes keeps decode∘encode the identity on accepted
			// input (the encoder never emits them).
			r, size := utf8.DecodeRune(p.buf[p.pos:])
			if r == utf8.RuneError && size == 1 {
				p.fail("invalid UTF-8 in string")
				return ""
			}
			out = append(out, p.buf[p.pos:p.pos+size]...)
			p.pos += size
		}
	}
}

func (p *lineParser) end() {
	if p.err != nil {
		return
	}
	if p.pos < len(p.buf) && p.buf[p.pos] == '\n' {
		p.pos++
	}
	if p.pos != len(p.buf) {
		p.fail("trailing data")
	}
}

// Tracer is a bounded ring of trace events. Emit must only be called
// from serial (or sequence-ordered commit) context — internal/sim's
// Trace method stages parallel-phase emissions and flushes them in
// commit order, so ring contents are byte-identical for any worker
// count. A nil *Tracer drops everything.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	// Dropped counts events discarded after the ring wrapped. Total
	// emitted is Dropped + len(Events()).
	Dropped uint64
	// mask selects which kinds are recorded; default all.
	mask [numEventKinds]bool
}

// NewTracer creates a tracer retaining the most recent capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	t := &Tracer{ring: make([]Event, 0, capacity)}
	for i := range t.mask {
		t.mask[i] = true
	}
	return t
}

// Only restricts the tracer to the given kinds (all others dropped
// silently, not counted in Dropped).
func (t *Tracer) Only(kinds ...EventKind) *Tracer {
	if t == nil {
		return nil
	}
	for i := range t.mask {
		t.mask[i] = false
	}
	for _, k := range kinds {
		t.mask[k] = true
	}
	return t
}

// Emit records an event. Serial context only; no-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil || !t.mask[e.Kind] {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.Dropped++ // overwrote the oldest retained event
	t.wrapped = true
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
}

// Events returns the retained events, oldest first. The returned slice
// aliases the ring; do not Emit while holding it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return t.ring
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSONL writes the retained events as JSON lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	var buf []byte
	for _, e := range t.Events() {
		buf = e.AppendJSONL(buf[:0])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes the retained events in the human-oriented text form.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.Text()); err != nil {
			return err
		}
	}
	return nil
}
