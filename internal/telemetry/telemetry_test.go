package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(5)
	c.Cell(3).Add(7)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	g := r.Gauge("g")
	g.Set(3)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %g, want 0", got)
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	h := r.Histogram("h", ExpBuckets(1, 2, 4))
	h.Observe(2)
	h.Cell(9).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry snapshot = %q, %v", buf.String(), err)
	}
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry prom = %q, %v", buf.String(), err)
	}
}

func TestCounterShardMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total")
	// Resolve cells first (setup), then increment as shard owners would.
	cells := []*Cell{c.Cell(0), c.Cell(1), c.Cell(2)}
	cells[0].Add(1)
	cells[1].Add(10)
	cells[2].Add(100)
	cells[1].Inc()
	if got := c.Value(); got != 112 {
		t.Fatalf("Value = %d, want 112", got)
	}
	// Same name returns the same counter.
	if r.Counter("msgs_total") != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 10})
	h.Cell(0).Observe(0.5)  // bucket le=1
	h.Cell(1).Observe(5)    // bucket le=10
	h.Cell(1).Observe(50)   // +Inf
	h.Cell(2).Observe(0.25) // bucket le=1
	counts, count, sum := h.merged()
	if want := []uint64{2, 1, 1}; len(counts) != 3 || counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Fatalf("merged counts = %v, want %v", counts, want)
	}
	if count != 4 || sum != 55.75 {
		t.Fatalf("merged count/sum = %d/%g, want 4/55.75", count, sum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 3)
	want := []float64{1, 4, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestGaugeFuncSumsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("live", func() float64 { return 3 })
	r.GaugeFunc("live", func() float64 { return 4 })
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "live 7\n"; got != want {
		t.Fatalf("snapshot = %q, want %q", got, want)
	}
}

func TestSnapshotExcludesVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("det_total").Add(1)
	r.VolatileCounter("wall_total").Add(2)
	r.Gauge("det_g").Set(3)
	r.VolatileGauge("wall_g").Set(4)
	r.VolatileGaugeFunc("wall_f", func() float64 { return 5 })

	var snap bytes.Buffer
	if err := r.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	want := "det_g 3\ndet_total 1\n"
	if snap.String() != want {
		t.Fatalf("snapshot = %q, want %q", snap.String(), want)
	}

	var prom bytes.Buffer
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"det_total", "wall_total", "det_g", "wall_g", "wall_f"} {
		if !strings.Contains(prom.String(), name) {
			t.Fatalf("prom output missing %s:\n%s", name, prom.String())
		}
	}
	if !strings.Contains(prom.String(), "# TYPE det_total counter") {
		t.Fatalf("prom output missing TYPE line:\n%s", prom.String())
	}
}

func TestSnapshotStableAcrossInsertionOrder(t *testing.T) {
	build := func(names []string) string {
		r := NewRegistry()
		for i, n := range names {
			r.Counter(n).Add(uint64(i + 1))
		}
		var buf bytes.Buffer
		r.WriteSnapshot(&buf)
		return buf.String()
	}
	a := build([]string{"a_total", "b_total", "c_total"})
	// Same values registered in reverse order must render identically.
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	var buf bytes.Buffer
	r.WriteSnapshot(&buf)
	if a != buf.String() {
		t.Fatalf("snapshot depends on registration order:\n%q\n%q", a, buf.String())
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`dur_seconds{mode="core"}`, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	want := `dur_seconds_bucket{mode="core",le="+Inf"} 3
dur_seconds_bucket{mode="core",le="1"} 1
dur_seconds_bucket{mode="core",le="10"} 2
dur_seconds_count{mode="core"} 3
dur_seconds_sum{mode="core"} 55.5
`
	if buf.String() != want {
		t.Fatalf("histogram snapshot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWriteJSONIsValid(t *testing.T) {
	r := NewRegistry()
	r.Counter(`c_total{reason="a\b"}`).Add(1)
	r.Gauge("g").Set(2.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Must be one valid JSON object line.
	s := buf.String()
	if !strings.HasSuffix(s, "}\n") || !strings.HasPrefix(s, "{") {
		t.Fatalf("WriteJSON = %q", s)
	}
	if !strings.Contains(s, `"g":2.5`) {
		t.Fatalf("WriteJSON missing gauge: %q", s)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{-7, "-7"},
		{2.5, "2.5"},
		{1e20, "1e+20"},
	}
	for _, c := range cases {
		if got := fmtFloat(c.in); got != c.want {
			t.Errorf("fmtFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStages(t *testing.T) {
	r := NewRegistry()
	var log bytes.Buffer
	s := NewStages(r, &log, "test")
	s.Done("alpha")
	s.Done("beta")
	if len(s.Stages) != 2 || s.Stages[0].Name != "alpha" || s.Stages[1].Name != "beta" {
		t.Fatalf("stages = %+v", s.Stages)
	}
	// Stage gauges are volatile: visible in Prom, absent from the snapshot.
	var snap, prom bytes.Buffer
	r.WriteSnapshot(&snap)
	r.WriteProm(&prom)
	if strings.Contains(snap.String(), "stage_wall_seconds") {
		t.Fatalf("volatile stage timer leaked into snapshot:\n%s", snap.String())
	}
	if !strings.Contains(prom.String(), `stage_wall_seconds{stage="alpha"}`) {
		t.Fatalf("prom output missing stage timer:\n%s", prom.String())
	}
	if !strings.Contains(log.String(), "[test] alpha") {
		t.Fatalf("log = %q", log.String())
	}
	// Nil Stages is a no-op.
	var nilStages *Stages
	nilStages.Done("x")
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(42)
	tr := NewTracer(8)
	tr.Emit(Event{Kind: BeaconOriginated, Actor: 1})
	addr, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "served_total 42") {
		t.Fatalf("/metrics = %q", body)
	}
	if body := get("/snapshot"); body != "served_total 42\n" {
		t.Fatalf("/snapshot = %q", body)
	}
	if body := get("/trace"); !strings.Contains(body, `"kind":"beacon_originated"`) {
		t.Fatalf("/trace = %q", body)
	}
	if body := get("/trace?format=text"); !strings.Contains(body, "beacon_originated") {
		t.Fatalf("/trace?format=text = %q", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"served_total":42`) {
		t.Fatalf("/metrics.json = %q", body)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
	r := NewRegistry()
	h := r.Histogram("q_test", []float64{10, 100, 1000})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// 90 samples in (10,100], 10 in (100,1000]: p50 interpolates inside
	// the second bucket, p99 inside the third.
	for i := 0; i < 90; i++ {
		h.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 10 || p50 > 100 {
		t.Errorf("p50 = %v, want in (10,100]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 100 || p99 > 1000 {
		t.Errorf("p99 = %v, want in (100,1000]", p99)
	}
	if got := h.Quantile(-1); got > 10 {
		t.Errorf("q<0 clamps to min, got %v", got)
	}
	// Mass in the +Inf bucket clamps to the top finite bound.
	inf := r.Histogram("q_inf", []float64{1})
	inf.Observe(99)
	if got := inf.Quantile(0.99); got != 1 {
		t.Errorf("+Inf mass quantile = %v, want clamp to 1", got)
	}
	// Sharded observation: quantiles merge cells like every other read.
	sh := r.Histogram("q_shard", []float64{1, 2, 4})
	sh.Cell(1).Observe(1.5)
	sh.Cell(2).Observe(3)
	if q := sh.Quantile(1); q <= 2 || q > 4 {
		t.Errorf("merged quantile = %v, want in (2,4]", q)
	}
}

// TestHistogramQuantileBoundaryRanks pins Quantile at exact bucket-
// boundary ranks, where an off-by-one in the cumulative comparison
// (cum+c >= rank vs >) would jump to the wrong bucket. The convention:
// with rank = q*count, a rank landing exactly on a bucket's cumulative
// count interpolates to that bucket's UPPER bound — never into the next
// bucket — and q=0 rests on the first occupied bucket's lower bound.
func TestHistogramQuantileBoundaryRanks(t *testing.T) {
	r := NewRegistry()
	// Two buckets with equal mass: (1,2] and (2,4], 2 samples each.
	h := r.Histogram("q_boundary", []float64{1, 2, 4})
	h.Observe(1.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(3)
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1},      // rank 0: lower bound of the first occupied bucket
		{0.25, 1.5}, // rank 1: halfway up the first bucket's 2 samples
		{0.5, 2},    // rank 2 == bucket-0 cum count: exactly the shared bound
		{0.75, 3},   // rank 3: halfway up the second bucket
		{1, 4},      // rank 4: the last occupied bucket's upper bound
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// A leading empty bucket must be skipped, not interpolated into:
	// all mass in (10,100], nothing in (0,10].
	skip := r.Histogram("q_skip", []float64{10, 100})
	skip.Observe(50)
	if got := skip.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) with empty first bucket = %v, want 10", got)
	}
	if got := skip.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want 100", got)
	}

	// An interior empty bucket is likewise transparent: mass in (1,2]
	// and (4,8] only. Ranks at the gap resolve to bucket bounds, not to
	// points inside the empty (2,4] bucket.
	gap := r.Histogram("q_gap", []float64{1, 2, 4, 8})
	gap.Observe(1.5)
	gap.Observe(6)
	if got := gap.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) at gap = %v, want 2 (first bucket's bound)", got)
	}
	if got := gap.Quantile(0.75); got != 6 {
		t.Errorf("Quantile(0.75) = %v, want 6 (midpoint of (4,8])", got)
	}

	// A single sample: every q > 0 interpolates within its bucket,
	// q=1 hits the bucket's upper bound exactly.
	one := r.Histogram("q_one", []float64{1, 2})
	one.Observe(1.5)
	if got := one.Quantile(1); got != 2 {
		t.Errorf("single-sample Quantile(1) = %v, want 2", got)
	}
	if got := one.Quantile(0.5); got != 1.5 {
		t.Errorf("single-sample Quantile(0.5) = %v, want 1.5", got)
	}

	// q outside [0,1] clamps to the ends.
	if got, want := one.Quantile(2), one.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %v, want clamp to Quantile(1) = %v", got, want)
	}
	if got, want := one.Quantile(-0.5), one.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %v, want clamp to Quantile(0) = %v", got, want)
	}
}
