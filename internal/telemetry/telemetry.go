// Package telemetry is the instrumentation layer of the simulation
// runtime: sharded counters, gauges and histograms collected into a
// Registry, a bounded ring of structured trace events (trace.go), named
// stage timers (stages.go), and exporters — Prometheus text, JSON, a
// deterministic snapshot format, and an opt-in HTTP endpoint with
// net/http/pprof and expvar (http.go).
//
// # Determinism contract
//
// Metrics come in two classes. Deterministic metrics observe only
// virtual-time state (message counts, store sizes, flow outcomes); their
// snapshot (WriteSnapshot) must be byte-identical for any simulator
// worker count, extending the fingerprint guarantee of internal/sim.
// Volatile metrics observe wall-clock state (stage durations, scheduler
// batch shapes that depend on parallel execution); they are exported by
// WriteProm/WriteJSON but excluded from WriteSnapshot.
//
// Parallel-safety follows the sharding discipline of internal/sim: a
// counter or histogram is a set of per-shard cells. An actor running on
// simulator shard s increments only cell s, which no other worker
// touches during a segment; segment joins (sync.WaitGroup.Wait) order
// cross-segment access to the same cell. Totals are sums over cells, so
// they do not depend on the worker count — increments are attributed to
// shards, not workers. Gauges have no cells and must only be set from
// serial context (or via GaugeFunc, evaluated at export time).
//
// # Zero cost when disabled
//
// Every constructor and method tolerates nil receivers: a nil *Registry
// yields nil metrics, and Add/Inc/Observe on nil cells are no-ops — one
// inlined nil check on the hot path. Instrumented code therefore
// resolves its cells unconditionally at setup and never branches on an
// "enabled" flag itself.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Cell is one shard's slot of a Counter. Add and Inc are not atomic:
// a cell must only be touched by its owning shard (see the package
// comment). The struct is padded to a cache line so neighboring shards
// do not false-share.
type Cell struct {
	n uint64
	_ [7]uint64
}

// Add increments the cell by n. No-op on a nil cell.
func (c *Cell) Add(n uint64) {
	if c == nil {
		return
	}
	c.n += n
}

// Inc increments the cell by one. No-op on a nil cell.
func (c *Cell) Inc() { c.Add(1) }

// Counter is a monotonically increasing sum over per-shard cells.
type Counter struct {
	name     string
	volatile bool
	cells    []*Cell
}

// Cell returns (allocating if needed) the counter's cell for a shard.
// Resolve cells during setup, from serial context — growing the cell
// table during parallel execution is a race. Nil-safe: a nil counter
// yields a nil cell.
func (c *Counter) Cell(shard uint32) *Cell {
	if c == nil {
		return nil
	}
	for int(shard) >= len(c.cells) {
		c.cells = append(c.cells, nil)
	}
	if c.cells[shard] == nil {
		c.cells[shard] = &Cell{}
	}
	return c.cells[shard]
}

// Add increments the serial (shard 0) cell. Convenience for code that
// always runs in serial context.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.Cell(0).Add(n)
}

// Inc increments the serial cell by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums all cells. Call from serial context only.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for _, cell := range c.cells {
		if cell != nil {
			sum += cell.n
		}
	}
	return sum
}

// Gauge is a settable value. Unlike counters, gauges have no shard
// cells: set them from serial context only.
type Gauge struct {
	name     string
	volatile bool
	v        float64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HistCell is one shard's slot of a Histogram: per-bucket counts plus
// count and sum. Same ownership rules as Cell.
type HistCell struct {
	h      *Histogram
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one sample. No-op on a nil cell.
func (c *HistCell) Observe(v float64) {
	if c == nil {
		return
	}
	c.count++
	c.sum += v
	for i, ub := range c.h.bounds {
		if v <= ub {
			c.counts[i]++
			return
		}
	}
	c.counts[len(c.counts)-1]++ // +Inf bucket
}

// Histogram accumulates samples into fixed buckets, one cell per shard.
// Bucket upper bounds are set at creation; the implicit final bucket is
// +Inf. Merged totals are worker-count-invariant: each shard's partial
// sum is accumulated in that shard's deterministic observation order,
// and cells are merged in shard order.
type Histogram struct {
	name     string
	volatile bool
	bounds   []float64
	cells    []*HistCell
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given growth factor — the usual latency/size layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Cell returns (allocating if needed) the histogram's cell for a shard.
// Setup-time, serial context only. Nil-safe.
func (h *Histogram) Cell(shard uint32) *HistCell {
	if h == nil {
		return nil
	}
	for int(shard) >= len(h.cells) {
		h.cells = append(h.cells, nil)
	}
	if h.cells[shard] == nil {
		h.cells[shard] = &HistCell{h: h, counts: make([]uint64, len(h.bounds)+1)}
	}
	return h.cells[shard]
}

// Observe records a sample in the serial cell.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.Cell(0).Observe(v)
}

// merged returns the cell-merged bucket counts, count and sum.
func (h *Histogram) merged() (counts []uint64, count uint64, sum float64) {
	counts = make([]uint64, len(h.bounds)+1)
	for _, c := range h.cells {
		if c == nil {
			continue
		}
		for i, n := range c.counts {
			counts[i] += n
		}
		count += c.count
		sum += c.sum
	}
	return counts, count, sum
}

// Quantile estimates the q-quantile of the merged histogram with linear
// interpolation inside the containing bucket (the histogram_quantile
// convention). Mass in the +Inf bucket clamps to the largest finite
// bound. Returns 0 on a nil or empty histogram. Serial context only:
// like every read path, it merges cells.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	counts, count, _ := h.merged()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	cum, lower := 0.0, 0.0
	for i, ub := range h.bounds {
		c := float64(counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (ub-lower)*frac
		}
		cum += c
		lower = ub
	}
	return h.bounds[len(h.bounds)-1]
}

// gaugeFunc is a lazily evaluated gauge; several funcs registered under
// one name are summed (so independent subsystems can contribute to one
// total).
type gaugeFunc struct {
	name     string
	volatile bool
	fns      []func() float64
}

func (g *gaugeFunc) value() float64 {
	var sum float64
	for _, fn := range g.fns {
		sum += fn()
	}
	return sum
}

// Registry holds named metrics. The zero value is not usable; create
// with NewRegistry. A nil *Registry is a valid "telemetry disabled"
// registry: every constructor returns nil and every export writes
// nothing.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]*gaugeFunc
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]*gaugeFunc{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the deterministic counter with the given name,
// creating it on first use. Names may carry a static Prometheus-style
// label suffix, e.g. `beacon_rejected_total{reason="loop"}`.
func (r *Registry) Counter(name string) *Counter { return r.counter(name, false) }

// VolatileCounter is Counter for wall-clock-dependent values, excluded
// from the deterministic snapshot.
func (r *Registry) VolatileCounter(name string) *Counter { return r.counter(name, true) }

func (r *Registry) counter(name string, volatile bool) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name, volatile: volatile}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the deterministic gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge { return r.gauge(name, false) }

// VolatileGauge is Gauge for wall-clock-dependent values.
func (r *Registry) VolatileGauge(name string) *Gauge { return r.gauge(name, true) }

func (r *Registry) gauge(name string, volatile bool) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name, volatile: volatile}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn under name, evaluated at export time. Several
// funcs under one name are summed. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) { r.gaugeFunc(name, false, fn) }

// VolatileGaugeFunc is GaugeFunc for wall-clock-dependent values.
func (r *Registry) VolatileGaugeFunc(name string, fn func() float64) { r.gaugeFunc(name, true, fn) }

func (r *Registry) gaugeFunc(name string, volatile bool, fn func() float64) {
	if r == nil {
		return
	}
	g := r.gaugeFuncs[name]
	if g == nil {
		g = &gaugeFunc{name: name, volatile: volatile}
		r.gaugeFuncs[name] = g
	}
	g.fns = append(g.fns, fn)
}

// Histogram returns the deterministic histogram with the given name,
// creating it with the given bucket bounds on first use (later calls
// ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, false)
}

// VolatileHistogram is Histogram for wall-clock-dependent samples
// (e.g. WAL replay durations), excluded from the deterministic
// snapshot.
func (r *Registry) VolatileHistogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, true)
}

func (r *Registry) histogram(name string, bounds []float64, volatile bool) *Histogram {
	if r == nil {
		return nil
	}
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{name: name, volatile: volatile, bounds: append([]float64(nil), bounds...)}
		r.histograms[name] = h
	}
	return h
}

// fmtFloat renders a float64 value with stable, locale-free formatting.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// family splits a metric name from its static label suffix.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// histLine renders one histogram bucket name: family_bucket{...,le="x"}.
func histLine(name, le string) string {
	fam := family(name)
	if fam == name {
		return fmt.Sprintf("%s_bucket{le=%q}", fam, le)
	}
	labels := strings.TrimSuffix(name[len(fam):], "}")
	return fmt.Sprintf("%s_bucket%s,le=%q}", fam, labels, le)
}

// snapshotLine is one rendered metric sample.
type snapshotLine struct {
	name     string
	value    string
	volatile bool
	typ      string // counter | gauge | histogram
}

// lines renders every metric, sorted by name.
func (r *Registry) lines() []snapshotLine {
	if r == nil {
		return nil
	}
	var out []snapshotLine
	for _, c := range r.counters {
		out = append(out, snapshotLine{c.name, strconv.FormatUint(c.Value(), 10), c.volatile, "counter"})
	}
	for _, g := range r.gauges {
		out = append(out, snapshotLine{g.name, fmtFloat(g.v), g.volatile, "gauge"})
	}
	for _, g := range r.gaugeFuncs {
		out = append(out, snapshotLine{g.name, fmtFloat(g.value()), g.volatile, "gauge"})
	}
	for _, h := range r.histograms {
		counts, count, sum := h.merged()
		cum := uint64(0)
		for i, ub := range h.bounds {
			cum += counts[i]
			out = append(out, snapshotLine{histLine(h.name, fmtFloat(ub)), strconv.FormatUint(cum, 10), h.volatile, "histogram"})
		}
		cum += counts[len(counts)-1]
		out = append(out, snapshotLine{histLine(h.name, "+Inf"), strconv.FormatUint(cum, 10), h.volatile, "histogram"})
		out = append(out, snapshotLine{family(h.name) + "_count" + h.name[len(family(h.name)):], strconv.FormatUint(count, 10), h.volatile, "histogram"})
		out = append(out, snapshotLine{family(h.name) + "_sum" + h.name[len(family(h.name)):], fmtFloat(sum), h.volatile, "histogram"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteSnapshot writes the deterministic metrics as sorted "name value"
// lines — the byte-identical-across-worker-counts format that the
// fingerprint and golden tests consume. Call from serial context.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	for _, l := range r.lines() {
		if l.volatile {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}

// WriteProm writes all metrics (volatile included) in the Prometheus
// text exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	lines := r.lines()
	typed := map[string]bool{}
	for _, l := range lines {
		fam := family(l.name)
		if l.typ == "histogram" {
			fam = strings.TrimSuffix(strings.TrimSuffix(fam, "_count"), "_sum")
			if i := strings.Index(fam, "_bucket"); i >= 0 {
				fam = fam[:i]
			}
		}
		if !typed[fam] {
			typed[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, l.typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes all metrics as one JSON object keyed by metric name,
// with keys sorted (a stable encoding).
func (r *Registry) WriteJSON(w io.Writer) error {
	lines := r.lines()
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range lines {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.Write(appendJSONString(nil, l.name))
		sb.WriteByte(':')
		sb.WriteString(l.value)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
