package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// Serve starts an HTTP endpoint on addr exposing:
//
//	/metrics        Prometheus text format (volatile metrics included)
//	/metrics.json   JSON snapshot of all metrics
//	/snapshot       the deterministic snapshot (name value lines)
//	/trace          retained trace events as JSONL (text with ?format=text)
//	/debug/pprof/   net/http/pprof profiles (cpu, heap, mutex, ...)
//	/debug/vars     expvar
//
// reg and tracer may be nil (their endpoints then serve empty bodies).
// The server runs until the process exits; Serve returns the bound
// address (useful with addr ":0") or an error if the listener cannot
// be created.
//
// The simulator itself is single-goroutine per segment and not locked;
// metric reads from HTTP handlers race with a running simulation in
// principle, so the endpoint is opt-in and meant for coarse progress
// inspection and pprof profiling, where approximate counter reads are
// acceptable. The deterministic artifacts (fingerprint, golden files)
// are always produced after the run from serial context.
func Serve(addr string, reg *Registry, tracer *Tracer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	var mu sync.Mutex
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "text/plain")
		reg.WriteSnapshot(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain")
			tracer.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		tracer.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/debug/pprof/")
		switch name {
		case "":
			pprof.Index(w, r)
		case "cmdline":
			pprof.Cmdline(w, r)
		case "profile":
			pprof.Profile(w, r)
		case "symbol":
			pprof.Symbol(w, r)
		case "trace":
			pprof.Trace(w, r)
		default:
			pprof.Handler(name).ServeHTTP(w, r)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	go http.Serve(ln, mux) //nolint:errcheck // serves until process exit
	return ln.Addr().String(), nil
}
