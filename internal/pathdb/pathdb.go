// Package pathdb implements the SCION path-server infrastructure: path
// segment registration and de-registration by leaf ASes, the core path
// servers that store intra-ISD down-segments and core-segments, local
// path servers answering endpoint lookups, TTL-based caching, and path
// revocation (paper §2.2 "Path Segment Dissemination" and §4.1).
//
// The package works directly on seg.PCB values; lookups are synchronous
// function calls with exact request/reply wire sizes so the Table 1
// scope/frequency analysis can account for them.
package pathdb

import (
	"fmt"
	"sort"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
)

// SegType classifies a registered path segment.
type SegType int

const (
	// Up segments lead from a leaf AS to a core AS of its ISD.
	Up SegType = iota
	// Down segments lead from a core AS to a leaf AS (an up-segment
	// reversed; the wire representation is identical).
	Down
	// Core segments connect two core ASes.
	Core
)

func (t SegType) String() string {
	switch t {
	case Up:
		return "up"
	case Down:
		return "down"
	case Core:
		return "core"
	}
	return fmt.Sprintf("segtype(%d)", int(t))
}

// Request is a path segment lookup, sized per the SCION segment request
// wire format (destination IA plus type and flags).
type Request struct {
	Type SegType
	Dst  addr.IA
}

// WireLen implements sim.Message.
func (r Request) WireLen() int { return 1 + 8 + 3 }

// Reply carries the answered segments.
type Reply struct {
	Segments []*seg.PCB
}

// WireLen implements sim.Message.
func (r Reply) WireLen() int {
	n := 2
	for _, s := range r.Segments {
		n += s.WireLen()
	}
	return n
}

// Server is one AS's path server. A core AS's path server additionally
// stores the down-segments registered by the leaf ASes of its ISD and the
// core-segments to reach other core ASes (paper §2.2).
type Server struct {
	Local addr.IA
	Core  bool

	// down[dst] are registered down-segments reaching leaf AS dst
	// (stored at core path servers of dst's ISD).
	down map[addr.IA][]*seg.PCB
	// core[dst] are core-segments reaching core AS dst.
	core map[addr.IA][]*seg.PCB
	// up are the local AS's own up-segments (local path server role).
	up []*seg.PCB

	// revoked holds links under an active timed revocation, mapped to
	// the expiry of the revocation state. Segments over those links are
	// filtered from lookups but stay stored, so once the revocation
	// lapses (link repaired, or revocation simply timed out per paper
	// §4.1 — revocations are soft state) the paths reappear without
	// waiting for the next beaconing interval to re-register them.
	revoked map[seg.LinkKey]sim.Time

	// lastRevoked remembers when each link last had a revocation
	// recorded. Unlike revoked it never lapses: it is the
	// revocation-recency signal path-selection policies use to penalize
	// recently flapping paths (RevocationRecency).
	lastRevoked map[seg.LinkKey]sim.Time

	cache *Cache

	// Stats for the Table 1 experiment.
	Registrations, Deregistrations, Lookups, CacheHits, Revocations uint64

	// Telemetry (nil no-ops when disabled). Path servers execute in
	// serial simulation context, so cells live on the serial shard and
	// traces are emitted directly.
	clock                                    *sim.Simulator
	cReg, cDereg, cLookup, cHit, cRevocation *telemetry.Cell
}

// NewServer creates a path server for an AS.
func NewServer(local addr.IA, isCore bool, cacheTTL sim.Time) *Server {
	return &Server{
		Local:       local,
		Core:        isCore,
		down:        map[addr.IA][]*seg.PCB{},
		core:        map[addr.IA][]*seg.PCB{},
		up:          nil,
		revoked:     map[seg.LinkKey]sim.Time{},
		lastRevoked: map[seg.LinkKey]sim.Time{},
		cache:       NewCache(cacheTTL),
	}
}

// SetTelemetry resolves the server's metric cells in reg and attaches
// the simulator used for trace emission (registration, revocation and
// reinstatement events). Either argument may be nil.
func (s *Server) SetTelemetry(reg *telemetry.Registry, clock *sim.Simulator) {
	s.clock = clock
	if reg == nil {
		return
	}
	s.cReg = reg.Counter("pathdb_registrations_total").Cell(0)
	s.cDereg = reg.Counter("pathdb_deregistrations_total").Cell(0)
	s.cLookup = reg.Counter("pathdb_lookups_total").Cell(0)
	s.cHit = reg.Counter("pathdb_cache_hits_total").Cell(0)
	s.cRevocation = reg.Counter("pathdb_revocations_total").Cell(0)
}

// trace emits a path lifecycle event from serial context.
func (s *Server) trace(kind telemetry.EventKind, subject, aux uint64, reason string) {
	if s.clock == nil {
		return
	}
	s.clock.Trace(sim.SerialShard, telemetry.Event{
		Kind: kind, Actor: s.Local.Uint64(), Subject: subject, Aux: aux, Reason: reason,
	})
}

// RegisterDown records a down-segment for the leaf AS at the end of the
// segment. Only core path servers accept registrations (paper: leaf ASes
// register at the core path server of their ISD). Duplicate paths update
// in place (re-registration refreshes expiry).
func (s *Server) RegisterDown(now sim.Time, segment *seg.PCB) error {
	if !s.Core {
		return fmt.Errorf("pathdb: %s is not a core path server", s.Local)
	}
	if segment.Expired(now) {
		return fmt.Errorf("pathdb: registering expired segment %v", segment)
	}
	dst := segment.Leaf()
	s.Registrations++
	s.cReg.Inc()
	s.trace(telemetry.PathRegistered, dst.Uint64(), uint64(segment.NumHops()), "down")
	s.down[dst] = upsert(s.down[dst], segment)
	return nil
}

// RegisterCore records a core-segment reaching its leaf (final) core AS.
func (s *Server) RegisterCore(now sim.Time, segment *seg.PCB) error {
	if !s.Core {
		return fmt.Errorf("pathdb: %s is not a core path server", s.Local)
	}
	if segment.Expired(now) {
		return fmt.Errorf("pathdb: registering expired segment %v", segment)
	}
	s.Registrations++
	s.cReg.Inc()
	s.trace(telemetry.PathRegistered, segment.Origin().Uint64(), uint64(segment.NumHops()), "core")
	// Core segments are looked up by origin: a path server asking "how do
	// I reach core AS X" wants segments originated at X (traversed in
	// reverse) or ending at X. We key by the far end (origin).
	s.core[segment.Origin()] = upsert(s.core[segment.Origin()], segment)
	return nil
}

// RegisterUp records one of the local AS's own up-segments.
func (s *Server) RegisterUp(now sim.Time, segment *seg.PCB) error {
	if segment.Expired(now) {
		return fmt.Errorf("pathdb: registering expired segment %v", segment)
	}
	s.Registrations++
	s.cReg.Inc()
	s.trace(telemetry.PathRegistered, segment.Origin().Uint64(), uint64(segment.NumHops()), "up")
	s.up = upsert(s.up, segment)
	return nil
}

// segLess is the canonical lookup-reply order: fewest hops first, then
// by hops key. Stored lists are kept in this order by upsert so lookups
// can serve them without sorting.
func segLess(a, b *seg.PCB) bool {
	if a.NumHops() != b.NumHops() {
		return a.NumHops() < b.NumHops()
	}
	return a.HopsKey() < b.HopsKey()
}

func upsert(list []*seg.PCB, segment *seg.PCB) []*seg.PCB {
	key := segment.HopsKey()
	for i, old := range list {
		if old.HopsKey() == key {
			// Same hops key means the same sort position: refresh in place.
			if segment.Info.Expiry > old.Info.Expiry {
				list[i] = segment
			}
			return list
		}
	}
	i := sort.Search(len(list), func(i int) bool { return !segLess(list[i], segment) })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = segment
	return list
}

// Deregister removes a previously registered down-segment by its path
// identity (paper: path de-registration, an intra-ISD operation).
func (s *Server) Deregister(segment *seg.PCB) bool {
	dst := segment.Leaf()
	key := segment.HopsKey()
	list := s.down[dst]
	for i, old := range list {
		if old.HopsKey() == key {
			s.down[dst] = append(list[:i], list[i+1:]...)
			s.Deregistrations++
			s.cDereg.Inc()
			return true
		}
	}
	return false
}

// LookupDown answers a down-segment query for a leaf AS, serving from the
// TTL cache first (paper: caching is effective due to multi-hour path
// lifetimes and the Zipf distribution of destinations).
func (s *Server) LookupDown(now sim.Time, dst addr.IA) []*seg.PCB {
	s.Lookups++
	s.cLookup.Inc()
	s.expireRevocations(now)
	if segs, ok := s.cache.Get(now, cacheKey{typ: Down, dst: dst}); ok {
		s.CacheHits++
		s.cHit.Inc()
		return segs
	}
	segs := s.live(now, s.down[dst])
	s.cache.Put(now, cacheKey{typ: Down, dst: dst}, segs)
	return segs
}

// LookupCore answers a core-segment query for a core AS.
func (s *Server) LookupCore(now sim.Time, dst addr.IA) []*seg.PCB {
	s.Lookups++
	s.cLookup.Inc()
	s.expireRevocations(now)
	if segs, ok := s.cache.Get(now, cacheKey{typ: Core, dst: dst}); ok {
		s.CacheHits++
		s.cHit.Inc()
		return segs
	}
	segs := s.live(now, s.core[dst])
	s.cache.Put(now, cacheKey{typ: Core, dst: dst}, segs)
	return segs
}

// LookupUp answers an endpoint's up-segment query (an intra-AS operation,
// paper §4.1 "Endpoint Path Lookup").
func (s *Server) LookupUp(now sim.Time) []*seg.PCB {
	s.Lookups++
	s.cLookup.Inc()
	s.expireRevocations(now)
	return s.live(now, s.up)
}

// live filters like valid and additionally hides segments that traverse
// an actively revoked link. Stored lists are maintained in segLess order
// (see upsert), so when nothing needs filtering the stored slice is
// returned directly — the common case allocates and sorts nothing.
// Callers must treat the reply as read-only.
func (s *Server) live(now sim.Time, in []*seg.PCB) []*seg.PCB {
	drop := func(p *seg.PCB) bool {
		return p.Expired(now) || (len(s.revoked) > 0 && s.revokedSegment(p))
	}
	i := 0
	for i < len(in) && !drop(in[i]) {
		i++
	}
	if i == len(in) {
		return in
	}
	out := make([]*seg.PCB, i, len(in)-1)
	copy(out, in[:i])
	for _, p := range in[i+1:] {
		if !drop(p) {
			out = append(out, p)
		}
	}
	return out
}

func (s *Server) revokedSegment(p *seg.PCB) bool {
	for _, lk := range p.Links() {
		if _, ok := s.revoked[lk]; ok {
			return true
		}
	}
	return false
}

// expireRevocations drops revocation state that has timed out; if any
// lapses the lookup cache is flushed so reinstated paths become visible
// immediately.
func (s *Server) expireRevocations(now sim.Time) {
	// Collect lapsed keys first and emit in sorted order: map iteration
	// order must not leak into the deterministic trace stream.
	var lapsed []seg.LinkKey
	for lk, exp := range s.revoked {
		if now >= exp {
			lapsed = append(lapsed, lk)
		}
	}
	if len(lapsed) == 0 {
		return
	}
	sort.Slice(lapsed, func(i, j int) bool {
		if lapsed[i].IA != lapsed[j].IA {
			return lapsed[i].IA.Less(lapsed[j].IA)
		}
		return lapsed[i].If < lapsed[j].If
	})
	for _, lk := range lapsed {
		delete(s.revoked, lk)
		s.trace(telemetry.PathReinstated, lk.IA.Uint64(), uint64(lk.If), "")
	}
	s.cache.Flush()
}

// RevokedActive reports whether link is under an unexpired revocation.
func (s *Server) RevokedActive(now sim.Time, link seg.LinkKey) bool {
	exp, ok := s.revoked[link]
	return ok && now < exp
}

// LastRevocation returns when the server most recently recorded a
// revocation for the link (via RevokeFor), and whether it ever has. The
// record is permanent — it reports history, not whether the revocation
// is still active (use RevokedActive for that).
func (s *Server) LastRevocation(link seg.LinkKey) (sim.Time, bool) {
	t, ok := s.lastRevoked[link]
	return t, ok
}

// RevocationRecency returns the time since the most recent revocation
// the server ever recorded on any of the links — the per-path
// revocation-recency signal for path-selection policies. Negative means
// no revocation was ever recorded on any of them.
func (s *Server) RevocationRecency(now sim.Time, links []seg.LinkKey) time.Duration {
	latest := sim.Time(-1)
	for _, lk := range links {
		if t, ok := s.lastRevoked[lk]; ok && t > latest {
			latest = t
		}
	}
	if latest < 0 {
		return -1
	}
	return time.Duration(now - latest)
}

// RevokeFor places link under a timed revocation: segments over it are
// hidden from lookups until the revocation expires at now+ttl, then
// reinstated automatically (paper §4.1: revocations are soft state that
// must be refreshed while the failure persists). It returns the number
// of currently stored segments the revocation hides. A ttl <= 0 falls
// back to the permanent Revoke.
func (s *Server) RevokeFor(now sim.Time, link seg.LinkKey, ttl sim.Time) int {
	s.lastRevoked[link] = now
	if ttl <= 0 {
		return s.Revoke(link)
	}
	exp := now + ttl
	if cur, ok := s.revoked[link]; !ok || exp > cur {
		s.revoked[link] = exp
	}
	affected := 0
	count := func(list []*seg.PCB) {
		for _, p := range list {
			if containsLink(p, link) {
				affected++
			}
		}
	}
	for dst := range s.down {
		count(s.down[dst])
	}
	for dst := range s.core {
		count(s.core[dst])
	}
	count(s.up)
	s.cache.Flush()
	if affected > 0 {
		s.Revocations++
		s.cRevocation.Inc()
	}
	s.trace(telemetry.PathRevoked, link.IA.Uint64(), uint64(link.If), "soft")
	return affected
}

// Revoke removes every stored segment (down, core, up) containing the
// given link and flushes the cache; it returns the number of segments
// dropped. This models the intra-ISD revocation reaction of paper §4.1.
func (s *Server) Revoke(link seg.LinkKey) int {
	dropped := 0
	filter := func(list []*seg.PCB) []*seg.PCB {
		var out []*seg.PCB
		for _, p := range list {
			if containsLink(p, link) {
				dropped++
				continue
			}
			out = append(out, p)
		}
		return out
	}
	for dst := range s.down {
		s.down[dst] = filter(s.down[dst])
	}
	for dst := range s.core {
		s.core[dst] = filter(s.core[dst])
	}
	s.up = filter(s.up)
	s.cache.Flush()
	if dropped > 0 {
		s.Revocations++
		s.cRevocation.Inc()
	}
	s.trace(telemetry.PathRevoked, link.IA.Uint64(), uint64(link.If), "hard")
	return dropped
}

func containsLink(p *seg.PCB, link seg.LinkKey) bool {
	for _, lk := range p.Links() {
		if lk == link {
			return true
		}
	}
	return false
}

// DownDestinations lists leaf ASes with registered down-segments.
func (s *Server) DownDestinations() []addr.IA {
	out := make([]addr.IA, 0, len(s.down))
	for ia, list := range s.down {
		if len(list) > 0 {
			out = append(out, ia)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
