package pathdb

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/trust"
)

const hour = sim.Time(time.Hour)

type fakeSigner struct{ ia addr.IA }

func (f fakeSigner) IA() addr.IA                 { return f.ia }
func (f fakeSigner) Sign([]byte) ([]byte, error) { return make([]byte, trust.SignatureLen), nil }

func mkSeg(t testing.TB, origin addr.IA, ts sim.Time, hops ...uint64) *seg.PCB {
	t.Helper()
	p := seg.NewPCB(origin, 1, ts, 6*hour)
	var err error
	for i, h := range hops {
		egress := addr.IfID(2)
		if i == len(hops)-1 {
			egress = 0 // terminated
		}
		ingress := addr.IfID(1)
		if i == 0 {
			ingress = 0
		}
		p, err = p.Extend(fakeSigner{ia: addr.MustIA(1, addr.AS(h))}, addr.IA{}, ingress, egress, nil, 1472)
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

var (
	core1 = addr.MustIA(1, 10)
	leafA = addr.MustIA(1, 30)
)

func TestRegisterAndLookupDown(t *testing.T) {
	s := NewServer(core1, true, hour)
	sg := mkSeg(t, core1, 0, 10, 20, 30)
	if err := s.RegisterDown(0, sg); err != nil {
		t.Fatal(err)
	}
	got := s.LookupDown(0, leafA)
	if len(got) != 1 {
		t.Fatalf("lookup = %d segments", len(got))
	}
	if got[0].Leaf() != leafA {
		t.Errorf("leaf = %v", got[0].Leaf())
	}
	if dsts := s.DownDestinations(); len(dsts) != 1 || dsts[0] != leafA {
		t.Errorf("destinations = %v", dsts)
	}
}

func TestRegisterDownRequiresCore(t *testing.T) {
	s := NewServer(leafA, false, hour)
	if err := s.RegisterDown(0, mkSeg(t, core1, 0, 10, 30)); err == nil {
		t.Error("non-core server accepted registration")
	}
}

func TestRegisterExpiredRejected(t *testing.T) {
	s := NewServer(core1, true, hour)
	sg := mkSeg(t, core1, 0, 10, 30)
	if err := s.RegisterDown(7*hour, sg); err == nil {
		t.Error("expired segment registered")
	}
	if err := s.RegisterCore(7*hour, sg); err == nil {
		t.Error("expired core segment registered")
	}
	if err := s.RegisterUp(7*hour, sg); err == nil {
		t.Error("expired up segment registered")
	}
}

func TestReregistrationRefreshes(t *testing.T) {
	s := NewServer(core1, true, 0) // no cache, direct view
	old := mkSeg(t, core1, 0, 10, 20, 30)
	if err := s.RegisterDown(0, old); err != nil {
		t.Fatal(err)
	}
	fresh := mkSeg(t, core1, 2*hour, 10, 20, 30)
	if err := s.RegisterDown(2*hour, fresh); err != nil {
		t.Fatal(err)
	}
	got := s.LookupDown(2*hour, leafA)
	if len(got) != 1 {
		t.Fatalf("re-registration duplicated: %d", len(got))
	}
	if got[0].Info.Expiry != fresh.Info.Expiry {
		t.Error("re-registration did not refresh expiry")
	}
}

func TestDeregister(t *testing.T) {
	s := NewServer(core1, true, 0)
	sg := mkSeg(t, core1, 0, 10, 20, 30)
	s.RegisterDown(0, sg)
	if !s.Deregister(sg) {
		t.Fatal("deregister failed")
	}
	if s.Deregister(sg) {
		t.Error("double deregister succeeded")
	}
	if got := s.LookupDown(0, leafA); len(got) != 0 {
		t.Errorf("segments after deregister: %d", len(got))
	}
}

func TestLookupFiltersExpired(t *testing.T) {
	s := NewServer(core1, true, 0)
	s.RegisterDown(0, mkSeg(t, core1, 0, 10, 20, 30))
	if got := s.LookupDown(7*hour, leafA); len(got) != 0 {
		t.Error("expired segment served")
	}
}

func TestLookupCoreAndUp(t *testing.T) {
	s := NewServer(core1, true, hour)
	cs := mkSeg(t, addr.MustIA(2, 99), 0, 99, 10)
	if err := s.RegisterCore(0, cs); err != nil {
		t.Fatal(err)
	}
	if got := s.LookupCore(0, addr.MustIA(2, 99)); len(got) != 1 {
		t.Fatalf("core lookup = %d", len(got))
	}
	local := NewServer(leafA, false, hour)
	up := mkSeg(t, core1, 0, 10, 20, 30)
	if err := local.RegisterUp(0, up); err != nil {
		t.Fatal(err)
	}
	if got := local.LookupUp(0); len(got) != 1 {
		t.Fatalf("up lookup = %d", len(got))
	}
}

func TestCacheHits(t *testing.T) {
	s := NewServer(core1, true, hour)
	s.RegisterDown(0, mkSeg(t, core1, 0, 10, 20, 30))
	s.LookupDown(0, leafA)                        // miss, fills cache
	s.LookupDown(30*sim.Time(time.Minute), leafA) // hit
	if s.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", s.CacheHits)
	}
	// After TTL the entry expires.
	s.LookupDown(3*hour, leafA)
	if s.CacheHits != 1 {
		t.Errorf("cache hits after TTL = %d, want still 1", s.CacheHits)
	}
}

func TestRevoke(t *testing.T) {
	s := NewServer(core1, true, hour)
	affected := mkSeg(t, core1, 0, 10, 20, 30)
	clean := mkSeg(t, core1, 0, 10, 40, 30)
	s.RegisterDown(0, affected)
	s.RegisterDown(0, clean)
	s.LookupDown(0, leafA) // warm cache

	// Revoke the link 1-20#2 (AS 20's egress), only on 'affected'.
	dropped := s.Revoke(seg.LinkKey{IA: addr.MustIA(1, 20), If: 2})
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	got := s.LookupDown(0, leafA)
	if len(got) != 1 || got[0].HopsKey() != clean.HopsKey() {
		t.Errorf("post-revocation lookup = %v", got)
	}
	if s.Revocations != 1 {
		t.Errorf("revocations = %d", s.Revocations)
	}
	// Revoking an unknown link drops nothing.
	if n := s.Revoke(seg.LinkKey{IA: addr.MustIA(9, 9), If: 1}); n != 0 {
		t.Errorf("bogus revoke dropped %d", n)
	}
}

// keysOf renders a lookup reply as its ordered hops keys.
func keysOf(segs []*seg.PCB) []string {
	out := make([]string, len(segs))
	for i, p := range segs {
		out[i] = p.HopsKey()
	}
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLookupOrderingStable pins the canonical reply order the pathsrv
// snapshot layer must reproduce: fewest hops first, then by hops key,
// independent of registration order.
func TestLookupOrderingStable(t *testing.T) {
	s := NewServer(core1, true, 0)
	// Register out of order: a 4-hop segment, then two 3-hop ones with
	// middle hops that sort in reverse registration order.
	long := mkSeg(t, core1, 0, 10, 20, 25, 30)
	hiMid := mkSeg(t, core1, 0, 10, 90, 30)
	loMid := mkSeg(t, core1, 0, 10, 40, 30)
	for _, sg := range []*seg.PCB{long, hiMid, loMid} {
		if err := s.RegisterDown(0, sg); err != nil {
			t.Fatal(err)
		}
	}
	got := s.LookupDown(0, leafA)
	if len(got) != 3 {
		t.Fatalf("lookup = %d segments", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.NumHops() > b.NumHops() ||
			(a.NumHops() == b.NumHops() && a.HopsKey() >= b.HopsKey()) {
			t.Fatalf("reply out of order at %d: %v", i, keysOf(got))
		}
	}
	if got[2] != long {
		t.Error("4-hop segment must sort last")
	}
}

// TestRevokeForReinstatementOrdering is the documented baseline for
// pathsrv snapshot publication: a timed revocation hides exactly the
// affected segments, and once it lapses the original reply — same
// segments, same order — reappears without re-registration.
func TestRevokeForReinstatementOrdering(t *testing.T) {
	s := NewServer(core1, true, 0)
	affected := mkSeg(t, core1, 0, 10, 20, 30)
	clean := mkSeg(t, core1, 0, 10, 40, 30)
	other := mkSeg(t, core1, 0, 10, 20, 25, 30) // also over 1-20#2, 4 hops
	for _, sg := range []*seg.PCB{affected, clean, other} {
		if err := s.RegisterDown(0, sg); err != nil {
			t.Fatal(err)
		}
	}
	before := keysOf(s.LookupDown(0, leafA))
	if len(before) != 3 {
		t.Fatalf("pre-revocation reply = %d segments", len(before))
	}

	link := seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}
	if n := s.RevokeFor(0, link, hour); n != 2 {
		t.Fatalf("RevokeFor hid %d segments, want 2", n)
	}
	if !s.RevokedActive(30*sim.Time(time.Minute), link) {
		t.Error("revocation must be active before its TTL")
	}
	hidden := s.LookupDown(30*sim.Time(time.Minute), leafA)
	if len(hidden) != 1 || hidden[0].HopsKey() != clean.HopsKey() {
		t.Fatalf("mid-revocation reply = %v, want only clean", keysOf(hidden))
	}

	// Past the TTL the revocation lapses on the next lookup; the reply
	// must be byte-identical to the pre-revocation reply, in the same
	// order, with no re-registration in between.
	after := keysOf(s.LookupDown(hour+1, leafA))
	if !sameKeys(before, after) {
		t.Errorf("reinstated reply %v != original %v", after, before)
	}
	if s.RevokedActive(hour+1, link) {
		t.Error("revocation still active after TTL")
	}
	if s.Registrations != 3 {
		t.Errorf("reinstatement must not re-register: %d registrations", s.Registrations)
	}
}

// TestReinstatementFlushesCache asserts the cache cannot serve a stale
// mid-revocation reply after the revocation lapses.
func TestReinstatementFlushesCache(t *testing.T) {
	s := NewServer(core1, true, 10*hour)
	affected := mkSeg(t, core1, 0, 10, 20, 30)
	clean := mkSeg(t, core1, 0, 10, 40, 30)
	s.RegisterDown(0, affected)
	s.RegisterDown(0, clean)

	link := seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}
	s.RevokeFor(0, link, hour)
	mid := s.LookupDown(1, leafA) // miss (revocation flushed), caches the hidden view
	if len(mid) != 1 {
		t.Fatalf("mid-revocation reply = %d segments", len(mid))
	}
	if got := s.LookupDown(2, leafA); len(got) != 1 {
		t.Fatalf("cached mid-revocation reply = %d segments", len(got))
	}
	hits := s.CacheHits
	if hits == 0 {
		t.Fatal("second mid-revocation lookup must hit the cache")
	}
	// Lapse: the flush must evict the 1-segment entry.
	after := s.LookupDown(hour+1, leafA)
	if len(after) != 2 {
		t.Fatalf("post-reinstatement reply = %d segments, want 2", len(after))
	}
	if s.CacheHits != hits {
		t.Error("post-reinstatement lookup served from the stale cache")
	}
}

// TestReregistrationKeepsOrder checks that refreshing a segment's expiry
// in place does not disturb the sorted stored list.
func TestReregistrationKeepsOrder(t *testing.T) {
	s := NewServer(core1, true, 0)
	a := mkSeg(t, core1, 0, 10, 20, 30)
	b := mkSeg(t, core1, 0, 10, 40, 30)
	s.RegisterDown(0, a)
	s.RegisterDown(0, b)
	before := keysOf(s.LookupDown(0, leafA))
	fresh := mkSeg(t, core1, 2*hour, 10, 20, 30)
	if err := s.RegisterDown(2*hour, fresh); err != nil {
		t.Fatal(err)
	}
	after := keysOf(s.LookupDown(2*hour, leafA))
	if !sameKeys(before, after) {
		t.Errorf("re-registration reordered the reply: %v -> %v", before, after)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if _, ok := c.Get(0, cacheKey{typ: Down, dst: leafA}); ok {
		t.Error("disabled cache returned a hit")
	}
	c.Put(0, cacheKey{typ: Down, dst: leafA}, nil)
	if c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

func TestZipfWorkload(t *testing.T) {
	dsts := make([]addr.IA, 100)
	for i := range dsts {
		dsts[i] = addr.MustIA(1, addr.AS(i+1))
	}
	w := NewZipfWorkload(dsts, 1.2, 42)
	counts := map[addr.IA]int{}
	for i := 0; i < 5000; i++ {
		counts[w.Next()]++
	}
	// The most popular destination must dominate the tail.
	if counts[dsts[0]] < 10*counts[dsts[99]]+1 {
		t.Errorf("Zipf skew too weak: head=%d tail=%d", counts[dsts[0]], counts[dsts[99]])
	}
	// Empty workload is safe.
	empty := NewZipfWorkload(nil, 1.2, 1)
	if !empty.Next().IsZero() {
		t.Error("empty workload must return zero IA")
	}
}

func TestExpectedHitRate(t *testing.T) {
	if hr := ExpectedHitRate(1000, 1000, 1.2); hr != 1 {
		t.Errorf("full cache hit rate = %v", hr)
	}
	if hr := ExpectedHitRate(1000, 0, 1.2); hr != 0 {
		t.Errorf("no cache hit rate = %v", hr)
	}
	small := ExpectedHitRate(1000, 10, 1.2)
	big := ExpectedHitRate(1000, 100, 1.2)
	if !(0 < small && small < big && big < 1) {
		t.Errorf("hit rate monotonicity broken: %v vs %v", small, big)
	}
}

// TestRevocationRecency pins the path-selection recency signal: the
// record is permanent history, independent of whether the revocation is
// still active, and the most recent revocation across the links wins.
func TestRevocationRecency(t *testing.T) {
	s := NewServer(core1, true, hour)
	linkA := seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}
	linkB := seg.LinkKey{IA: addr.MustIA(1, 40), If: 2}

	if _, ok := s.LastRevocation(linkA); ok {
		t.Error("LastRevocation reported a record before any revocation")
	}
	if got := s.RevocationRecency(10, []seg.LinkKey{linkA, linkB}); got >= 0 {
		t.Errorf("recency with no history = %v, want negative", got)
	}

	s.RevokeFor(5, linkA, sim.Time(time.Second))
	s.RevokeFor(8, linkB, sim.Time(time.Second))
	if at, ok := s.LastRevocation(linkA); !ok || at != 5 {
		t.Errorf("LastRevocation(linkA) = %v, %v, want 5, true", at, ok)
	}
	// The newest revocation across the path's links dominates.
	if got := s.RevocationRecency(10, []seg.LinkKey{linkA, linkB}); got != 2 {
		t.Errorf("recency = %v, want 2", got)
	}
	// History outlives the revocation TTL.
	later := sim.Time(time.Minute)
	if s.RevokedActive(later, linkB) {
		t.Error("revocation still active past its TTL")
	}
	if got := s.RevocationRecency(later, []seg.LinkKey{linkB}); got != time.Duration(later-8) {
		t.Errorf("recency after lapse = %v, want %v", got, time.Duration(later-8))
	}
	if got := s.RevocationRecency(later, nil); got >= 0 {
		t.Errorf("recency over no links = %v, want negative", got)
	}
}
