package pathdb

import (
	"fmt"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// benchServer registers n down-segments toward leafA, all distinct in
// their middle hop, on a server with the given cache TTL.
func benchServer(b testing.TB, n int, cacheTTL sim.Time) *Server {
	s := NewServer(core1, true, cacheTTL)
	for i := 0; i < n; i++ {
		sg := mkSeg(b, core1, 0, 10, uint64(100+i), 30)
		if err := s.RegisterDown(0, sg); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkLookupDown measures the uncached lookup hot path the serving
// layer sits on: stored lists are pre-sorted, and with nothing expired or
// revoked the reply is the stored slice itself (no allocation, no sort).
func BenchmarkLookupDown(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("segs=%d", n), func(b *testing.B) {
			s := benchServer(b, n, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := s.LookupDown(0, leafA); len(got) != n {
					b.Fatalf("lookup = %d segments, want %d", len(got), n)
				}
			}
		})
	}
}

// BenchmarkLookupDownCached measures the steady-state TTL-cache hit path.
func BenchmarkLookupDownCached(b *testing.B) {
	for _, n := range []int{8, 512} {
		b.Run(fmt.Sprintf("segs=%d", n), func(b *testing.B) {
			s := benchServer(b, n, hour)
			s.LookupDown(0, leafA) // fill
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.LookupDown(0, leafA)
			}
		})
	}
}

// BenchmarkLookupDownRevoked measures the filtered path: one active
// revocation hides part of the stored list, so every lookup rebuilds a
// filtered reply.
func BenchmarkLookupDownRevoked(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("segs=%d", n), func(b *testing.B) {
			s := benchServer(b, n, 0)
			// Revoke the first segment's middle link far in the future so
			// the revocation never lapses during the benchmark.
			s.RevokeFor(0, seg.LinkKey{IA: addr.MustIA(1, 100), If: 2}, 1000*hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := s.LookupDown(0, leafA); len(got) != n-1 {
					b.Fatalf("lookup = %d segments, want %d", len(got), n-1)
				}
			}
		})
	}
}

// BenchmarkRegisterDown measures sorted upsert cost at growing list sizes.
func BenchmarkRegisterDown(b *testing.B) {
	segs := make([]*seg.PCB, 512)
	for i := range segs {
		segs[i] = mkSeg(b, core1, 0, 10, uint64(100+i), 30)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewServer(core1, true, 0)
		for _, sg := range segs {
			if err := s.RegisterDown(0, sg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestLookupNoAllocsSteadyState pins the hot-path guarantee the pathsrv
// serving layer relies on: with nothing expired or revoked, a lookup
// (cached or not) performs zero allocations.
func TestLookupNoAllocsSteadyState(t *testing.T) {
	uncached := benchServer(t, 64, 0)
	cached := benchServer(t, 64, hour)
	cached.LookupDown(0, leafA) // fill the TTL cache
	for name, s := range map[string]*Server{"uncached": uncached, "cached": cached} {
		allocs := testing.AllocsPerRun(100, func() {
			if got := s.LookupDown(0, leafA); len(got) != 64 {
				t.Fatalf("lookup = %d segments", len(got))
			}
		})
		if allocs != 0 {
			t.Errorf("%s lookup allocates %.1f times per op, want 0", name, allocs)
		}
	}
}
