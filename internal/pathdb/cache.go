package pathdb

import (
	"math"
	"math/rand"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

type cacheKey struct {
	typ SegType
	dst addr.IA
}

type cacheEntry struct {
	segs    []*seg.PCB
	expires sim.Time
}

// Cache is a TTL cache for lookup replies. Caching makes down- and
// core-segment lookups cheap in practice because SCION paths live for
// hours and destination popularity is Zipf distributed (paper §4.1).
type Cache struct {
	ttl     sim.Time
	entries map[cacheKey]cacheEntry
	// Hits and Misses are cumulative statistics.
	Hits, Misses uint64
}

// NewCache creates a cache; ttl <= 0 disables caching.
func NewCache(ttl sim.Time) *Cache {
	return &Cache{ttl: ttl, entries: map[cacheKey]cacheEntry{}}
}

// Get returns a cached reply if fresh.
func (c *Cache) Get(now sim.Time, k cacheKey) ([]*seg.PCB, bool) {
	if c.ttl <= 0 {
		c.Misses++
		return nil, false
	}
	e, ok := c.entries[k]
	if !ok || now >= e.expires {
		delete(c.entries, k)
		c.Misses++
		return nil, false
	}
	c.Hits++
	return e.segs, true
}

// Put stores a reply.
func (c *Cache) Put(now sim.Time, k cacheKey, segs []*seg.PCB) {
	if c.ttl <= 0 {
		return
	}
	c.entries[k] = cacheEntry{segs: segs, expires: now + c.ttl}
}

// Flush empties the cache (after revocations).
func (c *Cache) Flush() { c.entries = map[cacheKey]cacheEntry{} }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// ZipfWorkload draws destination ASes with Zipf-distributed popularity,
// modelling the Internet traffic destination skew that makes path-server
// caching effective (paper §4.1, citing prefix top lists).
type ZipfWorkload struct {
	dsts []addr.IA
	zipf *rand.Zipf
}

// NewZipfWorkload builds a workload over dsts with Zipf exponent s > 1
// and deterministic seed.
func NewZipfWorkload(dsts []addr.IA, s float64, seed int64) *ZipfWorkload {
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	n := uint64(len(dsts))
	if n == 0 {
		n = 1
	}
	return &ZipfWorkload{
		dsts: dsts,
		zipf: rand.NewZipf(rng, s, 1, n-1),
	}
}

// Next returns the next destination.
func (w *ZipfWorkload) Next() addr.IA {
	if len(w.dsts) == 0 {
		return addr.IA{}
	}
	return w.dsts[int(w.zipf.Uint64())%len(w.dsts)]
}

// ExpectedHitRate estimates the asymptotic cache hit rate of a Zipf(s)
// workload over n destinations with a cache holding the c most popular
// entries — used by the Table 1 experiment to report lookup scalability.
func ExpectedHitRate(n, c int, s float64) float64 {
	if n <= 0 || c <= 0 {
		return 0
	}
	if c >= n {
		return 1
	}
	total, top := 0.0, 0.0
	for i := 1; i <= n; i++ {
		p := 1 / math.Pow(float64(i), s)
		total += p
		if i <= c {
			top += p
		}
	}
	return top / total
}
