package pathdb

import (
	"math"
	"math/rand"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

type cacheKey struct {
	typ SegType
	dst addr.IA
}

type cacheEntry struct {
	segs    []*seg.PCB
	expires sim.Time
}

// Cache is a TTL cache for lookup replies. Caching makes down- and
// core-segment lookups cheap in practice because SCION paths live for
// hours and destination popularity is Zipf distributed (paper §4.1).
type Cache struct {
	ttl     sim.Time
	entries map[cacheKey]cacheEntry
	// Hits and Misses are cumulative statistics.
	Hits, Misses uint64
}

// NewCache creates a cache; ttl <= 0 disables caching.
func NewCache(ttl sim.Time) *Cache {
	return &Cache{ttl: ttl, entries: map[cacheKey]cacheEntry{}}
}

// Get returns a cached reply if fresh.
func (c *Cache) Get(now sim.Time, k cacheKey) ([]*seg.PCB, bool) {
	if c.ttl <= 0 {
		c.Misses++
		return nil, false
	}
	e, ok := c.entries[k]
	if !ok || now >= e.expires {
		delete(c.entries, k)
		c.Misses++
		return nil, false
	}
	c.Hits++
	return e.segs, true
}

// Put stores a reply.
func (c *Cache) Put(now sim.Time, k cacheKey, segs []*seg.PCB) {
	if c.ttl <= 0 {
		return
	}
	c.entries[k] = cacheEntry{segs: segs, expires: now + c.ttl}
}

// Flush empties the cache (after revocations).
func (c *Cache) Flush() { c.entries = map[cacheKey]cacheEntry{} }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// ZipfRanks draws indices in [0, n) with Zipf-distributed popularity —
// rank 0 is the most popular. It backs both the lookup-cache workload here
// and the traffic engine's destination-popularity model: Internet traffic
// destinations are Zipf distributed (paper §4.1, citing prefix top lists).
type ZipfRanks struct {
	n    int
	zipf *rand.Zipf
}

// NewZipfRanks builds a deterministic Zipf(s) rank sampler over n ranks;
// exponents <= 1 are clamped to the smallest valid value.
func NewZipfRanks(n int, s float64, seed int64) *ZipfRanks {
	if s <= 1 {
		s = 1.0001
	}
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfRanks{n: n, zipf: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next returns the next rank.
func (z *ZipfRanks) Next() int { return int(z.zipf.Uint64()) % z.n }

// ZipfWorkload draws destination ASes with Zipf-distributed popularity,
// modelling the Internet traffic destination skew that makes path-server
// caching effective (paper §4.1, citing prefix top lists).
type ZipfWorkload struct {
	dsts  []addr.IA
	ranks *ZipfRanks
}

// NewZipfWorkload builds a workload over dsts with Zipf exponent s > 1
// and deterministic seed.
func NewZipfWorkload(dsts []addr.IA, s float64, seed int64) *ZipfWorkload {
	return &ZipfWorkload{dsts: dsts, ranks: NewZipfRanks(len(dsts), s, seed)}
}

// Next returns the next destination.
func (w *ZipfWorkload) Next() addr.IA {
	if len(w.dsts) == 0 {
		return addr.IA{}
	}
	return w.dsts[w.ranks.Next()]
}

// ExpectedHitRate estimates the asymptotic cache hit rate of a Zipf(s)
// workload over n destinations with a cache holding the c most popular
// entries — used by the Table 1 experiment to report lookup scalability.
func ExpectedHitRate(n, c int, s float64) float64 {
	if n <= 0 || c <= 0 {
		return 0
	}
	if c >= n {
		return 1
	}
	total, top := 0.0, 0.0
	for i := 1; i <= n; i++ {
		p := 1 / math.Pow(float64(i), s)
		total += p
		if i <= c {
			top += p
		}
	}
	return top / total
}
