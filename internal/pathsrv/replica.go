package pathsrv

import (
	"fmt"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
)

// Replica is one crash-recoverable path server: a Service whose every
// mutation is journaled to a WAL before it is applied, wrapped with a
// process lifecycle. While up it serves lookups from its snapshots;
// crashed it answers nothing (clients time out and fail over); restarted
// it rebuilds the pre-crash state from the WAL — checkpoint load plus
// tail replay — and reconverges with its peers through anti-entropy.
//
// A Replica's writer methods run in serial simulator events (same
// contract as Service); Lookup runs from any parallel client shard.
type Replica struct {
	// ID is the replica's index within its fleet.
	ID int
	// IA is the replica's synthetic process address — the identity
	// CrashAS schedule entries target.
	IA addr.IA

	svc    *Service
	wal    *WAL
	cfg    Config
	caches []*Cache

	clock *sim.Simulator
	fleet *Fleet

	// ckptEvery triggers a checkpoint compaction once that many records
	// accumulate since the last one.
	ckptEvery uint64

	down      bool
	downSince sim.Time

	// Crashes / Recoveries / Replayed mirror the fleet telemetry for
	// registry-free use; LastRecoveryLag and LastReplayed describe the
	// most recent restart.
	Crashes, Recoveries uint64
	Replayed            uint64
	LastReplayed        uint64
	LastRecoveryLag     sim.Time
}

// Down reports whether the replica is currently crashed. Safe from
// parallel readers under the simulator's serial/parallel ordering: crash
// and restart happen in serial events, which have a happens-before edge
// with every parallel segment.
func (r *Replica) Down() bool { return r.down }

// Service exposes the underlying service (nil while down) for digest
// checks and benchmarks.
func (r *Replica) Service() *Service { return r.svc }

// WAL exposes the replica's journal for inspection and torture tests.
func (r *Replica) WAL() *WAL { return r.wal }

// Lookup serves a path query, reporting ok=false while crashed — the
// client observes a timeout and tries the next replica.
func (r *Replica) Lookup(now sim.Time, src, dst addr.IA) (segs []*seg.PCB, minExpiry sim.Time, ok bool) {
	if r.down {
		return nil, 0, false
	}
	segs, minExpiry = r.svc.Lookup(now, src, dst)
	return segs, minExpiry, true
}

// Register journals and applies one segment registration. Dropped while
// down: a crashed server misses its beacon feed, which is exactly the
// divergence anti-entropy heals after restart.
func (r *Replica) Register(now sim.Time, p *seg.PCB) error {
	if r.down {
		return nil
	}
	r.wal.AppendRegister(now, p)
	err := r.svc.Register(now, p)
	r.maybeCheckpoint(now)
	return err
}

// RevokeLink journals and applies a link revocation (no-op while down).
func (r *Replica) RevokeLink(now sim.Time, link seg.LinkKey, ttl sim.Time) int {
	if r.down {
		return 0
	}
	r.wal.AppendRevoke(now, link, ttl)
	n := r.svc.RevokeLink(now, link, ttl)
	r.maybeCheckpoint(now)
	return n
}

// ReinstateLink journals and applies a link reinstatement (no-op while
// down).
func (r *Replica) ReinstateLink(now sim.Time, link seg.LinkKey) int {
	if r.down {
		return 0
	}
	r.wal.AppendReinstate(now, link)
	n := r.svc.ReinstateLink(now, link)
	r.maybeCheckpoint(now)
	return n
}

// Publish journals and applies a batch publication (no-op while down).
func (r *Replica) Publish(now sim.Time) int {
	if r.down {
		return 0
	}
	r.wal.AppendPublish(now)
	n := r.svc.Publish(now)
	r.maybeCheckpoint(now)
	return n
}

// maybeCheckpoint compacts the WAL when the record budget since the
// last checkpoint is spent.
func (r *Replica) maybeCheckpoint(now sim.Time) {
	if r.wal.Records < r.ckptEvery {
		return
	}
	r.checkpoint(now)
}

func (r *Replica) checkpoint(now sim.Time) {
	before := r.wal.Records
	r.wal.Checkpoint(now, r.svc)
	if r.fleet != nil {
		r.fleet.cCkpt.Inc()
		r.fleet.trace(telemetry.WALCheckpoint, uint64(r.ID), uint64(r.wal.Len()), before)
	}
}

// adoptCache registers a client cache for precise invalidation across
// crashes: the cache lives with the client, so each recovered Service
// incarnation re-adopts it.
func (r *Replica) adoptCache(c *Cache) {
	r.caches = append(r.caches, c)
	if r.svc != nil {
		r.svc.adoptCaches(r.caches)
	}
}

// crash kills the replica's process: the in-memory Service is gone, the
// WAL (its disk) survives. Idempotent.
func (r *Replica) crash(now sim.Time) {
	if r.down {
		return
	}
	r.down = true
	r.downSince = now
	r.svc = nil
	r.Crashes++
	if r.fleet != nil {
		r.fleet.cCrash.Inc()
		r.fleet.trace(telemetry.ReplicaCrashed, uint64(r.ID), 0, 0)
	}
}

// restart recovers the replica from its WAL: checkpoint load + tail
// replay (clockless, so journaled mutations do not re-emit trace
// events), then clock, telemetry-free service state and client caches
// are re-attached. Recovery lag — how long the replica was dark — and
// the wall-clock replay duration are recorded. Idempotent.
func (r *Replica) restart(now sim.Time) {
	if !r.down {
		return
	}
	start := time.Now()
	svc, st := Recover(r.wal.Bytes(), r.cfg)
	replayWall := time.Since(start)
	// Fleet replica services stay clockless across incarnations (the
	// fleet emits the lifecycle traces); only the client caches are
	// re-attached.
	svc.adoptCaches(r.caches)
	r.svc = svc
	r.down = false
	r.Recoveries++
	r.Replayed += st.Records
	r.LastReplayed = st.Records
	r.LastRecoveryLag = now - r.downSince
	if r.fleet != nil {
		r.fleet.cRecover.Inc()
		r.fleet.cReplayed.Add(st.Records)
		r.fleet.hReplayWall.Observe(float64(replayWall.Nanoseconds()))
		r.fleet.hRecoveryLag.Observe(float64(r.LastRecoveryLag))
		r.fleet.trace(telemetry.ReplicaRecovered, uint64(r.ID), st.Records, uint64(r.LastRecoveryLag))
	}
}

// FleetConfig parameterizes a replica fleet.
type FleetConfig struct {
	// Replicas is the fleet size (default 3).
	Replicas int
	// BaseIA is the synthetic process address of replica 0; replica i
	// lives at BaseIA.AS + i. Point CrashAS schedule entries at these.
	// Default ISD 60000, AS 1.
	BaseIA addr.IA
	// Service configures each replica's Service (Clock/Telemetry fields
	// are managed by the fleet; replica services run without their own
	// registry so recovery never double-registers gauges).
	Service Config
	// CheckpointEvery compacts a replica's WAL after that many journal
	// records (default 256).
	CheckpointEvery uint64
	// Clock timestamps trace events and recovery lag.
	Clock *sim.Simulator
	// Telemetry receives fleet-level counters and histograms.
	Telemetry *telemetry.Registry
}

// Fleet is a set of replicas fed the same mutation stream, plus the
// glue that makes the chaos engine's CrashAS events kill and recover
// them: Fleet implements chaos.CrashTarget keyed by the replicas'
// synthetic IAs. Writer methods fan out to every up replica.
type Fleet struct {
	reps []*Replica
	byIA map[addr.IA]*Replica

	// proto is replica 0's first Service incarnation, kept for the pure
	// shard-mapping functions (ShardOf, NumShards) that client pools
	// need even while every replica is down.
	proto *Service

	clock *sim.Simulator

	cCrash, cRecover, cReplayed, cCkpt *telemetry.Cell
	cPulls, cPullShards, cRounds       *telemetry.Cell
	hReplayWall, hRecoveryLag          *telemetry.Histogram

	// Rounds / Pulls / PulledShards mirror the anti-entropy telemetry
	// for registry-free use.
	Rounds, Pulls, PulledShards uint64
}

// NewFleet builds a fleet of identically configured, initially empty
// replicas.
func NewFleet(cfg FleetConfig) *Fleet {
	n := cfg.Replicas
	if n <= 0 {
		n = 3
	}
	base := cfg.BaseIA
	if base.IsZero() {
		base = addr.IA{ISD: 60000, AS: 1}
	}
	svcCfg := cfg.Service
	svcCfg.Clock = nil
	svcCfg.Telemetry = nil
	every := cfg.CheckpointEvery
	if every == 0 {
		every = 256
	}
	f := &Fleet{
		reps:  make([]*Replica, n),
		byIA:  map[addr.IA]*Replica{},
		clock: cfg.Clock,
	}
	if reg := cfg.Telemetry; reg != nil {
		f.cCrash = reg.Counter("pathsrv_replica_crashes_total").Cell(0)
		f.cRecover = reg.Counter("pathsrv_replica_recoveries_total").Cell(0)
		f.cReplayed = reg.Counter("pathsrv_wal_replayed_records_total").Cell(0)
		f.cCkpt = reg.Counter("pathsrv_wal_checkpoints_total").Cell(0)
		f.cPulls = reg.Counter("pathsrv_antientropy_pulls_total").Cell(0)
		f.cPullShards = reg.Counter("pathsrv_antientropy_pulled_shards_total").Cell(0)
		f.cRounds = reg.Counter("pathsrv_antientropy_rounds_total").Cell(0)
		// Replay wall time depends on the host, not virtual time.
		f.hReplayWall = reg.VolatileHistogram("pathsrv_wal_replay_wall_ns", telemetry.ExpBuckets(1e3, 4, 12))
		f.hRecoveryLag = reg.Histogram("pathsrv_replica_recovery_lag_ns", telemetry.ExpBuckets(1e6, 4, 12))
	}
	for i := range f.reps {
		ia := addr.IA{ISD: base.ISD, AS: base.AS + addr.AS(i)}
		r := &Replica{
			ID:        i,
			IA:        ia,
			svc:       New(svcCfg),
			wal:       NewWAL(),
			cfg:       svcCfg,
			clock:     cfg.Clock,
			fleet:     f,
			ckptEvery: every,
		}
		f.reps[i] = r
		f.byIA[ia] = r
	}
	f.proto = f.reps[0].svc
	return f
}

// NumShards returns the per-replica destination shard count.
func (f *Fleet) NumShards() int { return f.proto.NumShards() }

// ShardOf maps a destination IA to its shard — a pure function, valid
// even while replicas are down.
func (f *Fleet) ShardOf(dst addr.IA) uint32 { return f.proto.ShardOf(dst) }

// trace emits a fleet lifecycle event (serial context only).
func (f *Fleet) trace(kind telemetry.EventKind, actor, subject, aux uint64) {
	if f.clock == nil {
		return
	}
	f.clock.Trace(sim.SerialShard, telemetry.Event{
		Kind: kind, Actor: actor, Subject: subject, Aux: aux, Reason: "fleet",
	})
}

// Size returns the number of replicas.
func (f *Fleet) Size() int { return len(f.reps) }

// Replica returns replica i.
func (f *Fleet) Replica(i int) *Replica { return f.reps[i] }

// Replicas returns the replica slice (do not mutate).
func (f *Fleet) Replicas() []*Replica { return f.reps }

// Up counts currently running replicas.
func (f *Fleet) Up() int {
	n := 0
	for _, r := range f.reps {
		if !r.down {
			n++
		}
	}
	return n
}

// Crash implements chaos.CrashTarget: a CrashAS event addressed to a
// replica's synthetic IA kills that replica. Unknown IAs (beacon-server
// crashes et al.) are ignored.
func (f *Fleet) Crash(ia addr.IA) {
	if r, ok := f.byIA[ia]; ok {
		r.crash(f.now())
	}
}

// Restart implements chaos.CrashTarget: recovery through WAL replay.
func (f *Fleet) Restart(ia addr.IA) {
	if r, ok := f.byIA[ia]; ok {
		r.restart(f.now())
	}
}

func (f *Fleet) now() sim.Time {
	if f.clock == nil {
		return 0
	}
	return f.clock.Now()
}

// Register fans a segment registration out to every up replica.
func (f *Fleet) Register(now sim.Time, p *seg.PCB) {
	for _, r := range f.reps {
		_ = r.Register(now, p)
	}
}

// RevokeLink fans a revocation out to every up replica.
func (f *Fleet) RevokeLink(now sim.Time, link seg.LinkKey, ttl sim.Time) {
	for _, r := range f.reps {
		r.RevokeLink(now, link, ttl)
	}
}

// ReinstateLink fans a reinstatement out to every up replica.
func (f *Fleet) ReinstateLink(now sim.Time, link seg.LinkKey) {
	for _, r := range f.reps {
		r.ReinstateLink(now, link)
	}
}

// Publish fans a batch publication out to every up replica.
func (f *Fleet) Publish(now sim.Time) {
	for _, r := range f.reps {
		r.Publish(now)
	}
}

// Summary renders fleet health deterministically.
func (f *Fleet) Summary() string {
	crashes, recoveries := uint64(0), uint64(0)
	for _, r := range f.reps {
		crashes += r.Crashes
		recoveries += r.Recoveries
	}
	return fmt.Sprintf("fleet: replicas=%d up=%d crashes=%d recoveries=%d antientropy_rounds=%d pulls=%d shards=%d",
		len(f.reps), f.Up(), crashes, recoveries, f.Rounds, f.Pulls, f.PulledShards)
}
