package pathsrv

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// centry is one cached reply.
type centry struct {
	segs []*seg.PCB
	// minExpiry is the earliest segment expiry: past it the reply may
	// contain dead paths regardless of the cache TTL.
	minExpiry sim.Time
	// expires is the TTL deadline of the cache entry itself.
	expires sim.Time
}

// Cache memoizes (src, dst) lookup replies for one client actor or
// reader goroutine. It is strictly single-owner: the owner does all
// reads and fills, and — for caches created with Service.NewCache —
// the service writer evicts changed pairs during publication, which in
// simulation is mutually excluded from the owner by the serial/parallel
// event schedule. Goroutine-concurrent readers must use NewLocalCache
// and rely on TTL freshness alone.
type Cache struct {
	entries map[pairKey]centry
	ttl     sim.Time
	cap     int

	Hits, Misses, Evictions, Invalidations uint64
}

// NewCache creates a cache registered with the service for precise
// invalidation: publications evict exactly the pairs whose reply
// changed. ttl <= 0 means entries never expire by age (invalidation
// and segment expiry still apply); cap <= 0 means unbounded.
func (s *Service) NewCache(ttl sim.Time, cap int) *Cache {
	c := NewLocalCache(ttl, cap)
	s.caches = append(s.caches, c)
	return c
}

// NewLocalCache creates an unregistered cache: freshness comes only
// from the TTL and per-reply minExpiry, never from service-side
// invalidation. Safe for readers concurrent with the writer.
func NewLocalCache(ttl sim.Time, cap int) *Cache {
	return &Cache{entries: map[pairKey]centry{}, ttl: ttl, cap: cap}
}

// Lookup answers from the cache when fresh, otherwise queries the
// service and caches a non-empty reply. The second result reports a
// cache hit.
func (c *Cache) Lookup(now sim.Time, svc *Service, src, dst addr.IA) ([]*seg.PCB, bool) {
	key := pairKey{src: src, dst: dst}
	if e, ok := c.entries[key]; ok {
		if now < e.expires && now < e.minExpiry {
			c.Hits++
			return e.segs, true
		}
		delete(c.entries, key)
		c.Evictions++
	}
	c.Misses++
	segs, minExpiry := svc.Lookup(now, src, dst)
	if len(segs) == 0 {
		// Negative replies are not cached: the pair may be populated by
		// the very next publication and a cached miss would hide it.
		return nil, false
	}
	exp := minExpiry
	if c.ttl > 0 && now+c.ttl < exp {
		exp = now + c.ttl
	}
	if c.cap > 0 && len(c.entries) >= c.cap {
		// Deterministic pressure valve: map iteration order is not
		// reproducible, so shed everything rather than a random victim.
		for k := range c.entries {
			delete(c.entries, k)
		}
		c.Evictions += uint64(c.cap)
	}
	c.entries[key] = centry{segs: segs, minExpiry: minExpiry, expires: exp}
	return segs, false
}

// Len returns the number of cached pairs.
func (c *Cache) Len() int { return len(c.entries) }
