package pathsrv

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// centry is one cached reply.
type centry struct {
	segs []*seg.PCB
	// minExpiry is the earliest segment expiry: past it the reply may
	// contain dead paths regardless of the cache TTL.
	minExpiry sim.Time
	// maxExpiry is the latest segment expiry: past it every cached path
	// is dead and the entry is useless even as a stale answer.
	maxExpiry sim.Time
	// expires is the TTL deadline of the cache entry itself.
	expires sim.Time
}

// Cache memoizes (src, dst) lookup replies for one client actor or
// reader goroutine. It is strictly single-owner: the owner does all
// reads and fills, and — for caches created with Service.NewCache —
// the service writer evicts changed pairs during publication, which in
// simulation is mutually excluded from the owner by the serial/parallel
// event schedule. Goroutine-concurrent readers must use NewLocalCache
// and rely on TTL freshness alone.
type Cache struct {
	entries map[pairKey]centry
	ttl     sim.Time
	cap     int
	// nextDead is the earliest maxExpiry among cached entries (0 when
	// none): the first instant a sweep could reclaim anything. Misses
	// past it trigger a sweep, so a long-idle cache does not pin dead
	// []*seg.PCB slices indefinitely.
	nextDead sim.Time

	Hits, Misses, Evictions, Invalidations uint64
	// Sweeps counts dead-entry sweep passes; StaleHits counts replies
	// served past their TTL by LookupStale.
	Sweeps, StaleHits uint64
}

// NewCache creates a cache registered with the service for precise
// invalidation: publications evict exactly the pairs whose reply
// changed. ttl <= 0 means entries never expire by age (invalidation
// and segment expiry still apply); cap <= 0 means unbounded.
func (s *Service) NewCache(ttl sim.Time, cap int) *Cache {
	c := NewLocalCache(ttl, cap)
	s.caches = append(s.caches, c)
	return c
}

// NewLocalCache creates an unregistered cache: freshness comes only
// from the TTL and per-reply minExpiry, never from service-side
// invalidation. Safe for readers concurrent with the writer.
func NewLocalCache(ttl sim.Time, cap int) *Cache {
	return &Cache{entries: map[pairKey]centry{}, ttl: ttl, cap: cap}
}

// Lookup answers from the cache when fresh, otherwise queries the
// service and caches a non-empty reply. The second result reports a
// cache hit.
func (c *Cache) Lookup(now sim.Time, svc *Service, src, dst addr.IA) ([]*seg.PCB, bool) {
	key := pairKey{src: src, dst: dst}
	if e, ok := c.entries[key]; ok {
		if now < e.expires && now < e.minExpiry {
			c.Hits++
			return e.segs, true
		}
		delete(c.entries, key)
		c.Evictions++
	}
	c.Misses++
	c.maybeSweep(now)
	segs, minExpiry := svc.Lookup(now, src, dst)
	if len(segs) == 0 {
		// Negative replies are not cached: the pair may be populated by
		// the very next publication and a cached miss would hide it.
		return nil, false
	}
	c.store(now, key, segs, minExpiry)
	return segs, false
}

// probe answers from the cache when fresh without evicting on a stale
// entry — fleet clients keep stale entries around as the serve-stale
// reserve for total outages. Counts a hit or a miss either way.
func (c *Cache) probe(now sim.Time, key pairKey) ([]*seg.PCB, bool) {
	if e, ok := c.entries[key]; ok && now < e.expires && now < e.minExpiry {
		c.Hits++
		return e.segs, true
	}
	c.Misses++
	c.maybeSweep(now)
	return nil, false
}

// store caches a non-empty reply under the freshness deadline
// min(now+ttl, minExpiry).
func (c *Cache) store(now sim.Time, key pairKey, segs []*seg.PCB, minExpiry sim.Time) {
	if len(segs) == 0 {
		return
	}
	exp := minExpiry
	if c.ttl > 0 && now+c.ttl < exp {
		exp = now + c.ttl
	}
	if _, ok := c.entries[key]; !ok && c.cap > 0 && len(c.entries) >= c.cap {
		// Deterministic pressure valve: map iteration order is not
		// reproducible, so shed everything rather than a random victim.
		for k := range c.entries {
			delete(c.entries, k)
		}
		c.Evictions += uint64(c.cap)
		c.nextDead = 0
	}
	maxExpiry := segs[0].Info.Expiry
	for _, p := range segs[1:] {
		if p.Info.Expiry > maxExpiry {
			maxExpiry = p.Info.Expiry
		}
	}
	c.entries[key] = centry{segs: segs, minExpiry: minExpiry, maxExpiry: maxExpiry, expires: exp}
	if c.nextDead == 0 || maxExpiry < c.nextDead {
		c.nextDead = maxExpiry
	}
}

// LookupStale serves whatever unexpired segments a cached entry still
// holds, TTL notwithstanding — the graceful-degradation path when every
// replica is unreachable. The entry is kept (it may be served again
// until its last segment dies or a real reply replaces it). Returns nil
// when nothing servable is cached.
func (c *Cache) LookupStale(now sim.Time, src, dst addr.IA) []*seg.PCB {
	e, ok := c.entries[pairKey{src: src, dst: dst}]
	if !ok {
		return nil
	}
	if now < e.minExpiry {
		c.StaleHits++
		return e.segs
	}
	var out []*seg.PCB
	for _, p := range e.segs {
		if !p.Expired(now) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	c.StaleHits++
	return out
}

// maybeSweep drops every entry whose last segment has expired, once the
// earliest such deadline passes. Deletion order does not matter (map
// deletes commute and only totals are counted), so the sweep is
// deterministic.
func (c *Cache) maybeSweep(now sim.Time) {
	if c.nextDead == 0 || now < c.nextDead {
		return
	}
	c.Sweeps++
	var next sim.Time
	for k, e := range c.entries {
		if now >= e.maxExpiry {
			delete(c.entries, k)
			c.Evictions++
			continue
		}
		if next == 0 || e.maxExpiry < next {
			next = e.maxExpiry
		}
	}
	c.nextDead = next
}

// Len returns the number of cached pairs.
func (c *Cache) Len() int { return len(c.entries) }
