package pathsrv

import (
	"io"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// benchService registers a pairs x segsPerPair mesh and publishes it.
func benchService(tb testing.TB, pairs, segsPerPair int) (*Service, []addr.IA, []addr.IA) {
	tb.Helper()
	svc := New(Config{})
	sources := []addr.IA{addr.MustIA(1, 10), addr.MustIA(1, 11)}
	var dests []addr.IA
	for d := 0; d < pairs; d++ {
		dst := addr.MustIA(1, addr.AS(1000+d))
		dests = append(dests, dst)
		for _, src := range sources {
			for i := 0; i < segsPerPair; i++ {
				p := mkSeg(tb, 0, uint64(src.AS), uint64(100+i), uint64(dst.AS))
				if err := svc.Register(0, p); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	svc.Publish(0)
	return svc, sources, dests
}

func BenchmarkServiceLookup(b *testing.B) {
	svc, sources, dests := benchService(b, 1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segs, _ := svc.Lookup(0, sources[i&1], dests[i%len(dests)])
		if len(segs) != 4 {
			b.Fatalf("lookup = %d segments", len(segs))
		}
	}
}

func BenchmarkServiceLookupParallel(b *testing.B) {
	svc, sources, dests := benchService(b, 1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			svc.Lookup(0, sources[i&1], dests[i%len(dests)])
			i++
		}
	})
}

func BenchmarkCachedLookup(b *testing.B) {
	svc, sources, dests := benchService(b, 256, 4)
	cache := NewLocalCache(hour, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Lookup(0, svc, sources[i&1], dests[i%len(dests)])
	}
}

func BenchmarkPublishDirtyShard(b *testing.B) {
	svc, _, dests := benchService(b, 1024, 4)
	// Each iteration dirties one shard via a refresh and republishes.
	refresh := make([]*seg.PCB, b.N)
	for i := range refresh {
		dst := dests[i%len(dests)]
		refresh[i] = mkSeg(b, sim.Time(i+1), 10, 100, uint64(dst.AS))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Register(sim.Time(i+1), refresh[i]); err != nil {
			b.Fatal(err)
		}
		svc.Publish(sim.Time(i + 1))
	}
}

func BenchmarkRevokeReinstate(b *testing.B) {
	svc, _, _ := benchService(b, 1024, 4)
	link := seg.LinkKey{IA: addr.MustIA(1, 100), If: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.RevokeLink(0, link, hour)
		svc.ReinstateLink(0, link)
	}
}

// TestReadBenchSmoke exercises the wall-clock read benchmark with a
// concurrent writer — under -race this is the serving layer's
// concurrency proof: immutable snapshots + atomic swaps, no locks.
func TestReadBenchSmoke(t *testing.T) {
	svc, sources, dests := benchService(t, 128, 3)
	svc.DetachClock()
	tick := 0
	res := ReadBench(svc, BenchConfig{
		Readers:  4,
		Ops:      2000,
		Sources:  sources,
		Dests:    dests,
		ZipfS:    1.2,
		Seed:     7,
		CacheTTL: hour,
		CacheCap: 256,
		Now:      0,
		Mutate: func(i int) {
			// Refresh one pair and flip one link so readers race real
			// publications, revocations and reinstatements.
			tick++
			now := sim.Time(tick)
			dst := dests[i%len(dests)]
			p := mkSeg(t, now, 10, 100, uint64(dst.AS))
			if err := svc.Register(now, p); err != nil {
				t.Error(err)
			}
			svc.Publish(now)
			link := seg.LinkKey{IA: addr.MustIA(1, 101), If: 2}
			if i%2 == 0 {
				svc.RevokeLink(now, link, 1000*hour)
			} else {
				svc.ReinstateLink(now, link)
			}
		},
	})
	if res.Ops != 8000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Empties != 0 {
		t.Errorf("%d empty replies in a full mesh", res.Empties)
	}
	if res.QPS <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Errorf("implausible latency profile: %+v", res)
	}
	if res.Mutations == 0 {
		t.Error("writer never ran")
	}
	res.Print(io.Discard)
}

func TestReadBenchDefaults(t *testing.T) {
	svc, sources, dests := benchService(t, 8, 1)
	res := ReadBench(svc, BenchConfig{
		Readers: -1,
		Ops:     100, // small but explicit; defaults only for Readers
		Sources: sources,
		Dests:   dests,
		ZipfS:   1.1,
	})
	if res.Readers != 4 || res.Ops != 400 {
		t.Fatalf("defaults: %+v", res)
	}
}
