package pathsrv

import (
	"bytes"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
)

// poolScenario populates a service with a small mesh (2 sources x 6
// dests x 2 segments), schedules a closed-loop pool on top, and
// optionally injects a mid-run revocation storm from serial context.
func poolScenario(t testing.TB, workers int, seed int64, revoke bool) (PoolTotals, string) {
	t.Helper()
	clock := &sim.Simulator{}
	clock.SetWorkers(workers)
	reg := telemetry.NewRegistry()
	clock.SetTelemetry(reg)
	svc := New(Config{Shards: 8, Clock: clock, Telemetry: reg})

	sources := []addr.IA{addr.MustIA(1, 10), addr.MustIA(1, 11)}
	var dests []addr.IA
	for d := uint64(30); d < 36; d++ {
		dests = append(dests, addr.MustIA(1, addr.AS(d)))
	}
	for _, src := range sources {
		for _, dst := range dests {
			if err := svc.Register(0, mkSeg(t, 0, uint64(src.AS), 20, uint64(dst.AS))); err != nil {
				t.Fatal(err)
			}
			if err := svc.Register(0, mkSeg(t, 0, uint64(src.AS), 21, uint64(dst.AS))); err != nil {
				t.Fatal(err)
			}
		}
	}
	svc.Publish(0)

	pool, err := NewPool(clock, svc, reg, ClientConfig{
		Endpoints: 500,
		Actors:    8,
		Sources:   sources,
		Dests:     dests,
		ZipfS:     1.2,
		MeanThink: 50 * time.Millisecond,
		MinThink:  5 * time.Millisecond,
		Tick:      10 * time.Millisecond,
		Start:     0,
		End:       sim.Time(2 * time.Second),
		Seed:      seed,
		CacheTTL:  sim.Time(500 * time.Millisecond),
		CacheCap:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if revoke {
		link := seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}
		clock.At(sim.Time(800*time.Millisecond), func() {
			svc.RevokeLink(clock.Now(), link, sim.Time(300*time.Millisecond))
		})
		clock.At(sim.Time(1200*time.Millisecond), func() {
			svc.Publish(clock.Now()) // lapse pass
		})
	}
	clock.Run()

	var snap bytes.Buffer
	if err := reg.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	return pool.Totals(), snap.String()
}

func TestPoolClosedLoop(t *testing.T) {
	totals, snap := poolScenario(t, 1, 7, false)
	if totals.Lookups == 0 {
		t.Fatal("no lookups happened")
	}
	if totals.Hits == 0 {
		t.Error("cache never hit despite Zipf skew")
	}
	if totals.Empties != 0 {
		t.Errorf("%d empty replies in a fully-meshed scenario", totals.Empties)
	}
	if hr := totals.HitRate(); hr <= 0 || hr > 1 {
		t.Errorf("hit rate = %v", hr)
	}
	var perShardSum uint64
	for _, v := range totals.PerShard {
		perShardSum += v
	}
	if perShardSum != totals.Lookups {
		t.Errorf("per-shard counts sum to %d, want %d", perShardSum, totals.Lookups)
	}
	if im := totals.Imbalance(); im < 1 {
		t.Errorf("imbalance = %v, must be >= 1", im)
	}
	// Closed loop: ~500 endpoints looping every ~50ms for 2s.
	if totals.Lookups < 5000 || totals.Lookups > 40000 {
		t.Errorf("lookups = %d, outside the closed-loop envelope", totals.Lookups)
	}
	if !bytes.Contains([]byte(snap), []byte("pathsrv_lookups_total")) {
		t.Error("snapshot missing pool counters")
	}
}

func TestPoolDeterministicAcrossWorkers(t *testing.T) {
	t1, s1 := poolScenario(t, 1, 7, true)
	for _, w := range []int{2, 4} {
		tw, sw := poolScenario(t, w, 7, true)
		if totalsKey(t1) != totalsKey(tw) {
			t.Fatalf("workers=%d totals differ: %+v vs %+v", w, t1, tw)
		}
		if s1 != sw {
			t.Fatalf("workers=%d telemetry snapshot differs", w)
		}
	}
}

// totalsKey projects PoolTotals onto a comparable array; the per-shard
// slice is covered by the telemetry snapshot comparison.
func totalsKey(t PoolTotals) [5]uint64 {
	return [5]uint64{t.Lookups, t.Hits, t.Empties, t.CacheEvictions, t.CacheInvalidations}
}

func TestPoolRevocationInvalidates(t *testing.T) {
	totals, _ := poolScenario(t, 1, 7, true)
	if totals.CacheInvalidations == 0 {
		t.Error("mid-run revocation invalidated nothing")
	}
}

func TestPoolSeedSensitivity(t *testing.T) {
	a, _ := poolScenario(t, 1, 7, false)
	b, _ := poolScenario(t, 1, 8, false)
	if a.Lookups == b.Lookups && a.Hits == b.Hits {
		t.Error("different seeds produced identical totals")
	}
}

func TestPoolWithoutCache(t *testing.T) {
	clock := &sim.Simulator{}
	clock.SetWorkers(1)
	svc := New(Config{})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	pool, err := NewPool(clock, svc, nil, ClientConfig{
		Endpoints: 10,
		Actors:    2,
		Sources:   []addr.IA{core1},
		Dests:     []addr.IA{leafA},
		MeanThink: 20 * time.Millisecond,
		Tick:      5 * time.Millisecond,
		End:       sim.Time(200 * time.Millisecond),
		CacheTTL:  0, // disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	totals := pool.Totals()
	if totals.Lookups == 0 {
		t.Fatal("no lookups")
	}
	if totals.Hits != 0 {
		t.Error("hits without a cache")
	}
}

func TestPoolValidation(t *testing.T) {
	clock := &sim.Simulator{}
	svc := New(Config{})
	base := ClientConfig{
		Endpoints: 1,
		Sources:   []addr.IA{core1},
		Dests:     []addr.IA{leafA},
		End:       sim.Time(time.Second),
	}
	bad := base
	bad.Endpoints = 0
	if _, err := NewPool(clock, svc, nil, bad); err == nil {
		t.Error("zero endpoints accepted")
	}
	bad = base
	bad.Sources = nil
	if _, err := NewPool(clock, svc, nil, bad); err == nil {
		t.Error("no sources accepted")
	}
	bad = base
	bad.End = 0
	if _, err := NewPool(clock, svc, nil, bad); err == nil {
		t.Error("empty time window accepted")
	}
	// Actors are clamped to the endpoint count.
	p, err := NewPool(clock, svc, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Actors() != 1 {
		t.Errorf("actors = %d, want clamped to 1", p.Actors())
	}
}
