// Package pathsrv is the path-lookup serving layer: a sharded,
// concurrent path-query service layered over the pathdb/beaconing
// control plane, sized for a closed-loop population of millions of
// endpoints (paper §3 "Deployment", §4.1 "Endpoint Path Lookup").
//
// # Architecture
//
// The service is read-mostly. Destinations are hashed onto a fixed set
// of shards; each shard's serving state is an immutable snapshot reached
// through an atomic pointer, so a lookup is two pointer loads and a map
// probe — no locks, no allocation on the fast path. All writes
// (segment registrations from beacon servers, link revocations and
// reinstatements from the chaos/fault plane) mutate a writer-owned
// master copy and batch into epoch publications: Publish rebuilds only
// the dirty shards and swaps their snapshot pointers. Lookups observe
// either the old or the new epoch, never a torn mix.
//
// Client-side, a Cache (one per client actor or reader goroutine)
// memoizes (src, dst) replies. Invalidation is precise rather than
// flush-everything: every publication diffs each rebuilt pair against
// the previous snapshot and evicts exactly the cached pairs whose path
// set changed — so a revocation storm invalidates the affected pairs
// and nothing else.
//
// # Determinism and concurrency contract
//
// In simulation the writer side (Register, RevokeLink, ReinstateLink,
// Publish) runs in serial simulator events, while lookups run on
// parallel client-actor shards and touch only immutable snapshots plus
// the actor's own cache and telemetry cells — worker-count-invariant by
// the same discipline as internal/sim. Outside the simulation the same
// structure holds with goroutines: one writer, any number of readers
// with local caches (see ReadBench). Registered caches are walked by
// the writer during publication, so a concurrent reader must use an
// unregistered local cache (NewLocalCache).
package pathsrv

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
)

// Config parameterizes a Service.
type Config struct {
	// Shards is the destination shard count, clamped to [1, 64]
	// (default 16). The shard of a destination is a pure function of its
	// IA, so shard assignment never depends on execution order.
	Shards int
	// RevocationTTL bounds how long a revocation without explicit
	// reinstatement hides segments (default 2s of virtual time);
	// RevokeLink callers may override per call.
	RevocationTTL sim.Time
	// Clock, if set, timestamps trace events (serial context only).
	Clock *sim.Simulator
	// Telemetry, if set, receives the service's counters and gauges.
	Telemetry *telemetry.Registry
}

// pairKey identifies one (src, dst) query.
type pairKey struct {
	src, dst addr.IA
}

// pairEntry is one pair's immutable serving state inside a snapshot.
type pairEntry struct {
	segs []*seg.PCB
	// minExpiry is the earliest expiry among segs: before it the slice
	// can be served as-is with no per-segment expiry checks.
	minExpiry sim.Time
}

// snapshot is one shard's immutable serving state. A new snapshot is
// built for every mutation batch that touches the shard and installed
// with an atomic pointer swap; lookups never see it change.
type snapshot struct {
	epoch uint64
	pairs map[pairKey]pairEntry
	// minExpiry is the earliest segment expiry across all pairs (0 when
	// empty): past it the snapshot holds dead segments and the next
	// publication must rebuild the shard even without new registrations.
	minExpiry sim.Time
}

var emptySnapshot = &snapshot{pairs: map[pairKey]pairEntry{}}

// Service is the sharded path-query service.
type Service struct {
	nshards uint32
	revTTL  sim.Time

	// snaps are the per-shard atomic snapshot pointers — the only state
	// the lookup path touches.
	snaps []atomic.Pointer[snapshot]

	// Writer-owned state. Only the writer (serial simulator events, or
	// the single writer goroutine outside the sim) may touch it.
	master     []map[pairKey][]*seg.PCB
	linkShards map[seg.LinkKey]uint64 // link -> bitmask of shards storing it
	revoked    map[seg.LinkKey]sim.Time
	dirty      uint64 // bitmask of shards needing a rebuild
	epoch      uint64
	caches     []*Cache

	// Stats mirror the telemetry counters for registry-free use.
	Registrations, Refreshes, Publishes, PublishedShards uint64
	Revocations, Reinstatements, Invalidations, Rejected uint64

	clock                               *sim.Simulator
	cReg, cRefresh, cPub, cRev, cRein   *telemetry.Cell
	cInvPublish, cInvRevoke, cInvRetire *telemetry.Cell
}

// New creates a Service.
func New(cfg Config) *Service {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	if n > 64 {
		n = 64
	}
	ttl := cfg.RevocationTTL
	if ttl <= 0 {
		ttl = 2 * sim.Time(1e9)
	}
	s := &Service{
		nshards:    uint32(n),
		revTTL:     ttl,
		snaps:      make([]atomic.Pointer[snapshot], n),
		master:     make([]map[pairKey][]*seg.PCB, n),
		linkShards: map[seg.LinkKey]uint64{},
		revoked:    map[seg.LinkKey]sim.Time{},
		clock:      cfg.Clock,
	}
	for i := range s.snaps {
		s.snaps[i].Store(emptySnapshot)
		s.master[i] = map[pairKey][]*seg.PCB{}
	}
	s.setTelemetry(cfg.Telemetry)
	return s
}

func (s *Service) setTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.cReg = reg.Counter("pathsrv_registrations_total").Cell(0)
	s.cRefresh = reg.Counter("pathsrv_registration_refreshes_total").Cell(0)
	s.cPub = reg.Counter("pathsrv_publishes_total").Cell(0)
	s.cRev = reg.Counter("pathsrv_revocations_total").Cell(0)
	s.cRein = reg.Counter("pathsrv_reinstatements_total").Cell(0)
	s.cInvPublish = reg.Counter(`pathsrv_cache_invalidations_total{reason="publish"}`).Cell(0)
	s.cInvRevoke = reg.Counter(`pathsrv_cache_invalidations_total{reason="revoke"}`).Cell(0)
	s.cInvRetire = reg.Counter(`pathsrv_cache_invalidations_total{reason="reinstate"}`).Cell(0)
	reg.GaugeFunc("pathsrv_epoch", func() float64 { return float64(s.epoch) })
	reg.GaugeFunc("pathsrv_revoked_links", func() float64 { return float64(len(s.revoked)) })
	reg.GaugeFunc("pathsrv_snapshot_pairs", func() float64 {
		total := 0
		for i := range s.snaps {
			total += len(s.snaps[i].Load().pairs)
		}
		return float64(total)
	})
}

// NumShards returns the destination shard count.
func (s *Service) NumShards() int { return int(s.nshards) }

// Epoch returns the current publication epoch (writer context).
func (s *Service) Epoch() uint64 { return s.epoch }

// ShardOf maps a destination IA to its shard, a pure function usable
// from any context.
func (s *Service) ShardOf(dst addr.IA) uint32 {
	// splitmix64 finalizer: IAs are near-sequential, so mix hard before
	// reducing to avoid systematically imbalanced shards.
	x := dst.Uint64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x % uint64(s.nshards))
}

// trace emits a service lifecycle event (writer/serial context only).
func (s *Service) trace(kind telemetry.EventKind, actor, subject, aux uint64, reason string) {
	if s.clock == nil {
		return
	}
	s.clock.Trace(sim.SerialShard, telemetry.Event{
		Kind: kind, Actor: actor, Subject: subject, Aux: aux, Reason: reason,
	})
}

// DetachClock disconnects the simulator (and thereby trace emission) —
// call before driving the writer side from a non-simulator goroutine,
// e.g. the churn writer of a wall-clock read benchmark.
func (s *Service) DetachClock() { s.clock = nil }

// Register records a path segment under (origin, leaf): subsequent
// lookups for that pair will serve it after the next publication.
// Re-registering a known path refreshes its expiry in place. Writer
// context only.
func (s *Service) Register(now sim.Time, p *seg.PCB) error {
	if p.Expired(now) {
		s.Rejected++
		return fmt.Errorf("pathsrv: registering expired segment %v", p)
	}
	key := pairKey{src: p.Origin(), dst: p.Leaf()}
	if key.src == key.dst {
		s.Rejected++
		return fmt.Errorf("pathsrv: degenerate segment %v", p)
	}
	sh := s.ShardOf(key.dst)
	list, mutated, fresh := upsert(s.master[sh][key], p)
	if !mutated {
		return nil
	}
	s.master[sh][key] = list
	s.dirty |= 1 << sh
	if fresh {
		s.Registrations++
		s.cReg.Inc()
		mask := uint64(1) << sh
		for _, lk := range p.Links() {
			s.linkShards[lk] |= mask
		}
	} else {
		s.Refreshes++
		s.cRefresh.Inc()
	}
	return nil
}

// upsert inserts p into a (NumHops, HopsKey)-ordered list or refreshes
// the matching path's expiry in place. It reports whether the list
// changed at all and whether p was a previously unknown path.
func upsert(list []*seg.PCB, p *seg.PCB) (out []*seg.PCB, mutated, fresh bool) {
	key := p.HopsKey()
	for i, old := range list {
		if old.HopsKey() == key {
			if p.Info.Expiry > old.Info.Expiry {
				list[i] = p
				return list, true, false
			}
			return list, false, false
		}
	}
	i := sort.Search(len(list), func(i int) bool { return !segLess(list[i], p) })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = p
	return list, true, true
}

// segLess is the canonical reply order (matches pathdb): fewest hops
// first, then by hops key.
func segLess(a, b *seg.PCB) bool {
	if a.NumHops() != b.NumHops() {
		return a.NumHops() < b.NumHops()
	}
	return a.HopsKey() < b.HopsKey()
}

// Lookup answers a (src, dst) path query from the current snapshot —
// safe from any number of concurrent readers. It returns the reply
// segments (read-only, shared with the snapshot) and the earliest
// expiry among them: before that instant the exact same reply would be
// served again, which is what caches key their freshness on.
func (s *Service) Lookup(now sim.Time, src, dst addr.IA) ([]*seg.PCB, sim.Time) {
	snap := s.snaps[s.ShardOf(dst)].Load()
	e, ok := snap.pairs[pairKey{src: src, dst: dst}]
	if !ok {
		return nil, 0
	}
	if now < e.minExpiry {
		return e.segs, e.minExpiry
	}
	// Some segment expired since publication: filter a copy.
	var out []*seg.PCB
	min := sim.Time(0)
	for _, p := range e.segs {
		if p.Expired(now) {
			continue
		}
		if min == 0 || p.Info.Expiry < min {
			min = p.Info.Expiry
		}
		out = append(out, p)
	}
	return out, min
}

// RevokeLink hides every stored segment traversing link until the
// revocation lapses (now+ttl; ttl <= 0 uses the configured default) or
// the link is explicitly reinstated. Affected shards are republished
// immediately — revocation freshness does not wait for the next batch
// publication — and caches holding affected pairs are invalidated.
// Returns the number of pairs whose reply changed. Writer context only.
func (s *Service) RevokeLink(now sim.Time, link seg.LinkKey, ttl sim.Time) int {
	if ttl <= 0 {
		ttl = s.revTTL
	}
	exp := now + ttl
	if cur, ok := s.revoked[link]; !ok || exp > cur {
		s.revoked[link] = exp
	}
	s.Revocations++
	s.cRev.Inc()
	s.trace(telemetry.PathRevoked, link.IA.Uint64(), uint64(link.If), 0, "serve")
	mask := s.linkShards[link]
	if mask == 0 {
		return 0
	}
	s.dirty |= mask
	return s.publish(now, "revoke", s.cInvRevoke)
}

// ReinstateLink lifts a revocation early (the link healed) and
// republishes the affected shards. Writer context only.
func (s *Service) ReinstateLink(now sim.Time, link seg.LinkKey) int {
	if _, ok := s.revoked[link]; !ok {
		return 0
	}
	delete(s.revoked, link)
	s.Reinstatements++
	s.cRein.Inc()
	s.trace(telemetry.PathReinstated, link.IA.Uint64(), uint64(link.If), 0, "serve")
	mask := s.linkShards[link]
	if mask == 0 {
		return 0
	}
	s.dirty |= mask
	return s.publish(now, "reinstate", s.cInvRetire)
}

// Publish applies the accumulated registration batch (and any lapsed
// revocations) by rebuilding every dirty shard and swapping its
// snapshot. A no-op when nothing changed. Writer context only.
func (s *Service) Publish(now sim.Time) int {
	s.expireRevocations(now)
	// Shards whose published snapshot now contains dead segments need a
	// pruning rebuild even without new registrations.
	for sh := uint32(0); sh < s.nshards; sh++ {
		if snap := s.snaps[sh].Load(); snap.minExpiry > 0 && now >= snap.minExpiry {
			s.dirty |= 1 << sh
		}
	}
	if s.dirty == 0 {
		return 0
	}
	return s.publish(now, "publish", s.cInvPublish)
}

// expireRevocations lifts revocations whose TTL passed, in sorted link
// order so trace output is deterministic.
func (s *Service) expireRevocations(now sim.Time) {
	var lapsed []seg.LinkKey
	for lk, exp := range s.revoked {
		if now >= exp {
			lapsed = append(lapsed, lk)
		}
	}
	if len(lapsed) == 0 {
		return
	}
	sort.Slice(lapsed, func(i, j int) bool {
		if lapsed[i].IA != lapsed[j].IA {
			return lapsed[i].IA.Less(lapsed[j].IA)
		}
		return lapsed[i].If < lapsed[j].If
	})
	for _, lk := range lapsed {
		delete(s.revoked, lk)
		s.Reinstatements++
		s.cRein.Inc()
		s.dirty |= s.linkShards[lk]
		s.trace(telemetry.PathReinstated, lk.IA.Uint64(), uint64(lk.If), 0, "lapse")
	}
}

// publish rebuilds the dirty shards, swaps their snapshots under a new
// epoch, and invalidates cached pairs whose reply changed.
func (s *Service) publish(now sim.Time, reason string, invCell *telemetry.Cell) int {
	s.epoch++
	s.Publishes++
	s.cPub.Inc()
	var changed []pairKey
	for sh := uint32(0); sh < s.nshards; sh++ {
		if s.dirty&(1<<sh) == 0 {
			continue
		}
		changed = s.rebuild(sh, now, changed)
		s.PublishedShards++
		s.trace(telemetry.SnapshotPublished, uint64(sh), s.epoch,
			uint64(len(s.snaps[sh].Load().pairs)), reason)
	}
	s.dirty = 0
	if len(changed) > 0 {
		s.invalidate(changed, invCell)
	}
	return len(changed)
}

// rebuild constructs shard sh's new snapshot from the master copy,
// dropping expired segments for good and hiding revoked ones, and
// appends every pair whose visible path set changed to changed.
func (s *Service) rebuild(sh uint32, now sim.Time, changed []pairKey) []pairKey {
	old := s.snaps[sh].Load()
	master := s.master[sh]
	pairs := make(map[pairKey]pairEntry, len(master))
	var shardMin sim.Time
	for key, list := range master {
		// Prune expired segments from the master copy in place; they can
		// never come back.
		live := list[:0]
		for _, p := range list {
			if !p.Expired(now) {
				live = append(live, p)
			}
		}
		if len(live) == 0 {
			delete(master, key)
			if _, had := old.pairs[key]; had {
				changed = append(changed, key)
			}
			continue
		}
		s.master[sh][key] = live

		// The snapshot must own its slice: master backing arrays are
		// mutated in place by later upserts and prunes while old
		// snapshots may still be read concurrently.
		visible := make([]*seg.PCB, 0, len(live))
		for _, p := range live {
			if len(s.revoked) > 0 && segmentRevoked(p, s.revoked) {
				continue
			}
			visible = append(visible, p)
		}
		if len(visible) == 0 {
			if _, had := old.pairs[key]; had {
				changed = append(changed, key)
			}
			continue
		}
		min := visible[0].Info.Expiry
		for _, p := range visible[1:] {
			if p.Info.Expiry < min {
				min = p.Info.Expiry
			}
		}
		pairs[key] = pairEntry{segs: visible, minExpiry: min}
		if shardMin == 0 || min < shardMin {
			shardMin = min
		}
		if !samePathSet(old.pairs[key].segs, visible) {
			changed = append(changed, key)
		}
	}
	// Pairs present before but gone from master entirely (already pruned
	// in an earlier rebuild) were handled above; install the new epoch.
	s.snaps[sh].Store(&snapshot{epoch: s.epoch, pairs: pairs, minExpiry: shardMin})
	return changed
}

func segmentRevoked(p *seg.PCB, revoked map[seg.LinkKey]sim.Time) bool {
	for _, lk := range p.Links() {
		if _, ok := revoked[lk]; ok {
			return true
		}
	}
	return false
}

// samePathSet reports whether two canonical-ordered replies describe the
// same set of paths (expiry refreshes do not count as a change: a cached
// older reply remains correct until its own segments expire).
func samePathSet(a, b []*seg.PCB) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && a[i].HopsKey() != b[i].HopsKey() {
			return false
		}
	}
	return true
}

// invalidate evicts the changed pairs from every registered cache, in
// cache registration order.
func (s *Service) invalidate(pairs []pairKey, cell *telemetry.Cell) {
	for _, c := range s.caches {
		for _, k := range pairs {
			if _, ok := c.entries[k]; ok {
				delete(c.entries, k)
				c.Invalidations++
				s.Invalidations++
				cell.Inc()
			}
		}
	}
}

// Digest hashes the full serving state — every shard's snapshot in
// canonical order, plus active revocations — extending the repo's
// fingerprint guarantee to the serving layer. Writer context only.
func (s *Service) Digest() [sha256.Size]byte {
	h := sha256.New()
	for sh := uint32(0); sh < s.nshards; sh++ {
		s.writeShard(h, sh)
	}
	s.writeRevoked(h)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// ShardDigest hashes one shard's published snapshot (epoch included) —
// the unit of comparison in anti-entropy rounds. Writer context only.
func (s *Service) ShardDigest(sh uint32) [sha256.Size]byte {
	h := sha256.New()
	s.writeShard(h, sh)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// RevocationDigest hashes the active revocation set. Writer context only.
func (s *Service) RevocationDigest() [sha256.Size]byte {
	h := sha256.New()
	s.writeRevoked(h)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// writeShard streams shard sh's snapshot in canonical order into h.
func (s *Service) writeShard(h io.Writer, sh uint32) {
	var scratch [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	snap := s.snaps[sh].Load()
	w64(uint64(sh))
	w64(snap.epoch)
	keys := sortedPairs(snap.pairs)
	for _, k := range keys {
		e := snap.pairs[k]
		w64(k.src.Uint64())
		w64(k.dst.Uint64())
		w64(uint64(e.minExpiry))
		w64(uint64(len(e.segs)))
		for _, p := range e.segs {
			w64(uint64(p.Info.Expiry))
			h.Write([]byte(p.HopsKey()))
		}
	}
}

// writeRevoked streams the active revocations in canonical order into h.
func (s *Service) writeRevoked(h io.Writer) {
	var scratch [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	for _, lk := range sortedLinks(s.revoked) {
		w64(lk.IA.Uint64())
		w64(uint64(lk.If))
		w64(uint64(s.revoked[lk]))
	}
}

// sortedPairs returns m's keys in canonical (dst, src) order.
func sortedPairs[V any](m map[pairKey]V) []pairKey {
	keys := make([]pairKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dst != keys[j].dst {
			return keys[i].dst.Less(keys[j].dst)
		}
		return keys[i].src.Less(keys[j].src)
	})
	return keys
}

// sortedLinks returns m's keys in canonical (IA, If) order.
func sortedLinks[V any](m map[seg.LinkKey]V) []seg.LinkKey {
	keys := make([]seg.LinkKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].IA != keys[j].IA {
			return keys[i].IA.Less(keys[j].IA)
		}
		return keys[i].If < keys[j].If
	})
	return keys
}

// AttachClock re-attaches a simulator to a recovered service so trace
// emission resumes (WAL replay runs clockless to avoid re-emitting the
// journaled mutations' trace events). Writer context only.
func (s *Service) AttachClock(clock *sim.Simulator) { s.clock = clock }

// adoptCaches re-registers client caches on a recovered service: the
// caches survive the crash (they live with the clients), the service
// they were registered with did not.
func (s *Service) adoptCaches(cs []*Cache) {
	s.caches = append(s.caches[:0], cs...)
}
