package pathsrv

import (
	"scionmpr/internal/chaos"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
)

// WireChaos feeds the fault plane into the serving layer: when the
// chaos engine fails a link, both of its directed interfaces are
// revoked in the service (hiding every served path across the link
// within one publication), and when the link heals they are reinstated.
// Existing engine hooks (e.g. beacon-server revocation feeds) are
// chained, not replaced. ttl <= 0 uses the service's default revocation
// TTL — the backstop in case the restore event is lost.
func WireChaos(clock *sim.Simulator, eng *chaos.Engine, topo *topology.Graph, svc *Service, ttl sim.Time) {
	keys := func(id topology.LinkID) (seg.LinkKey, seg.LinkKey, bool) {
		l := topo.LinkByID(id)
		if l == nil {
			return seg.LinkKey{}, seg.LinkKey{}, false
		}
		return seg.LinkKey{IA: l.A, If: l.AIf}, seg.LinkKey{IA: l.B, If: l.BIf}, true
	}
	prevFail, prevRestore := eng.OnFail, eng.OnRestore
	eng.OnFail = func(id topology.LinkID) {
		if prevFail != nil {
			prevFail(id)
		}
		if a, b, ok := keys(id); ok {
			now := clock.Now()
			svc.RevokeLink(now, a, ttl)
			svc.RevokeLink(now, b, ttl)
		}
	}
	eng.OnRestore = func(id topology.LinkID) {
		if prevRestore != nil {
			prevRestore(id)
		}
		if a, b, ok := keys(id); ok {
			now := clock.Now()
			svc.ReinstateLink(now, a)
			svc.ReinstateLink(now, b)
		}
	}
}

// WireChaosFleet is WireChaos for a replica fleet: link failures revoke
// (and healings reinstate) both directed interfaces on every up replica.
// Crashed replicas miss the events — the journal gap anti-entropy heals.
func WireChaosFleet(clock *sim.Simulator, eng *chaos.Engine, topo *topology.Graph, fleet *Fleet, ttl sim.Time) {
	keys := func(id topology.LinkID) (seg.LinkKey, seg.LinkKey, bool) {
		l := topo.LinkByID(id)
		if l == nil {
			return seg.LinkKey{}, seg.LinkKey{}, false
		}
		return seg.LinkKey{IA: l.A, If: l.AIf}, seg.LinkKey{IA: l.B, If: l.BIf}, true
	}
	prevFail, prevRestore := eng.OnFail, eng.OnRestore
	eng.OnFail = func(id topology.LinkID) {
		if prevFail != nil {
			prevFail(id)
		}
		if a, b, ok := keys(id); ok {
			now := clock.Now()
			fleet.RevokeLink(now, a, ttl)
			fleet.RevokeLink(now, b, ttl)
		}
	}
	eng.OnRestore = func(id topology.LinkID) {
		if prevRestore != nil {
			prevRestore(id)
		}
		if a, b, ok := keys(id); ok {
			now := clock.Now()
			fleet.ReinstateLink(now, a)
			fleet.ReinstateLink(now, b)
		}
	}
}
