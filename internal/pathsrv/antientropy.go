package pathsrv

// Anti-entropy: replicas in a fleet publish independently, so a replica
// that was crashed (or restarted from a stale WAL tail) diverges from
// its peers. A periodic sweep reconverges the fleet without replaying
// history: followers compare digests with a leader and pull only the
// divergent shards.
//
// The protocol is pull-based and deterministic:
//
//  1. Leader election is a pure function of serial state: the up
//     replica with the highest publication epoch, lowest ID winning
//     ties. (The epoch counts publications survived, so a freshly
//     recovered replica — which missed publishes while dark — never
//     outranks a replica that saw them all.)
//  2. Every other up replica compares its RevocationDigest and each
//     shard's ShardDigest against the leader's and pulls exactly the
//     divergent pieces: the revocation set wholesale, and per divergent
//     shard the leader's published snapshot (shared by pointer —
//     snapshots are immutable) plus a deep copy of the leader's master
//     lists (slices copied; *seg.PCB values are immutable and shared).
//  3. A follower that pulled anything adopts the leader's epoch counter
//     and link-shard index, then checkpoints its WAL — so a crash right
//     after a sync recovers to the synced state, not the pre-sync one.
//
// One round after the last crash recovery, every up replica's Digest
// equals the leader's (bounded staleness: one sweep period), which is
// the invariant TestKillRecoverTwinDigest and TestAntiEntropyBoundedStaleness
// assert.

import (
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
)

// SyncStats describes one anti-entropy round.
type SyncStats struct {
	// Leader is the elected replica's ID, -1 when no replica is up.
	Leader int
	// Pulls counts followers that pulled anything; PulledShards the
	// total shards transferred; PulledRevocations the followers that
	// copied the revocation set.
	Pulls, PulledShards, PulledRevocations int
}

// Sync runs one anti-entropy round over the fleet. Serial context only.
func (f *Fleet) Sync(now sim.Time) SyncStats {
	st := SyncStats{Leader: -1}
	leader := f.electLeader()
	if leader == nil {
		return st
	}
	st.Leader = leader.ID
	f.Rounds++
	f.cRounds.Inc()
	for _, r := range f.reps {
		if r == leader || r.down {
			continue
		}
		shards, revs := r.pullFrom(leader)
		if shards == 0 && !revs {
			continue
		}
		st.Pulls++
		st.PulledShards += shards
		if revs {
			st.PulledRevocations++
		}
		f.Pulls++
		f.PulledShards += uint64(shards)
		f.cPulls.Inc()
		f.cPullShards.Add(uint64(shards))
		f.trace(telemetry.AntiEntropyPull, uint64(r.ID), uint64(leader.ID), uint64(shards))
		// Make the synced state durable: a crash between this round and
		// the next must not resurrect the divergence.
		r.checkpoint(now)
	}
	return st
}

// electLeader picks the up replica with the highest publication epoch,
// lowest ID breaking ties; nil when the whole fleet is down.
func (f *Fleet) electLeader() *Replica {
	var best *Replica
	for _, r := range f.reps {
		if r.down {
			continue
		}
		if best == nil || r.svc.epoch > best.svc.epoch {
			best = r
		}
	}
	return best
}

// pullFrom copies every divergent piece of state from leader into r's
// service, returning how many shards were pulled and whether the
// revocation set was.
func (r *Replica) pullFrom(leader *Replica) (shards int, revocations bool) {
	src, dst := leader.svc, r.svc
	if src.RevocationDigest() != dst.RevocationDigest() {
		dst.revoked = make(map[seg.LinkKey]sim.Time, len(src.revoked))
		for lk, exp := range src.revoked {
			dst.revoked[lk] = exp
		}
		revocations = true
	}
	for sh := uint32(0); sh < src.nshards; sh++ {
		if src.ShardDigest(sh) == dst.ShardDigest(sh) {
			continue
		}
		// Published state: snapshots are immutable, share the pointer.
		dst.snaps[sh].Store(src.snaps[sh].Load())
		// Writer state: master lists are mutated in place by future
		// upserts and prunes, so copy the slices (segments themselves are
		// immutable and shared).
		master := make(map[pairKey][]*seg.PCB, len(src.master[sh]))
		for key, list := range src.master[sh] {
			master[key] = append([]*seg.PCB(nil), list...)
		}
		dst.master[sh] = master
		if src.dirty&(1<<sh) != 0 {
			dst.dirty |= 1 << sh
		} else {
			dst.dirty &^= 1 << sh
		}
		shards++
	}
	if shards == 0 && !revocations {
		return 0, false
	}
	// Adopt the leader's epoch counter and link index so future
	// publications assign identical epochs and dirty masks on both —
	// without this, a recovered replica would re-diverge on the very
	// next publish even with identical content.
	dst.epoch = src.epoch
	dst.linkShards = make(map[seg.LinkKey]uint64, len(src.linkShards))
	for lk, mask := range src.linkShards {
		dst.linkShards[lk] = mask
	}
	return shards, revocations
}
