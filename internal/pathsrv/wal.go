package pathsrv

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// WAL is a path-server replica's snapshot write-ahead log: every writer
// mutation (Register, RevokeLink, ReinstateLink, Publish) is journaled
// as one CRC-framed record before it is applied, and periodic checkpoint
// records capture the full serving state so recovery is checkpoint-load
// plus tail replay rather than a full-history replay.
//
// # Frame format
//
// Each record is length-prefixed and checksummed:
//
//	u32  payload length n
//	u32  CRC-32 (IEEE) of the payload
//	n bytes payload: kind (u8) | virtual time (u64) | body
//
// All integers are big-endian. The body encodings are fixed-width
// except segments, which reuse the PCB wire codec (seg.Encode/Decode),
// and checkpoints, which serialize the service state in canonical
// order — so a WAL's bytes are a pure function of the mutation history.
//
// # Recovery semantics
//
// Replay scans frames in order, resetting to the most recent checkpoint
// it encounters and applying every later mutation at its recorded
// virtual time. A torn tail (crash mid-append) or a corrupt record
// (CRC mismatch, bogus length, undecodable body) ends the replay at the
// last good frame: everything before it is recovered, everything at and
// after it is reported as truncated, and replay never panics on
// arbitrary input (see FuzzWALReplay).
//
// The WAL models the replica's durable disk: in simulation it is an
// in-memory byte buffer that survives the crash of the Service built
// over it.
type WAL struct {
	buf []byte
	// Records counts frames appended since creation or the last
	// checkpoint compaction (the checkpoint frame itself included).
	Records uint64
	// Checkpoints counts checkpoint compactions performed.
	Checkpoints uint64
}

// NewWAL creates an empty log.
func NewWAL() *WAL { return &WAL{} }

// Bytes returns the raw log (aliased, not a copy): the "disk image" a
// recovery reads. Append invalidates it.
func (w *WAL) Bytes() []byte { return w.buf }

// Len returns the log size in bytes.
func (w *WAL) Len() int { return len(w.buf) }

// Record kinds.
const (
	walRegister   = 1
	walRevoke     = 2
	walReinstate  = 3
	walPublish    = 4
	walCheckpoint = 5
)

const walFrameHeader = 8 // u32 length + u32 CRC

// appendFrame frames payload (already kind|time|body) onto the log.
func (w *WAL) appendFrame(payload []byte) {
	var hdr [walFrameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.Records++
}

// payloadHead appends the kind and timestamp prefix shared by every
// record to a scratch buffer.
func payloadHead(dst []byte, kind byte, now sim.Time) []byte {
	dst = append(dst, kind)
	return binary.BigEndian.AppendUint64(dst, uint64(now))
}

// AppendRegister journals a Register(now, p) mutation.
func (w *WAL) AppendRegister(now sim.Time, p *seg.PCB) {
	payload := payloadHead(make([]byte, 0, 9+p.WireLen()), walRegister, now)
	w.appendFrame(p.AppendEncode(payload))
}

// AppendRevoke journals a RevokeLink(now, link, ttl) mutation.
func (w *WAL) AppendRevoke(now sim.Time, link seg.LinkKey, ttl sim.Time) {
	payload := payloadHead(make([]byte, 0, 9+18), walRevoke, now)
	payload = binary.BigEndian.AppendUint64(payload, link.IA.Uint64())
	payload = binary.BigEndian.AppendUint16(payload, uint16(link.If))
	payload = binary.BigEndian.AppendUint64(payload, uint64(ttl))
	w.appendFrame(payload)
}

// AppendReinstate journals a ReinstateLink(now, link) mutation.
func (w *WAL) AppendReinstate(now sim.Time, link seg.LinkKey) {
	payload := payloadHead(make([]byte, 0, 9+10), walReinstate, now)
	payload = binary.BigEndian.AppendUint64(payload, link.IA.Uint64())
	payload = binary.BigEndian.AppendUint16(payload, uint16(link.If))
	w.appendFrame(payload)
}

// AppendPublish journals a Publish(now) batch publication.
func (w *WAL) AppendPublish(now sim.Time) {
	w.appendFrame(payloadHead(make([]byte, 0, 9), walPublish, now))
}

// Checkpoint compacts the log: the entire serving state of svc is
// serialized as one checkpoint record replacing everything journaled so
// far, so recovery cost is bounded by the state size plus the mutation
// tail since the last checkpoint.
func (w *WAL) Checkpoint(now sim.Time, svc *Service) {
	payload := payloadHead(make([]byte, 0, 1024), walCheckpoint, now)
	payload = appendCheckpoint(payload, svc)
	w.buf = w.buf[:0]
	w.Records = 0
	w.appendFrame(payload)
	w.Checkpoints++
}

// appendCheckpoint serializes svc's full writer-side and published
// state in canonical order:
//
//	u64 epoch | u32 nshards
//	per shard:
//	  u64 snapshot epoch | u64 snapshot minExpiry | u64 dirty bit | u32 npairs
//	  per pair (sorted by dst, src):
//	    u64 src | u64 dst | u64 pair minExpiry
//	    u16 nmaster, per master seg: u32 len | PCB wire bytes
//	    u16 nvisible, per visible seg: u16 master index, or 0xffff
//	        followed by u32 len | PCB wire bytes when the snapshot holds
//	        a segment no longer in the master list (refreshed since the
//	        shard's last rebuild)
//	u32 nrevoked, per entry (sorted): u64 IA | u16 If | u64 expiry
//	u32 nlinks,   per entry (sorted): u64 IA | u16 If | u64 shard mask
func appendCheckpoint(dst []byte, svc *Service) []byte {
	dst = binary.BigEndian.AppendUint64(dst, svc.epoch)
	dst = binary.BigEndian.AppendUint32(dst, svc.nshards)
	for sh := uint32(0); sh < svc.nshards; sh++ {
		snap := svc.snaps[sh].Load()
		dst = binary.BigEndian.AppendUint64(dst, snap.epoch)
		dst = binary.BigEndian.AppendUint64(dst, uint64(snap.minExpiry))
		dirty := uint64(0)
		if svc.dirty&(1<<sh) != 0 {
			dirty = 1
		}
		dst = binary.BigEndian.AppendUint64(dst, dirty)

		// Every snapshot pair key still exists in master (pairs are only
		// deleted during a rebuild, which also replaces the snapshot), so
		// the master pair list is the outer structure and snapshot
		// entries reference into it where the pointers still match.
		master := svc.master[sh]
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(master)))
		for _, key := range sortedPairs(master) {
			list := master[key]
			dst = binary.BigEndian.AppendUint64(dst, key.src.Uint64())
			dst = binary.BigEndian.AppendUint64(dst, key.dst.Uint64())
			entry, inSnap := snap.pairs[key]
			dst = binary.BigEndian.AppendUint64(dst, uint64(entry.minExpiry))
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(list)))
			for _, p := range list {
				dst = binary.BigEndian.AppendUint32(dst, uint32(p.WireLen()))
				dst = p.AppendEncode(dst)
			}
			if !inSnap {
				dst = binary.BigEndian.AppendUint16(dst, 0)
				continue
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(entry.segs)))
			for _, p := range entry.segs {
				idx := -1
				for i, m := range list {
					if m == p {
						idx = i
						break
					}
				}
				if idx >= 0 {
					dst = binary.BigEndian.AppendUint16(dst, uint16(idx))
				} else {
					dst = binary.BigEndian.AppendUint16(dst, 0xffff)
					dst = binary.BigEndian.AppendUint32(dst, uint32(p.WireLen()))
					dst = p.AppendEncode(dst)
				}
			}
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(svc.revoked)))
	for _, lk := range sortedLinks(svc.revoked) {
		dst = binary.BigEndian.AppendUint64(dst, lk.IA.Uint64())
		dst = binary.BigEndian.AppendUint16(dst, uint16(lk.If))
		dst = binary.BigEndian.AppendUint64(dst, uint64(svc.revoked[lk]))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(svc.linkShards)))
	for _, lk := range sortedLinks(svc.linkShards) {
		dst = binary.BigEndian.AppendUint64(dst, lk.IA.Uint64())
		dst = binary.BigEndian.AppendUint16(dst, uint16(lk.If))
		dst = binary.BigEndian.AppendUint64(dst, svc.linkShards[lk])
	}
	return dst
}

// RecoverStats reports what a replay consumed and what it discarded.
type RecoverStats struct {
	// Records is the number of good frames applied (checkpoints
	// included); Checkpoints how many of them were checkpoint loads.
	Records, Checkpoints uint64
	// TruncatedBytes is the length of the discarded tail: zero for a
	// clean log, positive when the scan hit a torn or corrupt frame.
	TruncatedBytes int
	// Truncated reports whether the tail was discarded.
	Truncated bool
}

// Recover rebuilds a Service from a WAL image by loading the last
// checkpoint and replaying the mutation tail at the recorded virtual
// times. It follows stop-at-first-bad-frame semantics: a torn or
// corrupt frame ends the replay with everything before it applied (the
// durable prefix), never an error or a panic. The returned service has
// no clock, telemetry, or registered caches — the caller re-attaches
// them (see Replica.Restart).
//
// cfg must carry the same Shards and RevocationTTL the journaling
// service ran with; Clock and Telemetry are ignored during replay.
func Recover(data []byte, cfg Config) (*Service, RecoverStats) {
	cfg.Clock = nil
	cfg.Telemetry = nil
	svc := New(cfg)
	var st RecoverStats
	off := 0
	for {
		if len(data)-off < walFrameHeader {
			break
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n < 9 || n > len(data)-off-walFrameHeader {
			break
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		next, ok := applyRecord(svc, payload, cfg)
		if !ok {
			break
		}
		svc = next
		st.Records++
		if payload[0] == walCheckpoint {
			st.Checkpoints++
		}
		off += walFrameHeader + n
	}
	st.TruncatedBytes = len(data) - off
	st.Truncated = st.TruncatedBytes > 0
	return svc, st
}

// applyRecord applies one validated frame payload. For checkpoint
// records it returns a freshly loaded service; for mutations it applies
// to svc in place. ok is false when the body does not decode — treated
// exactly like a CRC failure by Recover.
func applyRecord(svc *Service, payload []byte, cfg Config) (*Service, bool) {
	kind := payload[0]
	now := sim.Time(binary.BigEndian.Uint64(payload[1:9]))
	body := payload[9:]
	switch kind {
	case walRegister:
		p, err := seg.Decode(body)
		if err != nil {
			return svc, false
		}
		// Registration errors (expired in flight, degenerate) were
		// counted and ignored when journaled; replay mirrors that.
		_ = svc.Register(now, p)
	case walRevoke:
		if len(body) != 18 {
			return svc, false
		}
		link := seg.LinkKey{
			IA: addr.IAFromUint64(binary.BigEndian.Uint64(body[0:8])),
			If: addr.IfID(binary.BigEndian.Uint16(body[8:10])),
		}
		svc.RevokeLink(now, link, sim.Time(binary.BigEndian.Uint64(body[10:18])))
	case walReinstate:
		if len(body) != 10 {
			return svc, false
		}
		link := seg.LinkKey{
			IA: addr.IAFromUint64(binary.BigEndian.Uint64(body[0:8])),
			If: addr.IfID(binary.BigEndian.Uint16(body[8:10])),
		}
		svc.ReinstateLink(now, link)
	case walPublish:
		if len(body) != 0 {
			return svc, false
		}
		svc.Publish(now)
	case walCheckpoint:
		loaded, err := loadCheckpoint(body, cfg)
		if err != nil {
			return svc, false
		}
		return loaded, true
	default:
		return svc, false
	}
	return svc, true
}

// ckptReader is a bounds-checked big-endian reader for checkpoint
// bodies; any overrun latches an error instead of panicking.
type ckptReader struct {
	b   []byte
	off int
	err error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("pathsrv: checkpoint truncated at %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *ckptReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *ckptReader) pcb() *seg.PCB {
	n := int(r.u32())
	body := r.take(n)
	if r.err != nil {
		return nil
	}
	p, err := seg.Decode(body)
	if err != nil {
		r.err = err
		return nil
	}
	return p
}

// loadCheckpoint rebuilds a Service from a checkpoint body. The
// decoded state is byte-for-byte the journaled one: master lists,
// per-shard snapshots with their epochs, revocations, link-shard
// bookkeeping, the dirty mask and the epoch counter.
func loadCheckpoint(body []byte, cfg Config) (*Service, error) {
	r := &ckptReader{b: body}
	epoch := r.u64()
	nshards := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if nshards == 0 || nshards > 64 {
		return nil, fmt.Errorf("pathsrv: checkpoint shard count %d", nshards)
	}
	cfg.Shards = int(nshards)
	svc := New(cfg)
	svc.epoch = epoch
	for sh := uint32(0); sh < nshards && r.err == nil; sh++ {
		snapEpoch := r.u64()
		shardMin := sim.Time(r.u64())
		if r.u64() != 0 {
			svc.dirty |= 1 << sh
		}
		npairs := int(r.u32())
		pairs := make(map[pairKey]pairEntry, npairs)
		for i := 0; i < npairs && r.err == nil; i++ {
			key := pairKey{
				src: addr.IAFromUint64(r.u64()),
				dst: addr.IAFromUint64(r.u64()),
			}
			pairMin := sim.Time(r.u64())
			nmaster := int(r.u16())
			list := make([]*seg.PCB, 0, nmaster)
			for j := 0; j < nmaster && r.err == nil; j++ {
				if p := r.pcb(); p != nil {
					list = append(list, p)
				}
			}
			if r.err != nil {
				break
			}
			svc.master[sh][key] = list
			nvis := int(r.u16())
			if nvis == 0 {
				continue
			}
			visible := make([]*seg.PCB, 0, nvis)
			for j := 0; j < nvis && r.err == nil; j++ {
				idx := r.u16()
				if idx == 0xffff {
					if p := r.pcb(); p != nil {
						visible = append(visible, p)
					}
					continue
				}
				if int(idx) >= len(list) {
					r.err = fmt.Errorf("pathsrv: checkpoint visible index %d of %d", idx, len(list))
					break
				}
				visible = append(visible, list[idx])
			}
			if r.err != nil {
				break
			}
			pairs[key] = pairEntry{segs: visible, minExpiry: pairMin}
		}
		if r.err != nil {
			break
		}
		svc.snaps[sh].Store(&snapshot{epoch: snapEpoch, pairs: pairs, minExpiry: shardMin})
	}
	nrev := int(r.u32())
	for i := 0; i < nrev && r.err == nil; i++ {
		lk := seg.LinkKey{
			IA: addr.IAFromUint64(r.u64()),
			If: addr.IfID(r.u16()),
		}
		exp := sim.Time(r.u64())
		if r.err == nil {
			svc.revoked[lk] = exp
		}
	}
	nlinks := int(r.u32())
	for i := 0; i < nlinks && r.err == nil; i++ {
		lk := seg.LinkKey{
			IA: addr.IAFromUint64(r.u64()),
			If: addr.IfID(r.u16()),
		}
		mask := r.u64()
		if r.err == nil {
			svc.linkShards[lk] = mask
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("pathsrv: checkpoint has %d trailing bytes", len(body)-r.off)
	}
	return svc, nil
}
