package pathsrv

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/pathdb"
	"scionmpr/internal/sim"
)

// BenchConfig parameterizes ReadBench, the wall-clock concurrent read
// benchmark. Unlike the simulated client pool, ReadBench measures the
// real data structure: G goroutines hammering Service.Lookup through
// local caches while (optionally) a writer mutates and republishes
// underneath. Results are volatile by construction — report them as
// volatile metrics, never fold them into fingerprints.
type BenchConfig struct {
	// Readers is the goroutine count (default GOMAXPROCS-ish callers
	// should pick; <= 0 means 4).
	Readers int
	// Ops is the lookup count per reader (default 100k).
	Ops int
	// Sources and Dests are the query population; destinations are drawn
	// Zipf(ZipfS)-skewed.
	Sources, Dests []addr.IA
	ZipfS          float64
	Seed           int64
	// CacheTTL/CacheCap configure each reader's local cache; TTL <= 0
	// disables caching so every op hits the snapshots.
	CacheTTL sim.Time
	CacheCap int
	// Now is the virtual timestamp presented to lookups (pick one well
	// before the registered segments expire).
	Now sim.Time
	// Mutate, if non-nil, runs in a dedicated writer goroutine in a loop
	// until the readers finish — e.g. a closure re-registering segments
	// and publishing, to measure reads under snapshot churn. It must not
	// touch registered caches (use only writer-side Service methods).
	Mutate func(i int)
}

// BenchResult is a ReadBench measurement.
type BenchResult struct {
	Readers   int
	Ops       uint64
	Hits      uint64
	Empties   uint64
	Mutations uint64
	Elapsed   time.Duration
	QPS       float64
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
}

// Print writes the result as one aligned block.
func (r BenchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "readers=%d ops=%d qps=%.0f hit=%.3f empty=%.4f mutations=%d p50=%v p99=%v p999=%v elapsed=%v\n",
		r.Readers, r.Ops, r.QPS, float64(r.Hits)/float64(max64(r.Ops, 1)),
		float64(r.Empties)/float64(max64(r.Ops, 1)), r.Mutations,
		r.P50, r.P99, r.P999, r.Elapsed.Round(time.Millisecond))
}

func max64(v uint64, lo uint64) uint64 {
	if v < lo {
		return lo
	}
	return v
}

// RecoveryBenchResult is a RecoveryBench measurement: wall-clock cost
// of rebuilding a service from a WAL image. Volatile by construction —
// never fold into fingerprints.
type RecoveryBenchResult struct {
	Iters       int
	WALBytes    int
	Records     uint64
	Checkpoints uint64
	// Best/Mean are per-recovery wall times across the iterations.
	Best, Mean time.Duration
	// MBps is throughput at the mean: WAL bytes consumed per second.
	MBps float64
}

// Print writes the result as one aligned block.
func (r RecoveryBenchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "iters=%d wal=%dB records=%d checkpoints=%d best=%v mean=%v replay=%.1fMB/s\n",
		r.Iters, r.WALBytes, r.Records, r.Checkpoints, r.Best, r.Mean, r.MBps)
}

// RecoveryBench measures crash recovery: it repeatedly rebuilds a
// service from the same WAL image (checkpoint load + log replay) and
// reports wall-clock replay cost. The WAL is read-only throughout, so
// iterations are independent.
func RecoveryBench(w *WAL, cfg Config, iters int) RecoveryBenchResult {
	if iters <= 0 {
		iters = 5
	}
	data := w.Bytes()
	res := RecoveryBenchResult{Iters: iters, WALBytes: len(data)}
	var total time.Duration
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		_, st := Recover(data, cfg)
		d := time.Since(t0)
		total += d
		if i == 0 || d < res.Best {
			res.Best = d
		}
		res.Records = st.Records
		res.Checkpoints = st.Checkpoints
	}
	res.Mean = total / time.Duration(iters)
	if res.Mean > 0 {
		res.MBps = float64(len(data)) / res.Mean.Seconds() / (1 << 20)
	}
	return res
}

// ReadBench runs the concurrent wall-clock read benchmark against a
// pre-populated, pre-published service.
func ReadBench(svc *Service, cfg BenchConfig) BenchResult {
	if cfg.Readers <= 0 {
		cfg.Readers = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 100_000
	}
	type readerStats struct {
		hits, empties uint64
		lat           []time.Duration
	}
	stats := make([]readerStats, cfg.Readers)
	var wg sync.WaitGroup
	var stop atomic.Bool
	var mutations uint64
	if cfg.Mutate != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				cfg.Mutate(i)
				mutations++
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	start := time.Now()
	var readers sync.WaitGroup
	for g := 0; g < cfg.Readers; g++ {
		g := g
		readers.Add(1)
		go func() {
			defer readers.Done()
			var cache *Cache
			if cfg.CacheTTL > 0 {
				cache = NewLocalCache(cfg.CacheTTL, cfg.CacheCap)
			}
			ranks := pathdb.NewZipfRanks(len(cfg.Dests), cfg.ZipfS, cfg.Seed+int64(g)*6151)
			st := &stats[g]
			st.lat = make([]time.Duration, 0, cfg.Ops)
			nsrc := len(cfg.Sources)
			for i := 0; i < cfg.Ops; i++ {
				src := cfg.Sources[i%nsrc]
				rank := ranks.Next()
				dst := cfg.Dests[rank]
				if dst == src {
					dst = cfg.Dests[(rank+1)%len(cfg.Dests)]
				}
				t0 := time.Now()
				var n int
				var hit bool
				if cache != nil {
					r, h := cache.Lookup(cfg.Now, svc, src, dst)
					n, hit = len(r), h
				} else {
					r, _ := svc.Lookup(cfg.Now, src, dst)
					n = len(r)
				}
				st.lat = append(st.lat, time.Since(t0))
				if hit {
					st.hits++
				}
				if n == 0 && dst != src {
					st.empties++
				}
			}
		}()
	}
	readers.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	res := BenchResult{Readers: cfg.Readers, Elapsed: elapsed, Mutations: mutations}
	var all []time.Duration
	for i := range stats {
		res.Ops += uint64(len(stats[i].lat))
		res.Hits += stats[i].hits
		res.Empties += stats[i].empties
		all = append(all, stats[i].lat...)
	}
	if elapsed > 0 {
		res.QPS = float64(res.Ops) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		res.P50, res.P99, res.P999 = q(0.50), q(0.99), q(0.999)
	}
	return res
}
