package pathsrv

import (
	"fmt"
	"math/rand"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/pathdb"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/traffic"
)

// ClientConfig parameterizes the closed-loop client population: a fixed
// number of simulated endpoints, each looping lookup -> think -> lookup
// against Zipf-skewed destinations (the paper's §4.1 workload model).
type ClientConfig struct {
	// Endpoints is the simulated endpoint count (millions are fine: the
	// per-endpoint state is a few bytes of scheduling, not an actor).
	Endpoints int
	// Actors is the number of simulator shards the endpoints are
	// multiplexed onto (default 64). Part of the experiment definition:
	// changing it reshuffles per-actor RNG streams and thereby results —
	// unlike the worker count, which never does.
	Actors int
	// Sources and Dests are the candidate endpoint locations and lookup
	// targets. Endpoint e lives at Sources[e % len(Sources)].
	Sources, Dests []addr.IA
	// ZipfS skews destination popularity (exponents <= 1 are clamped by
	// the sampler).
	ZipfS float64
	// MeanThink/MinThink shape the exponential think-time distribution
	// (traffic.NewThinkTimes defaults apply).
	MeanThink, MinThink time.Duration
	// Tick is the scheduling quantum: endpoint wakeups are bucketed onto
	// a per-actor time wheel with this resolution (default 10ms), so the
	// simulator carries Actors recurring events rather than one event
	// per lookup.
	Tick time.Duration
	// Start and End bound the load phase in virtual time.
	Start, End sim.Time
	// Seed drives all per-actor randomness.
	Seed int64
	// CacheTTL/CacheCap configure each actor's registered reply cache;
	// CacheTTL <= 0 disables caching entirely.
	CacheTTL sim.Time
	// CacheCap bounds each actor's cache (<= 0 = unbounded).
	CacheCap int

	// Fleet-pool failover policy (ignored by single-service pools).

	// RetryBudget caps failover attempts per actor per tick: once spent,
	// further lookups in the quantum go straight to serve-stale instead
	// of hammering more replicas (default 4; negative = no retries).
	RetryBudget int
	// BackoffBase/BackoffMax shape the per-replica client-side circuit
	// breaker: after k consecutive timeouts a replica is skipped for
	// min(BackoffBase<<(k-1), BackoffMax), jittered to [d/2, d) with the
	// actor's seeded RNG (defaults 50ms / 800ms).
	BackoffBase, BackoffMax time.Duration
}

// clientActor drives one shard's slice of the endpoint population. All
// its state is owned by its simulator shard; telemetry goes to that
// shard's cells.
type clientActor struct {
	pool  *Pool
	shard uint32
	cache *Cache
	ranks *pathdb.ZipfRanks
	think *traffic.ThinkTimes
	// buckets is the time wheel: tick ordinal -> endpoints due then.
	buckets map[int64][]int32
	// perShard counts lookups by destination service shard, for the
	// imbalance gauges.
	perShard []uint64

	// Fleet-mode failover state, all owned by this actor's shard:
	// jitter RNG, per-replica consecutive-timeout streaks and circuit
	// deadlines, and the per-tick retry token bucket.
	rng          *rand.Rand
	failStreak   []int
	blockedUntil []sim.Time
	retryTokens  int

	Lookups, Hits, Empties uint64
	// Fleet-mode outcome counters: Timeouts are attempts on a dead
	// replica, Retries failover attempts paid from the budget,
	// RetriesDenied attempts skipped for lack of budget, StaleServes
	// lookups degraded to a stale cached reply, Failures lookups with no
	// answer at all.
	Timeouts, Retries, RetriesDenied uint64
	StaleServes, Failures            uint64

	cLook, cHit, cEmpty            *telemetry.Cell
	cTimeout, cRetry, cRetryDenied *telemetry.Cell
	cStale, cFail                  *telemetry.Cell
	hCost, hSegs                   *telemetry.HistCell
}

// Pool is the client population. Create with NewPool (one service) or
// NewFleetPool (replicated fleet with failover) before the simulation
// runs; it registers its own recurring events.
type Pool struct {
	cfg    ClientConfig
	svc    *Service
	fleet  *Fleet
	actors []*clientActor
}

// Modeled lookup service costs in nanoseconds. The simulation does not
// execute a real RPC stack, so tail latency comes from a cost model:
// cache hits are cheap, misses pay the snapshot probe plus per-segment
// reply marshalling, empty replies pay the probe without the reply.
// Fleet clients additionally pay a timeout per attempt on a crashed
// replica, a local-cache cost for a stale serve, and a full timeout
// chain for a total failure.
const (
	costHitNS      = 800
	costEmptyNS    = 2000
	costMissBaseNS = 2500
	costMissPerSeg = 150
	costTimeoutNS  = 20000
	costStaleNS    = 1000
	costFailNS     = 30000
)

// NewPool builds the endpoint population against a single path server
// and schedules its load between cfg.Start and cfg.End. Call from
// serial context before clock.Run.
func NewPool(clock *sim.Simulator, svc *Service, reg *telemetry.Registry, cfg ClientConfig) (*Pool, error) {
	return newPool(clock, svc, nil, reg, cfg)
}

// NewFleetPool builds the endpoint population against a replica fleet:
// endpoint e prefers replica e mod fleet.Size() and fails over through
// the others under the ClientConfig backoff/retry policy, degrading to
// stale cached replies when every replica is unreachable.
func NewFleetPool(clock *sim.Simulator, fleet *Fleet, reg *telemetry.Registry, cfg ClientConfig) (*Pool, error) {
	if fleet == nil || fleet.Size() == 0 {
		return nil, fmt.Errorf("pathsrv: fleet pool needs a fleet")
	}
	return newPool(clock, fleet.proto, fleet, reg, cfg)
}

func newPool(clock *sim.Simulator, svc *Service, fleet *Fleet, reg *telemetry.Registry, cfg ClientConfig) (*Pool, error) {
	if cfg.Endpoints <= 0 {
		return nil, fmt.Errorf("pathsrv: pool needs endpoints, got %d", cfg.Endpoints)
	}
	if len(cfg.Sources) == 0 || len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("pathsrv: pool needs sources and dests")
	}
	if cfg.Actors <= 0 {
		cfg.Actors = 64
	}
	if cfg.Actors > cfg.Endpoints {
		cfg.Actors = cfg.Endpoints
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("pathsrv: pool needs Start < End")
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = 800 * time.Millisecond
		if cfg.BackoffMax < cfg.BackoffBase {
			cfg.BackoffMax = cfg.BackoffBase
		}
	}

	cLook := reg.Counter("pathsrv_lookups_total")
	cHit := reg.Counter("pathsrv_cache_hits_total")
	cEmpty := reg.Counter("pathsrv_empty_replies_total")
	hCost := reg.Histogram("pathsrv_lookup_cost_ns", telemetry.ExpBuckets(250, 2, 16))
	hSegs := reg.Histogram("pathsrv_reply_segments", telemetry.ExpBuckets(1, 2, 8))
	var cTimeout, cRetry, cRetryDenied, cStale, cFail *telemetry.Counter
	if fleet != nil {
		cTimeout = reg.Counter("pathsrv_client_timeouts_total")
		cRetry = reg.Counter("pathsrv_client_retries_total")
		cRetryDenied = reg.Counter("pathsrv_client_retries_denied_total")
		cStale = reg.Counter("pathsrv_client_stale_serves_total")
		cFail = reg.Counter("pathsrv_client_failures_total")
	}

	p := &Pool{cfg: cfg, svc: svc, fleet: fleet, actors: make([]*clientActor, cfg.Actors)}
	for i := range p.actors {
		shard := clock.NewShard()
		a := &clientActor{
			pool:     p,
			shard:    shard,
			ranks:    pathdb.NewZipfRanks(len(cfg.Dests), cfg.ZipfS, cfg.Seed+int64(i)*7919),
			think:    traffic.NewThinkTimes(cfg.MeanThink, cfg.MinThink, cfg.Seed+104729+int64(i)),
			buckets:  map[int64][]int32{},
			perShard: make([]uint64, svc.NumShards()),
			cLook:    cLook.Cell(shard),
			cHit:     cHit.Cell(shard),
			cEmpty:   cEmpty.Cell(shard),
			hCost:    hCost.Cell(shard),
			hSegs:    hSegs.Cell(shard),
		}
		if cfg.CacheTTL > 0 {
			if fleet != nil {
				// Fleet caches are adopted by every replica so each
				// incarnation of each service invalidates them precisely.
				a.cache = NewLocalCache(cfg.CacheTTL, cfg.CacheCap)
				for _, r := range fleet.Replicas() {
					r.adoptCache(a.cache)
				}
			} else {
				a.cache = svc.NewCache(cfg.CacheTTL, cfg.CacheCap)
			}
		}
		if fleet != nil {
			a.rng = rand.New(rand.NewSource(cfg.Seed + 15485863*int64(i) + 31))
			a.failStreak = make([]int, fleet.Size())
			a.blockedUntil = make([]sim.Time, fleet.Size())
			a.cTimeout = cTimeout.Cell(shard)
			a.cRetry = cRetry.Cell(shard)
			a.cRetryDenied = cRetryDenied.Cell(shard)
			a.cStale = cStale.Cell(shard)
			a.cFail = cFail.Cell(shard)
		}
		p.actors[i] = a
	}

	// Seed every endpoint's first wakeup with one think-time draw so the
	// population ramps in smoothly instead of stampeding at Start.
	// Endpoints are dealt round-robin (e % Actors) in ascending order, so
	// each actor consumes its sampler in a deterministic sequence.
	for e := 0; e < cfg.Endpoints; e++ {
		a := p.actors[e%cfg.Actors]
		k := int64(a.think.Next() / cfg.Tick)
		a.buckets[k] = append(a.buckets[k], int32(e))
	}

	if reg != nil {
		for sh := 0; sh < svc.NumShards(); sh++ {
			sh := sh
			reg.GaugeFunc(fmt.Sprintf("pathsrv_shard_lookups{shard=%q}", fmt.Sprint(sh)), func() float64 {
				var sum uint64
				for _, a := range p.actors {
					sum += a.perShard[sh]
				}
				return float64(sum)
			})
		}
	}

	for _, a := range p.actors {
		a := a
		clock.EveryShard(a.shard, time.Duration(cfg.Start), cfg.Tick, cfg.End, a.tick)
	}
	return p, nil
}

// tick processes every endpoint due in this quantum and reschedules each
// after its think time.
func (a *clientActor) tick(now sim.Time) {
	cfg := &a.pool.cfg
	a.retryTokens = cfg.RetryBudget
	k := int64((now - cfg.Start) / sim.Time(cfg.Tick))
	due := a.buckets[k]
	if len(due) == 0 {
		return
	}
	delete(a.buckets, k)
	svc := a.pool.svc
	nsrc, ndst := len(cfg.Sources), len(cfg.Dests)
	for _, e := range due {
		src := cfg.Sources[int(e)%nsrc]
		rank := a.ranks.Next()
		dst := cfg.Dests[rank]
		if dst == src {
			dst = cfg.Dests[(rank+1)%ndst]
		}

		a.Lookups++
		a.cLook.Inc()
		a.perShard[svc.ShardOf(dst)]++

		var n, cost int
		var hit bool
		switch {
		case dst == src:
			// Degenerate workload (single destination colocated with the
			// endpoint): counts as an empty reply.
			a.Empties++
			a.cEmpty.Inc()
			cost = costEmptyNS
		case a.pool.fleet != nil:
			n, hit, cost = a.fleetLookup(now, e, src, dst)
		default:
			if a.cache != nil {
				r, h := a.cache.Lookup(now, svc, src, dst)
				n, hit = len(r), h
			} else {
				r, _ := svc.Lookup(now, src, dst)
				n = len(r)
			}
			switch {
			case hit:
				a.Hits++
				a.cHit.Inc()
				cost = costHitNS
			case n == 0:
				a.Empties++
				a.cEmpty.Inc()
				cost = costEmptyNS
			default:
				cost = costMissBaseNS + costMissPerSeg*n
			}
		}
		a.hCost.Observe(float64(cost))
		if n > 0 {
			a.hSegs.Observe(float64(n))
		}

		d := a.think.Next()
		dk := int64((d + cfg.Tick - 1) / cfg.Tick)
		if dk < 1 {
			dk = 1
		}
		a.buckets[k+dk] = append(a.buckets[k+dk], e)
	}
}

// fleetLookup answers one endpoint lookup against the replica fleet:
// fresh cache hit, else the preferred replica (endpoint mod fleet
// size), failing over through the remaining replicas under the retry
// budget and per-replica backoff, and finally degrading to a stale
// cached reply. Every timeout on a crashed replica adds to the modeled
// cost, so crash storms surface in the latency histogram's tail.
func (a *clientActor) fleetLookup(now sim.Time, e int32, src, dst addr.IA) (n int, hit bool, cost int) {
	key := pairKey{src: src, dst: dst}
	if a.cache != nil {
		if segs, ok := a.cache.probe(now, key); ok {
			a.Hits++
			a.cHit.Inc()
			return len(segs), true, costHitNS
		}
	}
	fl := a.pool.fleet
	nreps := fl.Size()
	pref := int(e) % nreps
	attempted := 0
	for i := 0; i < nreps; i++ {
		ri := (pref + i) % nreps
		if now < a.blockedUntil[ri] {
			continue // circuit open: recent timeouts, skip without cost
		}
		if attempted > 0 {
			if a.retryTokens <= 0 {
				a.RetriesDenied++
				a.cRetryDenied.Inc()
				break
			}
			a.retryTokens--
			a.Retries++
			a.cRetry.Inc()
		}
		attempted++
		segs, minExpiry, ok := fl.Replica(ri).Lookup(now, src, dst)
		if !ok {
			a.Timeouts++
			a.cTimeout.Inc()
			cost += costTimeoutNS
			a.failStreak[ri]++
			a.blockedUntil[ri] = now + a.backoff(ri)
			continue
		}
		if a.failStreak[ri] != 0 {
			a.failStreak[ri] = 0
			a.blockedUntil[ri] = 0
		}
		if len(segs) == 0 {
			a.Empties++
			a.cEmpty.Inc()
			return 0, false, cost + costEmptyNS
		}
		if a.cache != nil {
			a.cache.store(now, key, segs, minExpiry)
		}
		return len(segs), false, cost + costMissBaseNS + costMissPerSeg*len(segs)
	}
	if a.cache != nil {
		if segs := a.cache.LookupStale(now, src, dst); len(segs) > 0 {
			a.StaleServes++
			a.cStale.Inc()
			return len(segs), false, cost + costStaleNS
		}
	}
	a.Failures++
	a.cFail.Inc()
	return 0, false, cost + costFailNS
}

// backoff returns the jittered circuit-open duration for replica ri
// after its current timeout streak: min(base<<(streak-1), max), drawn
// down to [d/2, d) with the actor's seeded RNG so retry storms
// desynchronize deterministically.
func (a *clientActor) backoff(ri int) sim.Time {
	cfg := &a.pool.cfg
	shift := a.failStreak[ri] - 1
	if shift > 16 {
		shift = 16
	}
	d := sim.Time(cfg.BackoffBase) << uint(shift)
	if m := sim.Time(cfg.BackoffMax); d > m || d <= 0 {
		d = m
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + sim.Time(a.rng.Int63n(int64(half)+1))
}

// PoolTotals aggregates the population's results. Serial context only.
type PoolTotals struct {
	Lookups, Hits, Empties, CacheEvictions, CacheInvalidations uint64
	// Fleet-mode outcomes (zero for single-service pools).
	Timeouts, Retries, RetriesDenied uint64
	StaleServes, Failures            uint64
	CacheSweeps, StaleCacheHits      uint64
	// PerShard counts lookups by destination service shard.
	PerShard []uint64
}

// HitRate returns cache hits over lookups.
func (t PoolTotals) HitRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Lookups)
}

// SuccessRate returns the fraction of lookups that produced any answer
// at all — fresh, empty-but-authoritative, or stale (everything except
// Failures).
func (t PoolTotals) SuccessRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Lookups-t.Failures) / float64(t.Lookups)
}

// StaleRate returns the fraction of lookups degraded to stale replies.
func (t PoolTotals) StaleRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.StaleServes) / float64(t.Lookups)
}

// Imbalance returns max-over-mean of the per-shard lookup counts (1.0 =
// perfectly even; 0 when no lookups happened).
func (t PoolTotals) Imbalance() float64 {
	var max, sum uint64
	for _, v := range t.PerShard {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 || len(t.PerShard) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(t.PerShard))
	return float64(max) / mean
}

// Totals sums across actors. Serial context only (after the run).
func (p *Pool) Totals() PoolTotals {
	t := PoolTotals{PerShard: make([]uint64, p.svc.NumShards())}
	for _, a := range p.actors {
		t.Lookups += a.Lookups
		t.Hits += a.Hits
		t.Empties += a.Empties
		t.Timeouts += a.Timeouts
		t.Retries += a.Retries
		t.RetriesDenied += a.RetriesDenied
		t.StaleServes += a.StaleServes
		t.Failures += a.Failures
		if a.cache != nil {
			t.CacheEvictions += a.cache.Evictions
			t.CacheInvalidations += a.cache.Invalidations
			t.CacheSweeps += a.cache.Sweeps
			t.StaleCacheHits += a.cache.StaleHits
		}
		for i, v := range a.perShard {
			t.PerShard[i] += v
		}
	}
	return t
}

// Actors returns the actor count actually in use.
func (p *Pool) Actors() int { return len(p.actors) }
