package pathsrv

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/trust"
)

const hour = sim.Time(time.Hour)

type fakeSigner struct{ ia addr.IA }

func (f fakeSigner) IA() addr.IA                 { return f.ia }
func (f fakeSigner) Sign([]byte) ([]byte, error) { return make([]byte, trust.SignatureLen), nil }

// mkSeg builds a test segment over the given AS path (ISD 1), expiring
// 6 hours after ts. Interfaces are ingress 1 / egress 2 at every hop.
func mkSeg(t testing.TB, ts sim.Time, hops ...uint64) *seg.PCB {
	t.Helper()
	origin := addr.MustIA(1, addr.AS(hops[0]))
	p := seg.NewPCB(origin, 1, ts, 6*hour)
	var err error
	for i, h := range hops {
		egress := addr.IfID(2)
		if i == len(hops)-1 {
			egress = 0
		}
		ingress := addr.IfID(1)
		if i == 0 {
			ingress = 0
		}
		p, err = p.Extend(fakeSigner{ia: addr.MustIA(1, addr.AS(h))}, addr.IA{}, ingress, egress, nil, 1472)
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

var (
	core1 = addr.MustIA(1, 10)
	core2 = addr.MustIA(1, 11)
	leafA = addr.MustIA(1, 30)
	leafB = addr.MustIA(1, 31)
)

func keysOf(segs []*seg.PCB) []string {
	out := make([]string, len(segs))
	for i, p := range segs {
		out[i] = p.HopsKey()
	}
	return out
}

func TestRegisterPublishLookup(t *testing.T) {
	svc := New(Config{Shards: 4})
	a := mkSeg(t, 0, 10, 20, 30)
	b := mkSeg(t, 0, 10, 21, 30)
	if err := svc.Register(0, a); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register(0, b); err != nil {
		t.Fatal(err)
	}
	// Nothing is served before publication.
	if got, _ := svc.Lookup(0, core1, leafA); got != nil {
		t.Fatalf("unpublished lookup = %d segments", len(got))
	}
	if n := svc.Publish(0); n != 1 {
		t.Fatalf("publish changed %d pairs, want 1", n)
	}
	got, min := svc.Lookup(0, core1, leafA)
	if len(got) != 2 {
		t.Fatalf("lookup = %d segments", len(got))
	}
	if min != 6*hour {
		t.Errorf("minExpiry = %v", min)
	}
	// Canonical order: same hop count, tie broken by hops key.
	if got[0].HopsKey() > got[1].HopsKey() {
		t.Error("reply not in canonical order")
	}
	// Unknown pair, or right dst from wrong src: empty.
	if got, _ := svc.Lookup(0, core1, leafB); got != nil {
		t.Error("unknown pair served")
	}
	if got, _ := svc.Lookup(0, core2, leafA); got != nil {
		t.Error("wrong source served")
	}
}

func TestLookupServesOldEpochUntilPublish(t *testing.T) {
	svc := New(Config{})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	svc.Register(0, mkSeg(t, 0, 10, 21, 30))
	if got, _ := svc.Lookup(0, core1, leafA); len(got) != 1 {
		t.Fatalf("pre-publish lookup = %d segments, want old snapshot's 1", len(got))
	}
	svc.Publish(0)
	if got, _ := svc.Lookup(0, core1, leafA); len(got) != 2 {
		t.Fatalf("post-publish lookup = %d segments", len(got))
	}
	if svc.Epoch() != 2 {
		t.Errorf("epoch = %d", svc.Epoch())
	}
}

func TestRegisterRejects(t *testing.T) {
	svc := New(Config{})
	if err := svc.Register(7*hour, mkSeg(t, 0, 10, 20, 30)); err == nil {
		t.Error("expired segment accepted")
	}
	if err := svc.Register(0, mkSeg(t, 0, 10)); err == nil {
		t.Error("degenerate segment accepted")
	}
	if svc.Rejected != 2 {
		t.Errorf("Rejected = %d", svc.Rejected)
	}
}

func TestRefreshKeepsReplyAndSkipsInvalidation(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(0, 0)
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	if _, hit := cache.Lookup(0, svc, core1, leafA); hit {
		t.Fatal("first lookup cannot hit")
	}
	// Re-register the same path with a later expiry: the visible path set
	// is unchanged, so the publication must not evict the cached reply.
	svc.Register(hour, mkSeg(t, hour, 10, 20, 30))
	if n := svc.Publish(hour); n != 0 {
		t.Fatalf("refresh publication changed %d pairs", n)
	}
	if _, hit := cache.Lookup(hour, svc, core1, leafA); !hit {
		t.Error("refresh evicted the cached reply")
	}
	if svc.Refreshes != 1 || svc.Registrations != 1 {
		t.Errorf("refreshes=%d registrations=%d", svc.Refreshes, svc.Registrations)
	}
}

func TestRevokeAndReinstate(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Telemetry: reg})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Register(0, mkSeg(t, 0, 10, 21, 30))
	svc.Publish(0)
	before, _ := svc.Lookup(0, core1, leafA)

	// Revoking a link on the 10-20-30 segment republishes immediately.
	link := seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}
	if n := svc.RevokeLink(0, link, hour); n != 1 {
		t.Fatalf("revoke changed %d pairs", n)
	}
	got, _ := svc.Lookup(0, core1, leafA)
	if len(got) != 1 {
		t.Fatalf("revoked lookup = %d segments", len(got))
	}
	for _, lk := range got[0].Links() {
		if lk == link {
			t.Fatal("revoked link still served")
		}
	}

	// Reinstating restores the exact pre-revocation reply.
	if n := svc.ReinstateLink(0, link); n != 1 {
		t.Fatalf("reinstate changed %d pairs", n)
	}
	after, _ := svc.Lookup(0, core1, leafA)
	ka, kb := keysOf(before), keysOf(after)
	if len(ka) != len(kb) {
		t.Fatalf("reinstated reply has %d segments, want %d", len(kb), len(ka))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("reinstated reply differs at %d: %q vs %q", i, ka[i], kb[i])
		}
	}
	if svc.Revocations != 1 || svc.Reinstatements != 1 {
		t.Errorf("revocations=%d reinstatements=%d", svc.Revocations, svc.Reinstatements)
	}
	if v := reg.Counter("pathsrv_revocations_total").Value(); v != 1 {
		t.Errorf("telemetry revocations = %d", v)
	}
}

func TestRevocationLapses(t *testing.T) {
	svc := New(Config{RevocationTTL: hour})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	svc.RevokeLink(0, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}, 0)
	if got, _ := svc.Lookup(0, core1, leafA); len(got) != 0 {
		t.Fatal("revoked segment served")
	}
	// The next publication after the TTL lifts the revocation.
	if svc.Publish(2*hour) != 1 {
		t.Fatal("lapse publication changed nothing")
	}
	if got, _ := svc.Lookup(2*hour, core1, leafA); len(got) != 1 {
		t.Fatal("lapsed revocation still hides the segment")
	}
	if svc.Reinstatements != 1 {
		t.Errorf("Reinstatements = %d", svc.Reinstatements)
	}
}

func TestRevokeUnknownLinkChangesNothing(t *testing.T) {
	svc := New(Config{})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	if n := svc.RevokeLink(0, seg.LinkKey{IA: addr.MustIA(9, 9), If: 9}, hour); n != 0 {
		t.Fatalf("unknown-link revoke changed %d pairs", n)
	}
	if got, _ := svc.Lookup(0, core1, leafA); len(got) != 1 {
		t.Fatal("unrelated revocation hid a segment")
	}
	if n := svc.ReinstateLink(0, seg.LinkKey{IA: addr.MustIA(9, 8), If: 9}); n != 0 {
		t.Fatal("reinstating a never-revoked link reported changes")
	}
}

func TestCacheInvalidationIsPrecise(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := New(Config{Telemetry: reg})
	cache := svc.NewCache(0, 0)
	// Pair A routes over AS 20; pair B does not.
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Register(0, mkSeg(t, 0, 10, 21, 31))
	svc.Publish(0)
	cache.Lookup(0, svc, core1, leafA)
	cache.Lookup(0, svc, core1, leafB)
	if cache.Len() != 2 {
		t.Fatalf("cache len = %d", cache.Len())
	}

	svc.RevokeLink(0, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}, hour)
	// Only pair A's entry may be evicted.
	if cache.Len() != 1 {
		t.Fatalf("cache len after revoke = %d, want 1", cache.Len())
	}
	if _, hit := cache.Lookup(0, svc, core1, leafB); !hit {
		t.Error("untouched pair was invalidated")
	}
	if _, hit := cache.Lookup(0, svc, core1, leafA); hit {
		t.Error("changed pair still served from cache")
	}
	if cache.Invalidations != 1 || svc.Invalidations != 1 {
		t.Errorf("cache inv=%d svc inv=%d", cache.Invalidations, svc.Invalidations)
	}
	if v := reg.Counter(`pathsrv_cache_invalidations_total{reason="revoke"}`).Value(); v != 1 {
		t.Errorf("telemetry invalidations = %d", v)
	}
}

func TestCacheTTLAndSegmentExpiry(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(hour, 0)
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	cache.Lookup(0, svc, core1, leafA)
	if _, hit := cache.Lookup(30*sim.Time(time.Minute), svc, core1, leafA); !hit {
		t.Fatal("fresh entry missed")
	}
	// Past the TTL the entry is evicted and refetched.
	if _, hit := cache.Lookup(2*hour, svc, core1, leafA); hit {
		t.Fatal("stale entry served")
	}
	if cache.Evictions != 1 {
		t.Errorf("evictions = %d", cache.Evictions)
	}
	// A cached reply is also dropped once its segments expire, even
	// within the TTL window.
	long := svc.NewCache(100*hour, 0)
	long.Lookup(2*hour, svc, core1, leafA)
	if got, hit := long.Lookup(7*hour, svc, core1, leafA); hit || len(got) != 0 {
		t.Fatalf("expired segments served from cache: hit=%v n=%d", hit, len(got))
	}
}

func TestCacheCapSheds(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(hour, 2)
	for i, dst := range []uint64{30, 31, 32} {
		svc.Register(0, mkSeg(t, 0, 10, 20+uint64(i), dst))
	}
	svc.Publish(0)
	cache.Lookup(0, svc, core1, addr.MustIA(1, 30))
	cache.Lookup(0, svc, core1, addr.MustIA(1, 31))
	cache.Lookup(0, svc, core1, addr.MustIA(1, 32)) // over cap: shed all, insert one
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d, want 1 after shedding", cache.Len())
	}
}

func TestNegativeRepliesNotCached(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(hour, 0)
	if _, hit := cache.Lookup(0, svc, core1, leafA); hit {
		t.Fatal("miss reported as hit")
	}
	if cache.Len() != 0 {
		t.Fatal("empty reply cached")
	}
	// Once the pair is published the cache must see it immediately.
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Publish(0)
	if got, _ := cache.Lookup(0, svc, core1, leafA); len(got) != 1 {
		t.Fatal("published pair hidden by a cached miss")
	}
}

func TestLookupFiltersExpiredBetweenPublications(t *testing.T) {
	svc := New(Config{})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))           // expires 6h
	svc.Register(2*hour, mkSeg(t, 2*hour, 10, 21, 30)) // expires 8h
	svc.Publish(2 * hour)
	if got, _ := svc.Lookup(2*hour, core1, leafA); len(got) != 2 {
		t.Fatal("both segments should serve")
	}
	// At 7h the first segment is dead but no publication has pruned it:
	// the lookup itself must filter.
	got, min := svc.Lookup(7*hour, core1, leafA)
	if len(got) != 1 || got[0].Expired(7*hour) {
		t.Fatalf("expired segment served: %d segments", len(got))
	}
	if min != 8*hour {
		t.Errorf("filtered minExpiry = %v", min)
	}
	// The pruning publication drops the pair change only if the visible
	// set changed — here it did (2 -> 1).
	if n := svc.Publish(7 * hour); n != 1 {
		t.Errorf("pruning publication changed %d pairs", n)
	}
}

func TestDigestCanonical(t *testing.T) {
	build := func(order []int) *Service {
		svc := New(Config{Shards: 8})
		segs := []*seg.PCB{
			mkSeg(t, 0, 10, 20, 30),
			mkSeg(t, 0, 10, 21, 30),
			mkSeg(t, 0, 10, 20, 31),
			mkSeg(t, 0, 11, 22, 32),
		}
		for _, i := range order {
			svc.Register(0, segs[i])
		}
		svc.Publish(0)
		return svc
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if a.Digest() != b.Digest() {
		t.Error("digest depends on registration order")
	}
	c := build([]int{0, 1, 2})
	if a.Digest() == c.Digest() {
		t.Error("digest blind to content")
	}
	// Revocations are part of the digest.
	a.RevokeLink(0, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}, hour)
	if a.Digest() == b.Digest() {
		t.Error("digest blind to revocations")
	}
}

func TestShardOf(t *testing.T) {
	svc := New(Config{Shards: 16})
	seen := map[uint32]int{}
	for as := uint64(1); as <= 256; as++ {
		sh := svc.ShardOf(addr.MustIA(1, addr.AS(as)))
		if sh >= 16 {
			t.Fatalf("shard %d out of range", sh)
		}
		if sh != svc.ShardOf(addr.MustIA(1, addr.AS(as))) {
			t.Fatal("ShardOf not stable")
		}
		seen[sh]++
	}
	// Near-sequential IAs must spread: no shard may swallow half of them.
	for sh, n := range seen {
		if n > 128 {
			t.Errorf("shard %d holds %d of 256 sequential IAs", sh, n)
		}
	}
	if len(seen) < 8 {
		t.Errorf("only %d of 16 shards used", len(seen))
	}
}

func TestShardsClamped(t *testing.T) {
	if n := New(Config{Shards: -1}).NumShards(); n != 16 {
		t.Errorf("default shards = %d", n)
	}
	if n := New(Config{Shards: 1000}).NumShards(); n != 64 {
		t.Errorf("clamped shards = %d", n)
	}
}

func TestLookupNoAllocsSteadyState(t *testing.T) {
	svc := New(Config{})
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))
	svc.Register(0, mkSeg(t, 0, 10, 21, 30))
	svc.Publish(0)
	if n := testing.AllocsPerRun(100, func() {
		svc.Lookup(0, core1, leafA)
	}); n != 0 {
		t.Errorf("Lookup allocates %v per call", n)
	}
	cache := svc.NewCache(hour, 0)
	cache.Lookup(0, svc, core1, leafA)
	if n := testing.AllocsPerRun(100, func() {
		cache.Lookup(0, svc, core1, leafA)
	}); n != 0 {
		t.Errorf("cached Lookup allocates %v per call", n)
	}
}
