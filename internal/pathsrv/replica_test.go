package pathsrv

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/chaos"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// TestFleetKillRecoverTwin is the kill-and-recover invariant: a crashed
// replica replays its WAL back to the exact pre-crash digest, and one
// anti-entropy round brings it to its never-crashed twin's digest.
func TestFleetKillRecoverTwin(t *testing.T) {
	f := NewFleet(FleetConfig{Replicas: 2, Service: Config{Shards: 8}, CheckpointEvery: 8})
	for i := uint64(0); i < 6; i++ {
		f.Register(0, mkSeg(t, 0, 10, 20+i, 30))
	}
	f.Publish(0)
	d0 := f.Replica(0).Service().Digest()
	if f.Replica(1).Service().Digest() != d0 {
		t.Fatal("twins diverge before any crash")
	}

	ia := f.Replica(1).IA
	f.Crash(ia)
	r1 := f.Replica(1)
	if !r1.Down() || f.Up() != 1 {
		t.Fatal("crash did not take the replica down")
	}
	if _, _, ok := r1.Lookup(0, core1, leafA); ok {
		t.Fatal("crashed replica answered a lookup")
	}
	f.Crash(ia) // idempotent
	if r1.Crashes != 1 {
		t.Fatalf("Crashes = %d", r1.Crashes)
	}

	// The survivor keeps absorbing the feed: divergence.
	f.Register(hour, mkSeg(t, hour, 11, 40, 41))
	f.Publish(hour)

	f.Restart(ia)
	if r1.Down() || r1.Recoveries != 1 || r1.LastReplayed == 0 {
		t.Fatalf("restart: down=%v recoveries=%d replayed=%d",
			r1.Down(), r1.Recoveries, r1.LastReplayed)
	}
	// WAL replay reproduces exactly the journaled (pre-crash) state...
	if r1.Service().Digest() != d0 {
		t.Fatal("replay did not reproduce the pre-crash digest")
	}
	// ...which now trails the survivor.
	if r1.Service().Digest() == f.Replica(0).Service().Digest() {
		t.Fatal("no divergence despite missed mutations")
	}

	// One anti-entropy round heals it.
	st := f.Sync(2 * hour)
	if st.Leader != 0 || st.Pulls != 1 || st.PulledShards == 0 {
		t.Fatalf("sync stats = %+v", st)
	}
	if r1.Service().Digest() != f.Replica(0).Service().Digest() {
		t.Fatal("digests differ after one anti-entropy round")
	}
	// A converged fleet syncs as a no-op.
	if st := f.Sync(2 * hour); st.Pulls != 0 || st.PulledShards != 0 {
		t.Fatalf("converged sync pulled: %+v", st)
	}

	// And the healed replica tracks the feed from here on.
	f.Register(3*hour, mkSeg(t, 3*hour, 12, 50, 51))
	f.Publish(3 * hour)
	if r1.Service().Digest() != f.Replica(0).Service().Digest() {
		t.Fatal("healed replica diverged on the next publication")
	}
}

func TestFleetRevokeReinstateFanOut(t *testing.T) {
	f := NewFleet(FleetConfig{Replicas: 2, Service: Config{Shards: 4}})
	f.Register(0, mkSeg(t, 0, 10, 20, 30))
	f.Publish(0)
	link := seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}
	f.RevokeLink(0, link, hour)
	for _, r := range f.Replicas() {
		if got, _, ok := r.Lookup(0, core1, leafA); !ok || len(got) != 0 {
			t.Fatalf("replica %d still serves the revoked path", r.ID)
		}
	}
	f.ReinstateLink(0, link)
	for _, r := range f.Replicas() {
		if got, _, _ := r.Lookup(0, core1, leafA); len(got) != 1 {
			t.Fatalf("replica %d did not reinstate", r.ID)
		}
	}
	if f.Replica(0).Service().Digest() != f.Replica(1).Service().Digest() {
		t.Fatal("fan-out left the twins diverged")
	}
	if f.Size() != 2 || f.NumShards() != 4 {
		t.Errorf("size=%d shards=%d", f.Size(), f.NumShards())
	}
	if f.ShardOf(leafA) != f.Replica(0).Service().ShardOf(leafA) {
		t.Error("fleet ShardOf disagrees with the replica's")
	}
	if s := f.Summary(); !strings.Contains(s, "replicas=2 up=2") {
		t.Errorf("summary = %q", s)
	}
}

// TestWireChaosRevokesBothDirections covers the chaos-to-service glue:
// a failed link revokes both directed interfaces, a heal reinstates
// them, prior hooks are chained, and unknown links are ignored.
func TestWireChaosRevokesBothDirections(t *testing.T) {
	g := topology.Demo()
	l := g.Links[0]
	clock := &sim.Simulator{}
	svc := New(Config{})
	eng := chaos.NewEngine(clock)
	var chainedFail, chainedRestore int
	eng.OnFail = func(topology.LinkID) { chainedFail++ }
	eng.OnRestore = func(topology.LinkID) { chainedRestore++ }
	WireChaos(clock, eng, g, svc, hour)

	eng.OnFail(l.ID)
	if chainedFail != 1 {
		t.Error("prior OnFail hook not chained")
	}
	if svc.Revocations != 2 {
		t.Fatalf("revocations = %d, want both directed interfaces", svc.Revocations)
	}
	eng.OnRestore(l.ID)
	if chainedRestore != 1 {
		t.Error("prior OnRestore hook not chained")
	}
	if svc.Reinstatements != 2 {
		t.Fatalf("reinstatements = %d", svc.Reinstatements)
	}
	// A link the topology does not know is a no-op.
	eng.OnFail(topology.LinkID(1 << 30))
	if svc.Revocations != 2 {
		t.Error("unknown link revoked something")
	}
}

func TestWireChaosFleetFansOut(t *testing.T) {
	g := topology.Demo()
	l := g.Links[0]
	clock := &sim.Simulator{}
	f := NewFleet(FleetConfig{Replicas: 2})
	eng := chaos.NewEngine(clock)
	WireChaosFleet(clock, eng, g, f, hour)
	eng.OnFail(l.ID)
	eng.OnRestore(l.ID)
	eng.OnFail(topology.LinkID(1 << 30)) // unknown: ignored
	for _, r := range f.Replicas() {
		if r.Service().Revocations != 2 || r.Service().Reinstatements != 2 {
			t.Fatalf("replica %d: rev=%d rein=%d", r.ID,
				r.Service().Revocations, r.Service().Reinstatements)
		}
	}
}

func TestFleetCrashTargetIgnoresUnknownIAs(t *testing.T) {
	f := NewFleet(FleetConfig{Replicas: 2})
	f.Crash(addr.MustIA(1, 99))   // a beacon server, not a replica
	f.Restart(addr.MustIA(1, 99)) // must not panic either
	if f.Up() != 2 {
		t.Fatalf("up = %d after unrelated CrashAS", f.Up())
	}
}

func TestFleetCheckpointsBoundReplay(t *testing.T) {
	f := NewFleet(FleetConfig{Replicas: 1, Service: Config{Shards: 4}, CheckpointEvery: 10})
	r := f.Replica(0)
	for i := 0; i < 64; i++ {
		f.Register(0, mkSeg(t, 0, 10, 20+uint64(i%8), 30))
		f.Publish(0)
	}
	if r.WAL().Checkpoints == 0 {
		t.Fatal("no checkpoint despite 128 journaled records at budget 10")
	}
	// The compacted WAL replays in O(tail), not O(history).
	if r.WAL().Records > 2*10 {
		t.Fatalf("WAL holds %d records, budget 10", r.WAL().Records)
	}
	ia := r.IA
	f.Crash(ia)
	f.Restart(ia)
	if r.LastReplayed > 2*10 {
		t.Fatalf("recovery replayed %d records, budget 10", r.LastReplayed)
	}
}

// TestAntiEntropySyncBoundsStaleness drives a live feed on a simulator:
// a replica that recovers mid-run is back at the fleet digest at most
// one sync period after its restart, and stays there.
func TestAntiEntropySyncBoundsStaleness(t *testing.T) {
	clock := &sim.Simulator{}
	reg := telemetry.NewRegistry()
	clock.SetTelemetry(reg)
	f := NewFleet(FleetConfig{
		Replicas:  3,
		Service:   Config{Shards: 8},
		Clock:     clock,
		Telemetry: reg,
	})
	end := sim.Time(3 * time.Second)
	i := uint64(0)
	clock.Every(0, 100*time.Millisecond, end, func(now sim.Time) {
		f.Register(now, mkSeg(t, now, 10, 20+i%8, 30+i%4))
		f.Publish(now)
		i++
	})
	clock.Every(250*time.Millisecond, 500*time.Millisecond, end, func(now sim.Time) {
		f.Sync(now)
	})
	ia := f.Replica(2).IA
	clock.At(sim.Time(time.Second)+1, func() { f.Crash(ia) })
	clock.At(sim.Time(2*time.Second)+1, func() { f.Restart(ia) })
	// Restart at ~2s, sync sweeps at 2.25s and 2.75s: by 2.3s the replica
	// must be converged (bounded staleness: one sync period), and every
	// instant after stays converged because it rejoined the feed.
	for _, at := range []time.Duration{2300 * time.Millisecond, 2800 * time.Millisecond} {
		clock.At(sim.Time(at), func() {
			want := f.Replica(0).Service().Digest()
			if got := f.Replica(2).Service().Digest(); got != want {
				t.Errorf("t=%v: recovered replica still stale", at)
			}
		})
	}
	clock.Run()
	if f.Rounds == 0 || f.Pulls == 0 {
		t.Fatalf("rounds=%d pulls=%d: anti-entropy never pulled", f.Rounds, f.Pulls)
	}
	if got := f.Replica(2).LastRecoveryLag; got != sim.Time(time.Second) {
		t.Errorf("recovery lag = %v, want 1s", time.Duration(got))
	}
	if v := reg.Counter("pathsrv_replica_crashes_total").Value(); v != 1 {
		t.Errorf("telemetry crashes = %d", v)
	}
	if v := reg.Counter("pathsrv_antientropy_pulls_total").Value(); v == 0 {
		t.Error("telemetry pulls = 0")
	}
}

// fleetPoolScenario runs a closed-loop pool against a 3-replica fleet
// with a total outage window [800ms, 1300ms): clients must ride it out
// on timeouts, backoff and stale cache serves.
func fleetPoolScenario(t testing.TB, workers int, seed int64) (PoolTotals, string) {
	t.Helper()
	clock := &sim.Simulator{}
	clock.SetWorkers(workers)
	reg := telemetry.NewRegistry()
	clock.SetTelemetry(reg)
	f := NewFleet(FleetConfig{
		Replicas:  3,
		Service:   Config{Shards: 8},
		Clock:     clock,
		Telemetry: reg,
	})

	sources := []addr.IA{addr.MustIA(1, 10), addr.MustIA(1, 11)}
	var dests []addr.IA
	for d := uint64(30); d < 36; d++ {
		dests = append(dests, addr.MustIA(1, addr.AS(d)))
	}
	for _, src := range sources {
		for _, dst := range dests {
			f.Register(0, mkSeg(t, 0, uint64(src.AS), 20, uint64(dst.AS)))
			f.Register(0, mkSeg(t, 0, uint64(src.AS), 21, uint64(dst.AS)))
		}
	}
	f.Publish(0)

	pool, err := NewFleetPool(clock, f, reg, ClientConfig{
		Endpoints: 500,
		Actors:    8,
		Sources:   sources,
		Dests:     dests,
		ZipfS:     1.2,
		MeanThink: 50 * time.Millisecond,
		MinThink:  5 * time.Millisecond,
		Tick:      10 * time.Millisecond,
		Start:     0,
		End:       sim.Time(2 * time.Second),
		Seed:      seed,
		// A short TTL so cached entries are stale — not fresh — during
		// the blackout: the serve-stale path must carry the load.
		CacheTTL:    sim.Time(200 * time.Millisecond),
		CacheCap:    64,
		RetryBudget: 2,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  160 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Replicas() {
		ia := r.IA
		clock.At(sim.Time(800*time.Millisecond), func() { f.Crash(ia) })
		clock.At(sim.Time(1300*time.Millisecond), func() { f.Restart(ia) })
	}
	clock.Run()

	var b bytes.Buffer
	if err := reg.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	return pool.Totals(), b.String()
}

func TestFleetPoolRidesOutTotalOutage(t *testing.T) {
	totals, snap := fleetPoolScenario(t, 1, 7)
	if totals.Lookups == 0 {
		t.Fatal("no lookups happened")
	}
	if totals.Timeouts == 0 {
		t.Error("blackout produced no timeouts")
	}
	if totals.StaleServes == 0 {
		t.Error("no stale serves during the blackout")
	}
	if totals.Retries == 0 {
		t.Error("failover never retried another replica")
	}
	if sr := totals.SuccessRate(); sr < 0.5 || sr > 1 {
		t.Errorf("success rate = %v", sr)
	}
	if st := totals.StaleRate(); st <= 0 || st > 1 {
		t.Errorf("stale rate = %v", st)
	}
	if totals.CacheSweeps == 0 && totals.StaleCacheHits == 0 {
		t.Error("cache stale/sweep counters never moved")
	}
	if totals.Failures == totals.Lookups {
		t.Error("every lookup failed")
	}
	for _, want := range []string{
		"pathsrv_client_timeouts_total",
		"pathsrv_client_stale_serves_total",
		"pathsrv_replica_crashes_total",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %s", want)
		}
	}
}

// TestFleetPoolDeterministicAcrossWorkers pins the failover machinery —
// timeouts, backoff jitter, retry budgets, stale serves, recovery — to
// identical totals and telemetry for every worker count.
func TestFleetPoolDeterministicAcrossWorkers(t *testing.T) {
	refTotals, refSnap := fleetPoolScenario(t, 1, 3)
	for _, w := range []int{2, 8} {
		totals, snap := fleetPoolScenario(t, w, 3)
		if fmt.Sprintf("%+v", totals) != fmt.Sprintf("%+v", refTotals) {
			t.Errorf("workers=%d: totals diverge\n%+v\n%+v", w, totals, refTotals)
		}
		if snap != refSnap {
			t.Errorf("workers=%d: telemetry snapshot diverges", w)
		}
	}
}

func TestFleetPoolValidation(t *testing.T) {
	clock := &sim.Simulator{}
	if _, err := NewFleetPool(clock, nil, nil, ClientConfig{}); err == nil {
		t.Error("nil fleet accepted")
	}
}

func TestCacheSweepsDeadEntriesOnMiss(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(0, 0)                        // no TTL: death comes from segment expiry
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))           // expires 6h
	svc.Register(2*hour, mkSeg(t, 2*hour, 10, 21, 31)) // expires 8h
	svc.Publish(2 * hour)
	cache.Lookup(2*hour, svc, core1, leafA)
	cache.Lookup(2*hour, svc, core1, leafB)
	if cache.Len() != 2 {
		t.Fatalf("len = %d", cache.Len())
	}
	// A miss on an unrelated pair past the first entry's last-segment
	// death sweeps that entry — and only it.
	cache.Lookup(7*hour, svc, core2, leafA)
	if cache.Sweeps != 1 {
		t.Fatalf("sweeps = %d", cache.Sweeps)
	}
	if cache.Len() != 1 {
		t.Fatalf("len after sweep = %d, want 1", cache.Len())
	}
	if cache.Evictions != 1 {
		t.Errorf("evictions = %d", cache.Evictions)
	}
	// Before any deadline, misses must not trigger sweep passes.
	cache.Lookup(3*hour, svc, core2, leafB)
	if cache.Sweeps != 1 {
		t.Errorf("early miss swept: %d passes", cache.Sweeps)
	}
}

// TestCacheTTLLapseCapacityInteraction pins the eviction interplay: a
// TTL-lapsed entry is replaced in place (no capacity shed), while a new
// pair at capacity sheds everything.
func TestCacheTTLLapseCapacityInteraction(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(hour, 2)
	for i, dst := range []uint64{30, 31, 32} {
		svc.Register(0, mkSeg(t, 0, 10, 20+uint64(i), dst))
	}
	svc.Publish(0)
	dstA, dstB, dstC := addr.MustIA(1, 30), addr.MustIA(1, 31), addr.MustIA(1, 32)
	cache.Lookup(0, svc, core1, dstA)
	cache.Lookup(0, svc, core1, dstB)
	if cache.Len() != 2 {
		t.Fatalf("len = %d", cache.Len())
	}
	// TTL lapsed at 2h (segments alive until 6h): the re-lookup evicts
	// the lapsed entry and re-stores the same key — capacity must not
	// shed the other entry.
	if _, hit := cache.Lookup(2*hour, svc, core1, dstA); hit {
		t.Fatal("lapsed entry served as fresh")
	}
	if cache.Len() != 2 {
		t.Fatalf("len after in-place refresh = %d, want 2", cache.Len())
	}
	if cache.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (the lapsed entry only)", cache.Evictions)
	}
	// A third pair exceeds the cap: deterministic shed-all, then insert.
	cache.Lookup(2*hour, svc, core1, dstC)
	if cache.Len() != 1 {
		t.Fatalf("len after cap shed = %d, want 1", cache.Len())
	}
	if cache.Evictions != 3 {
		t.Errorf("evictions = %d, want 1 + cap(2)", cache.Evictions)
	}
	// The survivor is the new entry.
	if _, hit := cache.Lookup(2*hour, svc, core1, dstC); !hit {
		t.Error("freshly inserted entry missed")
	}
}

func TestCacheLookupStale(t *testing.T) {
	svc := New(Config{})
	cache := svc.NewCache(sim.Time(time.Minute), 0)
	svc.Register(0, mkSeg(t, 0, 10, 20, 30))           // expires 6h
	svc.Register(2*hour, mkSeg(t, 2*hour, 10, 21, 30)) // expires 8h
	svc.Publish(2 * hour)
	cache.Lookup(2*hour, svc, core1, leafA)

	// Nothing cached for an unknown pair.
	if got := cache.LookupStale(2*hour, core1, leafB); got != nil {
		t.Fatal("stale lookup invented a reply")
	}
	// Within minExpiry the whole reply serves, TTL notwithstanding.
	if got := cache.LookupStale(5*hour, core1, leafA); len(got) != 2 {
		t.Fatalf("stale lookup = %d segments, want 2", len(got))
	}
	// Past the first segment's death only the survivor serves.
	if got := cache.LookupStale(7*hour, core1, leafA); len(got) != 1 {
		t.Fatalf("stale lookup = %d segments, want the 1 survivor", len(got))
	}
	// The entry is kept for the next outage instant.
	if cache.Len() != 1 {
		t.Fatal("stale serve dropped the entry")
	}
	// Past every segment's death nothing serves.
	if got := cache.LookupStale(9*hour, core1, leafA); got != nil {
		t.Fatal("fully expired entry served")
	}
	if cache.StaleHits != 2 {
		t.Errorf("stale hits = %d", cache.StaleHits)
	}
}
