package pathsrv

import (
	"math/rand"
	"strings"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
)

// walScenario journals a mutation sequence into both a live service and
// a WAL, exactly as a Replica would: every mutation is appended before
// it is applied.
type walScenario struct {
	svc *Service
	wal *WAL
}

func newWALScenario(cfg Config) *walScenario {
	return &walScenario{svc: New(cfg), wal: NewWAL()}
}

func (s *walScenario) register(now sim.Time, p *seg.PCB) {
	s.wal.AppendRegister(now, p)
	_ = s.svc.Register(now, p)
}

func (s *walScenario) revoke(now sim.Time, link seg.LinkKey, ttl sim.Time) {
	s.wal.AppendRevoke(now, link, ttl)
	s.svc.RevokeLink(now, link, ttl)
}

func (s *walScenario) reinstate(now sim.Time, link seg.LinkKey) {
	s.wal.AppendReinstate(now, link)
	s.svc.ReinstateLink(now, link)
}

func (s *walScenario) publish(now sim.Time) {
	s.wal.AppendPublish(now)
	s.svc.Publish(now)
}

func TestWALRecoverEmpty(t *testing.T) {
	svc, st := Recover(nil, Config{Shards: 4})
	if svc == nil {
		t.Fatal("nil service from empty WAL")
	}
	if st.Records != 0 || st.Truncated {
		t.Errorf("stats = %+v", st)
	}
	if got, _ := svc.Lookup(0, core1, leafA); got != nil {
		t.Error("empty recovery serves segments")
	}
}

func TestWALReplayReproducesDigest(t *testing.T) {
	sc := newWALScenario(Config{Shards: 8})
	sc.register(0, mkSeg(t, 0, 10, 20, 30))
	sc.register(0, mkSeg(t, 0, 10, 21, 30))
	sc.register(0, mkSeg(t, 0, 11, 22, 32))
	sc.publish(0)
	sc.revoke(hour, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}, hour)
	sc.register(hour, mkSeg(t, hour, 10, 20, 31))
	sc.publish(hour)
	sc.reinstate(2*hour, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2})

	got, st := Recover(sc.wal.Bytes(), Config{Shards: 8})
	if st.Records != sc.wal.Records || st.Truncated {
		t.Fatalf("stats = %+v, want %d clean records", st, sc.wal.Records)
	}
	if got.Digest() != sc.svc.Digest() {
		t.Fatal("replayed digest differs from the live service")
	}
	// The replica answers queries identically, not just digest-identically.
	a, _ := sc.svc.Lookup(2*hour, core1, leafA)
	b, _ := got.Lookup(2*hour, core1, leafA)
	ka, kb := keysOf(a), keysOf(b)
	if len(ka) != len(kb) {
		t.Fatalf("replayed lookup = %d segments, want %d", len(kb), len(ka))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("replayed reply differs at %d", i)
		}
	}
}

func TestWALCheckpointCompactsAndRecovers(t *testing.T) {
	sc := newWALScenario(Config{Shards: 8})
	// Re-registrations (expiry refreshes) grow the log without growing
	// the state — the case checkpoint compaction exists for.
	for round := sim.Time(0); round < 8; round++ {
		for i := uint64(0); i < 8; i++ {
			sc.register(round*hour, mkSeg(t, round*hour, 10, 20+i, 30))
		}
		sc.publish(round * hour)
	}
	before := sc.wal.Len()
	sc.wal.Checkpoint(7*hour, sc.svc)
	if sc.wal.Len() >= before {
		t.Fatalf("checkpoint did not compact: %d -> %d bytes", before, sc.wal.Len())
	}
	// The compacted log holds exactly the checkpoint frame.
	if sc.wal.Records != 1 || sc.wal.Checkpoints != 1 {
		t.Fatalf("after checkpoint: records=%d checkpoints=%d", sc.wal.Records, sc.wal.Checkpoints)
	}
	// Mutations after the checkpoint land in the tail and replay on top.
	sc.revoke(hour, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}, hour)
	sc.register(hour, mkSeg(t, hour, 11, 40, 41))
	sc.publish(hour)

	got, st := Recover(sc.wal.Bytes(), Config{Shards: 8})
	if st.Checkpoints != 1 || st.Records != 4 {
		t.Fatalf("stats = %+v, want the checkpoint + 3 tail records", st)
	}
	if got.Digest() != sc.svc.Digest() {
		t.Fatal("checkpoint+tail digest differs from the live service")
	}
}

// TestWALCheckpointDigestProperty drives a seeded random mutation
// mixture with checkpoints at random points and asserts the recovery
// invariant — checkpoint load + tail replay reproduces Service.Digest
// exactly — across many interleavings.
func TestWALCheckpointDigestProperty(t *testing.T) {
	for seedIdx, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		sc := newWALScenario(Config{Shards: 8, RevocationTTL: 4 * hour})
		links := []seg.LinkKey{
			{IA: addr.MustIA(1, 20), If: 2},
			{IA: addr.MustIA(1, 21), If: 2},
			{IA: addr.MustIA(1, 22), If: 1},
		}
		now := sim.Time(0)
		for op := 0; op < 400; op++ {
			now += sim.Time(rng.Intn(1000)) * sim.Time(1e6)
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				mid := 20 + uint64(rng.Intn(3))
				dst := 30 + uint64(rng.Intn(6))
				sc.register(now, mkSeg(t, now, 10+uint64(rng.Intn(2)), mid, dst))
			case 4:
				sc.revoke(now, links[rng.Intn(len(links))], sim.Time(rng.Intn(3))*hour)
			case 5:
				sc.reinstate(now, links[rng.Intn(len(links))])
			case 6, 7, 8:
				sc.publish(now)
			case 9:
				sc.wal.Checkpoint(now, sc.svc)
			}
		}
		got, st := Recover(sc.wal.Bytes(), Config{Shards: 8, RevocationTTL: 4 * hour})
		if st.Truncated {
			t.Fatalf("seed %d: clean WAL reported truncated", seed)
		}
		if got.Digest() != sc.svc.Digest() {
			t.Fatalf("seed %d (#%d): recovered digest differs after %d records / %d checkpoints",
				seed, seedIdx, st.Records, st.Checkpoints)
		}
	}
}

func TestWALTruncatedTailRecoversPrefix(t *testing.T) {
	sc := newWALScenario(Config{Shards: 8})
	var digests [][32]byte // digest after each journaled record
	record := func(f func()) {
		f()
		digests = append(digests, sc.svc.Digest())
	}
	record(func() { sc.register(0, mkSeg(t, 0, 10, 20, 30)) })
	record(func() { sc.publish(0) })
	record(func() { sc.register(hour, mkSeg(t, hour, 10, 21, 30)) })
	record(func() { sc.revoke(hour, seg.LinkKey{IA: addr.MustIA(1, 20), If: 2}, hour) })
	record(func() { sc.publish(hour) })

	data := sc.wal.Bytes()
	// Every truncation point must recover a clean record prefix: the
	// digest equals the live digest after some record k <= records lost.
	for cut := 0; cut <= len(data); cut++ {
		got, st := Recover(data[:cut], Config{Shards: 8})
		if st.Records > uint64(len(digests)) {
			t.Fatalf("cut %d: replayed %d records, only %d journaled", cut, st.Records, len(digests))
		}
		want := New(Config{Shards: 8}).Digest() // empty prefix
		if st.Records > 0 {
			want = digests[st.Records-1]
		}
		if got.Digest() != want {
			t.Fatalf("cut %d: recovered %d records but digest is not that prefix's", cut, st.Records)
		}
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	sc := newWALScenario(Config{Shards: 8})
	sc.register(0, mkSeg(t, 0, 10, 20, 30))
	sc.publish(0)
	sc.register(hour, mkSeg(t, hour, 10, 21, 30))
	sc.publish(hour)

	clean := sc.wal.Bytes()
	for bit := 0; bit < 8; bit++ {
		data := append([]byte(nil), clean...)
		// Flip a bit in the second record's payload (first record spans
		// [0, 8+len) — find it by reading the length prefix).
		first := 8 + int(uint32(data[0])<<24|uint32(data[1])<<16|uint32(data[2])<<8|uint32(data[3]))
		data[first+10] ^= 1 << bit
		got, st := Recover(data, Config{Shards: 8})
		if !st.Truncated {
			t.Fatalf("bit %d: corruption not detected", bit)
		}
		if st.Records != 1 {
			t.Fatalf("bit %d: replayed %d records past corruption", bit, st.Records)
		}
		if got == nil {
			t.Fatalf("bit %d: no service recovered", bit)
		}
	}
}

func TestWALRecoverGarbage(t *testing.T) {
	for _, data := range [][]byte{
		{0xff}, {0, 0, 0}, {0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5},
		make([]byte, 7), make([]byte, 8),
	} {
		svc, st := Recover(data, Config{})
		if svc == nil {
			t.Fatal("garbage WAL must still yield an empty service")
		}
		if st.Records != 0 {
			t.Errorf("garbage WAL replayed %d records", st.Records)
		}
	}
}

// FuzzWALReplay asserts the recovery robustness contract: arbitrary
// mutations of a valid WAL image — truncations, bit flips, random
// prefixes — never panic, and always recover a valid service.
func FuzzWALReplay(f *testing.F) {
	sc := newWALScenario(Config{Shards: 8})
	ts := sim.Time(0)
	p := seg.NewPCB(addr.MustIA(1, 10), 1, ts, 6*hour)
	p, err := p.Extend(fakeSigner{ia: addr.MustIA(1, 10)}, addr.IA{}, 0, 2, nil, 1472)
	if err != nil {
		f.Fatal(err)
	}
	p, err = p.Extend(fakeSigner{ia: addr.MustIA(1, 30)}, addr.IA{}, 1, 0, nil, 1472)
	if err != nil {
		f.Fatal(err)
	}
	sc.register(0, p)
	sc.publish(0)
	sc.revoke(hour, seg.LinkKey{IA: addr.MustIA(1, 10), If: 2}, hour)
	sc.wal.Checkpoint(hour, sc.svc)
	sc.reinstate(2*hour, seg.LinkKey{IA: addr.MustIA(1, 10), If: 2})
	clean := sc.wal.Bytes()

	f.Add(clean, 0, byte(0))
	f.Add(clean, len(clean)/2, byte(0xff))
	f.Add([]byte{}, 0, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, flip int, mask byte) {
		mutated := append([]byte(nil), data...)
		if len(mutated) > 0 && mask != 0 {
			mutated[abs(flip)%len(mutated)] ^= mask
		}
		svc, st := Recover(mutated, Config{Shards: 8})
		if svc == nil {
			t.Fatal("Recover returned nil service")
		}
		// Whatever was recovered must be a functioning service.
		svc.Publish(3 * hour)
		svc.Lookup(3*hour, core1, leafA)
		_ = svc.Digest()
		if st.TruncatedBytes < 0 || st.TruncatedBytes > len(mutated) {
			t.Fatalf("TruncatedBytes = %d of %d", st.TruncatedBytes, len(mutated))
		}
	})
}

func TestRecoveryBenchSmoke(t *testing.T) {
	sc := newWALScenario(Config{Shards: 8})
	for i := uint64(0); i < 8; i++ {
		sc.register(0, mkSeg(t, 0, 10, 20+i, 30))
	}
	sc.publish(0)
	res := RecoveryBench(sc.wal, Config{Shards: 8}, 0)
	if res.Iters != 5 {
		t.Errorf("default iters = %d", res.Iters)
	}
	if res.Records != sc.wal.Records || res.WALBytes != sc.wal.Len() {
		t.Errorf("bench saw records=%d bytes=%d, wal has %d/%d",
			res.Records, res.WALBytes, sc.wal.Records, sc.wal.Len())
	}
	if res.Mean <= 0 || res.Best <= 0 || res.Best > res.Mean || res.MBps <= 0 {
		t.Errorf("timings: best=%v mean=%v mbps=%v", res.Best, res.Mean, res.MBps)
	}
	var b strings.Builder
	res.Print(&b)
	if !strings.Contains(b.String(), "replay=") {
		t.Errorf("print output = %q", b.String())
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// benchWAL journals a pairs-sized mesh plus a mutation tail, returning
// the WAL and the digest the replay must reproduce.
func benchWAL(tb testing.TB, pairs int, checkpoint bool) *WAL {
	tb.Helper()
	sc := newWALScenario(Config{Shards: 16})
	for d := 0; d < pairs; d++ {
		for i := uint64(0); i < 2; i++ {
			sc.register(0, mkSeg(tb, 0, 10, 100+i, uint64(1000+d)))
		}
	}
	sc.publish(0)
	if checkpoint {
		sc.wal.Checkpoint(0, sc.svc)
	}
	for d := 0; d < pairs/8; d++ {
		sc.register(hour, mkSeg(tb, hour, 11, 100, uint64(1000+d)))
	}
	sc.publish(hour)
	return sc.wal
}

// BenchmarkWALRecover measures raw log replay: every mutation since
// genesis re-applied.
func BenchmarkWALRecover(b *testing.B) {
	wal := benchWAL(b, 512, false)
	data := wal.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := Recover(data, Config{Shards: 16})
		if st.Truncated {
			b.Fatal("clean WAL truncated")
		}
	}
}

// BenchmarkWALRecoverCheckpointed measures the production path: one
// checkpoint load plus a short mutation tail.
func BenchmarkWALRecoverCheckpointed(b *testing.B) {
	wal := benchWAL(b, 512, true)
	data := wal.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := Recover(data, Config{Shards: 16})
		if st.Checkpoints != 1 {
			b.Fatal("checkpoint not replayed")
		}
	}
}

// BenchmarkFleetSync measures one anti-entropy round healing a fully
// diverged follower (every shard pulled).
func BenchmarkFleetSync(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := NewFleet(FleetConfig{Replicas: 2, Service: Config{Shards: 16}})
		for d := 0; d < 256; d++ {
			f.Register(0, mkSeg(b, 0, 10, 100, uint64(1000+d)))
		}
		f.Publish(0)
		ia := f.Replica(1).IA
		f.Crash(ia)
		for d := 0; d < 64; d++ {
			f.Register(hour, mkSeg(b, hour, 11, 101, uint64(1000+d)))
		}
		f.Publish(hour)
		f.Restart(ia)
		b.StartTimer()
		if st := f.Sync(2 * hour); st.Pulls != 1 {
			b.Fatalf("pulls = %d", st.Pulls)
		}
	}
}
