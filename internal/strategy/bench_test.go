package strategy

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// benchPaths builds a representative 8-path candidate set with mixed
// telemetry, matching the traffic engine's default MaxPaths.
func benchPaths() []PathView {
	rng := rand.New(rand.NewSource(3))
	paths := make([]PathView, 8)
	for i := range paths {
		hops := 2 + rng.Intn(5)
		paths[i] = PathView{
			Hops:       hops,
			Delay:      time.Duration(5+rng.Intn(30)) * time.Millisecond,
			Bottleneck: 1e7 + rng.Float64()*1e8,
			Sent:       int64(rng.Intn(1 << 24)),
			Busy:       i%3 == 0,
			Loss:       rng.Float64() * 0.1,
			Links:      hops,
			Shared:     rng.Intn(hops),
			RevokedAge: -1,
		}
		paths[i].RTT = 2 * paths[i].Delay
		if i%4 == 1 {
			paths[i].RevokedAge = time.Duration(rng.Int63n(int64(15 * time.Second)))
		}
	}
	return paths
}

// BenchmarkPolicyPick measures the per-decision scoring cost of every
// policy on the hot path (recorded in BENCH_pr10.json, allocs gated at 0
// via scripts/bench_compare.sh and TestPolicyPickAllocs).
func BenchmarkPolicyPick(b *testing.B) {
	paths := benchPaths()
	for _, name := range Names() {
		factory, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			p := factory()
			p.Pick(paths) // warm any internal scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Pick(paths)
			}
		})
	}
}

// TestPolicyPickAllocs pins the steady-state Pick hot path of every
// policy at zero allocations. bench_compare.sh cannot flag a 0 -> N
// allocation regression (its relative-change math treats a zero baseline
// as 0%), so the gate lives here as a hard test.
func TestPolicyPickAllocs(t *testing.T) {
	paths := benchPaths()
	for _, name := range Names() {
		factory, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		p := factory()
		p.Pick(paths) // first call may grow scratch slices
		if allocs := testing.AllocsPerRun(100, func() { p.Pick(paths) }); allocs != 0 {
			t.Errorf("%s: Pick allocates %v/op on the steady-state hot path, want 0", name, allocs)
		}
	}
}

// TestBenchPathsStable pins the benchmark input so BENCH_pr10.json
// comparisons measure the scorers, not drift in the workload.
func TestBenchPathsStable(t *testing.T) {
	got := fmt.Sprintf("%+v", benchPaths())
	again := fmt.Sprintf("%+v", benchPaths())
	if got != again {
		t.Fatal("benchPaths is not deterministic")
	}
}
