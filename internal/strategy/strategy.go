// Package strategy is the path-selection policy laboratory: a pluggable
// interface for scoring and picking among a flow's candidate paths, the
// policy implementations themselves, and a text configuration format for
// parameterizing them.
//
// The axiomatic analysis of path-selection strategies (Baumeister &
// Keshvadi) spans a space much wider than any one transport's heuristic:
// capacity-weighted striping, latency-bounded spilling, disjointness
// maximization, loss adaptation, and hybrid scoring over all of these.
// Each policy here occupies one point of that space; the tournament
// harness in internal/experiments races them across topology × workload ×
// chaos grids (see EXPERIMENTS.md "Strategy tournament").
//
// Policies see one PathView per candidate path, combining static path
// properties (hops, propagation delay, bottleneck capacity) with live
// per-path telemetry the traffic engine maintains: observed loss, an RTT
// estimate, hop disjointness against the flow's active path set, and
// revocation recency from SCMP history and pathdb lookups. Pick must be
// deterministic, must never select a revoked path, and must not allocate
// on the steady-state hot path (policies keep reusable scratch on their
// receiver; CI gates allocs/op at zero).
package strategy

import "time"

// PathView is the policy-visible state of one candidate path of a flow.
// The traffic engine rebuilds it before every decision.
type PathView struct {
	// Hops is the AS-level path length.
	Hops int
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Bottleneck is the smallest link capacity along the path (bytes/s).
	Bottleneck float64
	// Sent is how many bytes the flow has sent on this path so far.
	Sent int64
	// Busy reports that the path is still serializing a previous chunk.
	Busy bool
	// Revoked paths must never be picked.
	Revoked bool

	// Live per-path telemetry (zero values when the engine has nothing
	// to report — policies must treat them as "no signal", not as data).

	// Loss is the observed loss fraction on this path: bytes rewound by
	// SCMP revocations over gross bytes attempted, in [0, 1].
	Loss float64
	// RTT is the engine's round-trip estimate for the path.
	RTT time.Duration
	// Links is the number of inter-AS links the path traverses.
	Links int
	// Shared is how many of the path's links are also used by another
	// path of the flow's active set (paths currently carrying bytes) —
	// the hop-disjointness signal: Shared 0 means fully disjoint.
	Shared int
	// RevokedAge is the time since a revocation was last seen on any of
	// the path's links (SCMP history merged with pathdb revocation
	// recency); negative means never.
	RevokedAge time.Duration
}

func (p PathView) usable() bool { return !p.Revoked }
func (p PathView) idle() bool   { return !p.Revoked && !p.Busy }

// Policy decides, chunk by chunk, which of a flow's candidate paths
// carries the next chunk. Pick returns an index into paths, or -1 to wait
// until a busy path becomes idle (or, when no path is usable at all, to
// make the engine re-query). Implementations must be deterministic and
// must never pick a revoked path.
type Policy interface {
	Name() string
	Pick(paths []PathView) int
}

// Names lists the registered policy names in canonical tournament order.
func Names() []string {
	return []string{"single-best", "round-robin", "weighted", "latency", "disjoint", "hybrid"}
}

// New resolves a bare policy name to a per-flow policy factory with
// default parameters. Parameterized specs go through Parse.
func New(name string) (func() Policy, error) { return Parse(name) }
