package strategy

import "time"

// SingleBest always uses the single lowest-hop-count usable path — the
// strategy of a classic single-path transport that only switches paths on
// revocation. It waits rather than spill to alternatives.
type SingleBest struct{}

// Name implements Policy.
func (*SingleBest) Name() string { return "single-best" }

// Pick implements Policy.
func (*SingleBest) Pick(paths []PathView) int {
	best := -1
	for i, p := range paths {
		if !p.usable() {
			continue
		}
		if best < 0 || p.Hops < paths[best].Hops {
			best = i
		}
	}
	if best < 0 || paths[best].Busy {
		return -1
	}
	return best
}

// RoundRobin rotates chunks across all idle usable paths, the simplest
// capacity-aggregating multipath scheduler.
type RoundRobin struct {
	last int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (s *RoundRobin) Pick(paths []PathView) int {
	n := len(paths)
	for off := 1; off <= n; off++ {
		i := (s.last + off) % n
		if paths[i].idle() {
			s.last = i
			return i
		}
	}
	return -1
}

// WeightedBottleneck is smooth weighted round-robin with each path
// weighted by its bottleneck capacity: paths carry chunks in proportion to
// the capacity they can contribute, which maximizes aggregate goodput over
// heterogeneous path sets.
type WeightedBottleneck struct {
	credit []float64
}

// Name implements Policy.
func (*WeightedBottleneck) Name() string { return "weighted" }

// Pick implements Policy.
func (s *WeightedBottleneck) Pick(paths []PathView) int {
	anyIdle := false
	for _, p := range paths {
		if p.idle() {
			anyIdle = true
			break
		}
	}
	if !anyIdle {
		return -1
	}
	for len(s.credit) < len(paths) {
		s.credit = append(s.credit, 0)
	}
	total := 0.0
	for i, p := range paths {
		if !p.usable() {
			s.credit[i] = 0
			continue
		}
		s.credit[i] += p.Bottleneck
		total += p.Bottleneck
	}
	best := -1
	for i, p := range paths {
		if !p.idle() {
			continue
		}
		if best < 0 || s.credit[i] > s.credit[best] {
			best = i
		}
	}
	s.credit[best] -= total
	return best
}

// LatencyAware prefers the lowest-latency usable path and spills to other
// paths only while their propagation delay stays within Stretch of the
// best — the latency-sensitive strategy of interactive applications.
type LatencyAware struct {
	// Stretch bounds how much slower than the best path an alternative
	// may be (default 1.5).
	Stretch float64
}

// Name implements Policy.
func (*LatencyAware) Name() string { return "latency" }

// Pick implements Policy.
func (s *LatencyAware) Pick(paths []PathView) int {
	stretch := s.Stretch
	if stretch <= 1 {
		stretch = 1.5
	}
	minDelay := time.Duration(-1)
	for _, p := range paths {
		if p.usable() && (minDelay < 0 || p.Delay < minDelay) {
			minDelay = p.Delay
		}
	}
	if minDelay < 0 {
		return -1
	}
	limit := time.Duration(float64(minDelay) * stretch)
	best := -1
	for i, p := range paths {
		if !p.idle() || p.Delay > limit {
			continue
		}
		if best < 0 || p.Delay < paths[best].Delay {
			best = i
		}
	}
	return best
}

// DisjointMax maximizes hop disjointness against the flow's active path
// set: among idle usable paths it picks the one sharing the fewest links
// with paths already carrying bytes, breaking ties by bottleneck capacity
// (descending), then hop count (ascending), then path-set order. Striping
// over maximally disjoint paths minimizes shared-fate: a single link
// failure or congested bottleneck hits as few of the flow's paths as
// possible — the disjointness-maximizing strategy of the axiomatic
// path-selection analysis.
//
// Axiom (pinned by property tests): the picked path always has minimal
// Shared among the idle usable candidates, so a path whose overlap with
// the active set strictly contains another candidate's overlap — a
// dominated superset-overlap path — is never selected.
type DisjointMax struct{}

// Name implements Policy.
func (*DisjointMax) Name() string { return "disjoint" }

// Pick implements Policy.
func (*DisjointMax) Pick(paths []PathView) int {
	best := -1
	for i, p := range paths {
		if !p.idle() {
			continue
		}
		if best < 0 || disjointLess(p, paths[best]) {
			best = i
		}
	}
	return best
}

// disjointLess reports whether a is strictly preferable to b under the
// disjointness order (fewer shared links, then more capacity, then fewer
// hops). Equal keys keep the earlier index.
func disjointLess(a, b PathView) bool {
	if a.Shared != b.Shared {
		return a.Shared < b.Shared
	}
	if a.Bottleneck != b.Bottleneck {
		return a.Bottleneck > b.Bottleneck
	}
	return a.Hops < b.Hops
}

// HybridWeights parameterize the hybrid axiomatic scorer. All weights are
// non-negative; a zero weight disables its term.
type HybridWeights struct {
	// Capacity rewards bottleneck capacity (normalized to the best
	// usable path's).
	Capacity float64
	// Latency penalizes propagation delay (normalized to the slowest
	// usable path's).
	Latency float64
	// Loss penalizes the observed loss fraction.
	Loss float64
	// Disjoint penalizes overlap with the active set (Shared/Links).
	Disjoint float64
	// Hops penalizes path length (normalized to the longest usable
	// path's).
	Hops float64
	// Revocation penalizes paths whose links saw a recent revocation,
	// decaying linearly to zero over RevocationWindow.
	Revocation float64
	// RevocationWindow is how long a past revocation keeps penalizing a
	// path (default 10s).
	RevocationWindow time.Duration
}

// DefaultHybridWeights balance the terms for general bulk transfer:
// capacity first, loss avoidance strong, latency and disjointness as
// moderate tiebreakers.
func DefaultHybridWeights() HybridWeights {
	return HybridWeights{
		Capacity:         1,
		Latency:          0.5,
		Loss:             2,
		Disjoint:         0.5,
		Hops:             0.25,
		Revocation:       1,
		RevocationWindow: 10 * time.Second,
	}
}

// Hybrid scores every path as a weighted sum of normalized attributes —
// the hybrid scoring family of the axiomatic analysis — and picks the
// idle usable path with the highest score. Normalizers are shared across
// the candidate set, so a path at least as good as another on every
// attribute never scores lower (the monotonicity axiom, pinned by
// property tests and mutation-validated against a naive reference
// scorer).
type Hybrid struct {
	// W are the scoring weights; the zero value is replaced by
	// DefaultHybridWeights on first use.
	W HybridWeights

	scores []float64 // per-Pick scratch, reused to keep Pick 0-alloc
}

// NewHybrid builds a Hybrid with the default weights.
func NewHybrid() *Hybrid { return &Hybrid{W: DefaultHybridWeights()} }

// Name implements Policy.
func (*Hybrid) Name() string { return "hybrid" }

// hybridNorm holds the per-candidate-set normalizers (maxima over usable
// paths; zero when no usable path contributes the attribute).
type hybridNorm struct {
	bottleneck float64
	delay      float64
	hops       float64
}

// norm computes the shared normalizers over the usable paths.
func hybridNormalize(paths []PathView) hybridNorm {
	var n hybridNorm
	for _, p := range paths {
		if !p.usable() {
			continue
		}
		if p.Bottleneck > n.bottleneck {
			n.bottleneck = p.Bottleneck
		}
		if d := float64(p.Delay); d > n.delay {
			n.delay = d
		}
		if h := float64(p.Hops); h > n.hops {
			n.hops = h
		}
	}
	return n
}

// score computes one path's score under weights w and normalizers n.
func (w *HybridWeights) score(p PathView, n hybridNorm) float64 {
	s := 0.0
	if n.bottleneck > 0 {
		s += w.Capacity * (p.Bottleneck / n.bottleneck)
	}
	if n.delay > 0 {
		s -= w.Latency * (float64(p.Delay) / n.delay)
	}
	s -= w.Loss * p.Loss
	if p.Links > 0 {
		s -= w.Disjoint * (float64(p.Shared) / float64(p.Links))
	}
	if n.hops > 0 {
		s -= w.Hops * (float64(p.Hops) / n.hops)
	}
	if p.RevokedAge >= 0 && w.RevocationWindow > 0 && p.RevokedAge < w.RevocationWindow {
		s -= w.Revocation * (1 - float64(p.RevokedAge)/float64(w.RevocationWindow))
	}
	return s
}

// weights returns the effective weights (defaults for the zero value).
func (h *Hybrid) weights() HybridWeights {
	if h.W == (HybridWeights{}) {
		return DefaultHybridWeights()
	}
	return h.W
}

// Scores returns every path's score under the policy's weights, in path
// order (revoked paths score 0 and are never picked). It allocates and is
// meant for tests and offline analysis; Pick uses internal scratch.
func (h *Hybrid) Scores(paths []PathView) []float64 {
	w := h.weights()
	n := hybridNormalize(paths)
	out := make([]float64, len(paths))
	for i, p := range paths {
		if !p.usable() {
			continue
		}
		out[i] = w.score(p, n)
	}
	return out
}

// Pick implements Policy.
func (h *Hybrid) Pick(paths []PathView) int {
	w := h.weights()
	n := hybridNormalize(paths)
	for len(h.scores) < len(paths) {
		h.scores = append(h.scores, 0)
	}
	best := -1
	for i, p := range paths {
		if !p.idle() {
			continue
		}
		h.scores[i] = w.score(p, n)
		if best < 0 || h.scores[i] > h.scores[best] {
			best = i
		}
	}
	return best
}
