package strategy

import (
	"testing"
	"time"
)

// FuzzPolicyConfig fuzzes the policy-config text format: Parse must never
// panic, an accepted spec must yield a working factory whose policy has a
// registered name and honors the Pick contract, and the bare name must
// re-parse (specs are round-trippable to their defaults).
func FuzzPolicyConfig(f *testing.F) {
	for _, seed := range []string{
		"single-best",
		"round-robin",
		"weighted",
		"latency",
		"latency stretch=2.5",
		"disjoint",
		"hybrid",
		"hybrid cap=2 lat=1 loss=3 disj=0.75 hops=0.5 rev=1.5 revwin=30s",
		"hybrid revwin=1ms",
		"",
		"nope",
		"latency stretch=NaN",
		"latency stretch=-Inf",
		"hybrid cap=-1",
		"hybrid revwin=0s",
		"hybrid cap=1e309",
		"latency stretch=2 stretch=3",
		"weighted =",
		"single-best\tstretch=2",
		"hybrid cap=0 lat=0 loss=0 disj=0 hops=0 rev=0",
	} {
		f.Add(seed)
	}
	known := map[string]bool{}
	for _, name := range Names() {
		known[name] = true
	}
	probe := []PathView{
		{Hops: 2, Delay: 5 * time.Millisecond, Bottleneck: 1e8, Links: 2, RevokedAge: -1},
		{Hops: 3, Delay: 8 * time.Millisecond, Bottleneck: 2e8, Links: 3, Shared: 1, Revoked: true},
		{Hops: 4, Delay: 2 * time.Millisecond, Bottleneck: 5e7, Links: 4, Loss: 0.5,
			RevokedAge: time.Second, Busy: true},
	}
	f.Fuzz(func(t *testing.T, spec string) {
		factory, err := Parse(spec)
		if err != nil {
			if factory != nil {
				t.Fatalf("Parse(%q): non-nil factory with error %v", spec, err)
			}
			return
		}
		p := factory()
		if p == nil {
			t.Fatalf("Parse(%q): factory built nil policy", spec)
		}
		if !known[p.Name()] {
			t.Fatalf("Parse(%q): unregistered policy name %q", spec, p.Name())
		}
		if _, err := Parse(p.Name()); err != nil {
			t.Fatalf("Parse(%q): name %q does not re-parse: %v", spec, p.Name(), err)
		}
		for _, paths := range [][]PathView{nil, probe, probe[1:2]} {
			got := p.Pick(paths)
			if got < -1 || got >= len(paths) {
				t.Fatalf("Parse(%q): Pick out of range: %d", spec, got)
			}
			if got >= 0 && (paths[got].Revoked || paths[got].Busy) {
				t.Fatalf("Parse(%q): picked non-idle path %d", spec, got)
			}
		}
	})
}
