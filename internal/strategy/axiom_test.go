package strategy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomPathSet draws a candidate set with adversarial variety: busy and
// revoked paths mixed in, zero and missing telemetry, ties.
func randomPathSet(rng *rand.Rand) []PathView {
	n := 1 + rng.Intn(8)
	paths := make([]PathView, n)
	for i := range paths {
		hops := 1 + rng.Intn(8)
		p := PathView{
			Hops:       hops,
			Delay:      time.Duration(1+rng.Intn(50)) * time.Millisecond,
			Bottleneck: 1e6 + rng.Float64()*1e9,
			Sent:       int64(rng.Intn(1 << 20)),
			Busy:       rng.Float64() < 0.3,
			Revoked:    rng.Float64() < 0.2,
			Loss:       rng.Float64(),
			Links:      hops,
			Shared:     rng.Intn(hops + 1),
			RevokedAge: -1,
		}
		p.RTT = 2 * p.Delay
		if rng.Float64() < 0.5 {
			p.RevokedAge = time.Duration(rng.Int63n(int64(20 * time.Second)))
		}
		paths[i] = p
	}
	return paths
}

// checkPickInvariants verifies the universal Pick contract on one set:
// the result is -1 or a valid index, a picked path is never revoked and
// never busy, and the decision is deterministic (a fresh instance of the
// same policy picks the same index).
func checkPickInvariants(factory func() Policy, paths []PathView) error {
	got := factory().Pick(paths)
	if got < -1 || got >= len(paths) {
		return fmt.Errorf("pick %d out of range [-1, %d)", got, len(paths))
	}
	if got >= 0 {
		if paths[got].Revoked {
			return fmt.Errorf("picked revoked path %d", got)
		}
		if paths[got].Busy {
			return fmt.Errorf("picked busy path %d", got)
		}
	}
	if again := factory().Pick(paths); again != got {
		return fmt.Errorf("nondeterministic: pick %d then %d", got, again)
	}
	return nil
}

func TestPickInvariantsAllPolicies(t *testing.T) {
	for _, name := range Names() {
		factory, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 2000; trial++ {
			paths := randomPathSet(rng)
			if err := checkPickInvariants(factory, paths); err != nil {
				t.Fatalf("%s trial %d: %v (paths %+v)", name, trial, err, paths)
			}
		}
	}
}

// checkDisjointAxiom verifies the disjointness axiom on one set: the
// picked path has minimal Shared among the idle usable candidates. A
// path whose overlap with the active set is a strict superset of another
// candidate's therefore has strictly larger Shared and can never win —
// dominated superset-overlap paths are never selected.
func checkDisjointAxiom(pick func([]PathView) int, paths []PathView) error {
	got := pick(paths)
	anyIdle := false
	for _, p := range paths {
		if !p.Revoked && !p.Busy {
			anyIdle = true
			break
		}
	}
	if !anyIdle {
		if got != -1 {
			return fmt.Errorf("picked %d with nothing idle", got)
		}
		return nil
	}
	if got < 0 {
		return fmt.Errorf("returned -1 with an idle usable path available")
	}
	if paths[got].Revoked || paths[got].Busy {
		return fmt.Errorf("picked non-idle path %d", got)
	}
	for i, p := range paths {
		if p.Revoked || p.Busy {
			continue
		}
		if p.Shared < paths[got].Shared {
			return fmt.Errorf("picked path %d (Shared %d) over less-overlapping path %d (Shared %d)",
				got, paths[got].Shared, i, p.Shared)
		}
	}
	return nil
}

func TestDisjointMaxAxiom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pick := func(paths []PathView) int { return (&DisjointMax{}).Pick(paths) }
	for trial := 0; trial < 5000; trial++ {
		paths := randomPathSet(rng)
		if err := checkDisjointAxiom(pick, paths); err != nil {
			t.Fatalf("trial %d: %v (paths %+v)", trial, err, paths)
		}
	}
}

// revPenalty is the hybrid revocation penalty a path incurs under w —
// restated independently for the dominance relation below.
func revPenalty(p PathView, w HybridWeights) float64 {
	if p.RevokedAge < 0 || w.RevocationWindow <= 0 || p.RevokedAge >= w.RevocationWindow {
		return 0
	}
	return 1 - float64(p.RevokedAge)/float64(w.RevocationWindow)
}

// disjointRatio is the hybrid disjointness penalty base (Shared/Links).
func disjointRatio(p PathView) float64 {
	if p.Links <= 0 {
		return 0
	}
	return float64(p.Shared) / float64(p.Links)
}

// dominates reports that a is at least as good as b on every scored
// attribute and strictly better on bottleneck capacity. The monotonicity
// axiom demands score(a) > score(b) for such pairs (with a positive
// capacity weight).
func dominates(a, b PathView, w HybridWeights) bool {
	return a.Bottleneck > b.Bottleneck &&
		a.Delay <= b.Delay &&
		a.Loss <= b.Loss &&
		disjointRatio(a) <= disjointRatio(b) &&
		a.Hops <= b.Hops &&
		revPenalty(a, w) <= revPenalty(b, w)
}

// checkMonotonicity verifies the monotonicity axiom on one set under
// scorer: a usable path that dominates another usable path never scores
// lower (strictly higher, since dominance includes strictly more
// capacity).
func checkMonotonicity(scorer func([]PathView) []float64, w HybridWeights, paths []PathView) error {
	scores := scorer(paths)
	if len(scores) != len(paths) {
		return fmt.Errorf("scorer returned %d scores for %d paths", len(scores), len(paths))
	}
	for i, a := range paths {
		if a.Revoked {
			continue
		}
		for j, b := range paths {
			if i == j || b.Revoked || !dominates(a, b, w) {
				continue
			}
			if scores[i] <= scores[j] {
				return fmt.Errorf("path %d dominates %d but scores %v <= %v",
					i, j, scores[i], scores[j])
			}
		}
	}
	return nil
}

func TestHybridMonotonicityAxiom(t *testing.T) {
	h := NewHybrid()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		paths := randomPathSet(rng)
		if err := checkMonotonicity(h.Scores, h.W, paths); err != nil {
			t.Fatalf("trial %d: %v (paths %+v)", trial, err, paths)
		}
	}
}

// referenceScores is the naive reference scorer: the hybrid scoring
// definition restated term by term with its own normalizer scan, no
// scratch reuse, no shortcuts. The production scorer must agree with it
// to within floating-point noise.
func referenceScores(w HybridWeights, paths []PathView) []float64 {
	var maxB, maxD, maxH float64
	for _, p := range paths {
		if p.Revoked {
			continue
		}
		maxB = math.Max(maxB, p.Bottleneck)
		maxD = math.Max(maxD, float64(p.Delay))
		maxH = math.Max(maxH, float64(p.Hops))
	}
	out := make([]float64, len(paths))
	for i, p := range paths {
		if p.Revoked {
			continue
		}
		capTerm := 0.0
		if maxB > 0 {
			capTerm = w.Capacity * p.Bottleneck / maxB
		}
		latTerm := 0.0
		if maxD > 0 {
			latTerm = w.Latency * float64(p.Delay) / maxD
		}
		lossTerm := w.Loss * p.Loss
		disjTerm := w.Disjoint * disjointRatio(p)
		hopsTerm := 0.0
		if maxH > 0 {
			hopsTerm = w.Hops * float64(p.Hops) / maxH
		}
		revTerm := w.Revocation * revPenalty(p, w)
		out[i] = capTerm - latTerm - lossTerm - disjTerm - hopsTerm - revTerm
	}
	return out
}

// checkAgainstReference compares scorer to the naive reference on one
// set.
func checkAgainstReference(scorer func([]PathView) []float64, w HybridWeights, paths []PathView) error {
	got := scorer(paths)
	want := referenceScores(w, paths)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			return fmt.Errorf("path %d: score %v, reference %v", i, got[i], want[i])
		}
	}
	return nil
}

func TestHybridMatchesReference(t *testing.T) {
	weights := []HybridWeights{
		DefaultHybridWeights(),
		{Capacity: 2, Latency: 1, Loss: 0.5, Disjoint: 1, Hops: 1, Revocation: 3, RevocationWindow: 5 * time.Second},
		{Capacity: 1, RevocationWindow: time.Second},
	}
	for wi, w := range weights {
		h := &Hybrid{W: w}
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 2000; trial++ {
			paths := randomPathSet(rng)
			if err := checkAgainstReference(h.Scores, w, paths); err != nil {
				t.Fatalf("weights %d trial %d: %v", wi, trial, err)
			}
		}
	}
}

// --- Mutation validation -------------------------------------------------
//
// The axiom and differential checks above are only worth their runtime if
// they actually catch broken scorers. Each mutant below seeds one
// realistic implementation bug; the test asserts the corresponding check
// REJECTS it within the same trial budget. A mutant slipping through
// means the battery lost its teeth.

// mutantScorer derives a buggy scorer from the real one.
type mutantScorer struct {
	name   string
	scores func(w HybridWeights, paths []PathView) []float64
}

func hybridMutants() []mutantScorer {
	return []mutantScorer{
		{
			// Sign flip: capacity penalizes instead of rewarding.
			name: "capacity-sign-flip",
			scores: func(w HybridWeights, paths []PathView) []float64 {
				flipped := w
				out := referenceScores(flipped, paths)
				var maxB float64
				for _, p := range paths {
					if !p.Revoked {
						maxB = math.Max(maxB, p.Bottleneck)
					}
				}
				for i, p := range paths {
					if !p.Revoked && maxB > 0 {
						out[i] -= 2 * w.Capacity * p.Bottleneck / maxB
					}
				}
				return out
			},
		},
		{
			// Per-path normalizer: each path normalized by itself, so the
			// capacity term degenerates to a constant.
			name: "per-path-normalizer",
			scores: func(w HybridWeights, paths []PathView) []float64 {
				out := referenceScores(w, paths)
				var maxB float64
				for _, p := range paths {
					if !p.Revoked {
						maxB = math.Max(maxB, p.Bottleneck)
					}
				}
				for i, p := range paths {
					if !p.Revoked && maxB > 0 && p.Bottleneck > 0 {
						out[i] += w.Capacity*(p.Bottleneck/p.Bottleneck) - w.Capacity*p.Bottleneck/maxB
					}
				}
				return out
			},
		},
		{
			// Dropped loss penalty: the loss term is silently skipped.
			name: "dropped-loss-term",
			scores: func(w HybridWeights, paths []PathView) []float64 {
				out := referenceScores(w, paths)
				for i, p := range paths {
					if !p.Revoked {
						out[i] += w.Loss * p.Loss
					}
				}
				return out
			},
		},
		{
			// Inverted revocation decay: old revocations penalize more
			// than fresh ones.
			name: "inverted-revocation-decay",
			scores: func(w HybridWeights, paths []PathView) []float64 {
				out := referenceScores(w, paths)
				for i, p := range paths {
					if p.Revoked {
						continue
					}
					out[i] += w.Revocation * revPenalty(p, w)
					if p.RevokedAge >= 0 && w.RevocationWindow > 0 && p.RevokedAge < w.RevocationWindow {
						out[i] -= w.Revocation * (float64(p.RevokedAge) / float64(w.RevocationWindow))
					}
				}
				return out
			},
		},
	}
}

// runHybridChecks runs the full hybrid battery (monotonicity + reference
// differential) against a scorer and reports the first violation.
func runHybridChecks(scorer func([]PathView) []float64, w HybridWeights) error {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		paths := randomPathSet(rng)
		if err := checkMonotonicity(scorer, w, paths); err != nil {
			return fmt.Errorf("monotonicity (trial %d): %w", trial, err)
		}
		if err := checkAgainstReference(scorer, w, paths); err != nil {
			return fmt.Errorf("reference differential (trial %d): %w", trial, err)
		}
	}
	return nil
}

func TestHybridMutationValidation(t *testing.T) {
	w := DefaultHybridWeights()
	// Sanity: the real scorer survives the full battery.
	if err := runHybridChecks(NewHybrid().Scores, w); err != nil {
		t.Fatalf("real scorer failed its own battery: %v", err)
	}
	for _, m := range hybridMutants() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			scorer := func(paths []PathView) []float64 { return m.scores(w, paths) }
			if err := runHybridChecks(scorer, w); err == nil {
				t.Fatalf("mutant %q survived the battery — the axiom tests have no teeth", m.name)
			}
		})
	}
}

func TestDisjointMutationValidation(t *testing.T) {
	mutants := []struct {
		name string
		pick func([]PathView) int
	}{
		{
			// Inverted objective: maximizes overlap instead of minimizing.
			name: "maximizes-shared",
			pick: func(paths []PathView) int {
				best := -1
				for i, p := range paths {
					if p.Revoked || p.Busy {
						continue
					}
					if best < 0 || p.Shared > paths[best].Shared {
						best = i
					}
				}
				return best
			},
		},
		{
			// Dropped revocation guard: revoked paths compete.
			name: "no-revoked-guard",
			pick: func(paths []PathView) int {
				best := -1
				for i, p := range paths {
					if p.Busy {
						continue
					}
					if best < 0 || p.Shared < paths[best].Shared {
						best = i
					}
				}
				return best
			},
		},
		{
			// Off-by-one scan: skips the first candidate.
			name: "skips-first-path",
			pick: func(paths []PathView) int {
				best := -1
				for i := 1; i < len(paths); i++ {
					p := paths[i]
					if p.Revoked || p.Busy {
						continue
					}
					if best < 0 || p.Shared < paths[best].Shared {
						best = i
					}
				}
				return best
			},
		},
	}
	check := func(pick func([]PathView) int) error {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 5000; trial++ {
			paths := randomPathSet(rng)
			if err := checkDisjointAxiom(pick, paths); err != nil {
				return err
			}
			got := pick(paths)
			if got >= 0 && (paths[got].Revoked || paths[got].Busy) {
				return fmt.Errorf("picked non-idle path %d", got)
			}
		}
		return nil
	}
	if err := check(func(paths []PathView) int { return (&DisjointMax{}).Pick(paths) }); err != nil {
		t.Fatalf("real policy failed its own battery: %v", err)
	}
	for _, m := range mutants {
		m := m
		t.Run(m.name, func(t *testing.T) {
			if err := check(m.pick); err == nil {
				t.Fatalf("mutant %q survived the battery — the axiom tests have no teeth", m.name)
			}
		})
	}
}
