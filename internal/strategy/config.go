package strategy

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Parse resolves a policy spec to a per-flow policy factory. A spec is a
// policy name optionally followed by whitespace-separated key=value
// parameters:
//
//	single-best
//	round-robin
//	weighted
//	latency [stretch=<float >1>]
//	disjoint
//	hybrid  [cap=<w>] [lat=<w>] [loss=<w>] [disj=<w>] [hops=<w>]
//	        [rev=<w>] [revwin=<duration>]
//
// Weights must be finite and non-negative; latency's stretch must be a
// finite value > 1; hybrid's revwin must be a positive Go duration.
// Unknown names, unknown keys, malformed pairs, and out-of-range values
// are errors. The factory builds an independent policy per flow (policies
// are stateful).
func Parse(spec string) (func() Policy, error) {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return nil, fmt.Errorf("strategy: empty policy spec")
	}
	name, params := fields[0], fields[1:]
	kv, err := parseParams(params)
	if err != nil {
		return nil, fmt.Errorf("strategy: %q: %w", name, err)
	}
	switch name {
	case "single-best":
		if err := noParams(name, kv); err != nil {
			return nil, err
		}
		return func() Policy { return &SingleBest{} }, nil
	case "round-robin":
		if err := noParams(name, kv); err != nil {
			return nil, err
		}
		return func() Policy { return &RoundRobin{} }, nil
	case "weighted":
		if err := noParams(name, kv); err != nil {
			return nil, err
		}
		return func() Policy { return &WeightedBottleneck{} }, nil
	case "latency":
		stretch := 1.5
		for k, v := range kv {
			switch k {
			case "stretch":
				f, err := parseFloat(k, v)
				if err != nil {
					return nil, fmt.Errorf("strategy: %q: %w", name, err)
				}
				if f <= 1 {
					return nil, fmt.Errorf("strategy: %q: stretch must be > 1, got %v", name, v)
				}
				stretch = f
			default:
				return nil, fmt.Errorf("strategy: %q: unknown parameter %q", name, k)
			}
		}
		return func() Policy { return &LatencyAware{Stretch: stretch} }, nil
	case "disjoint":
		if err := noParams(name, kv); err != nil {
			return nil, err
		}
		return func() Policy { return &DisjointMax{} }, nil
	case "hybrid":
		w := DefaultHybridWeights()
		for k, v := range kv {
			var dst *float64
			switch k {
			case "cap":
				dst = &w.Capacity
			case "lat":
				dst = &w.Latency
			case "loss":
				dst = &w.Loss
			case "disj":
				dst = &w.Disjoint
			case "hops":
				dst = &w.Hops
			case "rev":
				dst = &w.Revocation
			case "revwin":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("strategy: %q: revwin: %w", name, err)
				}
				if d <= 0 {
					return nil, fmt.Errorf("strategy: %q: revwin must be positive, got %v", name, v)
				}
				w.RevocationWindow = d
				continue
			default:
				return nil, fmt.Errorf("strategy: %q: unknown parameter %q", name, k)
			}
			f, err := parseFloat(k, v)
			if err != nil {
				return nil, fmt.Errorf("strategy: %q: %w", name, err)
			}
			if f < 0 {
				return nil, fmt.Errorf("strategy: %q: %s must be non-negative, got %v", name, k, v)
			}
			*dst = f
		}
		if w.Capacity == 0 && w.Latency == 0 && w.Loss == 0 &&
			w.Disjoint == 0 && w.Hops == 0 && w.Revocation == 0 {
			return nil, fmt.Errorf("strategy: %q: all weights zero", name)
		}
		return func() Policy { return &Hybrid{W: w} }, nil
	default:
		return nil, fmt.Errorf("strategy: unknown policy %q", name)
	}
}

// parseParams splits key=value fields, rejecting malformed pairs and
// duplicate keys.
func parseParams(fields []string) (map[string]string, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	kv := make(map[string]string, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed parameter %q (want key=value)", f)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate parameter %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

// noParams rejects any parameters for policies that take none.
func noParams(name string, kv map[string]string) error {
	for k := range kv {
		return fmt.Errorf("strategy: %q takes no parameters, got %q", name, k)
	}
	return nil
}

// parseFloat parses a finite float parameter value.
func parseFloat(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", key, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("%s must be finite, got %v", key, val)
	}
	return f, nil
}
