package strategy

import (
	"strings"
	"testing"
	"time"
)

func TestNamesResolve(t *testing.T) {
	for _, name := range Names() {
		factory, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		p := factory()
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"nope",
		"single-best stretch=2",
		"round-robin x=1",
		"weighted w=",
		"latency stretch=1",
		"latency stretch=0.5",
		"latency stretch=abc",
		"latency stretch=+Inf",
		"latency stretch=NaN",
		"latency warp=2",
		"latency stretch=2 stretch=3",
		"latency stretch",
		"latency =2",
		"disjoint k=1",
		"hybrid cap=-1",
		"hybrid cap=NaN",
		"hybrid revwin=0s",
		"hybrid revwin=-1s",
		"hybrid revwin=banana",
		"hybrid flux=3",
		"hybrid cap=0 lat=0 loss=0 disj=0 hops=0 rev=0 revwin=1s",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestParseParameters(t *testing.T) {
	factory, err := Parse("latency stretch=2.5")
	if err != nil {
		t.Fatal(err)
	}
	la, ok := factory().(*LatencyAware)
	if !ok || la.Stretch != 2.5 {
		t.Fatalf("Parse(latency stretch=2.5) = %#v", factory())
	}

	factory, err = Parse("hybrid cap=2 lat=1 loss=3 disj=0.75 hops=0.5 rev=1.5 revwin=30s")
	if err != nil {
		t.Fatal(err)
	}
	h, ok := factory().(*Hybrid)
	if !ok {
		t.Fatalf("Parse(hybrid ...) = %#v", factory())
	}
	want := HybridWeights{
		Capacity: 2, Latency: 1, Loss: 3, Disjoint: 0.75, Hops: 0.5,
		Revocation: 1.5, RevocationWindow: 30 * time.Second,
	}
	if h.W != want {
		t.Fatalf("hybrid weights = %+v, want %+v", h.W, want)
	}

	// Unspecified hybrid keys keep their defaults.
	factory, err = Parse("hybrid loss=5")
	if err != nil {
		t.Fatal(err)
	}
	h = factory().(*Hybrid)
	want = DefaultHybridWeights()
	want.Loss = 5
	if h.W != want {
		t.Fatalf("hybrid loss=5 weights = %+v, want %+v", h.W, want)
	}
}

func TestParseErrorMentionsPolicy(t *testing.T) {
	_, err := Parse("latency stretch=0.5")
	if err == nil || !strings.Contains(err.Error(), "latency") {
		t.Fatalf("error should name the policy: %v", err)
	}
}

func TestDisjointMaxPick(t *testing.T) {
	paths := []PathView{
		{Shared: 2, Bottleneck: 100, Hops: 3, Links: 3},
		{Shared: 0, Bottleneck: 50, Hops: 5, Links: 5},
		{Shared: 1, Bottleneck: 200, Hops: 2, Links: 2},
	}
	p := &DisjointMax{}
	if got := p.Pick(paths); got != 1 {
		t.Fatalf("Pick = %d, want 1 (fully disjoint path)", got)
	}
	// When disjointness ties, capacity breaks it.
	paths[1].Shared = 1
	if got := p.Pick(paths); got != 2 {
		t.Fatalf("Pick = %d, want 2 (tie on Shared, higher Bottleneck)", got)
	}
	// Busy and revoked paths are never picked.
	paths[2].Busy = true
	if got := p.Pick(paths); got != 1 {
		t.Fatalf("Pick = %d, want 1 (2 is busy)", got)
	}
	paths[1].Revoked = true
	if got := p.Pick(paths); got != 0 {
		t.Fatalf("Pick = %d, want 0 (1 revoked, 2 busy)", got)
	}
	paths[0].Busy = true
	if got := p.Pick(paths); got != -1 {
		t.Fatalf("Pick = %d, want -1 (nothing idle)", got)
	}
}

func TestHybridPick(t *testing.T) {
	h := NewHybrid()
	// The dominant path (more capacity, less of everything bad) wins.
	paths := []PathView{
		{Hops: 4, Delay: 20 * time.Millisecond, Bottleneck: 1e8, Links: 4, RevokedAge: -1},
		{Hops: 3, Delay: 10 * time.Millisecond, Bottleneck: 2e8, Links: 3, RevokedAge: -1},
	}
	if got := h.Pick(paths); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
	// A fresh revocation on the winner pushes the choice to the clean path.
	paths[1].RevokedAge = 100 * time.Millisecond
	if got := h.Pick(paths); got != 0 {
		t.Fatalf("Pick = %d, want 0 (path 1 recently revoked)", got)
	}
	// An old revocation (outside the window) no longer penalizes.
	paths[1].RevokedAge = time.Minute
	if got := h.Pick(paths); got != 1 {
		t.Fatalf("Pick = %d, want 1 (revocation aged out)", got)
	}
	// Zero-value Hybrid falls back to the default weights.
	var zero Hybrid
	if got := zero.Pick(paths); got != 1 {
		t.Fatalf("zero-value Pick = %d, want 1", got)
	}
	if got := h.Pick(nil); got != -1 {
		t.Fatalf("Pick(nil) = %d, want -1", got)
	}
}

func TestHybridScoresMatchPick(t *testing.T) {
	h := NewHybrid()
	paths := []PathView{
		{Hops: 3, Delay: 15 * time.Millisecond, Bottleneck: 1e8, Links: 3, Loss: 0.1, Shared: 1, RevokedAge: -1},
		{Hops: 5, Delay: 25 * time.Millisecond, Bottleneck: 3e8, Links: 5, Shared: 0, RevokedAge: -1},
		{Hops: 2, Delay: 5 * time.Millisecond, Bottleneck: 5e7, Links: 2, Shared: 2, RevokedAge: 2 * time.Second},
	}
	scores := h.Scores(paths)
	best, bestScore := -1, 0.0
	for i, s := range scores {
		if best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	if got := h.Pick(paths); got != best {
		t.Fatalf("Pick = %d but Scores argmax = %d (%v)", got, best, scores)
	}
}
