// SCMP wire format: control messages travel as SCION packets with
// NextHdr = NextHdrSCMP and an empty path type — they are routed by
// walking the quoted original path backwards hop by hop, so they need
// no path header of their own. The payload is a fixed 24-byte SCMP
// header followed by a quote of the original packet's header bytes:
//
//	0   Type
//	1   Code
//	2   reserved (2 bytes)
//	4   Offender ISD-AS (8 bytes)   AS that generated the message
//	12  Link ISD-AS (8 bytes)       revoked link: upstream AS
//	20  Link interface (2 bytes)    revoked link: upstream interface
//	22  WalkIdx                     current position on the quoted path
//	23  reserved
//	24  quote: original packet header (common + address + path)
//
// WalkIdx starts at the quoted path's hop index where the message was
// generated and is decremented in place by each border router that
// relays the message toward the original sender (the mirror image of
// the CurrHF increment on the forward direction).
package slayers

import (
	"encoding/binary"
	"fmt"

	"scionmpr/internal/addr"
)

// SCMP message types, mirroring dataplane.SCMPType.
const (
	SCMPTypeRevokedLink     uint8 = 1
	SCMPTypeBadMAC          uint8 = 2
	SCMPTypeDestUnreachable uint8 = 3
)

// SCMPHdrLen is the fixed SCMP header size preceding the quote.
const SCMPHdrLen = 24

// SCMP is a decoded (or to-be-serialized) SCMP payload.
type SCMP struct {
	Type     uint8
	Code     uint8
	Offender addr.IA
	LinkIA   addr.IA
	LinkIf   addr.IfID
	WalkIdx  uint8
	// Quote holds the original packet's header bytes (aliases the
	// decode buffer after DecodeFromBytes).
	Quote []byte

	raw []byte // payload alias after DecodeFromBytes
}

// SerializeTo writes the SCMP payload (header + quote) into buf and
// returns the number of bytes written.
func (m *SCMP) SerializeTo(buf []byte) (int, error) {
	n := SCMPHdrLen + len(m.Quote)
	if len(buf) < n {
		return 0, fmt.Errorf("slayers: buffer of %d bytes, SCMP needs %d", len(buf), n)
	}
	buf[0] = m.Type
	buf[1] = m.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint64(buf[4:12], m.Offender.Uint64())
	binary.BigEndian.PutUint64(buf[12:20], m.LinkIA.Uint64())
	binary.BigEndian.PutUint16(buf[20:22], uint16(m.LinkIf))
	buf[22] = m.WalkIdx
	buf[23] = 0
	copy(buf[24:n], m.Quote)
	return n, nil
}

// DecodeFromBytes parses an SCMP payload. Quote aliases data.
func (m *SCMP) DecodeFromBytes(data []byte) error {
	if len(data) < SCMPHdrLen {
		return fmt.Errorf("slayers: SCMP payload of %d bytes shorter than header", len(data))
	}
	m.Type = data[0]
	m.Code = data[1]
	m.Offender = addr.IAFromUint64(binary.BigEndian.Uint64(data[4:12]))
	m.LinkIA = addr.IAFromUint64(binary.BigEndian.Uint64(data[12:20]))
	m.LinkIf = addr.IfID(binary.BigEndian.Uint16(data[20:22]))
	m.WalkIdx = data[22]
	m.Quote = data[SCMPHdrLen:]
	m.raw = data
	return nil
}

// SetWalkIdx rewrites the walk position in place in the decoded buffer.
func (m *SCMP) SetWalkIdx(i uint8) error {
	if m.raw == nil {
		return fmt.Errorf("slayers: SetWalkIdx without decoded SCMP")
	}
	m.WalkIdx = i
	m.raw[22] = i
	return nil
}
