// Package slayers defines the SCION packet wire format: the common
// header, the address header, and the standard one-segment SCION path
// header with InfoField/HopField layouts, following the reference
// layout of the SCION header specification (and the shape of the
// reference implementation's slayers package) closely enough that a
// byte-level forwarding engine can run on real packet buffers.
//
// Both directions are allocation-free over caller-owned buffers:
// SerializeTo writes into a caller slice, DecodeFromBytes parses by
// aliasing the input (decoded host addresses and the payload share the
// input buffer's backing array). The decoder is total: arbitrary input
// bytes either decode successfully or return an error — it never
// panics and never reads past len(data) (FuzzPacketDecode enforces
// this).
//
// Layout (all fields big-endian):
//
//	common header (12 bytes)
//	  0      Version(4) | TrafficClass(8) | FlowID(20)
//	  4      NextHdr
//	  5      HdrLen            header length in 4-byte units
//	  6      PayloadLen
//	  8      PathType          0 = empty, 1 = SCION
//	  9      DT(2) DL(2) ST(2) SL(2)
//	  10     reserved (2 bytes)
//	address header
//	  12     DstIA (8 bytes)
//	  20     SrcIA (8 bytes)
//	  28     DstHost, zero-padded to a 4-byte multiple
//	  ..     SrcHost, zero-padded to a 4-byte multiple
//	path header (PathType = 1)
//	  ..     PathMeta (4 bytes): CurrINF(2) CurrHF(6) RSV(6)
//	         Seg0Len(6) Seg1Len(6) Seg2Len(6)
//	  ..     InfoField (8 bytes): Flags(1) RSV(1) SegID(2) Timestamp(4)
//	  ..     HopField (12 bytes) x Seg0Len:
//	         Flags(1) ExpTime(1) ConsIngress(2) ConsEgress(2) MAC(6)
//
// The 6-byte hop field MAC covers the tuple (AS, ConsIngress,
// ConsEgress): the AS identity enters through the forwarding key the
// verifying border router uses, the interface pair through the MAC
// input, so a hop field moved to another AS or rewritten to different
// interfaces fails verification (internal/dataplane computes and
// checks the MACs; this package only carries the bytes).
package slayers

import (
	"encoding/binary"
	"fmt"

	"scionmpr/internal/addr"
)

// Header geometry constants.
const (
	CmnHdrLen = 12 // common header bytes
	IALen     = 8  // one ISD-AS on the wire
	MetaLen   = 4  // path meta field
	InfoLen   = 8  // one info field
	HopLen    = 12 // one hop field
	MACLen    = 6  // hop field MAC bytes

	// MaxHops is the largest hop count a 6-bit segment length encodes.
	MaxHops = 63
	// MaxPayloadLen is the largest payload the 16-bit length carries.
	MaxPayloadLen = 1<<16 - 1
)

// Path types.
const (
	PathTypeEmpty uint8 = 0 // no path header (AS-local / walked SCMP)
	PathTypeSCION uint8 = 1 // one-segment standard SCION path
)

// Next-header protocol numbers.
const (
	NextHdrUDP  uint8 = 17  // data packets (payload is opaque here)
	NextHdrSCMP uint8 = 202 // SCION control message protocol
)

// InfoField describes one path segment.
type InfoField struct {
	// ConsDir reports whether the segment is traversed in construction
	// direction.
	ConsDir bool
	// SegID is the segment identifier used by MAC chaining in the full
	// protocol; carried verbatim here.
	SegID uint16
	// Timestamp is the segment creation time (Unix seconds).
	Timestamp uint32
}

// HopField is one authorized hop of the path.
type HopField struct {
	// ExpTime is the relative expiry of the hop field (protocol units;
	// carried verbatim).
	ExpTime uint8
	// ConsIngress and ConsEgress are the AS-local interface identifiers
	// in construction direction.
	ConsIngress addr.IfID
	ConsEgress  addr.IfID
	// MAC authenticates (AS, ConsIngress, ConsEgress) under the AS's
	// forwarding key.
	MAC [MACLen]byte
}

// hostCode returns the DT/DL (or ST/SL) nibble for a host address type:
// type tag in the upper two bits, (paddedLen/4 - 1) in the lower two.
func hostCode(t addr.HostAddrType) (code uint8, padded int, err error) {
	switch t {
	case addr.HostIPv4:
		return 0<<2 | 0, 4, nil
	case addr.HostService:
		return 1<<2 | 0, 4, nil
	case addr.HostMAC:
		return 2<<2 | 1, 8, nil
	case addr.HostIPv6:
		return 3<<2 | 3, 16, nil
	}
	return 0, 0, fmt.Errorf("slayers: unencodable host address type %s", t)
}

// hostFromCode is the inverse of hostCode: it validates the type/length
// nibble and returns the address type and its padded and true lengths.
func hostFromCode(code uint8) (t addr.HostAddrType, padded, used int, err error) {
	switch code {
	case 0<<2 | 0:
		return addr.HostIPv4, 4, 4, nil
	case 1<<2 | 0:
		return addr.HostService, 4, 2, nil
	case 2<<2 | 1:
		return addr.HostMAC, 8, 6, nil
	case 3<<2 | 3:
		return addr.HostIPv6, 16, 16, nil
	}
	return 0, 0, 0, fmt.Errorf("slayers: invalid host address code %#x", code)
}

// SCION is a decoded (or to-be-serialized) SCION packet header.
//
// After DecodeFromBytes, DstHost.Local, SrcHost.Local, Payload() and
// the hop field accessors alias the decoded buffer: they stay valid
// only while the caller keeps the buffer, and writing to the buffer
// changes them. This is deliberate — border routers own their packet
// buffers and must not allocate per packet.
type SCION struct {
	// Common header.
	TrafficClass uint8
	FlowID       uint32 // 20 bits on the wire
	NextHdr      uint8
	PayloadLen   uint16
	PathType     uint8

	// Address header.
	DstIA, SrcIA     addr.IA
	DstHost, SrcHost addr.Host

	// Path header (PathTypeSCION). CurrHF is the hop under processing;
	// NumHops the total. Hops is the serialization source; after a
	// decode, hop fields are read from the raw buffer instead (use
	// HopField or DecodeHops).
	CurrHF  uint8
	NumHops uint8
	Info    InfoField
	Hops    []HopField

	raw     []byte // full packet alias after DecodeFromBytes
	pathOff int    // offset of PathMeta within raw
	hdrLen  int    // decoded header length in bytes
}

// HdrLen returns the encoded header length in bytes for the current
// field values (common + address + path headers, excluding payload).
func (s *SCION) HdrLen() (int, error) {
	_, dstPad, err := hostCode(s.DstHost.Type)
	if err != nil {
		return 0, err
	}
	_, srcPad, err := hostCode(s.SrcHost.Type)
	if err != nil {
		return 0, err
	}
	n := CmnHdrLen + 2*IALen + dstPad + srcPad
	switch s.PathType {
	case PathTypeEmpty:
	case PathTypeSCION:
		n += MetaLen + InfoLen + HopLen*int(s.NumHops)
	default:
		return 0, fmt.Errorf("slayers: unsupported path type %d", s.PathType)
	}
	return n, nil
}

// SerializeTo writes the header into buf and returns the header length.
// The payload is not written; callers append PayloadLen bytes after the
// returned offset. buf must hold the full header. No allocation.
func (s *SCION) SerializeTo(buf []byte) (int, error) {
	hdr, err := s.HdrLen()
	if err != nil {
		return 0, err
	}
	if len(buf) < hdr {
		return 0, fmt.Errorf("slayers: buffer of %d bytes, header needs %d", len(buf), hdr)
	}
	if hdr%4 != 0 || hdr/4 > 255 {
		return 0, fmt.Errorf("slayers: header length %d unencodable", hdr)
	}
	if s.FlowID >= 1<<20 {
		return 0, fmt.Errorf("slayers: flow id %#x exceeds 20 bits", s.FlowID)
	}
	if s.PathType == PathTypeSCION {
		if int(s.NumHops) != len(s.Hops) {
			return 0, fmt.Errorf("slayers: NumHops %d != len(Hops) %d", s.NumHops, len(s.Hops))
		}
		if s.NumHops == 0 || s.NumHops > MaxHops {
			return 0, fmt.Errorf("slayers: hop count %d out of range [1,%d]", s.NumHops, MaxHops)
		}
		if s.CurrHF >= s.NumHops {
			return 0, fmt.Errorf("slayers: CurrHF %d out of range", s.CurrHF)
		}
	}

	// Common header.
	binary.BigEndian.PutUint32(buf[0:4], uint32(0)<<28|uint32(s.TrafficClass)<<20|s.FlowID)
	buf[4] = s.NextHdr
	buf[5] = uint8(hdr / 4)
	binary.BigEndian.PutUint16(buf[6:8], s.PayloadLen)
	buf[8] = s.PathType
	dstCode, dstPad, _ := hostCode(s.DstHost.Type)
	srcCode, srcPad, _ := hostCode(s.SrcHost.Type)
	buf[9] = dstCode<<4 | srcCode
	buf[10], buf[11] = 0, 0

	// Address header.
	binary.BigEndian.PutUint64(buf[12:20], s.DstIA.Uint64())
	binary.BigEndian.PutUint64(buf[20:28], s.SrcIA.Uint64())
	off := 28
	off, err = putHost(buf, off, s.DstHost, dstPad)
	if err != nil {
		return 0, err
	}
	off, err = putHost(buf, off, s.SrcHost, srcPad)
	if err != nil {
		return 0, err
	}

	// Path header.
	if s.PathType == PathTypeSCION {
		meta := uint32(s.CurrHF&0x3f)<<24 | uint32(s.NumHops&0x3f)<<12
		binary.BigEndian.PutUint32(buf[off:off+4], meta)
		off += 4
		var flags uint8
		if s.Info.ConsDir {
			flags = 1
		}
		buf[off] = flags
		buf[off+1] = 0
		binary.BigEndian.PutUint16(buf[off+2:off+4], s.Info.SegID)
		binary.BigEndian.PutUint32(buf[off+4:off+8], s.Info.Timestamp)
		off += 8
		for i := range s.Hops {
			h := &s.Hops[i]
			buf[off] = 0
			buf[off+1] = h.ExpTime
			binary.BigEndian.PutUint16(buf[off+2:off+4], uint16(h.ConsIngress))
			binary.BigEndian.PutUint16(buf[off+4:off+6], uint16(h.ConsEgress))
			copy(buf[off+6:off+12], h.MAC[:])
			off += 12
		}
	}
	return hdr, nil
}

func putHost(buf []byte, off int, h addr.Host, padded int) (int, error) {
	used := h.Type.Len()
	if len(h.Local) != used {
		return 0, fmt.Errorf("slayers: %s host address with %d local bytes", h.Type, len(h.Local))
	}
	copy(buf[off:off+used], h.Local)
	for i := off + used; i < off+padded; i++ {
		buf[i] = 0
	}
	return off + padded, nil
}

// DecodeFromBytes parses data, which must be exactly one packet (header
// plus PayloadLen payload bytes). Decoded variable-length fields alias
// data. Any structural violation returns an error; no input panics.
func (s *SCION) DecodeFromBytes(data []byte) error {
	return s.decode(data, false)
}

// DecodeHeader parses data as a bare packet header with no payload
// attached — data must be exactly the header bytes, and PayloadLen is
// carried verbatim without being checked against len(data). This is
// how SCMP quotes are walked: the quote holds only the original
// packet's header. Payload() returns nil after a header-only decode.
func (s *SCION) DecodeHeader(data []byte) error {
	return s.decode(data, true)
}

func (s *SCION) decode(data []byte, headerOnly bool) error {
	if len(data) < CmnHdrLen {
		return fmt.Errorf("slayers: packet of %d bytes shorter than common header", len(data))
	}
	first := binary.BigEndian.Uint32(data[0:4])
	if v := uint8(first >> 28); v != 0 {
		return fmt.Errorf("slayers: unsupported version %d", v)
	}
	s.TrafficClass = uint8(first >> 20)
	s.FlowID = first & 0xfffff
	s.NextHdr = data[4]
	hdr := int(data[5]) * 4
	s.PayloadLen = binary.BigEndian.Uint16(data[6:8])
	s.PathType = data[8]
	if s.PathType != PathTypeEmpty && s.PathType != PathTypeSCION {
		return fmt.Errorf("slayers: unsupported path type %d", s.PathType)
	}
	if hdr < CmnHdrLen+2*IALen || hdr > len(data) {
		return fmt.Errorf("slayers: header length %d out of range for %d-byte packet", hdr, len(data))
	}
	if headerOnly {
		if hdr != len(data) {
			return fmt.Errorf("slayers: header %d != quoted bytes %d", hdr, len(data))
		}
	} else if want := hdr + int(s.PayloadLen); want != len(data) {
		return fmt.Errorf("slayers: header %d + payload %d != packet %d", hdr, s.PayloadLen, len(data))
	}

	// Reserved bits must be zero: the decoder accepts exactly the set
	// of packets the serializer emits, so accepted packets re-serialize
	// byte-identically (FuzzPacketDecode relies on this).
	if data[10] != 0 || data[11] != 0 {
		return fmt.Errorf("slayers: nonzero reserved common-header bytes")
	}
	dstType, dstPad, dstUsed, err := hostFromCode(data[9] >> 4)
	if err != nil {
		return err
	}
	srcType, srcPad, srcUsed, err := hostFromCode(data[9] & 0x0f)
	if err != nil {
		return err
	}
	s.DstIA = addr.IAFromUint64(binary.BigEndian.Uint64(data[12:20]))
	s.SrcIA = addr.IAFromUint64(binary.BigEndian.Uint64(data[20:28]))
	off := 28
	if off+dstPad+srcPad > hdr {
		return fmt.Errorf("slayers: address header exceeds header length")
	}
	s.DstHost = addr.Host{IA: s.DstIA, Type: dstType, Local: data[off : off+dstUsed : off+dstUsed]}
	for _, b := range data[off+dstUsed : off+dstPad] {
		if b != 0 {
			return fmt.Errorf("slayers: nonzero host address padding")
		}
	}
	off += dstPad
	s.SrcHost = addr.Host{IA: s.SrcIA, Type: srcType, Local: data[off : off+srcUsed : off+srcUsed]}
	for _, b := range data[off+srcUsed : off+srcPad] {
		if b != 0 {
			return fmt.Errorf("slayers: nonzero host address padding")
		}
	}
	off += srcPad

	s.CurrHF, s.NumHops = 0, 0
	s.Info = InfoField{}
	s.pathOff = off
	switch s.PathType {
	case PathTypeEmpty:
		if off != hdr {
			return fmt.Errorf("slayers: %d trailing header bytes on empty path", hdr-off)
		}
	case PathTypeSCION:
		if off+MetaLen+InfoLen > hdr {
			return fmt.Errorf("slayers: truncated path header")
		}
		meta := binary.BigEndian.Uint32(data[off : off+4])
		if inf := meta >> 30; inf != 0 {
			return fmt.Errorf("slayers: multi-segment path (CurrINF %d) unsupported", inf)
		}
		s.CurrHF = uint8(meta>>24) & 0x3f
		if rsv := meta >> 18 & 0x3f; rsv != 0 {
			return fmt.Errorf("slayers: nonzero reserved path-meta bits")
		}
		seg0 := uint8(meta>>12) & 0x3f
		if seg1, seg2 := meta>>6&0x3f, meta&0x3f; seg1 != 0 || seg2 != 0 {
			return fmt.Errorf("slayers: multi-segment path (seg lengths %d,%d) unsupported", seg1, seg2)
		}
		if seg0 == 0 {
			return fmt.Errorf("slayers: SCION path with zero hops")
		}
		if s.CurrHF >= seg0 {
			return fmt.Errorf("slayers: CurrHF %d >= NumHops %d", s.CurrHF, seg0)
		}
		s.NumHops = seg0
		if off+MetaLen+InfoLen+HopLen*int(seg0) != hdr {
			return fmt.Errorf("slayers: path of %d hops does not fill header", seg0)
		}
		io := off + MetaLen
		if data[io]&^1 != 0 || data[io+1] != 0 {
			return fmt.Errorf("slayers: nonzero reserved info-field bits")
		}
		s.Info.ConsDir = data[io]&1 != 0
		s.Info.SegID = binary.BigEndian.Uint16(data[io+2 : io+4])
		s.Info.Timestamp = binary.BigEndian.Uint32(data[io+4 : io+8])
		for ho := io + InfoLen; ho < hdr; ho += HopLen {
			if data[ho] != 0 {
				return fmt.Errorf("slayers: nonzero hop-field flags")
			}
		}
	}
	s.raw = data
	s.hdrLen = hdr
	s.Hops = s.Hops[:0]
	return nil
}

// Payload returns the payload bytes of a decoded packet (aliases the
// decode buffer).
func (s *SCION) Payload() []byte {
	if s.raw == nil || s.hdrLen+int(s.PayloadLen) > len(s.raw) {
		return nil
	}
	return s.raw[s.hdrLen : s.hdrLen+int(s.PayloadLen)]
}

// HeaderBytes returns the raw header bytes of a decoded packet (for
// SCMP quoting; aliases the decode buffer).
func (s *SCION) HeaderBytes() []byte {
	if s.raw == nil {
		return nil
	}
	return s.raw[:s.hdrLen]
}

// hopOff returns the raw offset of hop field i, or -1.
func (s *SCION) hopOff(i int) int {
	if s.raw == nil || s.PathType != PathTypeSCION || i < 0 || i >= int(s.NumHops) {
		return -1
	}
	return s.pathOff + MetaLen + InfoLen + HopLen*i
}

// HopField decodes hop field i of a decoded packet.
func (s *SCION) HopField(i int) (HopField, error) {
	off := s.hopOff(i)
	if off < 0 {
		return HopField{}, fmt.Errorf("slayers: hop index %d out of range", i)
	}
	var h HopField
	h.ExpTime = s.raw[off+1]
	h.ConsIngress = addr.IfID(binary.BigEndian.Uint16(s.raw[off+2 : off+4]))
	h.ConsEgress = addr.IfID(binary.BigEndian.Uint16(s.raw[off+4 : off+6]))
	copy(h.MAC[:], s.raw[off+6:off+12])
	return h, nil
}

// DecodeHops appends all hop fields of a decoded packet to dst (reuse a
// caller slice to stay allocation-free) and returns the extended slice.
func (s *SCION) DecodeHops(dst []HopField) ([]HopField, error) {
	for i := 0; i < int(s.NumHops); i++ {
		h, err := s.HopField(i)
		if err != nil {
			return dst, err
		}
		dst = append(dst, h)
	}
	return dst, nil
}

// SetCurrHF rewrites the current-hop pointer in place in the decoded
// buffer (and the struct field), the one header mutation a border
// router performs when forwarding.
func (s *SCION) SetCurrHF(i uint8) error {
	if s.raw == nil || s.PathType != PathTypeSCION {
		return fmt.Errorf("slayers: SetCurrHF without decoded SCION path")
	}
	if i >= s.NumHops {
		return fmt.Errorf("slayers: CurrHF %d >= NumHops %d", i, s.NumHops)
	}
	s.CurrHF = i
	s.raw[s.pathOff] = s.raw[s.pathOff]&0xc0 | i&0x3f
	return nil
}

// IncPath advances CurrHF by one (the ingress border router step).
func (s *SCION) IncPath() error {
	return s.SetCurrHF(s.CurrHF + 1)
}

// AtDestination reports whether the current hop is the last one.
func (s *SCION) AtDestination() bool {
	return s.PathType == PathTypeSCION && s.CurrHF == s.NumHops-1
}
