package slayers

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzPacketDecode drives arbitrary bytes through the decoder and, for
// inputs that decode, through every accessor and a re-serialization.
// The decoder must be total: no panic, no out-of-bounds read, and any
// accepted packet must re-serialize to the exact input bytes.
func FuzzPacketDecode(f *testing.F) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatalf("read corpus seeds: %v", err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join("testdata", ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add(make([]byte, CmnHdrLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s SCION
		if err := s.DecodeFromBytes(data); err != nil {
			// Must also be rejected (or accepted) without panicking as
			// a bare header.
			var h SCION
			_ = h.DecodeHeader(data)
			return
		}
		// Accepted: every accessor must stay in bounds.
		_ = s.Payload()
		_ = s.HeaderBytes()
		_ = s.AtDestination()
		hops, err := s.DecodeHops(nil)
		if err != nil {
			t.Fatalf("accepted packet, DecodeHops failed: %v", err)
		}
		if len(hops) != int(s.NumHops) {
			t.Fatalf("decoded %d hops, header says %d", len(hops), s.NumHops)
		}
		if _, err := s.HopField(int(s.NumHops)); err == nil && s.PathType == PathTypeSCION {
			t.Fatal("out-of-range hop access succeeded")
		}
		if s.NextHdr == NextHdrSCMP {
			var m SCMP
			if m.DecodeFromBytes(s.Payload()) == nil {
				var q SCION
				_ = q.DecodeHeader(m.Quote)
			}
		}
		// Round-trip: decode -> serialize must reproduce the header.
		s.Hops = hops
		buf := make([]byte, len(data))
		n, err := s.SerializeTo(buf)
		if err != nil {
			t.Fatalf("accepted packet does not re-serialize: %v", err)
		}
		if !bytes.Equal(buf[:n], data[:n]) {
			t.Fatalf("re-serialized header differs from input")
		}
	})
}
