package slayers

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"scionmpr/internal/addr"
)

var update = flag.Bool("update", false, "regenerate golden packet vectors")

func ia(isd, as uint64) addr.IA { return addr.IA{ISD: addr.ISD(isd), AS: addr.AS(as)} }

func mac6(b byte) [MACLen]byte {
	var m [MACLen]byte
	for i := range m {
		m[i] = b + byte(i)
	}
	return m
}

// goldenVectors are the committed wire-format packets: a 3-hop IPv4
// data packet mid-path, a minimal 1-hop service-addressed packet with
// no payload, a 2-hop IPv6/MAC-addressed packet, and an SCMP
// revocation quoting the first vector's header.
func goldenVectors(t *testing.T) map[string][]byte {
	t.Helper()
	vecs := map[string][]byte{}

	data3 := &SCION{
		TrafficClass: 0x20,
		FlowID:       0xabcde,
		NextHdr:      NextHdrUDP,
		PathType:     PathTypeSCION,
		DstIA:        ia(2, 221),
		SrcIA:        ia(1, 110),
		DstHost:      addr.HostIP4(ia(2, 221), 10, 0, 0, 2),
		SrcHost:      addr.HostIP4(ia(1, 110), 10, 0, 0, 1),
		CurrHF:       1,
		NumHops:      3,
		Info:         InfoField{ConsDir: true, SegID: 0xbeef, Timestamp: 0x5c100000},
		Hops: []HopField{
			{ExpTime: 63, ConsIngress: 0, ConsEgress: 2, MAC: mac6(0x10)},
			{ExpTime: 63, ConsIngress: 5, ConsEgress: 7, MAC: mac6(0x20)},
			{ExpTime: 63, ConsIngress: 3, ConsEgress: 0, MAC: mac6(0x30)},
		},
	}
	vecs["ipv4_3hop.bin"] = serializeVector(t, data3, []byte("hello scion"))

	svc := &SCION{
		FlowID:   1,
		NextHdr:  NextHdrUDP,
		PathType: PathTypeSCION,
		DstIA:    ia(1, 120),
		SrcIA:    ia(1, 110),
		DstHost:  addr.HostSvc(ia(1, 120), addr.SvcCS),
		SrcHost:  addr.HostIP4(ia(1, 110), 127, 0, 0, 1),
		CurrHF:   0,
		NumHops:  1,
		Info:     InfoField{ConsDir: true, Timestamp: 0x5c100000},
		Hops: []HopField{
			{ExpTime: 63, ConsIngress: 0, ConsEgress: 0, MAC: mac6(0x40)},
		},
	}
	vecs["svc_minimal.bin"] = serializeVector(t, svc, nil)

	v6 := &SCION{
		TrafficClass: 0xff,
		FlowID:       0xfffff,
		NextHdr:      NextHdrUDP,
		PathType:     PathTypeSCION,
		DstIA:        ia(3, 333),
		SrcIA:        ia(4, 444),
		DstHost: addr.Host{IA: ia(3, 333), Type: addr.HostMAC,
			Local: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}},
		SrcHost: addr.Host{IA: ia(4, 444), Type: addr.HostIPv6,
			Local: bytes.Repeat([]byte{0xfd, 0x00}, 8)},
		CurrHF:  0,
		NumHops: 2,
		Info:    InfoField{ConsDir: true, SegID: 7, Timestamp: 0x5c100000},
		Hops: []HopField{
			{ExpTime: 63, ConsIngress: 0, ConsEgress: 9, MAC: mac6(0x50)},
			{ExpTime: 63, ConsIngress: 4, ConsEgress: 0, MAC: mac6(0x60)},
		},
	}
	vecs["ipv6_mac_hosts.bin"] = serializeVector(t, v6, []byte{0xca, 0xfe})

	// SCMP revocation: quote the 3-hop vector's header, walk from hop 1.
	var orig SCION
	if err := orig.DecodeFromBytes(vecs["ipv4_3hop.bin"]); err != nil {
		t.Fatalf("decode own vector: %v", err)
	}
	quote := orig.HeaderBytes()
	scmpHdr := &SCION{
		FlowID:     orig.FlowID,
		NextHdr:    NextHdrSCMP,
		PayloadLen: uint16(SCMPHdrLen + len(quote)),
		PathType:   PathTypeEmpty,
		DstIA:      orig.SrcIA,
		SrcIA:      ia(1, 120),
		DstHost:    orig.SrcHost,
		SrcHost:    addr.HostSvc(ia(1, 120), addr.SvcBR),
	}
	hdrLen, err := scmpHdr.HdrLen()
	if err != nil {
		t.Fatalf("scmp hdr len: %v", err)
	}
	buf := make([]byte, hdrLen+SCMPHdrLen+len(quote))
	if _, err := scmpHdr.SerializeTo(buf); err != nil {
		t.Fatalf("serialize scmp hdr: %v", err)
	}
	msg := &SCMP{
		Type:     SCMPTypeRevokedLink,
		Offender: ia(1, 120),
		LinkIA:   ia(1, 120),
		LinkIf:   7,
		WalkIdx:  1,
		Quote:    quote,
	}
	if _, err := msg.SerializeTo(buf[hdrLen:]); err != nil {
		t.Fatalf("serialize scmp payload: %v", err)
	}
	vecs["scmp_revocation.bin"] = buf

	return vecs
}

func serializeVector(t *testing.T, s *SCION, payload []byte) []byte {
	t.Helper()
	s.PayloadLen = uint16(len(payload))
	hdr, err := s.HdrLen()
	if err != nil {
		t.Fatalf("hdr len: %v", err)
	}
	buf := make([]byte, hdr+len(payload))
	if _, err := s.SerializeTo(buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	copy(buf[hdr:], payload)
	return buf
}

// TestGoldenVectors pins the wire format: the committed byte vectors
// must decode to the expected field values and re-serialize to the
// identical bytes. Run with -update to regenerate after a deliberate
// format change.
func TestGoldenVectors(t *testing.T) {
	vecs := goldenVectors(t)
	if *update {
		for name, b := range vecs {
			if err := os.WriteFile(filepath.Join("testdata", name), b, 0o644); err != nil {
				t.Fatalf("update %s: %v", name, err)
			}
		}
	}
	for name, want := range vecs {
		got, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("read golden %s: %v (run with -update to generate)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: committed vector differs from serializer output", name)
		}
	}

	var s SCION
	if err := s.DecodeFromBytes(vecs["ipv4_3hop.bin"]); err != nil {
		t.Fatalf("decode ipv4_3hop: %v", err)
	}
	if s.FlowID != 0xabcde || s.TrafficClass != 0x20 || s.NextHdr != NextHdrUDP {
		t.Errorf("common header fields: flow=%#x tc=%#x next=%d", s.FlowID, s.TrafficClass, s.NextHdr)
	}
	if s.SrcIA != ia(1, 110) || s.DstIA != ia(2, 221) {
		t.Errorf("IAs: %s -> %s", s.SrcIA, s.DstIA)
	}
	if !s.DstHost.Equal(addr.HostIP4(ia(2, 221), 10, 0, 0, 2)) {
		t.Errorf("dst host %s", s.DstHost)
	}
	if s.CurrHF != 1 || s.NumHops != 3 {
		t.Errorf("path meta: curr=%d hops=%d", s.CurrHF, s.NumHops)
	}
	if !s.Info.ConsDir || s.Info.SegID != 0xbeef || s.Info.Timestamp != 0x5c100000 {
		t.Errorf("info field %+v", s.Info)
	}
	hf, err := s.HopField(1)
	if err != nil || hf.ConsIngress != 5 || hf.ConsEgress != 7 || hf.MAC != mac6(0x20) {
		t.Errorf("hop 1 = %+v, %v", hf, err)
	}
	if string(s.Payload()) != "hello scion" {
		t.Errorf("payload %q", s.Payload())
	}
	if s.AtDestination() {
		t.Error("mid-path packet reports destination")
	}

	var c SCMP
	var outer SCION
	if err := outer.DecodeFromBytes(vecs["scmp_revocation.bin"]); err != nil {
		t.Fatalf("decode scmp outer: %v", err)
	}
	if outer.PathType != PathTypeEmpty || outer.NextHdr != NextHdrSCMP {
		t.Errorf("scmp outer: path=%d next=%d", outer.PathType, outer.NextHdr)
	}
	if err := c.DecodeFromBytes(outer.Payload()); err != nil {
		t.Fatalf("decode scmp payload: %v", err)
	}
	if c.Type != SCMPTypeRevokedLink || c.LinkIf != 7 || c.WalkIdx != 1 {
		t.Errorf("scmp fields: type=%d if=%d walk=%d", c.Type, c.LinkIf, c.WalkIdx)
	}
	var quoted SCION
	if err := quoted.DecodeHeader(c.Quote); err != nil {
		t.Fatalf("decode quote: %v", err)
	}
	if quoted.FlowID != 0xabcde || quoted.SrcIA != ia(1, 110) {
		t.Errorf("quoted header: flow=%#x src=%s", quoted.FlowID, quoted.SrcIA)
	}
}

// TestRoundTripProperty serializes randomized headers and asserts the
// decode inverts the encode exactly, including a second serialize to
// byte equality.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hostOf := func(ia addr.IA) addr.Host {
		switch rng.Intn(4) {
		case 0:
			return addr.HostIP4(ia, byte(rng.Intn(256)), 0, 0, byte(rng.Intn(256)))
		case 1:
			return addr.HostSvc(ia, uint16(rng.Intn(3)+1))
		case 2:
			local := make([]byte, 6)
			rng.Read(local)
			return addr.Host{IA: ia, Type: addr.HostMAC, Local: local}
		default:
			local := make([]byte, 16)
			rng.Read(local)
			return addr.Host{IA: ia, Type: addr.HostIPv6, Local: local}
		}
	}
	for iter := 0; iter < 500; iter++ {
		nh := rng.Intn(MaxHops) + 1
		src, dst := ia(uint64(rng.Intn(5)+1), uint64(rng.Intn(1000))), ia(uint64(rng.Intn(5)+1), uint64(rng.Intn(1000)))
		s := &SCION{
			TrafficClass: uint8(rng.Intn(256)),
			FlowID:       uint32(rng.Intn(1 << 20)),
			NextHdr:      NextHdrUDP,
			PathType:     PathTypeSCION,
			DstIA:        dst,
			SrcIA:        src,
			DstHost:      hostOf(dst),
			SrcHost:      hostOf(src),
			CurrHF:       uint8(rng.Intn(nh)),
			NumHops:      uint8(nh),
			Info: InfoField{
				ConsDir:   rng.Intn(2) == 0,
				SegID:     uint16(rng.Intn(1 << 16)),
				Timestamp: rng.Uint32(),
			},
		}
		for i := 0; i < nh; i++ {
			var m [MACLen]byte
			rng.Read(m[:])
			s.Hops = append(s.Hops, HopField{
				ExpTime:     uint8(rng.Intn(256)),
				ConsIngress: addr.IfID(rng.Intn(100)),
				ConsEgress:  addr.IfID(rng.Intn(100)),
				MAC:         m,
			})
		}
		payload := make([]byte, rng.Intn(200))
		rng.Read(payload)
		wire := serializeVector(t, s, payload)

		var d SCION
		if err := d.DecodeFromBytes(wire); err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if d.FlowID != s.FlowID || d.TrafficClass != s.TrafficClass ||
			d.SrcIA != s.SrcIA || d.DstIA != s.DstIA ||
			!d.SrcHost.Equal(s.SrcHost) || !d.DstHost.Equal(s.DstHost) ||
			d.CurrHF != s.CurrHF || d.NumHops != s.NumHops || d.Info != s.Info {
			t.Fatalf("iter %d: fields do not round-trip", iter)
		}
		hops, err := d.DecodeHops(nil)
		if err != nil {
			t.Fatalf("iter %d: hops: %v", iter, err)
		}
		for i, h := range hops {
			if h != s.Hops[i] {
				t.Fatalf("iter %d: hop %d = %+v, want %+v", iter, i, h, s.Hops[i])
			}
		}
		if !bytes.Equal(d.Payload(), payload) {
			t.Fatalf("iter %d: payload mismatch", iter)
		}
		// Re-serialize from decoded fields: byte-identical.
		d.Hops = hops
		again := serializeVector(t, &d, payload)
		if !bytes.Equal(again, wire) {
			t.Fatalf("iter %d: re-serialization differs", iter)
		}
	}
}

func TestInPlaceMutation(t *testing.T) {
	vecs := goldenVectors(t)
	wire := append([]byte(nil), vecs["ipv4_3hop.bin"]...)
	var s SCION
	if err := s.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if err := s.IncPath(); err != nil {
		t.Fatal(err)
	}
	if s.CurrHF != 2 || !s.AtDestination() {
		t.Errorf("after inc: curr=%d", s.CurrHF)
	}
	var d SCION
	if err := d.DecodeFromBytes(wire); err != nil {
		t.Fatalf("re-decode mutated buffer: %v", err)
	}
	if d.CurrHF != 2 {
		t.Errorf("in-place CurrHF not visible on re-decode: %d", d.CurrHF)
	}
	if err := s.IncPath(); err == nil {
		t.Error("IncPath past last hop succeeded")
	}

	scmp := append([]byte(nil), vecs["scmp_revocation.bin"]...)
	var outer SCION
	var m SCMP
	if err := outer.DecodeFromBytes(scmp); err != nil {
		t.Fatal(err)
	}
	if err := m.DecodeFromBytes(outer.Payload()); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWalkIdx(0); err != nil {
		t.Fatal(err)
	}
	var m2 SCMP
	var o2 SCION
	if err := o2.DecodeFromBytes(scmp); err != nil {
		t.Fatal(err)
	}
	if err := m2.DecodeFromBytes(o2.Payload()); err != nil {
		t.Fatal(err)
	}
	if m2.WalkIdx != 0 {
		t.Errorf("in-place WalkIdx not visible on re-decode: %d", m2.WalkIdx)
	}
}

// TestDecodeRejects enumerates structural violations the decoder must
// refuse.
func TestDecodeRejects(t *testing.T) {
	base := goldenVectors(t)["ipv4_3hop.bin"]
	mut := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"short":          base[:8],
		"truncated":      base[:len(base)-1],
		"trailing":       append(append([]byte(nil), base...), 0),
		"bad version":    mut(func(b []byte) { b[0] |= 0xf0 }),
		"bad path type":  mut(func(b []byte) { b[8] = 9 }),
		"bad host code":  mut(func(b []byte) { b[9] = 0xff }),
		"hdrlen zero":    mut(func(b []byte) { b[5] = 0 }),
		"hdrlen oversub": mut(func(b []byte) { b[5] = 255 }),
		"currhf high": mut(func(b []byte) {
			b[36] = b[36]&0xc0 | 3 // CurrHF == NumHops
		}),
		"currinf set": mut(func(b []byte) { b[36] |= 0x40 }),
		"seg1 set":    mut(func(b []byte) { b[39] |= 0x40 }),
	}
	for name, data := range cases {
		var s SCION
		if err := s.DecodeFromBytes(data); err == nil {
			t.Errorf("%s: decode accepted invalid packet", name)
		}
	}
	var s SCION
	if err := s.DecodeHeader(base); err == nil {
		t.Error("DecodeHeader accepted header+payload bytes")
	}
	var m SCMP
	if err := m.DecodeFromBytes(make([]byte, SCMPHdrLen-1)); err == nil {
		t.Error("SCMP decode accepted short payload")
	}
}

func TestSerializeRejects(t *testing.T) {
	ok := &SCION{
		NextHdr: NextHdrUDP, PathType: PathTypeSCION,
		DstIA: ia(1, 1), SrcIA: ia(1, 2),
		DstHost: addr.HostIP4(ia(1, 1), 1, 1, 1, 1),
		SrcHost: addr.HostIP4(ia(1, 2), 2, 2, 2, 2),
		NumHops: 1, Hops: []HopField{{}},
	}
	big := make([]byte, 4096)
	if _, err := ok.SerializeTo(big); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	for name, brk := range map[string]func(s *SCION){
		"flow too wide": func(s *SCION) { s.FlowID = 1 << 20 },
		"hop mismatch":  func(s *SCION) { s.NumHops = 2 },
		"zero hops":     func(s *SCION) { s.NumHops = 0; s.Hops = nil },
		"currhf high":   func(s *SCION) { s.CurrHF = 1 },
		"bad host":      func(s *SCION) { s.DstHost.Type = addr.HostNone },
		"short local":   func(s *SCION) { s.DstHost.Local = s.DstHost.Local[:2] },
		"bad path type": func(s *SCION) { s.PathType = 7 },
		"too many hops": func(s *SCION) { s.NumHops = 64; s.Hops = make([]HopField, 64) },
	} {
		s := *ok
		s.Hops = append([]HopField(nil), ok.Hops...)
		brk(&s)
		if _, err := s.SerializeTo(big); err == nil {
			t.Errorf("%s: serialize accepted invalid header", name)
		}
	}
	if _, err := ok.SerializeTo(big[:10]); err == nil {
		t.Error("serialize into short buffer succeeded")
	}
}

func TestSerializeAllocFree(t *testing.T) {
	vec := goldenVectors(t)["ipv4_3hop.bin"]
	var s SCION
	if err := s.DecodeFromBytes(vec); err != nil {
		t.Fatal(err)
	}
	hops, _ := s.DecodeHops(nil)
	s.Hops = hops
	buf := make([]byte, len(vec))
	var d SCION
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.SerializeTo(buf); err != nil {
			t.Fatal(err)
		}
		if err := d.DecodeFromBytes(vec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serialize+decode allocates %.1f times per packet", allocs)
	}
}

func TestHdrLenEncoding(t *testing.T) {
	// HdrLen is carried in 4-byte units; every supported host
	// combination must produce a 4-divisible header.
	for _, dt := range []addr.HostAddrType{addr.HostIPv4, addr.HostIPv6, addr.HostMAC, addr.HostService} {
		for _, st := range []addr.HostAddrType{addr.HostIPv4, addr.HostIPv6, addr.HostMAC, addr.HostService} {
			s := &SCION{
				PathType: PathTypeSCION,
				DstHost:  addr.Host{Type: dt, Local: make([]byte, dt.Len())},
				SrcHost:  addr.Host{Type: st, Local: make([]byte, st.Len())},
				NumHops:  3,
			}
			n, err := s.HdrLen()
			if err != nil {
				t.Fatalf("%s/%s: %v", dt, st, err)
			}
			if n%4 != 0 {
				t.Errorf("%s/%s: header length %d not 4-divisible", dt, st, n)
			}
		}
	}
}
