package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// Message is anything transported between ASes in the simulation. WireLen
// is the size in bytes counted against the link — overhead accounting is
// the paper's core observable, so every control-plane message type
// implements an exact wire size.
type Message interface {
	WireLen() int
}

// Handler processes messages delivered to an AS. link is the inter-domain
// link the message arrived on and from is the sending neighbor.
type Handler interface {
	HandleMessage(from addr.IA, link *topology.Link, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from addr.IA, link *topology.Link, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from addr.IA, link *topology.Link, msg Message) {
	f(from, link, msg)
}

// IfKey identifies one interface of one AS for counter lookup.
type IfKey struct {
	IA addr.IA
	If addr.IfID
}

// Counter accumulates traffic on one interface direction-separated.
type Counter struct {
	TxBytes, TxMsgs uint64
	RxBytes, RxMsgs uint64
}

// Network binds a Simulator to a topology and transports Messages across
// links with a fixed latency, recording per-interface counters.
type Network struct {
	Sim   *Simulator
	Topo  *topology.Graph
	Delay time.Duration

	handlers map[addr.IA]Handler
	counters map[IfKey]*Counter
	failed   map[topology.LinkID]bool
	// delays holds per-link latency overrides; links without an entry use
	// the network-wide Delay.
	delays map[topology.LinkID]time.Duration
	// loss holds per-link drop probabilities in [0, 1], modelling gray
	// failures: the link is up but silently sheds a fraction of messages.
	loss map[topology.LinkID]float64
	// lossRNG drives gray-failure drop decisions; drops are decided only
	// from serial context (inline sends and the parallel commit phase run
	// in sequence order), so a seeded source makes every run reproducible
	// for any worker count.
	lossRNG *rand.Rand
	// lossSeed is the seed lossRNG was created from and lossDraws the
	// number of decisions drawn so far — together they let a checkpoint
	// restore reproduce the RNG stream by reseed-and-fast-forward.
	lossSeed  int64
	lossDraws uint64
	// counterArena chunk-allocates Counter values so a 12k-AS run's
	// hundreds of thousands of interface counters cost one allocation per
	// chunk instead of one each.
	counterArena []Counter
	// delPool recycles delivery events; sync.Pool because deliveries
	// complete on parallel workers.
	delPool sync.Pool
	// sharded enables per-AS actor partitioning: each registered AS gets
	// a simulator shard, deliveries are sharded by destination, and all
	// shared-state mutations (counters, RNG draws, scheduling) are
	// deferred to the deterministic commit phase when executing in
	// parallel.
	sharded bool
	shards  map[addr.IA]uint32
	// Dropped counts messages to ASes with no registered handler.
	Dropped uint64
	// DroppedOnFailedLinks counts messages lost to failed links.
	DroppedOnFailedLinks uint64
	// DroppedByLoss counts messages shed by gray failures.
	DroppedByLoss uint64
}

// NewNetwork creates a network over topo with the given one-way link latency.
func NewNetwork(s *Simulator, topo *topology.Graph, delay time.Duration) *Network {
	return &Network{
		Sim:      s,
		Topo:     topo,
		Delay:    delay,
		handlers: map[addr.IA]Handler{},
		counters: map[IfKey]*Counter{},
		failed:   map[topology.LinkID]bool{},
		delays:   map[topology.LinkID]time.Duration{},
		loss:     map[topology.LinkID]float64{},
	}
}

// SetLinkDelay overrides the one-way latency of a single link (both
// directions), modelling heterogeneous propagation delays; d <= 0 restores
// the network-wide default.
func (n *Network) SetLinkDelay(id topology.LinkID, d time.Duration) {
	if d <= 0 {
		delete(n.delays, id)
		return
	}
	n.delays[id] = d
}

// LinkDelay returns the one-way latency of a link.
func (n *Network) LinkDelay(id topology.LinkID) time.Duration {
	if d, ok := n.delays[id]; ok {
		return d
	}
	return n.Delay
}

// SetLinkLoss sets the gray-failure drop probability of a link (both
// directions); rate <= 0 heals the link, rate >= 1 drops everything.
func (n *Network) SetLinkLoss(id topology.LinkID, rate float64) {
	if rate <= 0 {
		delete(n.loss, id)
		return
	}
	if rate > 1 {
		rate = 1
	}
	n.loss[id] = rate
}

// LinkLoss returns the gray-failure drop probability of a link.
func (n *Network) LinkLoss(id topology.LinkID) float64 { return n.loss[id] }

// SeedLoss reseeds the gray-failure randomness. Call it before the run
// when drop decisions must be reproducible under a chosen seed; without
// it the network uses a fixed default seed.
func (n *Network) SeedLoss(seed int64) {
	n.lossRNG = rand.New(rand.NewSource(seed))
	n.lossSeed = seed
	n.lossDraws = 0
}

// dropByLoss makes one gray-failure drop decision.
func (n *Network) dropByLoss(rate float64) bool {
	if n.lossRNG == nil {
		n.SeedLoss(1)
	}
	n.lossDraws++
	return n.lossRNG.Float64() < rate
}

// FailLink drops all future messages on the link (both directions).
func (n *Network) FailLink(id topology.LinkID) { n.failed[id] = true }

// RestoreLink clears a failure.
func (n *Network) RestoreLink(id topology.LinkID) { delete(n.failed, id) }

// LinkFailed reports whether a link is failed.
func (n *Network) LinkFailed(id topology.LinkID) bool { return n.failed[id] }

// EnableSharding turns on per-AS actor partitioning for this network:
// every subsequently registered AS is assigned its own simulator shard,
// so same-timestamp deliveries to distinct ASes may execute on parallel
// workers (see the package comment for the determinism contract).
// Call it before Register. Networks that never enable sharding keep all
// events on the serial shard and are untouched by parallel execution.
func (n *Network) EnableSharding() {
	n.sharded = true
	if n.shards == nil {
		n.shards = map[addr.IA]uint32{}
	}
}

// Shard returns the simulator shard owned by ia (SerialShard when
// sharding is off or ia is unregistered). Use it with EveryShard to run
// an AS's periodic work on its own actor.
func (n *Network) Shard(ia addr.IA) uint32 { return n.shards[ia] }

// Register installs the message handler for ia, replacing any previous
// one. Under sharding the AS's link degree becomes its shard weight, so
// parallel segments schedule high-degree (expensive) actors first.
func (n *Network) Register(ia addr.IA, h Handler) {
	n.handlers[ia] = h
	if n.sharded {
		if _, ok := n.shards[ia]; !ok {
			sh := n.Sim.NewShard()
			n.shards[ia] = sh
			if as := n.Topo.AS(ia); as != nil {
				n.Sim.SetShardWeight(sh, uint32(as.Degree()))
			}
		}
	}
}

// counter returns (allocating) the counter for a given interface.
func (n *Network) counter(k IfKey) *Counter {
	c := n.counters[k]
	if c == nil {
		if len(n.counterArena) == 0 {
			n.counterArena = make([]Counter, 256)
		}
		c = &n.counterArena[0]
		n.counterArena = n.counterArena[1:]
		n.counters[k] = c
	}
	return c
}

// Send transmits msg from the local side of link (owned by from) to the
// neighboring AS. TX is counted on from's interface immediately; RX on the
// remote interface at delivery time. It panics if from is not an endpoint
// of link, which would indicate a mis-wired control plane.
//
// When called from a handler executing on a parallel worker, the
// transmission (failure/loss checks, RNG draw, counters, delivery
// scheduling) is deferred as an effect of the sending actor and replayed
// at commit in sequence order, so all observables match a sequential run.
func (n *Network) Send(from addr.IA, link *topology.Link, msg Message) {
	if link.A != from && link.B != from {
		panic(fmt.Sprintf("sim: %s sending on foreign link %s", from, link))
	}
	if n.sharded && n.Sim.inPar {
		n.Sim.deferOp(n.shards[from], op{kind: opSend, net: n, from: from, link: link, msg: msg})
		return
	}
	n.send(from, link, msg)
}

// delivery is one in-flight message, pooled so large runs schedule
// millions of deliveries without per-message closure allocations.
type delivery struct {
	net      *Network
	from, to addr.IA
	remoteIf addr.IfID
	link     *topology.Link
	msg      Message
	size     int32
}

// send performs the transmission; it must run in serial context.
func (n *Network) send(from addr.IA, link *topology.Link, msg Message) {
	if n.failed[link.ID] {
		n.DroppedOnFailedLinks++
		return
	}
	if rate := n.loss[link.ID]; rate > 0 && n.dropByLoss(rate) {
		n.DroppedByLoss++
		return
	}
	size := msg.WireLen()
	tx := n.counter(IfKey{IA: from, If: link.LocalIf(from)})
	tx.TxBytes += uint64(size)
	tx.TxMsgs++
	to := link.Other(from)
	d, _ := n.delPool.Get().(*delivery)
	if d == nil {
		d = &delivery{}
	}
	*d = delivery{net: n, from: from, to: to, remoteIf: link.RemoteIf(from), link: link, msg: msg, size: int32(size)}
	n.Sim.pushDelivery(n.shards[to], n.Sim.Now()+Time(n.LinkDelay(link.ID)), d)
}

// runDelivery delivers d and returns it to the pool. The struct is done
// the moment deliver returns: handlers retain the message contents at
// most, never the delivery itself.
func (n *Network) runDelivery(d *delivery) {
	n.deliver(d.from, d.to, d.remoteIf, d.link, d.msg, int(d.size))
	*d = delivery{}
	n.delPool.Put(d)
}

// deliver runs at the destination — on a parallel worker when the
// network is sharded. The handler dispatch itself is the parallel work;
// mutations of network-shared state (RX counters, drop counts) are
// deferred to the commit phase.
func (n *Network) deliver(from, to addr.IA, remoteIf addr.IfID, link *topology.Link, msg Message, size int) {
	inPar := n.Sim.inPar
	key := IfKey{IA: to, If: remoteIf}
	if inPar {
		n.Sim.deferOp(n.shards[to], op{kind: opRx, net: n, key: key, size: int32(size)})
	} else {
		c := n.counter(key)
		c.RxBytes += uint64(size)
		c.RxMsgs++
	}
	h := n.handlers[to]
	if h == nil {
		if inPar {
			n.Sim.deferOp(n.shards[to], op{kind: opDrop, net: n})
		} else {
			n.Dropped++
		}
		return
	}
	h.HandleMessage(from, link, msg)
}

// InterfaceCounter returns a copy of the counter for one interface
// (zero-valued if the interface never saw traffic).
func (n *Network) InterfaceCounter(ia addr.IA, ifID addr.IfID) Counter {
	if c := n.counters[IfKey{IA: ia, If: ifID}]; c != nil {
		return *c
	}
	return Counter{}
}

// TotalTx sums transmitted bytes over all interfaces of ia.
func (n *Network) TotalTx(ia addr.IA) uint64 {
	var sum uint64
	for k, c := range n.counters {
		if k.IA == ia {
			sum += c.TxBytes
		}
	}
	return sum
}

// TotalRx sums received bytes over all interfaces of ia.
func (n *Network) TotalRx(ia addr.IA) uint64 {
	var sum uint64
	for k, c := range n.counters {
		if k.IA == ia {
			sum += c.RxBytes
		}
	}
	return sum
}

// GrandTotalTx sums transmitted bytes over the whole network.
func (n *Network) GrandTotalTx() uint64 {
	var sum uint64
	for _, c := range n.counters {
		sum += c.TxBytes
	}
	return sum
}

// Interfaces returns all interface keys that saw traffic, sorted.
func (n *Network) Interfaces() []IfKey {
	out := make([]IfKey, 0, len(n.counters))
	for k := range n.counters {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IA != out[j].IA {
			return out[i].IA.Less(out[j].IA)
		}
		return out[i].If < out[j].If
	})
	return out
}

// PerInterfaceTxBytes returns the TX byte count per traffic-bearing
// interface, in Interfaces() order. This is the Figure 9 observable.
func (n *Network) PerInterfaceTxBytes() []uint64 {
	keys := n.Interfaces()
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = n.counters[k].TxBytes
	}
	return out
}

// SetTelemetry registers the network's aggregate traffic observables.
// All are deterministic: counters and drop counts mutate only in serial
// or commit-ordered context, and gauge funcs are evaluated at export
// time from serial context.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("net_tx_bytes_total", func() float64 { return float64(n.GrandTotalTx()) })
	reg.GaugeFunc("net_interfaces_active", func() float64 { return float64(len(n.counters)) })
	reg.GaugeFunc(`net_dropped_total{cause="no_handler"}`, func() float64 { return float64(n.Dropped) })
	reg.GaugeFunc(`net_dropped_total{cause="failed_link"}`, func() float64 { return float64(n.DroppedOnFailedLinks) })
	reg.GaugeFunc(`net_dropped_total{cause="loss"}`, func() float64 { return float64(n.DroppedByLoss) })
}

// ResetCounters clears all traffic counters (e.g. after a warm-up phase),
// including every drop counter, so measurement windows start from zero.
func (n *Network) ResetCounters() {
	n.counters = map[IfKey]*Counter{}
	n.Dropped = 0
	n.DroppedOnFailedLinks = 0
	n.DroppedByLoss = 0
}

// NetworkState is the shared network state a checkpoint must carry:
// per-interface traffic counters, link fault state, and the gray-loss
// RNG position (seed plus draw count, restored by reseed-and-fast-
// forward so post-resume drop decisions replay the original stream).
type NetworkState struct {
	Counters map[IfKey]Counter
	Failed   []topology.LinkID
	Delays   map[topology.LinkID]time.Duration
	Loss     map[topology.LinkID]float64

	LossSeeded bool
	LossSeed   int64
	LossDraws  uint64

	Dropped              uint64
	DroppedOnFailedLinks uint64
	DroppedByLoss        uint64
}

// CheckpointState captures the network's shared state. Call from serial
// context (e.g. a BeforeStep hook).
func (n *Network) CheckpointState() NetworkState {
	st := NetworkState{
		Counters:             make(map[IfKey]Counter, len(n.counters)),
		Failed:               make([]topology.LinkID, 0, len(n.failed)),
		Delays:               make(map[topology.LinkID]time.Duration, len(n.delays)),
		Loss:                 make(map[topology.LinkID]float64, len(n.loss)),
		LossSeeded:           n.lossRNG != nil,
		LossSeed:             n.lossSeed,
		LossDraws:            n.lossDraws,
		Dropped:              n.Dropped,
		DroppedOnFailedLinks: n.DroppedOnFailedLinks,
		DroppedByLoss:        n.DroppedByLoss,
	}
	for k, c := range n.counters {
		st.Counters[k] = *c
	}
	for id := range n.failed {
		st.Failed = append(st.Failed, id)
	}
	for id, d := range n.delays {
		st.Delays[id] = d
	}
	for id, r := range n.loss {
		st.Loss[id] = r
	}
	return st
}

// RestoreState applies a checkpointed NetworkState to a freshly built
// Network over the same topology. Call before the resumed run starts.
func (n *Network) RestoreState(st NetworkState) {
	for k, c := range st.Counters {
		*n.counter(k) = c
	}
	for _, id := range st.Failed {
		n.failed[id] = true
	}
	for id, d := range st.Delays {
		n.delays[id] = d
	}
	for id, r := range st.Loss {
		n.loss[id] = r
	}
	if st.LossSeeded {
		n.SeedLoss(st.LossSeed)
		for i := uint64(0); i < st.LossDraws; i++ {
			n.lossRNG.Float64()
		}
		n.lossDraws = st.LossDraws
	}
	n.Dropped = st.Dropped
	n.DroppedOnFailedLinks = st.DroppedOnFailedLinks
	n.DroppedByLoss = st.DroppedByLoss
}
