package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"scionmpr/internal/telemetry"
)

// TestTraceParallelMatchesSequential: trace events emitted from inside
// parallel segments (staged on the actor's frame, flushed at commit)
// land in the ring in exactly the order a sequential run emits them,
// for any worker count — byte-identical JSONL.
func TestTraceParallelMatchesSequential(t *testing.T) {
	run := func(workers int) string {
		var s Simulator
		s.SetWorkers(workers)
		tr := telemetry.NewTracer(1 << 10)
		s.SetTracer(tr)
		if s.Tracer() != tr {
			t.Fatal("Tracer() accessor")
		}
		sh1, sh2 := s.NewShard(), s.NewShard()
		at := Time(time.Second)
		// Each event emits a trace while running and schedules a sharded
		// follow-up (a deferred effect) that traces again one second later.
		emit := func(shard uint32, id uint64) func() {
			return func() {
				s.Trace(shard, telemetry.Event{Kind: telemetry.FlowRetry, Actor: id})
				s.Trace(shard, telemetry.Event{Kind: telemetry.FlowSwitch, Actor: id, Aux: 1})
				s.AtShard(shard, s.Now()+Time(time.Second), func() {
					s.Trace(shard, telemetry.Event{Kind: telemetry.PathRegistered, Actor: id})
				})
			}
		}
		s.AtShard(sh1, at, emit(sh1, 1))
		s.AtShard(sh2, at, emit(sh2, 2))
		s.AtShard(sh1, at, emit(sh1, 3))
		// Serial barrier in the middle of the batch traces directly.
		s.At(at, func() { s.Trace(SerialShard, telemetry.Event{Kind: telemetry.FaultApplied, Actor: 4}) })
		s.AtShard(sh2, at, emit(sh2, 5))
		s.Run()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := run(1)
	// 4 sharded events × 2 traces + 1 serial + 4 follow-ups = 13 lines.
	if got := strings.Count(seq, "\n"); got != 13 {
		t.Fatalf("sequential run emitted %d traces, want 13:\n%s", got, seq)
	}
	for _, w := range []int{2, 4, 8} {
		if got := run(w); got != seq {
			t.Errorf("workers=%d: trace stream differs from sequential:\n%s\nwant:\n%s", w, got, seq)
		}
	}
}

// TestTraceStampsVirtualTime: Trace overwrites Event.Time with the
// virtual clock, not wall time.
func TestTraceStampsVirtualTime(t *testing.T) {
	var s Simulator
	tr := telemetry.NewTracer(8)
	s.SetTracer(tr)
	s.At(Time(5*time.Second), func() {
		s.Trace(SerialShard, telemetry.Event{Kind: telemetry.BeaconOriginated, Time: 999})
	})
	s.Run()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Time != int64(5*time.Second) {
		t.Fatalf("events = %+v, want one event at t=5s", evs)
	}
}

// TestTraceWithoutTracerIsNoop: Trace with no tracer attached must not
// touch frames or panic, in serial or parallel context.
func TestTraceWithoutTracerIsNoop(t *testing.T) {
	var s Simulator
	s.SetWorkers(4)
	sh1, sh2 := s.NewShard(), s.NewShard()
	at := Time(time.Second)
	s.AtShard(sh1, at, func() { s.Trace(sh1, telemetry.Event{Kind: telemetry.FlowRetry}) })
	s.AtShard(sh2, at, func() { s.Trace(sh2, telemetry.Event{Kind: telemetry.FlowRetry}) })
	s.Run()
}

// TestTraceForeignShardPanics: tracing as a shard that is not currently
// executing is the trace analogue of a cross-shard side effect and must
// panic rather than silently break determinism.
func TestTraceForeignShardPanics(t *testing.T) {
	var s Simulator
	s.SetWorkers(4)
	s.SetTracer(telemetry.NewTracer(8))
	sh1, sh2 := s.NewShard(), s.NewShard()
	foreign := s.NewShard() // never scheduled, so never executing
	at := Time(time.Second)
	s.AtShard(sh1, at, func() {
		if s.inPar {
			s.Trace(foreign, telemetry.Event{Kind: telemetry.FlowRetry})
		}
	})
	s.AtShard(sh2, at, func() {})
	defer func() {
		if recover() == nil {
			t.Error("trace as a non-executing shard from parallel execution must panic")
		}
	}()
	s.Run()
}

// TestSimTelemetryGauges: SetTelemetry exposes executed/pending as
// deterministic gauges and the parallel scheduler shape as volatile.
func TestSimTelemetryGauges(t *testing.T) {
	var s Simulator
	s.SetWorkers(4)
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	sh1, sh2 := s.NewShard(), s.NewShard()
	at := Time(time.Second)
	s.AtShard(sh1, at, func() {})
	s.AtShard(sh2, at, func() {})
	s.Run()

	var snap bytes.Buffer
	if err := reg.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if want := "sim_events_executed 2\nsim_events_pending 0\n"; snap.String() != want {
		t.Fatalf("snapshot = %q, want %q", snap.String(), want)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "sim_parallel_segments 1") {
		t.Fatalf("prom output missing parallel segment count:\n%s", prom.String())
	}
}
