package sim

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// TestEveryStopMidTick: when the tick callback itself stops the
// simulator, Every must not self-reschedule — a stopped run previously
// left one extra pending event behind.
func TestEveryStopMidTick(t *testing.T) {
	var s Simulator
	n := 0
	s.Every(0, time.Second, 0, func(Time) {
		n++
		if n == 3 {
			s.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
	if p := s.Pending(); p != 0 {
		t.Errorf("stopped run left %d pending events, want 0", p)
	}
}

// TestShardFIFOAndSerialBarrier: events of one shard keep FIFO order
// among themselves, and a serial event between sharded ones acts as a
// barrier — everything before it (in seq order) commits first.
func TestShardFIFOAndSerialBarrier(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var s Simulator
		s.SetWorkers(workers)
		sh1, sh2 := s.NewShard(), s.NewShard()
		var order []int
		// Interleave two shards plus a serial barrier, all at t=1s.
		at := Time(time.Second)
		s.AtShard(sh1, at, func() { s.appendOrdered(&order, 1, sh1) })
		s.AtShard(sh2, at, func() { s.appendOrdered(&order, 2, sh2) })
		s.AtShard(sh1, at, func() { s.appendOrdered(&order, 3, sh1) })
		s.At(at, func() { order = append(order, 4) }) // serial barrier
		s.AtShard(sh2, at, func() { s.appendOrdered(&order, 5, sh2) })
		s.Run()
		want := []int{1, 2, 3, 4, 5}
		if len(order) != len(want) {
			t.Fatalf("workers=%d: order = %v, want %v", workers, order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("workers=%d: order = %v, want %v", workers, order, want)
			}
		}
	}
}

// appendOrdered records id into order at commit time, from a sharded
// event: directly when running inline, deferred when in a parallel
// segment.
func (s *Simulator) appendOrdered(order *[]int, id int, shard uint32) {
	if s.inPar {
		s.deferOp(shard, op{kind: opFunc, fn: func() { *order = append(*order, id) }})
		return
	}
	*order = append(*order, id)
}

// TestParallelZeroDelayReschedule: a sharded event rescheduling itself
// with zero delay (the legal own-shard pattern, like a tick) must run
// again within the same timestamp — parallel batching may not skip the
// follow-up events sequential execution would have run.
func TestParallelZeroDelayReschedule(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var s Simulator
		s.SetWorkers(workers)
		sh1, sh2 := s.NewShard(), s.NewShard()
		// Per-shard counters are own-shard state: direct mutation is fine.
		counts := make([]int, 2)
		chain := func(slot int, shard uint32) func() {
			var self func()
			self = func() {
				counts[slot]++
				if counts[slot] < 5 {
					s.ScheduleShard(shard, 0, self)
				}
			}
			return self
		}
		s.AtShard(sh1, Time(time.Second), chain(0, sh1))
		s.AtShard(sh2, Time(time.Second), chain(1, sh2))
		end := s.Run()
		if end != Time(time.Second) {
			t.Errorf("workers=%d: zero-delay chain advanced the clock to %v", workers, end)
		}
		if counts[0] != 5 || counts[1] != 5 {
			t.Errorf("workers=%d: chains fired %v times, want [5 5]", workers, counts)
		}
		if s.Executed != 10 {
			t.Errorf("workers=%d: Executed = %d, want 10", workers, s.Executed)
		}
	}
}

// TestCrossShardSchedulePanics: plain Schedule/At from inside a parallel
// segment is a contract violation and must panic rather than silently
// break determinism.
func TestCrossShardSchedulePanics(t *testing.T) {
	var s Simulator
	s.SetWorkers(4)
	sh1, sh2 := s.NewShard(), s.NewShard()
	at := Time(time.Second)
	// Two groups so the segment actually runs on workers.
	s.AtShard(sh1, at, func() {
		if s.inPar {
			s.Schedule(time.Second, func() {}) // must panic
		}
	})
	s.AtShard(sh2, at, func() {})
	defer func() {
		if recover() == nil {
			t.Error("cross-shard Schedule from parallel execution must panic")
		}
	}()
	s.Run()
}

// TestParallelNetworkMatchesSequential: a two-AS network with sharding
// produces identical traffic counters for any worker count.
func TestParallelNetworkMatchesSequential(t *testing.T) {
	run := func(workers int) (uint64, uint64) {
		var s Simulator
		s.SetWorkers(workers)
		g := pairTopo()
		a, b := addr.MustIA(1, 1), addr.MustIA(1, 2)
		n := NewNetwork(&s, g, 10*time.Millisecond)
		n.EnableSharding()
		link := g.LinksBetween(a, b)[0]
		// Each AS echoes back smaller messages until size reaches 1.
		mk := func(local addr.IA) Handler {
			return HandlerFunc(func(from addr.IA, l *topology.Link, msg Message) {
				if sz := msg.WireLen(); sz > 1 {
					n.Send(local, l, testMsg(sz-1))
				}
			})
		}
		n.Register(a, mk(a))
		n.Register(b, mk(b))
		s.Schedule(0, func() { n.Send(a, link, testMsg(16)) })
		s.Run()
		return n.GrandTotalTx(), n.TotalRx(b)
	}
	seqTx, seqRx := run(1)
	if seqTx == 0 {
		t.Fatal("no traffic in sequential run")
	}
	for _, w := range []int{2, 4} {
		if tx, rx := run(w); tx != seqTx || rx != seqRx {
			t.Errorf("workers=%d: counters tx=%d rx=%d, want tx=%d rx=%d", w, tx, rx, seqTx, seqRx)
		}
	}
}

// TestParallelStopRequeuesRemainder: a serial event stopping the
// simulator mid-batch leaves the not-yet-executed events queued, like a
// sequential Stop.
func TestParallelStopRequeuesRemainder(t *testing.T) {
	var s Simulator
	s.SetWorkers(4)
	sh := s.NewShard()
	at := Time(time.Second)
	ran := 0
	s.At(at, func() { s.Stop() })
	s.AtShard(sh, at, func() { ran++ })
	s.AtShard(sh, at, func() { ran++ })
	s.Run()
	if ran != 0 {
		t.Errorf("events after Stop executed: %d", ran)
	}
	if p := s.Pending(); p != 2 {
		t.Errorf("pending = %d, want 2 requeued events", p)
	}
}

// TestDefaultWorkersEnv: SCIONMPR_WORKERS overrides GOMAXPROCS.
func TestDefaultWorkersEnv(t *testing.T) {
	t.Setenv("SCIONMPR_WORKERS", "3")
	if n := DefaultWorkers(); n != 3 {
		t.Errorf("DefaultWorkers with env = %d, want 3", n)
	}
	t.Setenv("SCIONMPR_WORKERS", "bogus")
	if n := DefaultWorkers(); n < 1 {
		t.Errorf("DefaultWorkers fallback = %d", n)
	}
	var s Simulator
	s.SetWorkers(0)
	if s.WorkerCount() < 1 {
		t.Error("SetWorkers(0) must resolve to >= 1")
	}
}
