package sim

import (
	"testing"

	"scionmpr/internal/topology"
)

// makespan runs greedy list scheduling: workers pick the next group off
// the list as they free up, which is exactly how the parallel segment
// hands out shard groups. Cost of a group is its event count times the
// shard's static weight (the tick-segment cost model: one tick per AS,
// work proportional to degree).
func makespan(groups []shardGroup, weight func(uint32) uint32, workers int) uint64 {
	load := make([]uint64, workers)
	for _, g := range groups {
		// Least-loaded worker is the one that frees up first.
		min := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[min] {
				min = i
			}
		}
		w := uint64(weight(g.shard))
		if w == 0 {
			w = 1
		}
		load[min] += uint64(len(g.evs)) * w
	}
	max := load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// roundRobinMakespan statically assigns shard i to worker i%workers —
// the naive strategy the degree-aware pickup order replaced.
func roundRobinMakespan(groups []shardGroup, weight func(uint32) uint32, workers int) uint64 {
	load := make([]uint64, workers)
	for i, g := range groups {
		w := uint64(weight(g.shard))
		if w == 0 {
			w = 1
		}
		load[i%workers] += uint64(len(g.evs)) * w
	}
	max := load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// TestLPTOrderingBeatsRoundRobin is the regression guard for the
// degree-aware segment ordering: on a 1k-AS internet-like topology
// (power-law degrees, so a handful of hub ASes dominate tick cost), LPT
// pickup order must schedule a tick segment with a strictly smaller
// makespan than naive round-robin assignment, and stay within the
// classic LPT bound of its lower bound.
func TestLPTOrderingBeatsRoundRobin(t *testing.T) {
	p := topology.DefaultGenParams()
	p.NumASes = 1000
	topo := topology.MustGenerate(p)

	// One group per AS with a single event — the shape of every tick
	// segment — built in registration order, exactly as EnableSharding
	// registers shards.
	ias := topo.IAs()
	groups := make([]shardGroup, len(ias))
	weights := make([]uint32, len(ias))
	var total, maxW uint64
	for i, ia := range ias {
		groups[i] = shardGroup{shard: uint32(i), evs: []int32{int32(i)}}
		d := uint32(topo.AS(ia).Degree())
		if d == 0 {
			d = 1
		}
		weights[i] = d
		total += uint64(d)
		if uint64(d) > maxW {
			maxW = uint64(d)
		}
	}
	weight := func(sh uint32) uint32 { return weights[sh] }

	const workers = 8
	rr := roundRobinMakespan(groups, weight, workers)
	naive := makespan(groups, weight, workers)

	OrderGroups(groups, weight)
	// OrderGroups must be a permutation: same shard set, heaviest first.
	if len(groups) != len(ias) {
		t.Fatalf("OrderGroups changed group count: %d != %d", len(groups), len(ias))
	}
	for i := 1; i < len(groups); i++ {
		if weight(groups[i-1].shard) < weight(groups[i].shard) {
			t.Fatalf("groups not in descending weight order at %d: %d < %d",
				i, weight(groups[i-1].shard), weight(groups[i].shard))
		}
	}
	lpt := makespan(groups, weight, workers)

	lower := total / workers
	if maxW > lower {
		lower = maxW
	}
	t.Logf("1k-AS tick segment, %d workers: lower bound %d, LPT %d, greedy-in-id-order %d, round-robin %d",
		workers, lower, lpt, naive, rr)
	if lpt > naive {
		t.Errorf("LPT makespan %d worse than greedy id-order %d", lpt, naive)
	}
	if lpt >= rr {
		t.Errorf("LPT makespan %d not better than naive round-robin %d", lpt, rr)
	}
	// Graham's LPT guarantee: makespan <= (4/3 - 1/(3m)) * OPT, and
	// OPT >= max(total/m, max item).
	if float64(lpt) > (4.0/3.0)*float64(lower)+1 {
		t.Errorf("LPT makespan %d exceeds 4/3 of lower bound %d", lpt, lower)
	}
}
