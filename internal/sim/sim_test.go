package sim

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

func TestScheduleOrdering(t *testing.T) {
	var s Simulator
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	end := s.Run()
	if end != Time(3*time.Second) {
		t.Errorf("end time = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var s Simulator
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Simulator
	fired := 0
	s.Schedule(time.Second, func() {
		s.Schedule(time.Second, func() { fired++ })
	})
	s.Run()
	if fired != 1 {
		t.Errorf("nested event fired %d times", fired)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("now = %v, want 2s", s.Now())
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	var s Simulator
	ok := false
	s.Schedule(time.Second, func() {
		s.Schedule(-5*time.Second, func() { ok = s.Now() == Time(time.Second) })
	})
	s.Run()
	if !ok {
		t.Error("negative delay did not run at current time")
	}
}

func TestAtPastPanics(t *testing.T) {
	var s Simulator
	s.Schedule(2*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		s.At(Time(time.Second), func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	var s Simulator
	fired := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { fired++ })
	}
	s.RunUntil(Time(3 * time.Second))
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	if s.Now() != Time(3*time.Second) {
		t.Errorf("now = %v", s.Now())
	}
	// RunUntil past the rest executes them.
	s.RunUntil(Time(10 * time.Second))
	if fired != 5 || s.Now() != Time(10*time.Second) {
		t.Errorf("fired=%d now=%v", fired, s.Now())
	}
}

func TestStop(t *testing.T) {
	var s Simulator
	fired := 0
	s.Schedule(time.Second, func() { fired++; s.Stop() })
	s.Schedule(2*time.Second, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d after Stop, want 1", fired)
	}
}

func TestEvery(t *testing.T) {
	var s Simulator
	var at []Time
	s.Every(time.Second, 2*time.Second, Time(7*time.Second), func(now Time) {
		at = append(at, now)
	})
	s.Run()
	want := []Time{Time(time.Second), Time(3 * time.Second), Time(5 * time.Second), Time(7 * time.Second)}
	if len(at) != len(want) {
		t.Fatalf("firings = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firings = %v, want %v", at, want)
		}
	}
}

func TestEveryNoEnd(t *testing.T) {
	var s Simulator
	n := 0
	s.Every(0, time.Second, 0, func(Time) {
		n++
		if n == 4 {
			s.Stop()
		}
	})
	s.Run()
	if n != 4 {
		t.Errorf("unbounded Every fired %d times before Stop", n)
	}
}

type testMsg int

func (m testMsg) WireLen() int { return int(m) }

func pairTopo() *topology.Graph {
	g := topology.New()
	a := addr.MustIA(1, 1)
	b := addr.MustIA(1, 2)
	g.AddAS(a, true)
	g.AddAS(b, true)
	g.MustConnect(a, b, topology.Core)
	return g
}

func TestNetworkDelivery(t *testing.T) {
	var s Simulator
	g := pairTopo()
	a, b := addr.MustIA(1, 1), addr.MustIA(1, 2)
	n := NewNetwork(&s, g, 10*time.Millisecond)

	var gotFrom addr.IA
	var gotSize int
	var gotAt Time
	n.Register(b, HandlerFunc(func(from addr.IA, l *topology.Link, m Message) {
		gotFrom, gotSize, gotAt = from, m.WireLen(), s.Now()
	}))

	link := g.LinksBetween(a, b)[0]
	n.Send(a, link, testMsg(100))
	s.Run()

	if gotFrom != a || gotSize != 100 {
		t.Errorf("delivery: from=%v size=%d", gotFrom, gotSize)
	}
	if gotAt != Time(10*time.Millisecond) {
		t.Errorf("delivered at %v, want 10ms", gotAt)
	}
	txc := n.InterfaceCounter(a, link.LocalIf(a))
	rxc := n.InterfaceCounter(b, link.LocalIf(b))
	if txc.TxBytes != 100 || txc.TxMsgs != 1 {
		t.Errorf("tx counter = %+v", txc)
	}
	if rxc.RxBytes != 100 || rxc.RxMsgs != 1 {
		t.Errorf("rx counter = %+v", rxc)
	}
	if n.TotalTx(a) != 100 || n.TotalRx(b) != 100 || n.GrandTotalTx() != 100 {
		t.Error("totals wrong")
	}
}

func TestNetworkDropsWithoutHandler(t *testing.T) {
	var s Simulator
	g := pairTopo()
	a, b := addr.MustIA(1, 1), addr.MustIA(1, 2)
	n := NewNetwork(&s, g, time.Millisecond)
	link := g.LinksBetween(a, b)[0]
	n.Send(a, link, testMsg(10))
	s.Run()
	if n.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", n.Dropped)
	}
	// RX is still counted: bytes crossed the wire.
	if n.TotalRx(b) != 10 {
		t.Error("rx bytes not counted on drop")
	}
}

func TestNetworkSendForeignLinkPanics(t *testing.T) {
	var s Simulator
	g := pairTopo()
	c := addr.MustIA(1, 3)
	g.AddAS(c, false)
	n := NewNetwork(&s, g, time.Millisecond)
	link := g.LinksBetween(addr.MustIA(1, 1), addr.MustIA(1, 2))[0]
	defer func() {
		if recover() == nil {
			t.Error("sending on foreign link must panic")
		}
	}()
	n.Send(c, link, testMsg(1))
}

func TestNetworkInterfaceListing(t *testing.T) {
	var s Simulator
	g := pairTopo()
	a, b := addr.MustIA(1, 1), addr.MustIA(1, 2)
	n := NewNetwork(&s, g, time.Millisecond)
	n.Register(a, HandlerFunc(func(addr.IA, *topology.Link, Message) {}))
	n.Register(b, HandlerFunc(func(addr.IA, *topology.Link, Message) {}))
	link := g.LinksBetween(a, b)[0]
	n.Send(a, link, testMsg(7))
	n.Send(b, link, testMsg(9))
	s.Run()
	keys := n.Interfaces()
	if len(keys) != 2 {
		t.Fatalf("interfaces = %v", keys)
	}
	per := n.PerInterfaceTxBytes()
	if per[0]+per[1] != 16 {
		t.Errorf("per-interface tx = %v", per)
	}
	n.ResetCounters()
	if len(n.Interfaces()) != 0 || n.GrandTotalTx() != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestSetLinkDelay(t *testing.T) {
	var s Simulator
	g := pairTopo()
	a, b := addr.MustIA(1, 1), addr.MustIA(1, 2)
	n := NewNetwork(&s, g, 10*time.Millisecond)
	link := g.LinksBetween(a, b)[0]

	if d := n.LinkDelay(link.ID); d != 10*time.Millisecond {
		t.Fatalf("default delay = %v", d)
	}
	n.SetLinkDelay(link.ID, 3*time.Millisecond)
	if d := n.LinkDelay(link.ID); d != 3*time.Millisecond {
		t.Fatalf("override delay = %v", d)
	}

	var gotAt Time
	n.Register(b, HandlerFunc(func(addr.IA, *topology.Link, Message) { gotAt = s.Now() }))
	n.Send(a, link, testMsg(1))
	s.Run()
	if gotAt != Time(3*time.Millisecond) {
		t.Errorf("delivered at %v, want the 3ms override", gotAt)
	}

	// d <= 0 restores the network-wide default.
	n.SetLinkDelay(link.ID, 0)
	if d := n.LinkDelay(link.ID); d != 10*time.Millisecond {
		t.Errorf("delay after reset = %v, want default", d)
	}
}
