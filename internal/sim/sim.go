// Package sim is a deterministic discrete-event simulator, the stand-in
// for the paper's ns-3-based beaconing simulator. It provides a virtual
// clock with an event heap, message delivery across topology links with
// configurable latency, and per-interface byte and message counters — the
// exact observables the paper's overhead evaluation needs (§5.1, §5.2:
// "we observe the amount of PCB traffic sent on each inter-domain
// interface").
//
// # Parallel deterministic execution
//
// The simulator can execute events sharing a virtual timestamp in
// parallel while producing output byte-identical to a sequential run.
// Events carry an optional shard: a small integer identifying the actor
// (in practice one AS's control-plane process) whose private state the
// event touches. Same-timestamp events are batched, partitioned by
// shard, and run on a worker pool; shard 0 events are serial barriers
// that split a batch into independently parallelizable segments.
//
// Determinism rests on two rules enforced by this package:
//
//  1. A sharded event may mutate only its own shard's state directly.
//     Cross-shard side effects — scheduling new events, transmitting
//     messages — are deferred into a per-event effect list and replayed
//     after the segment in (time, seq) order, exactly the order a
//     sequential run would have produced them in. Sequence numbers,
//     traffic counters, and seeded RNG draws therefore come out
//     identical for any worker count.
//  2. Serial (shard 0) events act as barriers: all effects of earlier
//     sharded events are committed before a serial event runs, and no
//     sharded event of the same timestamp with a later sequence number
//     has started.
//
// Calling Schedule/At without a shard from inside parallel execution is
// a contract violation and panics; use the *Shard variants (or
// Network.Send, which routes itself) from sharded actors.
package sim

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// Time is virtual simulation time measured as a duration since simulation
// start.
type Time time.Duration

func (t Time) String() string { return time.Duration(t).String() }

// SerialShard is the shard of events that must run alone: they may touch
// any state, and they barrier parallel execution within their timestamp.
const SerialShard uint32 = 0

type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among same-time events
	shard uint32 // SerialShard, or an actor shard from NewShard
	fn    func()
	// del, when non-nil, is a pooled network delivery executed instead of
	// fn — the bulk of large-run events, kept off the allocator entirely.
	del *delivery
}

// run executes the event's payload.
func (e *event) run() {
	if e.del != nil {
		d := e.del
		e.del = nil
		d.net.runDelivery(d)
		return
	}
	e.fn()
}

// eventHeap is a hand-rolled binary min-heap over (at, seq). The
// container/heap interface boxes every pushed event into an interface
// value — one heap allocation per scheduled event, the second-largest
// allocator in beaconing profiles — so the sift loops live here instead.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	// Sift up.
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = event{} // release fn/del references
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// shardGroup is the per-shard slice of a parallel segment: indices into
// the segment's event slice, in sequence order.
type shardGroup struct {
	shard uint32
	evs   []int32
}

// op is one deferred cross-shard effect, recorded while a sharded event
// runs on a parallel worker and replayed at commit in sequence order.
// The hot effects — network sends, RX accounting, drop counts — are
// typed so deferring them appends to a reused slice instead of
// allocating a closure per message; everything else goes through fn.
type op struct {
	kind  uint8
	shard uint32         // opPush: target shard
	at    Time           // opPush: absolute time
	fn    func()         // opPush, opFunc: payload
	net   *Network       // opSend, opRx, opDrop
	from  addr.IA        // opSend
	link  *topology.Link // opSend
	msg   Message        // opSend
	key   IfKey          // opRx
	size  int32          // opRx
}

const (
	opFunc uint8 = iota // run fn
	opPush              // schedule fn at (shard, at)
	opSend              // transmit msg from from over link
	opRx                // count size received bytes on key
	opDrop              // count one no-handler drop
)

// apply replays the effect in serial context.
func (o *op) apply(s *Simulator) {
	switch o.kind {
	case opFunc:
		o.fn()
	case opPush:
		s.push(o.shard, o.at, o.fn)
	case opSend:
		o.net.send(o.from, o.link, o.msg)
	case opRx:
		c := o.net.counter(o.key)
		c.RxBytes += uint64(o.size)
		c.RxMsgs++
	case opDrop:
		o.net.Dropped++
	}
}

// Simulator owns the virtual clock and the pending event set. The zero
// value is ready to use (sequentially; see SetWorkers).
type Simulator struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped atomic.Bool
	// Executed counts processed events, useful for run-away detection in
	// tests and experiment logs.
	Executed uint64

	// workers is the parallel worker count; <= 1 executes sequentially.
	workers   int
	nextShard uint32

	// inPar is true while a parallel segment's workers are running. It is
	// written only with no workers alive (happens-before via goroutine
	// start and WaitGroup.Wait), so worker reads are race-free.
	inPar bool
	// ops holds the deferred cross-shard effects of the segment currently
	// executing, one list per event (indexed like the segment slice).
	ops [][]op
	// frames maps shard -> index of that shard's currently executing
	// event in the segment (-1 outside segments). Each entry is written
	// only by the worker owning the shard.
	frames []int32
	// weights holds optional static per-shard costs (e.g. AS degree), set
	// via SetShardWeight. Parallel segments hand groups to workers in
	// descending (event count, weight) order — longest-processing-time
	// first — so one heavyweight actor shard no longer straggles behind
	// an otherwise idle pool.
	weights []uint32

	// tracer, when set, receives structured telemetry events via Trace.
	// traces stages parallel-phase emissions per event (indexed like the
	// segment slice) for flushing in sequence-ordered commit.
	tracer *telemetry.Tracer
	traces [][]telemetry.Event

	// parSegments/parEvents count segments and events that actually ran
	// on the worker pool — a scheduler-shape observable that depends on
	// the worker count (volatile telemetry, never fingerprinted).
	parSegments, parEvents uint64
	// groupHist buckets per-shard event counts of parallel segments by
	// floor(log2(count)) — the shard-occupancy imbalance observable.
	// Scheduler-shape: volatile telemetry, never fingerprinted.
	groupHist *telemetry.Histogram
	// maxGroupEvents is the largest single-shard event count seen in any
	// parallel segment (volatile).
	maxGroupEvents uint64

	// beforeStep, when set, runs in serial context every time the clock
	// is about to advance to a new timestamp, before any event at that
	// timestamp executes. It consumes no sequence numbers and is not
	// counted in Executed, so hooking a run (e.g. to checkpoint it) does
	// not perturb its observables.
	beforeStep func(t Time)
	steppedAt  Time
	stepped    bool

	// Scratch buffers reused across batches to keep the hot loop
	// allocation-free.
	batch   []event
	groups  []shardGroup
	groupOf map[uint32]int32
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// SetTracer attaches a trace-event ring. Call before Run. Events
// emitted through Trace land in the ring in deterministic (time, seq)
// order regardless of worker count.
func (s *Simulator) SetTracer(t *telemetry.Tracer) { s.tracer = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (s *Simulator) Tracer() *telemetry.Tracer { return s.tracer }

// Trace records a telemetry trace event, stamping ev.Time from the
// virtual clock. From serial context the event goes straight to the
// ring; from parallel execution it is staged on the calling actor's
// event frame and flushed during the sequence-ordered commit, so ring
// contents are byte-identical for any worker count.
//
// Determinism rule: call Trace only while the actor's event function is
// on the stack — never from a deferred effect (an op committed after
// the segment, e.g. inside a Network send), where the sequential and
// parallel interleavings would differ. No-op when no tracer is set.
func (s *Simulator) Trace(shard uint32, ev telemetry.Event) {
	if s.tracer == nil {
		return
	}
	ev.Time = int64(s.now)
	if !s.inPar {
		s.tracer.Emit(ev)
		return
	}
	idx := int32(-1)
	if int(shard) < len(s.frames) {
		idx = s.frames[shard]
	}
	if idx < 0 {
		panic("sim: trace from parallel execution must come from the executing actor's shard")
	}
	s.traces[idx] = append(s.traces[idx], ev)
}

// SetTelemetry registers the simulator's own metrics. Executed and
// Pending are deterministic; the parallel scheduler shape (how many
// events actually ran inside parallel segments) depends on the worker
// count and is registered volatile.
func (s *Simulator) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("sim_events_executed", func() float64 { return float64(s.Executed) })
	reg.GaugeFunc("sim_events_pending", func() float64 { return float64(len(s.events)) })
	reg.VolatileGaugeFunc("sim_parallel_segments", func() float64 { return float64(s.parSegments) })
	reg.VolatileGaugeFunc("sim_parallel_events", func() float64 { return float64(s.parEvents) })
	// Per-shard occupancy of parallel segments: how many events one shard
	// contributed to one segment. A long tail here is actor-shard
	// imbalance — a few high-degree ASes receiving most deliveries.
	s.groupHist = reg.VolatileHistogram("sim_shard_segment_events", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	reg.VolatileGaugeFunc("sim_shard_segment_events_max", func() float64 { return float64(s.maxGroupEvents) })
}

// SetShardWeight records a static cost estimate for a shard (e.g. the
// AS's link degree). Weights only order group pickup inside parallel
// segments (heaviest first); they never affect observables. Call during
// setup, after NewShard.
func (s *Simulator) SetShardWeight(shard uint32, w uint32) {
	if int(shard) >= len(s.weights) {
		grown := make([]uint32, shard+1)
		copy(grown, s.weights)
		s.weights = grown
	}
	s.weights[shard] = w
}

// shardWeight returns the static weight of a shard (0 when unset).
func (s *Simulator) shardWeight(shard uint32) uint32 {
	if int(shard) < len(s.weights) {
		return s.weights[shard]
	}
	return 0
}

// BeforeStep registers fn to run, in serial context, whenever the clock
// is about to advance to a new timestamp — before any event at that
// timestamp executes. The hook consumes no sequence numbers and does not
// count toward Executed, so it can observe (e.g. checkpoint) a run
// without changing any of its deterministic observables. One hook may be
// registered; nil clears it.
func (s *Simulator) BeforeStep(fn func(t Time)) {
	s.beforeStep = fn
	s.stepped = false
}

// step fires the BeforeStep hook once per distinct timestamp.
func (s *Simulator) step(t Time) {
	if s.beforeStep == nil || (s.stepped && s.steppedAt == t) {
		return
	}
	s.steppedAt, s.stepped = t, true
	s.beforeStep(t)
}

// Restore prepares a simulator to resume a checkpointed run: the clock
// opens at now and Executed continues from executed, so a resumed run
// finishes with the same Executed count as an uninterrupted one. Call
// before scheduling any events.
func (s *Simulator) Restore(now Time, executed uint64) {
	if len(s.events) > 0 {
		panic("sim: Restore with events already scheduled")
	}
	s.now = now
	s.Executed = executed
}

// Checkpoint is the simulator core's own snapshot. Pending events are
// closures and deliberately not part of it: layers above (the beacon
// runner) re-create their event population on resume, which is also what
// keeps the format small and version-stable.
type Checkpoint struct {
	Now      Time
	Executed uint64
}

// Checkpoint captures the simulator core's state. Take it from a
// BeforeStep hook so no same-timestamp event has partially executed.
func (s *Simulator) Checkpoint() Checkpoint {
	return Checkpoint{Now: s.now, Executed: s.Executed}
}

// Resume is Restore from a Checkpoint.
func (s *Simulator) Resume(c Checkpoint) { s.Restore(c.Now, c.Executed) }

// SetWorkers sets the parallel worker count: 1 forces sequential
// execution, n > 1 runs same-timestamp sharded events on up to n
// goroutines, and n <= 0 resolves the default (the SCIONMPR_WORKERS
// environment variable if set, else GOMAXPROCS). Call it before Run; the
// produced event order and all observables are identical for every
// setting.
func (s *Simulator) SetWorkers(n int) {
	if n <= 0 {
		n = DefaultWorkers()
	}
	s.workers = n
}

// WorkerCount reports the effective worker count (1 = sequential).
func (s *Simulator) WorkerCount() int {
	if s.workers <= 1 {
		return 1
	}
	return s.workers
}

// DefaultWorkers resolves the default parallelism: the SCIONMPR_WORKERS
// environment variable when set to a positive integer, else GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv("SCIONMPR_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// NewShard allocates a fresh actor shard identifier. Shards are cheap
// integers; allocate one per independent actor (per AS) during setup,
// before the simulation runs. Not safe for concurrent use.
func (s *Simulator) NewShard() uint32 {
	s.nextShard++
	return s.nextShard
}

// Schedule queues fn to run after delay d. Negative delays run "now"
// (still in timestamp order with other now-events).
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	s.ScheduleShard(SerialShard, d, fn)
}

// ScheduleShard is Schedule for an event owned by the given actor shard.
func (s *Simulator) ScheduleShard(shard uint32, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.AtShard(shard, s.now+Time(d), fn)
}

// At queues fn at absolute virtual time t. Scheduling in the past is an
// error that would break causality; it panics to surface the bug.
func (s *Simulator) At(t Time, fn func()) { s.AtShard(SerialShard, t, fn) }

// AtShard is At for an event owned by the given actor shard. Within one
// shard, events retain FIFO order among equal timestamps; events of
// different shards at the same timestamp may execute in parallel.
func (s *Simulator) AtShard(shard uint32, t Time, fn func()) {
	if s.inPar {
		// Called from inside a parallel segment: defer the push so the
		// sequence number is assigned in deterministic commit order.
		s.deferOp(shard, op{kind: opPush, shard: shard, at: t, fn: fn})
		return
	}
	s.push(shard, t, fn)
}

func (s *Simulator) push(shard uint32, t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, shard: shard, fn: fn})
}

// pushDelivery schedules a pooled network delivery (see Network.send).
func (s *Simulator) pushDelivery(shard uint32, t Time, d *delivery) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, shard: shard, del: d})
}

// deferOp appends o to the effect list of the event currently executing
// on the caller's shard. It panics when the shard has no executing event
// in this segment — i.e. when code running as one actor tries to produce
// side effects attributed to another, which would be a nondeterministic
// cross-shard mutation.
func (s *Simulator) deferOp(shard uint32, o op) {
	idx := int32(-1)
	if int(shard) < len(s.frames) {
		idx = s.frames[shard]
	}
	if idx < 0 {
		panic("sim: cross-shard side effect from parallel execution: " +
			"schedule and send only as the executing actor (shard-aware APIs), or from serial events")
	}
	s.ops[idx] = append(s.ops[idx], o)
}

// Every schedules fn at start and then every interval until the simulator
// stops or the end time passes (end <= 0 means no end). fn also receives
// the firing time.
func (s *Simulator) Every(start, interval time.Duration, end Time, fn func(Time)) {
	s.EveryShard(SerialShard, start, interval, end, fn)
}

// EveryShard is Every for a repeating event owned by an actor shard (the
// per-AS beaconing tick). The self-rescheduling honors the parallel
// effect-ordering contract automatically.
func (s *Simulator) EveryShard(shard uint32, start, interval time.Duration, end Time, fn func(Time)) {
	var tick func()
	tick = func() {
		if s.stopped.Load() || (end > 0 && s.now > end) {
			return
		}
		fn(s.now)
		// fn may have stopped the run mid-tick; without this re-check a
		// stopped simulator is left with one extra self-rescheduled
		// event pending.
		if s.stopped.Load() {
			return
		}
		next := s.now + Time(interval)
		if end > 0 && next > end {
			return
		}
		s.AtShard(shard, next, tick)
	}
	next := s.now + Time(start)
	if end > 0 && next > end {
		return
	}
	s.AtShard(shard, next, tick)
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (s *Simulator) Run() Time {
	if s.WorkerCount() > 1 {
		s.runBatches(Time(math.MaxInt64))
		return s.now
	}
	for len(s.events) > 0 && !s.stopped.Load() {
		s.step(s.events[0].at)
		e := s.events.pop()
		s.now = e.at
		s.Executed++
		e.run()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and then advances
// the clock to the deadline. Remaining events stay queued.
func (s *Simulator) RunUntil(deadline Time) Time {
	if s.WorkerCount() > 1 {
		s.runBatches(deadline)
	} else {
		for len(s.events) > 0 && !s.stopped.Load() {
			if s.events[0].at > deadline {
				break
			}
			s.step(s.events[0].at)
			e := s.events.pop()
			s.now = e.at
			s.Executed++
			e.run()
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// runBatches drives the parallel execution loop: repeatedly extract all
// events sharing the earliest timestamp (<= deadline) and run them as a
// batch. Commits may schedule new events at the same timestamp (e.g.
// zero-latency links); the outer loop picks them up as a fresh batch,
// preserving global (time, seq) order because sequence numbers only grow.
func (s *Simulator) runBatches(deadline Time) {
	for len(s.events) > 0 && !s.stopped.Load() {
		t := s.events[0].at
		if t > deadline {
			return
		}
		s.step(t)
		s.now = t
		batch := s.batch[:0]
		for len(s.events) > 0 && s.events[0].at == t {
			batch = append(batch, s.events.pop())
		}
		s.runSegments(batch)
		clear(batch) // release fn references
		s.batch = batch[:0]
	}
}

// runSegments executes one same-timestamp batch: maximal runs of sharded
// events execute in parallel, serial events barrier between them. If the
// simulator is stopped partway (only a serial event or a committed
// effect can observe this deterministically), unexecuted events return
// to the heap, matching sequential Stop semantics at segment
// granularity.
func (s *Simulator) runSegments(batch []event) {
	i := 0
	for i < len(batch) {
		if s.stopped.Load() {
			for _, e := range batch[i:] {
				s.events.push(e)
			}
			return
		}
		if batch[i].shard == SerialShard {
			s.Executed++
			batch[i].run()
			i++
			continue
		}
		j := i + 1
		for j < len(batch) && batch[j].shard != SerialShard {
			j++
		}
		s.runParallel(batch[i:j])
		i = j
	}
}

// runParallel executes one segment of sharded events and commits their
// deferred effects in sequence order.
func (s *Simulator) runParallel(evs []event) {
	// Group events by shard, preserving sequence order within each group.
	if s.groupOf == nil {
		s.groupOf = map[uint32]int32{}
	}
	groups := s.groups[:0]
	for idx := range evs {
		sh := evs[idx].shard
		gi, ok := s.groupOf[sh]
		if !ok {
			gi = int32(len(groups))
			if cap(groups) > len(groups) {
				groups = groups[:len(groups)+1]
				groups[gi].shard = sh
				groups[gi].evs = groups[gi].evs[:0]
			} else {
				groups = append(groups, shardGroup{shard: sh})
			}
			s.groupOf[sh] = gi
		}
		groups[gi].evs = append(groups[gi].evs, int32(idx))
	}
	s.groups = groups

	workers := s.WorkerCount()
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		// One partition (or sequential): direct execution in seq order is
		// equivalent — effects apply inline in exactly the same order.
		for gi := range groups {
			delete(s.groupOf, groups[gi].shard)
		}
		for k := range evs {
			s.Executed++
			evs[k].run()
		}
		return
	}

	// Observe shard occupancy (volatile): the histogram of per-shard
	// event counts in this segment exposes actor imbalance.
	if s.groupHist != nil {
		for gi := range groups {
			n := uint64(len(groups[gi].evs))
			s.groupHist.Observe(float64(n))
			if n > s.maxGroupEvents {
				s.maxGroupEvents = n
			}
		}
	}

	// Hand groups to workers heaviest-first (longest processing time
	// first): primary key is the group's event count, tie-broken by the
	// shard's static weight (AS degree — a one-event tick of a hub AS
	// costs more than a stub's). Group order never affects observables;
	// commits below replay effects in sequence order regardless.
	OrderGroups(groups, s.shardWeight)

	// Per-event effect and staged-trace lists, and shard execution frames.
	if cap(s.ops) < len(evs) {
		s.ops = make([][]op, len(evs))
	}
	s.ops = s.ops[:len(evs)]
	if cap(s.traces) < len(evs) {
		s.traces = make([][]telemetry.Event, len(evs))
	}
	s.traces = s.traces[:len(evs)]
	s.parSegments++
	s.parEvents += uint64(len(evs))
	if len(s.frames) < int(s.nextShard)+1 {
		old := s.frames
		s.frames = make([]int32, s.nextShard+1)
		for k := range s.frames {
			s.frames[k] = -1
		}
		copy(s.frames, old)
	}

	s.inPar = true
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal interface{}
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = fmt.Sprintf("sim: worker panic: %v\n%s", r, debug.Stack())
					}
					panicMu.Unlock()
				}
			}()
			for {
				gi := next.Add(1)
				if gi >= int64(len(groups)) {
					return
				}
				g := &groups[gi]
				for _, idx := range g.evs {
					s.frames[g.shard] = idx
					evs[idx].run()
				}
			}
		}()
	}
	wg.Wait()
	s.inPar = false
	if panicVal != nil {
		panic(panicVal)
	}

	// Commit deferred effects in sequence order: this replays schedules
	// (assigning sequence numbers), traffic accounting, and RNG draws in
	// exactly the order a sequential run would have produced. Staged
	// traces flush first — sequentially they were emitted while the event
	// function ran, i.e. before any of its deferred effects applied.
	for idx := range evs {
		s.Executed++
		for _, ev := range s.traces[idx] {
			s.tracer.Emit(ev)
		}
		clear(s.traces[idx])
		s.traces[idx] = s.traces[idx][:0]
		l := s.ops[idx]
		for i := range l {
			l[i].apply(s)
		}
		clear(l)
		s.ops[idx] = l[:0]
	}

	// Reset shard frames and group scratch for the next segment.
	for gi := range groups {
		s.frames[groups[gi].shard] = -1
		delete(s.groupOf, groups[gi].shard)
	}
}

// OrderGroups arranges a segment's shard groups in worker pickup order:
// descending event count, then descending static shard weight, then
// ascending shard id (a deterministic tiebreak). This is the classic LPT
// (longest processing time first) heuristic for minimizing makespan on
// identical workers; weight supplies the cost estimate when event counts
// tie, which they almost always do in tick segments (one tick per AS).
func OrderGroups(groups []shardGroup, weight func(uint32) uint32) {
	slices.SortFunc(groups, func(a, b shardGroup) int {
		if len(a.evs) != len(b.evs) {
			return len(b.evs) - len(a.evs)
		}
		wa, wb := weight(a.shard), weight(b.shard)
		if wa != wb {
			if wb > wa {
				return 1
			}
			return -1
		}
		if a.shard < b.shard {
			return -1
		}
		if a.shard > b.shard {
			return 1
		}
		return 0
	})
}

// PendingDeliveries counts queued events that are in-flight network
// deliveries. Deliveries are the one event class a checkpoint cannot
// reconstruct from configuration (their payloads are live messages), so
// checkpointing layers assert this is zero at their capture points —
// which it is at beaconing-interval boundaries, where every delivery of
// the previous interval has long landed.
func (s *Simulator) PendingDeliveries() int {
	n := 0
	for i := range s.events {
		if s.events[i].del != nil {
			n++
		}
	}
	return n
}

// Stop halts Run/RunUntil after the current event (sequential mode) or
// the current segment (parallel mode). Safe to call from sharded events.
func (s *Simulator) Stop() { s.stopped.Store(true) }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
