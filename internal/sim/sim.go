// Package sim is a deterministic discrete-event simulator, the stand-in
// for the paper's ns-3-based beaconing simulator. It provides a virtual
// clock with an event heap, message delivery across topology links with
// configurable latency, and per-interface byte and message counters — the
// exact observables the paper's overhead evaluation needs (§5.1, §5.2:
// "we observe the amount of PCB traffic sent on each inter-domain
// interface").
//
// # Parallel deterministic execution
//
// The simulator can execute events sharing a virtual timestamp in
// parallel while producing output byte-identical to a sequential run.
// Events carry an optional shard: a small integer identifying the actor
// (in practice one AS's control-plane process) whose private state the
// event touches. Same-timestamp events are batched, partitioned by
// shard, and run on a worker pool; shard 0 events are serial barriers
// that split a batch into independently parallelizable segments.
//
// Determinism rests on two rules enforced by this package:
//
//  1. A sharded event may mutate only its own shard's state directly.
//     Cross-shard side effects — scheduling new events, transmitting
//     messages — are deferred into a per-event effect list and replayed
//     after the segment in (time, seq) order, exactly the order a
//     sequential run would have produced them in. Sequence numbers,
//     traffic counters, and seeded RNG draws therefore come out
//     identical for any worker count.
//  2. Serial (shard 0) events act as barriers: all effects of earlier
//     sharded events are committed before a serial event runs, and no
//     sharded event of the same timestamp with a later sequence number
//     has started.
//
// Calling Schedule/At without a shard from inside parallel execution is
// a contract violation and panics; use the *Shard variants (or
// Network.Send, which routes itself) from sharded actors.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scionmpr/internal/telemetry"
)

// Time is virtual simulation time measured as a duration since simulation
// start.
type Time time.Duration

func (t Time) String() string { return time.Duration(t).String() }

// SerialShard is the shard of events that must run alone: they may touch
// any state, and they barrier parallel execution within their timestamp.
const SerialShard uint32 = 0

type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among same-time events
	shard uint32 // SerialShard, or an actor shard from NewShard
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// shardGroup is the per-shard slice of a parallel segment: indices into
// the segment's event slice, in sequence order.
type shardGroup struct {
	shard uint32
	evs   []int32
}

// Simulator owns the virtual clock and the pending event set. The zero
// value is ready to use (sequentially; see SetWorkers).
type Simulator struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped atomic.Bool
	// Executed counts processed events, useful for run-away detection in
	// tests and experiment logs.
	Executed uint64

	// workers is the parallel worker count; <= 1 executes sequentially.
	workers   int
	nextShard uint32

	// inPar is true while a parallel segment's workers are running. It is
	// written only with no workers alive (happens-before via goroutine
	// start and WaitGroup.Wait), so worker reads are race-free.
	inPar bool
	// ops holds the deferred cross-shard effects of the segment currently
	// executing, one list per event (indexed like the segment slice).
	ops [][]func()
	// frames maps shard -> index of that shard's currently executing
	// event in the segment (-1 outside segments). Each entry is written
	// only by the worker owning the shard.
	frames []int32

	// tracer, when set, receives structured telemetry events via Trace.
	// traces stages parallel-phase emissions per event (indexed like the
	// segment slice) for flushing in sequence-ordered commit.
	tracer *telemetry.Tracer
	traces [][]telemetry.Event

	// parSegments/parEvents count segments and events that actually ran
	// on the worker pool — a scheduler-shape observable that depends on
	// the worker count (volatile telemetry, never fingerprinted).
	parSegments, parEvents uint64

	// Scratch buffers reused across batches to keep the hot loop
	// allocation-free.
	batch   []event
	groups  []shardGroup
	groupOf map[uint32]int32
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// SetTracer attaches a trace-event ring. Call before Run. Events
// emitted through Trace land in the ring in deterministic (time, seq)
// order regardless of worker count.
func (s *Simulator) SetTracer(t *telemetry.Tracer) { s.tracer = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (s *Simulator) Tracer() *telemetry.Tracer { return s.tracer }

// Trace records a telemetry trace event, stamping ev.Time from the
// virtual clock. From serial context the event goes straight to the
// ring; from parallel execution it is staged on the calling actor's
// event frame and flushed during the sequence-ordered commit, so ring
// contents are byte-identical for any worker count.
//
// Determinism rule: call Trace only while the actor's event function is
// on the stack — never from a deferred effect (an op committed after
// the segment, e.g. inside a Network send), where the sequential and
// parallel interleavings would differ. No-op when no tracer is set.
func (s *Simulator) Trace(shard uint32, ev telemetry.Event) {
	if s.tracer == nil {
		return
	}
	ev.Time = int64(s.now)
	if !s.inPar {
		s.tracer.Emit(ev)
		return
	}
	idx := int32(-1)
	if int(shard) < len(s.frames) {
		idx = s.frames[shard]
	}
	if idx < 0 {
		panic("sim: trace from parallel execution must come from the executing actor's shard")
	}
	s.traces[idx] = append(s.traces[idx], ev)
}

// SetTelemetry registers the simulator's own metrics. Executed and
// Pending are deterministic; the parallel scheduler shape (how many
// events actually ran inside parallel segments) depends on the worker
// count and is registered volatile.
func (s *Simulator) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("sim_events_executed", func() float64 { return float64(s.Executed) })
	reg.GaugeFunc("sim_events_pending", func() float64 { return float64(len(s.events)) })
	reg.VolatileGaugeFunc("sim_parallel_segments", func() float64 { return float64(s.parSegments) })
	reg.VolatileGaugeFunc("sim_parallel_events", func() float64 { return float64(s.parEvents) })
}

// SetWorkers sets the parallel worker count: 1 forces sequential
// execution, n > 1 runs same-timestamp sharded events on up to n
// goroutines, and n <= 0 resolves the default (the SCIONMPR_WORKERS
// environment variable if set, else GOMAXPROCS). Call it before Run; the
// produced event order and all observables are identical for every
// setting.
func (s *Simulator) SetWorkers(n int) {
	if n <= 0 {
		n = DefaultWorkers()
	}
	s.workers = n
}

// WorkerCount reports the effective worker count (1 = sequential).
func (s *Simulator) WorkerCount() int {
	if s.workers <= 1 {
		return 1
	}
	return s.workers
}

// DefaultWorkers resolves the default parallelism: the SCIONMPR_WORKERS
// environment variable when set to a positive integer, else GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv("SCIONMPR_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// NewShard allocates a fresh actor shard identifier. Shards are cheap
// integers; allocate one per independent actor (per AS) during setup,
// before the simulation runs. Not safe for concurrent use.
func (s *Simulator) NewShard() uint32 {
	s.nextShard++
	return s.nextShard
}

// Schedule queues fn to run after delay d. Negative delays run "now"
// (still in timestamp order with other now-events).
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	s.ScheduleShard(SerialShard, d, fn)
}

// ScheduleShard is Schedule for an event owned by the given actor shard.
func (s *Simulator) ScheduleShard(shard uint32, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.AtShard(shard, s.now+Time(d), fn)
}

// At queues fn at absolute virtual time t. Scheduling in the past is an
// error that would break causality; it panics to surface the bug.
func (s *Simulator) At(t Time, fn func()) { s.AtShard(SerialShard, t, fn) }

// AtShard is At for an event owned by the given actor shard. Within one
// shard, events retain FIFO order among equal timestamps; events of
// different shards at the same timestamp may execute in parallel.
func (s *Simulator) AtShard(shard uint32, t Time, fn func()) {
	if s.inPar {
		// Called from inside a parallel segment: defer the push so the
		// sequence number is assigned in deterministic commit order.
		s.deferOp(shard, func() { s.push(shard, t, fn) })
		return
	}
	s.push(shard, t, fn)
}

func (s *Simulator) push(shard uint32, t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, shard: shard, fn: fn})
}

// deferOp appends op to the effect list of the event currently executing
// on the caller's shard. It panics when the shard has no executing event
// in this segment — i.e. when code running as one actor tries to produce
// side effects attributed to another, which would be a nondeterministic
// cross-shard mutation.
func (s *Simulator) deferOp(shard uint32, op func()) {
	idx := int32(-1)
	if int(shard) < len(s.frames) {
		idx = s.frames[shard]
	}
	if idx < 0 {
		panic("sim: cross-shard side effect from parallel execution: " +
			"schedule and send only as the executing actor (shard-aware APIs), or from serial events")
	}
	s.ops[idx] = append(s.ops[idx], op)
}

// Every schedules fn at start and then every interval until the simulator
// stops or the end time passes (end <= 0 means no end). fn also receives
// the firing time.
func (s *Simulator) Every(start, interval time.Duration, end Time, fn func(Time)) {
	s.EveryShard(SerialShard, start, interval, end, fn)
}

// EveryShard is Every for a repeating event owned by an actor shard (the
// per-AS beaconing tick). The self-rescheduling honors the parallel
// effect-ordering contract automatically.
func (s *Simulator) EveryShard(shard uint32, start, interval time.Duration, end Time, fn func(Time)) {
	var tick func()
	tick = func() {
		if s.stopped.Load() || (end > 0 && s.now > end) {
			return
		}
		fn(s.now)
		// fn may have stopped the run mid-tick; without this re-check a
		// stopped simulator is left with one extra self-rescheduled
		// event pending.
		if s.stopped.Load() {
			return
		}
		next := s.now + Time(interval)
		if end > 0 && next > end {
			return
		}
		s.AtShard(shard, next, tick)
	}
	next := s.now + Time(start)
	if end > 0 && next > end {
		return
	}
	s.AtShard(shard, next, tick)
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (s *Simulator) Run() Time {
	if s.WorkerCount() > 1 {
		s.runBatches(Time(math.MaxInt64))
		return s.now
	}
	for len(s.events) > 0 && !s.stopped.Load() {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.Executed++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and then advances
// the clock to the deadline. Remaining events stay queued.
func (s *Simulator) RunUntil(deadline Time) Time {
	if s.WorkerCount() > 1 {
		s.runBatches(deadline)
	} else {
		for len(s.events) > 0 && !s.stopped.Load() {
			if s.events[0].at > deadline {
				break
			}
			e := heap.Pop(&s.events).(event)
			s.now = e.at
			s.Executed++
			e.fn()
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// runBatches drives the parallel execution loop: repeatedly extract all
// events sharing the earliest timestamp (<= deadline) and run them as a
// batch. Commits may schedule new events at the same timestamp (e.g.
// zero-latency links); the outer loop picks them up as a fresh batch,
// preserving global (time, seq) order because sequence numbers only grow.
func (s *Simulator) runBatches(deadline Time) {
	for len(s.events) > 0 && !s.stopped.Load() {
		t := s.events[0].at
		if t > deadline {
			return
		}
		s.now = t
		batch := s.batch[:0]
		for len(s.events) > 0 && s.events[0].at == t {
			batch = append(batch, heap.Pop(&s.events).(event))
		}
		s.runSegments(batch)
		clear(batch) // release fn references
		s.batch = batch[:0]
	}
}

// runSegments executes one same-timestamp batch: maximal runs of sharded
// events execute in parallel, serial events barrier between them. If the
// simulator is stopped partway (only a serial event or a committed
// effect can observe this deterministically), unexecuted events return
// to the heap, matching sequential Stop semantics at segment
// granularity.
func (s *Simulator) runSegments(batch []event) {
	i := 0
	for i < len(batch) {
		if s.stopped.Load() {
			for _, e := range batch[i:] {
				heap.Push(&s.events, e)
			}
			return
		}
		if batch[i].shard == SerialShard {
			s.Executed++
			batch[i].fn()
			i++
			continue
		}
		j := i + 1
		for j < len(batch) && batch[j].shard != SerialShard {
			j++
		}
		s.runParallel(batch[i:j])
		i = j
	}
}

// runParallel executes one segment of sharded events and commits their
// deferred effects in sequence order.
func (s *Simulator) runParallel(evs []event) {
	// Group events by shard, preserving sequence order within each group.
	if s.groupOf == nil {
		s.groupOf = map[uint32]int32{}
	}
	groups := s.groups[:0]
	for idx := range evs {
		sh := evs[idx].shard
		gi, ok := s.groupOf[sh]
		if !ok {
			gi = int32(len(groups))
			if cap(groups) > len(groups) {
				groups = groups[:len(groups)+1]
				groups[gi].shard = sh
				groups[gi].evs = groups[gi].evs[:0]
			} else {
				groups = append(groups, shardGroup{shard: sh})
			}
			s.groupOf[sh] = gi
		}
		groups[gi].evs = append(groups[gi].evs, int32(idx))
	}
	s.groups = groups

	workers := s.WorkerCount()
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		// One partition (or sequential): direct execution in seq order is
		// equivalent — effects apply inline in exactly the same order.
		for gi := range groups {
			delete(s.groupOf, groups[gi].shard)
		}
		for k := range evs {
			s.Executed++
			evs[k].fn()
		}
		return
	}

	// Per-event effect and staged-trace lists, and shard execution frames.
	if cap(s.ops) < len(evs) {
		s.ops = make([][]func(), len(evs))
	}
	s.ops = s.ops[:len(evs)]
	if cap(s.traces) < len(evs) {
		s.traces = make([][]telemetry.Event, len(evs))
	}
	s.traces = s.traces[:len(evs)]
	s.parSegments++
	s.parEvents += uint64(len(evs))
	if len(s.frames) < int(s.nextShard)+1 {
		old := s.frames
		s.frames = make([]int32, s.nextShard+1)
		for k := range s.frames {
			s.frames[k] = -1
		}
		copy(s.frames, old)
	}

	s.inPar = true
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal interface{}
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = fmt.Sprintf("sim: worker panic: %v\n%s", r, debug.Stack())
					}
					panicMu.Unlock()
				}
			}()
			for {
				gi := next.Add(1)
				if gi >= int64(len(groups)) {
					return
				}
				g := &groups[gi]
				for _, idx := range g.evs {
					s.frames[g.shard] = idx
					evs[idx].fn()
				}
			}
		}()
	}
	wg.Wait()
	s.inPar = false
	if panicVal != nil {
		panic(panicVal)
	}

	// Commit deferred effects in sequence order: this replays schedules
	// (assigning sequence numbers), traffic accounting, and RNG draws in
	// exactly the order a sequential run would have produced. Staged
	// traces flush first — sequentially they were emitted while the event
	// function ran, i.e. before any of its deferred effects applied.
	for idx := range evs {
		s.Executed++
		for _, ev := range s.traces[idx] {
			s.tracer.Emit(ev)
		}
		clear(s.traces[idx])
		s.traces[idx] = s.traces[idx][:0]
		for _, op := range s.ops[idx] {
			op()
		}
		clear(s.ops[idx])
		s.ops[idx] = s.ops[idx][:0]
	}

	// Reset shard frames and group scratch for the next segment.
	for gi := range groups {
		s.frames[groups[gi].shard] = -1
		delete(s.groupOf, groups[gi].shard)
	}
}

// Stop halts Run/RunUntil after the current event (sequential mode) or
// the current segment (parallel mode). Safe to call from sharded events.
func (s *Simulator) Stop() { s.stopped.Store(true) }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
