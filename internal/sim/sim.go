// Package sim is a deterministic discrete-event simulator, the stand-in
// for the paper's ns-3-based beaconing simulator. It provides a virtual
// clock with an event heap, message delivery across topology links with
// configurable latency, and per-interface byte and message counters — the
// exact observables the paper's overhead evaluation needs (§5.1, §5.2:
// "we observe the amount of PCB traffic sent on each inter-domain
// interface").
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual simulation time measured as a duration since simulation
// start.
type Time time.Duration

func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulator owns the virtual clock and the pending event set. The zero
// value is ready to use.
type Simulator struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Executed counts processed events, useful for run-away detection in
	// tests and experiment logs.
	Executed uint64
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Schedule queues fn to run after delay d. Negative delays run "now"
// (still in timestamp order with other now-events).
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+Time(d), fn)
}

// At queues fn at absolute virtual time t. Scheduling in the past is an
// error that would break causality; it panics to surface the bug.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// Every schedules fn at start and then every interval until the simulator
// stops or the end time passes (end <= 0 means no end). fn also receives
// the firing time.
func (s *Simulator) Every(start, interval time.Duration, end Time, fn func(Time)) {
	var tick func()
	next := s.now + Time(start)
	tick = func() {
		if s.stopped || (end > 0 && s.now > end) {
			return
		}
		fn(s.now)
		next = s.now + Time(interval)
		if end > 0 && next > end {
			return
		}
		s.At(next, tick)
	}
	if end > 0 && next > end {
		return
	}
	s.At(next, tick)
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (s *Simulator) Run() Time {
	for len(s.events) > 0 && !s.stopped {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.Executed++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and then advances
// the clock to the deadline. Remaining events stay queued.
func (s *Simulator) RunUntil(deadline Time) Time {
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > deadline {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.Executed++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Stop halts Run/RunUntil after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
