// The wire-format forwarding engine: the same border-router semantics
// as the in-memory Fabric, but operating on real packet bytes in the
// internal/slayers encoding, with pooled buffers, per-AS ingress rings
// drained in fixed-size batches, batched hop-field MAC verification,
// and lock-free egress hand-off between router workers. The Fabric
// stays as the semantic reference; the differential harness in
// diff_test.go replays identical traffic through both and asserts
// byte-identical run fingerprints.
package dataplane

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/combinator"
	"scionmpr/internal/seg"
	"scionmpr/internal/slayers"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// WireDeliverFunc receives packets arriving at their destination AS.
// The header and payload alias an engine-owned buffer that is recycled
// when the handler returns: copy anything retained.
type WireDeliverFunc func(s *slayers.SCION)

// WireSCMPMsg is a decoded SCMP message handed to the original
// sender's AS.
type WireSCMPMsg struct {
	Type     SCMPType
	Link     seg.LinkKey // revoked link for SCMPRevokedLink
	Offender addr.IA
	// FlowID, SrcIA, DstIA identify the offending packet (parsed from
	// the quoted original header).
	FlowID       uint32
	SrcIA, DstIA addr.IA
}

// WireSCMPFunc receives SCMP messages arriving back at the sender AS.
type WireSCMPFunc func(m *WireSCMPMsg)

// wireSCMPType maps the dataplane SCMP enum onto the wire code.
func wireSCMPType(t SCMPType) uint8 { return uint8(t) + 1 }

// scmpTypeFromWire is the inverse of wireSCMPType.
func scmpTypeFromWire(b uint8) SCMPType { return SCMPType(int(b) - 1) }

// ifEntry is one egress-table slot: the attached link and the dense
// index of the AS on the other side.
type ifEntry struct {
	link *topology.Link
	dst  int32
}

// EngineStats is a snapshot of the engine's forwarding counters. The
// first seven mirror the Fabric's counters one for one (the
// differential harness compares them); DroppedMalformed counts frames
// the byte decoder rejected (impossible for self-generated traffic,
// checked to be zero by the harness); Batches/BatchPackets expose
// batching efficiency.
type EngineStats struct {
	Forwarded, Delivered, DroppedBadMAC, DroppedNoRoute, DroppedTooBig uint64
	Revocations, DroppedGray                                           uint64
	DroppedMalformed                                                   uint64
	Batches, BatchPackets                                              uint64
}

// Engine is the batched wire-format forwarding plane. One logical
// border router per AS, each with a lock-free multi-producer ingress
// ring; workers own disjoint AS subsets and drain their rings in
// batches, so a frame's whole lifetime — decode, MAC check, egress
// lookup, hand-off to the next ring — happens on packet bytes without
// allocating. Configure the exported knobs before the first Inject.
type Engine struct {
	Topo *topology.Graph
	Keys KeyFunc

	// Workers is the number of router goroutines a Flush runs (default
	// 1; single-worker flushes run inline on the caller's goroutine so
	// benchmarks measure per-core throughput cleanly).
	Workers int
	// BatchSize is how many frames a worker drains from one ring per
	// batch (default 32). BatchSize <= 1 selects per-packet mode: each
	// MAC is verified with a fresh HMAC key schedule and no shared
	// state — the naive baseline batch mode is measured against.
	BatchSize int
	// DisableMAC skips hop-field verification (for measuring the MAC
	// share of forwarding cost; never set in differential runs).
	DisableMAC bool
	// Seed keys the default hash-based gray-loss decision (see
	// HashLoss). Ignored when LossFunc is set.
	Seed uint64
	// LossFunc decides gray-failure drops. The engine is concurrent, so
	// only pure per-packet decisions are meaningful; nil defaults to
	// HashLoss(Seed).
	LossFunc func(flow uint32, link topology.LinkID, rate float64) bool

	ias []addr.IA
	idx map[addr.IA]int32
	// ifTable[a][ifID] is AS a's interface table (egress lookup and
	// SCMP walk-back), dense per AS.
	ifTable [][]ifEntry
	keys    [][]byte
	rings   []*ring
	deliver []WireDeliverFunc
	scmp    []WireSCMPFunc
	// verifiers[a] is owned by whichever worker owns AS a for the
	// duration of a Flush (ownership is a pure function of the AS index
	// and the worker count, so it never migrates mid-flush).
	verifiers []macVerifier

	// Fault state, indexed by LinkID (dense: IDs are sequential from 1).
	failed  []atomic.Bool
	loss    []atomic.Uint64 // math.Float64bits of the drop rate
	delayNs []atomic.Int64  // recorded only: the engine models throughput, not latency

	pool     *framePool
	inflight atomic.Int64

	forwarded, delivered, droppedBadMAC, droppedNoRoute, droppedTooBig atomic.Uint64
	revocations, droppedGray, droppedMalformed                         atomic.Uint64
	batches, batchPackets                                              atomic.Uint64
}

const (
	defaultBatchSize = 32
	defaultRingCap   = 1024
)

// NewEngine builds an engine over the topology. Keys resolves each
// AS's forwarding key once up front; ASes with no key fail every MAC
// check (as in the Fabric).
func NewEngine(topo *topology.Graph, keys KeyFunc) *Engine {
	ias := topo.IAs()
	e := &Engine{
		Topo:      topo,
		Keys:      keys,
		ias:       ias,
		idx:       make(map[addr.IA]int32, len(ias)),
		ifTable:   make([][]ifEntry, len(ias)),
		keys:      make([][]byte, len(ias)),
		rings:     make([]*ring, len(ias)),
		deliver:   make([]WireDeliverFunc, len(ias)),
		scmp:      make([]WireSCMPFunc, len(ias)),
		verifiers: make([]macVerifier, len(ias)),
		pool:      newFramePool(),
	}
	for i, ia := range ias {
		e.idx[ia] = int32(i)
		e.keys[i] = keys(ia)
		e.rings[i] = newRing(defaultRingCap)
	}
	maxID := topology.LinkID(0)
	for _, l := range topo.Links {
		if l.ID > maxID {
			maxID = l.ID
		}
	}
	e.failed = make([]atomic.Bool, int(maxID)+1)
	e.loss = make([]atomic.Uint64, int(maxID)+1)
	e.delayNs = make([]atomic.Int64, int(maxID)+1)
	for _, l := range topo.Links {
		a, b := e.idx[l.A], e.idx[l.B]
		e.setIf(a, l.AIf, ifEntry{link: l, dst: b})
		e.setIf(b, l.BIf, ifEntry{link: l, dst: a})
	}
	return e
}

func (e *Engine) setIf(a int32, ifID addr.IfID, ent ifEntry) {
	t := e.ifTable[a]
	for int(ifID) >= len(t) {
		t = append(t, ifEntry{})
	}
	t[ifID] = ent
	e.ifTable[a] = t
}

// lookupIf returns AS a's interface entry for ifID (zero entry if the
// interface does not exist).
func (e *Engine) lookupIf(a int32, ifID addr.IfID) ifEntry {
	if t := e.ifTable[a]; int(ifID) < len(t) {
		return t[ifID]
	}
	return ifEntry{}
}

// OnDeliver installs the destination handler of an AS.
func (e *Engine) OnDeliver(ia addr.IA, fn WireDeliverFunc) {
	if i, ok := e.idx[ia]; ok {
		e.deliver[i] = fn
	}
}

// OnSCMP installs the SCMP handler of an AS.
func (e *Engine) OnSCMP(ia addr.IA, fn WireSCMPFunc) {
	if i, ok := e.idx[ia]; ok {
		e.scmp[i] = fn
	}
}

// FailLink marks a link as failed (chaos.FaultTarget).
func (e *Engine) FailLink(id topology.LinkID) {
	if int(id) < len(e.failed) {
		e.failed[id].Store(true)
	}
}

// RestoreLink clears a failure (chaos.FaultTarget).
func (e *Engine) RestoreLink(id topology.LinkID) {
	if int(id) < len(e.failed) {
		e.failed[id].Store(false)
	}
}

// Failed reports whether a link is failed.
func (e *Engine) Failed(id topology.LinkID) bool {
	return int(id) < len(e.failed) && e.failed[id].Load()
}

// SetLinkLoss sets the gray-failure drop probability of a link
// (chaos.FaultTarget).
func (e *Engine) SetLinkLoss(id topology.LinkID, rate float64) {
	if int(id) >= len(e.loss) {
		return
	}
	if rate <= 0 {
		e.loss[id].Store(0)
		return
	}
	if rate > 1 {
		rate = 1
	}
	e.loss[id].Store(math.Float64bits(rate))
}

// LinkLoss returns the gray-failure drop probability of a link.
func (e *Engine) LinkLoss(id topology.LinkID) float64 {
	if int(id) >= len(e.loss) {
		return 0
	}
	return math.Float64frombits(e.loss[id].Load())
}

// SetLinkDelay records a latency override (chaos.FaultTarget). The
// engine models forwarding throughput, not propagation latency, so the
// value is observable via LinkDelay but has no behavioral effect.
func (e *Engine) SetLinkDelay(id topology.LinkID, d time.Duration) {
	if int(id) < len(e.delayNs) {
		e.delayNs[id].Store(int64(d))
	}
}

// LinkDelay returns the recorded latency override of a link.
func (e *Engine) LinkDelay(id topology.LinkID) time.Duration {
	if int(id) >= len(e.delayNs) {
		return 0
	}
	return time.Duration(e.delayNs[id].Load())
}

// Stats snapshots the forwarding counters. Call between flushes for
// exact values (workers update them with atomics during a Flush).
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Forwarded:        e.forwarded.Load(),
		Delivered:        e.delivered.Load(),
		DroppedBadMAC:    e.droppedBadMAC.Load(),
		DroppedNoRoute:   e.droppedNoRoute.Load(),
		DroppedTooBig:    e.droppedTooBig.Load(),
		Revocations:      e.revocations.Load(),
		DroppedGray:      e.droppedGray.Load(),
		DroppedMalformed: e.droppedMalformed.Load(),
		Batches:          e.batches.Load(),
		BatchPackets:     e.batchPackets.Load(),
	}
}

// ResetCounters zeroes all forwarding statistics.
func (e *Engine) ResetCounters() {
	for _, c := range []*atomic.Uint64{
		&e.forwarded, &e.delivered, &e.droppedBadMAC, &e.droppedNoRoute,
		&e.droppedTooBig, &e.revocations, &e.droppedGray,
		&e.droppedMalformed, &e.batches, &e.batchPackets,
	} {
		c.Store(0)
	}
}

// SetTelemetry registers the engine's counters as gauge funcs, under
// engine_-prefixed names so a fabric and an engine can share one
// registry in differential runs.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	u := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	reg.GaugeFunc("engine_forwarded_total", u(&e.forwarded))
	reg.GaugeFunc("engine_delivered_total", u(&e.delivered))
	reg.GaugeFunc("engine_revocations_total", u(&e.revocations))
	reg.GaugeFunc(`engine_dropped_total{cause="bad_mac"}`, u(&e.droppedBadMAC))
	reg.GaugeFunc(`engine_dropped_total{cause="no_route"}`, u(&e.droppedNoRoute))
	reg.GaugeFunc(`engine_dropped_total{cause="too_big"}`, u(&e.droppedTooBig))
	reg.GaugeFunc(`engine_dropped_total{cause="gray"}`, u(&e.droppedGray))
	reg.GaugeFunc(`engine_dropped_total{cause="malformed"}`, u(&e.droppedMalformed))
	reg.GaugeFunc("engine_batches_total", u(&e.batches))
	reg.GaugeFunc("engine_batch_packets_total", u(&e.batchPackets))
}

// Inject encodes a packet into wire format and enqueues it at its
// source AS, mirroring Fabric.Inject: the source border router will
// perform hop-0 verification and the first egress lookup when the
// frame is drained. The same MTU and source checks apply.
func (e *Engine) Inject(pkt *Packet) error {
	if pkt.Path == nil || len(pkt.Path.Hops) == 0 {
		return fmt.Errorf("dataplane: packet without path")
	}
	src := pkt.Path.Hops[0].Hop.IA
	if pkt.Src.IA != src {
		return fmt.Errorf("dataplane: source %s does not match path head %s", pkt.Src.IA, src)
	}
	a, ok := e.idx[src]
	if !ok {
		return fmt.Errorf("dataplane: source AS %s not in topology", src)
	}
	n := pkt.WireLen()
	if pkt.Path.MTU > 0 && n > int(pkt.Path.MTU) {
		e.droppedTooBig.Add(1)
		return fmt.Errorf("dataplane: packet of %d bytes exceeds path MTU %d", n, pkt.Path.MTU)
	}
	f := e.pool.get(n)
	var s slayers.SCION
	pkt.HopIdx = 0
	if _, err := EncodePacket(&s, pkt, f.b); err != nil {
		e.pool.put(f)
		return err
	}
	e.enqueue(a, f)
	return nil
}

// InjectBytes enqueues one raw wire-format packet at its source AS
// (parsed from the header). The bytes are copied into a pooled frame;
// the caller keeps ownership of data. mtu > 0 enforces a path MTU the
// way Fabric.Inject does.
func (e *Engine) InjectBytes(data []byte, mtu uint16) error {
	var s slayers.SCION
	if err := s.DecodeFromBytes(data); err != nil {
		return err
	}
	a, ok := e.idx[s.SrcIA]
	if !ok {
		return fmt.Errorf("dataplane: source AS %s not in topology", s.SrcIA)
	}
	if mtu > 0 && len(data) > int(mtu) {
		e.droppedTooBig.Add(1)
		return fmt.Errorf("dataplane: packet of %d bytes exceeds path MTU %d", len(data), mtu)
	}
	f := e.pool.get(len(data))
	copy(f.b, data)
	e.enqueue(a, f)
	return nil
}

func (e *Engine) enqueue(a int32, f *frame) {
	e.inflight.Add(1)
	e.rings[a].push(f)
}

// Flush drains the network: workers forward until no frame is in
// flight, then return. Deliver/SCMP handlers run on worker goroutines
// and may Inject follow-up packets (they extend the same flush).
func (e *Engine) Flush() {
	if e.LossFunc == nil {
		e.LossFunc = HashLoss(e.Seed)
	}
	w := e.Workers
	if w < 1 {
		w = 1
	}
	if w > len(e.ias) {
		w = len(e.ias)
	}
	if w == 1 {
		e.runWorker(0, 1)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.runWorker(i, w)
		}(i)
	}
	wg.Wait()
}

// workerCtx holds one worker's scratch so the steady state allocates
// nothing per packet.
type workerCtx struct {
	batch []*frame
	ss    []slayers.SCION // decode scratch, one per batch slot
	hfs   []slayers.HopField
	jobs  []macJob
	jmap  []int // batch slot of each job
	ok    []bool
	live  []bool        // slot still in play after verification
	quote slayers.SCION // SCMP quote decode scratch
}

func (e *Engine) runWorker(w, nw int) {
	bs := e.BatchSize
	if bs < 1 {
		bs = 1
	}
	if e.BatchSize == 0 {
		bs = defaultBatchSize
	}
	ctx := &workerCtx{
		batch: make([]*frame, 0, bs),
		ss:    make([]slayers.SCION, bs),
		hfs:   make([]slayers.HopField, bs),
		jobs:  make([]macJob, 0, bs),
		jmap:  make([]int, 0, bs),
		ok:    make([]bool, bs),
		live:  make([]bool, bs),
	}
	for {
		progress := false
		for a := w; a < len(e.rings); a += nw {
			r := e.rings[a]
			for {
				ctx.batch = ctx.batch[:0]
				for len(ctx.batch) < bs {
					f := r.pop()
					if f == nil {
						break
					}
					ctx.batch = append(ctx.batch, f)
				}
				if len(ctx.batch) == 0 {
					break
				}
				progress = true
				e.processBatch(int32(a), ctx)
			}
		}
		if e.inflight.Load() == 0 {
			return
		}
		if !progress {
			runtime.Gosched()
		}
	}
}

// terminal retires a frame: its journey ended (delivered, dropped, or
// handed to a local handler).
func (e *Engine) terminal(f *frame) {
	e.pool.put(f)
	e.inflight.Add(-1)
}

// processBatch runs the border-router pipeline of AS a over one batch:
// decode all frames, collect their hop-field MAC checks, verify them
// in one pass against the router's key, then act on each verdict.
func (e *Engine) processBatch(a int32, ctx *workerCtx) {
	local := e.ias[a]
	e.batches.Add(1)
	e.batchPackets.Add(uint64(len(ctx.batch)))
	ctx.jobs = ctx.jobs[:0]
	ctx.jmap = ctx.jmap[:0]

	for i, f := range ctx.batch {
		ctx.live[i] = false
		s := &ctx.ss[i]
		if err := s.DecodeFromBytes(f.b); err != nil {
			e.droppedMalformed.Add(1)
			e.terminal(f)
			continue
		}
		if s.NextHdr == slayers.NextHdrSCMP {
			e.scmpWalkStep(a, f, s, &ctx.quote)
			continue
		}
		if s.PathType != slayers.PathTypeSCION {
			e.droppedMalformed.Add(1)
			e.terminal(f)
			continue
		}
		if f.arrived {
			// Ingress border router: advance to the local hop field.
			if err := s.IncPath(); err != nil {
				e.droppedMalformed.Add(1)
				e.terminal(f)
				continue
			}
		}
		hf, err := s.HopField(int(s.CurrHF))
		if err != nil {
			e.droppedMalformed.Add(1)
			e.terminal(f)
			continue
		}
		ctx.hfs[i] = hf
		ctx.live[i] = true
		if !e.DisableMAC {
			ctx.jobs = append(ctx.jobs, macJob{in: hf.ConsIngress, out: hf.ConsEgress, mac: hf.MAC})
			ctx.jmap = append(ctx.jmap, i)
		} else {
			ctx.ok[i] = true
		}
	}

	if len(ctx.jobs) > 0 {
		key := e.keys[a]
		if e.BatchSize <= 1 {
			// Per-packet mode: the naive baseline — fresh key schedule
			// per MAC, no shared state, no verdict cache.
			for j, job := range ctx.jobs {
				want := hopMACUncached(key, combinatorHop(local, job.in, job.out))
				ctx.ok[ctx.jmap[j]] = want == job.mac
			}
		} else {
			okScratch := ctx.ok[:len(ctx.jobs)]
			e.verifiers[a].verifyBatch(key, local, ctx.jobs, okScratch)
			// Scatter job verdicts back to batch slots (in place is safe:
			// job j's slot index jmap[j] >= j).
			for j := len(ctx.jobs) - 1; j >= 0; j-- {
				ctx.ok[ctx.jmap[j]] = okScratch[j]
			}
		}
	}

	for i, f := range ctx.batch {
		if !ctx.live[i] {
			continue
		}
		s := &ctx.ss[i]
		if !ctx.ok[i] {
			e.droppedBadMAC.Add(1)
			if f.arrived {
				e.emitSCMP(a, s, SCMPBadMAC, seg.LinkKey{})
			}
			// At the source AS the drop is silent, as in the Fabric.
			e.terminal(f)
			continue
		}
		if f.arrived && s.AtDestination() {
			e.delivered.Add(1)
			if fn := e.deliver[a]; fn != nil {
				fn(s)
			}
			e.terminal(f)
			continue
		}
		e.egressStep(a, f, s, ctx.hfs[i])
	}
}

// combinatorHop adapts a wire hop field to the MAC input tuple.
func combinatorHop(ia addr.IA, in, out addr.IfID) combinator.Hop {
	return combinator.Hop{IA: ia, In: in, Out: out}
}

// egressStep forwards a verified frame out of AS a's egress interface,
// mirroring Fabric.forwardFrom: unknown interface drops with a
// destination-unreachable SCMP, a failed link revokes, gray loss sheds
// silently, otherwise the frame moves to the neighbor's ingress ring.
func (e *Engine) egressStep(a int32, f *frame, s *slayers.SCION, hf slayers.HopField) {
	ent := e.lookupIf(a, hf.ConsEgress)
	if ent.link == nil {
		e.droppedNoRoute.Add(1)
		e.emitSCMP(a, s, SCMPDestUnreachable, seg.LinkKey{})
		e.terminal(f)
		return
	}
	local := e.ias[a]
	if e.failed[ent.link.ID].Load() {
		e.revocations.Add(1)
		e.emitSCMP(a, s, SCMPRevokedLink, seg.LinkKey{IA: local, If: hf.ConsEgress})
		e.terminal(f)
		return
	}
	if bits := e.loss[ent.link.ID].Load(); bits != 0 {
		rate := math.Float64frombits(bits)
		if e.LossFunc(s.FlowID, ent.link.ID, rate) {
			e.droppedGray.Add(1)
			e.terminal(f)
			return
		}
	}
	e.forwarded.Add(1)
	f.arrived = true
	e.rings[ent.dst].push(f)
}

// emitSCMP generates a control message at AS a about the packet s and
// starts it on the walk back toward the original sender. A failure at
// the source AS (CurrHF 0) delivers locally without building a frame,
// as in Fabric.emitSCMP.
func (e *Engine) emitSCMP(a int32, orig *slayers.SCION, typ SCMPType, link seg.LinkKey) {
	local := e.ias[a]
	if orig.CurrHF == 0 {
		if fn := e.scmp[a]; fn != nil {
			fn(&WireSCMPMsg{
				Type: typ, Link: link, Offender: local,
				FlowID: orig.FlowID, SrcIA: orig.SrcIA, DstIA: orig.DstIA,
			})
		}
		return
	}
	quote := orig.HeaderBytes()
	hdr := slayers.SCION{
		FlowID:     orig.FlowID,
		NextHdr:    slayers.NextHdrSCMP,
		PayloadLen: uint16(slayers.SCMPHdrLen + len(quote)),
		PathType:   slayers.PathTypeEmpty,
		DstIA:      orig.SrcIA,
		SrcIA:      local,
		DstHost:    orig.SrcHost,
		SrcHost:    addr.HostSvc(local, addr.SvcBR),
	}
	hdrLen, err := hdr.HdrLen()
	if err != nil {
		return
	}
	f := e.pool.get(hdrLen + slayers.SCMPHdrLen + len(quote))
	if _, err := hdr.SerializeTo(f.b); err != nil {
		e.pool.put(f)
		return
	}
	msg := slayers.SCMP{
		Type:     wireSCMPType(typ),
		Offender: local,
		LinkIA:   link.IA,
		LinkIf:   link.If,
		WalkIdx:  orig.CurrHF,
		Quote:    quote,
	}
	if _, err := msg.SerializeTo(f.b[hdrLen:]); err != nil {
		e.pool.put(f)
		return
	}
	// The walk starts at the offender itself: the first drained step
	// moves the message over the arrival link.
	e.enqueue(a, f)
}

// scmpWalkStep relays an SCMP frame one hop closer to the original
// sender (the mirror image of data-plane forwarding): WalkIdx is the
// current AS's index on the quoted path; at zero the message arrived
// home and is delivered, otherwise it leaves over the link attached to
// the quoted hop's ingress interface with WalkIdx decremented in
// place. SCMP messages are never subject to MAC checks, failures, or
// loss, matching the Fabric.
func (e *Engine) scmpWalkStep(a int32, f *frame, s *slayers.SCION, quote *slayers.SCION) {
	var m slayers.SCMP
	if err := m.DecodeFromBytes(s.Payload()); err != nil {
		e.droppedMalformed.Add(1)
		e.terminal(f)
		return
	}
	if err := quote.DecodeHeader(m.Quote); err != nil {
		e.droppedMalformed.Add(1)
		e.terminal(f)
		return
	}
	if m.WalkIdx == 0 {
		if fn := e.scmp[a]; fn != nil {
			fn(&WireSCMPMsg{
				Type:     scmpTypeFromWire(m.Type),
				Link:     seg.LinkKey{IA: m.LinkIA, If: m.LinkIf},
				Offender: m.Offender,
				FlowID:   quote.FlowID,
				SrcIA:    quote.SrcIA,
				DstIA:    quote.DstIA,
			})
		}
		e.terminal(f)
		return
	}
	hf, err := quote.HopField(int(m.WalkIdx))
	if err != nil {
		e.droppedMalformed.Add(1)
		e.terminal(f)
		return
	}
	ent := e.lookupIf(a, hf.ConsIngress)
	if ent.link == nil {
		// No arrival link — the quoted path does not match the
		// topology. Vanish silently, as in the Fabric.
		e.terminal(f)
		return
	}
	_ = m.SetWalkIdx(m.WalkIdx - 1) // rewrites the frame bytes in place
	e.rings[ent.dst].push(f)
}
