package dataplane

import (
	"fmt"

	"scionmpr/internal/slayers"
	"scionmpr/internal/topology"
)

// WireInfo is the info field stamped on every serialized path. The
// segment timestamp is a fixed epoch so encodings are deterministic;
// hop field MACs do not cover it (see the slayers package comment).
var WireInfo = slayers.InfoField{ConsDir: true, SegID: 0, Timestamp: 0x5c10_0000}

// wireExpTime is the relative hop-field expiry stamped on serialized
// paths; the simulated engine does not age hop fields.
const wireExpTime = 63

// EncodePacket serializes a data-plane packet into the slayers wire
// format using the caller's scratch header (reused across calls for
// allocation-free encoding) and buffer. It returns the total packet
// length (header + payload). The buffer must hold Packet.WireLen()
// bytes — the encoding matches WireLen exactly.
func EncodePacket(s *slayers.SCION, pkt *Packet, buf []byte) (int, error) {
	if pkt.Path == nil || len(pkt.Path.Hops) == 0 {
		return 0, fmt.Errorf("dataplane: encoding packet without path")
	}
	if len(pkt.Path.Hops) > slayers.MaxHops {
		return 0, fmt.Errorf("dataplane: path of %d hops exceeds wire limit %d", len(pkt.Path.Hops), slayers.MaxHops)
	}
	if len(pkt.Payload) > slayers.MaxPayloadLen {
		return 0, fmt.Errorf("dataplane: payload of %d bytes exceeds wire limit", len(pkt.Payload))
	}
	s.TrafficClass = 0
	s.FlowID = pkt.FlowID & 0xfffff
	s.NextHdr = slayers.NextHdrUDP
	s.PayloadLen = uint16(len(pkt.Payload))
	s.PathType = slayers.PathTypeSCION
	s.DstIA, s.SrcIA = pkt.Dst.IA, pkt.Src.IA
	s.DstHost, s.SrcHost = pkt.Dst, pkt.Src
	if pkt.HopIdx < 0 || pkt.HopIdx >= len(pkt.Path.Hops) {
		return 0, fmt.Errorf("dataplane: hop index %d unencodable", pkt.HopIdx)
	}
	s.CurrHF = uint8(pkt.HopIdx)
	s.NumHops = uint8(len(pkt.Path.Hops))
	s.Info = WireInfo
	s.Hops = s.Hops[:0]
	for _, h := range pkt.Path.Hops {
		s.Hops = append(s.Hops, slayers.HopField{
			ExpTime:     wireExpTime,
			ConsIngress: h.Hop.In,
			ConsEgress:  h.Hop.Out,
			MAC:         h.MAC,
		})
	}
	hdr, err := s.SerializeTo(buf)
	if err != nil {
		return 0, err
	}
	n := hdr + len(pkt.Payload)
	if n > len(buf) {
		return 0, fmt.Errorf("dataplane: buffer of %d bytes, packet needs %d", len(buf), n)
	}
	copy(buf[hdr:n], pkt.Payload)
	return n, nil
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashLoss returns a pure per-packet gray-failure decision: drop iff a
// seeded hash of (flow, link) falls below the link's drop rate. Unlike
// the sequence-dependent RNG coin, the decision depends only on the
// packet and the link, so the in-memory fabric and the wire-format
// engine — which interleave packets differently — shed exactly the
// same packets. Each (flow, link) pair is drawn at most once per path
// traversal (paths are loop-free), preserving the drop rate.
func HashLoss(seed uint64) func(flow uint32, link topology.LinkID, rate float64) bool {
	return func(flow uint32, link topology.LinkID, rate float64) bool {
		h := splitmix64(seed ^ uint64(flow)<<32 ^ uint64(link))
		return float64(h>>11)/(1<<53) < rate
	}
}
