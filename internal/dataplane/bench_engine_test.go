package dataplane

import (
	"testing"

	"scionmpr/internal/slayers"
)

// benchForward measures single-core forwarding throughput of the wire
// engine: one pre-encoded packet is injected repeatedly as raw bytes
// and driven end to end (decode, MAC verify, per-hop forwarding,
// delivery). Workers is pinned to 1 so pkts/s is per core; the batch
// variants differ only in BatchSize, which controls whether the MAC
// path amortizes key schedules and verdicts across a batch.
func benchForward(b *testing.B, batchSize int, disableMAC bool) {
	e := newEnv(b)
	eng := NewEngine(e.topo, e.infra.ForwardingKey)
	eng.Workers = 1
	eng.BatchSize = batchSize
	eng.DisableMAC = disableMAC

	var delivered int
	eng.OnDeliver(a4, func(s *slayers.SCION) { delivered++ })

	pkt := testPacket(e, 0, make([]byte, 128), 1)
	buf := make([]byte, pkt.WireLen())
	var s slayers.SCION
	if _, err := EncodePacket(&s, pkt, buf); err != nil {
		b.Fatal(err)
	}
	mtu := e.paths[0].MTU

	// Warm pools and caches outside the timed region.
	if err := eng.InjectBytes(buf, mtu); err != nil {
		b.Fatal(err)
	}
	eng.Flush()
	delivered = 0

	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 256
	for n := 0; n < b.N; {
		m := chunk
		if b.N-n < m {
			m = b.N - n
		}
		for i := 0; i < m; i++ {
			if err := eng.InjectBytes(buf, mtu); err != nil {
				b.Fatal(err)
			}
		}
		eng.Flush()
		n += m
	}
	b.StopTimer()

	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
	pps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "pkts/s")
	b.ReportMetric(pps*float64(len(e.paths[0].Hops)), "hops/s")
}

func BenchmarkForward(b *testing.B) {
	b.Run("single_mac", func(b *testing.B) { benchForward(b, 1, false) })
	b.Run("single_nomac", func(b *testing.B) { benchForward(b, 1, true) })
	b.Run("batch_mac", func(b *testing.B) { benchForward(b, defaultBatchSize, false) })
	b.Run("batch_nomac", func(b *testing.B) { benchForward(b, defaultBatchSize, true) })
}
