package dataplane

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/chaos"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/slayers"
	"scionmpr/internal/topology"
)

// The differential harness replays one seeded traffic trace through
// the in-memory Fabric and through the wire-format Engine and demands
// byte-identical run fingerprints: per-packet outcomes (delivered /
// silently dropped / which SCMP came back) plus the full counter set.
// Both planes share a pure per-packet loss function (HashLoss), and
// faults fire only at quiescent group boundaries, so the fingerprint
// is independent of packet interleaving — which is exactly what lets
// the concurrent engine (workers 1 and 4) be compared bit-for-bit
// against the serial fabric.

// diffOutcome is the observable fate of one injected packet.
type diffOutcome struct {
	delivered bool
	scmp      int8 // -1 = none
	link      seg.LinkKey
}

// diffCounters is the plane-independent counter vector.
type diffCounters struct {
	Forwarded, Delivered, DroppedBadMAC, DroppedNoRoute uint64
	DroppedTooBig, Revocations, DroppedGray             uint64
}

// diffPacket is one packet of the precomputed trace.
type diffPacket struct {
	flow    uint32
	path    *FwdPath
	src     addr.IA
	payload int
}

// diffTrace is a deterministic function of the seed: groups of packets
// spread over all pair paths, a few with tampered hop-field MACs, and
// per-group fault actions quantized from a chaos schedule.
type diffTrace struct {
	groups  [][]diffPacket
	actions [][]func(chaos.FaultTarget)
}

const (
	diffGroups        = 12
	diffFlowsPerGroup = 24
)

// buildDiffTrace assembles the trace over every beaconing-derived path
// between the leaf ASes, with a chaos schedule (flap + gray windows on
// path links) quantized to group boundaries.
func buildDiffTrace(t testing.TB, e *env, seed int64) *diffTrace {
	t.Helper()
	var paths []*FwdPath
	leaves := []addr.IA{a4, a5, a6}
	for _, src := range leaves {
		for _, dst := range leaves {
			if src == dst {
				continue
			}
			paths = append(paths, e.pathsBetween(t, src, dst)...)
		}
	}
	if len(paths) < 4 {
		t.Fatalf("only %d pair paths", len(paths))
	}

	rng := rand.New(rand.NewSource(seed))

	// Tampered variants: break the MAC of the last hop so the drop
	// happens at a transit or destination router (never silently at the
	// source), exercising the SCMP walk-back on both planes.
	tampered := make([]*FwdPath, len(paths))
	for i, p := range paths {
		tp := &FwdPath{Hops: append([]HopField(nil), p.Hops...), MTU: p.MTU}
		tp.Hops[len(tp.Hops)-1].MAC[0] ^= 0x5a
		tampered[i] = tp
	}

	tr := &diffTrace{
		groups:  make([][]diffPacket, diffGroups),
		actions: make([][]func(chaos.FaultTarget), diffGroups+1),
	}
	flow := uint32(1)
	for g := 0; g < diffGroups; g++ {
		for k := 0; k < diffFlowsPerGroup; k++ {
			pi := rng.Intn(len(paths))
			p := paths[pi]
			if rng.Intn(10) == 0 {
				p = tampered[pi]
			}
			tr.groups[g] = append(tr.groups[g], diffPacket{
				flow:    flow,
				path:    p,
				src:     p.Hops[0].Hop.IA,
				payload: 16 + rng.Intn(256),
			})
			flow++
		}
	}

	// Chaos schedule over the links the paths traverse (egress interface
	// of every non-terminal hop), quantized so each event edge lands on
	// a quiescent group boundary.
	linkSet := map[topology.LinkID]bool{}
	var links []topology.LinkID
	for _, p := range paths {
		for _, h := range p.Hops {
			if h.Hop.Out == 0 {
				continue
			}
			link := e.topo.LinkByIf(h.Hop.IA, h.Hop.Out)
			if link == nil {
				t.Fatalf("no link %s#%d", h.Hop.IA, h.Hop.Out)
			}
			if !linkSet[link.ID] {
				linkSet[link.ID] = true
				links = append(links, link.ID)
			}
		}
	}
	groupDur := time.Second
	end := sim.Time(time.Duration(diffGroups) * groupDur)
	sched := &chaos.Schedule{Seed: seed, End: end}
	for i := 0; i < 3 && i < len(links); i++ {
		at := time.Duration(rng.Intn(diffGroups-3)+1) * groupDur
		down := time.Duration(rng.Intn(3)+1) * groupDur
		sched.Events = append(sched.Events, chaos.Event{
			Kind: chaos.Flap, Link: links[rng.Intn(len(links))],
			At: sim.Time(at), Down: down,
		})
		gAt := time.Duration(rng.Intn(diffGroups-3)+1) * groupDur
		gDown := time.Duration(rng.Intn(3)+1) * groupDur
		sched.Events = append(sched.Events, chaos.Event{
			Kind: chaos.Gray, Link: links[rng.Intn(len(links))],
			At: sim.Time(gAt), Down: gDown,
			Rate: 0.2 + 0.6*rng.Float64(),
		})
	}
	for _, ev := range sched.Events {
		id := ev.Link
		gOn := int(time.Duration(ev.At) / groupDur)
		gOff := gOn + int(ev.Down/groupDur)
		if gOff > diffGroups {
			gOff = diffGroups
		}
		switch ev.Kind {
		case chaos.Flap:
			tr.actions[gOn] = append(tr.actions[gOn], func(ft chaos.FaultTarget) { ft.FailLink(id) })
			tr.actions[gOff] = append(tr.actions[gOff], func(ft chaos.FaultTarget) { ft.RestoreLink(id) })
		case chaos.Gray:
			rate := ev.Rate
			tr.actions[gOn] = append(tr.actions[gOn], func(ft chaos.FaultTarget) { ft.SetLinkLoss(id, rate) })
			tr.actions[gOff] = append(tr.actions[gOff], func(ft chaos.FaultTarget) { ft.SetLinkLoss(id, 0) })
		}
	}
	return tr
}

// fingerprint canonicalizes outcomes + counters into a SHA-256 hex
// digest, independent of the order packets finished in.
func fingerprint(outcomes map[uint32]diffOutcome, c diffCounters) string {
	flows := make([]uint32, 0, len(outcomes))
	for f := range outcomes {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	h := sha256.New()
	var buf [16]byte
	for _, f := range flows {
		o := outcomes[f]
		binary.BigEndian.PutUint32(buf[0:4], f)
		buf[4] = 0
		if o.delivered {
			buf[4] = 1
		}
		buf[5] = byte(o.scmp + 1)
		binary.BigEndian.PutUint64(buf[6:14], o.link.IA.Uint64())
		binary.BigEndian.PutUint16(buf[14:16], uint16(o.link.If))
		h.Write(buf[:])
	}
	for _, v := range []uint64{
		c.Forwarded, c.Delivered, c.DroppedBadMAC, c.DroppedNoRoute,
		c.DroppedTooBig, c.Revocations, c.DroppedGray,
	} {
		binary.BigEndian.PutUint64(buf[0:8], v)
		h.Write(buf[:8])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hostFor(ia addr.IA, flow uint32) addr.Host {
	return addr.HostIP4(ia, 10, byte(flow>>16), byte(flow>>8), byte(flow))
}

func diffPacketFor(p diffPacket) *Packet {
	dstIA := p.path.Hops[len(p.path.Hops)-1].Hop.IA
	return &Packet{
		Src:     hostFor(p.src, p.flow),
		Dst:     hostFor(dstIA, p.flow),
		Path:    p.path,
		Payload: make([]byte, p.payload),
		FlowID:  p.flow,
	}
}

// runFabricTrace replays the trace through a fresh in-memory fabric.
func runFabricTrace(t *testing.T, e *env, tr *diffTrace, seed uint64) string {
	t.Helper()
	s := &sim.Simulator{}
	net := sim.NewNetwork(s, e.topo, time.Millisecond)
	fab := NewFabric(net, e.infra.ForwardingKey)
	fab.LossFunc = HashLoss(seed)

	outcomes := map[uint32]diffOutcome{}
	for _, ia := range e.topo.IAs() {
		fab.OnDeliver(ia, func(p *Packet) {
			outcomes[p.FlowID] = diffOutcome{delivered: true, scmp: -1}
		})
		fab.OnSCMP(ia, func(m *SCMP) {
			outcomes[m.Orig.FlowID] = diffOutcome{scmp: int8(m.Type), link: m.Link}
		})
	}
	for g := 0; g < diffGroups; g++ {
		for _, fn := range tr.actions[g] {
			fn(fab)
		}
		for _, p := range tr.groups[g] {
			pkt := diffPacketFor(p)
			outcomes[p.flow] = diffOutcome{scmp: -1}
			if err := fab.Inject(pkt); err != nil {
				t.Fatalf("fabric inject flow %d: %v", p.flow, err)
			}
		}
		s.Run() // quiesce before the next fault edge
	}
	return fingerprint(outcomes, diffCounters{
		Forwarded: fab.Forwarded, Delivered: fab.Delivered,
		DroppedBadMAC: fab.DroppedBadMAC, DroppedNoRoute: fab.DroppedNoRoute,
		DroppedTooBig: fab.DroppedTooBig, Revocations: fab.Revocations,
		DroppedGray: fab.DroppedGray,
	})
}

// runEngineTrace replays the trace through a fresh wire engine.
func runEngineTrace(t *testing.T, e *env, tr *diffTrace, seed uint64, workers int) string {
	t.Helper()
	eng := NewEngine(e.topo, e.infra.ForwardingKey)
	eng.Workers = workers
	eng.LossFunc = HashLoss(seed)

	var mu sync.Mutex
	outcomes := map[uint32]diffOutcome{}
	for _, ia := range e.topo.IAs() {
		eng.OnDeliver(ia, func(s *slayers.SCION) {
			mu.Lock()
			outcomes[s.FlowID] = diffOutcome{delivered: true, scmp: -1}
			mu.Unlock()
		})
		eng.OnSCMP(ia, func(m *WireSCMPMsg) {
			mu.Lock()
			outcomes[m.FlowID] = diffOutcome{scmp: int8(m.Type), link: m.Link}
			mu.Unlock()
		})
	}
	for g := 0; g < diffGroups; g++ {
		for _, fn := range tr.actions[g] {
			fn(eng)
		}
		for _, p := range tr.groups[g] {
			pkt := diffPacketFor(p)
			outcomes[p.flow] = diffOutcome{scmp: -1}
			if err := eng.Inject(pkt); err != nil {
				t.Fatalf("engine inject flow %d: %v", p.flow, err)
			}
		}
		eng.Flush() // quiesce before the next fault edge
	}
	st := eng.Stats()
	if st.DroppedMalformed != 0 {
		t.Fatalf("engine rejected %d self-generated packets as malformed", st.DroppedMalformed)
	}
	return fingerprint(outcomes, diffCounters{
		Forwarded: st.Forwarded, Delivered: st.Delivered,
		DroppedBadMAC: st.DroppedBadMAC, DroppedNoRoute: st.DroppedNoRoute,
		DroppedTooBig: st.DroppedTooBig, Revocations: st.Revocations,
		DroppedGray: st.DroppedGray,
	})
}

// TestDifferentialGolden is the harness CI runs under -race: for each
// seed, the fabric fingerprint and the engine fingerprints at 1 and 4
// workers must be identical, and fingerprints must differ across seeds
// (the trace actually depends on the seed).
func TestDifferentialGolden(t *testing.T) {
	e := newEnv(t)
	bydSeed := map[int64]string{}
	for _, seed := range []int64{7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tr := buildDiffTrace(t, e, seed)
			fabFP := runFabricTrace(t, e, tr, uint64(seed))
			for _, workers := range []int{1, 4} {
				engFP := runEngineTrace(t, e, tr, uint64(seed), workers)
				if engFP != fabFP {
					t.Errorf("workers=%d: engine fingerprint %s != fabric %s", workers, engFP, fabFP)
				}
			}
			t.Logf("seed %d fingerprint %s", seed, fabFP)
			bydSeed[seed] = fabFP
		})
	}
	if len(bydSeed) == 2 && bydSeed[7] == bydSeed[99] {
		t.Error("fingerprints identical across seeds; trace is not seed-dependent")
	}
}

// TestDifferentialCounters spot-checks that the two planes agree on
// each counter individually (the fingerprint only proves joint
// equality), and that faults actually fired during the trace.
func TestDifferentialCounters(t *testing.T) {
	e := newEnv(t)
	tr := buildDiffTrace(t, e, 7)

	s := &sim.Simulator{}
	net := sim.NewNetwork(s, e.topo, time.Millisecond)
	fab := NewFabric(net, e.infra.ForwardingKey)
	fab.LossFunc = HashLoss(7)
	eng := NewEngine(e.topo, e.infra.ForwardingKey)
	eng.LossFunc = HashLoss(7)

	for g := 0; g < diffGroups; g++ {
		for _, fn := range tr.actions[g] {
			fn(fab)
			fn(eng)
		}
		for _, p := range tr.groups[g] {
			if err := fab.Inject(diffPacketFor(p)); err != nil {
				t.Fatal(err)
			}
			if err := eng.Inject(diffPacketFor(p)); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		eng.Flush()
	}
	st := eng.Stats()
	pairs := []struct {
		name     string
		fab, eng uint64
	}{
		{"forwarded", fab.Forwarded, st.Forwarded},
		{"delivered", fab.Delivered, st.Delivered},
		{"bad_mac", fab.DroppedBadMAC, st.DroppedBadMAC},
		{"no_route", fab.DroppedNoRoute, st.DroppedNoRoute},
		{"too_big", fab.DroppedTooBig, st.DroppedTooBig},
		{"revocations", fab.Revocations, st.Revocations},
		{"gray", fab.DroppedGray, st.DroppedGray},
	}
	for _, p := range pairs {
		if p.fab != p.eng {
			t.Errorf("%s: fabric %d != engine %d", p.name, p.fab, p.eng)
		}
	}
	if fab.Delivered == 0 || fab.DroppedBadMAC == 0 {
		t.Errorf("trace did not exercise delivery and bad-MAC paths: %+v", pairs)
	}
	if fab.Revocations == 0 && fab.DroppedGray == 0 {
		t.Error("chaos plan injected no faults into the trace")
	}
}
