package dataplane

import (
	"fmt"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
)

// Endpoint is a multi-path SCION host: it holds a set of authorized
// forwarding paths to a destination, sends on the active one, and fails
// over immediately when an SCMP revocation arrives — the fast-failover
// property that motivated the first production deployments (paper §3.1).
type Endpoint struct {
	Host   addr.Host
	fabric *Fabric

	paths  []*FwdPath
	active int
	// revoked links learned from SCMP messages.
	revoked map[seg.LinkKey]bool

	// Stats
	Sent, Failovers, Exhausted uint64
	// OnRevocation, if set, observes incoming revocations.
	OnRevocation func(link seg.LinkKey)
}

// NewEndpoint attaches a host to the fabric and installs its SCMP handler.
func NewEndpoint(f *Fabric, host addr.Host) *Endpoint {
	e := &Endpoint{Host: host, fabric: f, revoked: map[seg.LinkKey]bool{}}
	f.OnSCMP(host.IA, e.handleSCMP)
	return e
}

// SetPaths installs the candidate path set (e.g. from combinator.AllPaths
// via Authorize), resetting failover state.
func (e *Endpoint) SetPaths(paths []*FwdPath) {
	e.paths = paths
	e.active = 0
	e.revoked = map[seg.LinkKey]bool{}
}

// ActivePath returns the path currently in use, or nil when exhausted.
func (e *Endpoint) ActivePath() *FwdPath {
	if e.active < 0 || e.active >= len(e.paths) {
		return nil
	}
	return e.paths[e.active]
}

// pathUsable reports whether a path avoids all revoked links.
func (e *Endpoint) pathUsable(p *FwdPath) bool {
	for _, h := range p.Hops {
		if h.Hop.Out != 0 && e.revoked[seg.LinkKey{IA: h.Hop.IA, If: h.Hop.Out}] {
			return false
		}
		if h.Hop.In != 0 && e.revoked[seg.LinkKey{IA: h.Hop.IA, If: h.Hop.In}] {
			return false
		}
	}
	return true
}

// handleSCMP records the revoked link and switches to the next usable
// path — no waiting for route re-convergence (paper: "hosts switch to a
// different path as soon as the SCMP message is received").
func (e *Endpoint) handleSCMP(msg *SCMP) {
	if msg.Type != SCMPRevokedLink {
		return
	}
	// The revocation names the upstream side; the same physical link seen
	// from the other side must be revoked too.
	e.revoked[msg.Link] = true
	if l := e.fabric.Topo.LinkByIf(msg.Link.IA, msg.Link.If); l != nil {
		other := l.Other(msg.Link.IA)
		e.revoked[seg.LinkKey{IA: other, If: l.LocalIf(other)}] = true
	}
	if e.OnRevocation != nil {
		e.OnRevocation(msg.Link)
	}
	cur := e.ActivePath()
	if cur != nil && e.pathUsable(cur) {
		return
	}
	for i, p := range e.paths {
		if e.pathUsable(p) {
			e.active = i
			e.Failovers++
			return
		}
	}
	e.active = len(e.paths)
	e.Exhausted++
}

// Send transmits a payload to dst over the active path.
func (e *Endpoint) Send(dst addr.Host, payload []byte) error {
	p := e.ActivePath()
	if p == nil {
		return fmt.Errorf("dataplane: %s has no usable path", e.Host)
	}
	pkt := &Packet{Src: e.Host, Dst: dst, Path: p, Payload: payload}
	e.Sent++
	return e.fabric.Inject(pkt)
}
