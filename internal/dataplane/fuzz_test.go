package dataplane

import (
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/combinator"
)

// FuzzHopFieldMAC fuzzes the hop-field MAC primitives with arbitrary
// keys and hop coordinates: the cached, uncached, and batched verifiers
// must agree with each other on every input, the MAC must be a pure
// function of (key, IA, in, out), and any single-bit tamper of the MAC
// must be rejected by the batch verifier.
func FuzzHopFieldMAC(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), uint64(0x0001_ff00_0000_0106), uint16(1), uint16(3), uint8(0))
	f.Add([]byte{}, uint64(0), uint16(0), uint16(0), uint8(47))
	f.Add([]byte{0xff}, ^uint64(0), ^uint16(0), ^uint16(0), uint8(13))

	f.Fuzz(func(t *testing.T, key []byte, iaRaw uint64, in, out uint16, flip uint8) {
		ia := addr.IAFromUint64(iaRaw)
		hop := combinator.Hop{IA: ia, In: addr.IfID(in), Out: addr.IfID(out)}

		// Determinism and cached/uncached agreement.
		m1 := hopMAC(key, hop)
		m2 := hopMAC(key, hop)
		mu := hopMACUncached(key, hop)
		if m1 != m2 || m1 != mu {
			t.Fatalf("MAC not deterministic: %x %x %x", m1, m2, mu)
		}

		// Batch verifier must accept the genuine MAC and reject a
		// tampered one, in the same batch (exercising the verdict cache
		// with both outcomes for near-identical jobs).
		bad := m1
		bad[int(flip)%MACLen] ^= 1 << (flip % 8)
		jobs := []macJob{
			{in: hop.In, out: hop.Out, mac: m1},
			{in: hop.In, out: hop.Out, mac: bad},
			{in: hop.In, out: hop.Out, mac: m1},
		}
		ok := make([]bool, len(jobs))
		var v macVerifier
		v.verifyBatch(key, ia, jobs, ok)
		if !ok[0] || !ok[2] {
			t.Fatalf("batch verifier rejected genuine MAC (ok=%v)", ok)
		}
		if ok[1] {
			t.Fatalf("batch verifier accepted tampered MAC %x (genuine %x)", bad, m1)
		}
		// Re-verify through the warmed verdict cache: same answers.
		ok2 := make([]bool, len(jobs))
		v.verifyBatch(key, ia, jobs, ok2)
		for i := range ok {
			if ok[i] != ok2[i] {
				t.Fatalf("verdict cache changed answer %d: %v -> %v", i, ok[i], ok2[i])
			}
		}
	})
}
