package dataplane

import (
	"strings"
	"testing"
	"time"

	"scionmpr/internal/addr"
)

func TestMTUEnforcedAtSource(t *testing.T) {
	e := newEnv(t)
	fp := e.paths[0]
	if fp.MTU == 0 {
		t.Fatal("combinator path carried no MTU")
	}
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)

	small := &Packet{Src: src, Dst: dst, Path: fp, Payload: make([]byte, 64)}
	if err := e.fabric.Inject(small); err != nil {
		t.Fatalf("small packet rejected: %v", err)
	}
	big := &Packet{Src: src, Dst: dst, Path: fp, Payload: make([]byte, int(fp.MTU)+1)}
	err := e.fabric.Inject(big)
	if err == nil {
		t.Fatal("oversized packet accepted")
	}
	if !strings.Contains(err.Error(), "MTU") {
		t.Errorf("unexpected error: %v", err)
	}
	if e.fabric.DroppedTooBig != 1 {
		t.Errorf("DroppedTooBig = %d", e.fabric.DroppedTooBig)
	}
	// Unknown MTU (0) is not enforced.
	open := &FwdPath{Hops: fp.Hops}
	huge := &Packet{Src: src, Dst: dst, Path: open, Payload: make([]byte, 1<<16)}
	if err := e.fabric.Inject(huge); err != nil {
		t.Errorf("MTU-less path must not enforce: %v", err)
	}
}

func TestMTUSurvivesAuthorizeAndReverse(t *testing.T) {
	e := newEnv(t)
	fp := e.paths[0]
	rev, err := fp.Reverse(e.infra.ForwardingKey)
	if err != nil {
		t.Fatal(err)
	}
	if rev.MTU != fp.MTU {
		t.Errorf("reverse MTU = %d, want %d", rev.MTU, fp.MTU)
	}
}

func TestIntraASDelay(t *testing.T) {
	e := newEnv(t)
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)
	var pick *FwdPath
	for _, p := range e.paths {
		if len(p.Hops) >= 3 {
			pick = p
			break
		}
	}
	if pick == nil {
		t.Skip("no multi-hop path")
	}
	// Baseline transit time without internal delay.
	base := &Packet{Src: src, Dst: dst, Path: pick}
	if err := e.fabric.Inject(base); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	baseline := e.sim.Now()

	// 7ms per internal BR-to-BR hop at every transit AS.
	e.fabric.IntraASDelay = func(ia addr.IA, in, out addr.IfID) time.Duration {
		return 7 * time.Millisecond
	}
	again := &Packet{Src: src, Dst: dst, Path: pick}
	if err := e.fabric.Inject(again); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	transit := len(pick.Hops) - 2 // intermediate ASes
	wantExtra := time.Duration(transit) * 7 * time.Millisecond
	gotExtra := time.Duration(e.sim.Now() - baseline)
	// The second packet started at `baseline`, so its flight time is the
	// difference; it must exceed the first flight time by wantExtra.
	firstFlight := time.Duration(baseline)
	if gotExtra != firstFlight+wantExtra {
		t.Errorf("delayed flight = %v, want %v + %v", gotExtra, firstFlight, wantExtra)
	}
	if e.fabric.Delivered != 2 {
		t.Errorf("delivered = %d", e.fabric.Delivered)
	}
}
