package dataplane

import (
	"strings"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/slayers"
)

func TestMTUEnforcedAtSource(t *testing.T) {
	e := newEnv(t)
	fp := e.paths[0]
	if fp.MTU == 0 {
		t.Fatal("combinator path carried no MTU")
	}
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)

	small := &Packet{Src: src, Dst: dst, Path: fp, Payload: make([]byte, 64)}
	if err := e.fabric.Inject(small); err != nil {
		t.Fatalf("small packet rejected: %v", err)
	}
	big := &Packet{Src: src, Dst: dst, Path: fp, Payload: make([]byte, int(fp.MTU)+1)}
	err := e.fabric.Inject(big)
	if err == nil {
		t.Fatal("oversized packet accepted")
	}
	if !strings.Contains(err.Error(), "MTU") {
		t.Errorf("unexpected error: %v", err)
	}
	if e.fabric.DroppedTooBig != 1 {
		t.Errorf("DroppedTooBig = %d", e.fabric.DroppedTooBig)
	}
	// Unknown MTU (0) is not enforced.
	open := &FwdPath{Hops: fp.Hops}
	huge := &Packet{Src: src, Dst: dst, Path: open, Payload: make([]byte, 1<<16)}
	if err := e.fabric.Inject(huge); err != nil {
		t.Errorf("MTU-less path must not enforce: %v", err)
	}
}

// TestMTUWireBoundary pins MTU enforcement to the wire encoding: the
// byte count EncodePacket produces is exactly WireLen, a packet sized
// to exactly the path MTU is accepted and delivered by both planes, one
// byte more is rejected by both, and a zero-payload packet survives the
// full wire round trip.
func TestMTUWireBoundary(t *testing.T) {
	e, eng := newWireEnv(t)
	fp := e.paths[0]
	if fp.MTU == 0 {
		t.Fatal("path carried no MTU")
	}
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)
	mk := func(payload int) *Packet {
		return &Packet{Src: src, Dst: dst, Path: fp, Payload: make([]byte, payload), FlowID: 5}
	}
	overhead := mk(0).WireLen()
	room := int(fp.MTU) - overhead
	if room <= 1 {
		t.Fatalf("headers (%dB) leave no payload room under MTU %d", overhead, fp.MTU)
	}

	var engDelivered, fabDelivered []int
	eng.OnDeliver(a4, func(s *slayers.SCION) { engDelivered = append(engDelivered, len(s.Payload())) })
	e.fabric.OnDeliver(a4, func(p *Packet) { fabDelivered = append(fabDelivered, len(p.Payload)) })

	for _, tc := range []struct {
		name    string
		payload int
		fits    bool
	}{
		{"zero_payload", 0, true},
		{"exact_mtu", room, true},
		{"mtu_plus_one", room + 1, false},
	} {
		pkt := mk(tc.payload)
		// Wire encoding is exactly WireLen bytes, and at the boundary
		// WireLen is exactly the MTU.
		buf := make([]byte, pkt.WireLen())
		var s slayers.SCION
		n, err := EncodePacket(&s, pkt, buf)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if n != pkt.WireLen() {
			t.Errorf("%s: encoded %d bytes, WireLen %d", tc.name, n, pkt.WireLen())
		}
		if tc.payload == room && n != int(fp.MTU) {
			t.Errorf("exact_mtu: wire size %d != MTU %d", n, fp.MTU)
		}

		fabErr := e.fabric.Inject(mk(tc.payload))
		engErr := eng.Inject(mk(tc.payload))
		rawErr := eng.InjectBytes(buf, fp.MTU)
		if (fabErr == nil) != tc.fits || (engErr == nil) != tc.fits || (rawErr == nil) != tc.fits {
			t.Errorf("%s: fits=%v but fabric=%v engine=%v raw=%v",
				tc.name, tc.fits, fabErr, engErr, rawErr)
		}
	}
	e.sim.Run()
	eng.Flush()

	if len(fabDelivered) != 2 || fabDelivered[0] != 0 || fabDelivered[1] != room {
		t.Errorf("fabric delivered payloads %v, want [0 %d]", fabDelivered, room)
	}
	// The engine saw each fitting packet twice (Inject + InjectBytes).
	if len(engDelivered) != 4 {
		t.Fatalf("engine delivered %v, want 4 packets", engDelivered)
	}
	for i, want := range []int{0, 0, room, room} {
		if engDelivered[i] != want {
			t.Errorf("engine payload %d = %d, want %d", i, engDelivered[i], want)
		}
	}
	if e.fabric.DroppedTooBig != 1 || eng.Stats().DroppedTooBig != 2 {
		t.Errorf("too-big counters: fabric %d engine %d",
			e.fabric.DroppedTooBig, eng.Stats().DroppedTooBig)
	}
}

func TestMTUSurvivesAuthorizeAndReverse(t *testing.T) {
	e := newEnv(t)
	fp := e.paths[0]
	rev, err := fp.Reverse(e.infra.ForwardingKey)
	if err != nil {
		t.Fatal(err)
	}
	if rev.MTU != fp.MTU {
		t.Errorf("reverse MTU = %d, want %d", rev.MTU, fp.MTU)
	}
}

func TestIntraASDelay(t *testing.T) {
	e := newEnv(t)
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)
	var pick *FwdPath
	for _, p := range e.paths {
		if len(p.Hops) >= 3 {
			pick = p
			break
		}
	}
	if pick == nil {
		t.Skip("no multi-hop path")
	}
	// Baseline transit time without internal delay.
	base := &Packet{Src: src, Dst: dst, Path: pick}
	if err := e.fabric.Inject(base); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	baseline := e.sim.Now()

	// 7ms per internal BR-to-BR hop at every transit AS.
	e.fabric.IntraASDelay = func(ia addr.IA, in, out addr.IfID) time.Duration {
		return 7 * time.Millisecond
	}
	again := &Packet{Src: src, Dst: dst, Path: pick}
	if err := e.fabric.Inject(again); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	transit := len(pick.Hops) - 2 // intermediate ASes
	wantExtra := time.Duration(transit) * 7 * time.Millisecond
	gotExtra := time.Duration(e.sim.Now() - baseline)
	// The second packet started at `baseline`, so its flight time is the
	// difference; it must exceed the first flight time by wantExtra.
	firstFlight := time.Duration(baseline)
	if gotExtra != firstFlight+wantExtra {
		t.Errorf("delayed flight = %v, want %v + %v", gotExtra, firstFlight, wantExtra)
	}
	if e.fabric.Delivered != 2 {
		t.Errorf("delivered = %d", e.fabric.Delivered)
	}
}
