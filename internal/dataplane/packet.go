// Package dataplane implements SCION packet forwarding with
// packet-carried forwarding state (PCFS): forwarding paths are stamped
// into packets as cryptographically MACed hop fields, so border routers
// keep no per-path or per-flow state and only verify and forward (paper
// §2.3 and Mechanism 4 of §4.1). Link failures trigger SCMP messages from
// the border router observing the failure back to the sender, enabling
// sub-RTT failover to an alternative path (§4.1 "Path Revocations").
package dataplane

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"

	"scionmpr/internal/addr"
	"scionmpr/internal/combinator"
	"scionmpr/internal/slayers"
	"scionmpr/internal/topology"
)

// MACLen is the per-hop-field MAC length (6 bytes, as in SCION).
const MACLen = 6

// HopField is one authorized hop: which interfaces the packet may use to
// enter and leave the AS, MACed with the AS's forwarding key.
type HopField struct {
	Hop combinator.Hop
	MAC [MACLen]byte
}

// FwdPath is a forwarding path carried in packet headers.
type FwdPath struct {
	Hops []HopField
	// MTU is the end-to-end path MTU inherited from the combinator path
	// (0 = unknown, not enforced).
	MTU uint16
}

// KeyFunc returns the forwarding key of an AS (nil if unknown).
type KeyFunc func(addr.IA) []byte

// macStates reuses one keyed HMAC state per forwarding key: hop-field
// verification runs once per hop for every packet a border router sees,
// and re-deriving the HMAC inner/outer pads there dominated data-plane
// CPU under load. Reset on a keyed state restores the pads without
// re-keying, and produces identical MACs.
var macStates = struct {
	sync.Mutex
	m map[string]hash.Hash
}{m: map[string]hash.Hash{}}

// macInput builds the 12 bytes the hop field MAC covers.
func macInput(buf *[12]byte, h combinator.Hop) {
	binary.BigEndian.PutUint64(buf[:8], h.IA.Uint64())
	binary.BigEndian.PutUint16(buf[8:10], uint16(h.In))
	binary.BigEndian.PutUint16(buf[10:12], uint16(h.Out))
}

// hopMAC computes the hop field MAC over (IA, in, out) with the AS key.
func hopMAC(key []byte, h combinator.Hop) [MACLen]byte {
	var buf [12]byte
	macInput(&buf, h)
	macStates.Lock()
	m := macStates.m[string(key)]
	if m == nil {
		m = hmac.New(sha256.New, key)
		macStates.m[string(key)] = m
	} else {
		m.Reset()
	}
	m.Write(buf[:])
	var sum [sha256.Size]byte
	var out [MACLen]byte
	copy(out[:], m.Sum(sum[:0]))
	macStates.Unlock()
	return out
}

// hopMACUncached recomputes the HMAC from scratch — fresh key schedule,
// no shared state. This is the naive per-packet baseline the batched
// engine's single-packet mode uses; batch mode amortizes the keyed
// state and the lock over whole batches instead (see macVerifier).
func hopMACUncached(key []byte, h combinator.Hop) [MACLen]byte {
	var buf [12]byte
	macInput(&buf, h)
	m := hmac.New(sha256.New, key)
	m.Write(buf[:])
	var sum [sha256.Size]byte
	var out [MACLen]byte
	copy(out[:], m.Sum(sum[:0]))
	return out
}

// macVerifier verifies hop field MACs for one border router draining
// batches. All hops a router verifies use its own AS key, so a batch
// needs exactly one keyed-state acquisition from the shared cache
// (locked once per batch, not once per packet), and identical hop
// fields across packets of the batch — the common case when many flows
// share a path — collapse into a small router-owned verdict cache.
// The verifier is owned by a single worker; only the macStates access
// inside verifyBatch touches shared state.
type macVerifier struct {
	// verdicts caches (ingress, egress, mac) -> valid for this AS key.
	// Entries are pure functions of the key, so the cache never needs
	// invalidation, only bounding.
	verdicts map[[10]byte]bool
}

const macCacheLimit = 4096

// verdictKey packs a hop field's MAC-covered bytes plus the MAC.
func verdictKey(in, out addr.IfID, mac [MACLen]byte) [10]byte {
	var k [10]byte
	binary.BigEndian.PutUint16(k[0:2], uint16(in))
	binary.BigEndian.PutUint16(k[2:4], uint16(out))
	copy(k[4:], mac[:])
	return k
}

// macJob is one hop field to verify against the router's key.
type macJob struct {
	in, out addr.IfID
	mac     [MACLen]byte
}

// verifyBatch verifies jobs for the AS ia under key, writing verdicts
// into ok (len(ok) == len(jobs)). One lock acquisition per call.
func (v *macVerifier) verifyBatch(key []byte, ia addr.IA, jobs []macJob, ok []bool) {
	if v.verdicts == nil {
		v.verdicts = make(map[[10]byte]bool, 64)
	}
	var misses []int
	for i, j := range jobs {
		if verdict, hit := v.verdicts[verdictKey(j.in, j.out, j.mac)]; hit {
			ok[i] = verdict
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) == 0 {
		return
	}
	if len(v.verdicts) > macCacheLimit {
		v.verdicts = make(map[[10]byte]bool, 64)
	}
	macStates.Lock()
	m := macStates.m[string(key)]
	if m == nil {
		m = hmac.New(sha256.New, key)
		macStates.m[string(key)] = m
	}
	var buf [12]byte
	var sum [sha256.Size]byte
	for _, i := range misses {
		j := jobs[i]
		macInput(&buf, combinator.Hop{IA: ia, In: j.in, Out: j.out})
		m.Reset()
		m.Write(buf[:])
		got := m.Sum(sum[:0])
		valid := hmac.Equal(got[:MACLen], j.mac[:])
		ok[i] = valid
		v.verdicts[verdictKey(j.in, j.out, j.mac)] = valid
	}
	macStates.Unlock()
}

// Authorize stamps a combinator path into a forwarding path: each AS's
// control service MACs its own hop field. In the real system this happens
// during beaconing; here the key registry plays all control services.
func Authorize(p *combinator.Path, keys KeyFunc) (*FwdPath, error) {
	fp := &FwdPath{Hops: make([]HopField, len(p.Hops)), MTU: p.MTU}
	for i, h := range p.Hops {
		key := keys(h.IA)
		if key == nil {
			return nil, fmt.Errorf("dataplane: no forwarding key for %s", h.IA)
		}
		fp.Hops[i] = HopField{Hop: h, MAC: hopMAC(key, h)}
	}
	return fp, nil
}

// Verify checks the hop field at index i with the AS's own key; border
// routers do this for their own AS only (PCFS requires no global state).
func (fp *FwdPath) Verify(i int, keys KeyFunc) error {
	if i < 0 || i >= len(fp.Hops) {
		return fmt.Errorf("dataplane: hop index %d out of range", i)
	}
	h := fp.Hops[i]
	key := keys(h.Hop.IA)
	if key == nil {
		return fmt.Errorf("dataplane: no forwarding key for %s", h.Hop.IA)
	}
	want := hopMAC(key, h.Hop)
	if !hmac.Equal(want[:], h.MAC[:]) {
		return fmt.Errorf("dataplane: hop field MAC mismatch at %s", h.Hop.IA)
	}
	return nil
}

// Reverse returns the forwarding path in the opposite direction with
// re-MACed hop fields (valid because each hop's reverse is an authorized
// interface pair of the same AS).
func (fp *FwdPath) Reverse(keys KeyFunc) (*FwdPath, error) {
	out := &FwdPath{Hops: make([]HopField, len(fp.Hops)), MTU: fp.MTU}
	for i, h := range fp.Hops {
		rev := combinator.Hop{IA: h.Hop.IA, In: h.Hop.Out, Out: h.Hop.In}
		key := keys(rev.IA)
		if key == nil {
			return nil, fmt.Errorf("dataplane: no forwarding key for %s", rev.IA)
		}
		out.Hops[len(fp.Hops)-1-i] = HopField{Hop: rev, MAC: hopMAC(key, rev)}
	}
	return out, nil
}

// LinkRef is one inter-domain link a forwarding path traverses, with the
// direction of traversal: packets cross Link from From toward
// Link.Other(From). Traffic models key per-direction capacity on it.
type LinkRef struct {
	Link *topology.Link
	From addr.IA
}

// Forward reports whether the path crosses the link in A-to-B direction.
func (r LinkRef) Forward() bool { return r.Link.A == r.From }

// LinkRefs resolves the path's hop fields against the topology into the
// ordered sequence of traversed inter-domain links. It fails when a hop's
// egress interface does not attach to any link, which indicates a path
// built for a different topology.
func (fp *FwdPath) LinkRefs(topo *topology.Graph) ([]LinkRef, error) {
	out := make([]LinkRef, 0, len(fp.Hops))
	for _, h := range fp.Hops {
		if h.Hop.Out == 0 {
			continue
		}
		l := topo.LinkByIf(h.Hop.IA, h.Hop.Out)
		if l == nil {
			return nil, fmt.Errorf("dataplane: %s has no interface %s", h.Hop.IA, h.Hop.Out)
		}
		out = append(out, LinkRef{Link: l, From: h.Hop.IA})
	}
	return out, nil
}

// WireLen is the exact encoded size of the path header in the
// internal/slayers wire format: the 4-byte path meta field, one 8-byte
// info field, and 12 bytes per hop field.
func (fp *FwdPath) WireLen() int {
	return slayers.MetaLen + slayers.InfoLen + slayers.HopLen*len(fp.Hops)
}

// Packet is a SCION data-plane packet.
type Packet struct {
	Src, Dst addr.Host
	Path     *FwdPath
	// HopIdx is the current position in the path (the AS processing the
	// packet); it advances as the packet is forwarded.
	HopIdx  int
	Payload []byte
	// FlowID identifies the packet's flow (20 bits on the wire). The
	// differential fabric-vs-engine harness also keys its per-packet
	// loss decisions on it (see Fabric.LossFunc).
	FlowID uint32
}

// hostWireLen is the zero-padded on-wire size of one host address.
func hostWireLen(t addr.HostAddrType) int {
	n := t.Len()
	if r := n % 4; r != 0 {
		n += 4 - r
	}
	return n
}

// WireLen implements sim.Message. It matches the encoded slayers size
// exactly: common header, address header (hosts zero-padded to 4-byte
// multiples), path header, payload.
func (p *Packet) WireLen() int {
	n := slayers.CmnHdrLen + 2*slayers.IALen +
		hostWireLen(p.Src.Type) + hostWireLen(p.Dst.Type) + len(p.Payload)
	if p.Path != nil {
		n += p.Path.WireLen()
	}
	return n
}

// CurrentHop returns the hop field under processing.
func (p *Packet) CurrentHop() (HopField, error) {
	if p.Path == nil || p.HopIdx < 0 || p.HopIdx >= len(p.Path.Hops) {
		return HopField{}, fmt.Errorf("dataplane: hop index %d invalid", p.HopIdx)
	}
	return p.Path.Hops[p.HopIdx], nil
}

// AtDestination reports whether the packet reached the last hop.
func (p *Packet) AtDestination() bool {
	return p.Path != nil && p.HopIdx == len(p.Path.Hops)-1
}
