package dataplane

import (
	"fmt"
	"math/rand"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/slayers"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// SCMPType enumerates the control messages the data plane emits.
type SCMPType int

const (
	// SCMPRevokedLink notifies the sender that a link on its path
	// failed; the revoked link identifies which paths to avoid.
	SCMPRevokedLink SCMPType = iota
	// SCMPBadMAC reports a hop field that failed verification.
	SCMPBadMAC
	// SCMPDestUnreachable reports a packet that could not be delivered
	// for a non-path reason.
	SCMPDestUnreachable
)

func (t SCMPType) String() string {
	switch t {
	case SCMPRevokedLink:
		return "revoked-link"
	case SCMPBadMAC:
		return "bad-mac"
	case SCMPDestUnreachable:
		return "dest-unreachable"
	}
	return fmt.Sprintf("scmp(%d)", int(t))
}

// SCMP is a SCION Control Message Protocol message, routed back to the
// original sender on the reversed path prefix.
type SCMP struct {
	Type SCMPType
	// Link is the revoked link for SCMPRevokedLink.
	Link seg.LinkKey
	// Offender is the AS that generated the message.
	Offender addr.IA
	// Orig identifies the packet that triggered the message.
	Orig *Packet
}

// WireLen implements sim.Message: an SCMP message travels as a SCION
// packet with an empty path (common + address headers) whose payload
// is the fixed SCMP header plus a quote of the original packet's
// header bytes (see internal/slayers scmp.go).
func (m *SCMP) WireLen() int {
	n := slayers.CmnHdrLen + 2*slayers.IALen + slayers.SCMPHdrLen
	if m.Orig != nil {
		n += hostWireLen(m.Orig.Src.Type) + hostWireLen(m.Orig.Dst.Type)
		n += m.Orig.WireLen() - len(m.Orig.Payload) // quoted headers
	}
	return n
}

// DeliverFunc receives packets arriving at their destination AS.
type DeliverFunc func(pkt *Packet)

// SCMPFunc receives SCMP messages arriving back at the sender's AS.
type SCMPFunc func(msg *SCMP)

// Fabric wires one border router per AS onto a sim.Network and forwards
// packets hop by hop. It owns the set of failed links so experiments can
// inject failures (paper §4.1: the border router observing a failed link
// emits SCMP messages toward affected senders).
type Fabric struct {
	Net  *sim.Network
	Topo *topology.Graph
	Keys KeyFunc

	// IntraASDelay, if set, models the AS-internal hop between the
	// ingress and egress border routers (SCION packets are IP-routed by
	// the IGP inside an AS, paper §3.4); packets are delayed by its
	// return value before leaving on the egress link.
	IntraASDelay func(ia addr.IA, in, out addr.IfID) time.Duration

	// LossFunc, if set, replaces the seeded-RNG gray-failure coin with a
	// pure per-packet decision (keyed on the packet's FlowID and the
	// link). The differential fabric-vs-wire-engine harness installs the
	// same function on both planes so drop decisions are identical
	// regardless of packet interleaving; nil keeps the historical
	// sequence-dependent RNG behavior.
	LossFunc func(flow uint32, link topology.LinkID, rate float64) bool

	failed map[topology.LinkID]bool
	// loss holds per-link gray-failure drop probabilities: packets are
	// shed silently, with no SCMP — the defining property of a gray
	// failure, which senders can only detect end to end.
	loss    map[topology.LinkID]float64
	lossRNG *rand.Rand

	deliver map[addr.IA]DeliverFunc
	scmp    map[addr.IA]SCMPFunc

	// Stats
	Forwarded, Delivered, DroppedBadMAC, DroppedNoRoute, DroppedTooBig, Revocations uint64
	// DroppedGray counts packets silently shed by gray failures.
	DroppedGray uint64
}

// SetTelemetry registers the fabric's forwarding observables as gauge
// funcs over its counters. Fabric networks run serially (no sharding),
// so export-time reads are race-free and deterministic.
func (f *Fabric) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	u := func(p *uint64) func() float64 { return func() float64 { return float64(*p) } }
	reg.GaugeFunc("dataplane_forwarded_total", u(&f.Forwarded))
	reg.GaugeFunc("dataplane_delivered_total", u(&f.Delivered))
	reg.GaugeFunc("dataplane_revocations_total", u(&f.Revocations))
	reg.GaugeFunc(`dataplane_dropped_total{cause="bad_mac"}`, u(&f.DroppedBadMAC))
	reg.GaugeFunc(`dataplane_dropped_total{cause="no_route"}`, u(&f.DroppedNoRoute))
	reg.GaugeFunc(`dataplane_dropped_total{cause="too_big"}`, u(&f.DroppedTooBig))
	reg.GaugeFunc(`dataplane_dropped_total{cause="gray"}`, u(&f.DroppedGray))
}

// NewFabric registers a router handler for every AS in the topology.
func NewFabric(net *sim.Network, keys KeyFunc) *Fabric {
	f := &Fabric{
		Net:     net,
		Topo:    net.Topo,
		Keys:    keys,
		failed:  map[topology.LinkID]bool{},
		loss:    map[topology.LinkID]float64{},
		deliver: map[addr.IA]DeliverFunc{},
		scmp:    map[addr.IA]SCMPFunc{},
	}
	for _, ia := range net.Topo.IAs() {
		ia := ia
		net.Register(ia, sim.HandlerFunc(func(from addr.IA, link *topology.Link, msg sim.Message) {
			f.handle(ia, msg)
		}))
	}
	return f
}

// OnDeliver installs the destination handler of an AS (its local stack).
func (f *Fabric) OnDeliver(ia addr.IA, fn DeliverFunc) { f.deliver[ia] = fn }

// OnSCMP installs the SCMP handler of an AS.
func (f *Fabric) OnSCMP(ia addr.IA, fn SCMPFunc) { f.scmp[ia] = fn }

// AddSCMP registers an additional SCMP listener for ia, chained after any
// handler already installed — several consumers (endpoints, traffic
// engines) can observe revocations arriving at the same AS.
func (f *Fabric) AddSCMP(ia addr.IA, fn SCMPFunc) {
	prev := f.scmp[ia]
	if prev == nil {
		f.scmp[ia] = fn
		return
	}
	f.scmp[ia] = func(m *SCMP) {
		prev(m)
		fn(m)
	}
}

// FailLink marks one link as failed; packets routed over it trigger
// revocations.
func (f *Fabric) FailLink(id topology.LinkID) { f.failed[id] = true }

// RestoreLink clears a failure.
func (f *Fabric) RestoreLink(id topology.LinkID) { delete(f.failed, id) }

// Failed reports whether a link is failed.
func (f *Fabric) Failed(id topology.LinkID) bool { return f.failed[id] }

// SetLinkLoss sets the gray-failure drop probability of a link (both
// directions); rate <= 0 heals the link, rate >= 1 drops everything.
func (f *Fabric) SetLinkLoss(id topology.LinkID, rate float64) {
	if rate <= 0 {
		delete(f.loss, id)
		return
	}
	if rate > 1 {
		rate = 1
	}
	f.loss[id] = rate
}

// LinkLoss returns the gray-failure drop probability of a link.
func (f *Fabric) LinkLoss(id topology.LinkID) float64 { return f.loss[id] }

// SeedLoss reseeds the gray-failure randomness so drop decisions are
// reproducible under a chosen seed (a fixed default seed is used
// otherwise; the event loop is single-threaded either way).
func (f *Fabric) SeedLoss(seed int64) { f.lossRNG = rand.New(rand.NewSource(seed)) }

func (f *Fabric) dropByLoss(rate float64) bool {
	if f.lossRNG == nil {
		f.lossRNG = rand.New(rand.NewSource(1))
	}
	return f.lossRNG.Float64() < rate
}

// SetLinkDelay overrides the one-way latency of a link on the underlying
// transport, modelling a latency spike; d <= 0 restores the default.
func (f *Fabric) SetLinkDelay(id topology.LinkID, d time.Duration) {
	f.Net.SetLinkDelay(id, d)
}

// ResetCounters zeroes all forwarding statistics (e.g. after a warm-up
// phase), mirroring sim.Network.ResetCounters on the data plane.
func (f *Fabric) ResetCounters() {
	f.Forwarded, f.Delivered = 0, 0
	f.DroppedBadMAC, f.DroppedNoRoute, f.DroppedTooBig = 0, 0, 0
	f.Revocations, f.DroppedGray = 0, 0
}

// Inject sends a packet from its source AS (HopIdx 0). The source border
// router performs the first egress lookup immediately.
func (f *Fabric) Inject(pkt *Packet) error {
	if pkt.Path == nil || len(pkt.Path.Hops) == 0 {
		return fmt.Errorf("dataplane: packet without path")
	}
	pkt.HopIdx = 0
	src := pkt.Path.Hops[0].Hop.IA
	if pkt.Src.IA != src {
		return fmt.Errorf("dataplane: source %s does not match path head %s", pkt.Src.IA, src)
	}
	if pkt.Path.MTU > 0 && pkt.WireLen() > int(pkt.Path.MTU) {
		f.DroppedTooBig++
		return fmt.Errorf("dataplane: packet of %d bytes exceeds path MTU %d", pkt.WireLen(), pkt.Path.MTU)
	}
	f.forwardFrom(src, pkt)
	return nil
}

// handle processes a message arriving at an AS's border router.
func (f *Fabric) handle(local addr.IA, msg sim.Message) {
	switch m := msg.(type) {
	case *Packet:
		f.routerStep(local, m)
	case *SCMP:
		f.scmpStep(local, m)
	}
}

// routerStep runs the border router pipeline for a packet at local:
// verify the local hop field, deliver if at destination, else forward.
func (f *Fabric) routerStep(local addr.IA, pkt *Packet) {
	pkt.HopIdx++
	hf, err := pkt.CurrentHop()
	if err != nil || hf.Hop.IA != local {
		f.DroppedNoRoute++
		return
	}
	if err := pkt.Path.Verify(pkt.HopIdx, f.Keys); err != nil {
		f.DroppedBadMAC++
		f.emitSCMP(local, pkt, &SCMP{Type: SCMPBadMAC, Offender: local, Orig: pkt})
		return
	}
	if pkt.AtDestination() {
		f.Delivered++
		if fn := f.deliver[local]; fn != nil {
			fn(pkt)
		}
		return
	}
	if f.IntraASDelay != nil {
		if d := f.IntraASDelay(local, hf.Hop.In, hf.Hop.Out); d > 0 {
			f.Net.Sim.Schedule(d, func() { f.forwardFrom(local, pkt) })
			return
		}
	}
	f.forwardFrom(local, pkt)
}

// forwardFrom transmits the packet out of local's egress interface for
// the current hop, checking MAC (at the source) and link health.
func (f *Fabric) forwardFrom(local addr.IA, pkt *Packet) {
	hf, err := pkt.CurrentHop()
	if err != nil || hf.Hop.IA != local {
		f.DroppedNoRoute++
		return
	}
	if pkt.HopIdx == 0 {
		if err := pkt.Path.Verify(0, f.Keys); err != nil {
			f.DroppedBadMAC++
			return
		}
	}
	link := f.Topo.LinkByIf(local, hf.Hop.Out)
	if link == nil {
		f.DroppedNoRoute++
		f.emitSCMP(local, pkt, &SCMP{Type: SCMPDestUnreachable, Offender: local, Orig: pkt})
		return
	}
	if f.failed[link.ID] {
		f.Revocations++
		f.emitSCMP(local, pkt, &SCMP{
			Type:     SCMPRevokedLink,
			Link:     seg.LinkKey{IA: local, If: hf.Hop.Out},
			Offender: local,
			Orig:     pkt,
		})
		return
	}
	if rate := f.loss[link.ID]; rate > 0 {
		drop := false
		if f.LossFunc != nil {
			drop = f.LossFunc(pkt.FlowID, link.ID, rate)
		} else {
			drop = f.dropByLoss(rate)
		}
		if drop {
			f.DroppedGray++
			return
		}
	}
	f.Forwarded++
	f.Net.Send(local, link, pkt)
}

// emitSCMP routes a control message back toward the packet's sender over
// the reversed path prefix. The prefix up to the offending AS is still
// healthy, so the message travels hop by hop like a regular packet.
func (f *Fabric) emitSCMP(local addr.IA, pkt *Packet, msg *SCMP) {
	if pkt.HopIdx <= 0 {
		// Failure at the source AS: deliver locally.
		if fn := f.scmp[local]; fn != nil {
			fn(msg)
		}
		return
	}
	// Walk one hop back over the arrival link.
	prev := pkt.Path.Hops[pkt.HopIdx-1].Hop
	link := f.Topo.LinkByIf(prev.IA, prev.Out)
	if link == nil {
		return
	}
	msg.Orig = pkt
	f.Net.Send(local, link, msg)
}

// scmpStep moves an SCMP message one hop closer to the original sender.
func (f *Fabric) scmpStep(local addr.IA, msg *SCMP) {
	pkt := msg.Orig
	// Find local's position on the original path.
	idx := -1
	for i, h := range pkt.Path.Hops {
		if h.Hop.IA == local {
			idx = i
			break
		}
	}
	if idx <= 0 {
		// Arrived at the sender AS (or path corrupted): deliver.
		if fn := f.scmp[local]; fn != nil {
			fn(msg)
		}
		return
	}
	prev := pkt.Path.Hops[idx-1].Hop
	link := f.Topo.LinkByIf(prev.IA, prev.Out)
	if link == nil {
		return
	}
	f.Net.Send(local, link, msg)
}
