package dataplane

import (
	"sync"
	"sync/atomic"
)

// frame is one pooled packet buffer moving through the engine's rings.
// b holds the full wire bytes of a packet (data or SCMP); arrived
// distinguishes a frame handed over by a neighbor router (the ingress
// pipeline advances CurrHF) from a freshly injected one (the source
// router forwards hop 0 without advancing).
type frame struct {
	b       []byte
	arrived bool
}

// framePool recycles packet buffers so the steady-state forwarding path
// allocates nothing. Buffers start at 2 KiB (any full-size MTU packet)
// and grow in place for jumbo payloads; grown buffers return to the
// pool at their grown capacity.
type framePool struct{ p sync.Pool }

func newFramePool() *framePool {
	fp := &framePool{}
	fp.p.New = func() any { return &frame{b: make([]byte, 0, 2048)} }
	return fp
}

// get returns a frame with len(b) == n.
func (fp *framePool) get(n int) *frame {
	f := fp.p.Get().(*frame)
	if cap(f.b) < n {
		f.b = make([]byte, n)
	} else {
		f.b = f.b[:n]
	}
	return f
}

func (fp *framePool) put(f *frame) {
	f.b = f.b[:0]
	f.arrived = false
	fp.p.Put(f)
}

// ring is a bounded lock-free multi-producer queue with a single
// consumer (the worker that owns the destination AS), in the style of
// Vyukov's bounded MPMC queue: each cell carries a sequence number that
// encodes whether it is free for the producer of a given ticket or
// ready for the consumer, so producers coordinate through one CAS on
// the enqueue cursor and never take a lock. When a burst overflows the
// ring capacity, producers spill to a small mutex-guarded overflow list
// rather than blocking — egress must never stall on a slow neighbor —
// and the consumer drains the spill after the ring. Packets may reorder
// across the spill boundary; forwarding outcomes are order-independent
// (hop field verification and the hash-based loss decisions are pure
// per-packet functions).
type ring struct {
	mask  uint64
	cells []ringCell

	_    [7]uint64 // keep the cursors off the cells' cache lines
	enq  atomic.Uint64
	_    [7]uint64
	deq  uint64 // owned by the single consumer
	_    [7]uint64
	ovMu sync.Mutex
	ov   []*frame
	ovN  atomic.Int64
}

type ringCell struct {
	seq atomic.Uint64
	f   *frame
}

// newRing builds a ring with the given power-of-two capacity.
func newRing(capacity int) *ring {
	if capacity&(capacity-1) != 0 || capacity == 0 {
		panic("dataplane: ring capacity must be a power of two")
	}
	r := &ring{mask: uint64(capacity - 1), cells: make([]ringCell, capacity)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues f; it never blocks and never fails (full rings spill).
func (r *ring) push(f *frame) {
	pos := r.enq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.f = f
				c.seq.Store(pos + 1)
				return
			}
			pos = r.enq.Load()
		case d < 0: // full
			r.ovMu.Lock()
			r.ov = append(r.ov, f)
			r.ovMu.Unlock()
			r.ovN.Add(1)
			return
		default: // another producer claimed pos; retry at the tip
			pos = r.enq.Load()
		}
	}
}

// pop dequeues one frame, or nil when the ring is empty. Single
// consumer only.
func (r *ring) pop() *frame {
	c := &r.cells[r.deq&r.mask]
	seq := c.seq.Load()
	if int64(seq)-int64(r.deq+1) == 0 {
		f := c.f
		c.f = nil
		c.seq.Store(r.deq + r.mask + 1)
		r.deq++
		return f
	}
	if r.ovN.Load() > 0 {
		r.ovMu.Lock()
		var f *frame
		if n := len(r.ov); n > 0 {
			f = r.ov[n-1]
			r.ov[n-1] = nil
			r.ov = r.ov[:n-1]
			r.ovN.Add(-1)
		}
		r.ovMu.Unlock()
		return f
	}
	return nil
}
