package dataplane

import (
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

var (
	a1 = addr.MustIA(1, 0xff00_0000_0101)
	a2 = addr.MustIA(1, 0xff00_0000_0102)
	a4 = addr.MustIA(1, 0xff00_0000_0104)
	a5 = addr.MustIA(1, 0xff00_0000_0105)
	a6 = addr.MustIA(1, 0xff00_0000_0106)
)

// env builds a demo topology with a path A-6 -> ... -> A-4 derived from
// real beaconing, plus a fresh fabric for data-plane tests.
type env struct {
	topo   *topology.Graph
	infra  *trust.Infra
	sim    *sim.Simulator
	fabric *Fabric
	paths  []*FwdPath // A-6 to A-4 candidates
	run    *beacon.RunResult
}

// pathsBetween derives authorized forwarding paths src -> dst from the
// beaconing run (up segments of src joined with down segments of dst
// at the core A-2).
func (e *env) pathsBetween(t testing.TB, src, dst addr.IA) []*FwdPath {
	t.Helper()
	term := func(origin, d addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, ent := range e.run.Servers[d].Store().Entries(e.run.End, origin) {
			tp, err := ent.PCB.Extend(e.infra.SignerFor(d), addr.IA{}, ent.Ingress, 0, nil, 1472)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tp)
		}
		return out
	}
	var fps []*FwdPath
	for _, c := range combinator.AllPaths(term(a2, src), nil, term(a2, dst)) {
		fp, err := Authorize(c, e.infra.ForwardingKey)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
	}
	return fps
}

func newEnv(t testing.TB) *env {
	t.Helper()
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		t.Fatal(err)
	}
	cfg := beacon.DefaultRunConfig(topo, beacon.IntraMode, core.NewBaseline(5), 20)
	cfg.Duration = time.Hour
	cfg.Infra = infra
	run, err := beacon.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	term := func(origin, dst addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range run.Servers[dst].Store().Entries(run.End, origin) {
			tp, err := e.PCB.Extend(infra.SignerFor(dst), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tp)
		}
		return out
	}
	// Paths A-6 -> A-4: up segments to A-2 joined with down segments to
	// A-4, plus shortcuts.
	cands := combinator.AllPaths(term(a2, a6), nil, term(a2, a4))
	if len(cands) == 0 {
		t.Fatal("no candidate paths")
	}
	s := &sim.Simulator{}
	net := sim.NewNetwork(s, topo, time.Millisecond)
	fab := NewFabric(net, infra.ForwardingKey)
	var fps []*FwdPath
	for _, c := range cands {
		fp, err := Authorize(c, infra.ForwardingKey)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
	}
	return &env{topo: topo, infra: infra, sim: s, fabric: fab, paths: fps, run: run}
}

func TestAuthorizeAndVerify(t *testing.T) {
	e := newEnv(t)
	fp := e.paths[0]
	for i := range fp.Hops {
		if err := fp.Verify(i, e.infra.ForwardingKey); err != nil {
			t.Errorf("hop %d: %v", i, err)
		}
	}
	if err := fp.Verify(99, e.infra.ForwardingKey); err == nil {
		t.Error("out-of-range verify must fail")
	}
	// Tampering with the egress interface breaks the MAC.
	mut := &FwdPath{Hops: append([]HopField(nil), fp.Hops...)}
	mut.Hops[0].Hop.Out = 42
	if err := mut.Verify(0, e.infra.ForwardingKey); err == nil {
		t.Error("tampered hop field must fail verification")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	e := newEnv(t)
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)

	var got *Packet
	e.fabric.OnDeliver(a4, func(p *Packet) { got = p })

	pkt := &Packet{Src: src, Dst: dst, Path: e.paths[0], Payload: []byte("hello scion")}
	if err := e.fabric.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if string(got.Payload) != "hello scion" {
		t.Errorf("payload = %q", got.Payload)
	}
	if e.fabric.Delivered != 1 || e.fabric.DroppedBadMAC != 0 {
		t.Errorf("stats: %+v", e.fabric)
	}
}

func TestInjectValidation(t *testing.T) {
	e := newEnv(t)
	if err := e.fabric.Inject(&Packet{}); err == nil {
		t.Error("pathless packet accepted")
	}
	bad := &Packet{Src: addr.HostIP4(a1, 1, 1, 1, 1), Path: e.paths[0]}
	if err := e.fabric.Inject(bad); err == nil {
		t.Error("source/path mismatch accepted")
	}
}

func TestForgedPacketDropped(t *testing.T) {
	e := newEnv(t)
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)
	forged := &FwdPath{Hops: append([]HopField(nil), e.paths[0].Hops...)}
	forged.Hops[1].MAC[0] ^= 0xff
	pkt := &Packet{Src: src, Dst: dst, Path: forged}
	if err := e.fabric.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	if e.fabric.Delivered != 0 {
		t.Error("forged packet delivered")
	}
	if e.fabric.DroppedBadMAC == 0 {
		t.Error("forged packet not counted as bad MAC")
	}
}

func TestLinkFailureTriggersRevocationAndFailover(t *testing.T) {
	e := newEnv(t)
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)

	ep := NewEndpoint(e.fabric, src)
	ep.SetPaths(e.paths)
	delivered := 0
	e.fabric.OnDeliver(a4, func(p *Packet) { delivered++ })
	var revokedLink seg.LinkKey
	ep.OnRevocation = func(l seg.LinkKey) { revokedLink = l }

	// Fail the first link of the active path.
	first := ep.ActivePath().Hops[0]
	link := e.topo.LinkByIf(first.Hop.IA, first.Hop.Out)
	if link == nil {
		t.Fatal("no first link")
	}
	e.fabric.FailLink(link.ID)

	if err := ep.Send(dst, []byte("x")); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	if delivered != 0 {
		t.Fatal("packet delivered over failed link")
	}
	if revokedLink == (seg.LinkKey{}) {
		t.Fatal("no revocation received")
	}
	if ep.ActivePath() == nil {
		t.Fatal("no failover path")
	}
	// The new active path avoids the failed link.
	for _, h := range ep.ActivePath().Hops {
		l := e.topo.LinkByIf(h.Hop.IA, h.Hop.Out)
		if l != nil && l.ID == link.ID {
			t.Error("failover path still uses failed link")
		}
	}
	// Retransmit: must arrive now.
	if err := ep.Send(dst, []byte("retry")); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d after failover", delivered)
	}
	if ep.Failovers == 0 {
		t.Error("failover not counted")
	}
}

func TestEndpointExhaustion(t *testing.T) {
	e := newEnv(t)
	src := addr.HostIP4(a6, 10, 0, 0, 1)
	dst := addr.HostIP4(a4, 10, 0, 0, 2)
	ep := NewEndpoint(e.fabric, src)
	ep.SetPaths(e.paths[:1])

	first := ep.ActivePath().Hops[0]
	link := e.topo.LinkByIf(first.Hop.IA, first.Hop.Out)
	e.fabric.FailLink(link.ID)
	if err := ep.Send(dst, nil); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	if ep.ActivePath() != nil {
		t.Error("exhausted endpoint still has active path")
	}
	if err := ep.Send(dst, nil); err == nil {
		t.Error("send without usable path must fail")
	}
	if ep.Exhausted == 0 {
		t.Error("exhaustion not counted")
	}
}

func TestReversePath(t *testing.T) {
	e := newEnv(t)
	fp := e.paths[0]
	rev, err := fp.Reverse(e.infra.ForwardingKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Hops) != len(fp.Hops) {
		t.Fatal("hop count changed")
	}
	if rev.Hops[0].Hop.IA != fp.Hops[len(fp.Hops)-1].Hop.IA {
		t.Error("reverse does not start at the old destination")
	}
	for i := range rev.Hops {
		if err := rev.Verify(i, e.infra.ForwardingKey); err != nil {
			t.Errorf("reverse hop %d: %v", i, err)
		}
	}
	// Send a packet back along the reversed path.
	var got *Packet
	e.fabric.OnDeliver(a6, func(p *Packet) { got = p })
	pkt := &Packet{
		Src:  addr.HostIP4(rev.Hops[0].Hop.IA, 1, 1, 1, 1),
		Dst:  addr.HostIP4(a6, 2, 2, 2, 2),
		Path: rev,
	}
	if err := e.fabric.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	e.sim.Run()
	if got == nil {
		t.Error("reverse packet not delivered")
	}
}

func TestAuthorizeUnknownAS(t *testing.T) {
	e := newEnv(t)
	p := &combinator.Path{Hops: []combinator.Hop{{IA: addr.MustIA(9, 9), In: 0, Out: 1}}}
	if _, err := Authorize(p, e.infra.ForwardingKey); err == nil {
		t.Error("unknown AS must fail authorization")
	}
}

func TestPacketWireLen(t *testing.T) {
	e := newEnv(t)
	pkt := &Packet{
		Src:     addr.HostIP4(a6, 1, 1, 1, 1),
		Dst:     addr.HostIP4(a4, 2, 2, 2, 2),
		Path:    e.paths[0],
		Payload: make([]byte, 100),
	}
	// Exact slayers encoding: common header, two IAs, two padded IPv4
	// hosts, payload, path header.
	want := 12 + 16 + 4 + 4 + 100 + e.paths[0].WireLen()
	if got := pkt.WireLen(); got != want {
		t.Errorf("WireLen = %d, want %d", got, want)
	}
	scmp := &SCMP{Type: SCMPRevokedLink, Orig: pkt}
	if scmp.WireLen() <= 0 || scmp.WireLen() >= pkt.WireLen() {
		t.Errorf("SCMP wire len %d out of range", scmp.WireLen())
	}
	if SCMPRevokedLink.String() != "revoked-link" || SCMPType(9).String() == "" {
		t.Error("SCMP type strings")
	}
}
