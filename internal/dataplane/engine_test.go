package dataplane

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/chaos"
	"scionmpr/internal/sim"
	"scionmpr/internal/slayers"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// The wire engine is a chaos fault target like the fabric and the
// simulated network.
var _ chaos.FaultTarget = (*Engine)(nil)

// newWireEnv extends the shared beaconing env with a wire engine over
// the same topology and keys.
func newWireEnv(t *testing.T) (*env, *Engine) {
	t.Helper()
	e := newEnv(t)
	return e, NewEngine(e.topo, e.infra.ForwardingKey)
}

func testPacket(e *env, pathIdx int, payload []byte, flow uint32) *Packet {
	return &Packet{
		Src:     addr.HostIP4(a6, 10, 0, 0, 1),
		Dst:     addr.HostIP4(a4, 10, 0, 0, 2),
		Path:    e.paths[pathIdx],
		Payload: payload,
		FlowID:  flow,
	}
}

func TestEngineDelivery(t *testing.T) {
	e, eng := newWireEnv(t)
	var gotPayload []byte
	var gotSrc, gotDst addr.Host
	eng.OnDeliver(a4, func(s *slayers.SCION) {
		gotPayload = append([]byte(nil), s.Payload()...)
		gotSrc, gotDst = s.SrcHost, s.DstHost
	})
	pkt := testPacket(e, 0, []byte("hello wire"), 7)
	if err := eng.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if string(gotPayload) != "hello wire" {
		t.Fatalf("payload = %q", gotPayload)
	}
	if !gotSrc.Equal(pkt.Src) || !gotDst.Equal(pkt.Dst) {
		t.Errorf("hosts: %s -> %s", gotSrc, gotDst)
	}
	st := eng.Stats()
	if st.Delivered != 1 || st.Forwarded != uint64(len(e.paths[0].Hops)-1) {
		t.Errorf("stats %+v (path has %d hops)", st, len(e.paths[0].Hops))
	}
	if st.DroppedMalformed != 0 || st.DroppedBadMAC != 0 {
		t.Errorf("unexpected drops: %+v", st)
	}
}

func TestEngineInjectBytes(t *testing.T) {
	e, eng := newWireEnv(t)
	delivered := 0
	eng.OnDeliver(a4, func(s *slayers.SCION) { delivered++ })
	pkt := testPacket(e, 0, []byte("raw bytes"), 9)
	buf := make([]byte, pkt.WireLen())
	var s slayers.SCION
	n, err := EncodePacket(&s, pkt, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("EncodePacket wrote %d bytes, WireLen says %d", n, len(buf))
	}
	if err := eng.InjectBytes(buf, 0); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	if err := eng.InjectBytes(buf[:len(buf)-1], 0); err == nil {
		t.Error("truncated packet accepted")
	}
	if err := eng.InjectBytes(buf, uint16(len(buf)-1)); err == nil {
		t.Error("over-MTU packet accepted")
	}
	if eng.Stats().DroppedTooBig != 1 {
		t.Errorf("droppedTooBig = %d", eng.Stats().DroppedTooBig)
	}
}

func TestEngineBadMAC(t *testing.T) {
	e, eng := newWireEnv(t)
	var scmps []*WireSCMPMsg
	eng.OnSCMP(a6, func(m *WireSCMPMsg) {
		cp := *m
		scmps = append(scmps, &cp)
	})

	// Tampered transit hop: dropped at the transit AS, SCMP walks back.
	fp := &FwdPath{Hops: append([]HopField(nil), e.paths[0].Hops...), MTU: e.paths[0].MTU}
	fp.Hops[1].MAC[0] ^= 0xff
	pkt := testPacket(e, 0, []byte("tampered"), 3)
	pkt.Path = fp
	if err := eng.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	st := eng.Stats()
	if st.DroppedBadMAC != 1 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(scmps) != 1 || scmps[0].Type != SCMPBadMAC || scmps[0].FlowID != 3 {
		t.Fatalf("scmp = %+v", scmps)
	}
	if scmps[0].SrcIA != a6 || scmps[0].DstIA != a4 {
		t.Errorf("quoted IAs: %s -> %s", scmps[0].SrcIA, scmps[0].DstIA)
	}

	// Tampered hop 0: silent drop at the source, no SCMP (as in the
	// fabric).
	scmps = nil
	fp0 := &FwdPath{Hops: append([]HopField(nil), e.paths[0].Hops...), MTU: e.paths[0].MTU}
	fp0.Hops[0].MAC[3] ^= 1
	pkt0 := testPacket(e, 0, nil, 4)
	pkt0.Path = fp0
	if err := eng.Inject(pkt0); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if got := eng.Stats().DroppedBadMAC; got != 2 {
		t.Errorf("droppedBadMAC = %d", got)
	}
	if len(scmps) != 0 {
		t.Errorf("source-side bad MAC emitted SCMP %+v", scmps[0])
	}
}

func TestEngineRevocation(t *testing.T) {
	e, eng := newWireEnv(t)
	var revs []*WireSCMPMsg
	eng.OnSCMP(a6, func(m *WireSCMPMsg) {
		cp := *m
		revs = append(revs, &cp)
	})
	// Fail the egress link of the transit hop on the 3-hop path.
	hop := e.paths[1].Hops[1].Hop
	link := e.topo.LinkByIf(hop.IA, hop.Out)
	if link == nil {
		t.Fatal("no link for hop 1 egress")
	}
	eng.FailLink(link.ID)
	if !eng.Failed(link.ID) {
		t.Fatal("FailLink not visible")
	}
	if err := eng.Inject(testPacket(e, 1, []byte("x"), 11)); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	st := eng.Stats()
	if st.Revocations != 1 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(revs) != 1 {
		t.Fatalf("%d SCMP messages at source", len(revs))
	}
	if revs[0].Type != SCMPRevokedLink || revs[0].Link.IA != hop.IA || revs[0].Link.If != hop.Out {
		t.Errorf("revocation %+v, want link %s#%s", revs[0], hop.IA, hop.Out)
	}
	if revs[0].Offender != hop.IA {
		t.Errorf("offender %s, want %s", revs[0].Offender, hop.IA)
	}

	// Restore and the same packet goes through.
	eng.RestoreLink(link.ID)
	if err := eng.Inject(testPacket(e, 1, []byte("x"), 12)); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if eng.Stats().Delivered != 1 {
		t.Errorf("post-restore stats %+v", eng.Stats())
	}
}

func TestEngineGrayLoss(t *testing.T) {
	e, eng := newWireEnv(t)
	var scmps int
	eng.OnSCMP(a6, func(m *WireSCMPMsg) { scmps++ })
	hop := e.paths[0].Hops[0].Hop
	link := e.topo.LinkByIf(hop.IA, hop.Out)
	eng.SetLinkLoss(link.ID, 1.0)
	if eng.LinkLoss(link.ID) != 1.0 {
		t.Fatal("loss not recorded")
	}
	if err := eng.Inject(testPacket(e, 0, []byte("x"), 21)); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	st := eng.Stats()
	if st.DroppedGray != 1 || st.Delivered != 0 || scmps != 0 {
		t.Fatalf("gray loss must shed silently: %+v, %d scmps", st, scmps)
	}
	eng.SetLinkLoss(link.ID, 0)
	if eng.LinkLoss(link.ID) != 0 {
		t.Error("loss not cleared")
	}
}

func TestEngineNoRoute(t *testing.T) {
	e, eng := newWireEnv(t)
	var scmps []*WireSCMPMsg
	eng.OnSCMP(a6, func(m *WireSCMPMsg) {
		cp := *m
		scmps = append(scmps, &cp)
	})
	// Re-MAC the transit hop with a bogus egress interface: the MAC
	// verifies but the interface attaches to nothing.
	fp := &FwdPath{Hops: append([]HopField(nil), e.paths[1].Hops...), MTU: e.paths[1].MTU}
	h := fp.Hops[1].Hop
	h.Out = 63
	fp.Hops[1] = HopField{Hop: h, MAC: hopMAC(e.infra.ForwardingKey(h.IA), h)}
	pkt := testPacket(e, 1, []byte("x"), 31)
	pkt.Path = fp
	if err := eng.Inject(pkt); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	st := eng.Stats()
	if st.DroppedNoRoute != 1 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(scmps) != 1 || scmps[0].Type != SCMPDestUnreachable {
		t.Fatalf("scmp = %+v", scmps)
	}
}

func TestEngineMTU(t *testing.T) {
	e, eng := newWireEnv(t)
	fp := e.paths[0]
	if fp.MTU == 0 {
		t.Skip("path has no MTU")
	}
	room := int(fp.MTU) - (testPacket(e, 0, nil, 0)).WireLen()
	over := testPacket(e, 0, make([]byte, room+1), 41)
	if err := eng.Inject(over); err == nil {
		t.Error("over-MTU packet accepted")
	}
	if eng.Stats().DroppedTooBig != 1 {
		t.Errorf("droppedTooBig = %d", eng.Stats().DroppedTooBig)
	}
	exact := testPacket(e, 0, make([]byte, room), 42)
	delivered := 0
	eng.OnDeliver(a4, func(s *slayers.SCION) { delivered++ })
	if err := eng.Inject(exact); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if delivered != 1 {
		t.Errorf("exact-MTU packet not delivered")
	}
}

func TestEngineWorkersAndModes(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		batch   int
		noMAC   bool
	}{
		{"w1-batch", 1, 32, false},
		{"w4-batch", 4, 8, false},
		{"w2-single", 2, 1, false},
		{"w1-nomac", 1, 32, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, eng := newWireEnv(t)
			eng.Workers = tc.workers
			eng.BatchSize = tc.batch
			eng.DisableMAC = tc.noMAC
			total := 200
			var delivered atomic.Int64
			eng.OnDeliver(a4, func(s *slayers.SCION) { delivered.Add(1) })
			for i := 0; i < total; i++ {
				if err := eng.Inject(testPacket(e, 0, []byte("n"), uint32(i))); err != nil {
					t.Fatal(err)
				}
			}
			eng.Flush()
			if delivered.Load() != int64(total) {
				t.Fatalf("delivered %d of %d", delivered.Load(), total)
			}
			st := eng.Stats()
			if st.Delivered != uint64(total) {
				t.Errorf("stats %+v", st)
			}
			if tc.batch > 1 && st.Batches == 0 {
				t.Error("no batches counted")
			}
		})
	}
}

func TestEngineChaosSchedule(t *testing.T) {
	e, eng := newWireEnv(t)
	hop := e.paths[1].Hops[1].Hop
	link := e.topo.LinkByIf(hop.IA, hop.Out)
	if link == nil {
		t.Fatal("no transit link")
	}

	s := &sim.Simulator{}
	ce := chaos.NewEngine(s, eng)
	sched := &chaos.Schedule{
		Seed: 1,
		End:  sim.Time(time.Minute),
		Events: []chaos.Event{
			{Kind: chaos.Flap, Link: link.ID, At: sim.Time(time.Second), Down: 10 * time.Second},
			{Kind: chaos.Gray, Link: link.ID, At: sim.Time(20 * time.Second), Down: 5 * time.Second, Rate: 1.0},
			{Kind: chaos.Spike, Link: link.ID, At: sim.Time(30 * time.Second), Down: time.Second, Delay: time.Millisecond},
		},
	}
	if err := ce.Apply(sched); err != nil {
		t.Fatal(err)
	}

	revoked, grayed := 0, 0
	eng.OnSCMP(a6, func(m *WireSCMPMsg) {
		if m.Type == SCMPRevokedLink {
			revoked++
		}
	})

	inject := func(flow uint32) {
		t.Helper()
		if err := eng.Inject(testPacket(e, 1, []byte("c"), flow)); err != nil {
			t.Fatal(err)
		}
		eng.Flush()
	}

	s.RunUntil(sim.Time(2 * time.Second)) // flap active
	if !eng.Failed(link.ID) {
		t.Fatal("chaos flap did not fail the engine link")
	}
	inject(1)
	if revoked != 1 {
		t.Errorf("no revocation during flap")
	}

	s.RunUntil(sim.Time(15 * time.Second)) // flap over
	if eng.Failed(link.ID) {
		t.Fatal("flap did not restore")
	}

	s.RunUntil(sim.Time(21 * time.Second)) // gray window
	if eng.LinkLoss(link.ID) != 1.0 {
		t.Fatalf("gray loss = %v", eng.LinkLoss(link.ID))
	}
	before := eng.Stats().DroppedGray
	inject(2)
	if eng.Stats().DroppedGray != before+1 {
		t.Error("no gray drop during gray window")
	}
	grayed++

	s.RunUntil(sim.Time(30500 * time.Millisecond)) // spike window: recorded, no behavior
	if eng.LinkDelay(link.ID) == 0 {
		t.Error("spike not recorded")
	}
	s.Run()
	if eng.LinkLoss(link.ID) != 0 || eng.Failed(link.ID) {
		t.Error("faults not fully restored at end of schedule")
	}
	inject(3)
	if eng.Stats().Delivered == 0 {
		t.Error("packet not delivered after schedule end")
	}
	_ = grayed
}

func TestEngineTelemetry(t *testing.T) {
	e, eng := newWireEnv(t)
	reg := telemetry.NewRegistry()
	eng.SetTelemetry(reg)
	if err := eng.Inject(testPacket(e, 0, []byte("t"), 1)); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{"engine_delivered_total 1", "engine_forwarded_total", "engine_batches_total"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("telemetry missing %q:\n%s", want, out)
		}
	}
}

func TestRingOverflow(t *testing.T) {
	r := newRing(4)
	pool := newFramePool()
	var frames []*frame
	for i := 0; i < 10; i++ {
		f := pool.get(1)
		f.b[0] = byte(i)
		frames = append(frames, f)
		r.push(f)
	}
	got := map[byte]bool{}
	for i := 0; i < 10; i++ {
		f := r.pop()
		if f == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		got[f.b[0]] = true
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d distinct frames", len(got))
	}
	if r.pop() != nil {
		t.Error("empty ring popped a frame")
	}
	_ = frames
}

func TestLinkDelayBounds(t *testing.T) {
	_, eng := newWireEnv(t)
	// Out-of-range link IDs must be ignored, not panic.
	bad := topology.LinkID(9999)
	eng.FailLink(bad)
	eng.RestoreLink(bad)
	eng.SetLinkLoss(bad, 0.5)
	eng.SetLinkDelay(bad, time.Second)
	if eng.Failed(bad) || eng.LinkLoss(bad) != 0 || eng.LinkDelay(bad) != 0 {
		t.Error("out-of-range link state recorded")
	}
}
