// Package bgpsec derives BGPsec control-plane overhead from a BGP
// simulation, following the paper's §5.2 methodology: BGPsec update
// messages are sized per RFC 8205 (a Secure_Path segment and a signature
// per AS hop), prefixes cannot be aggregated (every prefix travels in its
// own signed update), overhead is multiplied by each origin's prefix
// count, extrapolated to the full Internet topology, and scaled to a
// month assuming the daily re-beaconing cadence of RFC 8374.
package bgpsec

import (
	"scionmpr/internal/addr"
	"scionmpr/internal/bgp"
)

// Sizing constants per RFC 8205 with ECDSA P-384 (the paper's signature
// choice for both SCION and BGPsec).
const (
	// SecurePathSegmentLen: pCount (1) + flags (1) + AS number (4).
	SecurePathSegmentLen = 6
	// SignatureSegmentLen: SKI (20) + sig length (2) + ECDSA-P384
	// signature (96, fixed-width r||s).
	SignatureSegmentLen = 20 + 2 + 96
	// fixedLen: BGP header (19), withdrawn+attr length fields (4),
	// ORIGIN (4), NEXT_HOP (7), MP_REACH overhead (9), NLRI (5),
	// Secure_Path and Signature_Block headers (2 + 3).
	fixedLen = 19 + 4 + 4 + 7 + 9 + 5 + 2 + 3
)

// UpdateWireLen is the size of one BGPsec update announcing one prefix
// over a path of the given AS length.
func UpdateWireLen(pathLen int) int {
	return fixedLen + pathLen*(SecurePathSegmentLen+SignatureSegmentLen)
}

// Accounting scales a BGP convergence simulation into monthly BGPsec
// bytes per monitor.
type Accounting struct {
	// Prefixes is the per-origin prefix count.
	Prefixes map[addr.IA]int
	// ChurnPerMonth is the table propagation cadence (30 = daily,
	// RFC 8374).
	ChurnPerMonth float64
	// Extrapolation multiplies totals to cover origins outside the
	// simulated topology (the paper extends the 12k-AS geo topology to
	// the full AS-rel topology by attributing out-of-topology prefixes
	// to their lowest-tier in-topology provider with a path stretched by
	// the hop difference; the aggregate effect is a multiplicative
	// factor >= 1).
	Extrapolation float64
}

// DefaultAccounting mirrors bgp.DefaultAccounting for BGPsec.
func DefaultAccounting(prefixes map[addr.IA]int) Accounting {
	return Accounting{Prefixes: prefixes, ChurnPerMonth: 30, Extrapolation: 1}
}

func (a Accounting) prefixCount(origin addr.IA) float64 {
	if a.Prefixes == nil {
		return 1
	}
	if n, ok := a.Prefixes[origin]; ok && n > 0 {
		return float64(n)
	}
	return 1
}

// MonthlyBytes estimates the monthly BGPsec bytes received by a speaker:
// every received announcement event is replayed once per prefix of its
// origin in a full, unaggregatable signed update.
func (a Accounting) MonthlyBytes(sp *bgp.Speaker) float64 {
	churn := a.ChurnPerMonth
	if churn <= 0 {
		churn = 30
	}
	extra := a.Extrapolation
	if extra < 1 {
		extra = 1
	}
	total := 0.0
	for origin, st := range sp.Received {
		if st.Announcements == 0 {
			continue
		}
		avgLen := float64(st.PathLenSum) / float64(st.Announcements)
		perPrefix := float64(fixedLen) + avgLen*float64(SecurePathSegmentLen+SignatureSegmentLen)
		total += float64(st.Announcements) * perPrefix * a.prefixCount(origin)
	}
	return total * churn * extra
}
