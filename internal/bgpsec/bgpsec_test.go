package bgpsec

import (
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/bgp"
	"scionmpr/internal/topology"
)

func ia(isd addr.ISD, as uint64) addr.IA { return addr.IA{ISD: isd, AS: addr.AS(as)} }

func smallTopo() *topology.Graph {
	g := topology.New()
	for _, as := range []uint64{1, 2, 3} {
		g.AddAS(ia(1, as), false)
	}
	g.MustConnect(ia(1, 1), ia(1, 2), topology.ProviderOf)
	g.MustConnect(ia(1, 2), ia(1, 3), topology.ProviderOf)
	return g
}

func TestUpdateWireLenGrowsPerHop(t *testing.T) {
	l1 := UpdateWireLen(1)
	l2 := UpdateWireLen(2)
	if l2-l1 != SecurePathSegmentLen+SignatureSegmentLen {
		t.Errorf("per-hop growth = %d", l2-l1)
	}
	// RFC 8205 with P-384: one hop costs 124 bytes of security payload.
	if SecurePathSegmentLen+SignatureSegmentLen != 124 {
		t.Errorf("per-hop cost = %d", SecurePathSegmentLen+SignatureSegmentLen)
	}
}

func TestBGPsecDwarfsBGP(t *testing.T) {
	res, err := bgp.Run(bgp.DefaultConfig(smallTopo()))
	if err != nil {
		t.Fatal(err)
	}
	prefixes := bgp.SyntheticPrefixCounts(res.Cfg.Topo)
	bgpAcct := bgp.MonthlyAccounting{Prefixes: prefixes, ChurnPerMonth: 30}
	secAcct := DefaultAccounting(prefixes)
	for _, sp := range res.Speakers {
		b := bgpAcct.BGPMonthlyBytes(sp)
		s := secAcct.MonthlyBytes(sp)
		if s <= b {
			t.Errorf("%s: BGPsec %v not above BGP %v", sp.Local, s, b)
		}
		// The paper reports about one order of magnitude; allow a wide
		// band but require a clear separation.
		if s < 2*b {
			t.Errorf("%s: BGPsec/BGP ratio only %.2f", sp.Local, s/b)
		}
	}
}

func TestAccountingKnobs(t *testing.T) {
	res, err := bgp.Run(bgp.DefaultConfig(smallTopo()))
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Speakers[ia(1, 3)]
	base := DefaultAccounting(nil).MonthlyBytes(sp)
	if base <= 0 {
		t.Fatal("zero baseline bytes")
	}
	doubled := Accounting{ChurnPerMonth: 60, Extrapolation: 1}.MonthlyBytes(sp)
	if doubled != 2*base {
		t.Errorf("churn scaling: %v vs %v", doubled, base)
	}
	extra := Accounting{ChurnPerMonth: 30, Extrapolation: 3}.MonthlyBytes(sp)
	if extra != 3*base {
		t.Errorf("extrapolation scaling: %v vs %v", extra, base)
	}
	// Degenerate knobs fall back to defaults.
	def := Accounting{}.MonthlyBytes(sp)
	if def != base {
		t.Errorf("default fallback: %v vs %v", def, base)
	}
}
