// Package trust implements the SCION control-plane PKI needed for
// beaconing: per-ISD Trust Root Configurations (TRCs) listing the core
// ASes and their public keys, AS certificates issued by core ASes, and
// message signing/verification.
//
// Two signer implementations are provided. ECDSA P-384 (the algorithm the
// paper assumes for both SCION and BGPsec overhead, §5.2) is used for
// correctness tests and small scenarios. For Internet-scale simulations,
// SizedSigner produces deterministic signatures with the identical wire
// size (96-byte fixed-width r||s) at negligible CPU cost, so overhead
// measurements are unaffected.
package trust

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/sha512"
	"errors"
	"fmt"
	"hash"

	"scionmpr/internal/addr"
)

// SignatureLen is the wire size of a signature: fixed-width r||s for
// ECDSA P-384 (two 48-byte scalars).
const SignatureLen = 96

// Signer signs control-plane messages on behalf of one AS.
type Signer interface {
	// IA is the AS this signer signs for.
	IA() addr.IA
	// Sign returns a SignatureLen-byte signature over msg.
	Sign(msg []byte) ([]byte, error)
}

// AppendSigner is implemented by signers that can append the signature to
// a caller-provided buffer. Beaconing signs one message per extension;
// reusing recycled signature buffers keeps the steady-state hot path off
// the allocator entirely.
type AppendSigner interface {
	Signer
	// AppendSign appends a SignatureLen-byte signature over msg to dst
	// and returns the extended buffer.
	AppendSign(dst, msg []byte) ([]byte, error)
}

// Verifier checks a signature allegedly produced by ia over msg.
type Verifier interface {
	Verify(ia addr.IA, msg, sig []byte) error
}

// Errors returned by verification.
var (
	ErrBadSignature  = errors.New("trust: signature verification failed")
	ErrUnknownSigner = errors.New("trust: no key material for signer")
	ErrBadLength     = errors.New("trust: wrong signature length")
)

// ECDSASigner signs with a real ECDSA P-384 private key.
type ECDSASigner struct {
	ia  addr.IA
	key *ecdsa.PrivateKey
}

// NewECDSASigner generates a fresh P-384 key pair for ia.
func NewECDSASigner(ia addr.IA) (*ECDSASigner, error) {
	key, err := ecdsa.GenerateKey(elliptic.P384(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("trust: generating key for %s: %w", ia, err)
	}
	return &ECDSASigner{ia: ia, key: key}, nil
}

// IA implements Signer.
func (s *ECDSASigner) IA() addr.IA { return s.ia }

// Public returns the signer's public key for certificate issuance.
func (s *ECDSASigner) Public() *ecdsa.PublicKey { return &s.key.PublicKey }

// Sign implements Signer with fixed-width r||s encoding.
func (s *ECDSASigner) Sign(msg []byte) ([]byte, error) {
	h := sha512.Sum384(msg)
	r, ss, err := ecdsa.Sign(rand.Reader, s.key, h[:])
	if err != nil {
		return nil, fmt.Errorf("trust: signing for %s: %w", s.ia, err)
	}
	out := make([]byte, SignatureLen)
	r.FillBytes(out[:48])
	ss.FillBytes(out[48:])
	return out, nil
}

// SizedSigner produces deterministic HMAC-based pseudo-signatures of the
// exact ECDSA P-384 wire size. Verification recomputes the MAC with the
// per-AS secret held by the verifying Infra — sound inside a simulation
// where the Infra is the trusted key registry.
//
// A signer caches its keyed HMAC state across Sign calls. It is owned by
// exactly one AS's control-plane actor and therefore needs no locking,
// even when the simulator runs actors in parallel.
type SizedSigner struct {
	ia     addr.IA
	secret []byte
	mac    hash.Hash
	// block is the MAC expansion scratch. Passing a local array into the
	// hash.Hash interface makes it escape, costing one heap allocation
	// per signature; keeping it on the signer (single-owner, see above)
	// keeps AppendSign allocation-free.
	block [sha256.Size + 1]byte
}

// IA implements Signer.
func (s *SizedSigner) IA() addr.IA { return s.ia }

// Sign implements Signer.
func (s *SizedSigner) Sign(msg []byte) ([]byte, error) {
	if s.mac == nil {
		s.mac = hmac.New(sha256.New, s.secret)
	}
	return appendSizedMACTo(make([]byte, 0, SignatureLen), s.mac, msg, &s.block), nil
}

// AppendSign implements AppendSigner, writing the signature into dst's
// spare capacity when it has any.
func (s *SizedSigner) AppendSign(dst, msg []byte) ([]byte, error) {
	if s.mac == nil {
		s.mac = hmac.New(sha256.New, s.secret)
	}
	return appendSizedMACTo(dst, s.mac, msg, &s.block), nil
}

// sizedMAC is the stateless form used by verification, which may run
// concurrently against a shared Infra.
func sizedMAC(secret, msg []byte) []byte {
	var block [sha256.Size + 1]byte
	return appendSizedMACTo(make([]byte, 0, SignatureLen), hmac.New(sha256.New, secret), msg, &block)
}

// appendSizedMACTo expands the keyed MAC to SignatureLen bytes appended
// to dst: one keyed pass over the message yields a pseudorandom key,
// expanded HKDF-style with short fixed-size hashes. Signing therefore
// traverses msg exactly once however many output blocks SignatureLen
// requires — beacon bodies grow with the hop count, and this sits on the
// Extend hot path.
func appendSizedMACTo(dst []byte, m hash.Hash, msg []byte, block *[sha256.Size + 1]byte) []byte {
	m.Reset()
	m.Write(msg)
	m.Sum(block[:0])
	base := len(dst)
	for i := 0; len(dst)-base < SignatureLen; i++ {
		block[sha256.Size] = byte(i)
		sum := sha256.Sum256(block[:])
		dst = append(dst, sum[:]...)
	}
	return dst[:base+SignatureLen]
}
