package trust

import (
	"crypto/ecdsa"
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"math/big"
	"sort"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

// TRC is an ISD's Trust Root Configuration: the versioned list of core
// ASes whose keys anchor all certificate chains of the ISD (paper §2.1).
type TRC struct {
	ISD     addr.ISD
	Version uint32
	Cores   []addr.IA
}

// HasCore reports whether ia is a trust-root core AS of this TRC.
func (t *TRC) HasCore(ia addr.IA) bool {
	for _, c := range t.Cores {
		if c == ia {
			return true
		}
	}
	return false
}

// Certificate binds an AS to its key material, issued and signed by a
// core AS of its ISD. In sized mode the public key is elided but the
// certificate retains its realistic wire size for overhead accounting.
type Certificate struct {
	Subject   addr.IA
	Issuer    addr.IA
	PublicKey *ecdsa.PublicKey // nil in sized mode
	Signature []byte
}

// CertificateWireLen is the approximate size of a SCION control-plane AS
// certificate (subject, issuer, validity, P-384 public key, signature);
// used when certificates travel in control messages.
const CertificateWireLen = 8 + 8 + 8 + 97 + SignatureLen

// certBody serializes the signed portion of a certificate.
func certBody(subject, issuer addr.IA, pub *ecdsa.PublicKey) []byte {
	buf := make([]byte, 16, 16+97)
	binary.BigEndian.PutUint64(buf[0:8], subject.Uint64())
	binary.BigEndian.PutUint64(buf[8:16], issuer.Uint64())
	if pub != nil {
		buf = append(buf, pub.X.Bytes()...)
		buf = append(buf, pub.Y.Bytes()...)
	}
	return buf
}

// Mode selects the signature implementation of an Infra.
type Mode int

const (
	// Sized uses deterministic fixed-size pseudo-signatures (fast,
	// correct wire sizes) — the default for Internet-scale simulation.
	Sized Mode = iota
	// ECDSA uses real P-384 keys and signatures.
	ECDSA
)

// Infra is the simulation-wide key and certificate registry: it holds one
// signer per AS, the TRC of every ISD, and the issued AS certificates,
// and acts as the Verifier for all control-plane messages.
type Infra struct {
	mode    Mode
	signers map[addr.IA]Signer
	secrets map[addr.IA][]byte // sized mode
	fwdKeys map[addr.IA][]byte // derived once; read per hop-field MAC
	pubs    map[addr.IA]*ecdsa.PublicKey
	trcs    map[addr.ISD]*TRC
	certs   map[addr.IA]*Certificate
}

// NewInfra builds the key material for every AS in topo: a TRC per ISD
// listing that ISD's core ASes, one signer per AS, and an AS certificate
// for every non-core AS issued by the lowest-numbered core AS of its ISD.
func NewInfra(topo *topology.Graph, mode Mode) (*Infra, error) {
	inf := &Infra{
		mode:    mode,
		signers: map[addr.IA]Signer{},
		secrets: map[addr.IA][]byte{},
		fwdKeys: map[addr.IA][]byte{},
		pubs:    map[addr.IA]*ecdsa.PublicKey{},
		trcs:    map[addr.ISD]*TRC{},
		certs:   map[addr.IA]*Certificate{},
	}
	for _, ia := range topo.IAs() {
		if err := inf.addAS(ia); err != nil {
			return nil, err
		}
		if topo.AS(ia).Core {
			trc := inf.trcs[ia.ISD]
			if trc == nil {
				trc = &TRC{ISD: ia.ISD, Version: 1}
				inf.trcs[ia.ISD] = trc
			}
			trc.Cores = append(trc.Cores, ia)
		}
	}
	for _, trc := range inf.trcs {
		sort.Slice(trc.Cores, func(i, j int) bool { return trc.Cores[i].Less(trc.Cores[j]) })
	}
	// Issue certificates for non-core ASes.
	for _, ia := range topo.IAs() {
		if topo.AS(ia).Core {
			continue
		}
		trc := inf.trcs[ia.ISD]
		if trc == nil || len(trc.Cores) == 0 {
			return nil, fmt.Errorf("trust: ISD %d of %s has no core AS to issue certificates", ia.ISD, ia)
		}
		if err := inf.issue(ia, trc.Cores[0]); err != nil {
			return nil, err
		}
	}
	return inf, nil
}

func (inf *Infra) addAS(ia addr.IA) error {
	// Derived once here: border routers read this key on every hop-field
	// MAC, which dominates the data-plane hot path under load.
	var kb [40]byte
	fh := sha512.Sum384(ia.AppendFormat(append(kb[:0], "scionmpr-fwd-"...)))
	inf.fwdKeys[ia] = fh[:32]
	switch inf.mode {
	case ECDSA:
		s, err := NewECDSASigner(ia)
		if err != nil {
			return err
		}
		inf.signers[ia] = s
		inf.pubs[ia] = s.Public()
	default:
		// Per-AS secret derived from the IA; deterministic across runs.
		h := sha512.Sum384(ia.AppendFormat(append(kb[:0], "scionmpr-sized-"...)))
		secret := h[:]
		inf.secrets[ia] = secret
		inf.signers[ia] = &SizedSigner{ia: ia, secret: secret}
	}
	return nil
}

func (inf *Infra) issue(subject, issuer addr.IA) error {
	body := certBody(subject, issuer, inf.pubs[subject])
	sig, err := inf.signers[issuer].Sign(body)
	if err != nil {
		return err
	}
	inf.certs[subject] = &Certificate{
		Subject:   subject,
		Issuer:    issuer,
		PublicKey: inf.pubs[subject],
		Signature: sig,
	}
	return nil
}

// SignerFor returns the signer of ia, or nil if unknown.
func (inf *Infra) SignerFor(ia addr.IA) Signer { return inf.signers[ia] }

// ForwardingKey returns the AS-local symmetric key an AS uses to MAC its
// hop fields (packet-carried forwarding state). Border routers of the AS
// share this key; it never leaves the AS. Returns nil for unknown ASes.
func (inf *Infra) ForwardingKey(ia addr.IA) []byte {
	return inf.fwdKeys[ia]
}

// TRCFor returns the TRC of an ISD, or nil.
func (inf *Infra) TRCFor(isd addr.ISD) *TRC { return inf.trcs[isd] }

// CertFor returns the AS certificate of a non-core AS, or nil.
func (inf *Infra) CertFor(ia addr.IA) *Certificate { return inf.certs[ia] }

// Verify implements Verifier against the registry's key material.
func (inf *Infra) Verify(ia addr.IA, msg, sig []byte) error {
	if len(sig) != SignatureLen {
		return fmt.Errorf("%w: %d", ErrBadLength, len(sig))
	}
	switch inf.mode {
	case ECDSA:
		pub := inf.pubs[ia]
		if pub == nil {
			return fmt.Errorf("%w: %s", ErrUnknownSigner, ia)
		}
		h := sha512.Sum384(msg)
		if !verifyFixed(pub, h[:], sig) {
			return fmt.Errorf("%w: %s", ErrBadSignature, ia)
		}
		return nil
	default:
		secret := inf.secrets[ia]
		if secret == nil {
			return fmt.Errorf("%w: %s", ErrUnknownSigner, ia)
		}
		want := sizedMAC(secret, msg)
		for i := range want {
			if want[i] != sig[i] {
				return fmt.Errorf("%w: %s", ErrBadSignature, ia)
			}
		}
		return nil
	}
}

// VerifyChain verifies that an AS certificate was issued and signed by a
// core AS present in the subject ISD's TRC — the trust anchor chain an
// endpoint walks before accepting path segments.
func (inf *Infra) VerifyChain(cert *Certificate) error {
	if cert == nil {
		return fmt.Errorf("%w: nil certificate", ErrUnknownSigner)
	}
	trc := inf.trcs[cert.Subject.ISD]
	if trc == nil {
		return fmt.Errorf("trust: no TRC for ISD %d", cert.Subject.ISD)
	}
	if !trc.HasCore(cert.Issuer) {
		return fmt.Errorf("trust: issuer %s not a core AS of ISD %d", cert.Issuer, cert.Subject.ISD)
	}
	body := certBody(cert.Subject, cert.Issuer, cert.PublicKey)
	return inf.Verify(cert.Issuer, body, cert.Signature)
}

func verifyFixed(pub *ecdsa.PublicKey, digest, sig []byte) bool {
	if len(sig) != SignatureLen {
		return false
	}
	r := new(big.Int).SetBytes(sig[:48])
	s := new(big.Int).SetBytes(sig[48:])
	return ecdsa.Verify(pub, digest, r, s)
}
