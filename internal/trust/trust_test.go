package trust

import (
	"bytes"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/topology"
)

func demoInfra(t *testing.T, mode Mode) (*Infra, *topology.Graph) {
	t.Helper()
	g := topology.Demo()
	inf, err := NewInfra(g, mode)
	if err != nil {
		t.Fatal(err)
	}
	return inf, g
}

func TestSizedSignerRoundTrip(t *testing.T) {
	inf, g := demoInfra(t, Sized)
	ia := g.IAs()[0]
	s := inf.SignerFor(ia)
	if s == nil || s.IA() != ia {
		t.Fatal("missing signer")
	}
	msg := []byte("a path segment")
	sig, err := s.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != SignatureLen {
		t.Fatalf("sig len = %d, want %d", len(sig), SignatureLen)
	}
	if err := inf.Verify(ia, msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSizedSignerDeterministic(t *testing.T) {
	inf, g := demoInfra(t, Sized)
	ia := g.IAs()[0]
	s := inf.SignerFor(ia)
	a, _ := s.Sign([]byte("x"))
	b, _ := s.Sign([]byte("x"))
	if !bytes.Equal(a, b) {
		t.Error("sized signatures must be deterministic")
	}
	c, _ := s.Sign([]byte("y"))
	if bytes.Equal(a, c) {
		t.Error("different messages must give different signatures")
	}
}

func TestSizedVerifyRejects(t *testing.T) {
	inf, g := demoInfra(t, Sized)
	ias := g.IAs()
	s := inf.SignerFor(ias[0])
	msg := []byte("msg")
	sig, _ := s.Sign(msg)

	if err := inf.Verify(ias[0], []byte("other"), sig); err == nil {
		t.Error("tampered message must fail")
	}
	if err := inf.Verify(ias[1], msg, sig); err == nil {
		t.Error("wrong signer must fail")
	}
	if err := inf.Verify(ias[0], msg, sig[:10]); err == nil {
		t.Error("truncated signature must fail")
	}
	mut := append([]byte(nil), sig...)
	mut[0] ^= 1
	if err := inf.Verify(ias[0], msg, mut); err == nil {
		t.Error("flipped bit must fail")
	}
	if err := inf.Verify(addr.MustIA(99, 99), msg, sig); err == nil {
		t.Error("unknown AS must fail")
	}
}

func TestECDSASignVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("ECDSA keygen in -short mode")
	}
	g := topology.New()
	a := addr.MustIA(1, 1)
	b := addr.MustIA(1, 2)
	g.AddAS(a, true)
	g.AddAS(b, false)
	g.MustConnect(a, b, topology.ProviderOf)
	inf, err := NewInfra(g, ECDSA)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pcb body")
	sig, err := inf.SignerFor(a).Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != SignatureLen {
		t.Fatalf("sig len = %d", len(sig))
	}
	if err := inf.Verify(a, msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := inf.Verify(a, []byte("tampered"), sig); err == nil {
		t.Error("tampered message must fail")
	}
	if err := inf.Verify(b, msg, sig); err == nil {
		t.Error("wrong key must fail")
	}
	// Certificate chain for the non-core AS verifies.
	cert := inf.CertFor(b)
	if cert == nil {
		t.Fatal("no certificate for leaf AS")
	}
	if err := inf.VerifyChain(cert); err != nil {
		t.Fatalf("chain: %v", err)
	}
}

func TestTRCStructure(t *testing.T) {
	inf, g := demoInfra(t, Sized)
	for isd := addr.ISD(1); isd <= 3; isd++ {
		trc := inf.TRCFor(isd)
		if trc == nil {
			t.Fatalf("no TRC for ISD %d", isd)
		}
		if trc.Version != 1 {
			t.Errorf("TRC version = %d", trc.Version)
		}
		for _, c := range trc.Cores {
			if !g.AS(c).Core {
				t.Errorf("TRC of ISD %d lists non-core %s", isd, c)
			}
			if c.ISD != isd {
				t.Errorf("TRC of ISD %d lists foreign AS %s", isd, c)
			}
		}
	}
	if inf.TRCFor(99) != nil {
		t.Error("unknown ISD must have nil TRC")
	}
}

func TestCertificateIssuance(t *testing.T) {
	inf, g := demoInfra(t, Sized)
	for _, ia := range g.IAs() {
		cert := inf.CertFor(ia)
		if g.AS(ia).Core {
			if cert != nil {
				t.Errorf("core AS %s must not have a leaf certificate", ia)
			}
			continue
		}
		if cert == nil {
			t.Fatalf("no certificate for %s", ia)
		}
		if cert.Subject != ia || cert.Issuer.ISD != ia.ISD {
			t.Errorf("bad cert binding: %+v", cert)
		}
		if err := inf.VerifyChain(cert); err != nil {
			t.Errorf("chain for %s: %v", ia, err)
		}
	}
}

func TestVerifyChainRejects(t *testing.T) {
	inf, g := demoInfra(t, Sized)
	var leaf addr.IA
	for _, ia := range g.IAs() {
		if !g.AS(ia).Core {
			leaf = ia
			break
		}
	}
	cert := *inf.CertFor(leaf)
	cert.Issuer = leaf // non-core issuer
	if err := inf.VerifyChain(&cert); err == nil {
		t.Error("non-core issuer must fail")
	}
	cert2 := *inf.CertFor(leaf)
	cert2.Signature = append([]byte(nil), cert2.Signature...)
	cert2.Signature[3] ^= 0xff
	if err := inf.VerifyChain(&cert2); err == nil {
		t.Error("tampered signature must fail")
	}
	if err := inf.VerifyChain(nil); err == nil {
		t.Error("nil cert must fail")
	}
	cert3 := *inf.CertFor(leaf)
	cert3.Subject.ISD = 77
	if err := inf.VerifyChain(&cert3); err == nil {
		t.Error("unknown ISD must fail")
	}
}

func TestInfraRequiresCorePerISD(t *testing.T) {
	g := topology.New()
	g.AddAS(addr.MustIA(5, 1), false) // ISD with no core
	if _, err := NewInfra(g, Sized); err == nil {
		t.Error("ISD without core AS must fail Infra construction")
	}
}
