package experiments

import (
	"bytes"
	"testing"
)

// TestForwardDeterminismAndAgreement runs the forward experiment's
// differential phase twice (throughput phase disabled): the planes must
// agree, the fingerprint must be reproducible, and the trace must
// actually exercise delivery, MAC drops, and faults.
func TestForwardDeterminismAndAgreement(t *testing.T) {
	cfg := DefaultForwardConfig()
	cfg.BenchPackets = 0 // wall-clock phase not under test
	run := func() *ForwardResult {
		res, err := RunForward(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res1 := run()
	res2 := run()
	if !res1.PlanesAgree {
		t.Fatal("fabric and wire engine disagree")
	}
	if res1.Fingerprint() != res2.Fingerprint() {
		t.Fatalf("forward experiment not deterministic:\n%s\n%s",
			res1.DiffFingerprint, res2.DiffFingerprint)
	}
	if res1.Delivered == 0 || res1.DroppedBadMAC == 0 {
		t.Errorf("trace too tame: %+v", res1)
	}
	if res1.Revocations == 0 && res1.DroppedGray == 0 {
		t.Error("fault plan injected nothing")
	}
	var buf bytes.Buffer
	res1.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("planes agree: true")) {
		t.Errorf("Print output:\n%s", buf.String())
	}
}
