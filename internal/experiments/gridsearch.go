package experiments

import (
	"fmt"
	"io"

	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
)

// GridSearchResult is the outcome of the §4.2 parameter search.
type GridSearchResult struct {
	Best        core.Params
	Score       float64
	Evaluations int
}

// GridObjective builds the search objective on a given environment: mean
// fraction of optimal path quality achieved, minus OverheadWeight times
// the beaconing bytes normalized by the baseline algorithm's bytes. This
// realizes the paper's tuning goal — keep the three Equation 1–3
// objectives satisfied while minimizing communication.
func GridObjective(e *env, s Scale, overheadWeight float64) (core.Objective, error) {
	pairs := e.samplePairs()
	opt := make([]float64, len(pairs))
	for i, p := range pairs {
		opt[i] = float64(graphalg.OptimalFlow(e.core, p[0], p[1]))
	}
	baseRun, err := e.runCore(core.NewBaseline(s.DissemLimit), s.StoreLimit)
	if err != nil {
		return nil, err
	}
	baseBytes := float64(baseRun.TotalOverheadBytes())
	if baseBytes <= 0 {
		baseBytes = 1
	}
	return func(p core.Params) float64 {
		run, err := e.runCore(core.NewDiversity(p), s.StoreLimit)
		if err != nil {
			return -1e18
		}
		quality := 0.0
		n := 0
		for i, pr := range pairs {
			if opt[i] <= 0 {
				continue
			}
			quality += float64(run.Quality(pr[0], pr[1])) / opt[i]
			n++
		}
		if n > 0 {
			quality /= float64(n)
		}
		overhead := float64(run.TotalOverheadBytes()) / baseBytes
		return quality - overheadWeight*overhead
	}, nil
}

// RunGridSearch performs a grid search over the given space on the
// scale's core topology.
func RunGridSearch(s Scale, space core.SearchSpace, overheadWeight float64) (*GridSearchResult, error) {
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	obj, err := GridObjective(e, s, overheadWeight)
	if err != nil {
		return nil, err
	}
	best, score := core.GridSearch(core.DefaultParams(s.DissemLimit), space, obj)
	return &GridSearchResult{Best: best, Score: score, Evaluations: space.Size()}, nil
}

// Print renders the search outcome.
func (r *GridSearchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== Grid search (paper §4.2 methodology) ==\n")
	fmt.Fprintf(w, "evaluations: %d\n", r.Evaluations)
	fmt.Fprintf(w, "best parameters: alpha=%.3g beta=%.3g gamma=%.3g threshold=%.3g (score %.4f)\n",
		r.Best.Alpha, r.Best.Beta, r.Best.Gamma, r.Best.ScoreThreshold, r.Score)
}
