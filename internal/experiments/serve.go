package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/metrics"
	"scionmpr/internal/pathsrv"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// Serve timeline (compressed virtual time, same convention as the churn
// experiment): beaconing from t=0, the registration feed and snapshot
// publisher come up once stores have content, clients start at
// serveClientStart, and a flap storm covers the middle of the client
// window so revocation-aware invalidation is measured under load.
const (
	serveBeaconInterval   = 1 * time.Second
	serveRegisterStart    = 1200 * time.Millisecond
	serveRegisterInterval = 1 * time.Second
	servePublishStart     = 1500 * time.Millisecond
	servePublishInterval  = 250 * time.Millisecond
	serveClientStart      = 2 * time.Second
	serveFlapDown         = 1 * time.Second
	serveFlapPeriod       = 3 * time.Second
)

// ServeConfig parameterizes the serving-layer experiment on top of a
// Scale (which provides topology and beaconing parameters).
type ServeConfig struct {
	// Endpoints is the closed-loop client population size.
	Endpoints int
	// Actors is the simulator-shard count the endpoints multiplex onto.
	Actors int
	// Shards is the service's destination shard count.
	Shards int
	// ZipfS skews destination popularity.
	ZipfS float64
	// MeanThink/MinThink shape the think-time distribution.
	MeanThink, MinThink time.Duration
	// Tick is the client scheduling quantum.
	Tick time.Duration
	// Duration is the total virtual run length (clients run from
	// serveClientStart to Duration).
	Duration time.Duration
	// CacheTTL/CacheCap configure the per-actor reply caches.
	CacheTTL time.Duration
	CacheCap int
	// RevTTL is the serving layer's revocation TTL.
	RevTTL time.Duration
}

// DefaultServeConfig is the CI-friendly setup: a hundred thousand
// endpoints for ten virtual seconds. cmd/pathserve raises Endpoints to
// the paper-motivated million.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Endpoints: 100_000,
		Actors:    64,
		Shards:    16,
		ZipfS:     1.2,
		MeanThink: 250 * time.Millisecond,
		MinThink:  10 * time.Millisecond,
		Tick:      10 * time.Millisecond,
		Duration:  10 * time.Second,
		CacheTTL:  2 * time.Second,
		CacheCap:  4096,
		RevTTL:    1500 * time.Millisecond,
	}
}

// ServeResult is one serving-layer run: closed-loop load totals, the
// modeled latency profile, cache behavior, and the control-plane
// counters underneath.
type ServeResult struct {
	Scale  Scale
	Config ServeConfig

	Totals pathsrv.PoolTotals
	// VirtualQPS is lookups per virtual second of the client window —
	// deterministic, unlike wall-clock rates.
	VirtualQPS float64
	// P50/P99/P999 are modeled lookup costs in nanoseconds from the
	// deterministic cost histogram.
	P50, P99, P999 float64
	HitRate        float64
	Imbalance      float64

	Epoch                                      uint64
	Registrations, Refreshes, Publishes        uint64
	Revocations, Reinstatements, Invalidations uint64
	FlapInjections                             uint64
	Executed                                   uint64

	// Snapshot is the deterministic telemetry snapshot; TraceJSONL the
	// structured event log. Both are part of the fingerprint.
	Snapshot   string
	TraceJSONL string
	Digest     [sha256.Size]byte

	// Elapsed is wall-clock and therefore volatile: excluded from the
	// fingerprint.
	Elapsed time.Duration

	// Service is the populated serving layer after the run and IAs the
	// query population, exposed for post-run wall-clock read benchmarks
	// (cmd/pathserve -bench). Not part of the fingerprint.
	Service *pathsrv.Service
	IAs     []addr.IA
}

// Fingerprint digests every deterministic observable of the run; equal
// scales, configs and seeds must produce equal fingerprints for every
// worker count.
func (r *ServeResult) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	h.Write(r.Digest[:])
	h.Write([]byte(r.Snapshot))
	h.Write([]byte(r.TraceJSONL))
	var b [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w64(r.Totals.Lookups)
	w64(r.Totals.Hits)
	w64(r.Totals.Empties)
	w64(r.Totals.CacheEvictions)
	w64(r.Totals.CacheInvalidations)
	for _, v := range r.Totals.PerShard {
		w64(v)
	}
	w64(r.Epoch)
	w64(r.Registrations)
	w64(r.Publishes)
	w64(r.Revocations)
	w64(r.Reinstatements)
	w64(r.Invalidations)
	w64(r.FlapInjections)
	w64(r.Executed)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// RunServe runs the serving-layer experiment: live beaconing feeds the
// path service through a batching registration pipeline, a publisher
// swaps epoch snapshots every interval, a chaos storm flaps core links
// mid-run (revoking and reinstating served paths), and the closed-loop
// client population drives lookups throughout.
func RunServe(s Scale, sc ServeConfig) (*ServeResult, error) {
	if sc.Endpoints <= 0 || sc.Duration <= 0 {
		return nil, fmt.Errorf("experiments: serve needs endpoints and a duration")
	}
	if sim.Time(sc.Duration) <= sim.Time(serveClientStart) {
		return nil, fmt.Errorf("experiments: serve duration %v must exceed the client start %v",
			sc.Duration, serveClientStart)
	}
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	infra, err := trust.NewInfra(e.core, trust.Sized)
	if err != nil {
		return nil, err
	}

	reg := s.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tracer := s.Tracer
	if tracer == nil {
		tracer = telemetry.NewTracer(1 << 16)
	}

	clock := &sim.Simulator{}
	clock.SetWorkers(s.Workers)
	clock.SetTelemetry(reg)
	clock.SetTracer(tracer)
	end := sim.Time(sc.Duration)

	ctrl := sim.NewNetwork(clock, e.core, 10*time.Millisecond)
	ctrl.SetTelemetry(reg)
	servers := map[addr.IA]*beacon.Server{}
	factory := core.NewDiversity(core.DefaultParams(s.DissemLimit))
	for _, ia := range e.core.IAs() {
		srv, err := beacon.NewServer(beacon.ServerConfig{
			Local:       ia,
			Topo:        e.core,
			Net:         ctrl,
			Signer:      infra.SignerFor(ia),
			Selector:    factory(ia),
			StoreLimit:  s.StoreLimit,
			Mode:        beacon.CoreMode,
			PCBLifetime: time.Hour,
		})
		if err != nil {
			return nil, err
		}
		srv.SetTelemetry(reg)
		servers[ia] = srv
	}
	for _, ia := range e.core.IAs() {
		clock.Every(0, serveBeaconInterval, end, servers[ia].Tick)
	}

	svc := pathsrv.New(pathsrv.Config{
		Shards:        sc.Shards,
		RevocationTTL: sim.Time(sc.RevTTL),
		Clock:         clock,
		Telemetry:     reg,
	})
	// Registration feed: every interval, sweep the beacon stores and
	// register every live PCB under its (origin, leaf) pair. Re-seen
	// paths are cheap refreshes; genuinely new ones dirty their shard.
	ias := e.core.IAs()
	clock.Every(serveRegisterStart, serveRegisterInterval, end, func(now sim.Time) {
		for _, ia := range ias {
			st := servers[ia].Store()
			for _, origin := range st.Origins() {
				for _, p := range st.PCBs(now, origin) {
					if p.Leaf() == origin {
						continue
					}
					// Errors mean expired-in-flight segments; they are
					// counted by the service and safe to skip.
					_ = svc.Register(now, p)
				}
			}
		}
	})
	// Publisher: batch registrations into epoch snapshot swaps.
	clock.Every(servePublishStart, servePublishInterval, end, func(now sim.Time) {
		svc.Publish(now)
	})

	// Chaos storm across the middle of the client window. Beacon servers
	// learn of failures instantly (as in the churn experiment); the
	// serving layer revokes and reinstates through WireChaos.
	stormStart := sim.Time(serveClientStart) + (end-sim.Time(serveClientStart))*2/5
	stormEnd := sim.Time(serveClientStart) + (end-sim.Time(serveClientStart))*4/5
	var cands []topology.LinkID
	for _, l := range e.core.Links {
		cands = append(cands, l.ID)
	}
	nflap := len(cands) / 4
	if nflap < 2 {
		nflap = 2
	}
	sched := chaos.FlapChurn(s.Seed, cands, nflap, stormStart, stormEnd,
		serveFlapDown, serveFlapPeriod)
	eng := chaos.NewEngine(clock, ctrl)
	eng.SetTelemetry(reg)
	eng.OnFail = func(id topology.LinkID) {
		if l := e.core.LinkByID(id); l != nil {
			for _, ia := range ias {
				servers[ia].HandleLinkFailure(l)
			}
		}
	}
	pathsrv.WireChaos(clock, eng, e.core, svc, sim.Time(sc.RevTTL))
	if err := eng.Apply(sched); err != nil {
		return nil, err
	}

	pool, err := pathsrv.NewPool(clock, svc, reg, pathsrv.ClientConfig{
		Endpoints: sc.Endpoints,
		Actors:    sc.Actors,
		Sources:   ias,
		Dests:     ias,
		ZipfS:     sc.ZipfS,
		MeanThink: sc.MeanThink,
		MinThink:  sc.MinThink,
		Tick:      sc.Tick,
		Start:     sim.Time(serveClientStart),
		End:       end,
		Seed:      s.Seed,
		CacheTTL:  sim.Time(sc.CacheTTL),
		CacheCap:  sc.CacheCap,
	})
	if err != nil {
		return nil, err
	}

	wall := time.Now()
	clock.Run()
	elapsed := time.Since(wall)
	reg.VolatileGauge("serve_wall_seconds").Set(elapsed.Seconds())

	res := &ServeResult{
		Scale:          s,
		Config:         sc,
		Totals:         pool.Totals(),
		Epoch:          svc.Epoch(),
		Registrations:  svc.Registrations,
		Refreshes:      svc.Refreshes,
		Publishes:      svc.Publishes,
		Revocations:    svc.Revocations,
		Reinstatements: svc.Reinstatements,
		Invalidations:  svc.Invalidations,
		FlapInjections: eng.Injections[chaos.Flap],
		Executed:       clock.Executed,
		Digest:         svc.Digest(),
		Elapsed:        elapsed,
		Service:        svc,
		IAs:            ias,
	}
	loadSeconds := (time.Duration(end) - serveClientStart).Seconds()
	res.VirtualQPS = float64(res.Totals.Lookups) / loadSeconds
	res.HitRate = res.Totals.HitRate()
	res.Imbalance = res.Totals.Imbalance()
	hCost := reg.Histogram("pathsrv_lookup_cost_ns", nil)
	res.P50 = hCost.Quantile(0.50)
	res.P99 = hCost.Quantile(0.99)
	res.P999 = hCost.Quantile(0.999)

	var snap strings.Builder
	if err := reg.WriteSnapshot(&snap); err != nil {
		return nil, err
	}
	res.Snapshot = snap.String()
	var tr strings.Builder
	if err := tracer.WriteJSONL(&tr); err != nil {
		return nil, err
	}
	res.TraceJSONL = tr.String()
	return res, nil
}

// Print renders the run deterministically (wall-clock values are marked
// volatile and kept out of comparisons).
func (r *ServeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== Path-lookup serving layer under closed-loop load (§4.1 at scale) ==\n")
	fmt.Fprintf(w, "%d endpoints on %d actors, Zipf s=%.2f over %d dests; think %v (min %v)\n",
		r.Config.Endpoints, r.Config.Actors, r.Config.ZipfS, r.destCount(),
		r.Config.MeanThink, r.Config.MinThink)
	fmt.Fprintf(w, "service: %d shards, publish every %v, cache TTL %v, revocation TTL %v\n",
		len(r.Totals.PerShard), servePublishInterval, r.Config.CacheTTL, r.Config.RevTTL)
	fmt.Fprintf(w, "clients [%v, %v] of %v; %d link flaps mid-run\n\n",
		serveClientStart, r.Config.Duration, r.Config.Duration, r.FlapInjections)
	tbl := metrics.Table{
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"lookups", fmt.Sprintf("%d", r.Totals.Lookups)},
			{"virtual QPS", fmt.Sprintf("%.0f", r.VirtualQPS)},
			{"cache hit rate", fmt.Sprintf("%.4f", r.HitRate)},
			{"empty replies", fmt.Sprintf("%d", r.Totals.Empties)},
			{"lookup cost p50", fmtNanos(r.P50)},
			{"lookup cost p99", fmtNanos(r.P99)},
			{"lookup cost p999", fmtNanos(r.P999)},
			{"shard imbalance", fmt.Sprintf("%.3f", r.Imbalance)},
			{"epochs published", fmt.Sprintf("%d", r.Epoch)},
			{"segments registered", fmt.Sprintf("%d (+%d refreshes)", r.Registrations, r.Refreshes)},
			{"revocations", fmt.Sprintf("%d (%d reinstated)", r.Revocations, r.Reinstatements)},
			{"cache invalidations", fmt.Sprintf("%d", r.Invalidations)},
		},
	}
	tbl.Fprint(w)
	fmt.Fprintf(w, "\nepoch snapshots keep lookups lock-free through %d publications and a\nflap storm: revocation-aware invalidation evicts only the affected\npairs, so the hit rate survives the churn.\n", r.Epoch)
}

// destCount recovers the destination count (the pool uses the core IAs).
func (r *ServeResult) destCount() int {
	return r.Scale.CoreSize
}

// fmtNanos prints a nanosecond quantity with stable precision.
func fmtNanos(ns float64) string {
	return fmt.Sprintf("%.0fns", ns)
}
