// Package experiments reproduces every table and figure of the paper's
// evaluation (§5 and Appendix B): Table 1 (control-plane component scope
// and frequency), Figure 5 (control-plane overhead of BGPsec and SCION
// beaconing relative to BGP at monitor ASes), Figures 6a/6b (path quality:
// failure resilience and capacity versus the optimum), and the SCIONLab
// appendix Figures 7, 8 and 9.
//
// Every experiment takes a Scale so the paper-size runs (12000 ASes, 2000
// core ASes, 26 monitors, six hours of beaconing) and CI-size smoke runs
// share one code path.
package experiments

import (
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// Scale parameterizes an experiment run.
type Scale struct {
	// Topology generation.
	NumASes int
	Tier1   int
	Seed    int64

	// Core network extraction (paper: 2000 highest-degree ASes grouped
	// into 200 ISDs of 10 core ASes).
	CoreSize int
	NumISDs  int

	// Intra-ISD topology (paper: 11 highest-cone cores, 7017 customers).
	ISDCores int

	// Beaconing parameters (paper §5.1).
	Interval    time.Duration
	Lifetime    time.Duration
	Duration    time.Duration
	DissemLimit int
	StoreLimit  int
	// DiversityStoreLimits are the storage-limit sweep of Figure 6
	// (0 means unlimited, the paper's "∞").
	DiversityStoreLimits []int

	// Evaluation.
	Monitors int
	Pairs    int

	// Workers is the simulator worker count for the beaconing runs:
	// 1 sequential, 0 the default (SCIONMPR_WORKERS or GOMAXPROCS).
	// Results are byte-identical for every setting.
	Workers int

	// Telemetry, if set, receives counters and stage timers from every
	// beaconing run the experiment performs.
	Telemetry *telemetry.Registry
	// Tracer, if set, records structured trace events from the runs.
	Tracer *telemetry.Tracer
}

// PaperScale is the full experiment setup of §5.1. Running it takes
// hours; use it through cmd/experiments with an explicit flag.
func PaperScale() Scale {
	return Scale{
		NumASes:              12000,
		Tier1:                15,
		Seed:                 1,
		CoreSize:             2000,
		NumISDs:              200,
		ISDCores:             11,
		Interval:             10 * time.Minute,
		Lifetime:             6 * time.Hour,
		Duration:             6 * time.Hour,
		DissemLimit:          5,
		StoreLimit:           60,
		DiversityStoreLimits: []int{15, 30, 60, 0},
		Monitors:             26,
		Pairs:                200,
	}
}

// DefaultScale is a laptop-scale configuration preserving the paper's
// structural ratios (core share, ISD count scaled down proportionally);
// it finishes in minutes and reproduces the figures' shape.
func DefaultScale() Scale {
	s := PaperScale()
	s.NumASes = 400
	s.Tier1 = 10
	s.CoreSize = 40
	s.NumISDs = 8
	s.ISDCores = 5
	s.Duration = 6 * time.Hour
	s.Pairs = 60
	s.Monitors = 20
	return s
}

// SmokeScale is a test-suite configuration: small enough to finish in
// tens of seconds, but with enough beaconing intervals (4 h / 10 min)
// that the diversity algorithm's steady-state retransmission suppression
// is visible.
func SmokeScale() Scale {
	s := PaperScale()
	s.NumASes = 120
	s.Tier1 = 6
	s.CoreSize = 16
	s.NumISDs = 4
	s.ISDCores = 3
	s.Duration = 4 * time.Hour
	s.DiversityStoreLimits = []int{15, 0}
	s.Pairs = 20
	s.Monitors = 8
	return s
}

// env holds the topologies shared by the experiments.
type env struct {
	scale Scale
	full  *topology.Graph // generated Internet
	core  *topology.Graph // extracted core network (all links Core)
	// coreSub is the induced subgraph on core members with their
	// original business relationships, used for the BGP comparison.
	coreSub *topology.Graph
}

func newEnv(s Scale) (*env, error) {
	p := topology.DefaultGenParams()
	p.NumASes = s.NumASes
	p.Tier1 = s.Tier1
	p.Seed = s.Seed
	full, err := topology.Generate(p)
	if err != nil {
		return nil, err
	}
	coreTopo, err := topology.ExtractCore(full, s.CoreSize)
	if err != nil {
		return nil, err
	}
	members := map[addr.IA]bool{}
	for _, ia := range coreTopo.IAs() {
		members[ia] = true
	}
	return &env{
		scale:   s,
		full:    full,
		core:    coreTopo,
		coreSub: full.Subgraph(members),
	}, nil
}

// monitors picks the n highest-degree ASes of the full topology — the
// stand-ins for the RouteViews monitor ASes (large ISPs). By construction
// they survive core extraction.
func (e *env) monitors() []addr.IA {
	type dd struct {
		ia  addr.IA
		deg int
	}
	all := make([]dd, 0, e.full.NumASes())
	for _, ia := range e.full.IAs() {
		all = append(all, dd{ia, e.full.AS(ia).Degree()})
	}
	// Highest degree first; deterministic tiebreak.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].deg > all[j-1].deg ||
			(all[j].deg == all[j-1].deg && all[j].ia.Less(all[j-1].ia))); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	n := e.scale.Monitors
	if n > len(all) {
		n = len(all)
	}
	out := make([]addr.IA, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].ia
	}
	return out
}

// runCore executes core beaconing on the extracted core network.
func (e *env) runCore(factory core.Factory, storeLimit int) (*beacon.RunResult, error) {
	cfg := beacon.DefaultRunConfig(e.core, beacon.CoreMode, factory, storeLimit)
	cfg.Interval = e.scale.Interval
	cfg.Lifetime = e.scale.Lifetime
	cfg.Duration = e.scale.Duration
	cfg.Workers = e.scale.Workers
	cfg.Telemetry = e.scale.Telemetry
	cfg.Tracer = e.scale.Tracer
	return beacon.Run(cfg)
}

// samplePairs picks evaluation AS pairs on the core network.
func (e *env) samplePairs() [][2]addr.IA {
	return graphalg.SamplePairs(e.core, e.scale.Pairs)
}
