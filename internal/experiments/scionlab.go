package experiments

import (
	"fmt"
	"io"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/core"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/metrics"
	"scionmpr/internal/topology"
)

// SCIONLabResult reproduces Appendix B: path quality on the SCIONLab core
// (Figures 7 and 8) and per-interface beaconing bandwidth (Figure 9).
type SCIONLabResult struct {
	Pairs   [][2]addr.IA
	Optimum []float64
	Series  []QualitySeries
	// InterfaceBps is the per-core-interface beaconing bandwidth of the
	// baseline run (Figure 9).
	InterfaceBps []float64
}

// RunSCIONLab runs the Appendix B evaluation: the "measurement" curve is
// the baseline algorithm with storage limit 5 (the paper notes the
// baseline is modeled after SCIONLab's production algorithm and matches
// the testbed snapshot closely), plus the diversity algorithm with
// storage limits 5, 10, 15 and 60.
func RunSCIONLab() (*SCIONLabResult, error) {
	lab := topology.SCIONLab()
	keep := map[addr.IA]bool{}
	for _, ia := range lab.CoreIAs() {
		keep[ia] = true
	}
	coreTopo := lab.Subgraph(keep)

	run := func(factory core.Factory, storeLimit int) (*beacon.RunResult, error) {
		cfg := beacon.DefaultRunConfig(coreTopo, beacon.CoreMode, factory, storeLimit)
		cfg.Duration = 6 * time.Hour
		return beacon.Run(cfg)
	}

	res := &SCIONLabResult{}
	cores := coreTopo.CoreIAs()
	for _, s := range cores {
		for _, d := range cores {
			if s.Less(d) {
				res.Pairs = append(res.Pairs, [2]addr.IA{s, d})
			}
		}
	}
	for _, p := range res.Pairs {
		res.Optimum = append(res.Optimum, float64(graphalg.OptimalFlow(coreTopo, p[0], p[1])))
	}

	quality := func(name string, r *beacon.RunResult) {
		qs := QualitySeries{Name: name}
		for _, p := range res.Pairs {
			qs.Values = append(qs.Values, float64(graphalg.UnionFlow(r.PathSet(p[0], p[1]), p[0], p[1])))
		}
		res.Series = append(res.Series, qs)
	}

	baseRun, err := run(core.NewBaseline(5), 5)
	if err != nil {
		return nil, err
	}
	quality("Measurement/Baseline (5)", baseRun)
	res.InterfaceBps = baseRun.PerInterfaceBandwidth()

	for _, limit := range []int{5, 10, 15, 60} {
		divRun, err := run(core.NewDiversity(core.DefaultParams(5)), limit)
		if err != nil {
			return nil, err
		}
		quality(fmt.Sprintf("SCION Diversity (%d)", limit), divRun)
	}
	return res, nil
}

// Print renders Figures 7, 8 and 9 as text.
func (r *SCIONLabResult) Print(w io.Writer) {
	series := []metrics.Series{{Name: "Optimum", CDF: metrics.NewCDF(r.Optimum)}}
	for _, s := range r.Series {
		series = append(series, metrics.Series{Name: s.Name, CDF: metrics.NewCDF(s.Values)})
	}
	metrics.FprintCDFs(w, "Figures 7/8: SCIONLab path quality per core AS pair", series)

	fmt.Fprintln(w)
	metrics.FprintCDFs(w, "Figure 9: SCIONLab per-interface beaconing bandwidth (bytes/s)",
		[]metrics.Series{{Name: "baseline Bps", CDF: metrics.NewCDF(r.InterfaceBps)}})
	// Paper: < 4 KB/s for ~80% of core interfaces.
	c := metrics.NewCDF(r.InterfaceBps)
	fmt.Fprintf(w, "\nfraction of interfaces under 4 KB/s: %.0f%% (paper: ~80%%)\n", 100*c.At(4096))

	// Paper: diversity with limits 5/10/15/60 beats the measurement in
	// 17/42/52/55%% of cases; over 15 adds little.
	if len(r.Series) >= 5 {
		base := r.Series[0].Values
		fmt.Fprintf(w, "cases where diversity beats the baseline snapshot:\n")
		for _, s := range r.Series[1:] {
			betterCnt := 0
			for i := range base {
				if s.Values[i] > base[i] {
					betterCnt++
				}
			}
			fmt.Fprintf(w, "  %-22s %.0f%%\n", s.Name, 100*float64(betterCnt)/float64(len(base)))
		}
	}
}
