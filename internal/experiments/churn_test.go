package experiments

import (
	"bytes"
	"testing"
)

// TestChurnOrderingAndDeterminism runs the continuous-churn experiment
// twice at smoke scale: the rendered output must be byte-identical (the
// whole fault schedule and every traffic reaction is seeded), and the
// Figure-6a ordering must hold — diversity reconnects and recovers no
// worse than the baseline, both strictly better than BGP best-path.
func TestChurnOrderingAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("churn experiment in -short mode")
	}
	s := SmokeScale()
	run := func() (*ChurnResult, []byte) {
		res, err := RunChurn(s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Print(&buf)
		return res, buf.Bytes()
	}
	res1, out1 := run()
	_, out2 := run()
	if !bytes.Equal(out1, out2) {
		t.Fatalf("churn output not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	if err := res1.CheckOrdering(); err != nil {
		t.Fatal(err)
	}

	// The churn must actually bite: BGP flows lose their only path.
	var bgp *ChurnSeries
	for i := range res1.Series {
		if res1.Series[i].Name == "BGP best-path" {
			bgp = &res1.Series[i]
		}
	}
	if bgp == nil || len(bgp.Outages) == 0 || bgp.DisconnectedFlows == 0 {
		t.Fatalf("expected BGP disconnections under flap churn, got %+v", bgp)
	}
	if bgp.FlapInjections == 0 {
		t.Fatal("chaos engine injected no flaps")
	}

	// Recovery semantics: SCION flows re-probe and readopt healed paths.
	for i := range res1.Series {
		s := &res1.Series[i]
		if s.Name != "BGP best-path" && s.Reprobes == 0 {
			t.Errorf("%s: no re-probes despite revocation TTL expiries", s.Name)
		}
	}
}
