package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/bgp"
	"scionmpr/internal/combinator"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/metrics"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/traffic"
	"scionmpr/scion"
)

// CapacitySeries is one curve of the under-load capacity comparison:
// per-pair achieved goodput in multiples of a single inter-AS link.
type CapacitySeries struct {
	Name string
	// Multiples is the per-pair goodput / link capacity (Figure 6b's unit).
	Multiples []float64
}

// CapacityResult is the Figure-6b-style comparison measured with actual
// traffic instead of max-flow analysis: the same open-ended flows run over
// the path sets of the diversity algorithm, the baseline algorithm and
// BGP best-path routing, on identical uniform-capacity links.
type CapacityResult struct {
	Scale Scale
	// LinkCapacity is the uniform per-link-direction rate in bytes/s.
	LinkCapacity float64
	// Window is the measurement window of virtual time per pair.
	Window time.Duration
	Pairs  [][2]addr.IA
	Series []CapacitySeries
}

// capacityLinkRate keeps the multiples metric readable: 1 Gbps links.
const capacityLinkRate = 1.25e8

// capacityWindow is the per-run measurement window of virtual time.
const capacityWindow = 2 * time.Second

// RunCapacity measures achieved multipath capacity under load. It builds
// one intra-ISD deployment (paper §5.1 construction: highest-cone cores
// plus their customer hierarchy), then for each variant runs one
// open-ended flow per sampled AS pair through the traffic engine — token
// buckets on every link direction, weighted-by-bottleneck striping for
// SCION, the single best path for BGP — and reports goodput in link
// multiples. The paper's claim (§5.3, Figure 6b) is that diversity-based
// beaconing disseminates path sets whose capacity beats the baseline's,
// which in turn beats BGP best-path; here the same ordering must emerge
// from packets, not from max-flow arithmetic.
func RunCapacity(s Scale) (*CapacityResult, error) {
	// Same setting as RunFig6: the extracted core network carries the
	// traffic (that is where disseminated path diversity differs between
	// the algorithms); BGP runs on the core members' original-relationship
	// subgraph, its best case.
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	pairs := e.samplePairs()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no pairs to sample on the core topology")
	}
	res := &CapacityResult{
		Scale:        s,
		LinkCapacity: capacityLinkRate,
		Window:       capacityWindow,
		Pairs:        pairs,
	}

	diversity, err := scionCapacity(e.core, scion.Diversity, pairs)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, CapacitySeries{Name: "SCION Diversity", Multiples: diversity})

	baseline, err := scionCapacity(e.core, scion.Baseline, pairs)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, CapacitySeries{Name: "SCION Baseline", Multiples: baseline})

	best, err := bgpCapacity(e.coreSub, pairs)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, CapacitySeries{Name: "BGP best-path", Multiples: best})
	return res, nil
}

// pairEngines sets up one traffic engine per pair — pairs are isolated in
// their own token buckets so each measures its path set's capacity, not
// cross-pair contention — runs the shared clock for the window, and
// returns per-pair goodput in link multiples.
func pairEngines(clock *sim.Simulator, net *sim.Network, fabric *dataplane.Fabric,
	provider traffic.PathProvider, sched func() traffic.Scheduler,
	pairs [][2]addr.IA) ([]float64, error) {

	flows := make([]*traffic.Flow, len(pairs))
	for i, pr := range pairs {
		eng, err := traffic.NewEngine(traffic.Config{
			Clock:     clock,
			Net:       net,
			Fabric:    fabric,
			Provider:  provider,
			Links:     traffic.NewLinkModel(traffic.UniformCapacity(capacityLinkRate)),
			Scheduler: sched,
			// Wide budget: capacity differences live in the tail of the
			// disseminated path set, not the first few shortest paths.
			MaxPaths: 16,
		})
		if err != nil {
			return nil, err
		}
		flows[i] = eng.Add(traffic.FlowSpec{ID: i, Src: pr[0], Dst: pr[1], Start: 0, Size: 0})
	}
	deadline := clock.Now() + sim.Time(capacityWindow)
	clock.RunUntil(deadline)
	out := make([]float64, len(flows))
	for i, f := range flows {
		out[i] = f.Goodput(deadline) / capacityLinkRate
	}
	return out, nil
}

// scionCapacity bootstraps a SCION network with the given beaconing
// algorithm and measures every pair with weighted-by-bottleneck striping
// over the looked-up path set.
func scionCapacity(topo *topology.Graph, alg scion.Algorithm, pairs [][2]addr.IA) ([]float64, error) {
	return scionCapacityWith(topo, alg,
		func() traffic.Scheduler { return &traffic.WeightedBottleneck{} }, pairs)
}

// scionCapacityWith is scionCapacity with a pluggable scheduler factory —
// the differential cross-check replays the capacity run through every
// refactored strategy and pins the result to pre-refactor goldens.
func scionCapacityWith(topo *topology.Graph, alg scion.Algorithm,
	sched func() traffic.Scheduler, pairs [][2]addr.IA) ([]float64, error) {

	opts := scion.DefaultOptions()
	opts.Algorithm = alg
	n, err := scion.NewNetwork(topo, opts)
	if err != nil {
		return nil, err
	}
	return pairEngines(n.Clock(), n.Fabric().Net, n.Fabric(), n.Paths, sched, pairs)
}

// bgpCapacity converges BGP on the same topology and measures every pair
// over its single best path (the comparison floor: one path, one link).
func bgpCapacity(topo *topology.Graph, pairs [][2]addr.IA) ([]float64, error) {
	res, err := bgp.Run(bgp.DefaultConfig(topo))
	if err != nil {
		return nil, err
	}
	// BGP forwarding has no hop-field MACs; a synthetic per-AS key ring
	// satisfies the shared fabric without a SCION trust hierarchy.
	keys := func(ia addr.IA) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], ia.Uint64()^0x5ca1ab1ecafe)
		return b[:]
	}
	clock := &sim.Simulator{}
	net := sim.NewNetwork(clock, topo, 5*time.Millisecond)
	fabric := dataplane.NewFabric(net, keys)
	provider := func(src, dst addr.IA) ([]*dataplane.FwdPath, error) {
		fp, err := bgpBestPath(res, topo, keys, src, dst)
		if err != nil {
			return nil, err
		}
		return []*dataplane.FwdPath{fp}, nil
	}
	return pairEngines(clock, net, fabric, provider,
		func() traffic.Scheduler { return &traffic.SingleBest{} }, pairs)
}

// bgpBestPath authorizes src's converged best route toward dst as a
// forwarding path. BGP sessions (and thus the forwarding next hop) use one
// link between consecutive ASes, so no parallel-link expansion applies.
func bgpBestPath(res *bgp.Result, topo *topology.Graph, keys dataplane.KeyFunc,
	src, dst addr.IA) (*dataplane.FwdPath, error) {

	sp := res.Speakers[src]
	if sp == nil {
		return nil, fmt.Errorf("experiments: no BGP speaker at %s", src)
	}
	rt := sp.Best(dst)
	if rt == nil {
		return nil, fmt.Errorf("experiments: no BGP route %s -> %s", src, dst)
	}
	ases := append([]addr.IA{src}, rt.Path...)
	hops := make([]combinator.Hop, len(ases))
	for i, ia := range ases {
		hops[i] = combinator.Hop{IA: ia}
	}
	for i := 0; i+1 < len(ases); i++ {
		links := topo.LinksBetween(ases[i], ases[i+1])
		if len(links) == 0 {
			return nil, fmt.Errorf("experiments: BGP path %s -> %s not in topology", ases[i], ases[i+1])
		}
		l := links[0]
		hops[i].Out = l.LocalIf(ases[i])
		hops[i+1].In = l.RemoteIf(ases[i])
	}
	return dataplane.Authorize(&combinator.Path{Hops: hops, MTU: 1472}, keys)
}

// MeanMultiples returns each series' mean goodput in link multiples.
func (r *CapacityResult) MeanMultiples() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Series {
		out[s.Name] = metrics.NewCDF(s.Multiples).Mean()
	}
	return out
}

// AggregateGoodput sums each series' per-pair goodput (bytes/s).
func (r *CapacityResult) AggregateGoodput(name string) float64 {
	for _, s := range r.Series {
		if s.Name == name {
			sum := 0.0
			for _, m := range s.Multiples {
				sum += m * r.LinkCapacity
			}
			return sum
		}
	}
	return 0
}

// Print renders the per-pair goodput CDFs and the aggregate comparison.
func (r *CapacityResult) Print(w io.Writer) {
	var series []metrics.Series
	for _, s := range r.Series {
		series = append(series, metrics.Series{Name: s.Name, CDF: metrics.NewCDF(s.Multiples)})
	}
	metrics.FprintCDFs(w,
		fmt.Sprintf("capacity under load: per-pair goodput in link multiples (%d pairs, %v window)",
			len(r.Pairs), r.Window), series)
	fmt.Fprintf(w, "\naggregate goodput over all pairs (link capacity %s):\n",
		metrics.FmtRate(r.LinkCapacity))
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-18s %s\n", s.Name, metrics.FmtRate(r.AggregateGoodput(s.Name)))
	}
	fmt.Fprintf(w, "\nthe ordering diversity >= baseline >= BGP best-path is the paper's\nFigure 6b measured with packets: multipath striping turns disseminated\npath diversity into delivered bytes.\n")
}
