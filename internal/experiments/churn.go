package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/bgp"
	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/metrics"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/traffic"
	"scionmpr/internal/trust"
)

// Churn timeline (compressed virtual time: beaconing every second instead
// of every ten minutes, so recovery dynamics fit in a thirty-second run).
// Phases: beacon bootstrap [0, 3s), warm [3s, 6s), flap churn [6s, 24s),
// recovery [24s, 30s).
const (
	churnBeaconInterval = 1 * time.Second
	churnTrafficStart   = 3 * time.Second
	churnWarmLen        = 3 * time.Second
	churnStormLen       = 18 * time.Second
	churnRecoveryLen    = 6 * time.Second
	// Each flapped link is down churnFlapDown out of every churnFlapPeriod.
	churnFlapDown   = 2 * time.Second
	churnFlapPeriod = 6 * time.Second
	// churnRevTTL bounds how long sources trust SCMP-learned failures;
	// shorter than the flap period so healed links are readopted mid-storm.
	churnRevTTL    = 1500 * time.Millisecond
	churnChunkSize = 256 << 10
	// churnLinkRate trades fidelity for event volume: only goodput
	// ratios matter here, and 100 Mbps links keep the 30-second window
	// (vs the capacity experiment's 2 seconds) to a few hundred chunk
	// admissions per flow-second. Chunk serialization is ~20ms, plenty
	// of resolution against 2-second flaps.
	churnLinkRate = 1.25e7
)

// ChurnSeries is one routing variant's behavior under continuous flap
// churn: disconnection windows, goodput per phase, and control-plane cost.
type ChurnSeries struct {
	Name  string
	Flows int
	// DisconnectedFlows is how many flows saw at least one outage.
	DisconnectedFlows int
	// Outages are all time-to-reconnect samples across flows, including
	// windows still open at the end of the run.
	Outages []time.Duration
	// Goodput aggregated over all pairs per phase (bytes/s).
	WarmGoodput, ChurnGoodput, RecoveryGoodput float64
	// Control-plane bytes on the beaconing network per phase (zero for
	// BGP, whose routes are static at flap timescales — MRAI alone
	// exceeds the flap period, so no reconvergence is modeled).
	WarmCtrlBytes, ChurnCtrlBytes uint64
	// Traffic-engine reaction counters summed over all pairs.
	Revocations, Requeries, Reprobes uint64
	// FlapInjections is how many link-down events the chaos engine fired.
	FlapInjections uint64
}

// ReconnectQuantile returns the q-quantile of the time-to-reconnect
// samples (zero when no flow ever disconnected).
func (s *ChurnSeries) ReconnectQuantile(q float64) time.Duration {
	if len(s.Outages) == 0 {
		return 0
	}
	return time.Duration(metrics.NewCDF(metrics.Floats(s.Outages)).Quantile(q))
}

// MeanReconnect returns the mean time-to-reconnect (zero without outages).
func (s *ChurnSeries) MeanReconnect() time.Duration {
	if len(s.Outages) == 0 {
		return 0
	}
	return time.Duration(metrics.NewCDF(metrics.Floats(s.Outages)).Mean())
}

// GoodputDip is churn-phase goodput relative to the warm phase.
func (s *ChurnSeries) GoodputDip() float64 {
	if s.WarmGoodput <= 0 {
		return 0
	}
	return s.ChurnGoodput / s.WarmGoodput
}

// GoodputRecovery is recovery-phase goodput relative to the warm phase.
func (s *ChurnSeries) GoodputRecovery() float64 {
	if s.WarmGoodput <= 0 {
		return 0
	}
	return s.RecoveryGoodput / s.WarmGoodput
}

// ChurnResult is the continuous-churn resilience comparison: the Figure 6a
// variants (diversity, baseline, BGP best-path) measured end to end while
// links on the evaluated paths flap on a deterministic schedule.
type ChurnResult struct {
	Scale Scale
	// FlappedLinks is how many distinct links the schedule flaps, drawn
	// from the links carrying the sampled pairs' BGP best paths.
	FlappedLinks int
	// CandidateLinks is the size of the pool the flapped links came from.
	CandidateLinks int
	Pairs          [][2]addr.IA
	Series         []ChurnSeries
}

// RunChurn measures recovery under continuous link churn. One live
// co-simulation per variant: beacon servers keep disseminating every
// interval while a chaos engine flaps links on both the control and the
// data plane. Traffic flows look paths up from the beacon stores, fail
// over on SCMP, back off when cut off, and re-probe when revocation state
// expires. The paper's Figure 6a claim — diversity-based dissemination
// keeps pairs connected through failures that disconnect best-path
// routing — is measured here as time-to-reconnect and goodput recovery
// rather than as static max-flow.
func RunChurn(s Scale) (*ChurnResult, error) {
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	pairs := e.samplePairs()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no pairs to sample on the core topology")
	}
	// BGP converges once on the core members' original-relationship
	// subgraph; its best paths both serve the BGP series and pick the
	// links worth flapping (failures that provably hit evaluated paths).
	bgpRes, err := bgp.Run(bgp.DefaultConfig(e.coreSub))
	if err != nil {
		return nil, err
	}
	cands := churnFlapCandidates(e, bgpRes, pairs)
	if len(cands) == 0 {
		return nil, fmt.Errorf("experiments: no flap candidate links on the sampled pairs")
	}
	nflap := len(cands) / 3
	if nflap < 4 {
		nflap = 4
	}
	if nflap > len(cands) {
		nflap = len(cands)
	}
	stormStart := sim.Time(churnTrafficStart + churnWarmLen)
	stormEnd := stormStart + sim.Time(churnStormLen)
	sched := chaos.FlapChurn(s.Seed, cands, nflap, stormStart, stormEnd,
		churnFlapDown, churnFlapPeriod)

	res := &ChurnResult{
		Scale:          s,
		FlappedLinks:   nflap,
		CandidateLinks: len(cands),
		Pairs:          pairs,
	}
	div, err := scionChurn(e, "SCION Diversity",
		core.NewDiversity(core.DefaultParams(s.DissemLimit)), pairs, sched)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, div)
	base, err := scionChurn(e, "SCION Baseline", core.NewBaseline(s.DissemLimit), pairs, sched)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, base)
	best, err := bgpChurn(e, bgpRes, pairs, sched)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, best)
	return res, nil
}

// churnFlapCandidates maps every link on a sampled pair's BGP best path
// into the core topology, deduplicated in deterministic pair order.
func churnFlapCandidates(e *env, res *bgp.Result, pairs [][2]addr.IA) []topology.LinkID {
	seen := map[topology.LinkID]bool{}
	var out []topology.LinkID
	for _, pr := range pairs {
		sp := res.Speakers[pr[0]]
		if sp == nil {
			continue
		}
		rt := sp.Best(pr[1])
		if rt == nil {
			continue
		}
		ases := append([]addr.IA{pr[0]}, rt.Path...)
		for i := 0; i+1 < len(ases); i++ {
			links := e.core.LinksBetween(ases[i], ases[i+1])
			if len(links) == 0 {
				continue
			}
			if id := links[0].ID; !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// churnEnd is the total virtual duration of one churn run.
func churnEnd() sim.Time {
	return sim.Time(churnTrafficStart + churnWarmLen + churnStormLen + churnRecoveryLen)
}

// scionChurn runs one SCION variant live: beacon servers tick on a
// control-plane network while flows forward on a separate data-plane
// fabric, and the chaos engine flaps links on both. Path lookups read the
// beacon stores at lookup time, so dissemination lag and re-propagation
// over healed links are part of what is measured.
func scionChurn(e *env, name string, factory core.Factory, pairs [][2]addr.IA,
	sched *chaos.Schedule) (ChurnSeries, error) {

	infra, err := trust.NewInfra(e.core, trust.Sized)
	if err != nil {
		return ChurnSeries{}, err
	}
	clock := &sim.Simulator{}
	ctrl := sim.NewNetwork(clock, e.core, 10*time.Millisecond)
	data := sim.NewNetwork(clock, e.core, 5*time.Millisecond)
	fabric := dataplane.NewFabric(data, infra.ForwardingKey)
	servers := map[addr.IA]*beacon.Server{}
	for _, ia := range e.core.IAs() {
		srv, err := beacon.NewServer(beacon.ServerConfig{
			Local:       ia,
			Topo:        e.core,
			Net:         ctrl,
			Signer:      infra.SignerFor(ia),
			Selector:    factory(ia),
			StoreLimit:  e.scale.StoreLimit,
			Mode:        beacon.CoreMode,
			PCBLifetime: time.Hour,
		})
		if err != nil {
			return ChurnSeries{}, err
		}
		servers[ia] = srv
	}
	end := churnEnd()
	for _, ia := range e.core.IAs() {
		clock.Every(0, churnBeaconInterval, end, servers[ia].Tick)
	}
	// Flaps hit the PCB transport (silent drops) and the fabric (SCMP at
	// the upstream router); beacon servers revoke affected state the
	// moment a link goes down and re-learn it from neighbors' next ticks
	// after it heals.
	eng := chaos.NewEngine(clock, ctrl, fabric)
	eng.OnFail = func(id topology.LinkID) {
		if l := e.core.LinkByID(id); l != nil {
			for _, ia := range e.core.IAs() {
				servers[ia].HandleLinkFailure(l)
			}
		}
	}
	if err := eng.Apply(sched); err != nil {
		return ChurnSeries{}, err
	}
	// Live path provider: disseminated segments at the destination,
	// authorized on demand. Authorization is cached per link sequence —
	// hop-field MACs do not depend on lookup time.
	authCache := map[string]*dataplane.FwdPath{}
	provider := func(src, dst addr.IA) ([]*dataplane.FwdPath, error) {
		var out []*dataplane.FwdPath
		for _, links := range servers[dst].Segments(clock.Now(), src) {
			key := segCacheKey(links)
			fp := authCache[key]
			if fp == nil {
				path, ok := hopsFromLinks(e.core, links, src, dst)
				if !ok {
					continue
				}
				fp, err = dataplane.Authorize(path, infra.ForwardingKey)
				if err != nil {
					continue
				}
				authCache[key] = fp
			}
			out = append(out, fp)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("churn: no disseminated path %s -> %s", src, dst)
		}
		return out, nil
	}
	ser, err := churnMeasure(clock, data, ctrl, fabric, provider,
		func() traffic.Scheduler { return &traffic.WeightedBottleneck{} }, pairs, eng, e.scale.Seed)
	ser.Name = name
	return ser, err
}

// bgpChurn runs the comparison floor: each pair forwards on its converged
// best path, which stays fixed through the churn — BGP cannot reconverge
// within a flap period (MRAI alone is longer), so a downed best path
// means disconnection until the link heals and revocation state lapses.
func bgpChurn(e *env, res *bgp.Result, pairs [][2]addr.IA, coreSched *chaos.Schedule) (ChurnSeries, error) {
	keys := func(ia addr.IA) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], ia.Uint64()^0x5ca1ab1ecafe)
		return b[:]
	}
	clock := &sim.Simulator{}
	net := sim.NewNetwork(clock, e.coreSub, 5*time.Millisecond)
	fabric := dataplane.NewFabric(net, keys)
	best := map[[2]addr.IA]*dataplane.FwdPath{}
	for _, pr := range pairs {
		fp, err := bgpBestPath(res, e.coreSub, keys, pr[0], pr[1])
		if err != nil {
			continue
		}
		best[pr] = fp
	}
	provider := func(src, dst addr.IA) ([]*dataplane.FwdPath, error) {
		if fp := best[[2]addr.IA{src, dst}]; fp != nil {
			return []*dataplane.FwdPath{fp}, nil
		}
		return nil, fmt.Errorf("churn: no BGP route %s -> %s", src, dst)
	}
	eng := chaos.NewEngine(clock, fabric)
	if err := eng.Apply(translateSchedule(coreSched, e.core, e.coreSub)); err != nil {
		return ChurnSeries{}, err
	}
	ser, err := churnMeasure(clock, net, nil, fabric, provider,
		func() traffic.Scheduler { return &traffic.SingleBest{} }, pairs, eng, e.scale.Seed)
	ser.Name = "BGP best-path"
	return ser, err
}

// translateSchedule maps a schedule's link IDs from one graph to another
// by link endpoints, dropping events whose link has no counterpart.
func translateSchedule(sched *chaos.Schedule, from, to *topology.Graph) *chaos.Schedule {
	out := &chaos.Schedule{Seed: sched.Seed, End: sched.End}
	for _, ev := range sched.Events {
		l := from.LinkByID(ev.Link)
		if l == nil {
			continue
		}
		links := to.LinksBetween(l.A, l.B)
		if len(links) == 0 {
			continue
		}
		ev.Link = links[0].ID
		out.Events = append(out.Events, ev)
	}
	return out
}

// segCacheKey is a stable identity for a disseminated link sequence.
func segCacheKey(links []seg.LinkKey) string {
	var b strings.Builder
	for _, lk := range links {
		fmt.Fprintf(&b, "%s#%d|", lk.IA, lk.If)
	}
	return b.String()
}

// churnMeasure drives one variant's flows through the churn timeline and
// collects the series. Pairs get isolated token buckets (as in the
// capacity experiment) so each measures its own path set, not cross-pair
// contention. ctrl may be nil (BGP has no live control plane).
func churnMeasure(clock *sim.Simulator, data *sim.Network, ctrl *sim.Network,
	fabric *dataplane.Fabric, provider traffic.PathProvider,
	sched func() traffic.Scheduler, pairs [][2]addr.IA,
	eng *chaos.Engine, seed int64) (ChurnSeries, error) {

	engines := make([]*traffic.Engine, len(pairs))
	flows := make([]*traffic.Flow, len(pairs))
	for i, pr := range pairs {
		te, err := traffic.NewEngine(traffic.Config{
			Clock:         clock,
			Net:           data,
			Fabric:        fabric,
			Provider:      provider,
			Links:         traffic.NewLinkModel(traffic.UniformCapacity(churnLinkRate)),
			Scheduler:     sched,
			ChunkSize:     churnChunkSize,
			MinGrant:      churnChunkSize / 4,
			MaxPaths:      8,
			RetryDelayMax: 1 * time.Second,
			RevocationTTL: churnRevTTL,
			// Flows ride out any outage; disconnection shows up as
			// time-to-reconnect, not as flow failure.
			MaxRetries: 1 << 20,
			Seed:       seed + int64(i)*7919,
		})
		if err != nil {
			return ChurnSeries{}, err
		}
		engines[i] = te
		flows[i] = te.Add(traffic.FlowSpec{ID: i, Src: pr[0], Dst: pr[1], Start: churnTrafficStart, Size: 0})
	}
	warmEnd := sim.Time(churnTrafficStart + churnWarmLen)
	stormEnd := warmEnd + sim.Time(churnStormLen)
	end := churnEnd()
	totalSent := func() int64 {
		var sum int64
		for _, f := range flows {
			sum += f.Sent()
		}
		return sum
	}
	var ser ChurnSeries
	var atWarmEnd, atStormEnd int64
	if ctrl != nil {
		// Exclude the bootstrap flood from the warm overhead window.
		clock.At(sim.Time(churnTrafficStart), func() { ctrl.ResetCounters() })
	}
	clock.At(warmEnd, func() {
		atWarmEnd = totalSent()
		if ctrl != nil {
			ser.WarmCtrlBytes = ctrl.GrandTotalTx()
			ctrl.ResetCounters()
		}
	})
	clock.At(stormEnd, func() {
		atStormEnd = totalSent()
		if ctrl != nil {
			ser.ChurnCtrlBytes = ctrl.GrandTotalTx()
		}
	})
	clock.RunUntil(end)

	ser.Flows = len(flows)
	ser.WarmGoodput = float64(atWarmEnd) / churnWarmLen.Seconds()
	ser.ChurnGoodput = float64(atStormEnd-atWarmEnd) / churnStormLen.Seconds()
	ser.RecoveryGoodput = float64(totalSent()-atStormEnd) / churnRecoveryLen.Seconds()
	for _, f := range flows {
		n := len(ser.Outages)
		ser.Outages = append(ser.Outages, f.Outages()...)
		if open := f.OpenOutage(end); open > 0 {
			ser.Outages = append(ser.Outages, open)
		}
		if len(ser.Outages) > n {
			ser.DisconnectedFlows++
		}
	}
	for _, te := range engines {
		ser.Revocations += te.Revocations
		ser.Requeries += te.Requeries
		ser.Reprobes += te.Reprobes
	}
	if eng != nil {
		ser.FlapInjections = eng.Injections[chaos.Flap]
	}
	return ser, nil
}

// CheckOrdering verifies the paper-shaped outcome: diversity reconnects
// and recovers no worse than the baseline (small tolerance — both are
// multipath), and both do strictly better than BGP best-path.
func (r *ChurnResult) CheckOrdering() error {
	byName := map[string]*ChurnSeries{}
	for i := range r.Series {
		byName[r.Series[i].Name] = &r.Series[i]
	}
	div, base, bgp := byName["SCION Diversity"], byName["SCION Baseline"], byName["BGP best-path"]
	if div == nil || base == nil || bgp == nil {
		return fmt.Errorf("churn: missing series")
	}
	const slack = 50 * time.Millisecond
	if d, b := div.MeanReconnect(), base.MeanReconnect(); d > b+slack {
		return fmt.Errorf("churn: diversity mean reconnect %v worse than baseline %v", d, b)
	}
	if d, b := div.MeanReconnect(), bgp.MeanReconnect(); d >= b {
		return fmt.Errorf("churn: diversity mean reconnect %v not better than BGP %v", d, b)
	}
	if d, b := base.MeanReconnect(), bgp.MeanReconnect(); d >= b {
		return fmt.Errorf("churn: baseline mean reconnect %v not better than BGP %v", d, b)
	}
	// Recovery compares absolute delivered rate after the churn: a ratio
	// to the series' own warm phase would flatter BGP, whose warm level
	// is already a single link's worth.
	if d, b := div.RecoveryGoodput, base.RecoveryGoodput; d < b*0.95 {
		return fmt.Errorf("churn: diversity recovery goodput %.0f worse than baseline %.0f", d, b)
	}
	if d, b := div.RecoveryGoodput, bgp.RecoveryGoodput; d <= b {
		return fmt.Errorf("churn: diversity recovery goodput %.0f not better than BGP %.0f", d, b)
	}
	if d, b := base.RecoveryGoodput, bgp.RecoveryGoodput; d <= b {
		return fmt.Errorf("churn: baseline recovery goodput %.0f not better than BGP %.0f", d, b)
	}
	return nil
}

// Print renders the comparison deterministically.
func (r *ChurnResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== Continuous-churn resilience (Figure 6a under live flap churn) ==\n")
	fmt.Fprintf(w, "%d pairs; %d of %d best-path links flapping (down %v of every %v) for %v\n",
		len(r.Pairs), r.FlappedLinks, r.CandidateLinks, churnFlapDown, churnFlapPeriod, churnStormLen)
	fmt.Fprintf(w, "phases: warm %v, churn %v, recovery %v; beacon interval %v; revocation TTL %v\n\n",
		churnWarmLen, churnStormLen, churnRecoveryLen, churnBeaconInterval, churnRevTTL)
	tbl := metrics.Table{
		Header: []string{"series", "flows hit", "outages", "reconnect p50", "p90", "max", "dip", "recovery"},
	}
	for i := range r.Series {
		s := &r.Series[i]
		tbl.Rows = append(tbl.Rows, []string{
			s.Name,
			fmt.Sprintf("%d/%d", s.DisconnectedFlows, s.Flows),
			fmt.Sprintf("%d", len(s.Outages)),
			fmtReconnect(s.ReconnectQuantile(0.5)),
			fmtReconnect(s.ReconnectQuantile(0.9)),
			fmtReconnect(s.ReconnectQuantile(1)),
			fmt.Sprintf("%.2f", s.GoodputDip()),
			fmt.Sprintf("%.2f", s.GoodputRecovery()),
		})
	}
	tbl.Fprint(w)
	fmt.Fprintf(w, "\naggregate goodput (warm -> churn -> recovery) and reaction counters:\n")
	for i := range r.Series {
		s := &r.Series[i]
		fmt.Fprintf(w, "  %-16s %s -> %s -> %s   revocations=%d requeries=%d reprobes=%d flaps=%d\n",
			s.Name, metrics.FmtRate(s.WarmGoodput), metrics.FmtRate(s.ChurnGoodput),
			metrics.FmtRate(s.RecoveryGoodput), s.Revocations, s.Requeries, s.Reprobes, s.FlapInjections)
	}
	fmt.Fprintf(w, "\ncontrol-plane overhead (beaconing bytes, warm vs churn window):\n")
	for i := range r.Series {
		s := &r.Series[i]
		if s.WarmCtrlBytes == 0 && s.ChurnCtrlBytes == 0 {
			fmt.Fprintf(w, "  %-16s static routes (no reconvergence within flap timescales)\n", s.Name)
			continue
		}
		fmt.Fprintf(w, "  %-16s %s -> %s\n", s.Name,
			metrics.FmtBytes(float64(s.WarmCtrlBytes)), metrics.FmtBytes(float64(s.ChurnCtrlBytes)))
	}
	fmt.Fprintf(w, "\nmultipath dissemination keeps pairs connected through flaps that cut\nBGP's only path: failover is an SCMP round trip plus a path-set switch,\nwhile best-path routing waits out the outage.\n")
}

// fmtReconnect prints a reconnect duration with stable precision.
func fmtReconnect(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}
