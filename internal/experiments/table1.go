package experiments

import (
	"fmt"
	"io"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/core"
	"scionmpr/internal/metrics"
	"scionmpr/internal/pathdb"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// Table1Row is one control-plane component with its communication scope,
// firing frequency (Table 1 of the paper) and the message/byte counts
// measured on the demo network.
type Table1Row struct {
	Component string
	Scope     string // AS | ISD | Global
	Frequency string // Hours | Minutes | Seconds
	Messages  uint64
	Bytes     uint64
}

// Table1Result is the measured reproduction of Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 exercises every control-plane component on the Figure 1 demo
// network — core beaconing, intra-ISD beaconing, the three lookup types,
// path (de-)registration, and revocation — and reports scope, frequency
// and measured traffic for each.
func RunTable1() (*Table1Result, error) {
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return nil, err
	}
	run := func(mode beacon.Mode) (*beacon.RunResult, error) {
		cfg := beacon.DefaultRunConfig(topo, mode, core.NewBaseline(5), 20)
		cfg.Duration = time.Hour
		cfg.Infra = infra
		return beacon.Run(cfg)
	}
	coreRun, err := run(beacon.CoreMode)
	if err != nil {
		return nil, err
	}
	intraRun, err := run(beacon.IntraMode)
	if err != nil {
		return nil, err
	}

	a1 := addr.MustIA(1, 0xff00_0000_0101)
	a6 := addr.MustIA(1, 0xff00_0000_0106)
	now := intraRun.End

	terminate := func(run *beacon.RunResult, origin, at addr.IA) []*seg.PCB {
		var out []*seg.PCB
		for _, e := range run.Servers[at].Store().Entries(run.End, origin) {
			t, err := e.PCB.Extend(infra.SignerFor(at), addr.IA{}, e.Ingress, 0, nil, 1472)
			if err == nil {
				out = append(out, t)
			}
		}
		return out
	}

	// Path servers: core PS at A-1, local PS at A-6.
	corePS := pathdb.NewServer(a1, true, sim.Time(time.Hour))
	localPS := pathdb.NewServer(a6, false, sim.Time(time.Hour))

	// Registration: every leaf of ISD 1 registers its segments at the
	// core path server (intra-ISD scope, every tens of minutes).
	const regHeader = 16
	var regMsgs, regBytes uint64
	for _, ia := range topo.IAs() {
		if ia.ISD != 1 || topo.AS(ia).Core {
			continue
		}
		for _, cs := range topo.CoreIAs() {
			if cs.ISD != 1 {
				continue
			}
			for _, s := range terminate(intraRun, cs, ia) {
				if err := corePS.RegisterDown(now, s); err == nil {
					regMsgs++
					regBytes += uint64(s.WireLen() + regHeader)
				}
			}
		}
	}
	// Core segments registered at the core PS (from core beaconing).
	for _, cs := range topo.CoreIAs() {
		for _, s := range terminate(coreRun, cs, a1) {
			if err := corePS.RegisterCore(now, s); err == nil {
				regMsgs++
				regBytes += uint64(s.WireLen() + regHeader)
			}
		}
	}
	// Up segments at the local PS of A-6.
	for _, cs := range []addr.IA{a1} {
		for _, s := range terminate(intraRun, cs, a6) {
			if err := localPS.RegisterUp(now, s); err == nil {
				regMsgs++
				regBytes += uint64(s.WireLen() + regHeader)
			}
		}
	}

	// Lookups with a Zipf workload over registered destinations.
	lookupTraffic := func(n int, do func(dst addr.IA) []*seg.PCB, dsts []addr.IA) (uint64, uint64) {
		if len(dsts) == 0 {
			return 0, 0
		}
		w := pathdb.NewZipfWorkload(dsts, 1.2, 7)
		var msgs, bytes uint64
		for i := 0; i < n; i++ {
			dst := w.Next()
			segs := do(dst)
			req := pathdb.Request{Type: pathdb.Down, Dst: dst}
			rep := pathdb.Reply{Segments: segs}
			msgs += 2
			bytes += uint64(req.WireLen() + rep.WireLen())
		}
		return msgs, bytes
	}
	downDsts := corePS.DownDestinations()
	downMsgs, downBytes := lookupTraffic(200, func(dst addr.IA) []*seg.PCB {
		return corePS.LookupDown(now, dst)
	}, downDsts)
	coreMsgs, coreBytes := lookupTraffic(100, func(dst addr.IA) []*seg.PCB {
		return corePS.LookupCore(now, dst)
	}, topo.CoreIAs())
	epMsgs, epBytes := lookupTraffic(100, func(addr.IA) []*seg.PCB {
		return localPS.LookupUp(now)
	}, []addr.IA{a6})

	// De-registration of one destination's segments.
	var deregMsgs, deregBytes uint64
	if len(downDsts) > 0 {
		for _, s := range corePS.LookupDown(now, downDsts[0]) {
			if corePS.Deregister(s) {
				deregMsgs++
				deregBytes += uint64(regHeader + 8)
			}
		}
	}

	// Revocation: fail the A-1 -> A-3 link; the owning AS revokes at the
	// core path server (intra-ISD scope, reactive / seconds).
	a3 := addr.MustIA(1, 0xff00_0000_0103)
	var revMsgs, revBytes uint64
	if links := topo.LinksBetween(a1, a3); len(links) > 0 {
		lk := seg.LinkKey{IA: a1, If: links[0].LocalIf(a1)}
		dropped := corePS.Revoke(lk) + localPS.Revoke(lk)
		revMsgs = uint64(dropped)
		revBytes = revMsgs * 24 // revocation message: link key + timestamp + MAC
	}

	res := &Table1Result{Rows: []Table1Row{
		{"Core Beaconing", "Global", "Minutes", sumMsgs(coreRun), coreRun.TotalOverheadBytes()},
		{"Intra-ISD Beaconing", "ISD", "Minutes", sumMsgs(intraRun), intraRun.TotalOverheadBytes()},
		{"Down-Path Segment Lookup", "Global", "Seconds", downMsgs, downBytes},
		{"Core-Path Segment Lookup", "ISD", "Seconds", coreMsgs, coreBytes},
		{"Endpoint Path Lookup", "AS", "Seconds", epMsgs, epBytes},
		{"Path (De-)Registration", "ISD", "Minutes", regMsgs + deregMsgs, regBytes + deregBytes},
		{"Path Revocation", "ISD", "Seconds", revMsgs, revBytes},
	}}
	return res, nil
}

func sumMsgs(r *beacon.RunResult) uint64 {
	var n uint64
	for _, srv := range r.Servers {
		n += srv.Originated + srv.Propagated
	}
	return n
}

// Print renders Table 1 with the measured columns appended.
func (r *Table1Result) Print(w io.Writer) {
	t := &metrics.Table{
		Header: []string{"SCION Control Plane Component", "Scope", "Frequency", "Messages", "Bytes"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Component, row.Scope, row.Frequency,
			fmt.Sprintf("%d", row.Messages), fmt.Sprintf("%d", row.Bytes),
		})
	}
	fmt.Fprintln(w, "== Table 1: path management overhead comparison (measured on the Figure 1 demo network, 1h) ==")
	t.Fprint(w)
}
