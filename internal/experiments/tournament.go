package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/chaos"
	"scionmpr/internal/metrics"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/traffic"
	"scionmpr/scion"
)

// Tournament timeline (compressed virtual time, as in the churn
// experiment): traffic starts immediately on the bootstrapped network,
// warms up, rides out a fault storm, and recovers.
const (
	tournWarmLen     = 2 * time.Second
	tournStormLen    = 6 * time.Second
	tournRecoveryLen = 2 * time.Second
	// Each faulted link is disturbed tournFaultDown out of every
	// tournFaultPeriod during the storm.
	tournFaultDown   = 1 * time.Second
	tournFaultPeriod = 3 * time.Second
	// tournSpikeDelay is the storm's one-way latency override — an order
	// of magnitude above the 5ms base, so latency-sensitive policies have
	// something to route around.
	tournSpikeDelay = 60 * time.Millisecond
	// tournRevTTL bounds how long endpoints and path servers distrust a
	// revoked link; shorter than the fault period so healed links are
	// readopted mid-storm.
	tournRevTTL = 1500 * time.Millisecond
	// tournBeaconingTime keeps per-run bootstrap cheap (the grid rebuilds
	// the network for every run so no state leaks between cells): three
	// beacon intervals saturate dissemination on the core topology.
	tournBeaconingTime = 30 * time.Minute
	tournChunkSize     = 256 << 10
	// tournLinkRate: 100 Mbps links, the churn experiment's tradeoff —
	// only relative goodput matters and chunk serialization stays well
	// under the fault timescales.
	tournLinkRate = 1.25e7
)

// TournamentConfig is the experiment grid: every policy runs in every
// cell (topology variant x workload x chaos axis) on identical inputs.
type TournamentConfig struct {
	// Topologies selects the beaconing algorithm disseminating the path
	// sets: "diversity" and/or "baseline".
	Topologies []string
	// Workloads: "steady" (one open-ended flow per pair) and/or "bursty"
	// (Poisson arrivals, heavy-tailed sizes, Zipf pair popularity).
	Workloads []string
	// Chaos: "calm" (no faults), "flap" (links fail and heal on a seeded
	// schedule) and/or "spike" (latency storms; no revocations, so only
	// telemetry-driven policies can react).
	Chaos []string
	// Policies are strategy specs accepted by strategy.Parse.
	Policies []string
}

// DefaultTournamentConfig is the full grid over every registered policy.
func DefaultTournamentConfig() TournamentConfig {
	return TournamentConfig{
		Topologies: []string{"diversity", "baseline"},
		Workloads:  []string{"steady", "bursty"},
		Chaos:      []string{"calm", "flap", "spike"},
		Policies:   traffic.SchedulerNames(),
	}
}

// TournamentRun is one (cell, policy) measurement.
type TournamentRun struct {
	Topology, Workload, Chaos, Policy string

	// GoodputBps is aggregate delivered bytes per second of run time.
	GoodputBps float64
	// PathLifetime is the mean time a flow stays on a chosen path set
	// before the policy switches it.
	PathLifetime time.Duration
	// SwitchRate is path switches per flow-second.
	SwitchRate float64
	// LookupOps is the control-plane read pressure: path-server lookups
	// plus endpoint requeries and reprobes.
	LookupOps uint64
	// LossFrac is lost bytes over attempted bytes.
	LossFrac float64

	Flows, Completed, Failed, Outages int
	Revocations, Injections           uint64
}

// Cell names the grid cell the run belongs to.
func (r *TournamentRun) Cell() string {
	return r.Topology + "/" + r.Workload + "/" + r.Chaos
}

// TournamentResult is the full strategy comparison with its
// deterministic fingerprint.
type TournamentResult struct {
	Scale  Scale
	Config TournamentConfig
	Pairs  [][2]addr.IA
	// FaultedLinks/CandidateLinks describe the chaos target pool (links
	// drawn from the evaluated path sets, per topology variant).
	FaultedLinks, CandidateLinks map[string]int
	Runs                         []TournamentRun
	// Winner is the policy with the highest mean cell-normalized goodput
	// (ties break toward the earlier entry in Config.Policies). The
	// traffic engine's default scheduler is pinned to this winner.
	Winner string

	fingerprint string
}

// Fingerprint digests every numeric observable plus each run's telemetry
// snapshot and structured trace. Equal scales, configs and seeds must
// produce equal fingerprints for every worker count.
func (r *TournamentResult) Fingerprint() string { return r.fingerprint }

// RunTournament plays every policy against every grid cell. Each run
// bootstraps a fresh SCION network (so no revocation or cache state
// leaks between runs), derives the fault schedule from the links the
// sampled pairs' path sets actually traverse, and drives all flows
// through one shared traffic engine — contention between flows is part
// of the game, which is what makes disjointness-aware policies
// interesting.
func RunTournament(s Scale, tc TournamentConfig) (*TournamentResult, error) {
	if len(tc.Topologies) == 0 || len(tc.Workloads) == 0 ||
		len(tc.Chaos) == 0 || len(tc.Policies) == 0 {
		return nil, fmt.Errorf("experiments: tournament needs a non-empty grid")
	}
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	pairs := e.samplePairs()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no pairs to sample on the core topology")
	}
	res := &TournamentResult{
		Scale:          s,
		Config:         tc,
		Pairs:          pairs,
		FaultedLinks:   map[string]int{},
		CandidateLinks: map[string]int{},
	}
	h := sha256.New()
	for _, topo := range tc.Topologies {
		for _, wl := range tc.Workloads {
			for _, ch := range tc.Chaos {
				for _, pol := range tc.Policies {
					run, err := tournamentRun(e, pairs, topo, wl, ch, pol, res, h)
					if err != nil {
						return nil, fmt.Errorf("experiments: tournament %s/%s/%s %q: %w",
							topo, wl, ch, pol, err)
					}
					res.Runs = append(res.Runs, run)
				}
			}
		}
	}
	res.Winner = tournamentWinner(tc.Policies, res.Runs)
	res.fingerprint = hex.EncodeToString(h.Sum(nil))
	return res, nil
}

// tournEnd is the virtual duration of one tournament run.
func tournEnd() sim.Time {
	return sim.Time(tournWarmLen + tournStormLen + tournRecoveryLen)
}

// tournamentRun executes one (cell, policy) run and folds its
// observables into the tournament fingerprint.
func tournamentRun(e *env, pairs [][2]addr.IA, topoAxis, wl, ch, pol string,
	res *TournamentResult, h io.Writer) (TournamentRun, error) {

	factory, err := traffic.NewScheduler(pol)
	if err != nil {
		return TournamentRun{}, err
	}
	opts := scion.DefaultOptions()
	if topoAxis == "baseline" {
		opts.Algorithm = scion.Baseline
	} else if topoAxis != "diversity" {
		return TournamentRun{}, fmt.Errorf("unknown topology axis %q", topoAxis)
	}
	opts.DisseminationLimit = e.scale.DissemLimit
	opts.StoreLimit = e.scale.StoreLimit
	opts.BeaconingTime = tournBeaconingTime
	opts.RevocationTTL = tournRevTTL
	opts.Workers = e.scale.Workers
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(1 << 16)
	opts.Telemetry = reg
	opts.Tracer = tracer
	n, err := scion.NewNetwork(e.core, opts)
	if err != nil {
		return TournamentRun{}, err
	}
	// The fault pool comes from the paths actually under evaluation, so
	// storms are guaranteed to hit the path sets being scored. The lookups
	// this performs also warm the path cache identically for every policy.
	cands, err := tournamentFaultCandidates(n, pairs)
	if err != nil {
		return TournamentRun{}, err
	}
	cell := topoAxis + "/" + wl + "/" + ch
	res.CandidateLinks[topoAxis] = len(cands)

	end := tournEnd()
	stormStart := sim.Time(tournWarmLen)
	stormEnd := stormStart + sim.Time(tournStormLen)
	nfault := len(cands) / 3
	if nfault < 4 {
		nfault = 4
	}
	if nfault > len(cands) {
		nfault = len(cands)
	}
	var eng *chaos.Engine
	switch ch {
	case "calm":
	case "flap":
		res.FaultedLinks[topoAxis] = nfault
		sched := chaos.FlapChurn(e.scale.Seed, cands, nfault, stormStart, stormEnd,
			tournFaultDown, tournFaultPeriod)
		eng = chaos.NewEngine(n.Clock(), n.Fabric())
		// A data-plane failure propagates to the control plane: the first
		// SCMP already revokes at the source, and NoteLinkDown models the
		// beacon servers revoking registered state at the path servers.
		eng.OnFail = func(id topology.LinkID) {
			if l := e.core.LinkByID(id); l != nil {
				n.NoteLinkDown(l)
			}
		}
		if err := eng.Apply(sched); err != nil {
			return TournamentRun{}, err
		}
	case "spike":
		res.FaultedLinks[topoAxis] = nfault
		sched := chaos.FlapChurn(e.scale.Seed, cands, nfault, stormStart, stormEnd,
			tournFaultDown, tournFaultPeriod)
		for i := range sched.Events {
			sched.Events[i].Kind = chaos.Spike
			sched.Events[i].Delay = tournSpikeDelay
		}
		eng = chaos.NewEngine(n.Clock(), n.Fabric())
		if err := eng.Apply(sched); err != nil {
			return TournamentRun{}, err
		}
	default:
		return TournamentRun{}, fmt.Errorf("unknown chaos axis %q", ch)
	}

	specs, err := tournamentWorkload(wl, pairs, e.scale.Seed)
	if err != nil {
		return TournamentRun{}, err
	}
	// One engine with one shared link model: flows contend for the same
	// token buckets, so spreading over disjoint paths pays off.
	te, err := traffic.NewEngine(traffic.Config{
		Clock:         n.Clock(),
		Net:           n.Fabric().Net,
		Fabric:        n.Fabric(),
		Provider:      n.Paths,
		Links:         traffic.NewLinkModel(traffic.UniformCapacity(tournLinkRate)),
		Scheduler:     factory,
		ChunkSize:     tournChunkSize,
		MinGrant:      tournChunkSize / 4,
		MaxPaths:      8,
		RetryDelayMax: 1 * time.Second,
		RevocationTTL: tournRevTTL,
		// Flows ride out outages; disconnection shows up in the outage
		// and goodput columns, not as flow failure.
		MaxRetries:    1 << 20,
		Seed:          e.scale.Seed,
		Telemetry:     reg,
		RevocationAge: n.PathRevocationAge,
	})
	if err != nil {
		return TournamentRun{}, err
	}
	flows := make([]*traffic.Flow, len(specs))
	for i, spec := range specs {
		flows[i] = te.Add(spec)
	}
	n.Clock().RunUntil(end)

	run := TournamentRun{Topology: topoAxis, Workload: wl, Chaos: ch, Policy: pol, Flows: len(flows)}
	var sent, lost int64
	var switches int
	var flowSeconds float64
	for i, f := range flows {
		sent += f.Sent()
		lost += f.Lost()
		switches += f.PathSwitches()
		run.Outages += len(f.Outages())
		if f.OpenOutage(end) > 0 {
			run.Outages++
		}
		switch {
		case f.Done():
			run.Completed++
			flowSeconds += f.FCT().Seconds()
		case f.Failed():
			run.Failed++
		default:
			if active := time.Duration(end) - specs[i].Start; active > 0 {
				flowSeconds += active.Seconds()
			}
		}
	}
	run.GoodputBps = float64(sent) / time.Duration(end).Seconds()
	if sent+lost > 0 {
		run.LossFrac = float64(lost) / float64(sent+lost)
	}
	if flowSeconds > 0 {
		run.SwitchRate = float64(switches) / flowSeconds
		// Every flow makes one initial choice; each switch starts a new
		// path residency.
		run.PathLifetime = time.Duration(flowSeconds / float64(switches+len(flows)) * float64(time.Second))
	}
	run.Revocations = te.Revocations
	run.LookupOps = te.Requeries + te.Reprobes
	for _, ia := range e.core.IAs() {
		run.LookupOps += n.PathServer(ia).Lookups
	}
	if eng != nil {
		run.Injections = eng.Injections[chaos.Flap] + eng.Injections[chaos.Spike]
	}
	fingerprintRun(h, cell, &run, reg, tracer)
	return run, nil
}

// tournamentWorkload builds the cell's flow specs; the same workload
// (same seed) is replayed for every policy in the cell.
func tournamentWorkload(wl string, pairs [][2]addr.IA, seed int64) ([]traffic.FlowSpec, error) {
	switch wl {
	case "steady":
		specs := make([]traffic.FlowSpec, len(pairs))
		for i, pr := range pairs {
			specs[i] = traffic.FlowSpec{ID: i, Src: pr[0], Dst: pr[1], Start: 0, Size: 0}
		}
		return specs, nil
	case "bursty":
		flows := 3 * len(pairs)
		return traffic.Generate(traffic.WorkloadParams{
			Flows: flows,
			Pairs: pairs,
			// Arrivals span warm and storm; the recovery tail drains.
			ArrivalRate:   float64(flows) / (tournWarmLen + tournStormLen).Seconds(),
			MeanSize:      8 << 20,
			TailAlpha:     1.5,
			MaxSizeFactor: 20,
			ZipfS:         1.2,
			Seed:          seed,
		}), nil
	default:
		return nil, fmt.Errorf("unknown workload axis %q", wl)
	}
}

// tournamentFaultCandidates collects the distinct links traversed by the
// sampled pairs' looked-up path sets, in deterministic pair order.
func tournamentFaultCandidates(n *scion.Network, pairs [][2]addr.IA) ([]topology.LinkID, error) {
	seen := map[topology.LinkID]bool{}
	var out []topology.LinkID
	for _, pr := range pairs {
		paths, err := n.Paths(pr[0], pr[1])
		if err != nil {
			return nil, err
		}
		for _, fp := range paths {
			refs, err := fp.LinkRefs(n.Topo)
			if err != nil {
				return nil, err
			}
			for _, ref := range refs {
				if id := ref.Link.ID; !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	return out, nil
}

// fingerprintRun folds one run's deterministic observables into the
// tournament digest: the cell and policy, every numeric field, the
// run's telemetry snapshot, and its structured trace.
func fingerprintRun(h io.Writer, cell string, run *TournamentRun,
	reg *telemetry.Registry, tracer *telemetry.Tracer) {

	io.WriteString(h, cell)
	io.WriteString(h, "|")
	io.WriteString(h, run.Policy)
	io.WriteString(h, "\n")
	var b [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w64(math.Float64bits(run.GoodputBps))
	w64(math.Float64bits(run.SwitchRate))
	w64(math.Float64bits(run.LossFrac))
	w64(uint64(run.PathLifetime))
	w64(run.LookupOps)
	w64(uint64(run.Flows))
	w64(uint64(run.Completed))
	w64(uint64(run.Failed))
	w64(uint64(run.Outages))
	w64(run.Revocations)
	w64(run.Injections)
	reg.WriteSnapshot(h)
	tracer.WriteJSONL(h)
}

// tournamentWinner scores each policy by its goodput normalized to the
// best policy of the same cell (so easy cells do not dominate) and
// returns the highest mean; ties break toward the earlier policy.
func tournamentWinner(policies []string, runs []TournamentRun) string {
	cellMax := map[string]float64{}
	for i := range runs {
		if g := runs[i].GoodputBps; g > cellMax[runs[i].Cell()] {
			cellMax[runs[i].Cell()] = g
		}
	}
	score := map[string]float64{}
	for i := range runs {
		if max := cellMax[runs[i].Cell()]; max > 0 {
			score[runs[i].Policy] += runs[i].GoodputBps / max
		}
	}
	winner, best := "", math.Inf(-1)
	for _, pol := range policies {
		if s := score[pol]; s > best {
			winner, best = pol, s
		}
	}
	return winner
}

// NormalizedScores returns each policy's mean cell-normalized goodput.
func (r *TournamentResult) NormalizedScores() map[string]float64 {
	cellMax := map[string]float64{}
	cells := map[string]bool{}
	for i := range r.Runs {
		cells[r.Runs[i].Cell()] = true
		if g := r.Runs[i].GoodputBps; g > cellMax[r.Runs[i].Cell()] {
			cellMax[r.Runs[i].Cell()] = g
		}
	}
	out := map[string]float64{}
	for i := range r.Runs {
		if max := cellMax[r.Runs[i].Cell()]; max > 0 {
			out[r.Runs[i].Policy] += r.Runs[i].GoodputBps / max / float64(len(cells))
		}
	}
	return out
}

// Print renders the Table-1-style comparison: the per-cell goodput
// matrix, the aggregate per-policy summary, and the winner.
func (r *TournamentResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== Path-selection strategy tournament ==\n")
	fmt.Fprintf(w, "%d pairs; grid %s x %s x %s; %d policies; seed %d\n",
		len(r.Pairs), strings.Join(r.Config.Topologies, ","),
		strings.Join(r.Config.Workloads, ","), strings.Join(r.Config.Chaos, ","),
		len(r.Config.Policies), r.Scale.Seed)
	fmt.Fprintf(w, "timeline: warm %v, storm %v (down %v of every %v), recovery %v; revocation TTL %v\n",
		tournWarmLen, tournStormLen, tournFaultDown, tournFaultPeriod,
		tournRecoveryLen, tournRevTTL)
	for _, topo := range r.Config.Topologies {
		if c := r.CandidateLinks[topo]; c > 0 {
			fmt.Fprintf(w, "%s: %d of %d path-set links faulted during storms\n",
				topo, r.FaultedLinks[topo], c)
		}
	}

	fmt.Fprintf(w, "\nper-cell goodput, normalized to the cell's best policy:\n")
	matrix := metrics.Table{Header: append([]string{"cell"}, r.Config.Policies...)}
	byCell := map[string]map[string]*TournamentRun{}
	var cellOrder []string
	for i := range r.Runs {
		run := &r.Runs[i]
		if byCell[run.Cell()] == nil {
			byCell[run.Cell()] = map[string]*TournamentRun{}
			cellOrder = append(cellOrder, run.Cell())
		}
		byCell[run.Cell()][run.Policy] = run
	}
	for _, cell := range cellOrder {
		max := 0.0
		for _, run := range byCell[cell] {
			if run.GoodputBps > max {
				max = run.GoodputBps
			}
		}
		row := []string{cell}
		for _, pol := range r.Config.Policies {
			run := byCell[cell][pol]
			if run == nil || max <= 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", run.GoodputBps/max))
		}
		matrix.Rows = append(matrix.Rows, row)
	}
	matrix.Fprint(w)

	fmt.Fprintf(w, "\nper-policy aggregate over all %d cells:\n", len(cellOrder))
	scores := r.NormalizedScores()
	agg := metrics.Table{Header: []string{
		"policy", "norm goodput", "path lifetime", "switch/flow-s",
		"lookup ops", "loss", "done/fail", "outages"}}
	for _, pol := range r.Config.Policies {
		var lifetime float64
		var switchRate, loss float64
		var lookups uint64
		var done, failed, outages, cells int
		for i := range r.Runs {
			run := &r.Runs[i]
			if run.Policy != pol {
				continue
			}
			cells++
			lifetime += run.PathLifetime.Seconds()
			switchRate += run.SwitchRate
			loss += run.LossFrac
			lookups += run.LookupOps
			done += run.Completed
			failed += run.Failed
			outages += run.Outages
		}
		if cells == 0 {
			continue
		}
		agg.Rows = append(agg.Rows, []string{
			pol,
			fmt.Sprintf("%.3f", scores[pol]),
			(time.Duration(lifetime / float64(cells) * float64(time.Second))).Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", switchRate/float64(cells)),
			fmt.Sprintf("%d", lookups),
			fmt.Sprintf("%.4f", loss/float64(cells)),
			fmt.Sprintf("%d/%d", done, failed),
			fmt.Sprintf("%d", outages),
		})
	}
	agg.Fprint(w)
	fmt.Fprintf(w, "\nwinner: %s (promoted to the traffic engine's default scheduler)\n", r.Winner)
	fmt.Fprintf(w, "fingerprint: %s\n", r.Fingerprint())
}
