package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"scionmpr/internal/addr"
	"scionmpr/internal/traffic"
	"scionmpr/scion"
)

// capacityGoldens are the pre-refactor digests of the PR-1 capacity
// experiment (SmokeScale, Diversity beaconing, one scheduler per run),
// captured at the commit immediately before the schedulers moved behind
// the strategy.Policy interface. The refactor must be behavior-
// preserving: replaying the same runs through the new interface must
// reproduce these digests byte for byte.
var capacityGoldens = map[string]string{
	"single-best": "df3f35f6cfca0eecc013d53587dca6f886f82f5c9bac023920737c091e79f2ab",
	"round-robin": "1dd22067e6a09f5e70502e57fc5f4e49b3983863221df5c4d1cdb66306b60bb9",
	"weighted":    "18ece1a6ae01f39281e504b50bfb3fec868c2ff611ede46ff36059ccf11989db",
	"latency":     "260892f79e0a282f5e1e3208cbb02783e1ebdf997ba8d2e5d31127c3096db634",
}

// capacityDigest hashes one scheduler's capacity run: the scheduler name,
// the sampled pairs, and the exact per-pair goodput multiples.
func capacityDigest(name string, pairs [][2]addr.IA, mults []float64) string {
	h := sha256.New()
	h.Write([]byte(name))
	var b [8]byte
	for _, pr := range pairs {
		binary.BigEndian.PutUint64(b[:], pr[0].Uint64())
		h.Write(b[:])
		binary.BigEndian.PutUint64(b[:], pr[1].Uint64())
		h.Write(b[:])
	}
	for _, m := range mults {
		binary.BigEndian.PutUint64(b[:], math.Float64bits(m))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestCapacityDifferentialGolden replays the PR-1 capacity experiment
// through the strategy interface for each of the four refactored
// schedulers and asserts the per-pair goodput digests are byte-identical
// to the pre-refactor goldens.
func TestCapacityDifferentialGolden(t *testing.T) {
	e, err := newEnv(SmokeScale())
	if err != nil {
		t.Fatal(err)
	}
	pairs := e.samplePairs()
	if len(pairs) == 0 {
		t.Fatal("no pairs sampled")
	}
	for _, name := range []string{"single-best", "round-robin", "weighted", "latency"} {
		factory, err := traffic.NewScheduler(name)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
		mults, err := scionCapacityWith(e.core, scion.Diversity, factory, pairs)
		if err != nil {
			t.Fatalf("%s: capacity run: %v", name, err)
		}
		got := capacityDigest(name, pairs, mults)
		if want := capacityGoldens[name]; got != want {
			t.Errorf("%s: capacity digest changed after refactor:\n got  %s\n want %s",
				name, got, want)
		}
	}
}
