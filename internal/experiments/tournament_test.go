package experiments

import (
	"strings"
	"testing"

	"scionmpr/internal/traffic"
)

// tournamentTestGrid is the reduced grid the determinism tests run: one
// topology and workload, both fault axes, every registered policy.
func tournamentTestGrid() TournamentConfig {
	return TournamentConfig{
		Topologies: []string{"diversity"},
		Workloads:  []string{"steady"},
		Chaos:      []string{"flap", "spike"},
		Policies:   traffic.SchedulerNames(),
	}
}

// tournamentGolden pins the reduced grid's fingerprint at smoke scale,
// seed 1. It digests every run's metrics, telemetry snapshot and trace:
// any behavior change in beaconing, path lookup, revocation handling,
// the chaos engine, the traffic engine or a policy shows up here.
const tournamentGolden = "2bc0efc7e43d747d00932e964cc9b6a4b58bd03cddcc8c7537119b6948447315"

func TestTournamentGoldenFingerprint(t *testing.T) {
	s := SmokeScale()
	s.Workers = 1
	res, err := RunTournament(s, tournamentTestGrid())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Fingerprint(); got != tournamentGolden {
		t.Errorf("tournament fingerprint = %s, want %s", got, tournamentGolden)
	}
	found := false
	for _, pol := range res.Config.Policies {
		if pol == res.Winner {
			found = true
		}
	}
	if !found {
		t.Errorf("winner %q is not a configured policy", res.Winner)
	}
	if len(res.Runs) != 2*len(res.Config.Policies) {
		t.Errorf("got %d runs, want %d", len(res.Runs), 2*len(res.Config.Policies))
	}
}

// TestTournamentWorkerInvariance requires byte-identical fingerprints
// for every worker count (the beacon-bootstrap parallelism is the only
// concurrent phase) and that the seed actually changes the outcome.
func TestTournamentWorkerInvariance(t *testing.T) {
	grid := tournamentTestGrid()
	run := func(workers int, seed int64) string {
		s := SmokeScale()
		s.Workers = workers
		s.Seed = seed
		res, err := RunTournament(s, grid)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	ref := run(1, 1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w, 1); got != ref {
			t.Errorf("workers=%d fingerprint %s != workers=1 %s", w, got, ref)
		}
	}
	ref2 := run(1, 2)
	if ref2 == ref {
		t.Error("seed 2 produced the same fingerprint as seed 1")
	}
	if got := run(4, 2); got != ref2 {
		t.Errorf("workers=4 seed=2 fingerprint %s != workers=1 %s", got, ref2)
	}
}

// TestTournamentAxesAndPrint exercises the remaining grid axes (the
// baseline algorithm, the bursty workload, the calm chaos axis) and the
// rendered report.
func TestTournamentAxesAndPrint(t *testing.T) {
	def := DefaultTournamentConfig()
	if len(def.Topologies) != 2 || len(def.Workloads) != 2 || len(def.Chaos) != 3 {
		t.Errorf("default grid = %+v", def)
	}
	if len(def.Policies) != len(traffic.SchedulerNames()) {
		t.Errorf("default policies = %v", def.Policies)
	}
	s := SmokeScale()
	s.Workers = 1
	res, err := RunTournament(s, TournamentConfig{
		Topologies: []string{"baseline"},
		Workloads:  []string{"bursty"},
		Chaos:      []string{"calm"},
		Policies:   []string{"single-best", "weighted"},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := res.NormalizedScores()
	if len(scores) != 2 || scores[res.Winner] <= 0 {
		t.Errorf("scores = %v, winner %q", scores, res.Winner)
	}
	var buf strings.Builder
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{
		"strategy tournament", "baseline/bursty/calm", "single-best",
		"winner: " + res.Winner, "fingerprint: " + res.Fingerprint(),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q", want)
		}
	}
	for _, run := range res.Runs {
		if run.Flows == 0 || run.GoodputBps <= 0 {
			t.Errorf("run %s/%s has no traffic: %+v", run.Cell(), run.Policy, run)
		}
	}
}

func TestTournamentRejectsBadGrid(t *testing.T) {
	s := SmokeScale()
	if _, err := RunTournament(s, TournamentConfig{}); err == nil {
		t.Error("empty grid should be rejected")
	}
	bad := []TournamentConfig{
		{Topologies: []string{"mesh"}, Workloads: []string{"steady"}, Chaos: []string{"calm"}, Policies: []string{"weighted"}},
		{Topologies: []string{"diversity"}, Workloads: []string{"trickle"}, Chaos: []string{"calm"}, Policies: []string{"weighted"}},
		{Topologies: []string{"diversity"}, Workloads: []string{"steady"}, Chaos: []string{"earthquake"}, Policies: []string{"weighted"}},
		{Topologies: []string{"diversity"}, Workloads: []string{"steady"}, Chaos: []string{"calm"}, Policies: []string{"nope"}},
	}
	for _, tc := range bad {
		if _, err := RunTournament(s, tc); err == nil {
			t.Errorf("grid %+v should be rejected", tc)
		}
	}
}

func TestTournamentWinner(t *testing.T) {
	runs := []TournamentRun{
		{Topology: "diversity", Workload: "steady", Chaos: "calm", Policy: "a", GoodputBps: 100},
		{Topology: "diversity", Workload: "steady", Chaos: "calm", Policy: "b", GoodputBps: 50},
		{Topology: "diversity", Workload: "steady", Chaos: "flap", Policy: "a", GoodputBps: 10},
		{Topology: "diversity", Workload: "steady", Chaos: "flap", Policy: "b", GoodputBps: 40},
	}
	// a: 1.0 + 0.25 = 1.25; b: 0.5 + 1.0 = 1.5.
	if got := tournamentWinner([]string{"a", "b"}, runs); got != "b" {
		t.Errorf("winner = %q, want b", got)
	}
	// Ties break toward the earlier policy.
	runs[2].GoodputBps = 20 // a: 1.5, b: 1.5
	if got := tournamentWinner([]string{"a", "b"}, runs); got != "a" {
		t.Errorf("tied winner = %q, want a (earlier)", got)
	}
}
