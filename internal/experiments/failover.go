package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/chaos"
	"scionmpr/internal/core"
	"scionmpr/internal/metrics"
	"scionmpr/internal/pathsrv"
	"scionmpr/internal/sim"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// Failover timeline: the serve experiment's control-plane cadence
// (beaconing, registration feed, publisher, flap storm) plus a replica
// fleet with a periodic anti-entropy sweep and a crash storm rolling
// through the replicas across the middle of the client window — with
// one full-fleet blackout at the storm's midpoint so the serve-stale
// path is measured, not just possible.
const (
	failoverSyncStart = 1750 * time.Millisecond
)

// FailoverConfig parameterizes the crash-recovery experiment: the serve
// workload shape plus the fleet and fault-injection policy.
type FailoverConfig struct {
	ServeConfig

	// Replicas is the path-server fleet size (default 3).
	Replicas int
	// CheckpointEvery compacts a replica's WAL after that many journal
	// records (default 192).
	CheckpointEvery uint64
	// SyncInterval is the anti-entropy sweep period (default 500ms) —
	// the bounded-staleness window after a recovery.
	SyncInterval time.Duration
	// CrashDown/CrashPeriod shape the rolling crash storm: each replica
	// is dark for CrashDown every CrashPeriod, staggered (defaults
	// 1s / 2700ms, so with 3 replicas at least one is usually down).
	CrashDown, CrashPeriod time.Duration
	// RetryBudget/BackoffBase/BackoffMax are the client failover policy
	// (see pathsrv.ClientConfig; zero values take its defaults).
	RetryBudget             int
	BackoffBase, BackoffMax time.Duration
}

// DefaultFailoverConfig is the CI-friendly setup on top of the serve
// defaults.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		ServeConfig:     DefaultServeConfig(),
		Replicas:        3,
		CheckpointEvery: 192,
		SyncInterval:    500 * time.Millisecond,
		CrashDown:       1 * time.Second,
		CrashPeriod:     2700 * time.Millisecond,
	}
}

// FailoverRun is one selector variant's crash-storm run.
type FailoverRun struct {
	Name string

	Totals pathsrv.PoolTotals
	// Availability as the clients observed it.
	SuccessRate, StaleRate, HitRate float64
	VirtualQPS                      float64
	P50, P99, P999                  float64

	// Fleet lifecycle under the storm.
	Crashes, Recoveries, ReplayedRecords uint64
	Checkpoints                          uint64
	SyncRounds, SyncPulls, PulledShards  uint64
	CrashInjections, FlapInjections      uint64
	Epoch                                uint64

	// Converged reports that after the final anti-entropy round every
	// replica's Service.Digest was identical; Digests are those per-
	// replica digests (all part of the fingerprint).
	Converged bool
	Digests   [][sha256.Size]byte

	Snapshot   string
	TraceJSONL string
	Executed   uint64

	// Elapsed is wall-clock and volatile; Fleet is exposed for post-run
	// recovery benchmarks. Neither is fingerprinted.
	Elapsed time.Duration
	Fleet   *pathsrv.Fleet
}

// FailoverResult compares path-selection variants under the same crash
// storm.
type FailoverResult struct {
	Scale  Scale
	Config FailoverConfig
	Runs   []FailoverRun
}

// Fingerprint digests every deterministic observable of both runs;
// byte-identical across worker counts.
func (r *FailoverResult) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var b [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, run := range r.Runs {
		h.Write([]byte(run.Name))
		for _, d := range run.Digests {
			h.Write(d[:])
		}
		h.Write([]byte(run.Snapshot))
		h.Write([]byte(run.TraceJSONL))
		w64(run.Totals.Lookups)
		w64(run.Totals.Hits)
		w64(run.Totals.Empties)
		w64(run.Totals.Timeouts)
		w64(run.Totals.Retries)
		w64(run.Totals.RetriesDenied)
		w64(run.Totals.StaleServes)
		w64(run.Totals.Failures)
		w64(run.Totals.CacheEvictions)
		w64(run.Totals.CacheInvalidations)
		w64(run.Totals.CacheSweeps)
		for _, v := range run.Totals.PerShard {
			w64(v)
		}
		w64(run.Crashes)
		w64(run.Recoveries)
		w64(run.ReplayedRecords)
		w64(run.Checkpoints)
		w64(run.SyncRounds)
		w64(run.SyncPulls)
		w64(run.PulledShards)
		w64(run.CrashInjections)
		w64(run.FlapInjections)
		w64(run.Epoch)
		if run.Converged {
			w64(1)
		} else {
			w64(0)
		}
		w64(run.Executed)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// RunFailover runs the crash-recoverable fleet experiment for the
// diversity and baseline selectors under identical seeds, workloads and
// fault schedules. Each variant gets a fresh simulator, registry and
// tracer (Scale.Telemetry/Tracer are not shared across variants — the
// per-variant snapshots would otherwise double-count).
func RunFailover(s Scale, fc FailoverConfig) (*FailoverResult, error) {
	if fc.Endpoints <= 0 || fc.Duration <= 0 {
		return nil, fmt.Errorf("experiments: failover needs endpoints and a duration")
	}
	if sim.Time(fc.Duration) <= sim.Time(serveClientStart) {
		return nil, fmt.Errorf("experiments: failover duration %v must exceed the client start %v",
			fc.Duration, serveClientStart)
	}
	if fc.Replicas <= 0 {
		fc.Replicas = 3
	}
	if fc.CheckpointEvery == 0 {
		fc.CheckpointEvery = 192
	}
	if fc.SyncInterval <= 0 {
		fc.SyncInterval = 500 * time.Millisecond
	}
	if fc.CrashDown <= 0 {
		fc.CrashDown = 1 * time.Second
	}
	if fc.CrashPeriod <= 0 {
		fc.CrashPeriod = 2700 * time.Millisecond
	}
	res := &FailoverResult{Scale: s, Config: fc}
	variants := []struct {
		name    string
		factory core.Factory
	}{
		{"SCION Diversity", core.NewDiversity(core.DefaultParams(s.DissemLimit))},
		{"SCION Baseline", core.NewBaseline(s.DissemLimit)},
	}
	for _, v := range variants {
		run, err := runFailoverVariant(s, fc, v.name, v.factory)
		if err != nil {
			return nil, fmt.Errorf("experiments: failover %s: %w", v.name, err)
		}
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}

func runFailoverVariant(s Scale, fc FailoverConfig, name string, factory core.Factory) (*FailoverRun, error) {
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	infra, err := trust.NewInfra(e.core, trust.Sized)
	if err != nil {
		return nil, err
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(1 << 16)
	clock := &sim.Simulator{}
	clock.SetWorkers(s.Workers)
	clock.SetTelemetry(reg)
	clock.SetTracer(tracer)
	end := sim.Time(fc.Duration)

	ctrl := sim.NewNetwork(clock, e.core, 10*time.Millisecond)
	ctrl.SetTelemetry(reg)
	servers := map[addr.IA]*beacon.Server{}
	for _, ia := range e.core.IAs() {
		srv, err := beacon.NewServer(beacon.ServerConfig{
			Local:       ia,
			Topo:        e.core,
			Net:         ctrl,
			Signer:      infra.SignerFor(ia),
			Selector:    factory(ia),
			StoreLimit:  s.StoreLimit,
			Mode:        beacon.CoreMode,
			PCBLifetime: time.Hour,
		})
		if err != nil {
			return nil, err
		}
		srv.SetTelemetry(reg)
		servers[ia] = srv
	}
	for _, ia := range e.core.IAs() {
		clock.Every(0, serveBeaconInterval, end, servers[ia].Tick)
	}

	fleet := pathsrv.NewFleet(pathsrv.FleetConfig{
		Replicas: fc.Replicas,
		Service: pathsrv.Config{
			Shards:        fc.Shards,
			RevocationTTL: sim.Time(fc.RevTTL),
		},
		CheckpointEvery: fc.CheckpointEvery,
		Clock:           clock,
		Telemetry:       reg,
	})

	// Registration feed and publisher, fanned out to every up replica —
	// a crashed replica misses the feed, which is the divergence the
	// anti-entropy sweep (below) reconverges.
	ias := e.core.IAs()
	clock.Every(serveRegisterStart, serveRegisterInterval, end, func(now sim.Time) {
		for _, ia := range ias {
			st := servers[ia].Store()
			for _, origin := range st.Origins() {
				for _, p := range st.PCBs(now, origin) {
					if p.Leaf() == origin {
						continue
					}
					fleet.Register(now, p)
				}
			}
		}
	})
	clock.Every(servePublishStart, servePublishInterval, end, func(now sim.Time) {
		fleet.Publish(now)
	})
	clock.Every(failoverSyncStart, fc.SyncInterval, end, func(now sim.Time) {
		fleet.Sync(now)
	})

	// Fault plane: the serve experiment's flap storm (keeps revocations
	// flowing through the fleet) plus the crash storm rolling through
	// the replicas, with one full blackout at the midpoint. Blackout
	// crashes overlap the rolling ones on the same replica, so the
	// engine's depth-counted crash bookkeeping is exercised in every
	// run, not just in its regression test.
	stormStart := sim.Time(serveClientStart) + (end-sim.Time(serveClientStart))*2/5
	stormEnd := sim.Time(serveClientStart) + (end-sim.Time(serveClientStart))*4/5
	var cands []topology.LinkID
	for _, l := range e.core.Links {
		cands = append(cands, l.ID)
	}
	nflap := len(cands) / 4
	if nflap < 2 {
		nflap = 2
	}
	flaps := chaos.FlapChurn(s.Seed, cands, nflap, stormStart, stormEnd,
		serveFlapDown, serveFlapPeriod)
	var replicaIAs []addr.IA
	for _, r := range fleet.Replicas() {
		replicaIAs = append(replicaIAs, r.IA)
	}
	crashes := chaos.CrashStorm(s.Seed+1, replicaIAs, stormStart, stormEnd,
		fc.CrashDown, fc.CrashPeriod)
	blackoutAt := stormStart + (stormEnd-stormStart)/2
	for _, ia := range replicaIAs {
		crashes.Events = append(crashes.Events, chaos.Event{
			Kind: chaos.CrashAS, IA: ia, At: blackoutAt, Down: fc.CrashDown,
		})
	}

	eng := chaos.NewEngine(clock, ctrl)
	eng.SetTelemetry(reg)
	eng.OnFail = func(id topology.LinkID) {
		if l := e.core.LinkByID(id); l != nil {
			for _, ia := range ias {
				servers[ia].HandleLinkFailure(l)
			}
		}
	}
	pathsrv.WireChaosFleet(clock, eng, e.core, fleet, sim.Time(fc.RevTTL))
	eng.AddCrashTarget(fleet)
	if err := eng.Apply(flaps); err != nil {
		return nil, err
	}
	if err := eng.Apply(crashes); err != nil {
		return nil, err
	}

	pool, err := pathsrv.NewFleetPool(clock, fleet, reg, pathsrv.ClientConfig{
		Endpoints:   fc.Endpoints,
		Actors:      fc.Actors,
		Sources:     ias,
		Dests:       ias,
		ZipfS:       fc.ZipfS,
		MeanThink:   fc.MeanThink,
		MinThink:    fc.MinThink,
		Tick:        fc.Tick,
		Start:       sim.Time(serveClientStart),
		End:         end,
		Seed:        s.Seed,
		CacheTTL:    sim.Time(fc.CacheTTL),
		CacheCap:    fc.CacheCap,
		RetryBudget: fc.RetryBudget,
		BackoffBase: fc.BackoffBase,
		BackoffMax:  fc.BackoffMax,
	})
	if err != nil {
		return nil, err
	}

	wall := time.Now()
	clock.Run()
	elapsed := time.Since(wall)
	reg.VolatileGauge("failover_wall_seconds").Set(elapsed.Seconds())

	// Every scheduled restart has executed by now (Run drains the
	// queue), so the whole fleet is up: run one final anti-entropy round
	// and check the kill-and-recover invariant — all digests equal.
	fleet.Sync(clock.Now())
	run := &FailoverRun{
		Name:      name,
		Totals:    pool.Totals(),
		Converged: true,
		Executed:  clock.Executed,
		Elapsed:   elapsed,
		Fleet:     fleet,
	}
	for _, r := range fleet.Replicas() {
		if r.Down() {
			run.Converged = false
			continue
		}
		run.Digests = append(run.Digests, r.Service().Digest())
	}
	for _, d := range run.Digests {
		if d != run.Digests[0] {
			run.Converged = false
		}
	}
	for _, r := range fleet.Replicas() {
		run.Crashes += r.Crashes
		run.Recoveries += r.Recoveries
		run.ReplayedRecords += r.Replayed
		run.Checkpoints += r.WAL().Checkpoints
	}
	run.SyncRounds = fleet.Rounds
	run.SyncPulls = fleet.Pulls
	run.PulledShards = fleet.PulledShards
	run.CrashInjections = eng.Injections[chaos.CrashAS]
	run.FlapInjections = eng.Injections[chaos.Flap]
	if !fleet.Replica(0).Down() {
		run.Epoch = fleet.Replica(0).Service().Epoch()
	}

	loadSeconds := (time.Duration(end) - serveClientStart).Seconds()
	run.VirtualQPS = float64(run.Totals.Lookups) / loadSeconds
	run.SuccessRate = run.Totals.SuccessRate()
	run.StaleRate = run.Totals.StaleRate()
	run.HitRate = run.Totals.HitRate()
	hCost := reg.Histogram("pathsrv_lookup_cost_ns", nil)
	run.P50 = hCost.Quantile(0.50)
	run.P99 = hCost.Quantile(0.99)
	run.P999 = hCost.Quantile(0.999)

	var snap strings.Builder
	if err := reg.WriteSnapshot(&snap); err != nil {
		return nil, err
	}
	run.Snapshot = snap.String()
	var tr strings.Builder
	if err := tracer.WriteJSONL(&tr); err != nil {
		return nil, err
	}
	run.TraceJSONL = tr.String()
	return run, nil
}

// Print renders the comparison deterministically.
func (r *FailoverResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== Crash-recoverable path-server fleet under a crash storm ==\n")
	fmt.Fprintf(w, "%d replicas (WAL checkpoint every %d records, anti-entropy every %v)\n",
		r.Config.Replicas, r.Config.CheckpointEvery, r.Config.SyncInterval)
	fmt.Fprintf(w, "%d endpoints on %d actors; crash storm: down %v every %v per replica, plus one full blackout\n",
		r.Config.Endpoints, r.Config.Actors, r.Config.CrashDown, r.Config.CrashPeriod)
	fmt.Fprintf(w, "clients [%v, %v]; retry budget %d/actor/tick, backoff %v..%v\n\n",
		serveClientStart, r.Config.Duration, r.pool().RetryBudget, r.pool().BackoffBase, r.pool().BackoffMax)

	header := []string{"metric"}
	for _, run := range r.Runs {
		header = append(header, run.Name)
	}
	row := func(name string, f func(*FailoverRun) string) []string {
		out := []string{name}
		for i := range r.Runs {
			out = append(out, f(&r.Runs[i]))
		}
		return out
	}
	tbl := metrics.Table{
		Header: header,
		Rows: [][]string{
			row("lookups", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.Totals.Lookups) }),
			row("success rate", func(x *FailoverRun) string { return fmt.Sprintf("%.6f", x.SuccessRate) }),
			row("stale-serve rate", func(x *FailoverRun) string { return fmt.Sprintf("%.6f", x.StaleRate) }),
			row("cache hit rate", func(x *FailoverRun) string { return fmt.Sprintf("%.4f", x.HitRate) }),
			row("timeouts", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.Totals.Timeouts) }),
			row("retries (denied)", func(x *FailoverRun) string {
				return fmt.Sprintf("%d (%d)", x.Totals.Retries, x.Totals.RetriesDenied)
			}),
			row("stale serves", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.Totals.StaleServes) }),
			row("hard failures", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.Totals.Failures) }),
			row("lookup cost p50", func(x *FailoverRun) string { return fmtNanos(x.P50) }),
			row("lookup cost p99", func(x *FailoverRun) string { return fmtNanos(x.P99) }),
			row("lookup cost p999", func(x *FailoverRun) string { return fmtNanos(x.P999) }),
			row("crashes / recoveries", func(x *FailoverRun) string {
				return fmt.Sprintf("%d / %d", x.Crashes, x.Recoveries)
			}),
			row("WAL records replayed", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.ReplayedRecords) }),
			row("WAL checkpoints", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.Checkpoints) }),
			row("anti-entropy rounds", func(x *FailoverRun) string { return fmt.Sprintf("%d", x.SyncRounds) }),
			row("anti-entropy pulls (shards)", func(x *FailoverRun) string {
				return fmt.Sprintf("%d (%d)", x.SyncPulls, x.PulledShards)
			}),
			row("replicas converged", func(x *FailoverRun) string { return fmt.Sprintf("%v", x.Converged) }),
		},
	}
	tbl.Fprint(w)
	fmt.Fprintf(w, "\nthrough a rolling crash storm and a full blackout, clients keep a\n%.4f+ success rate: failover hides single-replica crashes, stale cache\nserves bridge the blackout, and WAL replay + one anti-entropy round\nbring every recovered replica back to the fleet digest.\n",
		minSuccess(r.Runs))
}

// pool recovers the effective client failover policy for display.
func (r *FailoverResult) pool() pathsrv.ClientConfig {
	cfg := pathsrv.ClientConfig{
		RetryBudget: r.Config.RetryBudget,
		BackoffBase: r.Config.BackoffBase,
		BackoffMax:  r.Config.BackoffMax,
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = 800 * time.Millisecond
	}
	return cfg
}

func minSuccess(runs []FailoverRun) float64 {
	min := 1.0
	for _, r := range runs {
		if r.SuccessRate < min {
			min = r.SuccessRate
		}
	}
	return min
}
