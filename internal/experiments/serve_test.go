package experiments

import (
	"bytes"
	"encoding/hex"
	"testing"
	"time"
)

// serveSmokeConfig is small enough for CI but large enough that the
// parallel client population, the chaos storm and cache invalidation
// all actually fire.
func serveSmokeConfig() ServeConfig {
	sc := DefaultServeConfig()
	sc.Endpoints = 2000
	sc.Actors = 8
	sc.Shards = 8
	sc.Duration = 4 * time.Second
	sc.Tick = 25 * time.Millisecond
	sc.MeanThink = 150 * time.Millisecond
	sc.CacheTTL = 1 * time.Second
	return sc
}

func runServeAt(t *testing.T, workers int, seed int64) *ServeResult {
	t.Helper()
	s := SmokeScale()
	s.Workers = workers
	s.Seed = seed
	res, err := RunServe(s, serveSmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeGolden is the serving layer's end-to-end determinism gate:
// the full stack — parallel client actors, beaconing, the registration
// feed, epoch publication and the chaos storm — must produce
// byte-identical fingerprints for every worker count, per seed.
func TestServeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker golden comparison is not short")
	}
	for _, seed := range []int64{1, 2} {
		ref := runServeAt(t, 1, seed)
		refFP := ref.Fingerprint()

		if ref.Totals.Lookups == 0 {
			t.Fatalf("seed %d: no lookups", seed)
		}
		if ref.Totals.Hits == 0 {
			t.Errorf("seed %d: cache never hit", seed)
		}
		if ref.Revocations == 0 {
			t.Errorf("seed %d: storm produced no revocations", seed)
		}
		if ref.Invalidations == 0 {
			t.Errorf("seed %d: revocations invalidated no cached pairs", seed)
		}
		if ref.Epoch == 0 || ref.Registrations == 0 {
			t.Errorf("seed %d: service never published (epoch=%d reg=%d)",
				seed, ref.Epoch, ref.Registrations)
		}
		if ref.P99 < ref.P50 || ref.P999 < ref.P99 {
			t.Errorf("seed %d: quantiles out of order: %v %v %v",
				seed, ref.P50, ref.P99, ref.P999)
		}

		for _, w := range []int{2, 4, 8} {
			got := runServeAt(t, w, seed)
			if fp := got.Fingerprint(); fp != refFP {
				t.Errorf("seed %d workers %d: fingerprint %s != %s",
					seed, w, hex.EncodeToString(fp[:8]), hex.EncodeToString(refFP[:8]))
				if got.Snapshot != ref.Snapshot {
					t.Errorf("snapshot diverges first at: %s", diffFirstLine(ref.Snapshot, got.Snapshot))
				}
				if got.TraceJSONL != ref.TraceJSONL {
					t.Errorf("trace diverges first at: %s", diffFirstLine(ref.TraceJSONL, got.TraceJSONL))
				}
			}
		}
	}
}

// diffFirstLine locates the first differing line of two texts.
func diffFirstLine(a, b string) string {
	la := bytes.Split([]byte(a), []byte("\n"))
	lb := bytes.Split([]byte(b), []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return string(la[i]) + " vs " + string(lb[i])
		}
	}
	return "lengths differ"
}

func TestServeValidation(t *testing.T) {
	s := SmokeScale()
	if _, err := RunServe(s, ServeConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	sc := serveSmokeConfig()
	sc.Duration = time.Second // below the client start
	if _, err := RunServe(s, sc); err == nil {
		t.Error("too-short duration accepted")
	}
}

func TestServePrint(t *testing.T) {
	res := runServeAt(t, 0, 1)
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"virtual QPS", "cache hit rate", "p999", "shard imbalance"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("print output missing %q", want)
		}
	}
}
