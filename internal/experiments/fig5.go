package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/bgp"
	"scionmpr/internal/bgpsec"
	"scionmpr/internal/core"
	"scionmpr/internal/metrics"
	"scionmpr/internal/telemetry"
	"scionmpr/internal/topology"
)

// Fig5Result holds, per monitor AS, the estimated monthly control-plane
// bytes of each protocol, and the derived overhead-relative-to-BGP
// distributions of Figure 5.
type Fig5Result struct {
	Scale    Scale
	Monitors []addr.IA

	// Monthly bytes per monitor.
	BGP, BGPsec, CoreBaseline, CoreDiversity, IntraBaseline []float64
}

// RunFig5 reproduces Figure 5: six hours of SCION beaconing (baseline and
// diversity core beaconing on the core network; baseline intra-ISD
// beaconing on a large ISD) and a BGP convergence simulation on the full
// topology, all scaled to one month and expressed relative to BGP at the
// same monitor ASes.
func RunFig5(s Scale) (*Fig5Result, error) {
	stages := telemetry.NewStages(s.Telemetry, os.Stderr, "fig5")
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	monitors := e.monitors()
	stages.Done("topology")
	res := &Fig5Result{Scale: s, Monitors: monitors}

	// Scale factor from one simulated beaconing window to a month.
	monthScale := float64(30*24*time.Hour) / float64(s.Duration)

	// Control-plane bytes crossing a monitor's interfaces (RX+TX): core
	// ASes originate but receive nothing in intra-ISD beaconing, so a
	// one-sided measure would degenerate to zero there. Each RunResult
	// is reduced to this per-monitor vector as soon as its stage ends —
	// a run's beacon stores dominate the resident set at large -ases,
	// and keeping three of them alive through the BGP stage is what
	// used to cap the reachable topology size.
	monitorBytes := func(run *beacon.RunResult) []float64 {
		out := make([]float64, len(monitors))
		for i, ia := range monitors {
			if run.Cfg.Topo.AS(ia) == nil {
				out[i] = math.NaN() // monitor outside this sub-topology
				continue
			}
			out[i] = float64(run.Net.TotalRx(ia)+run.Net.TotalTx(ia)) * monthScale
		}
		return out
	}

	// coreStage runs one core-beaconing configuration and keeps only the
	// per-monitor vector: the RunResult (and its beacon store) becomes
	// unreachable as soon as the helper returns.
	coreStage := func(f core.Factory) ([]float64, error) {
		run, err := e.runCore(f, s.StoreLimit)
		if err != nil {
			return nil, err
		}
		return monitorBytes(run), nil
	}

	// SCION core beaconing, baseline and diversity.
	if res.CoreBaseline, err = coreStage(core.NewBaseline(s.DissemLimit)); err != nil {
		return nil, err
	}
	stages.Done("core baseline")
	if res.CoreDiversity, err = coreStage(core.NewDiversity(core.DefaultParams(s.DissemLimit))); err != nil {
		return nil, err
	}
	stages.Done("core diversity")

	// Intra-ISD beaconing on the large ISD built from the full topology;
	// same scoping discipline as coreStage.
	intraStage := func() ([]float64, error) {
		isdTopo, err := topology.BuildISD(e.full, s.ISDCores)
		if err != nil {
			return nil, err
		}
		intraCfg := beacon.DefaultRunConfig(isdTopo, beacon.IntraMode, core.NewBaseline(s.DissemLimit), s.StoreLimit)
		intraCfg.Interval = s.Interval
		intraCfg.Lifetime = s.Lifetime
		intraCfg.Duration = s.Duration
		intraCfg.Workers = s.Workers
		intraCfg.Telemetry = s.Telemetry
		intraCfg.Tracer = s.Tracer
		run, err := beacon.Run(intraCfg)
		if err != nil {
			return nil, err
		}
		return monitorBytes(run), nil
	}
	if res.IntraBaseline, err = intraStage(); err != nil {
		return nil, err
	}
	stages.Done("intra-ISD")

	// BGP convergence on the full topology; BGPsec derived from it.
	bgpRes, err := bgp.Run(bgp.DefaultConfig(e.full))
	if err != nil {
		return nil, err
	}
	stages.Done("bgp")
	// Calibrate prefix density to the real Internet so the BGP table —
	// the denominator of every Figure 5 ratio — does not shrink
	// quadratically with the scaled-down topology.
	prefixes := bgp.CalibratePrefixCounts(bgp.SyntheticPrefixCounts(e.full), bgp.RealInternetMeanPrefixes)
	bgpAcct := bgp.MonthlyAccounting{Prefixes: prefixes, ChurnPerMonth: 30}
	secAcct := bgpsec.DefaultAccounting(prefixes)

	for _, m := range monitors {
		sp := bgpRes.Speakers[m]
		res.BGP = append(res.BGP, bgpAcct.BGPMonthlyBytes(sp))
		res.BGPsec = append(res.BGPsec, secAcct.MonthlyBytes(sp))
	}
	return res, nil
}

// relative returns the overhead of series relative to BGP, dropping
// monitors where the series has no measurement.
func (r *Fig5Result) relative(series []float64) []float64 {
	var out []float64
	for i, v := range series {
		if math.IsNaN(v) || r.BGP[i] <= 0 {
			continue
		}
		out = append(out, v/r.BGP[i])
	}
	return out
}

// Series returns the Figure 5 curves: overhead relative to BGP.
func (r *Fig5Result) Series() []metrics.Series {
	return []metrics.Series{
		{Name: "BGPsec/BGP", CDF: metrics.NewCDF(r.relative(r.BGPsec))},
		{Name: "SCION core base/BGP", CDF: metrics.NewCDF(r.relative(r.CoreBaseline))},
		{Name: "SCION core div/BGP", CDF: metrics.NewCDF(r.relative(r.CoreDiversity))},
		{Name: "SCION intra/BGP", CDF: metrics.NewCDF(r.relative(r.IntraBaseline))},
	}
}

// Print renders the figure as quantile tables plus the paper's headline
// order-of-magnitude comparisons (§5.2).
func (r *Fig5Result) Print(w io.Writer) {
	metrics.FprintCDFs(w, "Figure 5: monthly control-plane overhead relative to BGP (per monitor)", r.Series())
	med := func(xs []float64) float64 { return metrics.NewCDF(r.relative(xs)).Median() }
	baseMed, divMed := med(r.CoreBaseline), med(r.CoreDiversity)
	fmt.Fprintf(w, "\nheadline ratios (median monitor):\n")
	fmt.Fprintf(w, "  BGPsec vs BGP:                 %.2fx (paper: ~1 order of magnitude above)\n", med(r.BGPsec))
	fmt.Fprintf(w, "  core baseline vs BGP:          %.2fx (paper: slightly above BGPsec)\n", baseMed)
	fmt.Fprintf(w, "  core diversity vs BGP:         %.3fx (paper: ~1 order of magnitude below)\n", divMed)
	fmt.Fprintf(w, "  core diversity vs baseline:    %.1f orders of magnitude lower (paper: >2)\n",
		metrics.OrderOfMagnitude(baseMed, divMed))
	fmt.Fprintf(w, "  intra-ISD vs BGP:              %.4fx (paper: ~2 orders of magnitude below)\n", med(r.IntraBaseline))
}
