package experiments

import (
	"fmt"
	"io"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/bgp"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/graphalg"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// ConvergenceResult quantifies the paper's §5 remark that SCION has no
// convergence phase: after a failure, a BGP network needs route
// re-convergence before connectivity is restored, while a SCION endpoint
// merely waits for one SCMP round trip and switches to an already-known
// disjoint path.
type ConvergenceResult struct {
	// BGPInitial is the virtual time BGP needs to converge from cold
	// start on the topology.
	BGPInitial time.Duration
	// BGPAfterWithdraw is the additional virtual time to re-converge
	// after a prefix withdrawal.
	BGPAfterWithdraw time.Duration
	// SCIONFailover is the virtual time between a link failure hitting
	// an active path and the sender resuming on an alternative path.
	SCIONFailover time.Duration
	// SCIONPathsReady reports that disseminated SCION paths were usable
	// without any waiting (stable on dissemination).
	SCIONPathsReady bool
}

// RunConvergence measures both sides on a small topology.
func RunConvergence(s Scale) (*ConvergenceResult, error) {
	e, err := newEnv(s)
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{}

	// BGP cold-start convergence on the core members' subgraph.
	bgpRes, err := bgp.Run(bgp.DefaultConfig(e.coreSub))
	if err != nil {
		return nil, err
	}
	res.BGPInitial = time.Duration(bgpRes.End)
	// Withdraw the highest-degree AS's prefix and measure re-convergence.
	victim := e.monitors()[0]
	before := bgpRes.End
	bgpRes.WithdrawPrefix(victim)
	res.BGPAfterWithdraw = time.Duration(bgpRes.End - before)

	// SCION: beacon, pick a pair with >= 2 disjoint paths, fail the
	// active path's first link mid-stream, and time the failover.
	run, err := e.runCore(core.NewDiversity(core.DefaultParams(s.DissemLimit)), s.StoreLimit)
	if err != nil {
		return nil, err
	}
	res.SCIONPathsReady = true

	infra, err := trust.NewInfra(e.core, trust.Sized)
	if err != nil {
		return nil, err
	}
	pair, fps, err := pickMultipathPair(e.core, run, infra)
	if err != nil {
		return nil, err
	}
	clock := &sim.Simulator{}
	net := sim.NewNetwork(clock, e.core, 10*time.Millisecond)
	fabric := dataplane.NewFabric(net, infra.ForwardingKey)
	srcHost := addr.HostIP4(pair[0], 10, 0, 0, 1)
	ep := dataplane.NewEndpoint(fabric, srcHost)
	ep.SetPaths(fps)

	var failedAt, restoredAt sim.Time
	delivered := 0
	fabric.OnDeliver(pair[1], func(*dataplane.Packet) {
		delivered++
		if failedAt > 0 && restoredAt == 0 {
			restoredAt = clock.Now()
		}
	})
	dstHost := addr.HostIP4(pair[1], 10, 0, 0, 2)
	for i := 0; i < 60; i++ {
		clock.Schedule(time.Duration(i)*5*time.Millisecond, func() {
			_ = ep.Send(dstHost, []byte("x"))
		})
	}
	clock.Schedule(52*time.Millisecond, func() {
		hf := ep.ActivePath().Hops[0]
		if l := e.core.LinkByIf(hf.Hop.IA, hf.Hop.Out); l != nil {
			fabric.FailLink(l.ID)
			failedAt = clock.Now()
		}
	})
	clock.Run()
	if failedAt == 0 || restoredAt == 0 {
		return nil, fmt.Errorf("convergence experiment: failover did not complete (delivered %d)", delivered)
	}
	res.SCIONFailover = time.Duration(restoredAt - failedAt)
	return res, nil
}

// pickMultipathPair finds a core pair with at least two link-disjoint
// disseminated paths and authorizes its forwarding paths.
func pickMultipathPair(topo *topology.Graph, run *beacon.RunResult, infra *trust.Infra) ([2]addr.IA, []*dataplane.FwdPath, error) {
	for _, pair := range graphalg.SamplePairs(topo, 50) {
		if graphalg.UnionFlow(run.PathSet(pair[0], pair[1]), pair[0], pair[1]) < 2 {
			continue
		}
		fps, err := authorizePathSet(topo, run, infra, pair[0], pair[1])
		if err != nil || len(fps) < 2 {
			continue
		}
		return pair, fps, nil
	}
	return [2]addr.IA{}, nil, fmt.Errorf("no multipath pair found")
}

// authorizePathSet converts the disseminated beacons from src stored at
// dst into authorized forwarding paths src -> dst.
func authorizePathSet(topo *topology.Graph, run *beacon.RunResult, infra *trust.Infra, src, dst addr.IA) ([]*dataplane.FwdPath, error) {
	var out []*dataplane.FwdPath
	for _, links := range run.Servers[dst].Segments(run.End, src) {
		path, ok := hopsFromLinks(topo, links, src, dst)
		if !ok {
			continue
		}
		fp, err := dataplane.Authorize(path, infra.ForwardingKey)
		if err != nil {
			continue
		}
		out = append(out, fp)
	}
	return out, nil
}

// hopsFromLinks turns an ordered link-key list (origin side first, as
// stored by beaconing) into a combinator path src -> dst.
func hopsFromLinks(topo *topology.Graph, links []seg.LinkKey, src, dst addr.IA) (*combinator.Path, bool) {
	if len(links) == 0 || links[0].IA != src {
		return nil, false
	}
	var hops []combinator.Hop
	cur := combinator.Hop{IA: src, In: 0, Out: links[0].If}
	for i, lk := range links {
		l := topo.LinkByIf(lk.IA, lk.If)
		if l == nil || lk.IA != cur.IA {
			return nil, false
		}
		cur.Out = lk.If
		hops = append(hops, cur)
		next := l.Other(lk.IA)
		cur = combinator.Hop{IA: next, In: l.RemoteIf(lk.IA)}
		_ = i
	}
	cur.Out = 0
	hops = append(hops, cur)
	if hops[len(hops)-1].IA != dst {
		return nil, false
	}
	p := &combinator.Path{Hops: hops}
	if err := p.Check(topo); err != nil {
		return nil, false
	}
	return p, true
}

// Print renders the comparison.
func (r *ConvergenceResult) Print(w io.Writer) {
	fmt.Fprintln(w, "== Convergence vs failover (paper §5: SCION segments are stable on dissemination) ==")
	fmt.Fprintf(w, "BGP cold-start convergence:      %v (virtual)\n", r.BGPInitial)
	fmt.Fprintf(w, "BGP re-convergence (withdrawal): %v (virtual)\n", r.BGPAfterWithdraw)
	fmt.Fprintf(w, "SCION failover after link loss:  %v (one SCMP round trip; no route recomputation)\n", r.SCIONFailover)
	fmt.Fprintf(w, "SCION paths usable on arrival:   %v\n", r.SCIONPathsReady)
}
