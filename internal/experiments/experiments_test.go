package experiments

import (
	"strings"
	"testing"

	"scionmpr/internal/core"
)

func TestRunFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 in -short mode")
	}
	res, err := RunFig5(SmokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Monitors) != SmokeScale().Monitors {
		t.Fatalf("monitors = %d", len(res.Monitors))
	}
	// Core shape claims of §5.2 that must hold at any scale:
	// BGPsec above BGP; diversity core beaconing below baseline core
	// beaconing by a large factor; intra-ISD below BGP.
	med := func(series []float64) float64 {
		rel := res.relative(series)
		if len(rel) == 0 {
			t.Fatal("empty relative series")
		}
		sum := 0.0
		for _, v := range rel {
			sum += v
		}
		return sum / float64(len(rel))
	}
	bgpsec := med(res.BGPsec)
	base := med(res.CoreBaseline)
	div := med(res.CoreDiversity)
	intra := med(res.IntraBaseline)
	if bgpsec <= 1 {
		t.Errorf("BGPsec/BGP = %v, want > 1", bgpsec)
	}
	if div >= base {
		t.Errorf("diversity (%v) not below baseline (%v)", div, base)
	}
	if base/div < 4 {
		t.Errorf("diversity reduction factor only %.1f (grows with scale and duration; paper: >100x)", base/div)
	}
	// The absolute intra-ISD-vs-BGP ratio ("2 orders below BGP") only
	// emerges at Internet scale, where BGP monitors carry a full table;
	// at smoke scale we check the ordering: intra-ISD beaconing is the
	// cheapest SCION component.
	if intra >= base {
		t.Errorf("intra-ISD (%v) not below core baseline (%v)", intra, base)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Error("print output missing title")
	}
}

func TestRunFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 in -short mode")
	}
	res, err := RunFig6(SmokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 || len(res.Series) != 2+len(SmokeScale().DiversityStoreLimits) {
		t.Fatalf("pairs=%d series=%d", len(res.Pairs), len(res.Series))
	}
	// No series may exceed the optimum anywhere.
	for _, s := range res.Series {
		for i, v := range s.Values {
			if v > res.Optimum[i] {
				t.Errorf("%s pair %d: %v exceeds optimum %v", s.Name, i, v, res.Optimum[i])
			}
		}
	}
	ratios := res.CapacityRatios()
	// Diversity with unlimited storage must beat the baseline and BGP.
	divInf := ratios["SCION Diversity (inf)"]
	if divInf <= ratios["BGP"] {
		t.Errorf("diversity(inf) %.3f not above BGP %.3f", divInf, ratios["BGP"])
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "Figure 6a/6b") {
		t.Error("print output missing title")
	}
}

func TestRunSCIONLab(t *testing.T) {
	if testing.Short() {
		t.Skip("scionlab in -short mode")
	}
	res, err := RunSCIONLab()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 21*20/2 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(res.InterfaceBps) == 0 {
		t.Fatal("no per-interface bandwidth")
	}
	// Sparse SCIONLab core: bounded quality, never above optimum.
	for _, s := range res.Series {
		for i, v := range s.Values {
			if v > res.Optimum[i] {
				t.Errorf("%s exceeds optimum at pair %d", s.Name, i)
			}
			if v < 1 {
				t.Errorf("%s pair %d has no connectivity", s.Name, i)
			}
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "4 KB/s") {
		t.Error("print output incomplete")
	}
}

func TestRunTable1(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Component] = r
	}
	// Scope/frequency must match Table 1.
	want := map[string][2]string{
		"Core Beaconing":           {"Global", "Minutes"},
		"Intra-ISD Beaconing":      {"ISD", "Minutes"},
		"Down-Path Segment Lookup": {"Global", "Seconds"},
		"Core-Path Segment Lookup": {"ISD", "Seconds"},
		"Endpoint Path Lookup":     {"AS", "Seconds"},
		"Path (De-)Registration":   {"ISD", "Minutes"},
		"Path Revocation":          {"ISD", "Seconds"},
	}
	for name, sf := range want {
		row, ok := byName[name]
		if !ok {
			t.Errorf("missing row %q", name)
			continue
		}
		if row.Scope != sf[0] || row.Frequency != sf[1] {
			t.Errorf("%s: scope/freq = %s/%s, want %s/%s", name, row.Scope, row.Frequency, sf[0], sf[1])
		}
	}
	// All beaconing and registration components must show real traffic.
	for _, name := range []string{"Core Beaconing", "Intra-ISD Beaconing", "Path (De-)Registration", "Down-Path Segment Lookup"} {
		if byName[name].Bytes == 0 {
			t.Errorf("%s measured zero bytes", name)
		}
	}
	if byName["Path Revocation"].Messages == 0 {
		t.Error("revocation dropped no segments")
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("print output missing title")
	}
}

func TestScalePresets(t *testing.T) {
	p := PaperScale()
	if p.NumASes != 12000 || p.CoreSize != 2000 || p.NumISDs != 200 || p.Monitors != 26 {
		t.Error("paper scale drifted from §5.1")
	}
	if p.Interval.Minutes() != 10 || p.Lifetime.Hours() != 6 || p.Duration.Hours() != 6 {
		t.Error("paper timing drifted from §5.1")
	}
	if p.DissemLimit != 5 || p.StoreLimit != 60 {
		t.Error("paper limits drifted from §5.1")
	}
	s := SmokeScale()
	if s.NumASes >= DefaultScale().NumASes {
		t.Error("smoke scale must be smaller than default")
	}
}

func TestRunGridSearchTinySpace(t *testing.T) {
	if testing.Short() {
		t.Skip("gridsearch in -short mode")
	}
	s := SmokeScale()
	s.CoreSize = 8
	s.Duration = 2 * 3600 * 1e9 // 2h
	space := core.SearchSpace{
		Alphas:     []float64{6},
		Betas:      []float64{4},
		Gammas:     []float64{2, 4},
		Thresholds: []float64{0.05},
	}
	res, err := RunGridSearch(s, space, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 2 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
	if res.Best.Alpha != 6 || res.Best.Beta != 4 {
		t.Errorf("fixed dimensions drifted: %+v", res.Best)
	}
	if res.Best.Gamma != 2 && res.Best.Gamma != 4 {
		t.Errorf("gamma outside space: %v", res.Best.Gamma)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "best parameters") {
		t.Error("print output missing")
	}
}

func TestRunConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence in -short mode")
	}
	s := SmokeScale()
	s.Duration = 2 * 3600 * 1e9
	res, err := RunConvergence(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.BGPInitial <= 0 {
		t.Error("no BGP convergence time")
	}
	if res.BGPAfterWithdraw <= 0 {
		t.Error("no BGP re-convergence time")
	}
	if !res.SCIONPathsReady {
		t.Error("SCION paths not ready")
	}
	// SCION failover is one SCMP round trip (tens of ms), far below BGP
	// re-convergence with its 15 s MRAI batching.
	if res.SCIONFailover <= 0 || res.SCIONFailover >= res.BGPAfterWithdraw {
		t.Errorf("SCION failover %v not below BGP re-convergence %v",
			res.SCIONFailover, res.BGPAfterWithdraw)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "failover") {
		t.Error("print output missing")
	}
}

func TestRunAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	s := SmokeScale()
	s.Duration = 2 * 3600 * 1e9
	res, err := RunAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		if r.Bytes == 0 || r.Messages == 0 || r.QualityFraction <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Name, r)
		}
		byName[r.Name] = r
	}
	// The shipped diversity variant must dominate the baseline on
	// overhead without losing more than a third of its quality.
	base := byName["baseline"]
	div := byName["diversity (default)"]
	if div.Bytes >= base.Bytes {
		t.Errorf("diversity bytes %d not below baseline %d", div.Bytes, base.Bytes)
	}
	if div.QualityFraction < base.QualityFraction*0.66 {
		t.Errorf("diversity quality %v too far below baseline %v", div.QualityFraction, base.QualityFraction)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "Ablation") {
		t.Error("print output missing")
	}
}

func TestRunCapacityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity in -short mode")
	}
	s := SmokeScale()
	res, err := RunCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 || len(res.Series) != 3 {
		t.Fatalf("pairs=%d series=%d", len(res.Pairs), len(res.Series))
	}
	for _, series := range res.Series {
		if len(series.Multiples) != len(res.Pairs) {
			t.Fatalf("%s: %d values for %d pairs", series.Name, len(series.Multiples), len(res.Pairs))
		}
	}
	div := res.AggregateGoodput("SCION Diversity")
	base := res.AggregateGoodput("SCION Baseline")
	bgpBest := res.AggregateGoodput("BGP best-path")
	if div <= 0 || base <= 0 || bgpBest <= 0 {
		t.Fatalf("degenerate goodput: div=%v base=%v bgp=%v", div, base, bgpBest)
	}
	// The paper's Figure 6b ordering, measured with packets.
	if div < base {
		t.Errorf("diversity aggregate %v below baseline %v", div, base)
	}
	if base < bgpBest {
		t.Errorf("baseline aggregate %v below BGP best-path %v", base, bgpBest)
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "capacity under load") {
		t.Error("print output missing title")
	}
}
