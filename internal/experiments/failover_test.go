package experiments

import (
	"bytes"
	"encoding/hex"
	"testing"
	"time"
)

// failoverSmokeConfig keeps the two-variant crash-storm run CI-sized
// while still exercising every resilience path: rolling crashes, the
// full blackout, WAL recovery, anti-entropy pulls and stale serves.
func failoverSmokeConfig() FailoverConfig {
	fc := DefaultFailoverConfig()
	fc.ServeConfig = serveSmokeConfig()
	fc.Replicas = 3
	fc.CheckpointEvery = 96
	fc.SyncInterval = 400 * time.Millisecond
	fc.CrashDown = 500 * time.Millisecond
	fc.CrashPeriod = 1300 * time.Millisecond
	return fc
}

func runFailoverAt(t *testing.T, workers int, seed int64) *FailoverResult {
	t.Helper()
	s := SmokeScale()
	s.Workers = workers
	s.Seed = seed
	res, err := RunFailover(s, failoverSmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFailoverGolden is the crash-recovery determinism gate: the whole
// resilience stack — crash storm, WAL replay, anti-entropy, client
// failover with jittered backoff, serve-stale — must produce
// byte-identical fingerprints for every worker count, per seed, and
// every run must end with all replicas converged on one digest.
func TestFailoverGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker golden comparison is not short")
	}
	for _, seed := range []int64{1, 2} {
		ref := runFailoverAt(t, 1, seed)
		refFP := ref.Fingerprint()

		for _, run := range ref.Runs {
			if run.Totals.Lookups == 0 {
				t.Fatalf("seed %d %s: no lookups", seed, run.Name)
			}
			if !run.Converged {
				t.Errorf("seed %d %s: replicas did not converge", seed, run.Name)
			}
			if run.Crashes == 0 || run.Recoveries != run.Crashes {
				t.Errorf("seed %d %s: crashes=%d recoveries=%d",
					seed, run.Name, run.Crashes, run.Recoveries)
			}
			if run.ReplayedRecords == 0 {
				t.Errorf("seed %d %s: recovery replayed nothing", seed, run.Name)
			}
			if run.Totals.Timeouts == 0 {
				t.Errorf("seed %d %s: storm produced no client timeouts", seed, run.Name)
			}
			if run.Totals.StaleServes == 0 {
				t.Errorf("seed %d %s: blackout produced no stale serves", seed, run.Name)
			}
			if run.SyncRounds == 0 || run.SyncPulls == 0 {
				t.Errorf("seed %d %s: anti-entropy never pulled (rounds=%d pulls=%d)",
					seed, run.Name, run.SyncRounds, run.SyncPulls)
			}
			if sr := run.SuccessRate; sr < 0.9 || sr > 1 {
				t.Errorf("seed %d %s: success rate = %v", seed, run.Name, sr)
			}
			if run.P99 < run.P50 || run.P999 < run.P99 {
				t.Errorf("seed %d %s: quantiles out of order", seed, run.Name)
			}
		}

		for _, w := range []int{2, 4, 8} {
			got := runFailoverAt(t, w, seed)
			if fp := got.Fingerprint(); fp != refFP {
				t.Errorf("seed %d workers %d: fingerprint %s != %s",
					seed, w, hex.EncodeToString(fp[:8]), hex.EncodeToString(refFP[:8]))
				for i := range got.Runs {
					if got.Runs[i].Snapshot != ref.Runs[i].Snapshot {
						t.Errorf("%s snapshot diverges first at: %s", got.Runs[i].Name,
							diffFirstLine(ref.Runs[i].Snapshot, got.Runs[i].Snapshot))
					}
					if got.Runs[i].TraceJSONL != ref.Runs[i].TraceJSONL {
						t.Errorf("%s trace diverges first at: %s", got.Runs[i].Name,
							diffFirstLine(ref.Runs[i].TraceJSONL, got.Runs[i].TraceJSONL))
					}
				}
			}
		}
	}
}

func TestFailoverValidation(t *testing.T) {
	s := SmokeScale()
	if _, err := RunFailover(s, FailoverConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	fc := failoverSmokeConfig()
	fc.Duration = time.Second // below the client start
	if _, err := RunFailover(s, fc); err == nil {
		t.Error("too-short duration accepted")
	}
}

func TestFailoverPrint(t *testing.T) {
	res := runFailoverAt(t, 0, 1)
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{
		"success rate", "stale-serve rate", "crashes / recoveries",
		"WAL records replayed", "anti-entropy rounds", "replicas converged",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("print output missing %q", want)
		}
	}
}
