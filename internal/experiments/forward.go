package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"scionmpr/internal/addr"
	"scionmpr/internal/beacon"
	"scionmpr/internal/combinator"
	"scionmpr/internal/core"
	"scionmpr/internal/dataplane"
	"scionmpr/internal/seg"
	"scionmpr/internal/sim"
	"scionmpr/internal/slayers"
	"scionmpr/internal/topology"
	"scionmpr/internal/trust"
)

// The forward experiment exercises the wire-format data plane two ways:
//
//  1. Differential replay: one seeded traffic trace (including tampered
//     hop MACs and mid-run link faults) runs through the in-memory
//     fabric and through the wire engine at 1 and N workers; all runs
//     must produce one identical outcome fingerprint. This is the
//     deterministic part, covered by the golden test and the
//     experiment's Fingerprint.
//  2. Forwarding throughput: wall-clock pkts/s per core of the engine,
//     per-packet vs batched, MAC verification on vs off — the numbers
//     behind BENCH_pr9.json. Wall-clock, so excluded from the
//     fingerprint.

// ForwardConfig parameterizes the forward experiment.
type ForwardConfig struct {
	// Groups and FlowsPerGroup size the differential trace; faults are
	// applied at group boundaries where both planes are quiescent.
	Groups, FlowsPerGroup int
	// Seed drives trace generation and the shared loss function.
	Seed int64
	// Workers is the engine's concurrent worker count for the
	// multi-worker differential leg.
	Workers int
	// BenchPackets is the packet count per wall-clock throughput mode
	// (0 skips the throughput phase, e.g. in tests).
	BenchPackets int
}

// DefaultForwardConfig is the CI-friendly setup.
func DefaultForwardConfig() ForwardConfig {
	return ForwardConfig{
		Groups:        12,
		FlowsPerGroup: 24,
		Seed:          7,
		Workers:       4,
		BenchPackets:  200_000,
	}
}

// ForwardMode is one wall-clock throughput measurement.
type ForwardMode struct {
	Name       string
	BatchSize  int
	MAC        bool
	PktsPerSec float64 // volatile
}

// ForwardResult is one run of the forward experiment.
type ForwardResult struct {
	Config ForwardConfig

	// Differential observables (deterministic).
	DiffFingerprint string
	PlanesAgree     bool
	Injected        int
	Forwarded       uint64
	Delivered       uint64
	DroppedBadMAC   uint64
	DroppedGray     uint64
	Revocations     uint64

	// Throughput observables (wall-clock, excluded from Fingerprint).
	Modes           []ForwardMode
	BatchSpeedupMAC float64
	Elapsed         time.Duration
}

// Fingerprint digests the deterministic observables: equal configs must
// produce equal fingerprints for every worker count and across the
// fabric/engine divide.
func (r *ForwardResult) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(r.DiffFingerprint))
	var b [8]byte
	for _, v := range []uint64{
		uint64(r.Injected), r.Forwarded, r.Delivered,
		r.DroppedBadMAC, r.DroppedGray, r.Revocations,
	} {
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	if r.PlanesAgree {
		h.Write([]byte{1})
	}
	return [sha256.Size]byte(h.Sum(nil)[:sha256.Size])
}

func (r *ForwardResult) Print(w io.Writer) {
	fmt.Fprintf(w, "forward: differential replay of %d packets (fabric vs wire engine x{1,%d} workers)\n",
		r.Injected, r.Config.Workers)
	fmt.Fprintf(w, "  planes agree: %v  fingerprint %s\n", r.PlanesAgree, r.DiffFingerprint[:16])
	fmt.Fprintf(w, "  forwarded %d  delivered %d  bad-mac %d  gray %d  revocations %d\n",
		r.Forwarded, r.Delivered, r.DroppedBadMAC, r.DroppedGray, r.Revocations)
	if len(r.Modes) > 0 {
		fmt.Fprintf(w, "  %-14s %-6s %-5s %12s\n", "mode", "batch", "mac", "pkts/s/core")
		for _, m := range r.Modes {
			fmt.Fprintf(w, "  %-14s %-6d %-5v %12.0f\n", m.Name, m.BatchSize, m.MAC, m.PktsPerSec)
		}
		fmt.Fprintf(w, "  batch speedup with MAC on: %.2fx\n", r.BatchSpeedupMAC)
	}
}

// forwardEnv is the shared beaconing-derived setting of the experiment:
// the demo topology, its trust infra, and authorized forwarding paths
// between every ordered pair of leaf ASes.
type forwardEnv struct {
	topo  *topology.Graph
	infra *trust.Infra
	paths []*dataplane.FwdPath
}

func buildForwardEnv() (*forwardEnv, error) {
	topo := topology.Demo()
	infra, err := trust.NewInfra(topo, trust.Sized)
	if err != nil {
		return nil, err
	}
	cfg := beacon.DefaultRunConfig(topo, beacon.IntraMode, core.NewBaseline(5), 20)
	cfg.Duration = time.Hour
	cfg.Infra = infra
	run, err := beacon.Run(cfg)
	if err != nil {
		return nil, err
	}
	a2 := addr.MustIA(1, 0xff00_0000_0102)
	leaves := []addr.IA{
		addr.MustIA(1, 0xff00_0000_0104),
		addr.MustIA(1, 0xff00_0000_0105),
		addr.MustIA(1, 0xff00_0000_0106),
	}
	term := func(origin, d addr.IA) ([]*seg.PCB, error) {
		var out []*seg.PCB
		for _, ent := range run.Servers[d].Store().Entries(run.End, origin) {
			tp, err := ent.PCB.Extend(infra.SignerFor(d), addr.IA{}, ent.Ingress, 0, nil, 1472)
			if err != nil {
				return nil, err
			}
			out = append(out, tp)
		}
		return out, nil
	}
	env := &forwardEnv{topo: topo, infra: infra}
	for _, src := range leaves {
		for _, dst := range leaves {
			if src == dst {
				continue
			}
			up, err := term(a2, src)
			if err != nil {
				return nil, err
			}
			down, err := term(a2, dst)
			if err != nil {
				return nil, err
			}
			for _, c := range combinator.AllPaths(up, nil, down) {
				fp, err := dataplane.Authorize(c, infra.ForwardingKey)
				if err != nil {
					return nil, err
				}
				env.paths = append(env.paths, fp)
			}
		}
	}
	if len(env.paths) < 4 {
		return nil, fmt.Errorf("forward: only %d leaf-pair paths", len(env.paths))
	}
	return env, nil
}

// fwdTrace is the precomputed seeded traffic plus the per-group fault
// actions, both pure functions of the config.
type fwdTrace struct {
	groups  [][]*dataplane.Packet
	actions [][]func(fail, restore func(topology.LinkID), gray func(topology.LinkID, float64))
}

func buildFwdTrace(env *forwardEnv, cfg ForwardConfig) *fwdTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tampered := make([]*dataplane.FwdPath, len(env.paths))
	for i, p := range env.paths {
		tp := &dataplane.FwdPath{Hops: append([]dataplane.HopField(nil), p.Hops...), MTU: p.MTU}
		tp.Hops[len(tp.Hops)-1].MAC[0] ^= 0x5a
		tampered[i] = tp
	}
	tr := &fwdTrace{
		groups:  make([][]*dataplane.Packet, cfg.Groups),
		actions: make([][]func(func(topology.LinkID), func(topology.LinkID), func(topology.LinkID, float64)), cfg.Groups+1),
	}
	flow := uint32(1)
	for g := 0; g < cfg.Groups; g++ {
		for k := 0; k < cfg.FlowsPerGroup; k++ {
			pi := rng.Intn(len(env.paths))
			p := env.paths[pi]
			if rng.Intn(10) == 0 {
				p = tampered[pi]
			}
			srcIA := p.Hops[0].Hop.IA
			dstIA := p.Hops[len(p.Hops)-1].Hop.IA
			tr.groups[g] = append(tr.groups[g], &dataplane.Packet{
				Src:     addr.HostIP4(srcIA, 10, byte(flow>>16), byte(flow>>8), byte(flow)),
				Dst:     addr.HostIP4(dstIA, 10, byte(flow>>16), byte(flow>>8), byte(flow)),
				Path:    p,
				Payload: make([]byte, 16+rng.Intn(256)),
				FlowID:  flow,
			})
			flow++
		}
	}
	// Fault plan: fail one multi-hop path's transit link for a third of
	// the run, gray-degrade another link for a later third. Edges land
	// on group boundaries where both planes are quiescent.
	var long *dataplane.FwdPath
	for _, p := range env.paths {
		if len(p.Hops) >= 3 {
			long = p
			break
		}
	}
	if long != nil && cfg.Groups >= 6 {
		hop := long.Hops[1].Hop
		link := env.topo.LinkByIf(hop.IA, hop.Out)
		if link != nil && hop.Out != 0 {
			id := link.ID
			on, off := cfg.Groups/3, 2*cfg.Groups/3
			tr.actions[on] = append(tr.actions[on],
				func(fail, _ func(topology.LinkID), _ func(topology.LinkID, float64)) { fail(id) })
			tr.actions[off] = append(tr.actions[off],
				func(_, restore func(topology.LinkID), _ func(topology.LinkID, float64)) { restore(id) })
		}
		first := long.Hops[0].Hop
		if l2 := env.topo.LinkByIf(first.IA, first.Out); l2 != nil {
			id := l2.ID
			on, off := 2*cfg.Groups/3, cfg.Groups
			tr.actions[on] = append(tr.actions[on],
				func(_, _ func(topology.LinkID), gray func(topology.LinkID, float64)) { gray(id, 0.5) })
			tr.actions[off] = append(tr.actions[off],
				func(_, _ func(topology.LinkID), gray func(topology.LinkID, float64)) { gray(id, 0) })
		}
	}
	return tr
}

type fwdOutcome struct {
	delivered bool
	scmp      int8
	link      seg.LinkKey
}

func fwdFingerprint(outcomes map[uint32]fwdOutcome, counters []uint64) string {
	flows := make([]uint32, 0, len(outcomes))
	for f := range outcomes {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	h := sha256.New()
	var buf [16]byte
	for _, f := range flows {
		o := outcomes[f]
		binary.BigEndian.PutUint32(buf[0:4], f)
		buf[4] = 0
		if o.delivered {
			buf[4] = 1
		}
		buf[5] = byte(o.scmp + 1)
		binary.BigEndian.PutUint64(buf[6:14], o.link.IA.Uint64())
		binary.BigEndian.PutUint16(buf[14:16], uint16(o.link.If))
		h.Write(buf[:])
	}
	for _, v := range counters {
		binary.BigEndian.PutUint64(buf[0:8], v)
		h.Write(buf[:8])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func clonePacket(p *dataplane.Packet) *dataplane.Packet {
	c := *p
	return &c
}

func runFwdFabric(env *forwardEnv, cfg ForwardConfig, tr *fwdTrace) (string, *dataplane.Fabric, error) {
	s := &sim.Simulator{}
	net := sim.NewNetwork(s, env.topo, time.Millisecond)
	fab := dataplane.NewFabric(net, env.infra.ForwardingKey)
	fab.LossFunc = dataplane.HashLoss(uint64(cfg.Seed))
	outcomes := map[uint32]fwdOutcome{}
	for _, ia := range env.topo.IAs() {
		fab.OnDeliver(ia, func(p *dataplane.Packet) {
			outcomes[p.FlowID] = fwdOutcome{delivered: true, scmp: -1}
		})
		fab.OnSCMP(ia, func(m *dataplane.SCMP) {
			outcomes[m.Orig.FlowID] = fwdOutcome{scmp: int8(m.Type), link: m.Link}
		})
	}
	for g := range tr.groups {
		for _, fn := range tr.actions[g] {
			fn(fab.FailLink, fab.RestoreLink, fab.SetLinkLoss)
		}
		for _, p := range tr.groups[g] {
			outcomes[p.FlowID] = fwdOutcome{scmp: -1}
			if err := fab.Inject(clonePacket(p)); err != nil {
				return "", nil, fmt.Errorf("fabric inject flow %d: %w", p.FlowID, err)
			}
		}
		s.Run()
	}
	fp := fwdFingerprint(outcomes, []uint64{
		fab.Forwarded, fab.Delivered, fab.DroppedBadMAC, fab.DroppedNoRoute,
		fab.DroppedTooBig, fab.Revocations, fab.DroppedGray,
	})
	return fp, fab, nil
}

func runFwdEngine(env *forwardEnv, cfg ForwardConfig, tr *fwdTrace, workers int) (string, error) {
	eng := dataplane.NewEngine(env.topo, env.infra.ForwardingKey)
	eng.Workers = workers
	eng.LossFunc = dataplane.HashLoss(uint64(cfg.Seed))
	var mu sync.Mutex
	outcomes := map[uint32]fwdOutcome{}
	for _, ia := range env.topo.IAs() {
		eng.OnDeliver(ia, func(s *slayers.SCION) {
			mu.Lock()
			outcomes[s.FlowID] = fwdOutcome{delivered: true, scmp: -1}
			mu.Unlock()
		})
		eng.OnSCMP(ia, func(m *dataplane.WireSCMPMsg) {
			mu.Lock()
			outcomes[m.FlowID] = fwdOutcome{scmp: int8(m.Type), link: m.Link}
			mu.Unlock()
		})
	}
	for g := range tr.groups {
		for _, fn := range tr.actions[g] {
			fn(eng.FailLink, eng.RestoreLink, eng.SetLinkLoss)
		}
		for _, p := range tr.groups[g] {
			outcomes[p.FlowID] = fwdOutcome{scmp: -1}
			if err := eng.Inject(clonePacket(p)); err != nil {
				return "", fmt.Errorf("engine inject flow %d: %w", p.FlowID, err)
			}
		}
		eng.Flush()
	}
	st := eng.Stats()
	if st.DroppedMalformed != 0 {
		return "", fmt.Errorf("engine dropped %d packets as malformed", st.DroppedMalformed)
	}
	return fwdFingerprint(outcomes, []uint64{
		st.Forwarded, st.Delivered, st.DroppedBadMAC, st.DroppedNoRoute,
		st.DroppedTooBig, st.Revocations, st.DroppedGray,
	}), nil
}

// measureForward drives BenchPackets identical wire packets through a
// single-worker engine and reports wall-clock pkts/s.
func measureForward(env *forwardEnv, batchSize int, mac bool, packets int) (float64, error) {
	eng := dataplane.NewEngine(env.topo, env.infra.ForwardingKey)
	eng.Workers = 1
	eng.BatchSize = batchSize
	eng.DisableMAC = !mac
	delivered := 0
	path := env.paths[0]
	dstIA := path.Hops[len(path.Hops)-1].Hop.IA
	eng.OnDeliver(dstIA, func(s *slayers.SCION) { delivered++ })
	pkt := &dataplane.Packet{
		Src:     addr.HostIP4(path.Hops[0].Hop.IA, 10, 0, 0, 1),
		Dst:     addr.HostIP4(dstIA, 10, 0, 0, 2),
		Path:    path,
		Payload: make([]byte, 128),
		FlowID:  1,
	}
	buf := make([]byte, pkt.WireLen())
	var s slayers.SCION
	if _, err := dataplane.EncodePacket(&s, pkt, buf); err != nil {
		return 0, err
	}
	start := time.Now()
	const chunk = 256
	for n := 0; n < packets; {
		m := chunk
		if packets-n < m {
			m = packets - n
		}
		for i := 0; i < m; i++ {
			if err := eng.InjectBytes(buf, path.MTU); err != nil {
				return 0, err
			}
		}
		eng.Flush()
		n += m
	}
	elapsed := time.Since(start)
	if delivered != packets {
		return 0, fmt.Errorf("forward bench delivered %d of %d", delivered, packets)
	}
	return float64(packets) / elapsed.Seconds(), nil
}

// RunForward executes the forward experiment.
func RunForward(cfg ForwardConfig) (*ForwardResult, error) {
	start := time.Now()
	env, err := buildForwardEnv()
	if err != nil {
		return nil, err
	}
	tr := buildFwdTrace(env, cfg)

	fabFP, fab, err := runFwdFabric(env, cfg, tr)
	if err != nil {
		return nil, err
	}
	res := &ForwardResult{
		Config:          cfg,
		DiffFingerprint: fabFP,
		PlanesAgree:     true,
		Injected:        cfg.Groups * cfg.FlowsPerGroup,
		Forwarded:       fab.Forwarded,
		Delivered:       fab.Delivered,
		DroppedBadMAC:   fab.DroppedBadMAC,
		DroppedGray:     fab.DroppedGray,
		Revocations:     fab.Revocations,
	}
	for _, workers := range []int{1, cfg.Workers} {
		engFP, err := runFwdEngine(env, cfg, tr, workers)
		if err != nil {
			return nil, err
		}
		if engFP != fabFP {
			res.PlanesAgree = false
			return res, fmt.Errorf("forward: engine (%d workers) fingerprint %s != fabric %s",
				workers, engFP, fabFP)
		}
	}

	if cfg.BenchPackets > 0 {
		modes := []ForwardMode{
			{Name: "single_mac", BatchSize: 1, MAC: true},
			{Name: "single_nomac", BatchSize: 1, MAC: false},
			{Name: "batch_mac", BatchSize: 32, MAC: true},
			{Name: "batch_nomac", BatchSize: 32, MAC: false},
		}
		for i := range modes {
			pps, err := measureForward(env, modes[i].BatchSize, modes[i].MAC, cfg.BenchPackets)
			if err != nil {
				return nil, err
			}
			modes[i].PktsPerSec = pps
		}
		res.Modes = modes
		res.BatchSpeedupMAC = modes[2].PktsPerSec / modes[0].PktsPerSec
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
